package bufferdb_test

import (
	"context"
	"errors"
	"testing"

	"bufferdb"
)

// queryCell runs a query expected to return exactly one cell.
func queryCell(t *testing.T, db *bufferdb.DB, q string, opts ...bufferdb.QueryOption) any {
	t.Helper()
	res, err := db.Query(context.Background(), q, opts...)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("%s: want one cell, got %+v", q, res.Rows)
	}
	return res.Rows[0][0]
}

// TestPersistRoundTrip drives the persistent tier through the public API:
// the first open bulk-loads TPC-H into the data directory, INSERTs commit
// through the WAL, scans far larger than the pool budget stream correctly
// in both engines, tracked memory drains at close, and a second open
// recovers everything from disk alone.
func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const sf = 0.01

	// In-memory reference: the generator is deterministic, so the paged
	// database must agree with it exactly.
	ref, err := bufferdb.OpenTPCH(sf, bufferdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refCount := queryCell(t, ref, `SELECT COUNT(*) FROM lineitem`).(int64)
	refSum := queryCell(t, ref, `SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity > 10`).(float64)
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// lineitem at this scale is ~850 pages of 8 KiB (~6.6 MiB); a 512 KiB
	// pool holds 64 frames, so a full scan must stream ~13x its budget.
	db, err := bufferdb.OpenTPCH(sf, bufferdb.Options{
		DataDir:     dir,
		PoolBytes:   512 << 10,
		MemoryLimit: 256 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := queryCell(t, db, `SELECT COUNT(*) FROM region`).(int64); got != 5 {
		t.Fatalf("region count = %d, want 5", got)
	}
	if got := queryCell(t, db, `INSERT INTO region VALUES (5, 'ATLANTIS', 'sunken'), (6, 'LEMURIA', 'lost')`).(int64); got != 2 {
		t.Fatalf("inserted = %d, want 2", got)
	}
	if got := queryCell(t, db, `SELECT COUNT(*) FROM region`).(int64); got != 7 {
		t.Fatalf("region count after insert = %d, want 7", got)
	}

	for _, eng := range []bufferdb.Engine{bufferdb.EngineVolcano, bufferdb.EngineVec} {
		if got := queryCell(t, db, `SELECT COUNT(*) FROM lineitem`, bufferdb.WithEngine(eng)).(int64); got != refCount {
			t.Fatalf("engine %v: lineitem count = %d, want %d", eng, got, refCount)
		}
		if got := queryCell(t, db, `SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity > 10`, bufferdb.WithEngine(eng)).(float64); got != refSum {
			t.Fatalf("engine %v: sum = %v, want %v", eng, got, refSum)
		}
	}

	st := db.PagerStats()
	if st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("scans larger than the pool must miss and evict, got %+v", st)
	}
	if st.ResidentPages <= 0 || st.ResidentPages > (512<<10)/8192 {
		t.Fatalf("resident pages %d outside (0, pool budget]", st.ResidentPages)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if n := db.TrackedBytes(); n != 0 {
		t.Fatalf("tracked bytes after close: %d", n)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	// Reopen from disk only: no scale factor, just the directory.
	db2, err := bufferdb.Open(bufferdb.Options{DataDir: dir, PoolBytes: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query(context.Background(), `SELECT r_regionkey, r_name FROM region WHERE r_regionkey >= 5 ORDER BY r_regionkey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].(string) != "ATLANTIS" || res.Rows[1][1].(string) != "LEMURIA" {
		t.Fatalf("inserted rows after reopen: %+v", res.Rows)
	}
	for _, eng := range []bufferdb.Engine{bufferdb.EngineVolcano, bufferdb.EngineVec} {
		if got := queryCell(t, db2, `SELECT COUNT(*) FROM lineitem`, bufferdb.WithEngine(eng)).(int64); got != refCount {
			t.Fatalf("engine %v after reopen: lineitem count = %d, want %d", eng, got, refCount)
		}
	}
}

// TestPersistInsertReadOnly pins that INSERT against a memory-resident
// database fails with the typed sentinel instead of silently dropping
// the rows.
func TestPersistInsertReadOnly(t *testing.T) {
	db, err := bufferdb.OpenTPCH(0.002, bufferdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	_, err = db.Query(context.Background(), `INSERT INTO region VALUES (5, 'ATLANTIS', 'sunken')`)
	if !errors.Is(err, bufferdb.ErrReadOnly) {
		t.Fatalf("insert into in-memory table: err = %v, want ErrReadOnly", err)
	}
}

// TestPersistOpenMissingCatalog pins that Open without a populated data
// directory reports the absence as a typed error rather than serving an
// empty database.
func TestPersistOpenMissingCatalog(t *testing.T) {
	if _, err := bufferdb.Open(bufferdb.Options{DataDir: t.TempDir()}); err == nil {
		t.Fatal("open of empty data dir succeeded")
	}
	if _, err := bufferdb.Open(bufferdb.Options{}); err == nil {
		t.Fatal("open without a data dir succeeded")
	}
}
