package bufferdb

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/cpusim"
	"bufferdb/internal/exec"
	"bufferdb/internal/plan"
	"bufferdb/internal/storage"
)

// streamQuery emits thousands of rows, so a cursor can be abandoned or
// canceled genuinely mid-stream with exchange workers still producing.
const streamQuery = `SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity > 10`

// TestGoroutineLeakEarlyClose abandons a parallel cursor after a few rows
// and asserts every exchange worker exits and every queued chunk's memory
// charge is returned.
func TestGoroutineLeakEarlyClose(t *testing.T) {
	for _, e := range chaosEngines {
		t.Run(string(e), func(t *testing.T) {
			base := runtime.NumGoroutine()
			rows, err := chaosDB.QueryStream(context.Background(), streamQuery,
				WithEngine(e), WithParallelism(4))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if !rows.Next() {
					t.Fatalf("stream ended after %d rows: %v", i, rows.Err())
				}
			}
			if err := rows.Close(); err != nil {
				t.Fatalf("early Close: %v", err)
			}
			waitGoroutines(t, base)
			if got := chaosDB.TrackedBytes(); got != 0 {
				t.Fatalf("early Close leaked %d tracked bytes", got)
			}
		})
	}
}

// TestGoroutineLeakCancellation cancels the caller's context mid-drain and
// asserts the error surfaces through Err, workers exit, and memory settles.
func TestGoroutineLeakCancellation(t *testing.T) {
	for _, e := range chaosEngines {
		t.Run(string(e), func(t *testing.T) {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			rows, err := chaosDB.QueryStream(ctx, streamQuery,
				WithEngine(e), WithParallelism(4))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if !rows.Next() {
					t.Fatalf("stream ended after %d rows: %v", i, rows.Err())
				}
			}
			cancel()
			for rows.Next() {
			}
			if err := rows.Err(); !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled after mid-drain cancel, got %v", err)
			}
			if err := rows.Close(); err != nil {
				t.Fatalf("Close after cancellation: %v", err)
			}
			waitGoroutines(t, base)
			if got := chaosDB.TrackedBytes(); got != 0 {
				t.Fatalf("cancellation leaked %d tracked bytes", got)
			}
		})
	}
}

// closeErrOp is a single-row operator whose Close fails, for exercising the
// cursor's deferred-teardown-error contract without a real plan.
type closeErrOp struct {
	emitted  bool
	closeErr error
}

func (o *closeErrOp) Open(*exec.Context) error { o.emitted = false; return nil }
func (o *closeErrOp) Next(*exec.Context) (storage.Row, error) {
	if o.emitted {
		return nil, nil
	}
	o.emitted = true
	return storage.Row{storage.NewInt(1)}, nil
}
func (o *closeErrOp) Close(*exec.Context) error { return o.closeErr }
func (o *closeErrOp) Schema() storage.Schema {
	return storage.Schema{{Name: "v", Type: storage.TypeInt64}}
}
func (o *closeErrOp) Children() []exec.Operator { return nil }
func (o *closeErrOp) Name() string              { return "closeErrOp" }
func (o *closeErrOp) Module() *codemodel.Module { return nil }
func (o *closeErrOp) Blocking() bool            { return false }

// TestRowsCloseErrorReporting drains a cursor whose plan fails on teardown:
// the internal end-of-stream close must defer the error to the consumer's
// first explicit Close, and the second Close must return nil.
func TestRowsCloseErrorReporting(t *testing.T) {
	boom := errors.New("close failed")
	newRows := func() *Rows {
		op := &closeErrOp{closeErr: boom}
		ectx := &exec.Context{}
		if err := op.Open(ectx); err != nil {
			t.Fatal(err)
		}
		return &Rows{ectx: ectx, op: op, cols: []string{"v"}, schema: op.Schema()}
	}

	t.Run("drained", func(t *testing.T) {
		rows := newRows()
		for rows.Next() {
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("Err after clean drain: %v", err)
		}
		if err := rows.Close(); !errors.Is(err, boom) {
			t.Fatalf("first Close should surface the deferred teardown error, got %v", err)
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("second Close should be nil, got %v", err)
		}
	})

	t.Run("abandoned", func(t *testing.T) {
		rows := newRows()
		if err := rows.Close(); !errors.Is(err, boom) {
			t.Fatalf("early Close should report the teardown error, got %v", err)
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("second Close should be nil, got %v", err)
		}
	})
}

// TestGovernorCountersBitIdentical runs the same plan on fresh simulated
// CPUs with the governor disarmed and armed-but-idle (unlimited tracker, an
// injector matching no site) and requires bit-identical hardware counters:
// the governor must never touch the simulation.
func TestGovernorCountersBitIdentical(t *testing.T) {
	db := testDB
	p, err := db.plan(chaosQuery, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(armed bool) cpusim.Counters {
		cpu, err := cpusim.New(cpusim.DefaultConfig(), db.cm.TextSegmentBytes())
		if err != nil {
			t.Fatal(err)
		}
		op, err := plan.Build(plan.Clone(p), db.cm)
		if err != nil {
			t.Fatal(err)
		}
		ectx := &exec.Context{
			Catalog:    db.cat,
			CPU:        cpu,
			Placements: exec.PlaceCatalog(cpu, db.cat),
		}
		if armed {
			ectx.Mem = exec.NewMemTracker("q", 0, nil)
			ectx.Fault = NewFaultInjector(99, Fault{Match: "NoSuchOperator", Kind: FaultError})
		}
		if _, err := exec.Run(ectx, op); err != nil {
			t.Fatal(err)
		}
		return cpu.Counters()
	}
	plain, armed := run(false), run(true)
	if plain != armed {
		t.Fatalf("governor perturbed the simulated counters:\nplain %+v\narmed %+v", plain, armed)
	}
}

// BenchmarkGovernorOverhead compares end-to-end query latency with the
// governor dormant (no limits: every hook is a nil check) against armed
// (a per-query budget and a no-match injector). The dormant delta versus
// the pre-governor engine is the headline number; run with -benchtime
// sufficient for <2% resolution.
func BenchmarkGovernorOverhead(b *testing.B) {
	ctx := context.Background()
	const q = `SELECT SUM(o_totalprice), COUNT(*) FROM lineitem, orders
	 WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1995-06-17'`
	for _, bc := range []struct {
		name string
		opts []QueryOption
	}{
		{"off", nil},
		{"on", []QueryOption{
			WithMemoryBudget(1 << 40),
			WithFaultInjector(NewFaultInjector(1, Fault{Match: "NoSuchOperator", Kind: FaultError})),
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := testDB.Query(ctx, q, bc.opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
