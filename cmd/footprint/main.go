// Command footprint prints the engine's instruction-footprint analysis:
// the per-module table (the paper's Table 2) and, given module names,
// their combined footprint with shared functions deduplicated — the
// quantity the plan refinement algorithm compares against the L1
// instruction cache.
//
// Usage:
//
//	footprint                      # the full Table 2
//	footprint SeqScanPred Agg:sum,avg,count
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bufferdb/internal/codemodel"
)

func main() {
	l1i := flag.Int("l1i", 16*1024, "L1 instruction cache budget in bytes")
	flag.Parse()

	cm := codemodel.NewCatalog()
	if flag.NArg() == 0 {
		printTable(cm)
		return
	}

	var mods []*codemodel.Module
	for _, arg := range flag.Args() {
		m, err := resolve(cm, arg)
		if err != nil {
			fatal(err)
		}
		mods = append(mods, m)
		fmt.Printf("%-24s %6.1f KB\n", m.Name, kb(m.FootprintBytes()))
	}
	combined := codemodel.CombinedFootprint(mods...)
	naive := codemodel.NaiveCombinedFootprint(mods...)
	fmt.Printf("%-24s %6.1f KB (naive sum %.1f KB, shared %.1f KB)\n",
		"combined (dedup)", kb(combined), kb(naive), kb(naive-combined))
	verdict := "fits — one execution group, no buffer needed"
	if combined >= *l1i {
		verdict = "exceeds — split into groups and buffer between them"
	}
	fmt.Printf("vs %d KB L1I budget: %s\n", *l1i/1024, verdict)
}

// resolve parses a module argument: a spec-table name, or Agg:<fn,fn,...>.
func resolve(cm *codemodel.Catalog, arg string) (*codemodel.Module, error) {
	if rest, ok := strings.CutPrefix(arg, "Agg:"); ok {
		return cm.AggModule(strings.Split(rest, ","))
	}
	if arg == "Agg" {
		return cm.AggModule(nil)
	}
	return cm.Module(arg)
}

func printTable(cm *codemodel.Catalog) {
	fmt.Printf("%-28s %10s %14s\n", "module", "dynamic", "naive static")
	for _, name := range []string{
		"SeqScan", "SeqScanPred", "IndexScan", "Sort",
		"NestLoop", "MergeJoin", "HashBuild", "HashProbe",
		"Filter", "Project", "Material", "Buffer",
	} {
		m := cm.MustModule(name)
		fmt.Printf("%-28s %8.1fKB %12.1fKB\n", name, kb(m.FootprintBytes()), kb(m.StaticFootprintBytes()))
	}
	base, err := cm.AggModule(nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-28s %8.1fKB %12.1fKB\n", "Agg (base)", kb(base.FootprintBytes()), kb(base.StaticFootprintBytes()))
	for _, fn := range []string{"count", "min", "max", "sum", "avg"} {
		m, err := cm.AggModule([]string{fn})
		if err != nil {
			fatal(err)
		}
		inc := m.FootprintBytes() - base.FootprintBytes()
		fmt.Printf("%-28s %8.1fKB\n", "Agg +"+strings.ToUpper(fn), kb(inc))
	}
}

func kb(b int) float64 { return float64(b) / 1024 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "footprint:", err)
	os.Exit(1)
}
