// Command calibrate runs the paper's §6/§7.3 calibration experiment: the
// Query 1 template at a sweep of output cardinalities, buffered and
// unbuffered, to determine the cardinality threshold the plan refinement
// algorithm uses. The paper recommends running this once per machine; here
// "machine" is the simulated CPU configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/core"
	"bufferdb/internal/cpusim"
)

func main() {
	var (
		rows       = flag.Int("rows", 65536, "calibration table cardinality")
		cards      = flag.String("cards", "0,4,16,64,256,1024,4096,16384,65536", "comma-separated output cardinalities")
		bufferSize = flag.Int("buffersize", 0, "buffer capacity (0 = 1024)")
	)
	flag.Parse()

	var sweep []int
	for _, part := range strings.Split(*cards, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad cardinality %q", part))
		}
		sweep = append(sweep, n)
	}

	cm := codemodel.NewCatalog()
	res, err := core.CalibrateThreshold(cm, cpusim.DefaultConfig(), *rows, sweep, *bufferSize)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%12s %14s %14s %10s\n", "cardinality", "original (s)", "buffered (s)", "winner")
	for _, p := range res.Points {
		winner := "original"
		if p.BufferedSec < p.OriginalSec {
			winner = "buffered"
		}
		fmt.Printf("%12d %14.6f %14.6f %10s\n", p.Cardinality, p.OriginalSec, p.BufferedSec, winner)
	}
	fmt.Printf("\ncardinality threshold: %.0f rows\n", res.Threshold)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
