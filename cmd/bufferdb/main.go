// Command bufferdb is an interactive SQL shell over a generated TPC-H
// database, with the paper's buffering plan refinement on by default. With
// -connect it becomes a network client: the same shell drives a remote
// bufferdbd daemon over the wire protocol instead of an embedded engine.
//
// Usage:
//
//	bufferdb -sf 0.01                  # interactive shell, embedded engine
//	bufferdb -q "SELECT COUNT(*) FROM lineitem"
//	bufferdb -connect localhost:7687   # shell against a bufferdbd daemon
//
// Ctrl-C cancels the statement in flight — locally through its context,
// remotely as a wire Cancel frame that frees the daemon's admission slot —
// and returns to the prompt instead of killing the shell.
//
// Shell meta-commands:
//
//	\explain <sql>   show the conventional and refined plans
//	\analyze <sql>   run instrumented and show per-operator runtime stats
//	\profile <sql>   run both plans on the simulated CPU and compare
//	\engine [name]   show or switch the session's execution engine
//	\tables          list tables
//	\cache           show semantic reuse-cache statistics
//	\q               quit
//
// Over -connect only \engine, \tables and \q are available; the
// plan-introspection commands need the embedded engine. Engine names (for
// -engine and \engine alike) go through bufferdb.ParseEngine, so the shell
// accepts exactly the engines the library exposes — volcano, vec, push.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"

	"bufferdb"
	"bufferdb/internal/client"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.01, "TPC-H scale factor")
		query   = flag.String("q", "", "run one query and exit")
		noParse = flag.Bool("no-refine", false, "disable buffering plan refinement")
		engine  = flag.String("engine", "", fmt.Sprintf("execution engine (%s; default: the database's)", strings.Join(bufferdb.EngineNames(), ", ")))
		analyze = flag.Bool("analyze", false, "with -q: EXPLAIN ANALYZE — print the per-operator stats table instead of rows")
		metrics = flag.Bool("metrics", false, "after -q: dump the process metrics registry (Prometheus text format)")
		connect = flag.String("connect", "", "address of a bufferdbd daemon; queries run remotely instead of in-process")
		reuse   = flag.Bool("reuse-cache", true, "recycle hash-join builds and aggregate tables across queries (\\cache shows stats)")
		reuseMB = flag.Int64("reuse-max-bytes", 0, "semantic reuse-cache budget in bytes (0 = default)")
	)
	flag.Parse()

	ints := newInterrupts()

	if *connect != "" {
		remoteMain(ints, *connect, *query, *engine, *noParse, *analyze, *metrics)
		return
	}

	db, err := bufferdb.OpenTPCH(*sf, bufferdb.Options{
		DisableRefinement: *noParse,
		ReuseCache:        *reuse,
		ReuseMaxBytes:     *reuseMB,
	})
	if err != nil {
		fatal(err)
	}
	view := &engineView{root: db, cur: db}
	if *engine != "" {
		e, err := bufferdb.ParseEngine(*engine)
		if err != nil {
			fatal(err)
		}
		view.set(e)
	}

	if *query != "" {
		q := strings.TrimSuffix(strings.TrimSpace(*query), ";")
		ctx, stop := ints.queryContext()
		if *analyze {
			err = runAnalyze(ctx, view.cur, q)
		} else {
			err = runQuery(ctx, view.cur, q)
		}
		stop()
		if err != nil {
			fatal(err)
		}
		if *metrics {
			if err := bufferdb.WriteMetrics(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}

	fmt.Printf("bufferdb — TPC-H SF %g loaded (%v). End statements with ';', \\q quits, Ctrl-C cancels.\n", *sf, db.Tables())
	repl(ints, func(q string) error {
		ctx, stop := ints.queryContext()
		defer stop()
		return runQuery(ctx, view.cur, q)
	}, func(cmd string) bool { return metaCommand(ints, view, cmd) })
}

// engineView is the shell's mutable engine selection: cur is the root
// database (default engine) or a WithEngine view of it, swapped in place by
// the \engine meta-command.
type engineView struct {
	root *bufferdb.DB
	cur  *bufferdb.DB
	name bufferdb.Engine // "" until \engine or -engine selects one
}

func (v *engineView) set(e bufferdb.Engine) {
	v.name = e
	v.cur = v.root.WithEngine(e)
}

// current names the view's effective engine for display.
func (v *engineView) current() bufferdb.Engine {
	if v.name == "" {
		return bufferdb.EngineVolcano
	}
	return v.name
}

// remoteMain is the -connect entry point: the shell (or -q) drives a
// bufferdbd daemon through internal/client.
func remoteMain(ints *interrupts, addr, query, engine string, noRefine, analyze, metrics bool) {
	if analyze {
		fatal(errors.New("-analyze needs the embedded engine; it is not available with -connect"))
	}
	if metrics {
		fatal(errors.New("-metrics is local-only; scrape the daemon's -http sidecar /metrics instead"))
	}
	c, err := client.Dial(addr, client.Config{})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	// The remote engine selection is validated client-side by the same
	// canonical parser the daemon uses, so typos fail before a round trip.
	var engineName bufferdb.Engine
	if engine != "" {
		e, err := bufferdb.ParseEngine(engine)
		if err != nil {
			fatal(err)
		}
		engineName = e
	}
	run := func(q string) error {
		var opts []client.Option
		if engineName != "" {
			opts = append(opts, client.WithEngine(engineName.String()))
		}
		if noRefine {
			opts = append(opts, client.WithoutRefinement())
		}
		ctx, stop := ints.queryContext()
		defer stop()
		res, err := c.QueryAll(ctx, strings.TrimSuffix(strings.TrimSpace(q), ";"), opts...)
		if err != nil {
			return err
		}
		printResult(res.Columns, res.Rows)
		return nil
	}

	if query != "" {
		if err := run(query); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("bufferdb — connected to %s (%s). End statements with ';', \\q quits, Ctrl-C cancels.\n", addr, c.ServerInfo())
	repl(ints, run, func(cmd string) bool {
		switch {
		case cmd == "\\q" || cmd == "\\quit":
			return true
		case cmd == "\\tables":
			tabs, err := c.Tables(context.Background())
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			for _, t := range tabs {
				fmt.Printf("  %-12s %10d rows\n", t.Name, t.Rows)
			}
		case cmd == "\\engine":
			cur := engineName
			if cur == "" {
				cur = bufferdb.EngineVolcano
			}
			fmt.Printf("engine: %s (available: %s)\n", cur, strings.Join(bufferdb.EngineNames(), ", "))
		case strings.HasPrefix(cmd, "\\engine "):
			e, err := bufferdb.ParseEngine(strings.TrimSpace(strings.TrimPrefix(cmd, "\\engine ")))
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			engineName = e
			fmt.Printf("engine set to %s\n", e)
		case cmd == "\\cache":
			fmt.Println("reuse-cache stats live in the daemon: scrape its -http sidecar /metrics (bufferdb_reuse_*)")
		default:
			fmt.Println("commands over -connect: \\tables, \\engine [name], \\q")
		}
		return false
	})
}

// repl drives the line loop shared by the local and remote shells.
func repl(ints *interrupts, run func(q string) error, meta func(cmd string) bool) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	fmt.Print("bufferdb> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case pending.Len() == 0 && strings.HasPrefix(trimmed, "\\"):
			if done := meta(trimmed); done {
				return
			}
		default:
			pending.WriteString(line)
			pending.WriteByte('\n')
			if strings.HasSuffix(trimmed, ";") {
				if err := run(pending.String()); err != nil {
					if errors.Is(err, context.Canceled) {
						fmt.Println("canceled")
					} else {
						fmt.Println("error:", err)
					}
				}
				pending.Reset()
			}
		}
		fmt.Print("bufferdb> ")
	}
}

// interrupts owns the process's SIGINT stream so Ctrl-C cancels the
// statement in flight instead of killing the shell.
type interrupts struct {
	ch chan os.Signal
}

func newInterrupts() *interrupts {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	return &interrupts{ch: ch}
}

// queryContext returns a context canceled by the next Ctrl-C. The stop
// function releases the watcher; call it as soon as the statement
// finishes so a later Ctrl-C doesn't act on a dead query. Interrupts
// delivered between statements are drained, not replayed.
func (in *interrupts) queryContext() (context.Context, func()) {
	select {
	case <-in.ch:
	default:
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		select {
		case <-in.ch:
			cancel()
		case <-done:
		}
	}()
	var once sync.Once
	return ctx, func() {
		once.Do(func() { close(done) })
		cancel()
	}
}

// metaCommand handles backslash commands; returns true to quit.
func metaCommand(ints *interrupts, view *engineView, cmd string) bool {
	db := view.cur
	switch {
	case cmd == "\\q" || cmd == "\\quit":
		return true
	case cmd == "\\tables":
		for _, t := range db.Tables() {
			n, _ := db.RowCount(t)
			fmt.Printf("  %-12s %10d rows\n", t, n)
		}
	case cmd == "\\engine":
		fmt.Printf("engine: %s (available: %s)\n", view.current(), strings.Join(bufferdb.EngineNames(), ", "))
	case strings.HasPrefix(cmd, "\\engine "):
		e, err := bufferdb.ParseEngine(strings.TrimSpace(strings.TrimPrefix(cmd, "\\engine ")))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		view.set(e)
		fmt.Printf("engine set to %s\n", e)
	case strings.HasPrefix(cmd, "\\explain "):
		orig, refined, err := db.Explain(strings.TrimPrefix(cmd, "\\explain "))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("-- conventional plan:")
		fmt.Print(orig)
		fmt.Println("-- refined plan:")
		fmt.Print(refined)
	case strings.HasPrefix(cmd, "\\analyze "):
		ctx, stop := ints.queryContext()
		err := runAnalyze(ctx, db, strings.TrimPrefix(cmd, "\\analyze "))
		stop()
		if err != nil {
			fmt.Println("error:", err)
		}
	case cmd == "\\cache":
		printReuseStats(view.root)
	case strings.HasPrefix(cmd, "\\profile "):
		prof, err := db.Profile(strings.TrimPrefix(cmd, "\\profile "))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("original:  %.4fs  L1I misses %d  mispredicts %d  CPI %.2f\n",
			prof.Original.ElapsedSec, prof.Original.L1IMisses, prof.Original.Mispredicts, prof.Original.CPI)
		fmt.Printf("buffered:  %.4fs  L1I misses %d  mispredicts %d  CPI %.2f\n",
			prof.Buffered.ElapsedSec, prof.Buffered.L1IMisses, prof.Buffered.Mispredicts, prof.Buffered.CPI)
		fmt.Printf("improvement %.1f%% with %d buffer(s)\n", prof.ImprovementPct, prof.BuffersInserted)
	default:
		fmt.Println("commands: \\tables, \\engine [name], \\cache, \\explain <sql>, \\analyze <sql>, \\profile <sql>, \\q")
	}
	return false
}

// printReuseStats renders the semantic reuse cache's counters.
func printReuseStats(db *bufferdb.DB) {
	s := db.ReuseStats()
	if s.MaxBytes == 0 {
		fmt.Println("reuse cache: disabled (start with -reuse-cache)")
		return
	}
	fmt.Printf("reuse cache: %d entries, %d / %d bytes\n", s.Entries, s.Bytes, s.MaxBytes)
	fmt.Printf("  hits %d  misses %d  evictions %d  invalidations %d\n",
		s.Hits, s.Misses, s.Evictions, s.Invalidations)
}

// runAnalyze executes a statement instrumented on the simulated CPU and
// prints the per-operator stats table.
func runAnalyze(ctx context.Context, db *bufferdb.DB, q string, opts ...bufferdb.QueryOption) error {
	a, err := db.ExplainAnalyze(ctx, strings.TrimSuffix(strings.TrimSpace(q), ";"), opts...)
	if err != nil {
		return err
	}
	fmt.Print(a.String())
	return nil
}

// runQuery executes a statement and prints a bounded result table.
func runQuery(ctx context.Context, db *bufferdb.DB, q string, opts ...bufferdb.QueryOption) error {
	res, err := db.Query(ctx, strings.TrimSuffix(strings.TrimSpace(q), ";"), opts...)
	if err != nil {
		return err
	}
	printResult(res.Columns, res.Rows)
	return nil
}

// printResult renders a materialized result, bounded to keep the terminal
// usable.
func printResult(cols []string, rows [][]any) {
	fmt.Println(strings.Join(cols, " | "))
	const maxRows = 50
	for i, row := range rows {
		if i == maxRows {
			fmt.Printf("... (%d more rows)\n", len(rows)-maxRows)
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bufferdb:", err)
	os.Exit(1)
}
