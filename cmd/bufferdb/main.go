// Command bufferdb is an interactive SQL shell over a generated TPC-H
// database, with the paper's buffering plan refinement on by default.
//
// Usage:
//
//	bufferdb -sf 0.01                  # interactive shell
//	bufferdb -q "SELECT COUNT(*) FROM lineitem"
//
// Shell meta-commands:
//
//	\explain <sql>   show the conventional and refined plans
//	\analyze <sql>   run instrumented and show per-operator runtime stats
//	\profile <sql>   run both plans on the simulated CPU and compare
//	\tables          list tables
//	\q               quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"bufferdb"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.01, "TPC-H scale factor")
		query   = flag.String("q", "", "run one query and exit")
		noParse = flag.Bool("no-refine", false, "disable buffering plan refinement")
		engine  = flag.String("engine", "", "execution engine for -q (volcano or vec; default: the database's)")
		analyze = flag.Bool("analyze", false, "with -q: EXPLAIN ANALYZE — print the per-operator stats table instead of rows")
		metrics = flag.Bool("metrics", false, "after -q: dump the process metrics registry (Prometheus text format)")
	)
	flag.Parse()

	db, err := bufferdb.OpenTPCH(*sf, bufferdb.Options{DisableRefinement: *noParse})
	if err != nil {
		fatal(err)
	}

	if *query != "" {
		var opts []bufferdb.QueryOption
		if *engine != "" {
			opts = append(opts, bufferdb.WithEngine(bufferdb.Engine(*engine)))
		}
		q := strings.TrimSuffix(strings.TrimSpace(*query), ";")
		if *analyze {
			err = runAnalyze(db, q, opts...)
		} else {
			err = runQuery(db, q, opts...)
		}
		if err != nil {
			fatal(err)
		}
		if *metrics {
			if err := bufferdb.WriteMetrics(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}

	fmt.Printf("bufferdb — TPC-H SF %g loaded (%v). End statements with ';', \\q quits.\n", *sf, db.Tables())
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	fmt.Print("bufferdb> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case pending.Len() == 0 && strings.HasPrefix(trimmed, "\\"):
			if done := metaCommand(db, trimmed); done {
				return
			}
		default:
			pending.WriteString(line)
			pending.WriteByte('\n')
			if strings.HasSuffix(trimmed, ";") {
				if err := runQuery(db, pending.String()); err != nil {
					fmt.Println("error:", err)
				}
				pending.Reset()
			}
		}
		fmt.Print("bufferdb> ")
	}
}

// metaCommand handles backslash commands; returns true to quit.
func metaCommand(db *bufferdb.DB, cmd string) bool {
	switch {
	case cmd == "\\q" || cmd == "\\quit":
		return true
	case cmd == "\\tables":
		for _, t := range db.Tables() {
			n, _ := db.RowCount(t)
			fmt.Printf("  %-12s %10d rows\n", t, n)
		}
	case strings.HasPrefix(cmd, "\\explain "):
		orig, refined, err := db.Explain(strings.TrimPrefix(cmd, "\\explain "), bufferdb.QueryOptions{})
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("-- conventional plan:")
		fmt.Print(orig)
		fmt.Println("-- refined plan:")
		fmt.Print(refined)
	case strings.HasPrefix(cmd, "\\analyze "):
		if err := runAnalyze(db, strings.TrimPrefix(cmd, "\\analyze ")); err != nil {
			fmt.Println("error:", err)
		}
	case strings.HasPrefix(cmd, "\\profile "):
		prof, err := db.Profile(strings.TrimPrefix(cmd, "\\profile "), bufferdb.QueryOptions{})
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("original:  %.4fs  L1I misses %d  mispredicts %d  CPI %.2f\n",
			prof.Original.ElapsedSec, prof.Original.L1IMisses, prof.Original.Mispredicts, prof.Original.CPI)
		fmt.Printf("buffered:  %.4fs  L1I misses %d  mispredicts %d  CPI %.2f\n",
			prof.Buffered.ElapsedSec, prof.Buffered.L1IMisses, prof.Buffered.Mispredicts, prof.Buffered.CPI)
		fmt.Printf("improvement %.1f%% with %d buffer(s)\n", prof.ImprovementPct, prof.BuffersInserted)
	default:
		fmt.Println("commands: \\tables, \\explain <sql>, \\analyze <sql>, \\profile <sql>, \\q")
	}
	return false
}

// runAnalyze executes a statement instrumented on the simulated CPU and
// prints the per-operator stats table.
func runAnalyze(db *bufferdb.DB, q string, opts ...bufferdb.QueryOption) error {
	a, err := db.ExplainAnalyze(context.Background(), strings.TrimSuffix(strings.TrimSpace(q), ";"), opts...)
	if err != nil {
		return err
	}
	fmt.Print(a.String())
	return nil
}

// runQuery executes a statement and prints a bounded result table.
func runQuery(db *bufferdb.DB, q string, opts ...bufferdb.QueryOption) error {
	res, err := db.Query(context.Background(), strings.TrimSuffix(strings.TrimSpace(q), ";"), opts...)
	if err != nil {
		return err
	}
	fmt.Println(strings.Join(res.Columns, " | "))
	const maxRows = 50
	for i, row := range res.Rows {
		if i == maxRows {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-maxRows)
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bufferdb:", err)
	os.Exit(1)
}
