// Command bufferdbd is the bufferdb network daemon: it generates (or
// loads) a TPC-H database, applies the resource-governor limits from its
// flags, and serves the internal/wire protocol on a TCP listener until
// SIGINT/SIGTERM, when it drains gracefully. A sidecar HTTP listener
// exposes the process metrics registry and liveness/readiness probes.
//
// Usage:
//
//	bufferdbd -listen :7687 -http :7688 -scale 0.1 \
//	    -max-concurrent 8 -max-queued 64 -memory-limit 268435456
//
// A hash-sharded deployment runs N shard daemons plus one coordinator:
//
//	bufferdbd -listen :7701 -scale 0.1 -shard-index 0 -shard-count 3
//	bufferdbd -listen :7702 -scale 0.1 -shard-index 1 -shard-count 3
//	bufferdbd -listen :7703 -scale 0.1 -shard-index 2 -shard-count 3
//	bufferdbd -listen :7687 -shards localhost:7701,localhost:7702,localhost:7703
//
// -shards switches the process into coordinator mode: it loads no data,
// scatters queries to the listed shard daemons (which must share one
// -shard-count and -seed), gathers their partial streams, and serves the
// same wire protocol — clients and the CLI connect to either tier
// unchanged.
//
// -replication (default 2) replicates each hash slice across that many
// nodes: shard daemon j additionally loads the rf-1 slices preceding its
// own, and the coordinator routes every scatter leg to a healthy replica,
// failing legs over mid-stream when a node dies. Per-node circuit breakers
// (-breaker-threshold consecutive transport failures open one;
// -breaker-cooldown later a single probe query tests recovery) keep dead
// nodes out of the routing until they answer again. Pass the same
// -replication to the shard daemons and the coordinator.
//
// Sidecar endpoints:
//
//	/metrics   Prometheus text-format dump of the metrics registry
//	           (per-shard health/latency counters in coordinator mode)
//	/healthz   liveness: 200 once the process is up
//	/readyz    readiness: 200 after the database is loaded and the
//	           listener is accepting; 503 during startup and drain.
//	           In coordinator mode the body reflects fleet health:
//	           "ready" (all replicas healthy), "warn: ..." (200 — every
//	           slice reachable but redundancy degraded), or 503 "fail:
//	           ..." (some slice has no healthy replica)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"bufferdb"
	"bufferdb/internal/dist"
	"bufferdb/internal/server"
	"bufferdb/internal/shard"
)

func main() {
	var (
		listen    = flag.String("listen", ":7687", "wire-protocol listen address")
		httpAddr  = flag.String("http", "", "sidecar HTTP listen address for /metrics, /healthz, /readyz (empty = no sidecar)")
		scale     = flag.Float64("scale", 0.01, "TPC-H scale factor")
		seed      = flag.Uint64("seed", 0, "TPC-H generation seed (0 = default)")
		noRefine  = flag.Bool("no-refine", false, "disable buffering plan refinement")
		engine    = flag.String("engine", "", fmt.Sprintf("default execution engine (%s); per-query wire options still override", strings.Join(bufferdb.EngineNames(), ", ")))
		par       = flag.Int("parallelism", 0, "default partitioned-scan fan-out (<2 = sequential)")
		memLimit  = flag.Int64("memory-limit", 0, "process-wide tracked-memory cap in bytes (0 = unlimited)")
		maxConc   = flag.Int("max-concurrent", 0, "admission: max concurrently executing queries (0 = unlimited)")
		maxQueued = flag.Int("max-queued", 0, "admission: max queries queued for a slot")
		admWait   = flag.Duration("admission-wait", 0, "admission: max time a query queues before shedding (0 = caller's context)")
		stmtCache = flag.Int("stmt-cache", 0, "prepared-statement LRU entries (0 = default 64, negative disables)")
		resCache  = flag.Int64("result-cache", 0, "result-reuse cache budget in encoded bytes (0 disables)")
		reuse     = flag.Bool("reuse-cache", false, "semantic reuse cache: recycle hash-join builds and aggregate tables across queries (bufferdb_reuse_* metrics)")
		reuseMB   = flag.Int64("reuse-max-bytes", 0, "semantic reuse-cache budget in bytes (0 = default 64 MiB; needs -reuse-cache)")
		writeTO   = flag.Duration("write-timeout", 0, "per-frame write deadline guarding against stalled clients (0 = default 30s, negative disables)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown budget before force-closing connections")
		dataDir   = flag.String("data-dir", "", "persistent data directory: load it if populated, else generate TPC-H there; enables INSERT (empty = in-memory)")
		poolBytes = flag.Int64("pool-bytes", 0, "buffer-pool residency cap in bytes (0 = default 4 MiB; needs -data-dir)")
		eviction  = flag.String("eviction", "", `buffer-pool eviction policy: "lru" (default) or "gdsf" (needs -data-dir)`)
		shards    = flag.String("shards", "", "comma-separated shard addresses; non-empty switches to coordinator mode (no local data)")
		shardIdx  = flag.Int("shard-index", 0, "this shard's index in a hash-partitioned deployment (needs -shard-count)")
		shardCnt  = flag.Int("shard-count", 0, "total shard count; >1 loads only this node's hash slice of the sharded tables")
		hedge     = flag.Duration("hedge-delay", 0, "coordinator: hedge a shard scan that has not answered within this delay (0 disables)")
		repl      = flag.Int("replication", 2, "replication factor for sharded deployments: each slice lives on this many nodes (clamped to the node count; 1 disables replication; ignored unless sharded)")
		brkThresh = flag.Int("breaker-threshold", 0, "coordinator: consecutive transport failures that open a node's circuit breaker (0 = default 3)")
		brkCool   = flag.Duration("breaker-cooldown", 0, "coordinator: how long an open breaker rejects a node before probing it again (0 = default 5s)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "bufferdbd: ", log.LstdFlags)

	if *shards != "" {
		runCoordinator(logger, *listen, *httpAddr, *shards, coordTuning{
			hedge:            *hedge,
			memLimit:         *memLimit,
			writeTO:          *writeTO,
			drain:            *drain,
			replication:      *repl,
			breakerThreshold: *brkThresh,
			breakerCooldown:  *brkCool,
		})
		return
	}

	start := time.Now()
	opts := bufferdb.Options{
		Seed:              *seed,
		DisableRefinement: *noRefine,
		Parallelism:       *par,
		MemoryLimit:       *memLimit,
		DataDir:           *dataDir,
		PoolBytes:         *poolBytes,
		Eviction:          *eviction,
		ShardIndex:        *shardIdx,
		ShardCount:        *shardCnt,
		ReuseCache:        *reuse,
		ReuseMaxBytes:     *reuseMB,
		Admission: bufferdb.AdmissionConfig{
			MaxConcurrent: *maxConc,
			MaxQueued:     *maxQueued,
			WaitTimeout:   *admWait,
		},
	}
	rf := 1
	if *shardCnt > 1 {
		rf = shard.ClampRF(*repl, *shardCnt)
	}
	var (
		db      *bufferdb.DB
		slices  map[int]*bufferdb.DB
		hosted  []int
		openErr error
	)
	if rf > 1 {
		// Replicated deployment: this node hosts its primary slice plus the
		// rf-1 preceding ones, each as its own database. The default DB is
		// the primary, so unaddressed (legacy) requests keep their meaning.
		hosted = shard.Slices(*shardIdx, *shardCnt, rf)
		slices, openErr = bufferdb.OpenTPCHReplicas(*scale, opts, hosted)
		if openErr == nil {
			db = slices[*shardIdx]
		}
	} else {
		db, openErr = bufferdb.OpenTPCH(*scale, opts)
	}
	if openErr != nil {
		logger.Fatalf("open: %v", openErr)
	}
	if *engine != "" {
		e, err := bufferdb.ParseEngine(*engine)
		if err != nil {
			logger.Fatalf("engine: %v", err)
		}
		db = db.WithEngine(e)
		for idx, sdb := range slices {
			if idx == *shardIdx {
				slices[idx] = db
			} else {
				slices[idx] = sdb.WithEngine(e)
			}
		}
		logger.Printf("default execution engine: %s", e)
	}
	mode := "in-memory"
	if *dataDir != "" {
		mode = "persistent at " + *dataDir
	}
	if rf > 1 {
		mode += fmt.Sprintf(", node %d/%d hosting slices %v (rf %d)", *shardIdx, *shardCnt, hosted, rf)
	} else if *shardCnt > 1 {
		mode += fmt.Sprintf(", shard %d/%d", *shardIdx, *shardCnt)
	}
	logger.Printf("TPC-H SF %g loaded in %v, %s (tables: %v)", *scale, time.Since(start).Round(time.Millisecond), mode, db.Tables())

	srv, err := server.New(server.Config{
		DB:               db,
		Slices:           slices,
		StmtCacheEntries: *stmtCache,
		ResultCacheBytes: *resCache,
		WriteTimeout:     *writeTO,
		Info:             fmt.Sprintf("bufferdbd sf=%g", *scale),
		Logf:             logger.Printf,
	})
	if err != nil {
		logger.Fatalf("server: %v", err)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}

	// ready flips on once the wire listener accepts and off when the drain
	// starts, so orchestrators stop routing before connections die.
	var ready atomic.Bool
	var httpSrv *http.Server
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := bufferdb.WriteMetrics(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			if !ready.Load() {
				http.Error(w, "not ready", http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ready")
		})
		httpSrv = &http.Server{Addr: *httpAddr, Handler: mux}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Fatalf("http sidecar: %v", err)
			}
		}()
		logger.Printf("sidecar http on %s (/metrics /healthz /readyz)", *httpAddr)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	ready.Store(true)
	logger.Printf("serving wire protocol on %s", l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Printf("received %v, draining (budget %v)", s, *drain)
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	}

	ready.Store(false)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && err != server.ErrServerClosed {
		logger.Printf("serve: %v", err)
	}
	if httpSrv != nil {
		_ = httpSrv.Shutdown(context.Background())
	}
	// Checkpoint and close the persistent tier (a no-op for in-memory
	// databases) so a clean shutdown never needs WAL replay on reboot and
	// the buffer pool's residency charge drains before the exit gauge.
	if err := db.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
	for idx, sdb := range slices {
		if idx == *shardIdx {
			continue
		}
		if err := sdb.Close(); err != nil {
			logger.Printf("close slice %d: %v", idx, err)
		}
	}
	logger.Printf("bye (tracked bytes at exit: %d)", db.TrackedBytes())
}

// coordTuning bundles the coordinator-mode knobs main forwards.
type coordTuning struct {
	hedge            time.Duration
	memLimit         int64
	writeTO          time.Duration
	drain            time.Duration
	replication      int
	breakerThreshold int
	breakerCooldown  time.Duration
}

// runCoordinator serves coordinator mode: no local data, a dist.Coordinator
// over the listed shards fronted by the same wire protocol.
func runCoordinator(logger *log.Logger, listen, httpAddr, shards string, tune coordTuning) {
	var addrs []string
	for _, a := range strings.Split(shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	co, err := dist.Open(dist.Config{
		Shards:           addrs,
		MemoryLimit:      tune.memLimit,
		HedgeDelay:       tune.hedge,
		Replication:      tune.replication,
		BreakerThreshold: tune.breakerThreshold,
		BreakerCooldown:  tune.breakerCooldown,
	})
	if err != nil {
		logger.Fatalf("coordinator: %v", err)
	}
	logger.Printf("coordinator over %d shards (rf %d): %s",
		len(addrs), shard.ClampRF(tune.replication, len(addrs)), strings.Join(addrs, ", "))

	srv, err := dist.NewServer(dist.ServerConfig{
		Coordinator:  co,
		Info:         fmt.Sprintf("bufferdb-coordinator shards=%d", len(addrs)),
		WriteTimeout: tune.writeTO,
		Logf:         logger.Printf,
	})
	if err != nil {
		logger.Fatalf("coordinator server: %v", err)
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}

	var ready atomic.Bool
	var httpSrv *http.Server
	if httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := bufferdb.WriteMetrics(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			if !ready.Load() {
				http.Error(w, "not ready", http.StatusServiceUnavailable)
				return
			}
			// Fleet health, as the breakers see it: a slice with no healthy
			// replica fails readiness (queries over it fail), lost redundancy
			// stays ready but says so.
			switch h := co.Health(); h.Status {
			case "fail":
				http.Error(w, "fail: "+h.Detail, http.StatusServiceUnavailable)
			case "warn":
				fmt.Fprintf(w, "warn: %s\n", h.Detail)
			default:
				fmt.Fprintln(w, "ready")
			}
		})
		httpSrv = &http.Server{Addr: httpAddr, Handler: mux}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Fatalf("http sidecar: %v", err)
			}
		}()
		logger.Printf("sidecar http on %s (/metrics /healthz /readyz)", httpAddr)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	ready.Store(true)
	logger.Printf("serving wire protocol on %s (coordinator)", l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Printf("received %v, draining (budget %v)", s, tune.drain)
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	}

	ready.Store(false)
	ctx, cancel := context.WithTimeout(context.Background(), tune.drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && err != dist.ErrServerClosed {
		logger.Printf("serve: %v", err)
	}
	if httpSrv != nil {
		_ = httpSrv.Shutdown(context.Background())
	}
	if err := co.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
	logger.Printf("bye (tracked bytes at exit: %d)", co.TrackedBytes())
}
