// Command benchrunner regenerates the paper's tables and figures.
//
// Usage:
//
//	benchrunner -list
//	benchrunner -exp fig10 -sf 0.02
//	benchrunner -exp all -sf 0.02 -buffersize 1024
//	benchrunner -exp all -short        # CI-grade: tiny SF, skip slow sweeps
//
// Each experiment prints the rows/series of the corresponding artifact of
// Zhou & Ross (SIGMOD 2004); see EXPERIMENTS.md for paper-vs-measured notes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bufferdb/internal/bench"
	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
)

func main() {
	var (
		sf         = flag.Float64("sf", 0.02, "TPC-H scale factor (paper: 0.2)")
		exp        = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list       = flag.Bool("list", false, "list experiments and exit")
		bufferSize = flag.Int("buffersize", 0, "buffer operator capacity (0 = 1024)")
		threshold  = flag.Float64("threshold", 0, "cardinality threshold (0 = calibrate)")
		seed       = flag.Uint64("seed", 0, "data generation seed (0 = default)")
		short      = flag.Bool("short", false, "CI-grade run: clamp the scale factor and skip slow experiments with -exp all")
		analyze    = flag.String("analyze", "", "run this SQL instrumented (conventional vs refined plan) and print per-operator stats tables instead of experiments")
		engine     = flag.String("engine", plan.EngineVolcano.String(), fmt.Sprintf("execution engine for -analyze (%s)", strings.Join(plan.EngineNames(), ", ")))
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	start := time.Now()
	runner, err := bench.NewRunner(bench.Config{
		ScaleFactor:          *sf,
		Seed:                 *seed,
		BufferSize:           *bufferSize,
		CardinalityThreshold: *threshold,
		Short:                *short,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("database: TPC-H SF %g, refinement threshold %.0f rows (setup %.1fs)\n\n",
		runner.Cfg.ScaleFactor, runner.Threshold, time.Since(start).Seconds())

	if *analyze != "" {
		if err := runAnalyze(runner, *analyze, *engine); err != nil {
			fatal(err)
		}
		return
	}

	var toRun []bench.Experiment
	if *exp == "all" {
		for _, e := range bench.Experiments() {
			if *short && e.Slow {
				continue
			}
			toRun = append(toRun, e)
		}
	} else {
		e, ok := bench.FindExperiment(*exp)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (try -list)", *exp))
		}
		toRun = []bench.Experiment{e}
	}
	for _, e := range toRun {
		t0 := time.Now()
		rep, err := e.Run(runner)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Print(rep.String())
		fmt.Printf("(%.1fs)\n\n", time.Since(t0).Seconds())
	}
}

// runAnalyze prints per-operator stats tables for the conventional and the
// refined compilation of one statement — the per-query view of what the
// aggregate experiments measure.
func runAnalyze(runner *bench.Runner, query, engineName string) error {
	engine, err := plan.ParseEngine(engineName)
	if err != nil {
		return err
	}
	p, err := runner.Plan(query, sql.Options{})
	if err != nil {
		return err
	}
	fmt.Println("-- conventional plan:")
	tbl, err := runner.Analyze(p, engine)
	if err != nil {
		return err
	}
	fmt.Print(tbl)
	refined, err := runner.Refine(p)
	if err != nil {
		return err
	}
	fmt.Println("\n-- refined plan:")
	tbl, err = runner.Analyze(refined, engine)
	if err != nil {
		return err
	}
	fmt.Print(tbl)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}
