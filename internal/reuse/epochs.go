// Package reuse is the semantic reuse cache: a process-wide store of
// completed operator state — hash-join build sides and hash-aggregate
// output tables — keyed by a normalized subplan fingerprint so
// alpha-equivalent subtrees across different queries (and different
// execution engines) share one build. Entries are charged against the
// database memory limit through a reservation hook, pinned while a query
// probes them so eviction never un-accounts memory mid-use, and evicted by
// a GDSF-style benefit score: measured build cost × hit rate / bytes, the
// same vocabulary the pager's eviction policy speaks.
//
// Freshness rides on per-table write epochs (Epochs): a fingerprint embeds
// the epoch of every table its subtree reads, so an INSERT into a
// referenced table makes dependent keys unreachable — and Invalidate
// eagerly drops them to return their bytes. The server's result cache
// shares the same epochs, giving both caches exactly-per-table
// invalidation.
package reuse

import "sync"

// Epochs tracks one monotonically increasing write epoch per table. The
// zero epoch is "never written". A DB owns exactly one Epochs instance,
// shared by every engine view, the reuse cache and the server result
// cache.
type Epochs struct {
	mu sync.Mutex
	m  map[string]uint64
}

// NewEpochs returns an empty epoch table.
func NewEpochs() *Epochs {
	return &Epochs{m: make(map[string]uint64)}
}

// Of returns the current write epoch of a table (0 if never written).
func (e *Epochs) Of(table string) uint64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.m[table]
}

// Bump advances a table's write epoch; called after a write commits.
func (e *Epochs) Bump(table string) {
	e.mu.Lock()
	e.m[table]++
	e.mu.Unlock()
}

// Snapshot captures the current epochs of the given tables. Callers take a
// snapshot when a query is fingerprinted and hand it back to
// Cache.Publish, which refuses the entry if any epoch moved while the
// query executed — a result computed before a concurrent write must not be
// published as if it were current.
func (e *Epochs) Snapshot(tables []string) map[string]uint64 {
	snap := make(map[string]uint64, len(tables))
	if e == nil {
		for _, t := range tables {
			snap[t] = 0
		}
		return snap
	}
	e.mu.Lock()
	for _, t := range tables {
		snap[t] = e.m[t]
	}
	e.mu.Unlock()
	return snap
}
