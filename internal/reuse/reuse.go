package reuse

import (
	"sync"
	"time"

	"bufferdb/internal/obsv"
	"bufferdb/internal/storage"
)

// JoinBuild is a published hash-join build side: the key→rows table every
// engine's hash join builds (the map layout is identical across the
// Volcano, vectorized and push engines, which is what makes cross-engine
// reuse possible). The map is read-only once published.
type JoinBuild struct {
	Table map[int64][]storage.Row
}

// AggTable is a published hash-aggregate result: the operator's finished,
// sorted output rows. Rows are read-only once published; consumers that
// reorder or project build new rows.
type AggTable struct {
	Rows []storage.Row
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
	Entries       int
	Bytes         int64
	MaxBytes      int64
}

// entry is one cached intermediate.
type entry struct {
	key     string
	tables  []string
	payload any
	bytes   int64
	cost    time.Duration // measured build cost, the GDSF benefit numerator
	hits    uint64
	score   float64 // GDSF priority at last touch
	pins    int     // queries currently probing this entry
	dead    bool    // evicted/invalidated while pinned; release deferred
	release func()  // returns the memory reservation (idempotent)
}

// gdsfScore is the entry's eviction priority: cheap-to-rebuild, rarely-hit
// or huge entries score low. clockBase implements the classic GDSF aging
// clock — it rises to the score of each evicted entry, so long-idle
// entries eventually lose to fresh ones regardless of historical benefit.
func gdsfScore(clockBase float64, cost time.Duration, hits uint64, bytes int64) float64 {
	if bytes <= 0 {
		bytes = 1
	}
	return clockBase + float64(cost)*float64(hits+1)/float64(bytes)
}

// Cache is the semantic reuse cache. All methods are safe for concurrent
// use. Entries hold memory reservations obtained through the reserve hook
// (DB.ReserveMemory in production) so cached intermediates compete with
// executing queries under the database's memory limit.
type Cache struct {
	maxBytes int64
	epochs   *Epochs
	reserve  func(name string, n int64) (func(), error)

	mu      sync.Mutex
	entries map[string]*entry
	total   int64
	clock   float64
	stats   Stats
}

// New builds a cache bounded to maxBytes of published payload. epochs is
// the owning database's per-table epoch table; reserve charges entry bytes
// against the memory limit (nil accepts everything untracked).
func New(maxBytes int64, epochs *Epochs, reserve func(name string, n int64) (func(), error)) *Cache {
	if reserve == nil {
		reserve = func(string, int64) (func(), error) { return func() {}, nil }
	}
	return &Cache{
		maxBytes: maxBytes,
		epochs:   epochs,
		reserve:  reserve,
		entries:  make(map[string]*entry),
	}
}

// Epochs returns the epoch table fingerprints read from.
func (c *Cache) Epochs() *Epochs {
	if c == nil {
		return nil
	}
	return c.epochs
}

// Lookup returns the payload cached under key, pinning the entry: its
// memory reservation cannot be released until the returned release func
// runs, even if the entry is evicted or invalidated meanwhile — so a query
// probing an adopted build is never probing un-accounted memory. release
// is idempotent. A miss returns ok=false (and counts it).
func (c *Cache) Lookup(key string) (payload any, release func(), ok bool) {
	if c == nil {
		return nil, nil, false
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		c.mu.Unlock()
		metricReuse("misses").Inc()
		return nil, nil, false
	}
	e.hits++
	e.pins++
	e.score = gdsfScore(c.clock, e.cost, e.hits, e.bytes)
	c.stats.Hits++
	c.mu.Unlock()
	metricReuse("hits").Inc()

	var once sync.Once
	return e.payload, func() {
		once.Do(func() { c.unpin(e) })
	}, true
}

// unpin drops one pin; the last unpin of a dead entry runs its deferred
// reservation release.
func (c *Cache) unpin(e *entry) {
	c.mu.Lock()
	e.pins--
	fire := e.dead && e.pins == 0
	c.mu.Unlock()
	if fire {
		e.release()
	}
}

// Publish inserts a freshly built payload under key. snapshot is the
// per-table epoch snapshot taken when the query was fingerprinted; if any
// of those tables has been written since, the payload may predate the
// write and is refused. Entries are refused (silently, reported by the
// return) when the key is already present, the payload alone exceeds the
// cache bound, or the memory reservation is rejected. Lower-scored entries
// are evicted until the new one fits.
func (c *Cache) Publish(key string, tables []string, snapshot map[string]uint64, payload any, bytes int64, cost time.Duration) bool {
	if c == nil {
		return false
	}
	release, err := c.reserve("reuse-cache", bytes)
	if err != nil {
		return false
	}
	c.mu.Lock()
	if bytes > c.maxBytes {
		c.mu.Unlock()
		release()
		return false
	}
	for t, ep := range snapshot {
		if c.epochs.Of(t) != ep {
			c.mu.Unlock()
			release()
			return false
		}
	}
	if _, dup := c.entries[key]; dup {
		c.mu.Unlock()
		release()
		return false
	}
	evicted := c.evictLocked(c.maxBytes - bytes)
	e := &entry{
		key: key, tables: append([]string(nil), tables...),
		payload: payload, bytes: bytes, cost: cost, release: release,
	}
	e.score = gdsfScore(c.clock, cost, 0, bytes)
	c.entries[key] = e
	c.total += bytes
	c.settleLocked(evicted, "evictions")
	c.mu.Unlock()
	return true
}

// evictLocked removes lowest-scored unpinned-or-not entries until total <=
// budget, returning the victims for the caller to settle outside the lock.
// Pinned victims are marked dead instead of released immediately.
func (c *Cache) evictLocked(budget int64) []*entry {
	var out []*entry
	for c.total > budget {
		var victim *entry
		for _, e := range c.entries {
			if victim == nil || e.score < victim.score {
				victim = e
			}
		}
		if victim == nil {
			break
		}
		// GDSF aging: the clock rises to the evicted score, so future
		// insertions and hits outrank long-idle survivors.
		if victim.score > c.clock {
			c.clock = victim.score
		}
		delete(c.entries, victim.key)
		c.total -= victim.bytes
		out = append(out, victim)
	}
	return out
}

// settleLocked finishes an eviction/invalidation batch: counts it and
// releases unpinned victims. Must be called with c.mu held; releases run
// after unlocking is the caller's concern — release funcs are cheap
// (tracker arithmetic), so running them under the lock is fine.
func (c *Cache) settleLocked(victims []*entry, event string) {
	for _, e := range victims {
		if event == "evictions" {
			c.stats.Evictions++
		} else {
			c.stats.Invalidations++
		}
		metricReuse(event).Inc()
		if e.pins > 0 {
			e.dead = true
		} else {
			e.release()
		}
	}
	metricReuseBytes().Set(float64(c.total))
}

// Invalidate drops every entry whose subtree reads table; entries over
// untouched tables survive. Pinned dependents are marked dead and released
// at last unpin. The caller bumps the table's write epoch (Epochs.Bump)
// alongside — the epoch guards publishes, this guards lookups.
func (c *Cache) Invalidate(table string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	var victims []*entry
	for _, e := range c.entries {
		for _, t := range e.tables {
			if t == table {
				victims = append(victims, e)
				break
			}
		}
	}
	for _, e := range victims {
		delete(c.entries, e.key)
		c.total -= e.bytes
	}
	c.settleLocked(victims, "invalidations")
	c.mu.Unlock()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.total
	s.MaxBytes = c.maxBytes
	return s
}

// Close releases every reservation (deferring pinned ones to their unpin)
// and empties the cache; afterwards every lookup misses and every publish
// is refused by the zero budget.
func (c *Cache) Close() {
	if c == nil {
		return
	}
	c.mu.Lock()
	var victims []*entry
	for _, e := range c.entries {
		victims = append(victims, e)
	}
	c.entries = make(map[string]*entry)
	c.total = 0
	c.maxBytes = 0
	for _, e := range victims {
		if e.pins > 0 {
			e.dead = true
		} else {
			e.release()
		}
	}
	metricReuseBytes().Set(0)
	c.mu.Unlock()
}

// The process-wide reuse metrics, next to the engine's query counters:
//
//	bufferdb_reuse_hits_total           lookups served from the cache
//	bufferdb_reuse_misses_total         lookups that fell through
//	bufferdb_reuse_evictions_total      entries displaced by the GDSF policy
//	bufferdb_reuse_invalidations_total  entries dropped by table writes
//	bufferdb_reuse_bytes                payload bytes resident now

func metricReuse(event string) *obsv.Counter {
	return obsv.Default.Counter("bufferdb_reuse_" + event + "_total")
}

func metricReuseBytes() *obsv.Gauge {
	return obsv.Default.Gauge("bufferdb_reuse_bytes")
}
