package reuse

import (
	"fmt"
	"testing"
	"time"
)

// trackingReserve returns a reserve hook that records outstanding bytes.
func trackingReserve(outstanding *int64) func(string, int64) (func(), error) {
	return func(_ string, n int64) (func(), error) {
		*outstanding += n
		done := false
		return func() {
			if !done {
				done = true
				*outstanding -= n
			}
		}, nil
	}
}

func TestPublishLookupHit(t *testing.T) {
	ep := NewEpochs()
	c := New(1<<20, ep, nil)
	snap := ep.Snapshot([]string{"nation"})
	if !c.Publish("k1", []string{"nation"}, snap, &AggTable{}, 100, time.Millisecond) {
		t.Fatal("publish refused")
	}
	p, release, ok := c.Lookup("k1")
	if !ok {
		t.Fatal("lookup missed")
	}
	if _, isAgg := p.(*AggTable); !isAgg {
		t.Fatalf("payload type %T", p)
	}
	release()
	release() // idempotent
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 0 || s.Entries != 1 || s.Bytes != 100 {
		t.Fatalf("stats %+v", s)
	}
	if _, _, ok := c.Lookup("absent"); ok {
		t.Fatal("phantom hit")
	}
	if c.Stats().Misses != 1 {
		t.Fatalf("miss not counted: %+v", c.Stats())
	}
}

func TestPublishRefusals(t *testing.T) {
	ep := NewEpochs()
	c := New(1000, ep, nil)
	snap := ep.Snapshot([]string{"t"})
	if c.Publish("big", []string{"t"}, snap, &AggTable{}, 2000, time.Second) {
		t.Fatal("oversize entry accepted")
	}
	if !c.Publish("k", []string{"t"}, snap, &AggTable{}, 10, time.Second) {
		t.Fatal("publish refused")
	}
	if c.Publish("k", []string{"t"}, snap, &AggTable{}, 10, time.Second) {
		t.Fatal("duplicate key accepted")
	}
	// A snapshot predating a write must be refused: the payload may be stale.
	ep.Bump("t")
	if c.Publish("k2", []string{"t"}, snap, &AggTable{}, 10, time.Second) {
		t.Fatal("stale-snapshot publish accepted")
	}
	refuse := func(string, int64) (func(), error) { return nil, fmt.Errorf("limit") }
	c2 := New(1000, ep, refuse)
	if c2.Publish("k", nil, nil, &AggTable{}, 10, time.Second) {
		t.Fatal("publish accepted despite refused reservation")
	}
}

func TestGDSFEviction(t *testing.T) {
	var outstanding int64
	ep := NewEpochs()
	c := New(300, ep, trackingReserve(&outstanding))
	// Three 100-byte entries; "cheap" has the lowest cost×(hits+1)/bytes
	// score and must be the first victim.
	c.Publish("cheap", nil, nil, &AggTable{}, 100, 1*time.Microsecond)
	c.Publish("mid", nil, nil, &AggTable{}, 100, 1*time.Millisecond)
	c.Publish("dear", nil, nil, &AggTable{}, 100, 1*time.Second)
	if !c.Publish("new", nil, nil, &AggTable{}, 100, 10*time.Millisecond) {
		t.Fatal("publish refused")
	}
	if _, _, ok := c.Lookup("cheap"); ok {
		t.Fatal("lowest-scored entry survived eviction")
	}
	for _, k := range []string{"mid", "dear", "new"} {
		if _, rel, ok := c.Lookup(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		} else {
			rel()
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Bytes != 300 {
		t.Fatalf("stats %+v", s)
	}
	if outstanding != 300 {
		t.Fatalf("outstanding reservation %d, want 300", outstanding)
	}
}

func TestPinnedEvictionDefersRelease(t *testing.T) {
	var outstanding int64
	ep := NewEpochs()
	c := New(100, ep, trackingReserve(&outstanding))
	c.Publish("pinned", nil, nil, &JoinBuild{}, 100, time.Millisecond)
	_, release, ok := c.Lookup("pinned")
	if !ok {
		t.Fatal("lookup missed")
	}
	// Displace the pinned entry; its reservation must survive the eviction.
	if !c.Publish("next", nil, nil, &JoinBuild{}, 100, time.Hour) {
		t.Fatal("publish refused")
	}
	if outstanding != 200 {
		t.Fatalf("outstanding %d while pinned, want 200", outstanding)
	}
	if _, _, ok := c.Lookup("pinned"); ok {
		t.Fatal("evicted entry still served")
	}
	release()
	if outstanding != 100 {
		t.Fatalf("outstanding %d after unpin, want 100", outstanding)
	}
}

func TestInvalidatePerTable(t *testing.T) {
	var outstanding int64
	ep := NewEpochs()
	c := New(1<<20, ep, trackingReserve(&outstanding))
	c.Publish("li", []string{"lineitem"}, ep.Snapshot([]string{"lineitem"}), &AggTable{}, 10, time.Second)
	c.Publish("ord", []string{"orders"}, ep.Snapshot([]string{"orders"}), &AggTable{}, 10, time.Second)
	c.Publish("join", []string{"lineitem", "orders"}, ep.Snapshot([]string{"lineitem", "orders"}), &JoinBuild{}, 10, time.Second)
	ep.Bump("lineitem")
	c.Invalidate("lineitem")
	if _, _, ok := c.Lookup("li"); ok {
		t.Fatal("entry over written table survived")
	}
	if _, _, ok := c.Lookup("join"); ok {
		t.Fatal("dependent join entry survived")
	}
	if _, rel, ok := c.Lookup("ord"); !ok {
		t.Fatal("entry over untouched table dropped")
	} else {
		rel()
	}
	s := c.Stats()
	if s.Invalidations != 2 || s.Entries != 1 {
		t.Fatalf("stats %+v", s)
	}
	if outstanding != 10 {
		t.Fatalf("outstanding %d, want 10", outstanding)
	}
}

func TestCloseReleasesEverything(t *testing.T) {
	var outstanding int64
	ep := NewEpochs()
	c := New(1<<20, ep, trackingReserve(&outstanding))
	c.Publish("a", nil, nil, &AggTable{}, 10, time.Second)
	c.Publish("b", nil, nil, &AggTable{}, 20, time.Second)
	_, release, _ := c.Lookup("a")
	c.Close()
	if outstanding != 10 {
		t.Fatalf("outstanding %d after close with one pin, want 10", outstanding)
	}
	release()
	if outstanding != 0 {
		t.Fatalf("outstanding %d after final unpin, want 0", outstanding)
	}
	if c.Publish("c", nil, nil, &AggTable{}, 1, time.Second) {
		t.Fatal("publish accepted after Close")
	}
	if _, _, ok := c.Lookup("b"); ok {
		t.Fatal("lookup hit after Close")
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if _, _, ok := c.Lookup("k"); ok {
		t.Fatal("nil cache hit")
	}
	if c.Publish("k", nil, nil, nil, 1, 0) {
		t.Fatal("nil cache accepted publish")
	}
	c.Invalidate("t")
	c.Close()
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats %+v", s)
	}
}
