package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func checkHealthy(t *testing.T, tr *Tree) {
	t.Helper()
	if errs := tr.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("invariant violations: %v", errs)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.LookupOne(5); ok {
		t.Error("LookupOne on empty tree found something")
	}
	if rids, ok := tr.Lookup(5); ok || rids != nil {
		t.Error("Lookup on empty tree found something")
	}
	if _, _, ok := tr.Min().Next(); ok {
		t.Error("cursor on empty tree yielded an entry")
	}
	checkHealthy(t, tr)
}

func TestInsertLookupSequential(t *testing.T) {
	tr := New()
	const n = 10_000
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), i*10)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Fatalf("tree did not split: height=%d", tr.Height())
	}
	for _, k := range []int64{0, 1, 500, 9_999} {
		rid, ok := tr.LookupOne(k)
		if !ok || rid != int(k)*10 {
			t.Errorf("LookupOne(%d) = %d, %v", k, rid, ok)
		}
	}
	if _, ok := tr.LookupOne(n); ok {
		t.Error("found a key beyond the inserted range")
	}
	checkHealthy(t, tr)
}

func TestInsertLookupRandomOrder(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(5000)
	for _, k := range keys {
		tr.Insert(int64(k), k+1)
	}
	for _, k := range []int{0, 1234, 4999} {
		rid, ok := tr.LookupOne(int64(k))
		if !ok || rid != k+1 {
			t.Errorf("LookupOne(%d) = %d, %v", k, rid, ok)
		}
	}
	checkHealthy(t, tr)
}

func TestDuplicateKeys(t *testing.T) {
	tr := New()
	// Simulate a foreign-key index: each order key has 1–7 lineitems.
	for rid := 0; rid < 300; rid++ {
		tr.Insert(int64(rid/3), rid)
	}
	rids, ok := tr.Lookup(10)
	if !ok || len(rids) != 3 {
		t.Fatalf("Lookup(10) = %v, %v", rids, ok)
	}
	// Insertion order must be preserved.
	if rids[0] != 30 || rids[1] != 31 || rids[2] != 32 {
		t.Errorf("duplicate rids out of insertion order: %v", rids)
	}
	checkHealthy(t, tr)
}

func TestSeekAndScan(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(int64(i*2), i) // even keys 0..198
	}
	c := tr.SeekGE(51) // between 50 and 52
	k, rid, ok := c.Next()
	if !ok || k != 52 || rid != 26 {
		t.Fatalf("Seek(51).Next() = %d, %d, %v", k, rid, ok)
	}
	// Scan to the end and count.
	n := 1
	prev := k
	for {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		if k <= prev {
			t.Fatalf("scan regressed: %d after %d", k, prev)
		}
		prev = k
		n++
	}
	if n != 74 { // keys 52..198
		t.Errorf("scanned %d entries, want 74", n)
	}
	// Seek beyond the maximum key.
	if _, _, ok := tr.SeekGE(10_000).Next(); ok {
		t.Error("Seek past end yielded an entry")
	}
}

func TestMinScanIsSorted(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(42))
	const n = 3000
	want := make([]int64, n)
	for i := range want {
		k := int64(rng.Intn(500)) // plenty of duplicates
		want[i] = k
		tr.Insert(k, i)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	c := tr.Min()
	for i := 0; i < n; i++ {
		k, _, ok := c.Next()
		if !ok {
			t.Fatalf("cursor exhausted at %d of %d", i, n)
		}
		if k != want[i] {
			t.Fatalf("entry %d: key %d, want %d", i, k, want[i])
		}
	}
	if _, _, ok := c.Next(); ok {
		t.Error("cursor yielded beyond Len entries")
	}
}

// Property: for any multiset of int16 keys, every inserted key is found with
// the right multiplicity and the invariant checker stays quiet.
func TestTreeMatchesReferenceProperty(t *testing.T) {
	f := func(keys []int16) bool {
		tr := New()
		ref := make(map[int64][]int)
		for rid, k16 := range keys {
			k := int64(k16)
			tr.Insert(k, rid)
			ref[k] = append(ref[k], rid)
		}
		if tr.Len() != len(keys) {
			return false
		}
		for k, wantRids := range ref {
			got, ok := tr.Lookup(k)
			if !ok || len(got) != len(wantRids) {
				return false
			}
			for i := range got {
				if got[i] != wantRids[i] {
					return false
				}
			}
		}
		return len(tr.CheckInvariants()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i), i)
	}
}

func BenchmarkLookupOne(b *testing.B) {
	tr := New()
	const n = 100_000
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.LookupOne(int64(i % n)); !ok {
			b.Fatal("missing key")
		}
	}
}
