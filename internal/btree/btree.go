// Package btree implements an in-memory B+-tree keyed by int64, mapping keys
// to heap row identifiers. It backs the engine's IndexScan operator: primary
// key lookups (e.g. orders.o_orderkey) and ordered full-index scans for
// merge joins.
//
// Duplicate keys are supported; a key's row identifiers are returned in
// insertion order. The tree is not safe for concurrent mutation; the engine
// builds all indexes at load time and only reads them during execution.
package btree

import (
	"fmt"
	"sort"
)

// fanout is the maximum number of keys per node. 64 keeps inner nodes near
// one cache line of keys and makes splits rare for the workload sizes the
// benchmark harness generates.
const fanout = 64

// Tree is an in-memory B+-tree from int64 keys to int row identifiers.
type Tree struct {
	root   node
	height int
	size   int
}

// node is either an *inner or a *leaf.
type node interface {
	// insert adds key→rid and reports a split: when the returned node is
	// non-nil, the caller must add (sep, right) above this node.
	insert(key int64, rid int) (sep int64, right node)
	// firstLeafGE descends to the leaf containing the smallest key >= key
	// and returns it with the position of that key.
	firstLeafGE(key int64) (*leaf, int)
	// depthCheck verifies invariants, returning leaf depth.
	depthCheck(t *testingSink, depth int) int
}

type inner struct {
	// keys[i] separates children[i] (< keys[i]) from children[i+1] (>= keys[i]).
	keys     []int64
	children []node
}

type leaf struct {
	keys []int64
	rids []int
	next *leaf
}

// New creates an empty tree.
func New() *Tree {
	return &Tree{root: &leaf{}, height: 1}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 = a single leaf).
func (t *Tree) Height() int { return t.height }

// Insert adds one key → row-identifier entry. Duplicates are allowed.
func (t *Tree) Insert(key int64, rid int) {
	sep, right := t.root.insert(key, rid)
	if right != nil {
		t.root = &inner{keys: []int64{sep}, children: []node{t.root, right}}
		t.height++
	}
	t.size++
}

// Lookup returns the row identifiers stored under key, in insertion order.
// The second result reports whether the key is present.
func (t *Tree) Lookup(key int64) ([]int, bool) {
	lf, i := t.root.firstLeafGE(key)
	var out []int
	for lf != nil {
		for ; i < len(lf.keys); i++ {
			if lf.keys[i] != key {
				return out, len(out) > 0
			}
			out = append(out, lf.rids[i])
		}
		lf, i = lf.next, 0
	}
	return out, len(out) > 0
}

// LookupOne returns the first row identifier under key. It is the fast path
// for unique (primary key) indexes.
func (t *Tree) LookupOne(key int64) (int, bool) {
	lf, i := t.root.firstLeafGE(key)
	for lf != nil && i >= len(lf.keys) {
		lf, i = lf.next, 0
	}
	if lf == nil || lf.keys[i] != key {
		return 0, false
	}
	return lf.rids[i], true
}

// Cursor iterates entries in key order starting at the smallest key >= from.
type Cursor struct {
	lf  *leaf
	pos int
}

// SeekGE positions a cursor at the smallest key >= from.
func (t *Tree) SeekGE(from int64) *Cursor {
	lf, i := t.root.firstLeafGE(from)
	return &Cursor{lf: lf, pos: i}
}

// Min positions a cursor at the smallest key in the tree.
func (t *Tree) Min() *Cursor {
	return t.SeekGE(minInt64)
}

const minInt64 = -1 << 63

// Next returns the current entry and advances. ok=false signals exhaustion.
func (c *Cursor) Next() (key int64, rid int, ok bool) {
	for c.lf != nil && c.pos >= len(c.lf.keys) {
		c.lf, c.pos = c.lf.next, 0
	}
	if c.lf == nil {
		return 0, 0, false
	}
	key, rid = c.lf.keys[c.pos], c.lf.rids[c.pos]
	c.pos++
	return key, rid, true
}

// --- node implementations ---

func (l *leaf) insert(key int64, rid int) (int64, node) {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] > key })
	l.keys = append(l.keys, 0)
	l.rids = append(l.rids, 0)
	copy(l.keys[i+1:], l.keys[i:])
	copy(l.rids[i+1:], l.rids[i:])
	l.keys[i], l.rids[i] = key, rid

	if len(l.keys) <= fanout {
		return 0, nil
	}
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append([]int64(nil), l.keys[mid:]...),
		rids: append([]int(nil), l.rids[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid:mid]
	l.rids = l.rids[:mid:mid]
	l.next = right
	return right.keys[0], right
}

func (l *leaf) firstLeafGE(key int64) (*leaf, int) {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	return l, i
}

func (in *inner) insert(key int64, rid int) (int64, node) {
	i := sort.Search(len(in.keys), func(i int) bool { return in.keys[i] > key })
	sep, right := in.children[i].insert(key, rid)
	if right == nil {
		return 0, nil
	}
	in.keys = append(in.keys, 0)
	in.children = append(in.children, nil)
	copy(in.keys[i+1:], in.keys[i:])
	copy(in.children[i+2:], in.children[i+1:])
	in.keys[i] = sep
	in.children[i+1] = right

	if len(in.keys) <= fanout {
		return 0, nil
	}
	mid := len(in.keys) / 2
	upSep := in.keys[mid]
	rightNode := &inner{
		keys:     append([]int64(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	return upSep, rightNode
}

func (in *inner) firstLeafGE(key int64) (*leaf, int) {
	// Descend into the leftmost child that can contain key. Using >= here
	// (rather than >) matters for duplicate keys: a separator equal to the
	// key means equal entries may end the left child, and the leaf chain
	// walk in the callers picks up the rest from the right siblings.
	i := sort.Search(len(in.keys), func(i int) bool { return in.keys[i] >= key })
	return in.children[i].firstLeafGE(key)
}

// --- invariant checking (used by tests and the property suite) ---

// testingSink lets depthCheck report problems without importing testing.
type testingSink struct {
	errs []string
}

func (s *testingSink) errorf(format string, args ...any) {
	s.errs = append(s.errs, fmt.Sprintf(format, args...))
}

func (l *leaf) depthCheck(t *testingSink, depth int) int {
	for i := 1; i < len(l.keys); i++ {
		if l.keys[i-1] > l.keys[i] {
			t.errorf("leaf keys out of order at %d: %d > %d", i, l.keys[i-1], l.keys[i])
		}
	}
	if len(l.keys) != len(l.rids) {
		t.errorf("leaf keys/rids length mismatch: %d vs %d", len(l.keys), len(l.rids))
	}
	return depth
}

func (in *inner) depthCheck(t *testingSink, depth int) int {
	if len(in.children) != len(in.keys)+1 {
		t.errorf("inner arity mismatch: %d keys, %d children", len(in.keys), len(in.children))
	}
	d := -1
	for _, c := range in.children {
		cd := c.depthCheck(t, depth+1)
		if d == -1 {
			d = cd
		} else if d != cd {
			t.errorf("unbalanced tree: leaf depths %d and %d", d, cd)
		}
	}
	return d
}

// CheckInvariants verifies structural invariants: sorted leaves, balanced
// depth, key/rid parity, and that an in-order walk yields sorted keys whose
// count equals Len(). It returns a list of violations (empty when healthy).
func (t *Tree) CheckInvariants() []string {
	sink := &testingSink{}
	t.root.depthCheck(sink, 1)
	c := t.Min()
	prev := int64(minInt64)
	n := 0
	for {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		if k < prev {
			sink.errorf("in-order walk regressed: %d after %d", k, prev)
		}
		prev = k
		n++
	}
	if n != t.size {
		sink.errorf("walk visited %d entries, Len() = %d", n, t.size)
	}
	return sink.errs
}
