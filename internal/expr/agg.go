package expr

import (
	"fmt"

	"bufferdb/internal/storage"
)

// AggFunc enumerates the aggregate functions.
type AggFunc uint8

// Aggregate functions supported by the engine — exactly the set whose
// instruction footprints the paper's Table 2 reports (COUNT, MIN, MAX,
// SUM, AVG).
const (
	AggCountStar AggFunc = iota // COUNT(*)
	AggCount                    // COUNT(expr): non-NULL inputs
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling.
func (f AggFunc) String() string {
	switch f {
	case AggCountStar:
		return "COUNT(*)"
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// AggSpec is one aggregate call in a SELECT list.
type AggSpec struct {
	Func AggFunc
	// Arg is the argument expression; nil for COUNT(*).
	Arg Expr
	// As is the output column name ("" defaults to a rendering of the call).
	As string
}

// OutputName returns the column name of this aggregate in the result schema.
func (a AggSpec) OutputName() string {
	if a.As != "" {
		return a.As
	}
	if a.Func == AggCountStar {
		return "count"
	}
	return a.Func.String() + "(" + a.Arg.String() + ")"
}

// ResultType returns the static output type of the aggregate.
func (a AggSpec) ResultType() (storage.Type, error) {
	switch a.Func {
	case AggCountStar, AggCount:
		return storage.TypeInt64, nil
	case AggAvg:
		if a.Arg == nil || (!a.Arg.Type().Numeric() && a.Arg.Type() != storage.TypeNull) {
			return storage.TypeNull, fmt.Errorf("expr: AVG needs a numeric argument")
		}
		return storage.TypeFloat64, nil
	case AggSum:
		if a.Arg == nil || (!a.Arg.Type().Numeric() && a.Arg.Type() != storage.TypeNull) {
			return storage.TypeNull, fmt.Errorf("expr: SUM needs a numeric argument")
		}
		return a.Arg.Type(), nil
	case AggMin, AggMax:
		if a.Arg == nil {
			return storage.TypeNull, fmt.Errorf("expr: %v needs an argument", a.Func)
		}
		return a.Arg.Type(), nil
	default:
		return storage.TypeNull, fmt.Errorf("expr: unknown aggregate %v", a.Func)
	}
}

// String renders the aggregate call.
func (a AggSpec) String() string {
	if a.Func == AggCountStar {
		return "COUNT(*)"
	}
	return a.Func.String() + "(" + a.Arg.String() + ")"
}

// Accumulator is the per-group running state of one aggregate.
type Accumulator interface {
	// Add folds one input row into the state.
	Add(row storage.Row) error
	// Result returns the final aggregate value.
	Result() storage.Value
	// Reset clears the state for reuse on the next group.
	Reset()
}

// NewAccumulator builds the accumulator for a spec.
func NewAccumulator(spec AggSpec) (Accumulator, error) {
	rt, err := spec.ResultType()
	if err != nil {
		return nil, err
	}
	switch spec.Func {
	case AggCountStar:
		return &countAcc{star: true}, nil
	case AggCount:
		return &countAcc{arg: spec.Arg}, nil
	case AggSum:
		return &sumAcc{arg: spec.Arg, isInt: rt == storage.TypeInt64}, nil
	case AggAvg:
		return &avgAcc{arg: spec.Arg}, nil
	case AggMin:
		return &minMaxAcc{arg: spec.Arg, wantLess: true}, nil
	case AggMax:
		return &minMaxAcc{arg: spec.Arg, wantLess: false}, nil
	default:
		return nil, fmt.Errorf("expr: unknown aggregate %v", spec.Func)
	}
}

type countAcc struct {
	star bool
	arg  Expr
	n    int64
}

func (a *countAcc) Add(row storage.Row) error {
	if a.star {
		a.n++
		return nil
	}
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	if !v.IsNull() {
		a.n++
	}
	return nil
}

func (a *countAcc) Result() storage.Value { return storage.NewInt(a.n) }
func (a *countAcc) Reset()                { a.n = 0 }

type sumAcc struct {
	arg   Expr
	isInt bool
	any   bool
	sumI  int64
	sumF  float64
}

func (a *sumAcc) Add(row storage.Row) error {
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	a.any = true
	if a.isInt {
		a.sumI += v.I
	} else {
		a.sumF += v.AsFloat()
	}
	return nil
}

func (a *sumAcc) Result() storage.Value {
	if !a.any {
		return storage.Null // SUM over no rows is NULL
	}
	if a.isInt {
		return storage.NewInt(a.sumI)
	}
	return storage.NewFloat(a.sumF)
}

func (a *sumAcc) Reset() { a.any, a.sumI, a.sumF = false, 0, 0 }

type avgAcc struct {
	arg Expr
	n   int64
	sum float64
}

func (a *avgAcc) Add(row storage.Row) error {
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	a.n++
	a.sum += v.AsFloat()
	return nil
}

func (a *avgAcc) Result() storage.Value {
	if a.n == 0 {
		return storage.Null
	}
	return storage.NewFloat(a.sum / float64(a.n))
}

func (a *avgAcc) Reset() { a.n, a.sum = 0, 0 }

type minMaxAcc struct {
	arg      Expr
	wantLess bool
	best     storage.Value
	any      bool
}

func (a *minMaxAcc) Add(row storage.Row) error {
	v, err := a.arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if !a.any {
		a.best, a.any = v, true
		return nil
	}
	c := storage.Compare(v, a.best)
	if (a.wantLess && c < 0) || (!a.wantLess && c > 0) {
		a.best = v
	}
	return nil
}

func (a *minMaxAcc) Result() storage.Value {
	if !a.any {
		return storage.Null
	}
	return a.best
}

func (a *minMaxAcc) Reset() { a.any = false; a.best = storage.Null }
