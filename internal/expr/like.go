package expr

import (
	"fmt"
	"strings"

	"bufferdb/internal/storage"
)

// Like implements the SQL LIKE predicate with the standard wildcards:
// '%' matches any run of characters (including empty), '_' matches exactly
// one character. The pattern is a constant, which covers all TPC-H usage
// (e.g. p_type LIKE 'PROMO%').
type Like struct {
	E       Expr
	Pattern string
	Negate  bool

	// matcher is the compiled fast-path matcher.
	matcher func(string) bool
}

// NewLike builds a type-checked LIKE predicate and compiles the pattern.
func NewLike(e Expr, pattern string, negate bool) (*Like, error) {
	if t := e.Type(); t != storage.TypeString && t != storage.TypeNull {
		return nil, fmt.Errorf("expr: LIKE operand must be VARCHAR, got %v", t)
	}
	l := &Like{E: e, Pattern: pattern, Negate: negate}
	l.matcher = compileLike(pattern)
	return l, nil
}

// compileLike builds a matcher for the pattern. Patterns without '_' and
// with '%' only at the ends compile to prefix/suffix/contains checks; the
// general case falls back to a linear-time greedy wildcard match.
func compileLike(pattern string) func(string) bool {
	hasUnderscore := strings.ContainsRune(pattern, '_')
	if !hasUnderscore {
		inner := pattern
		prefixWild := strings.HasPrefix(inner, "%")
		suffixWild := strings.HasSuffix(inner, "%")
		trimmed := strings.TrimPrefix(strings.TrimSuffix(inner, "%"), "%")
		if !strings.ContainsRune(trimmed, '%') {
			switch {
			case prefixWild && suffixWild:
				return func(s string) bool { return strings.Contains(s, trimmed) }
			case suffixWild:
				return func(s string) bool { return strings.HasPrefix(s, trimmed) }
			case prefixWild:
				return func(s string) bool { return strings.HasSuffix(s, trimmed) }
			default:
				return func(s string) bool { return s == trimmed }
			}
		}
	}
	return func(s string) bool { return likeMatch(pattern, s) }
}

// likeMatch is the general wildcard matcher. It runs the classic two-pointer
// greedy algorithm, O(len(p)·len(s)) worst case but linear in practice.
func likeMatch(pattern, s string) bool {
	pi, si := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			starSi = si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// Eval implements Expr.
func (l *Like) Eval(row storage.Row) (storage.Value, error) {
	v, err := l.E.Eval(row)
	if err != nil {
		return storage.Null, err
	}
	if v.IsNull() {
		return storage.Null, nil
	}
	return storage.NewBool(l.matcher(v.S) != l.Negate), nil
}

// Type implements Expr.
func (l *Like) Type() storage.Type { return storage.TypeBool }

// String implements Expr.
func (l *Like) String() string {
	op := " LIKE '"
	if l.Negate {
		op = " NOT LIKE '"
	}
	return l.E.String() + op + l.Pattern + "'"
}
