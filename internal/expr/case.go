package expr

import (
	"fmt"
	"strings"

	"bufferdb/internal/storage"
)

// When is one WHEN condition THEN result arm of a CASE expression.
type When struct {
	Cond Expr
	Then Expr
}

// Case is the searched CASE expression:
//
//	CASE WHEN cond THEN expr [WHEN cond THEN expr]... [ELSE expr] END
//
// All THEN/ELSE results must share a type (numeric widening allowed);
// a missing ELSE yields NULL.
type Case struct {
	Whens []When
	Else  Expr
	typ   storage.Type
}

// NewCase builds a type-checked CASE expression.
func NewCase(whens []When, elseExpr Expr) (*Case, error) {
	if len(whens) == 0 {
		return nil, fmt.Errorf("expr: CASE needs at least one WHEN arm")
	}
	c := &Case{Whens: whens, Else: elseExpr}
	resultTypes := make([]storage.Type, 0, len(whens)+1)
	for _, w := range whens {
		if t := w.Cond.Type(); t != storage.TypeBool && t != storage.TypeNull {
			return nil, fmt.Errorf("expr: CASE condition must be BOOLEAN, got %v", t)
		}
		resultTypes = append(resultTypes, w.Then.Type())
	}
	if elseExpr != nil {
		resultTypes = append(resultTypes, elseExpr.Type())
	}
	c.typ = storage.TypeNull
	for _, t := range resultTypes {
		switch {
		case t == storage.TypeNull:
			// NULL arms adopt the others' type.
		case c.typ == storage.TypeNull:
			c.typ = t
		case c.typ == t:
			// consistent
		case c.typ.Numeric() && t.Numeric():
			c.typ = storage.TypeFloat64
		default:
			return nil, fmt.Errorf("expr: CASE arms mix %v and %v", c.typ, t)
		}
	}
	return c, nil
}

// Eval implements Expr: the first true condition selects the result; a
// NULL or false condition falls through; no match yields ELSE (or NULL).
func (c *Case) Eval(row storage.Row) (storage.Value, error) {
	for _, w := range c.Whens {
		ok, err := EvalBool(w.Cond, row)
		if err != nil {
			return storage.Null, err
		}
		if ok {
			return c.widen(w.Then.Eval(row))
		}
	}
	if c.Else == nil {
		return storage.Null, nil
	}
	return c.widen(c.Else.Eval(row))
}

// widen coerces integer arm results to float when the CASE type widened.
func (c *Case) widen(v storage.Value, err error) (storage.Value, error) {
	if err != nil || v.IsNull() {
		return v, err
	}
	if c.typ == storage.TypeFloat64 && v.Kind == storage.TypeInt64 {
		return storage.NewFloat(float64(v.I)), nil
	}
	return v, nil
}

// Type implements Expr.
func (c *Case) Type() storage.Type { return c.typ }

// String implements Expr.
func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond.String(), w.Then.String())
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}
