package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"bufferdb/internal/storage"
)

func intc(v int64) Expr      { return NewConst(storage.NewInt(v)) }
func floatc(v float64) Expr  { return NewConst(storage.NewFloat(v)) }
func strc(v string) Expr     { return NewConst(storage.NewString(v)) }
func boolc(v bool) Expr      { return NewConst(storage.NewBool(v)) }
func nullc() Expr            { return NewConst(storage.Null) }
func datec(y, m, d int) Expr { return NewConst(storage.DateFromYMD(y, m, d)) }

func mustEval(t *testing.T, e Expr, row storage.Row) storage.Value {
	t.Helper()
	v, err := e.Eval(row)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e.String(), err)
	}
	return v
}

func TestColRef(t *testing.T) {
	row := storage.Row{storage.NewInt(7), storage.NewString("x")}
	c := NewColRef(1, "t.b", storage.TypeString)
	if got := mustEval(t, c, row); got.S != "x" {
		t.Errorf("ColRef eval = %v", got)
	}
	if c.Type() != storage.TypeString || c.String() != "t.b" {
		t.Errorf("ColRef meta: %v %q", c.Type(), c.String())
	}
	oob := NewColRef(5, "t.z", storage.TypeInt64)
	if _, err := oob.Eval(row); err == nil {
		t.Error("out-of-range ColRef did not error")
	}
}

func TestConst(t *testing.T) {
	c := NewConst(storage.NewFloat(2.5))
	if got := mustEval(t, c, nil); got.F != 2.5 {
		t.Errorf("const = %v", got)
	}
	if NewConst(storage.NewString("s")).String() != "'s'" {
		t.Error("string const not quoted")
	}
	if intc(3).String() != "3" {
		t.Error("int const quoted")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		op       BinOp
		l, r     Expr
		wantKind storage.Type
		wantI    int64
		wantF    float64
	}{
		{OpAdd, intc(2), intc(3), storage.TypeInt64, 5, 0},
		{OpSub, intc(2), intc(3), storage.TypeInt64, -1, 0},
		{OpMul, intc(4), intc(3), storage.TypeInt64, 12, 0},
		{OpAdd, intc(2), floatc(0.5), storage.TypeFloat64, 0, 2.5},
		{OpMul, floatc(1.5), floatc(2), storage.TypeFloat64, 0, 3},
		{OpDiv, intc(7), intc(2), storage.TypeFloat64, 0, 3.5},
		{OpSub, floatc(1), floatc(0.25), storage.TypeFloat64, 0, 0.75},
	}
	for _, c := range cases {
		b := MustBinary(c.op, c.l, c.r)
		if b.Type() != c.wantKind {
			t.Errorf("%s type = %v, want %v", b, b.Type(), c.wantKind)
		}
		got := mustEval(t, b, nil)
		if got.Kind != c.wantKind || got.I != c.wantI || got.F != c.wantF {
			t.Errorf("%s = %+v", b, got)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	b := MustBinary(OpDiv, intc(1), intc(0))
	if _, err := b.Eval(nil); err == nil {
		t.Error("division by zero did not error")
	}
}

func TestDateArithmetic(t *testing.T) {
	plus := MustBinary(OpAdd, datec(1998, 8, 31), intc(2))
	if got := mustEval(t, plus, nil); got.String() != "1998-09-02" {
		t.Errorf("date + 2 = %v", got)
	}
	minus := MustBinary(OpSub, datec(1998, 9, 2), intc(2))
	if got := mustEval(t, minus, nil); got.String() != "1998-08-31" {
		t.Errorf("date - 2 = %v", got)
	}
	diff := MustBinary(OpSub, datec(1998, 9, 2), datec(1998, 8, 31))
	if got := mustEval(t, diff, nil); got.Kind != storage.TypeInt64 || got.I != 2 {
		t.Errorf("date - date = %v", got)
	}
	rplus := MustBinary(OpAdd, intc(2), datec(1998, 8, 31))
	if got := mustEval(t, rplus, nil); got.String() != "1998-09-02" {
		t.Errorf("2 + date = %v", got)
	}
	if _, err := NewBinary(OpMul, datec(1998, 1, 1), intc(2)); err == nil {
		t.Error("date * int accepted")
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		op   BinOp
		l, r Expr
		want bool
	}{
		{OpEq, intc(2), intc(2), true},
		{OpNe, intc(2), intc(2), false},
		{OpLt, intc(1), intc(2), true},
		{OpLe, intc(2), intc(2), true},
		{OpGt, intc(2), intc(1), true},
		{OpGe, intc(1), intc(2), false},
		{OpLt, strc("a"), strc("b"), true},
		{OpLe, datec(1998, 9, 2), datec(1998, 9, 2), true},
		{OpEq, intc(2), floatc(2.0), true},
	}
	for _, c := range cases {
		b := MustBinary(c.op, c.l, c.r)
		if got := mustEval(t, b, nil); got.Bool() != c.want {
			t.Errorf("%s = %v, want %v", b, got.Bool(), c.want)
		}
	}
	if _, err := NewBinary(OpLt, strc("a"), intc(1)); err == nil {
		t.Error("string < int accepted")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := nullc()
	tru, fls := boolc(true), boolc(false)

	// NULL propagation through comparison and arithmetic.
	if got := mustEval(t, MustBinary(OpEq, null, intc(1)), nil); !got.IsNull() {
		t.Error("NULL = 1 must be NULL")
	}
	if got := mustEval(t, MustBinary(OpAdd, null, intc(1)), nil); !got.IsNull() {
		t.Error("NULL + 1 must be NULL")
	}

	// Kleene AND/OR.
	logicCases := []struct {
		op   BinOp
		l, r Expr
		want string // "t", "f", "n"
	}{
		{OpAnd, tru, tru, "t"},
		{OpAnd, tru, fls, "f"},
		{OpAnd, fls, null, "f"},
		{OpAnd, null, fls, "f"},
		{OpAnd, tru, null, "n"},
		{OpAnd, null, null, "n"},
		{OpOr, fls, fls, "f"},
		{OpOr, tru, null, "t"},
		{OpOr, null, tru, "t"},
		{OpOr, fls, null, "n"},
		{OpOr, null, null, "n"},
	}
	for _, c := range logicCases {
		got := mustEval(t, MustBinary(c.op, c.l, c.r), nil)
		var sym string
		switch {
		case got.IsNull():
			sym = "n"
		case got.Bool():
			sym = "t"
		default:
			sym = "f"
		}
		if sym != c.want {
			t.Errorf("%v(%s,%s) = %s, want %s", c.op, c.l, c.r, sym, c.want)
		}
	}
	if _, err := NewBinary(OpAnd, intc(1), tru); err == nil {
		t.Error("AND over int accepted")
	}
}

func TestNotNegIsNull(t *testing.T) {
	n, err := NewNot(boolc(true))
	if err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, n, nil); got.Bool() {
		t.Error("NOT true = true")
	}
	nn, _ := NewNot(nullc())
	if got := mustEval(t, nn, nil); !got.IsNull() {
		t.Error("NOT NULL must be NULL")
	}
	if _, err := NewNot(intc(1)); err == nil {
		t.Error("NOT int accepted")
	}

	neg, err := NewNeg(intc(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, neg, nil); got.I != -5 {
		t.Errorf("-5 = %v", got)
	}
	negf, _ := NewNeg(floatc(2.5))
	if got := mustEval(t, negf, nil); got.F != -2.5 {
		t.Errorf("-2.5 = %v", got)
	}
	if _, err := NewNeg(strc("x")); err == nil {
		t.Error("negating string accepted")
	}

	isn := &IsNull{E: nullc()}
	if got := mustEval(t, isn, nil); !got.Bool() {
		t.Error("NULL IS NULL = false")
	}
	isnn := &IsNull{E: intc(1), Negate: true}
	if got := mustEval(t, isnn, nil); !got.Bool() {
		t.Error("1 IS NOT NULL = false")
	}
	if !strings.Contains(isnn.String(), "IS NOT NULL") {
		t.Errorf("IsNull render: %q", isnn.String())
	}
}

func TestEvalBool(t *testing.T) {
	got, err := EvalBool(MustBinary(OpLt, intc(1), intc(2)), nil)
	if err != nil || !got {
		t.Errorf("EvalBool(1<2) = %v, %v", got, err)
	}
	got, err = EvalBool(nullc(), nil)
	if err != nil || got {
		t.Error("EvalBool(NULL) must be false")
	}
}

func TestExprString(t *testing.T) {
	b := MustBinary(OpAdd, intc(1), MustBinary(OpMul, intc(2), intc(3)))
	if got := b.String(); got != "(1 + (2 * 3))" {
		t.Errorf("String = %q", got)
	}
}

// Property: evaluating (a + b) - b over int columns returns a.
func TestArithmeticRoundTripProperty(t *testing.T) {
	ca := NewColRef(0, "a", storage.TypeInt64)
	cb := NewColRef(1, "b", storage.TypeInt64)
	e := MustBinary(OpSub, MustBinary(OpAdd, ca, cb), cb)
	f := func(a, b int32) bool {
		row := storage.Row{storage.NewInt(int64(a)), storage.NewInt(int64(b))}
		v, err := e.Eval(row)
		return err == nil && v.I == int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: x < y, x = y, x > y are mutually exclusive and exhaustive.
func TestComparisonTrichotomyProperty(t *testing.T) {
	cx := NewColRef(0, "x", storage.TypeInt64)
	cy := NewColRef(1, "y", storage.TypeInt64)
	lt := MustBinary(OpLt, cx, cy)
	eq := MustBinary(OpEq, cx, cy)
	gt := MustBinary(OpGt, cx, cy)
	f := func(x, y int64) bool {
		row := storage.Row{storage.NewInt(x), storage.NewInt(y)}
		a, _ := EvalBool(lt, row)
		b, _ := EvalBool(eq, row)
		c, _ := EvalBool(gt, row)
		n := 0
		for _, v := range []bool{a, b, c} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRound(t *testing.T) {
	if got := Round(2.5, 0); got != 2 {
		t.Errorf("Round(2.5, 0) = %v (banker's)", got)
	}
	if got := Round(3.5, 0); got != 4 {
		t.Errorf("Round(3.5, 0) = %v", got)
	}
	if got := Round(2.125, 2); got != 2.12 {
		t.Errorf("Round(2.125, 2) = %v", got)
	}
}
