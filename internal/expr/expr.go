// Package expr implements the scalar expression engine: column references,
// constants, arithmetic, comparisons, boolean logic, LIKE matching and the
// standard SQL aggregate functions.
//
// Expressions are evaluated against positional rows (storage.Row). The
// analyzer (internal/sql) resolves names to positions before execution, so
// evaluation never does string lookups on the hot path.
package expr

import (
	"fmt"
	"math"

	"bufferdb/internal/storage"
)

// Expr is a typed scalar expression evaluated one row at a time.
type Expr interface {
	// Eval computes the expression over the given input row.
	Eval(row storage.Row) (storage.Value, error)
	// Type is the static result type. The analyzer guarantees that Eval
	// returns values of this type (or NULL).
	Type() storage.Type
	// String renders the expression for EXPLAIN output.
	String() string
}

// ColRef reads a column of the input row by position.
type ColRef struct {
	// Idx is the position in the input row.
	Idx int
	// Name is the display name (qualified), used only for EXPLAIN.
	Name string
	// Typ is the column type.
	Typ storage.Type
}

// NewColRef constructs a resolved column reference.
func NewColRef(idx int, name string, typ storage.Type) *ColRef {
	return &ColRef{Idx: idx, Name: name, Typ: typ}
}

// Eval implements Expr.
func (c *ColRef) Eval(row storage.Row) (storage.Value, error) {
	if c.Idx >= len(row) {
		return storage.Null, fmt.Errorf("expr: column %s (position %d) out of range for row of arity %d",
			c.Name, c.Idx, len(row))
	}
	return row[c.Idx], nil
}

// Type implements Expr.
func (c *ColRef) Type() storage.Type { return c.Typ }

// String implements Expr.
func (c *ColRef) String() string { return c.Name }

// Const is a literal value.
type Const struct {
	Val storage.Value
}

// NewConst constructs a literal.
func NewConst(v storage.Value) *Const { return &Const{Val: v} }

// Eval implements Expr.
func (c *Const) Eval(storage.Row) (storage.Value, error) { return c.Val, nil }

// Type implements Expr.
func (c *Const) Type() storage.Type { return c.Val.Kind }

// String implements Expr.
func (c *Const) String() string {
	if c.Val.Kind == storage.TypeString || c.Val.Kind == storage.TypeDate {
		return "'" + c.Val.String() + "'"
	}
	return c.Val.String()
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators. Comparison operators produce BOOLEAN; arithmetic
// operators produce a numeric type per ArithResultType.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// String returns the SQL spelling of the operator.
func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	default:
		return fmt.Sprintf("BinOp(%d)", uint8(op))
	}
}

// IsComparison reports whether the operator is one of = <> < <= > >=.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// IsArith reports whether the operator is one of + - * /.
func (op BinOp) IsArith() bool { return op <= OpDiv }

// IsLogic reports whether the operator is AND or OR.
func (op BinOp) IsLogic() bool { return op == OpAnd || op == OpOr }

// ArithResultType computes the result type of an arithmetic operator over
// the two operand types. Division always widens to DOUBLE (TPC-H prices are
// decimals, which this engine represents as DOUBLE); otherwise INT op INT is
// INT and anything involving DOUBLE is DOUBLE. Date ± integer yields DATE,
// and DATE − DATE yields BIGINT (day difference).
func ArithResultType(op BinOp, l, r storage.Type) (storage.Type, error) {
	if !op.IsArith() {
		return storage.TypeNull, fmt.Errorf("expr: %v is not arithmetic", op)
	}
	switch {
	case l == storage.TypeNull || r == storage.TypeNull:
		// A NULL literal operand: the expression always evaluates to NULL;
		// adopt the other operand's type when numeric so parents type-check.
		switch {
		case op == OpDiv:
			return storage.TypeFloat64, nil
		case l.Numeric():
			return l, nil
		case r.Numeric():
			return r, nil
		default:
			return storage.TypeNull, nil
		}
	case l == storage.TypeDate && r == storage.TypeInt64 && (op == OpAdd || op == OpSub):
		return storage.TypeDate, nil
	case l == storage.TypeInt64 && r == storage.TypeDate && op == OpAdd:
		return storage.TypeDate, nil
	case l == storage.TypeDate && r == storage.TypeDate && op == OpSub:
		return storage.TypeInt64, nil
	case !l.Numeric() || !r.Numeric():
		return storage.TypeNull, fmt.Errorf("expr: cannot apply %v to %v and %v", op, l, r)
	case op == OpDiv:
		return storage.TypeFloat64, nil
	case l == storage.TypeFloat64 || r == storage.TypeFloat64:
		return storage.TypeFloat64, nil
	default:
		return storage.TypeInt64, nil
	}
}

// Binary applies a binary operator to two sub-expressions.
type Binary struct {
	Op   BinOp
	L, R Expr
	typ  storage.Type
}

// NewBinary builds a type-checked binary expression.
func NewBinary(op BinOp, l, r Expr) (*Binary, error) {
	b := &Binary{Op: op, L: l, R: r}
	switch {
	case op.IsArith():
		t, err := ArithResultType(op, l.Type(), r.Type())
		if err != nil {
			return nil, err
		}
		b.typ = t
	case op.IsComparison():
		lt, rt := l.Type(), r.Type()
		compatible := lt == rt ||
			(lt.Numeric() && rt.Numeric()) ||
			lt == storage.TypeNull || rt == storage.TypeNull
		if !compatible {
			return nil, fmt.Errorf("expr: cannot compare %v with %v", lt, rt)
		}
		b.typ = storage.TypeBool
	case op.IsLogic():
		for _, e := range []Expr{l, r} {
			if t := e.Type(); t != storage.TypeBool && t != storage.TypeNull {
				return nil, fmt.Errorf("expr: %v operand must be BOOLEAN, got %v", op, t)
			}
		}
		b.typ = storage.TypeBool
	default:
		return nil, fmt.Errorf("expr: unknown operator %v", op)
	}
	return b, nil
}

// MustBinary is NewBinary for statically well-typed construction in tests
// and generators.
func MustBinary(op BinOp, l, r Expr) *Binary {
	b, err := NewBinary(op, l, r)
	if err != nil {
		panic(err)
	}
	return b
}

// Eval implements Expr. SQL three-valued logic applies: any NULL operand
// yields NULL, except AND/OR which use Kleene semantics.
func (b *Binary) Eval(row storage.Row) (storage.Value, error) {
	lv, err := b.L.Eval(row)
	if err != nil {
		return storage.Null, err
	}

	// AND/OR get Kleene short-circuit treatment.
	if b.Op.IsLogic() {
		return b.evalLogic(lv, row)
	}

	rv, err := b.R.Eval(row)
	if err != nil {
		return storage.Null, err
	}
	if lv.IsNull() || rv.IsNull() {
		return storage.Null, nil
	}
	if b.Op.IsComparison() {
		c := storage.Compare(lv, rv)
		switch b.Op {
		case OpEq:
			return storage.NewBool(c == 0), nil
		case OpNe:
			return storage.NewBool(c != 0), nil
		case OpLt:
			return storage.NewBool(c < 0), nil
		case OpLe:
			return storage.NewBool(c <= 0), nil
		case OpGt:
			return storage.NewBool(c > 0), nil
		default: // OpGe
			return storage.NewBool(c >= 0), nil
		}
	}
	return b.evalArith(lv, rv)
}

func (b *Binary) evalLogic(lv storage.Value, row storage.Row) (storage.Value, error) {
	// Short circuit: FALSE AND x = FALSE, TRUE OR x = TRUE.
	if !lv.IsNull() {
		if b.Op == OpAnd && !lv.Bool() {
			return storage.NewBool(false), nil
		}
		if b.Op == OpOr && lv.Bool() {
			return storage.NewBool(true), nil
		}
	}
	rv, err := b.R.Eval(row)
	if err != nil {
		return storage.Null, err
	}
	switch {
	case !rv.IsNull() && b.Op == OpAnd && !rv.Bool():
		return storage.NewBool(false), nil
	case !rv.IsNull() && b.Op == OpOr && rv.Bool():
		return storage.NewBool(true), nil
	case lv.IsNull() || rv.IsNull():
		return storage.Null, nil
	case b.Op == OpAnd:
		return storage.NewBool(lv.Bool() && rv.Bool()), nil
	default:
		return storage.NewBool(lv.Bool() || rv.Bool()), nil
	}
}

func (b *Binary) evalArith(lv, rv storage.Value) (storage.Value, error) {
	// Date arithmetic.
	if lv.Kind == storage.TypeDate || rv.Kind == storage.TypeDate {
		switch {
		case lv.Kind == storage.TypeDate && rv.Kind == storage.TypeInt64 && b.Op == OpAdd:
			return storage.NewDate(lv.I + rv.I), nil
		case lv.Kind == storage.TypeDate && rv.Kind == storage.TypeInt64 && b.Op == OpSub:
			return storage.NewDate(lv.I - rv.I), nil
		case lv.Kind == storage.TypeInt64 && rv.Kind == storage.TypeDate && b.Op == OpAdd:
			return storage.NewDate(lv.I + rv.I), nil
		case lv.Kind == storage.TypeDate && rv.Kind == storage.TypeDate && b.Op == OpSub:
			return storage.NewInt(lv.I - rv.I), nil
		default:
			return storage.Null, fmt.Errorf("expr: unsupported date arithmetic %v %v %v", lv.Kind, b.Op, rv.Kind)
		}
	}

	if b.typ == storage.TypeInt64 {
		switch b.Op {
		case OpAdd:
			return storage.NewInt(lv.I + rv.I), nil
		case OpSub:
			return storage.NewInt(lv.I - rv.I), nil
		case OpMul:
			return storage.NewInt(lv.I * rv.I), nil
		}
	}
	lf, rf := lv.AsFloat(), rv.AsFloat()
	switch b.Op {
	case OpAdd:
		return storage.NewFloat(lf + rf), nil
	case OpSub:
		return storage.NewFloat(lf - rf), nil
	case OpMul:
		return storage.NewFloat(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return storage.Null, fmt.Errorf("expr: division by zero")
		}
		return storage.NewFloat(lf / rf), nil
	}
	return storage.Null, fmt.Errorf("expr: unreachable arithmetic %v", b.Op)
}

// Type implements Expr.
func (b *Binary) Type() storage.Type { return b.typ }

// String implements Expr.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Not negates a boolean expression with three-valued semantics.
type Not struct {
	E Expr
}

// NewNot builds a type-checked negation.
func NewNot(e Expr) (*Not, error) {
	if t := e.Type(); t != storage.TypeBool && t != storage.TypeNull {
		return nil, fmt.Errorf("expr: NOT operand must be BOOLEAN, got %v", t)
	}
	return &Not{E: e}, nil
}

// Eval implements Expr.
func (n *Not) Eval(row storage.Row) (storage.Value, error) {
	v, err := n.E.Eval(row)
	if err != nil || v.IsNull() {
		return storage.Null, err
	}
	return storage.NewBool(!v.Bool()), nil
}

// Type implements Expr.
func (n *Not) Type() storage.Type { return storage.TypeBool }

// String implements Expr.
func (n *Not) String() string { return "NOT " + n.E.String() }

// Neg is unary numeric negation.
type Neg struct {
	E Expr
}

// NewNeg builds a type-checked numeric negation.
func NewNeg(e Expr) (*Neg, error) {
	if !e.Type().Numeric() && e.Type() != storage.TypeNull {
		return nil, fmt.Errorf("expr: cannot negate %v", e.Type())
	}
	return &Neg{E: e}, nil
}

// Eval implements Expr.
func (n *Neg) Eval(row storage.Row) (storage.Value, error) {
	v, err := n.E.Eval(row)
	if err != nil || v.IsNull() {
		return storage.Null, err
	}
	if v.Kind == storage.TypeInt64 {
		return storage.NewInt(-v.I), nil
	}
	return storage.NewFloat(-v.F), nil
}

// Type implements Expr.
func (n *Neg) Type() storage.Type { return n.E.Type() }

// String implements Expr.
func (n *Neg) String() string { return "-" + n.E.String() }

// IsNull tests a sub-expression for SQL NULL (IS NULL / IS NOT NULL).
type IsNull struct {
	E      Expr
	Negate bool // true renders IS NOT NULL
}

// Eval implements Expr.
func (i *IsNull) Eval(row storage.Row) (storage.Value, error) {
	v, err := i.E.Eval(row)
	if err != nil {
		return storage.Null, err
	}
	return storage.NewBool(v.IsNull() != i.Negate), nil
}

// Type implements Expr.
func (i *IsNull) Type() storage.Type { return storage.TypeBool }

// String implements Expr.
func (i *IsNull) String() string {
	if i.Negate {
		return i.E.String() + " IS NOT NULL"
	}
	return i.E.String() + " IS NULL"
}

// EvalBool evaluates a predicate and folds NULL to false, which is the
// WHERE-clause semantics of SQL. Operators use it to filter rows.
func EvalBool(e Expr, row storage.Row) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}

// roundHalfEven exists to keep decimal-ish outputs stable in tests without
// pulling in a decimal library; the engine itself computes in float64.
func roundHalfEven(v float64, places int) float64 {
	scale := math.Pow(10, float64(places))
	return math.RoundToEven(v*scale) / scale
}

// Round returns v rounded to the given number of decimal places using
// banker's rounding, matching how the benchmark harness prints money sums.
func Round(v float64, places int) float64 { return roundHalfEven(v, places) }
