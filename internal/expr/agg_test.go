package expr

import (
	"testing"
	"testing/quick"

	"bufferdb/internal/storage"
)

func accOver(t *testing.T, spec AggSpec, rows []storage.Row) storage.Value {
	t.Helper()
	acc, err := NewAccumulator(spec)
	if err != nil {
		t.Fatalf("NewAccumulator(%v): %v", spec, err)
	}
	for _, r := range rows {
		if err := acc.Add(r); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return acc.Result()
}

func intRows(vals ...int64) []storage.Row {
	rows := make([]storage.Row, len(vals))
	for i, v := range vals {
		rows[i] = storage.Row{storage.NewInt(v)}
	}
	return rows
}

func col0Int() Expr   { return NewColRef(0, "v", storage.TypeInt64) }
func col0Float() Expr { return NewColRef(0, "v", storage.TypeFloat64) }

func TestCountStar(t *testing.T) {
	got := accOver(t, AggSpec{Func: AggCountStar}, intRows(1, 2, 3))
	if got.I != 3 {
		t.Errorf("COUNT(*) = %v", got)
	}
}

func TestCountSkipsNulls(t *testing.T) {
	rows := []storage.Row{
		{storage.NewInt(1)},
		{storage.Null},
		{storage.NewInt(3)},
	}
	got := accOver(t, AggSpec{Func: AggCount, Arg: col0Int()}, rows)
	if got.I != 2 {
		t.Errorf("COUNT(v) with a NULL = %v, want 2", got)
	}
}

func TestSumIntAndFloat(t *testing.T) {
	got := accOver(t, AggSpec{Func: AggSum, Arg: col0Int()}, intRows(1, 2, 3))
	if got.Kind != storage.TypeInt64 || got.I != 6 {
		t.Errorf("SUM(int) = %+v", got)
	}
	rows := []storage.Row{{storage.NewFloat(0.5)}, {storage.NewFloat(1.25)}}
	got = accOver(t, AggSpec{Func: AggSum, Arg: col0Float()}, rows)
	if got.Kind != storage.TypeFloat64 || got.F != 1.75 {
		t.Errorf("SUM(float) = %+v", got)
	}
}

func TestSumEmptyIsNull(t *testing.T) {
	got := accOver(t, AggSpec{Func: AggSum, Arg: col0Int()}, nil)
	if !got.IsNull() {
		t.Errorf("SUM over zero rows = %v, want NULL", got)
	}
}

func TestAvg(t *testing.T) {
	got := accOver(t, AggSpec{Func: AggAvg, Arg: col0Int()}, intRows(1, 2, 3, 6))
	if got.Kind != storage.TypeFloat64 || got.F != 3 {
		t.Errorf("AVG = %+v", got)
	}
	if got := accOver(t, AggSpec{Func: AggAvg, Arg: col0Int()}, nil); !got.IsNull() {
		t.Error("AVG over zero rows must be NULL")
	}
	rows := []storage.Row{{storage.Null}, {storage.NewInt(4)}}
	if got := accOver(t, AggSpec{Func: AggAvg, Arg: col0Int()}, rows); got.F != 4 {
		t.Errorf("AVG skipping NULL = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	rows := intRows(5, 1, 9, 3)
	if got := accOver(t, AggSpec{Func: AggMin, Arg: col0Int()}, rows); got.I != 1 {
		t.Errorf("MIN = %v", got)
	}
	if got := accOver(t, AggSpec{Func: AggMax, Arg: col0Int()}, rows); got.I != 9 {
		t.Errorf("MAX = %v", got)
	}
	if got := accOver(t, AggSpec{Func: AggMin, Arg: col0Int()}, nil); !got.IsNull() {
		t.Error("MIN over zero rows must be NULL")
	}
	srows := []storage.Row{{storage.NewString("pear")}, {storage.NewString("apple")}}
	sref := NewColRef(0, "s", storage.TypeString)
	if got := accOver(t, AggSpec{Func: AggMin, Arg: sref}, srows); got.S != "apple" {
		t.Errorf("MIN(string) = %v", got)
	}
}

func TestAccumulatorReset(t *testing.T) {
	for _, spec := range []AggSpec{
		{Func: AggCountStar},
		{Func: AggCount, Arg: col0Int()},
		{Func: AggSum, Arg: col0Int()},
		{Func: AggAvg, Arg: col0Int()},
		{Func: AggMin, Arg: col0Int()},
		{Func: AggMax, Arg: col0Int()},
	} {
		acc, err := NewAccumulator(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range intRows(10, 20) {
			if err := acc.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		first := acc.Result()
		acc.Reset()
		for _, r := range intRows(10, 20) {
			if err := acc.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		if second := acc.Result(); second != first {
			t.Errorf("%v: after Reset, result %v != first run %v", spec, second, first)
		}
	}
}

func TestAggMetadata(t *testing.T) {
	s := AggSpec{Func: AggSum, Arg: col0Int()}
	if ty, err := s.ResultType(); err != nil || ty != storage.TypeInt64 {
		t.Errorf("SUM(int) type = %v, %v", ty, err)
	}
	a := AggSpec{Func: AggAvg, Arg: col0Int()}
	if ty, err := a.ResultType(); err != nil || ty != storage.TypeFloat64 {
		t.Errorf("AVG type = %v, %v", ty, err)
	}
	bad := AggSpec{Func: AggSum, Arg: strc("x")}
	if _, err := bad.ResultType(); err == nil {
		t.Error("SUM(string) accepted")
	}
	if _, err := NewAccumulator(bad); err == nil {
		t.Error("NewAccumulator over SUM(string) accepted")
	}
	if (AggSpec{Func: AggCountStar}).OutputName() != "count" {
		t.Error("COUNT(*) output name")
	}
	if got := (AggSpec{Func: AggMax, Arg: col0Int(), As: "m"}).OutputName(); got != "m" {
		t.Errorf("aliased output name = %q", got)
	}
	if got := (AggSpec{Func: AggCountStar}).String(); got != "COUNT(*)" {
		t.Errorf("COUNT(*) render = %q", got)
	}
}

// Property: SUM(ints) computed through the accumulator equals the direct sum.
func TestSumProperty(t *testing.T) {
	f := func(vals []int32) bool {
		rows := make([]storage.Row, len(vals))
		var want int64
		for i, v := range vals {
			rows[i] = storage.Row{storage.NewInt(int64(v))}
			want += int64(v)
		}
		acc, err := NewAccumulator(AggSpec{Func: AggSum, Arg: col0Int()})
		if err != nil {
			return false
		}
		for _, r := range rows {
			if err := acc.Add(r); err != nil {
				return false
			}
		}
		got := acc.Result()
		if len(vals) == 0 {
			return got.IsNull()
		}
		return got.I == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MIN ≤ AVG ≤ MAX over any non-empty int set.
func TestMinAvgMaxOrderingProperty(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		rows := make([]storage.Row, len(vals))
		for i, v := range vals {
			rows[i] = storage.Row{storage.NewInt(int64(v))}
		}
		run := func(fn AggFunc) storage.Value {
			acc, _ := NewAccumulator(AggSpec{Func: fn, Arg: col0Int()})
			for _, r := range rows {
				_ = acc.Add(r)
			}
			return acc.Result()
		}
		mn, av, mx := run(AggMin), run(AggAvg), run(AggMax)
		return float64(mn.I) <= av.F && av.F <= float64(mx.I)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
