package expr

import (
	"strings"
	"testing"

	"bufferdb/internal/storage"
)

func TestLikeFastPaths(t *testing.T) {
	cases := []struct {
		pattern string
		input   string
		want    bool
	}{
		{"PROMO%", "PROMO BURNISHED", true},
		{"PROMO%", "STANDARD", false},
		{"%BRASS", "SMALL BRASS", true},
		{"%BRASS", "BRASS PLATE", false},
		{"%green%", "slate green powder", true},
		{"%green%", "slate red powder", false},
		{"exact", "exact", true},
		{"exact", "exactly", false},
		{"%", "", true},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		l, err := NewLike(strc(c.input), c.pattern, false)
		if err != nil {
			t.Fatalf("NewLike(%q): %v", c.pattern, err)
		}
		got := mustEval(t, l, nil)
		if got.Bool() != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.input, c.pattern, got.Bool(), c.want)
		}
	}
}

func TestLikeGeneralWildcards(t *testing.T) {
	cases := []struct {
		pattern string
		input   string
		want    bool
	}{
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"a_c", "abbc", false},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "acb", false},
		{"_%_", "ab", true},
		{"_%_", "a", false},
		{"%a_", "zzaq", true},
		{"ab%", "ab", true},
		{"%%", "x", true},
		{"a%%b", "ab", true},
	}
	for _, c := range cases {
		l, err := NewLike(strc(c.input), c.pattern, false)
		if err != nil {
			t.Fatal(err)
		}
		got := mustEval(t, l, nil)
		if got.Bool() != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.input, c.pattern, got.Bool(), c.want)
		}
	}
}

func TestNotLikeAndNull(t *testing.T) {
	l, err := NewLike(strc("STANDARD"), "PROMO%", true)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, l, nil); !got.Bool() {
		t.Error("'STANDARD' NOT LIKE 'PROMO%' = false")
	}
	ln, err := NewLike(nullc(), "x%", false)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, ln, nil); !got.IsNull() {
		t.Error("NULL LIKE pattern must be NULL")
	}
	if _, err := NewLike(intc(1), "x", false); err == nil {
		t.Error("LIKE over int accepted")
	}
	if l.Type() != storage.TypeBool {
		t.Error("LIKE type must be BOOLEAN")
	}
	if !strings.Contains(l.String(), "NOT LIKE") {
		t.Errorf("render: %q", l.String())
	}
}
