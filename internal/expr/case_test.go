package expr

import (
	"strings"
	"testing"

	"bufferdb/internal/storage"
)

func mkCase(t *testing.T, whens []When, elseExpr Expr) *Case {
	t.Helper()
	c, err := NewCase(whens, elseExpr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCaseBasic(t *testing.T) {
	v := NewColRef(0, "v", storage.TypeInt64)
	c := mkCase(t, []When{
		{Cond: MustBinary(OpLt, v, intc(10)), Then: strc("small")},
		{Cond: MustBinary(OpLt, v, intc(100)), Then: strc("medium")},
	}, strc("large"))
	cases := map[int64]string{5: "small", 50: "medium", 500: "large"}
	for in, want := range cases {
		got := mustEval(t, c, storage.Row{storage.NewInt(in)})
		if got.S != want {
			t.Errorf("CASE(%d) = %q, want %q", in, got.S, want)
		}
	}
	if c.Type() != storage.TypeString {
		t.Errorf("type = %v", c.Type())
	}
	if !strings.Contains(c.String(), "WHEN") || !strings.Contains(c.String(), "ELSE") {
		t.Errorf("render = %q", c.String())
	}
}

func TestCaseNoElseYieldsNull(t *testing.T) {
	c := mkCase(t, []When{{Cond: boolc(false), Then: intc(1)}}, nil)
	if got := mustEval(t, c, nil); !got.IsNull() {
		t.Errorf("CASE without match = %v, want NULL", got)
	}
}

func TestCaseNullConditionFallsThrough(t *testing.T) {
	c := mkCase(t, []When{
		{Cond: nullc(), Then: intc(1)},
		{Cond: boolc(true), Then: intc(2)},
	}, nil)
	if got := mustEval(t, c, nil); got.I != 2 {
		t.Errorf("NULL condition selected an arm: %v", got)
	}
}

func TestCaseNumericWidening(t *testing.T) {
	v := NewColRef(0, "v", storage.TypeInt64)
	c := mkCase(t, []When{
		{Cond: MustBinary(OpLt, v, intc(10)), Then: intc(1)},
	}, floatc(0.5))
	if c.Type() != storage.TypeFloat64 {
		t.Fatalf("mixed int/float CASE type = %v", c.Type())
	}
	got := mustEval(t, c, storage.Row{storage.NewInt(3)})
	if got.Kind != storage.TypeFloat64 || got.F != 1 {
		t.Errorf("widened THEN arm = %+v", got)
	}
	got = mustEval(t, c, storage.Row{storage.NewInt(30)})
	if got.F != 0.5 {
		t.Errorf("ELSE arm = %+v", got)
	}
}

func TestCaseErrors(t *testing.T) {
	if _, err := NewCase(nil, nil); err == nil {
		t.Error("empty CASE accepted")
	}
	if _, err := NewCase([]When{{Cond: intc(1), Then: intc(2)}}, nil); err == nil {
		t.Error("non-boolean condition accepted")
	}
	if _, err := NewCase([]When{{Cond: boolc(true), Then: strc("x")}}, intc(1)); err == nil {
		t.Error("string/int arm mix accepted")
	}
}
