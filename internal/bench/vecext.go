package bench

import (
	"fmt"

	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
)

// ExperimentExt3 regenerates the comparison the paper's §2 argues by
// reference: buffering (light-weight, plan-level) against full
// block-oriented processing (every operator rewritten to batches). Query 1
// and the three Query 3 join variants each run three ways on identical
// simulated machines — the original Volcano plan, the refined (buffered)
// plan, and the same plan compiled for the vec engine — reporting L1I
// misses, branch mispredictions and cycles.
//
// Both alternatives amortize instruction fetch over ~1024-tuple batches, so
// their L1I miss counts land close together and far below the original
// plan's; the vectorized engine additionally skips the buffer's per-tuple
// serve path, which shows up in the µop and cycle columns. That matches the
// paper's position: buffering captures most of block-oriented processing's
// instruction-cache benefit without rewriting any operator.
func ExperimentExt3(r *Runner) (*Report, error) {
	rep := &Report{ID: "ext3", Title: "Block-oriented processing vs buffering"}
	cases := []struct {
		label string
		query string
		opt   sql.Options
	}{
		{"Query 1", Query1, sql.Options{}},
		{"Query 3 (nestloop)", Query3, sql.Options{ForceJoin: sql.JoinNestLoop}},
		{"Query 3 (hash)", Query3, sql.Options{ForceJoin: sql.JoinHash}},
		{"Query 3 (merge)", Query3, sql.Options{ForceJoin: sql.JoinMerge}},
	}
	clock := r.CPUCfg.ClockHz
	for _, c := range cases {
		p, err := r.Plan(c.query, c.opt)
		if err != nil {
			return nil, err
		}
		refined, err := r.Refine(p)
		if err != nil {
			return nil, err
		}
		orig, err := r.Measure("original", p)
		if err != nil {
			return nil, err
		}
		buf, err := r.Measure("buffered", refined)
		if err != nil {
			return nil, err
		}
		vec, err := r.MeasureEngine("vectorized", p, plan.EngineVec)
		if err != nil {
			return nil, err
		}
		for _, m := range []*Measurement{buf, vec} {
			if m.Rows != orig.Rows || m.FirstRow != orig.FirstRow {
				return nil, fmt.Errorf("ext3: %s %s changed the result: %d rows %q vs %d rows %q",
					c.label, m.Label, m.Rows, m.FirstRow, orig.Rows, orig.FirstRow)
			}
		}
		rep.Printf("--- %s ---", c.label)
		rep.Lines = append(rep.Lines, fmtBreakdownRow("original", orig, clock))
		rep.Lines = append(rep.Lines, fmtBreakdownRow("buffered", buf, clock))
		rep.Lines = append(rep.Lines, fmtBreakdownRow("vectorized", vec, clock))
		for _, m := range []*Measurement{orig, buf, vec} {
			rep.Printf("%-12s L1I misses=%9d  mispredicts=%9d  uops=%11d  cycles=%12.0f",
				m.Label, m.Counters.L1IMisses, m.Counters.Mispredicts, m.Counters.Uops,
				m.ElapsedSec*clock)
		}
		rep.Printf("L1I miss reduction vs original: buffered %.1f%%, vectorized %.1f%%; vectorized is %+.1f%% faster than buffered",
			reduction(orig.Counters.L1IMisses, buf.Counters.L1IMisses),
			reduction(orig.Counters.L1IMisses, vec.Counters.L1IMisses),
			improvement(buf.ElapsedSec, vec.ElapsedSec))
	}
	return rep, nil
}
