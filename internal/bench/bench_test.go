package bench

import (
	"strings"
	"testing"

	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
)

// testRunner is shared: building the database and calibrating once keeps
// the suite fast. Tests only read from it.
var testRunner = func() *Runner {
	r, err := NewRunner(Config{ScaleFactor: 0.005})
	if err != nil {
		panic(err)
	}
	return r
}()

func TestRunnerDefaults(t *testing.T) {
	if testRunner.Threshold <= 0 {
		t.Errorf("calibrated threshold = %v", testRunner.Threshold)
	}
	r, err := NewRunner(Config{ScaleFactor: 0.001, CardinalityThreshold: 123})
	if err != nil {
		t.Fatal(err)
	}
	if r.Threshold != 123 {
		t.Errorf("explicit threshold ignored: %v", r.Threshold)
	}
}

func TestMeasureDeterminism(t *testing.T) {
	p, err := testRunner.Plan(Query2, sql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := testRunner.Measure("a", p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testRunner.Measure("b", p)
	if err != nil {
		t.Fatal(err)
	}
	if a.ElapsedSec != b.ElapsedSec || a.Counters != b.Counters {
		t.Error("identical runs measured differently (simulation must be deterministic)")
	}
	if a.Rows != 1 || a.FirstRow == "" {
		t.Errorf("measurement lost the result: %+v", a)
	}
}

func TestMeasureWall(t *testing.T) {
	p, err := testRunner.Plan(Query2, sql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, rows, err := testRunner.MeasureWall(p)
	if err != nil || rows != 1 || d <= 0 {
		t.Errorf("MeasureWall = %v, %d, %v", d, rows, err)
	}
}

// skipIfShort skips the simulator-heavy experiment drivers under -short.
// The race-detector CI run relies on this to stay inside the package test
// timeout (the simulator is ~15× slower under -race); the unguarded suite
// still exercises every driver.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("simulator-heavy experiment; skipped with -short")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 22 {
		t.Errorf("registry lists %d experiments", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	if _, ok := FindExperiment("fig10"); !ok {
		t.Error("FindExperiment(fig10) failed")
	}
	if _, ok := FindExperiment("nope"); ok {
		t.Error("FindExperiment(nope) succeeded")
	}
}

func TestFig1Sequence(t *testing.T) {
	rep, err := ExperimentFig1(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if !strings.Contains(out, "PCPCPC") {
		t.Errorf("original sequence missing alternation:\n%s", out)
	}
	if !strings.Contains(out, "CCCCC") {
		t.Errorf("buffered sequence missing child batch:\n%s", out)
	}
}

func TestFig4TraceShareSubstantial(t *testing.T) {
	rep, err := ExperimentFig4(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's point: the i-cache penalty is a fair share of Query 1.
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "Trace-miss share") {
		t.Fatalf("report shape:\n%s", joined)
	}
	p, _ := testRunner.Plan(Query1, sql.Options{})
	m, err := testRunner.Measure("q1", p)
	if err != nil {
		t.Fatal(err)
	}
	share := m.Breakdown(testRunner.CPUCfg.ClockHz).TraceMissSec / m.ElapsedSec
	if share < 0.10 || share > 0.45 {
		t.Errorf("trace share = %.2f, want a 'fair proportion' (paper ≈ 0.2)", share)
	}
}

func TestFig10HeadlineResult(t *testing.T) {
	rep := &Report{}
	orig, buf, err := testRunner.pairedRun(rep, Query1, sql.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if red := reduction(orig.Counters.L1IMisses, buf.Counters.L1IMisses); red < 60 {
		t.Errorf("L1I miss reduction = %.1f%%, want ≥ 60%% (paper: ~80%%)", red)
	}
	if red := reduction(orig.Counters.Mispredicts, buf.Counters.Mispredicts); red <= 0 {
		t.Errorf("misprediction reduction = %.1f%%, want > 0", red)
	}
	if red := reduction(orig.Counters.ITLBMisses, buf.Counters.ITLBMisses); red < 50 {
		t.Errorf("ITLB reduction = %.1f%%, want ≥ 50%% (paper: ~86%%)", red)
	}
	impr := improvement(orig.ElapsedSec, buf.ElapsedSec)
	if impr < 5 || impr > 45 {
		t.Errorf("overall improvement = %.1f%%, want a Fig.10-like gain (paper: ~12%%)", impr)
	}
}

func TestFig9NoBenefitWhenFitting(t *testing.T) {
	rep := &Report{}
	orig, buf, err := testRunner.pairedRun(rep, Query2, sql.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	impr := improvement(orig.ElapsedSec, buf.ElapsedSec)
	// "slightly worse": a small negative effect, never a large one either way.
	if impr > 1 || impr < -10 {
		t.Errorf("Query 2 improvement = %.1f%%, want slightly negative", impr)
	}
	// And the refinement algorithm must decline to buffer it.
	refined, err := testRunner.Refine(mustPlan(testRunner, Query2))
	if err != nil {
		t.Fatal(err)
	}
	if n := plan.CountKind(refined, plan.KindBuffer); n != 0 {
		t.Errorf("refinement buffered Query 2 (%d buffers)", n)
	}
}

func TestFig11Shape(t *testing.T) {
	skipIfShort(t)
	rep, err := ExperimentFig11(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	pts := rep.Series
	if len(pts) < 5 {
		t.Fatalf("series too short: %d", len(pts))
	}
	// At the left edge buffering loses; at the right it wins.
	first, last := pts[0], pts[len(pts)-1]
	if first.Buffered < first.Original {
		t.Errorf("buffered faster at cardinality %v", first.X)
	}
	if last.Buffered >= last.Original {
		t.Errorf("buffered not faster at cardinality %v", last.X)
	}
}

func TestFig12Shape(t *testing.T) {
	skipIfShort(t)
	rep, err := ExperimentFig12(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	bySize := map[float64]float64{}
	var orig float64
	for _, p := range rep.Series {
		bySize[p.X] = p.Buffered
		orig = p.Original
	}
	// Tiny buffers carry overhead relative to moderate ones; from a
	// moderate size on, further growth buys (almost) nothing — the paper's
	// "misses reduced ∝ 1/buffersize, then flat" curve.
	if bySize[1] <= bySize[1024] {
		t.Errorf("size-1 buffer (%.4fs) not worse than size-1024 (%.4fs)", bySize[1], bySize[1024])
	}
	if bySize[1024] >= orig {
		t.Errorf("size-1024 buffer (%.4fs) not better than original (%.4fs)", bySize[1024], orig)
	}
	flat := bySize[65536] / bySize[1024]
	if flat < 0.95 || flat > 1.05 {
		t.Errorf("plateau violated: 64K/1K elapsed ratio = %.3f", flat)
	}
}
