package bench

import (
	"strings"
	"testing"

	"bufferdb/internal/exec"
	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
	"bufferdb/internal/vec"
)

// vecRunner is a separate SF 0.01 database for the engine-equivalence
// suite (the ISSUE's acceptance scale). The explicit threshold skips the
// calibration sweep — these tests never refine plans.
var vecRunner = func() *Runner {
	r, err := NewRunner(Config{ScaleFactor: 0.01, CardinalityThreshold: 16})
	if err != nil {
		panic(err)
	}
	return r
}()

// runEngine compiles a plan uninstrumented for an engine and executes it.
func runEngine(t *testing.T, r *Runner, p *plan.Node, engine plan.Engine) ([]string, exec.Operator) {
	t.Helper()
	op, err := plan.Compile(p, nil, engine)
	if err != nil {
		t.Fatalf("Compile(%v): %v", engine, err)
	}
	rows, err := exec.Run(&exec.Context{Catalog: r.DB}, op)
	if err != nil {
		t.Fatalf("Run(%v): %v", engine, err)
	}
	out := make([]string, len(rows))
	for i, row := range rows {
		out[i] = row.String()
	}
	return out, op
}

// engineEquivalenceCases is the TPC-H workload every non-Volcano engine
// must reproduce bit-identically.
var engineEquivalenceCases = []struct {
	name  string
	query string
	opt   sql.Options
}{
	{"Query1", Query1, sql.Options{}},
	{"Query2", Query2, sql.Options{}},
	{"Query3-nestloop", Query3, sql.Options{ForceJoin: sql.JoinNestLoop}},
	{"Query3-hash", Query3, sql.Options{ForceJoin: sql.JoinHash}},
	{"Query3-merge", Query3, sql.Options{ForceJoin: sql.JoinMerge}},
	{"TPCH-Q1", TPCHQ1, sql.Options{}},
	{"TPCH-Q3", TPCHQ3, sql.Options{}},
	{"TPCH-Q6", TPCHQ6, sql.Options{}},
	{"TPCH-Q12", TPCHQ12, sql.Options{}},
}

// TestEngineSelectionMatchesVolcano asserts plan.Compile's vec and push
// engines return byte-identical result sets to the pure-Volcano compilation
// on the TPC-H workload, including mixed plans that round-trip through the
// adapters (vec or fused subtrees under Volcano sorts and joins).
func TestEngineSelectionMatchesVolcano(t *testing.T) {
	for _, engine := range []plan.Engine{plan.EngineVec, plan.EnginePush} {
		for _, c := range engineEquivalenceCases {
			t.Run(engine.String()+"/"+c.name, func(t *testing.T) {
				p, err := vecRunner.Plan(c.query, c.opt)
				if err != nil {
					t.Fatal(err)
				}
				want, _ := runEngine(t, vecRunner, p, plan.EngineVolcano)
				got, _ := runEngine(t, vecRunner, p, engine)
				if len(got) != len(want) {
					t.Fatalf("%s engine returned %d rows, want %d", engine, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("row %d differs:\n %s: %s\n volcano: %s", i, engine, got[i], want[i])
					}
				}
			})
		}
	}
}

// operatorNames collects every operator name in a compiled tree, crossing
// the ToVolcano/FromVolcano adapter boundaries into both layers.
func operatorNames(op exec.Operator) []string {
	var names []string
	var volcano func(exec.Operator)
	var batch func(vec.Operator)
	volcano = func(o exec.Operator) {
		names = append(names, o.Name())
		if tv, ok := o.(*vec.ToVolcano); ok {
			batch(tv.Vec())
		}
		for _, c := range o.Children() {
			volcano(c)
		}
	}
	batch = func(o vec.Operator) {
		names = append(names, o.Name())
		if fv, ok := o.(*vec.FromVolcano); ok {
			volcano(fv.Volcano())
		}
		for _, c := range o.Children() {
			batch(c)
		}
	}
	volcano(op)
	return names
}

func hasOperator(names []string, prefix string) bool {
	for _, n := range names {
		if strings.HasPrefix(n, prefix) {
			return true
		}
	}
	return false
}

// TestMixedPlanUsesAdapters asserts the vec compilation of TPC-H Q1 — a
// Volcano sort over an aggregation with a batch variant — actually splices
// a batch subtree in behind a ToVolcano adapter rather than silently
// compiling pure Volcano.
func TestMixedPlanUsesAdapters(t *testing.T) {
	p, err := vecRunner.Plan(TPCHQ1, sql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, op := runEngine(t, vecRunner, p, plan.EngineVec)
	names := operatorNames(op)
	if !hasOperator(names, "Sort(") {
		t.Errorf("vec compilation lost the Volcano sort: %q", names)
	}
	if !hasOperator(names, "ToVolcano(") || !hasOperator(names, "VecHashAggregate(") {
		t.Errorf("vec compilation has no adapted batch subtree: %q", names)
	}

	// The buffered variant of the same plan must dissolve its buffers into
	// the batch operators rather than stacking the two batching mechanisms.
	refined, err := vecRunner.Refine(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CountKind(refined, plan.KindBuffer) == 0 {
		t.Fatal("refinement inserted no buffers — test shape changed")
	}
	_, op = runEngine(t, vecRunner, refined, plan.EngineVec)
	if names := operatorNames(op); hasOperator(names, "Buffer(") {
		t.Errorf("vec compilation kept a Buffer operator: %q", names)
	}
}

// TestExt3 runs the block-oriented-vs-buffering experiment end to end and
// checks its acceptance criteria: identical results across engines (the
// driver errors otherwise) and vectorized L1I misses at or below the
// buffered plan's on Query 1, both far below the original plan's.
func TestExt3(t *testing.T) {
	skipIfShort(t)
	rep, err := ExperimentExt3(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) == 0 {
		t.Fatal("ext3 produced no output")
	}

	p, err := testRunner.Plan(Query1, sql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := testRunner.Refine(p)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := testRunner.Measure("original", p)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := testRunner.Measure("buffered", refined)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := testRunner.MeasureEngine("vectorized", p, plan.EngineVec)
	if err != nil {
		t.Fatal(err)
	}
	if vec.Counters.L1IMisses > buf.Counters.L1IMisses {
		t.Errorf("vectorized L1I misses %d exceed buffered %d",
			vec.Counters.L1IMisses, buf.Counters.L1IMisses)
	}
	if vec.Counters.L1IMisses*10 > orig.Counters.L1IMisses {
		t.Errorf("vectorized L1I misses %d not far below original %d",
			vec.Counters.L1IMisses, orig.Counters.L1IMisses)
	}
	if buf.Counters.L1IMisses*10 > orig.Counters.L1IMisses {
		t.Errorf("buffered L1I misses %d not far below original %d",
			buf.Counters.L1IMisses, orig.Counters.L1IMisses)
	}
}
