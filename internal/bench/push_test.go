package bench

import (
	"strings"
	"testing"

	"bufferdb/internal/exec"
	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
)

// pushOperatorNames collects every operator name reachable through
// Children(). A push.Pipeline exposes its Volcano fallback islands there,
// so the walk crosses the fused/host boundary.
func pushOperatorNames(op exec.Operator) []string {
	var names []string
	var walk func(exec.Operator)
	walk = func(o exec.Operator) {
		names = append(names, o.Name())
		for _, c := range o.Children() {
			walk(c)
		}
	}
	walk(op)
	return names
}

// TestPushParallelEquivalence asserts the push compilation of partitioned
// (Parallelism > 1) plans returns exactly the sequential Volcano rows: the
// exchange gather compiles to fused partition pipelines and the ordered
// merge keeps row order engine-independent.
func TestPushParallelEquivalence(t *testing.T) {
	for _, c := range engineEquivalenceCases {
		t.Run(c.name, func(t *testing.T) {
			p, err := vecRunner.Plan(c.query, c.opt)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := runEngine(t, vecRunner, p, plan.EngineVolcano)
			for _, workers := range []int{2, 4} {
				par := plan.Parallelize(p, workers)
				got, _ := runEngine(t, vecRunner, par, plan.EnginePush)
				if len(got) != len(want) {
					t.Fatalf("workers=%d: push returned %d rows, want %d", workers, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("workers=%d row %d differs:\n push:    %s\n volcano: %s", workers, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestPushPipelineConformance drives a fused Pipeline through the Volcano
// operator contract checks (double Open resets, Next after Close errors,
// early Close is clean) that every exec operator must satisfy.
func TestPushPipelineConformance(t *testing.T) {
	for _, c := range []struct {
		name  string
		query string
		opt   sql.Options
	}{
		{"scan-filter-agg", Query1, sql.Options{}},
		{"hash-join", Query3, sql.Options{ForceJoin: sql.JoinHash}},
	} {
		t.Run(c.name, func(t *testing.T) {
			p, err := vecRunner.Plan(c.query, c.opt)
			if err != nil {
				t.Fatal(err)
			}
			exec.Conformance(t, "push/"+c.name, func() exec.Operator {
				op, err := plan.Compile(p, nil, plan.EnginePush)
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
				return op
			})
		})
	}
}

// TestPushMixedPlanFallback pins the compiler's split: nodes without a
// fused variant run as Volcano islands while their capable subtrees still
// fuse, and the refinement pass's buffers dissolve into the fused loop.
func TestPushMixedPlanFallback(t *testing.T) {
	// TPCH Q3 carries a Volcano sort mid-plan (no fused variant); the
	// capable operators around it still fuse, so the compiled tree holds
	// both a Sort island and at least one pipeline.
	p, err := vecRunner.Plan(TPCHQ3, sql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, op := runEngine(t, vecRunner, p, plan.EnginePush)
	names := pushOperatorNames(op)
	if !hasOperator(names, "Sort(") {
		t.Errorf("push compilation lost the Volcano sort: %q", names)
	}
	if !hasOperator(names, "Push") {
		t.Errorf("push compilation produced no fused pipeline: %q", names)
	}

	// A merge join has no fused variant: the join is a Volcano island fed
	// by adapter sources, while the fused pipeline sits at the root only if
	// something above it is capable.
	p, err = vecRunner.Plan(Query3, sql.Options{ForceJoin: sql.JoinMerge})
	if err != nil {
		t.Fatal(err)
	}
	_, op = runEngine(t, vecRunner, p, plan.EnginePush)
	names = pushOperatorNames(op)
	if !hasOperator(names, "MergeJoin(") {
		t.Errorf("merge-join plan lost its Volcano join: %q", names)
	}

	// Refined (buffered) plans dissolve their buffers into the fused loop
	// instead of stacking both batching mechanisms.
	p, err = vecRunner.Plan(Query1, sql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := vecRunner.Refine(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CountKind(refined, plan.KindBuffer) == 0 {
		t.Fatal("refinement inserted no buffers — test shape changed")
	}
	_, op = runEngine(t, vecRunner, refined, plan.EnginePush)
	if names := pushOperatorNames(op); hasOperator(names, "Buffer(") {
		t.Errorf("push compilation kept a Buffer operator: %q", names)
	}
}

// TestPushAnalyzeReportsFusedElements asserts EXPLAIN ANALYZE descends into
// a fused pipeline: the report tree shows the per-element operators tagged
// with the push engine, with rows attributed per element.
func TestPushAnalyzeReportsFusedElements(t *testing.T) {
	p, err := vecRunner.Plan(Query1, sql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := plan.CompileAnalyzed(p, nil, plan.EnginePush)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &exec.Context{Catalog: vecRunner.DB, Stats: exec.NewStatsCollector()}
	if _, err := exec.Run(ctx, cp.Root); err != nil {
		t.Fatal(err)
	}
	rep := plan.BuildReport(cp, ctx.Stats)
	var sawScan, sawAgg bool
	rep.Walk(func(r *plan.OpReport) {
		if r.Engine != "push" {
			return
		}
		if strings.HasPrefix(r.Name, "SeqScan(") && r.Stats.Rows > 0 {
			sawScan = true
		}
		if strings.HasPrefix(r.Name, "Aggregate(") && r.Stats.Rows > 0 {
			sawAgg = true
		}
	})
	if !sawScan || !sawAgg {
		t.Errorf("report missing fused elements (scan=%v agg=%v):\n%s",
			sawScan, sawAgg, plan.FormatReport(rep, false))
	}
}

// TestExperimentPush runs the three-way showdown end to end; the driver
// itself enforces result equivalence and the lower-L1I invariant.
func TestExperimentPush(t *testing.T) {
	skipIfShort(t)
	rep, err := ExperimentPush(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) == 0 {
		t.Fatal("push experiment produced no output")
	}
}
