// Package bench is the experiment harness: one driver per table and figure
// of the paper's evaluation (§7), each regenerating the corresponding rows
// or series on the simulated machine. The drivers are shared by the
// benchrunner CLI and the testing.B benchmarks in the repository root.
package bench

import (
	"fmt"
	"time"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/cpusim"
	"bufferdb/internal/exec"
	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
	"bufferdb/internal/storage"
	"bufferdb/internal/tpch"
)

// Config sizes the benchmark database and the buffering parameters.
type Config struct {
	// ScaleFactor is the TPC-H scale (paper: 0.2; default here 0.02 so the
	// full suite runs in minutes on a laptop — simulated results scale
	// linearly with SF, which EXPERIMENTS.md verifies).
	ScaleFactor float64
	// Seed fixes data generation.
	Seed uint64
	// BufferSize is the buffer operator capacity (0 = default 1024).
	BufferSize int
	// CardinalityThreshold for plan refinement; 0 runs the calibration
	// experiment to derive it, mirroring the paper's §6 methodology.
	CardinalityThreshold float64
	// Short clamps the scale factor down for CI-grade runs; experiment
	// drivers marked Slow are also skipped by `benchrunner -exp all -short`.
	Short bool
}

// shortScaleFactor is the SF ceiling a Short config clamps to.
const shortScaleFactor = 0.005

// DefaultConfig returns the laptop-scale configuration.
func DefaultConfig() Config {
	return Config{ScaleFactor: 0.02}
}

// Runner owns the database, code model and machine configuration shared by
// all experiments.
type Runner struct {
	Cfg    Config
	DB     *storage.Catalog
	CM     *codemodel.Catalog
	CPUCfg cpusim.Config

	// Threshold is the refinement cardinality threshold in effect.
	Threshold float64
}

// NewRunner generates the database and calibrates the threshold.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.ScaleFactor == 0 {
		cfg.ScaleFactor = 0.02
	}
	if cfg.Short && cfg.ScaleFactor > shortScaleFactor {
		cfg.ScaleFactor = shortScaleFactor
	}
	db, err := tpch.Generate(tpch.Config{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	r := &Runner{
		Cfg:    cfg,
		DB:     db,
		CM:     codemodel.NewCatalog(),
		CPUCfg: cpusim.DefaultConfig(),
	}
	r.Threshold = cfg.CardinalityThreshold
	if r.Threshold == 0 {
		// Quick calibration sweep (the full curve is experiment fig11).
		res, err := coreCalibrate(r, []int{0, 16, 64, 256, 1024, 4096})
		if err != nil {
			return nil, err
		}
		r.Threshold = res.Threshold
	}
	return r, nil
}

// Measurement is one instrumented plan execution.
type Measurement struct {
	Label      string
	Rows       int
	FirstRow   string
	ElapsedSec float64
	CPI        float64
	Counters   cpusim.Counters
	Cycles     cpusim.Cycles
}

// Measure executes a plan on a fresh simulated CPU and collects counters.
func (r *Runner) Measure(label string, p *plan.Node) (*Measurement, error) {
	return r.MeasureEngine(label, p, plan.EngineVolcano)
}

// MeasureEngine is Measure with an explicit execution engine, letting
// experiments compare the Volcano (buffered or not) and block-oriented
// compilations of the same plan on identical simulated machines.
func (r *Runner) MeasureEngine(label string, p *plan.Node, engine plan.Engine) (*Measurement, error) {
	cpu, err := cpusim.New(r.CPUCfg, r.CM.TextSegmentBytes())
	if err != nil {
		return nil, err
	}
	placements := exec.PlaceCatalog(cpu, r.DB)
	op, err := plan.Compile(p, r.CM, engine)
	if err != nil {
		return nil, err
	}
	ctx := &exec.Context{Catalog: r.DB, CPU: cpu, Placements: placements}
	rows, err := exec.Run(ctx, op)
	if err != nil {
		return nil, err
	}
	m := &Measurement{
		Label:      label,
		Rows:       len(rows),
		ElapsedSec: cpu.ElapsedSeconds(),
		CPI:        cpu.CPI(),
		Counters:   cpu.Counters(),
		Cycles:     cpu.CycleBreakdown(),
	}
	if len(rows) > 0 {
		m.FirstRow = rows[0].String()
	}
	return m, nil
}

// Analyze executes a plan instrumented with the per-operator stats
// collector on a fresh simulated CPU and returns the rendered
// EXPLAIN ANALYZE table (with cycle and i-cache attribution).
func (r *Runner) Analyze(p *plan.Node, engine plan.Engine) (string, error) {
	cpu, err := cpusim.New(r.CPUCfg, r.CM.TextSegmentBytes())
	if err != nil {
		return "", err
	}
	cp, err := plan.CompileAnalyzed(p, r.CM, engine)
	if err != nil {
		return "", err
	}
	ctx := &exec.Context{
		Catalog:    r.DB,
		CPU:        cpu,
		Placements: exec.PlaceCatalog(cpu, r.DB),
		Stats:      exec.NewStatsCollector(),
	}
	if _, err := exec.Run(ctx, cp.Root); err != nil {
		return "", err
	}
	return plan.FormatReport(plan.BuildReport(cp, ctx.Stats), true), nil
}

// MeasureWall executes a plan uninstrumented and returns real wall-clock
// time — the "batching still pays in Go" secondary metric.
func (r *Runner) MeasureWall(p *plan.Node) (time.Duration, int, error) {
	return r.MeasureWallEngine(p, plan.EngineVolcano)
}

// MeasureWallEngine is MeasureWall with an explicit execution engine.
func (r *Runner) MeasureWallEngine(p *plan.Node, engine plan.Engine) (time.Duration, int, error) {
	op, err := plan.Compile(p, nil, engine)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	rows, err := exec.Run(&exec.Context{Catalog: r.DB}, op)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), len(rows), nil
}

// Plan parses and plans a query.
func (r *Runner) Plan(query string, opt sql.Options) (*plan.Node, error) {
	return sql.PlanQuery(query, r.DB, opt)
}

// Refine applies the paper's refinement pass with the runner's parameters.
func (r *Runner) Refine(p *plan.Node) (*plan.Node, error) {
	refined, _, err := plan.Refine(p, r.CM, plan.RefineOptions{
		CardinalityThreshold: r.Threshold,
		BufferSize:           r.Cfg.BufferSize,
	})
	return refined, err
}

// PenaltyBreakdown maps the cycle account onto the paper's four stacked-bar
// categories (Figures 4, 9, 10, 13, 15–17).
type PenaltyBreakdown struct {
	TraceMissSec  float64 // L1I ("trace cache") miss penalty
	L2MissSec     float64 // L2 miss penalty (mostly data)
	MispredictSec float64 // branch misprediction penalty
	OtherSec      float64 // base execution + L1D + ITLB
}

// Breakdown converts a measurement to penalty seconds.
func (m *Measurement) Breakdown(clockHz float64) PenaltyBreakdown {
	return PenaltyBreakdown{
		TraceMissSec:  m.Cycles.L1IMiss / clockHz,
		L2MissSec:     m.Cycles.L2Miss / clockHz,
		MispredictSec: m.Cycles.Mispredict / clockHz,
		OtherSec:      (m.Cycles.Base + m.Cycles.L1DMiss + m.Cycles.ITLBMiss) / clockHz,
	}
}

// reduction formats the relative reduction from a to b as a percentage.
func reduction(a, b uint64) float64 {
	if a == 0 {
		return 0
	}
	return (1 - float64(b)/float64(a)) * 100
}

// improvement formats the relative speedup from orig to new elapsed times.
func improvement(orig, buffered float64) float64 {
	if orig == 0 {
		return 0
	}
	return (1 - buffered/orig) * 100
}

// fmtBreakdownRow renders one breakdown line.
func fmtBreakdownRow(label string, m *Measurement, clockHz float64) string {
	b := m.Breakdown(clockHz)
	return fmt.Sprintf("%-22s total=%8.4fs  trace=%8.4fs  l2=%8.4fs  branch=%8.4fs  other=%8.4fs",
		label, m.ElapsedSec, b.TraceMissSec, b.L2MissSec, b.MispredictSec, b.OtherSec)
}
