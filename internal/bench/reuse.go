package bench

import (
	"fmt"
	"time"

	"bufferdb/internal/exec"
	"bufferdb/internal/plan"
	"bufferdb/internal/reuse"
	"bufferdb/internal/sql"
	"bufferdb/internal/storage"
)

// The reuse ladder's shared-subplan workload: two spellings of one pricing
// join that differ in output aliases and conjunct order, so the
// byte-identical result cache can never replay one for the other while the
// semantic fingerprint collides them onto the same join build and
// aggregate table.
const reuseLadderA = `
SELECT l_returnflag AS flag, SUM(l_extendedprice * (1 - l_discount)) AS revenue, COUNT(*) AS n
FROM lineitem, orders
WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1995-06-17'
GROUP BY l_returnflag ORDER BY 1`

const reuseLadderB = `
SELECT l_returnflag AS rf, SUM(l_extendedprice * (1 - l_discount)) AS rev, COUNT(*) AS how_many
FROM lineitem, orders
WHERE l_shipdate <= DATE '1995-06-17' AND o_orderkey = l_orderkey
GROUP BY l_returnflag ORDER BY 1`

// ExperimentReuse measures the recycling ladder the semantic reuse cache
// opens between the two extremes ROADMAP item 4 identified: full
// re-execution (1x) and byte-identical result replay (~840x on the server's
// result cache). The rungs, over one shared-subplan join+aggregate
// workload:
//
//	cold     — empty cache; the query builds and publishes its join build
//	           and aggregate table
//	warm     — an alias-renamed, conjunct-reordered spelling of the same
//	           query; the fingerprint collides, the cached aggregate is
//	           spliced in, only ORDER BY + projection re-run
//	replay   — byte-identical repetition served from a stored result (what
//	           the server's result cache does, minus the wire)
//	rebuild  — after a simulated INSERT (epoch bump + invalidation) the
//	           same spelling pays the cold price again
//
// Results are asserted bit-identical between cold and every warm rung, and
// the warm table is adopted by all three engines.
func ExperimentReuse(r *Runner) (*Report, error) {
	rep := &Report{ID: "reuse", Title: "Semantic reuse cache: cold vs warm vs result-replay ladder"}

	epochs := reuse.NewEpochs()
	cache := reuse.New(64<<20, epochs, nil)
	defer cache.Close()

	run := func(query string, engine plan.Engine, useCache bool) ([]storage.Row, time.Duration, error) {
		p, err := r.Plan(query, sql.Options{})
		if err != nil {
			return nil, 0, err
		}
		var releases []func()
		if useCache {
			p, releases = plan.ApplyReuse(p, cache)
		}
		op, err := plan.Compile(p, nil, engine)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		rows, err := exec.Run(&exec.Context{Catalog: r.DB}, op)
		d := time.Since(start)
		for _, rel := range releases {
			rel()
		}
		return rows, d, err
	}
	key := func(rows []storage.Row) string { return fmt.Sprint(rows) }

	// Rung 1: cold build. The publishes land on this run.
	want, cold, err := run(reuseLadderA, plan.EngineVolcano, true)
	if err != nil {
		return nil, err
	}
	if st := cache.Stats(); st.Entries == 0 {
		return nil, fmt.Errorf("cold run published nothing: %+v", st)
	}

	// Rung 2: semantic warm hit under a different spelling. Best of five,
	// as prepared-statement loops would see it.
	warm := time.Hour
	for i := 0; i < 5; i++ {
		rows, d, err := run(reuseLadderB, plan.EngineVolcano, true)
		if err != nil {
			return nil, err
		}
		if key(rows) != key(want) {
			return nil, fmt.Errorf("warm rows differ from cold:\n got %s\nwant %s", key(rows), key(want))
		}
		if d < warm {
			warm = d
		}
	}

	// Rung 3: byte-identical replay — the result cache's trick — costs one
	// defensive copy of the stored rows.
	replay := time.Hour
	for i := 0; i < 5; i++ {
		start := time.Now()
		out := make([]storage.Row, len(want))
		for j, row := range want {
			out[j] = append(storage.Row(nil), row...)
		}
		if d := time.Since(start); d < replay {
			replay = d
		}
		if key(out) != key(want) {
			return nil, fmt.Errorf("replay copy corrupted rows")
		}
	}

	// Rung 4: a write to lineitem bumps its epoch and drops its dependents
	// — but only its dependents: the orders-side join build survives, so
	// the rebuild re-probes it and only re-aggregates. (The facade does
	// exactly this on INSERT; here the table is immutable so rows stay
	// comparable.)
	entriesBefore := cache.Stats().Entries
	epochs.Bump("lineitem")
	cache.Invalidate("lineitem")
	survivors := cache.Stats().Entries
	if survivors >= entriesBefore {
		return nil, fmt.Errorf("invalidation dropped nothing: %d entries before, %d after", entriesBefore, survivors)
	}
	rows, rebuild, err := run(reuseLadderB, plan.EngineVolcano, true)
	if err != nil {
		return nil, err
	}
	if key(rows) != key(want) {
		return nil, fmt.Errorf("rebuild rows differ from cold")
	}

	speed := func(d time.Duration) float64 {
		if d <= 0 {
			d = time.Nanosecond
		}
		return float64(cold) / float64(d)
	}
	rep.Printf("shared-subplan join+aggregate, SF %.3g", r.Cfg.ScaleFactor)
	rep.Printf("%-44s %12s %12s", "rung", "wall", "vs cold")
	rep.Printf("%-44s %12s %11.2fx", "cold build (publishes join build + agg)", cold.Round(time.Microsecond), 1.0)
	rep.Printf("%-44s %12s %11.2fx", "warm, alias-renamed (semantic hit)", warm.Round(time.Microsecond), speed(warm))
	rep.Printf("%-44s %12s %11.2fx", "byte-identical replay (result cache)", replay.Round(time.Microsecond), speed(replay))
	rep.Printf("%-44s %12s %11.2fx",
		fmt.Sprintf("after lineitem epoch bump (%d/%d entries kept)", survivors, entriesBefore),
		rebuild.Round(time.Microsecond), speed(rebuild))

	// Cross-engine adoption: the table volcano republished on the rebuild
	// serves the vectorized and push engines unchanged.
	for _, e := range []plan.Engine{plan.EngineVec, plan.EnginePush} {
		rows, d, err := run(reuseLadderA, e, true)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e, err)
		}
		if key(rows) != key(want) {
			return nil, fmt.Errorf("%s adopted entry served wrong rows", e)
		}
		rep.Printf("%-44s %12s %11.2fx", fmt.Sprintf("cross-engine warm hit (%s)", e), d.Round(time.Microsecond), speed(d))
	}

	st := cache.Stats()
	rep.Printf("cache: %d hits, %d misses, %d invalidations, %d entries, %d KiB resident",
		st.Hits, st.Misses, st.Invalidations, st.Entries, st.Bytes/1024)
	if warm*5 > cold {
		rep.Printf("WARNING: warm rung under 5x (%.2fx) — scale factor likely too small to amortize", speed(warm))
	}
	return rep, nil
}
