package bench

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"bufferdb/internal/pager"
	"bufferdb/internal/storage"
)

// ExperimentStorage measures the persistent storage tier against the
// memory-resident baseline the paper evaluates on: sequential-scan
// throughput of lineitem in memory vs streamed through buffer pools sized
// at 10%, 50% and 100% of the table, plus the eviction policies' hit
// ratios under a skewed point-lookup workload at the smallest pool. The
// paper's buffering keeps instructions cache-resident; this tier applies
// the same residency argument to data pages, and the experiment quantifies
// what the pool must absorb before the paged scan approaches memory speed.
func ExperimentStorage(r *Runner) (*Report, error) {
	rep := &Report{ID: "storage", Title: "Persistent tier: in-memory vs paged scans, eviction policies"}

	mem, err := r.DB.Table("lineitem")
	if err != nil {
		return nil, err
	}
	rows := mem.Rows()
	nRows := len(rows)

	dir, err := os.MkdirTemp("", "bufferdb-bench-storage")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	s, err := pager.Open(dir, pager.Options{})
	if err != nil {
		return nil, err
	}
	if _, err := s.CreateTable("lineitem", mem.Schema()); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.BulkLoad("lineitem", rows); err != nil {
		s.Close()
		return nil, err
	}
	pages := int64(s.PoolStats().ResidentPages) // 0 — bulk load bypasses the pool
	if err := s.Close(); err != nil {
		return nil, err
	}
	if fi, err := os.Stat(dir + "/lineitem.heap"); err == nil {
		pages = fi.Size() / pager.DefaultPageSize
	}

	// Baseline: the memory-resident scan every other experiment runs on.
	memSec := scanSeconds(func() (storage.RowIterator, error) {
		return mem.Iterate(storage.Span{Start: 0, End: nRows})
	})
	rep.Printf("lineitem: %d rows, %d pages of %d bytes on disk", nRows, pages, pager.DefaultPageSize)
	rep.Printf("%-28s %12s %14s", "configuration", "scan sec", "Mrows/sec")
	rep.Printf("%-28s %12.4f %14.2f", "in-memory slice", memSec, float64(nRows)/memSec/1e6)

	for _, pct := range []int{10, 50, 100} {
		poolBytes := pages * pager.DefaultPageSize * int64(pct) / 100
		ps, err := pager.Open(dir, pager.Options{PoolBytes: poolBytes})
		if err != nil {
			return nil, err
		}
		tbl, err := ps.Table("lineitem")
		if err != nil {
			ps.Close()
			return nil, err
		}
		// One warm scan populates the pool, then the measured scan shows
		// the steady state (full reuse at 100%, full wash-through at 10%).
		iter := func() (storage.RowIterator, error) {
			return tbl.Iterate(storage.Span{Start: 0, End: tbl.NumRows()})
		}
		if sec := scanSeconds(iter); sec < 0 {
			ps.Close()
			return nil, fmt.Errorf("warm scan failed")
		}
		sec := scanSeconds(iter)
		st := ps.PoolStats()
		rep.Printf("%-28s %12.4f %14.2f   (hits %d, misses %d, evictions %d)",
			fmt.Sprintf("paged, pool %d%% of table", pct), sec, float64(nRows)/sec/1e6,
			st.Hits, st.Misses, st.Evictions)
		if err := ps.Close(); err != nil {
			return nil, err
		}
	}

	rep.Printf("")
	rep.Printf("point lookups, 80/20 skew, pool 10%% of table:")
	rep.Printf("%-28s %12s", "eviction policy", "hit ratio")
	for _, policy := range []string{"lru", "gdsf"} {
		ps, err := pager.Open(dir, pager.Options{
			PoolBytes: pages * pager.DefaultPageSize / 10,
			Eviction:  policy,
		})
		if err != nil {
			return nil, err
		}
		tbl, err := ps.Table("lineitem")
		if err != nil {
			ps.Close()
			return nil, err
		}
		n := tbl.NumRows()
		hot := n / 5
		rng := rand.New(rand.NewSource(42))
		lookups := 4 * n
		for i := 0; i < lookups; i++ {
			rid := hot + rng.Intn(n-hot)
			if rng.Intn(10) < 8 {
				rid = rng.Intn(hot)
			}
			if _, err := tbl.FetchRow(rid); err != nil {
				ps.Close()
				return nil, err
			}
		}
		st := ps.PoolStats()
		rep.Printf("%-28s %12.4f", policy, float64(st.Hits)/float64(st.Hits+st.Misses))
		if err := ps.Close(); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// scanSeconds drains one full iterator pass and returns the wall seconds,
// or -1 on error. The column count accumulator keeps the loop from being
// optimized away.
func scanSeconds(open func() (storage.RowIterator, error)) float64 {
	it, err := open()
	if err != nil {
		return -1
	}
	defer it.Close()
	cells := 0
	start := time.Now()
	for {
		_, row, ok, err := it.Next()
		if err != nil {
			return -1
		}
		if !ok {
			break
		}
		cells += len(row)
	}
	sec := time.Since(start).Seconds()
	if cells < 0 || sec <= 0 {
		return 1e-9
	}
	return sec
}
