package bench

import (
	"testing"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/sql"
)

func TestExtPrefetchShape(t *testing.T) {
	rep, err := ExperimentExtPrefetch(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) < 5 {
		t.Fatalf("report too short:\n%s", rep)
	}

	// Re-derive the measurements to assert the shape: prefetching cuts
	// misses meaningfully but buffering still beats it.
	p, err := testRunner.Plan(Query1, nil2())
	if err != nil {
		t.Fatal(err)
	}
	refined, err := testRunner.Refine(p)
	if err != nil {
		t.Fatal(err)
	}
	pfCfg := testRunner.CPUCfg
	pfCfg.L1IPrefetchNextLines = 3
	base, err := testRunner.measureWith("base", p, testRunner.CPUCfg, testRunner.CM)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := testRunner.measureWith("pf", p, pfCfg, testRunner.CM)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := testRunner.measureWith("buf", refined, testRunner.CPUCfg, testRunner.CM)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Counters.L1IPrefetches == 0 {
		t.Fatal("prefetcher never fired")
	}
	pfRed := reduction(base.Counters.L1IMisses, pf.Counters.L1IMisses)
	if pfRed < 10 || pfRed > 80 {
		t.Errorf("prefetch miss reduction = %.1f%%, want partial (10–80%%)", pfRed)
	}
	if buf.ElapsedSec >= pf.ElapsedSec {
		t.Errorf("buffering (%.4fs) not faster than prefetching (%.4fs)", buf.ElapsedSec, pf.ElapsedSec)
	}
	// All three compute the same answer.
	if base.FirstRow != pf.FirstRow || base.FirstRow != buf.FirstRow {
		t.Error("variants disagree on the result")
	}
}

func TestExtLayoutShape(t *testing.T) {
	rep, err := ExperimentExtLayout(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if len(rep.Lines) < 6 {
		t.Fatalf("report too short:\n%s", out)
	}
	// Assert the claims made in the report by recomputation happens in
	// the experiment itself; here verify the key invariant numerically.
	p, err := testRunner.Plan(Query1, nil2())
	if err != nil {
		t.Fatal(err)
	}
	packedCM := newPackedCM()
	scattered, err := testRunner.measureWith("s", p, testRunner.CPUCfg, testRunner.CM)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := testRunner.measureWith("p", p, testRunner.CPUCfg, packedCM)
	if err != nil {
		t.Fatal(err)
	}
	// Packing must (nearly) eliminate ITLB misses…
	if red := reduction(scattered.Counters.ITLBMisses, packed.Counters.ITLBMisses); red < 95 {
		t.Errorf("packed layout ITLB reduction = %.1f%%, want ≥ 95%%", red)
	}
	// …while leaving the L1I thrashing substantially intact.
	if red := reduction(scattered.Counters.L1IMisses, packed.Counters.L1IMisses); red > 30 {
		t.Errorf("packed layout removed %.1f%% of L1I misses; footprint should persist", red)
	}
}

// nil2 returns zero-valued sql options (helper keeping imports local).
func nil2() sql.Options { return sql.Options{} }

// newPackedCM builds a packed-layout code model.
func newPackedCM() *codemodel.Catalog {
	return codemodel.NewCatalogWithLayout(codemodel.LayoutPacked)
}
