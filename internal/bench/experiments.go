package bench

import (
	"fmt"
	"strings"

	"bufferdb/internal/core"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
)

// coreCalibrate runs the §7.3 calibration sweep against the runner's code
// model and machine config.
func coreCalibrate(r *Runner, cards []int) (*core.CalibrationResult, error) {
	tableRows := cards[len(cards)-1]
	if tableRows < 4096 {
		tableRows = 4096
	}
	return core.CalibrateThreshold(r.CM, r.CPUCfg, tableRows, cards, r.Cfg.BufferSize)
}

// ExperimentFig1 reproduces Figure 1: the operator execution sequence with
// and without a size-5 buffer.
func ExperimentFig1(r *Runner) (*Report, error) {
	rep := &Report{ID: "fig1", Title: "Operator execution sequence"}
	li, err := r.DB.Table("lineitem")
	if err != nil {
		return nil, err
	}
	run := func(buffered bool) (string, error) {
		scan := exec.NewSeqScan(li, nil, nil)
		scan.SetTraceLabel('C')
		var child exec.Operator = scan
		if buffered {
			buf := core.NewBuffer(scan, 5, nil)
			buf.SetTraceLabel('B')
			child = buf
		}
		// The parent must pull one child tuple per Next call so the trace
		// shows the figure's P/C pattern; a projection does exactly that.
		sch := li.Schema()
		keyIdx, err := sch.ColumnIndex("", "l_orderkey")
		if err != nil {
			return "", err
		}
		parent, err := exec.NewProject(child,
			[]expr.Expr{expr.NewColRef(keyIdx, "l_orderkey", sch[keyIdx].Type)},
			[]string{"l_orderkey"}, nil)
		if err != nil {
			return "", err
		}
		parent.SetTraceLabel('P')
		tr := exec.NewTracer(48)
		if _, err := exec.Run(&exec.Context{Catalog: r.DB, Trace: tr}, exec.NewLimit(parent, 20)); err != nil {
			return "", err
		}
		// Show only parent/child interleaving, as the paper's figure does.
		seq := strings.Map(func(c rune) rune {
			if c == 'P' || c == 'C' {
				return c
			}
			return -1
		}, tr.String())
		return seq, nil
	}
	orig, err := run(false)
	if err != nil {
		return nil, err
	}
	buf, err := run(true)
	if err != nil {
		return nil, err
	}
	rep.Printf("(a) Original: %s...", orig)
	rep.Printf("(b) Buffered: %s...", buf)
	return rep, nil
}

// ExperimentTable1 dumps the simulated machine specification.
func ExperimentTable1(r *Runner) (*Report, error) {
	rep := &Report{ID: "table1", Title: "System specification (simulated)"}
	c := r.CPUCfg
	rep.Printf("Clock                         %.1f GHz", c.ClockHz/1e9)
	rep.Printf("L1 instruction cache          %d KB, %d-B lines (trace-cache equivalent, fully associative)", c.L1I.SizeBytes/1024, c.L1I.LineBytes)
	rep.Printf("L1 data cache                 %d KB, %d-B lines, %d-way", c.L1D.SizeBytes/1024, c.L1D.LineBytes, c.L1D.Ways)
	rep.Printf("L2 unified cache              %d KB, %d-B lines, %d-way", c.L2.SizeBytes/1024, c.L2.LineBytes, c.L2.Ways)
	rep.Printf("ITLB                          %d entries, %d-KB pages", c.ITLBEntries, c.PageBytes/1024)
	rep.Printf("L1I miss latency              %d cycles", c.LatL1IMiss)
	rep.Printf("L1D miss latency              %d cycles", c.LatL1DMiss)
	rep.Printf("L2 miss latency               %d cycles", c.LatL2Miss)
	rep.Printf("Branch misprediction latency  %d cycles", c.LatMispredict)
	rep.Printf("Branch predictor              gshare, %d entries, %d-bit history", 1<<c.BPTableBits, c.BPHistoryBits)
	rep.Printf("Hardware prefetch             yes (%d sequential streams)", c.PrefetchStreams)
	return rep, nil
}

// ExperimentTable2 regenerates the per-module footprint table three ways:
// the "measured" column reproduces the paper's §7.1 methodology by running
// the calibration query set and recording the dynamic call graph through
// the CPU's fetch hook; "dynamic" is the code model's declared call set
// (they must agree); "naive static" includes never-executed error paths,
// the overestimate the paper's dynamic analysis avoids.
func ExperimentTable2(r *Runner) (*Report, error) {
	rep := &Report{ID: "table2", Title: "Instruction footprints (measured vs dynamic vs naive static)"}
	measured, err := core.MeasureFootprints(r.CM, r.CPUCfg)
	if err != nil {
		return nil, err
	}
	rows := []struct {
		label  string
		module string
		aggs   []string
	}{
		{"SeqScan (no predicates)", "SeqScan", nil},
		{"SeqScan (with predicates)", "SeqScanPred", nil},
		{"IndexScan", "IndexScan", nil},
		{"Sort", "Sort", nil},
		{"NestLoop join", "NestLoop", nil},
		{"Merge join", "MergeJoin", nil},
		{"Hash join: build", "HashBuild", nil},
		{"Hash join: probe", "HashProbe", nil},
		{"Aggregation: base", "", []string{}},
		{"Aggregation: +COUNT", "", []string{"count"}},
		{"Aggregation: +MIN", "", []string{"min"}},
		{"Aggregation: +MAX", "", []string{"max"}},
		{"Aggregation: +SUM", "", []string{"sum"}},
		{"Aggregation: +AVG", "", []string{"avg"}},
		{"Buffer", "Buffer", nil},
	}
	base, err := r.CM.AggModule(nil)
	if err != nil {
		return nil, err
	}
	rep.Printf("%-28s %10s %10s %14s", "module", "measured", "dynamic", "naive static")
	for _, row := range rows {
		var dyn, static int
		meas := "—"
		switch {
		case row.module != "":
			m, err := r.CM.Module(row.module)
			if err != nil {
				return nil, err
			}
			dyn, static = m.FootprintBytes(), m.StaticFootprintBytes()
			if got, ok := measured[m.Name]; ok {
				meas = fmt.Sprintf("%.1fKB", float64(got)/1024)
			}
		case len(row.aggs) == 0:
			dyn, static = base.FootprintBytes(), base.StaticFootprintBytes()
		default:
			m, err := r.CM.AggModule(row.aggs)
			if err != nil {
				return nil, err
			}
			// Report the aggregate function's increment over the base, as
			// the paper's Table 2 does.
			dyn = m.FootprintBytes() - base.FootprintBytes()
			static = dyn
		}
		rep.Printf("%-28s %10s %8.1fKB %12.1fKB", row.label, meas, float64(dyn)/1024, float64(static)/1024)
	}
	return rep, nil
}

// pairedRun measures a query's original plan and a variant (refined or
// explicitly buffered) and reports the paper's standard comparison block.
func (r *Runner) pairedRun(rep *Report, query string, opt sql.Options, explicitBuffer bool) (orig, buf *Measurement, err error) {
	p, err := r.Plan(query, opt)
	if err != nil {
		return nil, nil, err
	}
	var variant *plan.Node
	if explicitBuffer {
		variant = explicitScanBuffer(p, r.Cfg.BufferSize)
	} else {
		variant, err = r.Refine(p)
		if err != nil {
			return nil, nil, err
		}
	}
	orig, err = r.Measure("original", p)
	if err != nil {
		return nil, nil, err
	}
	buf, err = r.Measure("buffered", variant)
	if err != nil {
		return nil, nil, err
	}
	if orig.FirstRow != buf.FirstRow || orig.Rows != buf.Rows {
		return nil, nil, fmt.Errorf("bench: buffered plan changed the result: %q vs %q", buf.FirstRow, orig.FirstRow)
	}
	clock := r.CPUCfg.ClockHz
	rep.Lines = append(rep.Lines, fmtBreakdownRow("original plan", orig, clock))
	rep.Lines = append(rep.Lines, fmtBreakdownRow("buffered plan", buf, clock))
	rep.Printf("L1I miss reduction:    %6.1f%%  (%d → %d)", reduction(orig.Counters.L1IMisses, buf.Counters.L1IMisses), orig.Counters.L1IMisses, buf.Counters.L1IMisses)
	rep.Printf("ITLB miss reduction:   %6.1f%%  (%d → %d)", reduction(orig.Counters.ITLBMisses, buf.Counters.ITLBMisses), orig.Counters.ITLBMisses, buf.Counters.ITLBMisses)
	rep.Printf("Mispredict reduction:  %6.1f%%  (%d → %d)", reduction(orig.Counters.Mispredicts, buf.Counters.Mispredicts), orig.Counters.Mispredicts, buf.Counters.Mispredicts)
	rep.Printf("Overall improvement:   %6.1f%%", improvement(orig.ElapsedSec, buf.ElapsedSec))
	return orig, buf, nil
}

// explicitScanBuffer clones a plan, wrapping its (single) scan in a buffer —
// the paper's hand-placed buffer used before the refinement algorithm is
// introduced (Figures 9 and 10).
func explicitScanBuffer(p *plan.Node, size int) *plan.Node {
	cloned := clonePlan(p)
	var wrap func(n *plan.Node)
	wrap = func(n *plan.Node) {
		for i, c := range n.Children {
			if c.Kind == plan.KindSeqScan {
				n.Children[i] = plan.Buffer(c, size)
				continue
			}
			wrap(c)
		}
	}
	wrap(cloned)
	return cloned
}

func clonePlan(n *plan.Node) *plan.Node {
	cp := *n
	cp.Children = make([]*plan.Node, len(n.Children))
	for i, c := range n.Children {
		cp.Children[i] = clonePlan(c)
	}
	return &cp
}

// ExperimentFig4 regenerates the unbuffered Query 1 breakdown.
func ExperimentFig4(r *Runner) (*Report, error) {
	rep := &Report{ID: "fig4", Title: "Instruction cache thrashing impact (Query 1, original plan)"}
	p, err := r.Plan(Query1, sql.Options{})
	if err != nil {
		return nil, err
	}
	m, err := r.Measure("original", p)
	if err != nil {
		return nil, err
	}
	clock := r.CPUCfg.ClockHz
	b := m.Breakdown(clock)
	rep.Lines = append(rep.Lines, fmtBreakdownRow("Query 1", m, clock))
	rep.Printf("Trace-miss share of total: %.1f%%", 100*b.TraceMissSec/m.ElapsedSec)
	rep.Printf("Result: %s", m.FirstRow)
	return rep, nil
}

// ExperimentFig9 regenerates the Query 2 comparison: combined footprint
// fits the L1I, so buffering is (slightly) counterproductive.
func ExperimentFig9(r *Runner) (*Report, error) {
	rep := &Report{ID: "fig9", Title: "Query 2: original vs (hand-)buffered"}
	if _, _, err := r.pairedRun(rep, Query2, sql.Options{}, true); err != nil {
		return nil, err
	}
	refined, err := r.Refine(mustPlan(r, Query2))
	if err != nil {
		return nil, err
	}
	rep.Printf("Refinement verdict: %d buffers (footprints fit one group)", plan.CountKind(refined, plan.KindBuffer))
	return rep, nil
}

// ExperimentFig10 regenerates the headline Query 1 comparison.
func ExperimentFig10(r *Runner) (*Report, error) {
	rep := &Report{ID: "fig10", Title: "Query 1: original vs buffered"}
	if _, _, err := r.pairedRun(rep, Query1, sql.Options{}, false); err != nil {
		return nil, err
	}
	return rep, nil
}

func mustPlan(r *Runner, q string) *plan.Node {
	p, err := r.Plan(q, sql.Options{})
	if err != nil {
		panic(err)
	}
	return p
}

// ExperimentFig11 regenerates the cardinality sweep and threshold.
func ExperimentFig11(r *Runner) (*Report, error) {
	rep := &Report{ID: "fig11", Title: "Cardinality effects (Query 1 template)"}
	cards := []int{0, 4, 16, 64, 256, 1024, 4096, 16384, 65536}
	res, err := coreCalibrate(r, cards)
	if err != nil {
		return nil, err
	}
	rep.Printf("%12s %14s %14s", "cardinality", "original (s)", "buffered (s)")
	for _, p := range res.Points {
		rep.Printf("%12d %14.6f %14.6f", p.Cardinality, p.OriginalSec, p.BufferedSec)
		rep.Series = append(rep.Series, SeriesPoint{X: float64(p.Cardinality), Original: p.OriginalSec, Buffered: p.BufferedSec})
	}
	rep.Printf("Calibrated cardinality threshold: %.0f", res.Threshold)
	return rep, nil
}

// fig12Sweep runs Query 1 with explicit scan buffers across sizes.
func fig12Sweep(r *Runner, sizes []int) (orig *Measurement, bybuf []*Measurement, err error) {
	p := mustPlan(r, Query1)
	orig, err = r.Measure("original", p)
	if err != nil {
		return nil, nil, err
	}
	for _, size := range sizes {
		m, err := r.Measure(fmt.Sprintf("buffer=%d", size), explicitScanBuffer(p, size))
		if err != nil {
			return nil, nil, err
		}
		bybuf = append(bybuf, m)
	}
	return orig, bybuf, nil
}

var fig12Sizes = []int{1, 4, 16, 64, 128, 256, 512, 1024, 4096, 16384, 65536}

// ExperimentFig12 regenerates the buffer-size sweep elapsed-time curve.
func ExperimentFig12(r *Runner) (*Report, error) {
	rep := &Report{ID: "fig12", Title: "Varied buffer sizes (Query 1)"}
	orig, runs, err := fig12Sweep(r, fig12Sizes)
	if err != nil {
		return nil, err
	}
	rep.Printf("%12s %14s", "buffer size", "elapsed (s)")
	rep.Printf("%12s %14.6f", "original", orig.ElapsedSec)
	for i, m := range runs {
		rep.Printf("%12d %14.6f", fig12Sizes[i], m.ElapsedSec)
		rep.Series = append(rep.Series, SeriesPoint{X: float64(fig12Sizes[i]), Original: orig.ElapsedSec, Buffered: m.ElapsedSec})
	}
	return rep, nil
}

// ExperimentFig13 regenerates the per-size breakdown.
func ExperimentFig13(r *Runner) (*Report, error) {
	rep := &Report{ID: "fig13", Title: "Breakdown across buffer sizes (Query 1)"}
	orig, runs, err := fig12Sweep(r, fig12Sizes)
	if err != nil {
		return nil, err
	}
	clock := r.CPUCfg.ClockHz
	rep.Lines = append(rep.Lines, fmtBreakdownRow("original", orig, clock))
	for i, m := range runs {
		rep.Lines = append(rep.Lines, fmtBreakdownRow(fmt.Sprintf("buffer=%d", fig12Sizes[i]), m, clock))
	}
	return rep, nil
}

// joinExperiment runs one forced-join variant of Query 3.
func joinExperiment(r *Runner, id, title string, method sql.JoinMethod) (*Report, error) {
	rep := &Report{ID: id, Title: title}
	p, err := r.Plan(Query3, sql.Options{ForceJoin: method})
	if err != nil {
		return nil, err
	}
	refined, res, err := plan.Refine(p, r.CM, plan.RefineOptions{
		CardinalityThreshold: r.Threshold,
		BufferSize:           r.Cfg.BufferSize,
	})
	if err != nil {
		return nil, err
	}
	rep.Printf("Original plan:\n%s", strings.TrimRight(plan.Explain(p), "\n"))
	rep.Printf("Refined plan:\n%s", strings.TrimRight(plan.Explain(refined), "\n"))
	rep.Printf("Execution groups:\n%s", strings.TrimRight(res.String(), "\n"))
	orig, err := r.Measure("original", p)
	if err != nil {
		return nil, err
	}
	buf, err := r.Measure("buffered", refined)
	if err != nil {
		return nil, err
	}
	if orig.FirstRow != buf.FirstRow {
		return nil, fmt.Errorf("bench: %s refined result differs", id)
	}
	clock := r.CPUCfg.ClockHz
	rep.Lines = append(rep.Lines, fmtBreakdownRow("original plan", orig, clock))
	rep.Lines = append(rep.Lines, fmtBreakdownRow("buffered plan", buf, clock))
	rep.Printf("L1I miss reduction:   %6.1f%%", reduction(orig.Counters.L1IMisses, buf.Counters.L1IMisses))
	rep.Printf("Mispredict reduction: %6.1f%%", reduction(orig.Counters.Mispredicts, buf.Counters.Mispredicts))
	rep.Printf("ITLB miss reduction:  %6.1f%%", reduction(orig.Counters.ITLBMisses, buf.Counters.ITLBMisses))
	rep.Printf("Overall improvement:  %6.1f%%", improvement(orig.ElapsedSec, buf.ElapsedSec))
	return rep, nil
}

// ExperimentFig15 regenerates the nested-loop join comparison.
func ExperimentFig15(r *Runner) (*Report, error) {
	return joinExperiment(r, "fig15", "Query 3 with nested-loop join", sql.JoinNestLoop)
}

// ExperimentFig16 regenerates the hash join comparison.
func ExperimentFig16(r *Runner) (*Report, error) {
	return joinExperiment(r, "fig16", "Query 3 with hash join", sql.JoinHash)
}

// ExperimentFig17 regenerates the merge join comparison.
func ExperimentFig17(r *Runner) (*Report, error) {
	return joinExperiment(r, "fig17", "Query 3 with merge join", sql.JoinMerge)
}

// table34Rows measures all three join methods for Tables 3 and 4.
func table34Rows(r *Runner) (map[string][2]*Measurement, error) {
	out := make(map[string][2]*Measurement)
	for _, jm := range []struct {
		name   string
		method sql.JoinMethod
	}{
		{"NestLoop", sql.JoinNestLoop},
		{"Hash Join", sql.JoinHash},
		{"Merge Join", sql.JoinMerge},
	} {
		p, err := r.Plan(Query3, sql.Options{ForceJoin: jm.method})
		if err != nil {
			return nil, err
		}
		refined, err := r.Refine(p)
		if err != nil {
			return nil, err
		}
		orig, err := r.Measure("original", p)
		if err != nil {
			return nil, err
		}
		buf, err := r.Measure("buffered", refined)
		if err != nil {
			return nil, err
		}
		out[jm.name] = [2]*Measurement{orig, buf}
	}
	return out, nil
}

// ExperimentTable3 regenerates the overall improvement table.
func ExperimentTable3(r *Runner) (*Report, error) {
	rep := &Report{ID: "table3", Title: "Overall improvement"}
	rows, err := table34Rows(r)
	if err != nil {
		return nil, err
	}
	rep.Printf("%-12s %14s %14s %12s", "join method", "original (s)", "buffered (s)", "improvement")
	for _, name := range []string{"NestLoop", "Hash Join", "Merge Join"} {
		m := rows[name]
		rep.Printf("%-12s %14.4f %14.4f %11.1f%%", name, m[0].ElapsedSec, m[1].ElapsedSec,
			improvement(m[0].ElapsedSec, m[1].ElapsedSec))
	}
	return rep, nil
}

// ExperimentTable4 regenerates the CPI comparison, also checking the
// paper's claim that instruction counts barely change (buffer operators are
// light-weight).
func ExperimentTable4(r *Runner) (*Report, error) {
	rep := &Report{ID: "table4", Title: "CPI improvement"}
	rows, err := table34Rows(r)
	if err != nil {
		return nil, err
	}
	rep.Printf("%-12s %10s %10s %18s", "join method", "orig CPI", "buf CPI", "instruction delta")
	for _, name := range []string{"NestLoop", "Hash Join", "Merge Join"} {
		m := rows[name]
		delta := 100 * (float64(m[1].Counters.Uops) - float64(m[0].Counters.Uops)) / float64(m[0].Counters.Uops)
		rep.Printf("%-12s %10.3f %10.3f %17.2f%%", name, m[0].CPI, m[1].CPI, delta)
	}
	return rep, nil
}

// ExperimentTable5 regenerates the TPC-H query table.
func ExperimentTable5(r *Runner) (*Report, error) {
	rep := &Report{ID: "table5", Title: "TPC-H queries: original vs refined"}
	queries := []struct {
		name  string
		query string
		opt   sql.Options
	}{
		{"Q1", TPCHQ1, sql.Options{}},
		{"Q3", TPCHQ3, sql.Options{}},
		{"Q5", TPCHQ5, sql.Options{}},
		{"Q6", TPCHQ6, sql.Options{}},
		{"Q10", TPCHQ10, sql.Options{}},
		{"Q12", TPCHQ12, sql.Options{}},
		{"Q14", TPCHQ14, sql.Options{}},
	}
	rep.Printf("%-6s %14s %14s %12s %9s", "query", "original (s)", "refined (s)", "improvement", "buffers")
	for _, q := range queries {
		p, err := r.Plan(q.query, q.opt)
		if err != nil {
			return nil, err
		}
		refined, err := r.Refine(p)
		if err != nil {
			return nil, err
		}
		orig, err := r.Measure("original", p)
		if err != nil {
			return nil, err
		}
		buf, err := r.Measure("refined", refined)
		if err != nil {
			return nil, err
		}
		if orig.FirstRow != buf.FirstRow || orig.Rows != buf.Rows {
			return nil, fmt.Errorf("bench: %s refined result differs", q.name)
		}
		rep.Printf("%-6s %14.4f %14.4f %11.1f%% %9d", q.name, orig.ElapsedSec, buf.ElapsedSec,
			improvement(orig.ElapsedSec, buf.ElapsedSec), plan.CountKind(refined, plan.KindBuffer))
	}
	return rep, nil
}

// verifyAgainstReference cross-checks a measurement's result row against an
// uninstrumented run, guarding the harness itself.
func (r *Runner) verifyAgainstReference(p *plan.Node, m *Measurement) error {
	op, err := plan.Build(p, nil)
	if err != nil {
		return err
	}
	rows, err := exec.Run(&exec.Context{Catalog: r.DB}, op)
	if err != nil {
		return err
	}
	if len(rows) != m.Rows {
		return fmt.Errorf("bench: instrumented run returned %d rows, reference %d", m.Rows, len(rows))
	}
	if len(rows) > 0 && rows[0].String() != m.FirstRow {
		return fmt.Errorf("bench: instrumented first row %q, reference %q", m.FirstRow, rows[0].String())
	}
	return nil
}
