package bench

import (
	"testing"

	"bufferdb/internal/sql"
)

// TestSimulatedTimeScalesLinearly validates the claim EXPERIMENTS.md relies
// on when comparing against the paper's SF 0.2 numbers: simulated elapsed
// time grows linearly with scale factor, so shapes measured at laptop scale
// transfer.
func TestSimulatedTimeScalesLinearly(t *testing.T) {
	run := func(sf float64) (orig, buf float64) {
		r, err := NewRunner(Config{ScaleFactor: sf, CardinalityThreshold: 16})
		if err != nil {
			t.Fatal(err)
		}
		p, err := r.Plan(Query1, sql.Options{})
		if err != nil {
			t.Fatal(err)
		}
		refined, err := r.Refine(p)
		if err != nil {
			t.Fatal(err)
		}
		mo, err := r.Measure("o", p)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := r.Measure("b", refined)
		if err != nil {
			t.Fatal(err)
		}
		return mo.ElapsedSec, mb.ElapsedSec
	}
	o1, b1 := run(0.002)
	o2, b2 := run(0.004)

	// Doubling the scale factor should double simulated time within ~15 %
	// (row counts round, cold-cache warmup amortizes differently).
	for _, c := range []struct {
		name  string
		small float64
		large float64
	}{
		{"original", o1, o2},
		{"buffered", b1, b2},
	} {
		ratio := c.large / c.small
		if ratio < 1.7 || ratio > 2.3 {
			t.Errorf("%s: SF×2 changed elapsed ×%.2f, want ≈ 2", c.name, ratio)
		}
	}
	// The improvement percentage itself is scale-stable.
	imp1 := 1 - b1/o1
	imp2 := 1 - b2/o2
	if diff := imp1 - imp2; diff > 0.05 || diff < -0.05 {
		t.Errorf("improvement drifted with scale: %.3f vs %.3f", imp1, imp2)
	}
}
