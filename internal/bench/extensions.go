package bench

import (
	"bufferdb/internal/codemodel"
	"bufferdb/internal/cpusim"
	"bufferdb/internal/exec"
	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
)

// The two extension experiments reproduce the paper's §2 related-work
// arguments quantitatively: neither instruction prefetching nor
// profile-guided code layout removes pipeline thrashing, because neither
// shrinks the per-tuple instruction footprint.

// measureWith measures a plan under an explicit CPU config and code model.
func (r *Runner) measureWith(label string, p *plan.Node, cfg cpusim.Config, cm *codemodel.Catalog) (*Measurement, error) {
	cpu, err := cpusim.New(cfg, cm.TextSegmentBytes())
	if err != nil {
		return nil, err
	}
	placements := exec.PlaceCatalog(cpu, r.DB)
	op, err := plan.Build(p, cm)
	if err != nil {
		return nil, err
	}
	rows, err := exec.Run(&exec.Context{Catalog: r.DB, CPU: cpu, Placements: placements}, op)
	if err != nil {
		return nil, err
	}
	m := &Measurement{
		Label:      label,
		Rows:       len(rows),
		ElapsedSec: cpu.ElapsedSeconds(),
		CPI:        cpu.CPI(),
		Counters:   cpu.Counters(),
		Cycles:     cpu.CycleBreakdown(),
	}
	if len(rows) > 0 {
		m.FirstRow = rows[0].String()
	}
	return m, nil
}

// ExperimentExtPrefetch compares the unbuffered Query 1 pipeline with and
// without a next-3-line instruction prefetcher, against the buffered plan.
// Prefetching converts most straight-line fetches into hits but still pays
// one serial stall per run of lines — the footprint is refetched every
// tuple regardless. Buffering removes the refetch itself.
func ExperimentExtPrefetch(r *Runner) (*Report, error) {
	rep := &Report{ID: "ext1", Title: "Related work: next-line instruction prefetching vs buffering"}
	p, err := r.Plan(Query1, sql.Options{})
	if err != nil {
		return nil, err
	}
	refined, err := r.Refine(p)
	if err != nil {
		return nil, err
	}
	pfCfg := r.CPUCfg
	pfCfg.L1IPrefetchNextLines = 3

	base, err := r.measureWith("no prefetch", p, r.CPUCfg, r.CM)
	if err != nil {
		return nil, err
	}
	pf, err := r.measureWith("prefetch", p, pfCfg, r.CM)
	if err != nil {
		return nil, err
	}
	buf, err := r.measureWith("buffered", refined, r.CPUCfg, r.CM)
	if err != nil {
		return nil, err
	}
	clock := r.CPUCfg.ClockHz
	rep.Lines = append(rep.Lines, fmtBreakdownRow("original", base, clock))
	rep.Lines = append(rep.Lines, fmtBreakdownRow("original+prefetch", pf, clock))
	rep.Lines = append(rep.Lines, fmtBreakdownRow("buffered (no pf)", buf, clock))
	rep.Printf("prefetch cut L1I misses by %.1f%% (%d → %d, %d lines prefetched)",
		reduction(base.Counters.L1IMisses, pf.Counters.L1IMisses),
		base.Counters.L1IMisses, pf.Counters.L1IMisses, pf.Counters.L1IPrefetches)
	rep.Printf("…but buffering cut them by %.1f%% and runs %.1f%% faster than prefetching",
		reduction(base.Counters.L1IMisses, buf.Counters.L1IMisses),
		improvement(pf.ElapsedSec, buf.ElapsedSec))
	return rep, nil
}

// ExperimentExtLayout compares the scattered binary layout against a
// profile-guided "packed" layout. Packing collapses the ITLB working set
// (the pipeline fits in a handful of pages) but the instruction footprint
// in cache lines is unchanged, so L1I thrashing — and buffering's win —
// remain.
func ExperimentExtLayout(r *Runner) (*Report, error) {
	rep := &Report{ID: "ext2", Title: "Related work: profile-guided code layout vs buffering"}
	packedCM := codemodel.NewCatalogWithLayout(codemodel.LayoutPacked)

	p, err := r.Plan(Query1, sql.Options{})
	if err != nil {
		return nil, err
	}
	refined, err := r.Refine(p)
	if err != nil {
		return nil, err
	}

	scattered, err := r.measureWith("scattered", p, r.CPUCfg, r.CM)
	if err != nil {
		return nil, err
	}
	packed, err := r.measureWith("packed", p, r.CPUCfg, packedCM)
	if err != nil {
		return nil, err
	}
	packedBuf, err := r.measureWith("packed+buffered", refined, r.CPUCfg, packedCM)
	if err != nil {
		return nil, err
	}
	clock := r.CPUCfg.ClockHz
	rep.Lines = append(rep.Lines, fmtBreakdownRow("scattered layout", scattered, clock))
	rep.Lines = append(rep.Lines, fmtBreakdownRow("packed layout", packed, clock))
	rep.Lines = append(rep.Lines, fmtBreakdownRow("packed + buffered", packedBuf, clock))
	rep.Printf("packing cut ITLB misses by %.1f%% (%d → %d)…",
		reduction(scattered.Counters.ITLBMisses, packed.Counters.ITLBMisses),
		scattered.Counters.ITLBMisses, packed.Counters.ITLBMisses)
	rep.Printf("…but left %.1f%% of the L1I misses (%d → %d): the footprint still exceeds the cache",
		100-reduction(scattered.Counters.L1IMisses, packed.Counters.L1IMisses),
		scattered.Counters.L1IMisses, packed.Counters.L1IMisses)
	rep.Printf("buffering on top of packing still gains %.1f%%",
		improvement(packed.ElapsedSec, packedBuf.ElapsedSec))
	return rep, nil
}
