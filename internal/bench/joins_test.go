package bench

import (
	"strings"
	"testing"

	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
)

func TestJoinExperimentsShapes(t *testing.T) {
	skipIfShort(t)
	cases := []struct {
		id     string
		method sql.JoinMethod
		run    func(*Runner) (*Report, error)
	}{
		{"fig15", sql.JoinNestLoop, ExperimentFig15},
		{"fig16", sql.JoinHash, ExperimentFig16},
		{"fig17", sql.JoinMerge, ExperimentFig17},
	}
	for _, c := range cases {
		rep, err := c.run(testRunner)
		if err != nil {
			t.Fatalf("%s: %v", c.id, err)
		}
		out := rep.String()
		if !strings.Contains(out, "Overall improvement") || !strings.Contains(out, "Execution groups") {
			t.Errorf("%s report incomplete:\n%s", c.id, out)
		}
		// Every join variant improves on the simulated machine.
		p, err := testRunner.Plan(Query3, sql.Options{ForceJoin: c.method})
		if err != nil {
			t.Fatal(err)
		}
		refined, err := testRunner.Refine(p)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := testRunner.Measure("o", p)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := testRunner.Measure("b", refined)
		if err != nil {
			t.Fatal(err)
		}
		if buf.ElapsedSec >= orig.ElapsedSec {
			t.Errorf("%s: refined plan slower (%.4f vs %.4f)", c.id, buf.ElapsedSec, orig.ElapsedSec)
		}
		if red := reduction(orig.Counters.L1IMisses, buf.Counters.L1IMisses); red < 50 {
			t.Errorf("%s: L1I reduction %.1f%%, want ≥ 50%% (paper: 53–79%%)", c.id, red)
		}
	}
}

func TestFig15NestLoopInnerNotBuffered(t *testing.T) {
	p, err := testRunner.Plan(Query3, sql.Options{ForceJoin: sql.JoinNestLoop})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := testRunner.Refine(p)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one buffer, and never above the index lookup (paper:
	// foreign-key inner never benefits).
	if n := plan.CountKind(refined, plan.KindBuffer); n != 1 {
		t.Errorf("nestloop buffers = %d, want 1:\n%s", n, plan.Explain(refined))
	}
	plan.Walk(refined, func(n *plan.Node) {
		if n.Kind == plan.KindBuffer && n.Children[0].Kind == plan.KindIndexLookup {
			t.Error("buffer above the nest-loop inner index lookup")
		}
	})
}

func TestFig17NoBufferAboveSort(t *testing.T) {
	p, err := testRunner.Plan(Query3, sql.Options{ForceJoin: sql.JoinMerge})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := testRunner.Refine(p)
	if err != nil {
		t.Fatal(err)
	}
	plan.Walk(refined, func(n *plan.Node) {
		if n.Kind == plan.KindBuffer && n.Children[0].Kind == plan.KindSort {
			t.Error("buffer above the blocking sort")
		}
	})
	// The ordered index scan is buffered (unlike the nest-loop plan).
	found := false
	plan.Walk(refined, func(n *plan.Node) {
		if n.Kind == plan.KindBuffer && n.Children[0].Kind == plan.KindIndexFullScan {
			found = true
		}
	})
	if !found {
		t.Errorf("no buffer above IndexFullScan:\n%s", plan.Explain(refined))
	}
}

func TestTable3AllPositive(t *testing.T) {
	skipIfShort(t)
	rows, err := table34Rows(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range rows {
		impr := improvement(m[0].ElapsedSec, m[1].ElapsedSec)
		if impr < 3 || impr > 40 {
			t.Errorf("%s improvement = %.1f%%, want a Table-3-like gain (paper: 12–15%%)", name, impr)
		}
	}
}

func TestTable4CPIAndInstructionCounts(t *testing.T) {
	skipIfShort(t)
	rows, err := table34Rows(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range rows {
		if m[1].CPI >= m[0].CPI {
			t.Errorf("%s: buffered CPI %.3f not below original %.3f", name, m[1].CPI, m[0].CPI)
		}
		// Buffer operators are light-weight: instruction counts within a
		// few percent (paper: < 1%; our buffers also charge setup work).
		delta := float64(m[1].Counters.Uops)/float64(m[0].Counters.Uops) - 1
		if delta < -0.01 || delta > 0.06 {
			t.Errorf("%s: instruction count delta %.2f%%, want small", name, delta*100)
		}
	}
}

func TestTable5RunsAndQ1Improves(t *testing.T) {
	skipIfShort(t)
	rep, err := ExperimentTable5(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, q := range []string{"Q1", "Q3", "Q6", "Q14"} {
		if !strings.Contains(out, q) {
			t.Errorf("table5 missing %s:\n%s", q, out)
		}
	}
	// TPC-H Q1 (unselective, big footprint) is the paper's clearest win.
	p, err := testRunner.Plan(TPCHQ1, sql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := testRunner.Refine(p)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := testRunner.Measure("o", p)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := testRunner.Measure("b", refined)
	if err != nil {
		t.Fatal(err)
	}
	if impr := improvement(orig.ElapsedSec, buf.ElapsedSec); impr < 5 {
		t.Errorf("TPC-H Q1 improvement = %.1f%%, want ≥ 5%%", impr)
	}
	if err := testRunner.verifyAgainstReference(p, orig); err != nil {
		t.Error(err)
	}
}

func TestTable2Report(t *testing.T) {
	rep, err := ExperimentTable2(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"SeqScan (with predicates)", "13.0KB", "Hash join: probe", "Buffer"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Report(t *testing.T) {
	rep, err := ExperimentTable1(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "2.4 GHz") {
		t.Errorf("table1:\n%s", rep)
	}
}

func TestFig13Report(t *testing.T) {
	skipIfShort(t)
	rep, err := ExperimentFig13(testRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != len(fig12Sizes)+1 {
		t.Errorf("fig13 rows = %d, want %d", len(rep.Lines), len(fig12Sizes)+1)
	}
}
