package bench

import (
	"fmt"

	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
)

// ExperimentPush regenerates the three-way instruction-cache showdown the
// push engine exists for: the same plans run as the refined (buffered)
// Volcano pipeline, as the block-oriented (vectorized) compilation, and as
// push-fused compiled pipelines — one producer-driven loop per execution
// group, materializing only at pipeline breakers. The unbuffered Volcano
// plan anchors each comparison.
//
// All three alternatives amortize instruction fetch over ~1024-tuple
// batches, so their L1I miss counts land far below the original plan's.
// The fused loop additionally drops the buffer operator's per-tuple serve
// path and the vec engine's batch-assembly bookkeeping, which shows up in
// the µop and cycle columns. The nestloop case exercises the adapter
// fallback: the join runs as a Volcano island while its scans still fuse.
func ExperimentPush(r *Runner) (*Report, error) {
	rep := &Report{ID: "push", Title: "Push-fused pipelines vs buffering and vectorization"}
	cases := []struct {
		label string
		query string
		opt   sql.Options
		// strict marks plans the push compiler covers end-to-end whose
		// combined footprint overflows L1I; those carry the hard
		// lower-L1I-than-original invariant. Query 2's footprint fits
		// (both plans pay only cold misses — the paper's §5.2 point), and
		// the nestloop case runs its join as a Volcano island; both still
		// report their numbers.
		strict bool
	}{
		{"Query 1", Query1, sql.Options{}, true},
		{"Query 2", Query2, sql.Options{}, false},
		{"Query 3 (hash)", Query3, sql.Options{ForceJoin: sql.JoinHash}, true},
		{"Query 3 (nestloop)", Query3, sql.Options{ForceJoin: sql.JoinNestLoop}, false},
	}
	clock := r.CPUCfg.ClockHz
	for _, c := range cases {
		p, err := r.Plan(c.query, c.opt)
		if err != nil {
			return nil, err
		}
		refined, err := r.Refine(p)
		if err != nil {
			return nil, err
		}
		orig, err := r.Measure("original", p)
		if err != nil {
			return nil, err
		}
		buf, err := r.Measure("buffered", refined)
		if err != nil {
			return nil, err
		}
		vec, err := r.MeasureEngine("vectorized", p, plan.EngineVec)
		if err != nil {
			return nil, err
		}
		psh, err := r.MeasureEngine("push-fused", p, plan.EnginePush)
		if err != nil {
			return nil, err
		}
		for _, m := range []*Measurement{buf, vec, psh} {
			if m.Rows != orig.Rows || m.FirstRow != orig.FirstRow {
				return nil, fmt.Errorf("push: %s %s changed the result: %d rows %q vs %d rows %q",
					c.label, m.Label, m.Rows, m.FirstRow, orig.Rows, orig.FirstRow)
			}
		}
		if c.strict && psh.Counters.L1IMisses >= orig.Counters.L1IMisses {
			return nil, fmt.Errorf("push: %s fusion did not reduce L1I misses: %d vs original %d",
				c.label, psh.Counters.L1IMisses, orig.Counters.L1IMisses)
		}
		rep.Printf("--- %s ---", c.label)
		all := []*Measurement{orig, buf, vec, psh}
		for _, m := range all {
			rep.Lines = append(rep.Lines, fmtBreakdownRow(m.Label, m, clock))
		}
		for _, m := range all {
			rep.Printf("%-12s L1I misses=%9d  mispredicts=%9d  uops=%11d  cycles=%12.0f",
				m.Label, m.Counters.L1IMisses, m.Counters.Mispredicts, m.Counters.Uops,
				m.ElapsedSec*clock)
		}
		rep.Printf("L1I miss reduction vs original: buffered %.1f%%, vectorized %.1f%%, push-fused %.1f%%",
			reduction(orig.Counters.L1IMisses, buf.Counters.L1IMisses),
			reduction(orig.Counters.L1IMisses, vec.Counters.L1IMisses),
			reduction(orig.Counters.L1IMisses, psh.Counters.L1IMisses))
		rep.Printf("elapsed vs buffered: vectorized %+.1f%%, push-fused %+.1f%%",
			improvement(buf.ElapsedSec, vec.ElapsedSec),
			improvement(buf.ElapsedSec, psh.ElapsedSec))
	}
	return rep, nil
}
