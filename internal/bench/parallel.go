package bench

import (
	"fmt"
	"time"

	"bufferdb/internal/exec"
	"bufferdb/internal/plan"
	"bufferdb/internal/sql"
)

// ParScanQuery is the intra-query parallelism workload: a streaming
// scan-filter-project pipeline over lineitem with no blocking operator, so
// the whole query is one partitionable chain under the gather.
const ParScanQuery = `
SELECT l_orderkey,
       l_extendedprice * (1 - l_discount) * (1 + l_tax) AS charge
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'`

// MeasureWallPar runs a plan uninstrumented with the given scan fan-out and
// returns wall-clock time, row count, and the FNV hash of the full result —
// the hash is what the equivalence check across worker counts and engines
// keys on.
func (r *Runner) MeasureWallPar(p *plan.Node, engine plan.Engine, workers int) (time.Duration, int, uint64, error) {
	par := plan.Parallelize(p, workers)
	op, err := plan.Compile(par, nil, engine)
	if err != nil {
		return 0, 0, 0, err
	}
	start := time.Now()
	rows, err := exec.Run(&exec.Context{Catalog: r.DB}, op)
	if err != nil {
		return 0, 0, 0, err
	}
	return time.Since(start), len(rows), exec.HashRows(rows), nil
}

// parCase is one workload of the parallel-scan experiment.
type parCase struct {
	name  string
	query string
}

// parVariant is one engine/buffering combination measured per worker count.
type parVariant struct {
	name    string
	engine  plan.Engine
	refined bool
}

// ExperimentPar regenerates the parallel partitioned-scan comparison: each
// workload runs under the Volcano engine (conventional and refined plans),
// the block-oriented engine and the push-fused engine at increasing worker
// counts. Every variant
// must produce a byte-identical result (equal FNV hash) at every fan-out —
// the ordered gather guarantees it — and the report shows the wall-clock
// speedup relative to the same variant at one worker. Speedups depend on
// the host's core count; the equivalence check is the hard invariant.
func ExperimentPar(r *Runner) (*Report, error) {
	rep := &Report{ID: "par", Title: "Parallel partitioned scans: equivalence and speedup"}

	workerCounts := []int{1, 2, 4, 8}
	reps := 3
	if r.Cfg.Short {
		workerCounts = []int{1, 2, 4}
		reps = 1
	}
	cases := []parCase{
		{name: "scan+project", query: ParScanQuery},
		{name: "query1", query: Query1},
	}
	variants := []parVariant{
		{name: plan.EngineVolcano.String(), engine: plan.EngineVolcano, refined: false},
		{name: plan.EngineVolcano.String() + "+buf", engine: plan.EngineVolcano, refined: true},
		{name: plan.EngineVec.String(), engine: plan.EngineVec, refined: false},
		{name: plan.EnginePush.String(), engine: plan.EnginePush, refined: false},
	}

	for _, c := range cases {
		base, err := r.Plan(c.query, sql.Options{})
		if err != nil {
			return nil, err
		}
		rep.Printf("%s:", c.name)
		var wantHash uint64
		var haveHash bool
		for _, v := range variants {
			p := base
			if v.refined {
				if p, err = r.Refine(base); err != nil {
					return nil, err
				}
			}
			var baseline time.Duration
			for _, workers := range workerCounts {
				best := time.Duration(0)
				var rows int
				var hash uint64
				for i := 0; i < reps; i++ {
					d, n, h, err := r.MeasureWallPar(p, v.engine, workers)
					if err != nil {
						return nil, fmt.Errorf("par %s/%s/w%d: %w", c.name, v.name, workers, err)
					}
					if i == 0 {
						rows, hash = n, h
					} else if h != hash {
						return nil, fmt.Errorf("par %s/%s/w%d: result hash unstable across repetitions", c.name, v.name, workers)
					}
					if best == 0 || d < best {
						best = d
					}
				}
				if !haveHash {
					wantHash, haveHash = hash, true
				} else if hash != wantHash {
					return nil, fmt.Errorf("par %s/%s: %d workers changed the result (hash %x, want %x)",
						c.name, v.name, workers, hash, wantHash)
				}
				if workers == workerCounts[0] {
					baseline = best
				}
				speedup := 0.0
				if best > 0 {
					speedup = float64(baseline) / float64(best)
				}
				rep.Printf("  %-12s workers=%d  rows=%-7d elapsed=%10v  speedup=%.2fx",
					v.name, workers, rows, best.Round(time.Microsecond), speedup)
				if v.engine == plan.EngineVolcano && !v.refined {
					rep.Series = append(rep.Series, SeriesPoint{
						X:        float64(workers),
						Original: baseline.Seconds(),
						Buffered: best.Seconds(),
					})
				}
			}
		}
		rep.Printf("  result hash %016x identical across %d variants x %v workers",
			wantHash, len(variants), workerCounts)
	}
	return rep, nil
}
