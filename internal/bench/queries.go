package bench

// The workload queries of the paper's evaluation (§7). Query 1 and Query 2
// are the paper's own calibration pair (Figures 3 and 8); Query 3 is the
// two-table join of §7.5; the TPC-H queries are §7.6's subset that neither
// uses subplans nor very selective predicates (those diminish the benefit,
// as the paper notes).

// Query1 is the paper's Figure 3: a pricing summary whose scan+aggregation
// footprint exceeds the L1 instruction cache.
const Query1 = `
SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'`

// Query2 is the paper's Figure 8: COUNT-only, whose combined footprint fits.
const Query2 = `
SELECT COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'`

// Query3 is the paper's Figure 14: the lineitem ⋈ orders join run under all
// three join methods.
const Query3 = `
SELECT SUM(o_totalprice), COUNT(*), AVG(l_discount)
FROM lineitem, orders
WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1995-06-17'`

// TPCHQ1 is TPC-H Query 1 (pricing summary report).
const TPCHQ1 = `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`

// TPCHQ3 is TPC-H Query 3 (shipping priority).
const TPCHQ3 = `
SELECT l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10`

// TPCHQ5 is TPC-H Query 5 (local supplier volume): a six-way join. The
// customer–supplier nation equality becomes a residual filter above the
// join pipeline, as in a conventional left-deep plan.
const TPCHQ5 = `
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY n_name
ORDER BY revenue DESC`

// TPCHQ10 is TPC-H Query 10 (returned item reporting).
const TPCHQ10 = `
SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address
ORDER BY revenue DESC
LIMIT 20`

// TPCHQ6 is TPC-H Query 6 (forecasting revenue change).
const TPCHQ6 = `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24`

// TPCHQ12 is TPC-H Query 12 (shipping modes and order priority).
const TPCHQ12 = `
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 0 ELSE 1 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY l_shipmode
ORDER BY l_shipmode`

// TPCHQ14 is TPC-H Query 14 (promotion effect), in its full CASE form.
const TPCHQ14 = `
SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END)
             / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH`
