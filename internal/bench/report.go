package bench

import (
	"fmt"
	"strings"
)

// Report is one experiment's regenerated table or figure, as printable rows.
type Report struct {
	ID    string
	Title string
	Lines []string
	// Series holds (x, originalY, bufferedY) points for figure-style
	// experiments, letting callers re-plot without parsing Lines.
	Series []SeriesPoint
}

// SeriesPoint is one x-position of a figure's curves.
type SeriesPoint struct {
	X        float64
	Original float64
	Buffered float64
}

// Printf appends a formatted line.
func (r *Report) Printf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is a named, runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (*Report, error)
}

// Experiments lists every regenerable table and figure, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Operator execution sequence (buffer size 5)", ExperimentFig1},
		{"table1", "Simulated system specification", ExperimentTable1},
		{"fig4", "Query 1 execution time breakdown (unbuffered)", ExperimentFig4},
		{"table2", "Instruction footprints by module", ExperimentTable2},
		{"fig9", "Query 2: original vs buffered breakdown", ExperimentFig9},
		{"fig10", "Query 1: original vs buffered breakdown", ExperimentFig10},
		{"fig11", "Cardinality effects (calibration sweep)", ExperimentFig11},
		{"fig12", "Buffer size sweep: elapsed time", ExperimentFig12},
		{"fig13", "Buffer size sweep: breakdown", ExperimentFig13},
		{"fig15", "Query 3 nested-loop join: plans and breakdown", ExperimentFig15},
		{"fig16", "Query 3 hash join: plans and breakdown", ExperimentFig16},
		{"fig17", "Query 3 merge join: plans and breakdown", ExperimentFig17},
		{"table3", "Overall improvement per join method", ExperimentTable3},
		{"table4", "CPI: original vs buffered plans", ExperimentTable4},
		{"table5", "TPC-H queries: original vs refined", ExperimentTable5},
		{"ext1", "Extension: instruction prefetching vs buffering", ExperimentExtPrefetch},
		{"ext2", "Extension: code layout vs buffering", ExperimentExtLayout},
	}
}

// FindExperiment resolves an experiment by ID.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
