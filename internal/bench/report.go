package bench

import (
	"fmt"
	"strings"
)

// Report is one experiment's regenerated table or figure, as printable rows.
type Report struct {
	ID    string
	Title string
	Lines []string
	// Series holds (x, originalY, bufferedY) points for figure-style
	// experiments, letting callers re-plot without parsing Lines.
	Series []SeriesPoint
}

// SeriesPoint is one x-position of a figure's curves.
type SeriesPoint struct {
	X        float64
	Original float64
	Buffered float64
}

// Printf appends a formatted line.
func (r *Report) Printf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is a named, runnable paper artifact. Slow marks the sweeps and
// full-suite drivers that `benchrunner -exp all -short` skips.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (*Report, error)
	Slow  bool
}

// Experiments lists every regenerable table and figure, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Operator execution sequence (buffer size 5)", Run: ExperimentFig1},
		{ID: "table1", Title: "Simulated system specification", Run: ExperimentTable1},
		{ID: "fig4", Title: "Query 1 execution time breakdown (unbuffered)", Run: ExperimentFig4},
		{ID: "table2", Title: "Instruction footprints by module", Run: ExperimentTable2},
		{ID: "fig9", Title: "Query 2: original vs buffered breakdown", Run: ExperimentFig9},
		{ID: "fig10", Title: "Query 1: original vs buffered breakdown", Run: ExperimentFig10},
		{ID: "fig11", Title: "Cardinality effects (calibration sweep)", Run: ExperimentFig11, Slow: true},
		{ID: "fig12", Title: "Buffer size sweep: elapsed time", Run: ExperimentFig12, Slow: true},
		{ID: "fig13", Title: "Buffer size sweep: breakdown", Run: ExperimentFig13, Slow: true},
		{ID: "fig15", Title: "Query 3 nested-loop join: plans and breakdown", Run: ExperimentFig15},
		{ID: "fig16", Title: "Query 3 hash join: plans and breakdown", Run: ExperimentFig16},
		{ID: "fig17", Title: "Query 3 merge join: plans and breakdown", Run: ExperimentFig17},
		{ID: "table3", Title: "Overall improvement per join method", Run: ExperimentTable3, Slow: true},
		{ID: "table4", Title: "CPI: original vs buffered plans", Run: ExperimentTable4, Slow: true},
		{ID: "table5", Title: "TPC-H queries: original vs refined", Run: ExperimentTable5, Slow: true},
		{ID: "ext1", Title: "Extension: instruction prefetching vs buffering", Run: ExperimentExtPrefetch},
		{ID: "ext2", Title: "Extension: code layout vs buffering", Run: ExperimentExtLayout},
		{ID: "ext3", Title: "Extension: block-oriented processing vs buffering", Run: ExperimentExt3},
		{ID: "push", Title: "Push-fused pipelines vs buffering and vectorization", Run: ExperimentPush},
		{ID: "par", Title: "Parallel partitioned scans: equivalence and speedup", Run: ExperimentPar},
		{ID: "storage", Title: "Persistent tier: in-memory vs paged scans, eviction policies", Run: ExperimentStorage},
		{ID: "reuse", Title: "Semantic reuse cache: cold vs warm vs result-replay ladder", Run: ExperimentReuse},
	}
}

// FindExperiment resolves an experiment by ID.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
