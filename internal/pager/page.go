package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Slotted-page layout (all integers little-endian):
//
//	off  0  checksum  uint32  CRC-32C over bytes [4, pageSize)
//	off  4  pageLSN   uint64  LSN of the last WAL record applied
//	off 12  slotCount uint16  number of live slots
//	off 14  freeOff   uint16  start of the free gap (first byte past the
//	                          last tuple payload)
//	off 16  tuple payloads, growing up
//	...     free gap
//	end     slot directory, growing down from pageSize: one 4-byte entry
//	        per slot — payload offset uint16, payload length uint16 — with
//	        slot i at pageSize-4*(i+1)
//
// Tuples are never deleted or updated in place (the engine's DML surface
// is INSERT), so compaction is unnecessary and a page is full exactly when
// the gap between freeOff and the slot directory cannot fit one more
// payload plus its directory entry.
const (
	pageHeaderSize = 16
	slotSize       = 4

	// DefaultPageSize is the page size new stores are created with.
	DefaultPageSize = 8192
	// MinPageSize and MaxPageSize bound configurable page sizes; the slot
	// directory addresses payloads with uint16 offsets, capping pages at
	// 64 KiB, and anything under 512 B cannot hold a useful tuple.
	MinPageSize = 512
	MaxPageSize = 32768
)

// castagnoli is the CRC-32C table (same polynomial iSCSI and ext4 use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// page wraps one pageSize-byte buffer with the slotted accessors. It holds
// no state of its own — all state is in the buffer — so a page value is
// just a typed view, cheap to construct per access.
type page struct {
	b []byte
}

// initPage formats an empty page in place.
func initPage(b []byte) page {
	for i := range b {
		b[i] = 0
	}
	p := page{b}
	p.setFreeOff(pageHeaderSize)
	return p
}

func (p page) lsn() uint64        { return binary.LittleEndian.Uint64(p.b[4:]) }
func (p page) setLSN(lsn uint64)  { binary.LittleEndian.PutUint64(p.b[4:], lsn) }
func (p page) slotCount() int     { return int(binary.LittleEndian.Uint16(p.b[12:])) }
func (p page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p.b[12:], uint16(n)) }
func (p page) freeOff() int       { return int(binary.LittleEndian.Uint16(p.b[14:])) }
func (p page) setFreeOff(n int)   { binary.LittleEndian.PutUint16(p.b[14:], uint16(n)) }

// slot returns the payload offset and length of slot i (not bounds-checked
// against slotCount; callers validate first).
func (p page) slot(i int) (off, length int) {
	base := len(p.b) - slotSize*(i+1)
	return int(binary.LittleEndian.Uint16(p.b[base:])), int(binary.LittleEndian.Uint16(p.b[base+2:]))
}

// freeSpace returns the bytes available for one more payload + slot entry.
func (p page) freeSpace() int {
	return len(p.b) - slotSize*p.slotCount() - p.freeOff() - slotSize
}

// maxTupleBytes is the largest payload a freshly formatted page accepts.
func maxTupleBytes(pageSize int) int {
	return pageSize - pageHeaderSize - slotSize
}

// appendTuple places payload into the next slot, returning the slot index,
// or ok=false when the page is full.
func (p page) appendTuple(payload []byte) (slot int, ok bool) {
	if len(payload) > p.freeSpace() {
		return 0, false
	}
	slot = p.slotCount()
	off := p.freeOff()
	copy(p.b[off:], payload)
	base := len(p.b) - slotSize*(slot+1)
	binary.LittleEndian.PutUint16(p.b[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.b[base+2:], uint16(len(payload)))
	p.setFreeOff(off + len(payload))
	p.setSlotCount(slot + 1)
	return slot, true
}

// tuple returns the payload bytes of slot i, validating the directory
// entry against the page bounds — a corrupt entry errors instead of
// slicing out of range.
func (p page) tuple(i int) ([]byte, error) {
	if i < 0 || i >= p.slotCount() {
		return nil, fmt.Errorf("pager: %w: slot %d of %d", ErrCorrupt, i, p.slotCount())
	}
	off, length := p.slot(i)
	if off < pageHeaderSize || off+length > len(p.b)-slotSize*p.slotCount() {
		return nil, fmt.Errorf("pager: %w: slot %d spans [%d,%d) outside payload area", ErrCorrupt, i, off, off+length)
	}
	return p.b[off : off+length], nil
}

// validate structurally checks a page read from disk before any slot is
// trusted: the declared slot count and free offset must fit the page. The
// checksum is verified separately (seal/checkSeal) so validate can also run
// on in-construction pages.
func (p page) validate() error {
	if len(p.b) < pageHeaderSize+slotSize {
		return fmt.Errorf("pager: %w: page of %d bytes", ErrCorrupt, len(p.b))
	}
	n := p.slotCount()
	if slotSize*n > len(p.b)-pageHeaderSize {
		return fmt.Errorf("pager: %w: %d slots exceed %d-byte page", ErrCorrupt, n, len(p.b))
	}
	if off := p.freeOff(); off < pageHeaderSize || off > len(p.b)-slotSize*n {
		return fmt.Errorf("pager: %w: free offset %d out of range", ErrCorrupt, off)
	}
	return nil
}

// seal stamps the page checksum; call immediately before writing to disk.
func (p page) seal() {
	binary.LittleEndian.PutUint32(p.b[0:], crc32.Checksum(p.b[4:], castagnoli))
}

// checkSeal verifies the checksum of a page read from disk. A mismatch is
// a torn or bit-rotted page.
func (p page) checkSeal() error {
	want := binary.LittleEndian.Uint32(p.b[0:])
	if got := crc32.Checksum(p.b[4:], castagnoli); got != want {
		return fmt.Errorf("pager: %w: page checksum %08x != %08x", ErrCorrupt, got, want)
	}
	return nil
}
