package pager

import "fmt"

// EvictionPolicy decides which resident page the buffer pool drops when a
// miss needs a frame. The pool calls Admit when a page becomes resident,
// Touch on every hit, Remove when a page leaves residency, and Victim to
// choose the next page to drop. Keys are opaque handles the pool composes
// from (file ordinal, page id); a policy never interprets them.
//
// Policies are driven under the pool mutex and need no locking of their
// own. Victim receives an evictable predicate because pinned pages — ones a
// scan currently holds — must be skipped, and only the pool knows pin
// counts.
type EvictionPolicy interface {
	// Name identifies the policy ("lru", "gdsf") in options and metrics.
	Name() string
	// Admit records a page becoming resident.
	Admit(key uint64)
	// Touch records a hit on a resident page.
	Touch(key uint64)
	// Remove records a page leaving residency (evicted or dropped).
	Remove(key uint64)
	// Victim returns the page to evict next among those for which
	// evictable returns true, or ok=false when every resident page is
	// pinned.
	Victim(evictable func(uint64) bool) (key uint64, ok bool)
}

// NewPolicy constructs a policy by name; "" selects LRU. It is the single
// switch the -eviction flag and Options.Eviction resolve through.
func NewPolicy(name string) (EvictionPolicy, error) {
	switch name {
	case "", "lru":
		return newLRUPolicy(), nil
	case "gdsf":
		return newGDSFPolicy(), nil
	}
	return nil, fmt.Errorf("pager: unknown eviction policy %q (lru or gdsf)", name)
}

// lruPolicy evicts the least recently used page: an intrusive doubly-linked
// list from most- to least-recent, with O(1) admit/touch/remove and a
// victim walk that skips pinned entries.
type lruPolicy struct {
	nodes map[uint64]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // least recent
}

type lruNode struct {
	key        uint64
	prev, next *lruNode
}

func newLRUPolicy() *lruPolicy {
	return &lruPolicy{nodes: make(map[uint64]*lruNode)}
}

// Name implements EvictionPolicy.
func (p *lruPolicy) Name() string { return "lru" }

// Admit implements EvictionPolicy.
func (p *lruPolicy) Admit(key uint64) {
	n := &lruNode{key: key}
	p.nodes[key] = n
	p.pushFront(n)
}

// Touch implements EvictionPolicy.
func (p *lruPolicy) Touch(key uint64) {
	n, ok := p.nodes[key]
	if !ok || n == p.head {
		return
	}
	p.unlink(n)
	p.pushFront(n)
}

// Remove implements EvictionPolicy.
func (p *lruPolicy) Remove(key uint64) {
	if n, ok := p.nodes[key]; ok {
		p.unlink(n)
		delete(p.nodes, key)
	}
}

// Victim implements EvictionPolicy.
func (p *lruPolicy) Victim(evictable func(uint64) bool) (uint64, bool) {
	for n := p.tail; n != nil; n = n.prev {
		if evictable(n.key) {
			return n.key, true
		}
	}
	return 0, false
}

func (p *lruPolicy) pushFront(n *lruNode) {
	n.prev, n.next = nil, p.head
	if p.head != nil {
		p.head.prev = n
	}
	p.head = n
	if p.tail == nil {
		p.tail = n
	}
}

func (p *lruPolicy) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		p.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		p.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// gdsfPolicy is Greedy-Dual-Size-Frequency eviction (Cherkasova 1998),
// the frequency-aware policy the buffer-management survey in PAPERS.md
// recommends over plain recency for skewed access. Every resident page
// carries a score H + frequency·cost/size; pages here are uniform in size
// and cost, so the score degenerates to H + frequency — but H, the
// "inflation" value raised to each victim's score at eviction, is what
// gives recently admitted pages a chance against long-resident frequent
// ones, which plain LFU lacks. A hot page touched often accumulates score
// faster than the inflation rises and stays resident even when a large
// sequential scan floods the pool — the scan's pages are touched once and
// evict each other instead.
type gdsfPolicy struct {
	scores map[uint64]*gdsfEntry
	h      float64
}

type gdsfEntry struct {
	freq  uint64
	score float64
}

func newGDSFPolicy() *gdsfPolicy {
	return &gdsfPolicy{scores: make(map[uint64]*gdsfEntry)}
}

// Name implements EvictionPolicy.
func (p *gdsfPolicy) Name() string { return "gdsf" }

// Admit implements EvictionPolicy.
func (p *gdsfPolicy) Admit(key uint64) {
	p.scores[key] = &gdsfEntry{freq: 1, score: p.h + 1}
}

// Touch implements EvictionPolicy.
func (p *gdsfPolicy) Touch(key uint64) {
	if e, ok := p.scores[key]; ok {
		e.freq++
		e.score = p.h + float64(e.freq)
	}
}

// Remove implements EvictionPolicy.
func (p *gdsfPolicy) Remove(key uint64) {
	delete(p.scores, key)
}

// Victim implements EvictionPolicy. The linear minimum scan is O(resident
// pages); pools are at most a few thousand frames, where map iteration is
// cheaper than maintaining a priority queue against Touch-heavy workloads.
func (p *gdsfPolicy) Victim(evictable func(uint64) bool) (uint64, bool) {
	var (
		bestKey   uint64
		bestScore float64
		found     bool
	)
	for k, e := range p.scores {
		if !evictable(k) {
			continue
		}
		if !found || e.score < bestScore {
			bestKey, bestScore, found = k, e.score, true
		}
	}
	if found {
		// Inflate: future admissions start at the evicted score, so
		// residency earned long ago decays relative to fresh activity.
		p.h = bestScore
	}
	return bestKey, found
}
