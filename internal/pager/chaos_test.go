package pager

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"bufferdb/internal/exec"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// chaosCheck snapshots goroutine count and returns a verifier the tests
// defer: after every failure class the pager must leak neither goroutines
// nor tracked memory.
func chaosCheck(t *testing.T, mem *exec.MemTracker) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		if got := mem.Bytes(); got != 0 {
			t.Errorf("tracked bytes after close: %d", got)
		}
		// The pager spawns no goroutines; allow the runtime a moment to
		// retire unrelated ones before declaring a leak.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if after := runtime.NumGoroutine(); after > before {
			t.Errorf("goroutines grew %d -> %d", before, after)
		}
	}
}

// wantInjected asserts err is the typed injected-fault error.
func wantInjected(t *testing.T, err error, site string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: fault did not surface", site)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("%s: error not typed as injected: %v", site, err)
	}
}

// TestChaosPagerRead injects a read fault on a pool miss: the scan fails
// with a typed error, the store keeps serving afterwards, and nothing
// leaks.
func TestChaosPagerRead(t *testing.T) {
	dir := t.TempDir()
	// Seed durable data without faults.
	s, err := Open(dir, smallStoreOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.BulkLoad("t", testRows(0, 120)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	mem := exec.NewMemTracker("chaos", 0, nil)
	defer chaosCheck(t, mem)()
	opts := smallStoreOpts(mem)
	opts.Fault = faultinject.New(1, faultinject.Fault{Match: SiteRead, Kind: faultinject.KindError})
	s, err = Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	it, err := tbl.Iterate(storage.Span{Start: 0, End: 120})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = it.Next()
	wantInjected(t, err, SiteRead)
	it.Close()
	// The fault fired exactly once; the store must still serve everything.
	verifyTable(t, s, "t", 120)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosPagerWrite injects a write fault on the first dirty writeback.
// The insert's commit is already durable, so the store wedges — refusing
// further writes — and a reopen replays the log and recovers every row.
func TestChaosPagerWrite(t *testing.T) {
	dir := t.TempDir()
	mem := exec.NewMemTracker("chaos", 0, nil)
	defer chaosCheck(t, mem)()
	opts := smallStoreOpts(mem)
	opts.Fault = faultinject.New(1, faultinject.Fault{Match: SiteWrite, Kind: faultinject.KindError})
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	// A 60-row batch spans ~7 pages; applying it through 4 frames forces a
	// dirty eviction writeback mid-apply, where the fault fires.
	err = s.Insert("t", testRows(0, 60))
	wantInjected(t, err, SiteWrite)

	// Wedged: every subsequent write refuses with the same typed error.
	if err := s.Insert("t", testRows(60, 1)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("wedged store accepted an insert: %v", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("wedged store accepted a checkpoint: %v", err)
	}
	// Reads refuse too: the apply stopped partway, so serving pages would
	// expose a torn batch — some rows applied, others missing — despite the
	// documented batch atomicity.
	tbl, err := s.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.FetchRow(0); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("wedged store served FetchRow: %v", err)
	}
	if _, err := tbl.Iterate(storage.Span{Start: 0, End: 60}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("wedged store served Iterate: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The commit was durable before the apply failed: recovery must
	// reconstruct the full batch.
	s2, err := Open(dir, smallStoreOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	verifyTable(t, s2, "t", 60)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosPagerFsync injects a heap-fsync fault into a checkpoint: the
// checkpoint fails typed but nothing is lost, and the retry succeeds.
func TestChaosPagerFsync(t *testing.T) {
	dir := t.TempDir()
	mem := exec.NewMemTracker("chaos", 0, nil)
	defer chaosCheck(t, mem)()
	opts := smallStoreOpts(mem)
	// After:1 skips the fsync inside Open's recovery checkpoint... which a
	// fresh store does not perform per-table (no tables yet), so the first
	// table fsync is the explicit checkpoint below. Fire immediately.
	opts.Fault = faultinject.New(1, faultinject.Fault{Match: SiteFsync, Kind: faultinject.KindError})
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("t", testRows(0, 10)); err != nil {
		t.Fatal(err)
	}
	err = s.Checkpoint()
	wantInjected(t, err, SiteFsync)
	// Not wedged — the checkpoint never reset the log, so retrying is safe.
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint retry: %v", err)
	}
	verifyTable(t, s, "t", 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, smallStoreOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	verifyTable(t, s2, "t", 10)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosPagerWALAppend and TestChaosPagerWALFsync inject faults at the
// commit point. The batch must vanish without a trace — the store is not
// wedged (nothing was durable), the next insert succeeds, and a reopen
// sees only the successful batches.
func TestChaosPagerWALAppend(t *testing.T) { testChaosWALCommit(t, SiteWALAppend) }
func TestChaosPagerWALFsync(t *testing.T)  { testChaosWALCommit(t, SiteWALFsync) }

func testChaosWALCommit(t *testing.T, site string) {
	dir := t.TempDir()
	mem := exec.NewMemTracker("chaos", 0, nil)
	defer chaosCheck(t, mem)()
	opts := smallStoreOpts(mem)
	// Open's recovery checkpoint flushes the log once (the checkpoint
	// record); After:1 lets it pass and fails the first insert's commit.
	opts.Fault = faultinject.New(1, faultinject.Fault{Match: site, Kind: faultinject.KindError, After: 1})
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	err = s.Insert("t", testRows(0, 25))
	wantInjected(t, err, site)
	verifyTable(t, s, "t", 0) // the failed batch left nothing behind

	// Not wedged: the commit never became durable, so the store state still
	// matches the (empty) log and the next write goes through.
	if err := s.Insert("t", testRows(0, 25)); err != nil {
		t.Fatalf("insert after failed commit: %v", err)
	}
	verifyTable(t, s, "t", 25)
	if err := s.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, smallStoreOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	verifyTable(t, s2, "t", 25)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosPagerBulkLoadWrite injects a write fault mid bulk load: the
// load fails typed and the table stays empty — no orphan pages.
func TestChaosPagerBulkLoadWrite(t *testing.T) {
	dir := t.TempDir()
	mem := exec.NewMemTracker("chaos", 0, nil)
	defer chaosCheck(t, mem)()
	opts := smallStoreOpts(mem)
	opts.Fault = faultinject.New(1, faultinject.Fault{Match: SiteWrite, Kind: faultinject.KindError, After: 2})
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	err = s.BulkLoad("t", testRows(0, 120))
	wantInjected(t, err, SiteWrite)
	verifyTable(t, s, "t", 0)
	if err := s.BulkLoad("t", testRows(0, 50)); err != nil {
		t.Fatalf("bulk load retry: %v", err)
	}
	verifyTable(t, s, "t", 50)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, smallStoreOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	verifyTable(t, s2, "t", 50)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
