package pager

import (
	"fmt"
	"os"
)

// heapFile is one table's page file: pages addressed by id, page i at byte
// offset i*pageSize. Pages are only ever appended (the DML surface is
// INSERT); existing pages are rewritten in place by dirty writebacks and
// checkpoints. File I/O goes through the owning store's fault points.
type heapFile struct {
	table    string
	path     string
	f        *os.File
	pageSize int
	// ord is the file's ordinal in its store, composing the policy keys.
	ord uint32
	// numPages is the page count including in-pool pages not yet flushed
	// past the end of the file.
	numPages uint32
	// pageStarts[i] is the rid of page i's first row; pageStarts[numPages]
	// is the table cardinality. Guarded by the store mutex.
	pageStarts []int
}

// openHeapFile opens (or creates) a table's page file.
func openHeapFile(path, table string, pageSize int, ord uint32) (*heapFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open heap %s: %w", table, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat heap %s: %w", table, err)
	}
	if st.Size()%int64(pageSize) != 0 {
		// A torn append (crash while growing the file) leaves a partial
		// trailing page that was never referenced by a flushed catalog or a
		// replayed WAL record with a full image; drop it.
		if err := f.Truncate(st.Size() - st.Size()%int64(pageSize)); err != nil {
			f.Close()
			return nil, fmt.Errorf("pager: trim torn page of %s: %w", table, err)
		}
		st, err = f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	return &heapFile{
		table:    table,
		path:     path,
		f:        f,
		pageSize: pageSize,
		ord:      ord,
		numPages: uint32(st.Size() / int64(pageSize)),
	}, nil
}

// readPage reads page id into buf (len == pageSize) and verifies its
// checksum and structure.
func (h *heapFile) readPage(id uint32, buf []byte, fault faultPoint) error {
	if err := fault.fire(); err != nil {
		return err
	}
	if _, err := h.f.ReadAt(buf, int64(id)*int64(h.pageSize)); err != nil {
		return fmt.Errorf("pager: read %s page %d: %w", h.table, id, err)
	}
	p := page{buf}
	if err := p.checkSeal(); err != nil {
		// An all-zero page is a hole, not corruption: evicting a dirty page
		// N extends the file past earlier pages still only in the pool, and
		// a crash then leaves pages < N zero-filled. Recovery replays their
		// rows from the WAL, so serve the hole as a fresh empty page.
		if allZero(buf) {
			initPage(buf)
			return nil
		}
		return fmt.Errorf("pager: %s page %d: %w", h.table, id, err)
	}
	if err := p.validate(); err != nil {
		return fmt.Errorf("pager: %s page %d: %w", h.table, id, err)
	}
	return nil
}

// writePage seals buf and writes it at page id.
func (h *heapFile) writePage(id uint32, buf []byte, fault faultPoint) error {
	if err := fault.fire(); err != nil {
		return err
	}
	page{buf}.seal()
	if _, err := h.f.WriteAt(buf, int64(id)*int64(h.pageSize)); err != nil {
		return fmt.Errorf("pager: write %s page %d: %w", h.table, id, err)
	}
	return nil
}

// sync fsyncs the file.
func (h *heapFile) sync(fault faultPoint) error {
	if err := fault.fire(); err != nil {
		return err
	}
	if err := h.f.Sync(); err != nil {
		return fmt.Errorf("pager: fsync %s: %w", h.table, err)
	}
	return nil
}

// loadPageStarts rebuilds the rid index by reading every page header. Only
// the 16-byte header is read per page, so opening a large table costs one
// small pread per page, not a full scan; checksums are verified lazily on
// first full fetch through the pool.
func (h *heapFile) loadPageStarts() error {
	h.pageStarts = make([]int, h.numPages+1)
	hdr := make([]byte, pageHeaderSize)
	rid := 0
	for i := uint32(0); i < h.numPages; i++ {
		h.pageStarts[i] = rid
		if _, err := h.f.ReadAt(hdr, int64(i)*int64(h.pageSize)); err != nil {
			return fmt.Errorf("pager: read %s page %d header: %w", h.table, i, err)
		}
		n := int(uint16(hdr[12]) | uint16(hdr[13])<<8)
		if slotSize*n > h.pageSize-pageHeaderSize {
			return fmt.Errorf("pager: %w: %s page %d declares %d slots", ErrCorrupt, h.table, i, n)
		}
		rid += n
	}
	h.pageStarts[h.numPages] = rid
	return nil
}

// numRows returns the table cardinality per the rid index.
func (h *heapFile) numRows() int {
	if len(h.pageStarts) == 0 {
		return 0
	}
	return h.pageStarts[len(h.pageStarts)-1]
}

// pageOf locates the page holding rid by binary search over pageStarts,
// returning the page id and the slot within it.
func (h *heapFile) pageOf(rid int) (uint32, int, error) {
	n := len(h.pageStarts) - 1
	if n < 0 || rid < 0 || rid >= h.pageStarts[n] {
		return 0, 0, fmt.Errorf("pager: %s: row %d out of range [0,%d)", h.table, rid, h.numRows())
	}
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if h.pageStarts[mid] <= rid {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return uint32(lo), rid - h.pageStarts[lo], nil
}

// close closes the file handle.
func (h *heapFile) close() error { return h.f.Close() }

// allZero reports whether b contains only zero bytes.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}
