package pager

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bufferdb/internal/exec"
	"bufferdb/internal/obsv"
)

// ErrPoolExhausted is the sentinel wrapped when a page fetch finds every
// frame pinned — more concurrent scans than frames. Raising PoolBytes (or
// lowering admission concurrency) resolves it; the error is typed so
// callers can tell configuration pressure from corruption.
var ErrPoolExhausted = errors.New("buffer pool exhausted (all frames pinned)")

// Process-wide pager counters, next to the engine's simulated-cache
// metrics — the paper buffers tuples to keep instructions cache-resident,
// this tier buffers pages to keep data resident, and both report through
// the same registry.
func metricHits() *obsv.Counter      { return obsv.Default.Counter("bufferdb_pager_hits_total") }
func metricMisses() *obsv.Counter    { return obsv.Default.Counter("bufferdb_pager_misses_total") }
func metricEvictions() *obsv.Counter { return obsv.Default.Counter("bufferdb_pager_evictions_total") }
func metricWritebacks() *obsv.Counter {
	return obsv.Default.Counter("bufferdb_pager_dirty_writebacks_total")
}
func metricCheckpoints() *obsv.Counter {
	return obsv.Default.Counter("bufferdb_pager_checkpoints_total")
}

// frame is one resident page. The pool mutex guards pins, dirty and
// residency; mu guards the page bytes. Lock order is pool.mu → frame.mu;
// readers must release mu before calling Unpin (which takes pool.mu).
//
// mu doubles as the I/O latch: a loader publishes the frame with mu held
// exclusively, fills it from disk without the pool mutex, and releases mu
// only when data (or loadErr) is final — so concurrent fetchers of the same
// page block on the frame, not on the pool.
type frame struct {
	file *heapFile
	id   uint32
	key  uint64

	mu      sync.RWMutex
	data    []byte
	loadErr error // set under mu by a failed loader; frame is stillborn

	pins  int
	dirty bool
}

// Pool is the buffer pool: a bounded set of page frames shared by every
// table of a store, with the eviction policy deciding residency. Resident
// bytes are charged against the attached MemTracker, so when the tracker
// descends from the database's process tracker, page cache and query
// execution compete under one memory budget.
type Pool struct {
	pageSize  int
	capFrames int
	mem       *exec.MemTracker

	readFault  faultPoint
	writeFault faultPoint

	mu     sync.Mutex
	frames map[uint64]*frame
	policy EvictionPolicy
	closed bool

	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	writebacks atomic.Uint64
}

// PoolStats is a snapshot of one pool's traffic counters.
type PoolStats struct {
	Hits, Misses, Evictions, Writebacks uint64
	ResidentPages                       int
}

// newPool sizes a pool at capFrames frames of pageSize bytes.
func newPool(pageSize, capFrames int, policy EvictionPolicy, mem *exec.MemTracker, read, write faultPoint) *Pool {
	return &Pool{
		pageSize:   pageSize,
		capFrames:  capFrames,
		mem:        mem,
		readFault:  read,
		writeFault: write,
		frames:     make(map[uint64]*frame),
		policy:     policy,
	}
}

// frameKey composes the policy/residency key for a page.
func frameKey(h *heapFile, id uint32) uint64 {
	return uint64(h.ord)<<32 | uint64(id)
}

// Stats returns the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	resident := len(p.frames)
	p.mu.Unlock()
	return PoolStats{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		Evictions:     p.evictions.Load(),
		Writebacks:    p.writebacks.Load(),
		ResidentPages: resident,
	}
}

// ResidentBytes reports the bytes currently held in frames (== what is
// charged against the memory tracker).
func (p *Pool) ResidentBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(len(p.frames)) * int64(p.pageSize)
}

// fetch pins the page, reading it from disk on a miss (possibly evicting a
// victim first). The caller must Unpin exactly once. Disk I/O — the miss
// read and any dirty-victim writeback — happens outside the pool mutex, so
// concurrent scans overlap their I/O and hits on resident pages never wait
// behind another scan's miss.
func (p *Pool) fetch(h *heapFile, id uint32) (*frame, error) {
	key := frameKey(h, id)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("pager: pool is closed")
	}
	if fr, ok := p.frames[key]; ok {
		fr.pins++
		p.policy.Touch(key)
		p.mu.Unlock()
		p.hits.Add(1)
		metricHits().Inc()
		return p.settleLoad(fr)
	}
	p.misses.Add(1)
	metricMisses().Inc()
	buf, err := p.allocFrameLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	// allocFrameLocked may have released the mutex for a writeback; the pool
	// may have closed, or a concurrent fetch may have loaded the page.
	if p.closed {
		p.releaseBufLocked(buf)
		p.mu.Unlock()
		return nil, fmt.Errorf("pager: pool is closed")
	}
	if fr, ok := p.frames[key]; ok {
		fr.pins++
		p.policy.Touch(key)
		p.releaseBufLocked(buf)
		p.mu.Unlock()
		return p.settleLoad(fr)
	}
	fr := &frame{file: h, id: id, key: key, data: buf, pins: 1}
	fr.mu.Lock() // I/O latch: held until the read below settles
	p.frames[key] = fr
	p.policy.Admit(key)
	p.mu.Unlock()

	err = h.readPage(id, buf, p.readFault)
	fr.loadErr = err
	fr.mu.Unlock()
	if err != nil {
		// Unpublish the stillborn frame and return its memory charge.
		// Concurrent fetchers that pinned it meanwhile observe loadErr and
		// unpin their orphan (unpin never consults the residency map). The
		// map is re-checked because an eviction may already have recycled
		// this frame's buffer — and with it, its charge — into another.
		p.mu.Lock()
		if cur, ok := p.frames[key]; ok && cur == fr {
			p.policy.Remove(key)
			delete(p.frames, key)
			p.releaseBufLocked(buf)
		}
		p.mu.Unlock()
		return nil, err
	}
	return fr, nil
}

// settleLoad waits out any in-flight load of a frame the caller just
// pinned: acquiring the read latch blocks until the loader releases it. On
// a failed load the pin is released and the loader's error returned.
func (p *Pool) settleLoad(fr *frame) (*frame, error) {
	fr.mu.RLock()
	err := fr.loadErr
	fr.mu.RUnlock()
	if err != nil {
		p.unpin(fr, false)
		return nil, err
	}
	return fr, nil
}

// newPage pins a freshly formatted page for h at page id, which must be
// h.numPages at the time of the call (the store serializes appenders).
func (p *Pool) newPage(h *heapFile, id uint32) (*frame, error) {
	key := frameKey(h, id)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("pager: pool is closed")
	}
	if _, ok := p.frames[key]; ok {
		return nil, fmt.Errorf("pager: page %s/%d already resident", h.table, id)
	}
	buf, err := p.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	// allocFrameLocked may have released the mutex for a writeback. The
	// store serializes appenders, so no one else can have created this page,
	// but the pool may have closed under us.
	if p.closed {
		p.releaseBufLocked(buf)
		return nil, fmt.Errorf("pager: pool is closed")
	}
	initPage(buf)
	fr := &frame{file: h, id: id, key: key, data: buf, pins: 1, dirty: true}
	p.frames[key] = fr
	p.policy.Admit(key)
	return fr, nil
}

// unpin releases one pin; dirty marks the page modified since its last
// write to disk.
func (p *Pool) unpin(fr *frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr.pins--
	if dirty {
		fr.dirty = true
	}
}

// allocFrameLocked returns a pageSize buffer for a new frame: a fresh
// charged allocation below capacity, the victim's recycled buffer at
// capacity. Dirty victims are written back first — WITHOUT the pool mutex,
// which this releases and re-acquires around the I/O (the victim stays
// pinned and resident meanwhile, so no concurrent fetch can evict it or
// miss its dirty bytes). A failed writeback aborts the allocation with the
// victim still resident and intact. Callers must re-validate any map state
// examined before the call.
func (p *Pool) allocFrameLocked() ([]byte, error) {
	for {
		if p.closed {
			return nil, fmt.Errorf("pager: pool is closed")
		}
		if len(p.frames) < p.capFrames {
			if err := p.mem.Grow(int64(p.pageSize)); err != nil {
				return nil, err
			}
			return make([]byte, p.pageSize), nil
		}
		key, ok := p.policy.Victim(func(k uint64) bool {
			fr, ok := p.frames[k]
			return ok && fr.pins == 0
		})
		if !ok {
			return nil, fmt.Errorf("pager: %w: %d frames", ErrPoolExhausted, p.capFrames)
		}
		victim := p.frames[key]
		if victim.dirty {
			victim.pins++
			victim.dirty = false // a write during our writeback re-marks it
			p.mu.Unlock()
			err := p.writeback(victim)
			p.mu.Lock()
			victim.pins--
			if err != nil {
				victim.dirty = true
				return nil, err
			}
			if victim.pins > 0 || victim.dirty {
				// Re-pinned or re-dirtied while we wrote: no longer a valid
				// victim, pick another.
				continue
			}
		}
		p.policy.Remove(key)
		delete(p.frames, key)
		p.evictions.Add(1)
		metricEvictions().Inc()
		// The victim's buffer carries its memory charge to the new frame.
		return victim.data, nil
	}
}

// releaseBufLocked returns a buffer whose frame never materialized (failed
// read) and its memory charge.
func (p *Pool) releaseBufLocked(buf []byte) {
	_ = buf
	p.mem.Shrink(int64(p.pageSize))
}

// writeback writes one frame to its file. The frame lock is taken
// exclusively because sealing stamps the checksum into the header. It does
// NOT clear the dirty flag — that belongs to the pool mutex, which callers
// manage (eviction clears it optimistically before the write; flushFile
// clears it after).
func (p *Pool) writeback(fr *frame) error {
	fr.mu.Lock()
	err := fr.file.writePage(fr.id, fr.data, p.writeFault)
	fr.mu.Unlock()
	if err != nil {
		return err
	}
	p.writebacks.Add(1)
	metricWritebacks().Inc()
	return nil
}

// flushFile writes back every dirty resident page of h, in page order for
// deterministic I/O patterns.
func (p *Pool) flushFile(h *heapFile) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var dirty []*frame
	for _, fr := range p.frames {
		if fr.file == h && fr.dirty {
			dirty = append(dirty, fr)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].id < dirty[j].id })
	for _, fr := range dirty {
		if err := p.writeback(fr); err != nil {
			return err
		}
		fr.dirty = false
	}
	return nil
}

// dropFile evicts every resident page of h without writing anything —
// used when abandoning a failed bulk load.
func (p *Pool) dropFile(h *heapFile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, fr := range p.frames {
		if fr.file == h {
			p.policy.Remove(key)
			delete(p.frames, key)
			p.mem.Shrink(int64(p.pageSize))
		}
	}
}

// close releases every frame and its memory charge. Dirty pages are NOT
// written — Close-with-durability is the store's checkpoint; close alone
// models a crash (which is exactly what the recovery tests exploit).
func (p *Pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	n := len(p.frames)
	for key := range p.frames {
		p.policy.Remove(key)
		delete(p.frames, key)
	}
	p.mem.Shrink(int64(n) * int64(p.pageSize))
}
