package pager

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bufferdb/internal/exec"
	"bufferdb/internal/storage"
)

// testSchema is the two-column relation the pager tests insert into.
func testSchema() storage.Schema {
	return storage.Schema{
		{Table: "t", Name: "id", Type: storage.TypeInt64},
		{Table: "t", Name: "payload", Type: storage.TypeString},
	}
}

// testRow builds the canonical row for rid i: the id column is i, so a
// recovered table can be verified positionally.
func testRow(i int) storage.Row {
	return storage.Row{
		storage.NewInt(int64(i)),
		storage.NewString(fmt.Sprintf("payload-%06d-abcdefghijklmnopqrstuvwxyz", i)),
	}
}

func testRows(start, n int) []storage.Row {
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = testRow(start + i)
	}
	return rows
}

// smallStoreOpts keeps pages and the pool tiny so a few dozen rows span
// many pages and trigger eviction — the interesting regimes at test scale.
func smallStoreOpts(mem *exec.MemTracker) Options {
	return Options{PageSize: MinPageSize, PoolBytes: 4 * MinPageSize, Mem: mem}
}

// verifyTable asserts the table holds exactly rows [0, want) in rid order,
// via both the iterator and point fetches.
func verifyTable(t *testing.T, s *Store, name string, want int) {
	t.Helper()
	tbl, err := s.Table(name)
	if err != nil {
		t.Fatalf("Table(%s): %v", name, err)
	}
	if got := tbl.NumRows(); got != want {
		t.Fatalf("NumRows = %d, want %d", got, want)
	}
	it, err := tbl.Iterate(storage.Span{Start: 0, End: want})
	if err != nil {
		t.Fatalf("Iterate: %v", err)
	}
	defer it.Close()
	for i := 0; i < want; i++ {
		rid, row, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("Next at %d: ok=%v err=%v", i, ok, err)
		}
		if rid != i {
			t.Fatalf("rid = %d, want %d", rid, i)
		}
		if row[0].I != int64(i) {
			t.Fatalf("row %d has id %d", i, row[0].I)
		}
	}
	if _, _, ok, err := it.Next(); ok || err != nil {
		t.Fatalf("iterator past end: ok=%v err=%v", ok, err)
	}
	// Spot-check point fetches, including both ends.
	for _, rid := range []int{0, want / 2, want - 1} {
		if want == 0 {
			break
		}
		row, err := tbl.FetchRow(rid)
		if err != nil {
			t.Fatalf("FetchRow(%d): %v", rid, err)
		}
		if row[0].I != int64(rid) {
			t.Fatalf("FetchRow(%d) has id %d", rid, row[0].I)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mem := exec.NewMemTracker("test", 0, nil)
	s, err := Open(dir, smallStoreOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.BulkLoad("t", testRows(0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("t", testRows(100, 40)); err != nil {
		t.Fatal(err)
	}
	verifyTable(t, s, "t", 140)
	st := s.PoolStats()
	if st.Evictions == 0 {
		t.Errorf("expected evictions with a 4-frame pool over %d rows, got stats %+v", 140, st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := mem.Bytes(); got != 0 {
		t.Fatalf("tracked bytes after close: %d", got)
	}

	// Reopen: the clean shutdown checkpointed, so recovery has nothing to
	// replay and everything must still be there.
	s2, err := Open(dir, smallStoreOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	verifyTable(t, s2, "t", 140)
	if err := s2.Insert("t", testRows(140, 10)); err != nil {
		t.Fatal(err)
	}
	verifyTable(t, s2, "t", 150)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := mem.Bytes(); got != 0 {
		t.Fatalf("tracked bytes after second close: %d", got)
	}
}

// TestFailedInsertLeavesLogClean rejects batches whose validation fails on
// a row past the first (arity mismatch, oversized row) and asserts the
// failure stages nothing in the WAL: the next successful insert's commit
// must not sweep orphan records from the failed batch into the log, where
// recovery would replay rows the caller was told failed.
func TestFailedInsertLeavesLogClean(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, smallStoreOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("t", testRows(0, 3)); err != nil {
		t.Fatal(err)
	}
	// Row 0 is valid, row 1 oversized: the batch must fail atomically.
	big := storage.Row{storage.NewInt(99), storage.NewString(strings.Repeat("x", 2*MinPageSize))}
	if err := s.Insert("t", []storage.Row{testRow(3), big}); err == nil {
		t.Fatal("oversized row accepted")
	}
	// Row 0 is valid, row 1 has the wrong arity: same contract.
	if err := s.Insert("t", []storage.Row{testRow(3), {storage.NewInt(99)}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	// Validation failures are clean rejections, not wedges: the next batch
	// must commit, and the table must hold exactly the committed rows.
	if err := s.Insert("t", testRows(3, 2)); err != nil {
		t.Fatalf("insert after failed batches: %v", err)
	}
	verifyTable(t, s, "t", 5)
	// Crash without checkpointing: recovery replays the log. Orphan records
	// from the failed batches would resurrect rejected rows or fail the open
	// with ErrCorrupt when their planned pages collide with the last batch.
	if err := s.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, smallStoreOpts(nil))
	if err != nil {
		t.Fatalf("reopen after failed batches: %v", err)
	}
	verifyTable(t, s2, "t", 5)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadFailureLeavesTableEmpty(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, smallStoreOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	// Row 60 has the wrong arity; the pages written for rows 0..59 must not
	// survive as live data.
	rows := testRows(0, 60)
	rows = append(rows, storage.Row{storage.NewInt(60)})
	if err := s.BulkLoad("t", rows); err == nil {
		t.Fatal("bulk load with bad arity succeeded")
	}
	verifyTable(t, s, "t", 0)
	if err := s.BulkLoad("t", testRows(0, 30)); err != nil {
		t.Fatalf("reload after failed load: %v", err)
	}
	verifyTable(t, s, "t", 30)
}

// TestCrashRecoveryReplaysCommitted kills the store without a checkpoint —
// every committed batch lives only in the WAL plus whatever dirty pages the
// pool happened to evict — and asserts a reopen reconstructs all of it.
// With a 4-frame pool over ~15 pages, evictions flush pages out of order,
// so this also exercises zero-filled hole pages behind the file's high
// -water mark.
func TestCrashRecoveryReplaysCommitted(t *testing.T) {
	dir := t.TempDir()
	mem := exec.NewMemTracker("test", 0, nil)
	s, err := Open(dir, smallStoreOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	total := 0
	for batch := 0; batch < 8; batch++ {
		n := 5 + batch*3
		if err := s.Insert("t", testRows(total, n)); err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if err := s.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}
	if got := mem.Bytes(); got != 0 {
		t.Fatalf("tracked bytes after abrupt close: %d", got)
	}

	s2, err := Open(dir, smallStoreOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	verifyTable(t, s2, "t", total)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryTornWAL truncates the log at adversarial offsets —
// mid-frame, mid-batch, at batch boundaries — and asserts recovery keeps
// exactly the batches whose commit record survived, discarding the torn
// tail, never a partial batch.
func TestCrashRecoveryTornWAL(t *testing.T) {
	const batches, batchSize = 6, 7

	// Build the "crashed" image once: insert batches, then die before any
	// checkpoint. The pool is sized to hold everything so no dirty page is
	// ever evicted and the WAL is the ONLY durable copy — which is what
	// makes truncation at an arbitrary offset model a real torn tail (a
	// page can only reach the heap after its commit record was fsynced, so
	// any prefix of the log is a state a crash could actually leave).
	crashed := t.TempDir()
	opts := Options{PageSize: MinPageSize, PoolBytes: 64 * MinPageSize}
	s, err := Open(crashed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	// commitEnd[k] is the WAL size after k committed batches: truncating
	// anywhere in [commitEnd[k], commitEnd[k+1]) must recover exactly k*batchSize rows.
	commitEnd := []int64{walSize(t, crashed)}
	for b := 0; b < batches; b++ {
		if err := s.Insert("t", testRows(b*batchSize, batchSize)); err != nil {
			t.Fatal(err)
		}
		commitEnd = append(commitEnd, walSize(t, crashed))
	}
	if err := s.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}

	expectRows := func(off int64) int {
		k := 0
		for k+1 < len(commitEnd) && commitEnd[k+1] <= off {
			k++
		}
		return k * batchSize
	}

	total := commitEnd[len(commitEnd)-1]
	offsets := []int64{0, 1, commitEnd[0], total - 1, total}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		offsets = append(offsets, rng.Int63n(total+1))
	}

	for _, off := range offsets {
		off := off
		t.Run(fmt.Sprintf("truncate@%d", off), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, crashed, dir)
			if err := os.Truncate(filepath.Join(dir, walName), off); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dir, smallStoreOpts(nil))
			if err != nil {
				t.Fatalf("open after truncate at %d: %v", off, err)
			}
			verifyTable(t, s, "t", expectRows(off))
			// The reopened store must keep working: append on top of the
			// recovered prefix, crash again, recover again.
			base := expectRows(off)
			if err := s.Insert("t", testRows(base, 3)); err != nil {
				t.Fatal(err)
			}
			if err := s.CloseAbrupt(); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(dir, smallStoreOpts(nil))
			if err != nil {
				t.Fatal(err)
			}
			verifyTable(t, s2, "t", base+3)
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLSNMonotonicAcrossCheckpoint guards the restart LSN seed: after a
// checkpoint resets the log, new inserts must stamp LSNs above every page
// LSN, or idempotent replay would skip them.
func TestLSNMonotonicAcrossCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, smallStoreOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("t", testRows(0, 20)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // checkpoint + reset
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		s, err = Open(dir, smallStoreOpts(nil))
		if err != nil {
			t.Fatal(err)
		}
		base := 20 + cycle*5
		if err := s.Insert("t", testRows(base, 5)); err != nil {
			t.Fatal(err)
		}
		// Die without a checkpoint: replay must apply the new batch even
		// though the pages carry LSNs from before the last reset.
		if err := s.CloseAbrupt(); err != nil {
			t.Fatal(err)
		}
		s, err = Open(dir, smallStoreOpts(nil))
		if err != nil {
			t.Fatal(err)
		}
		verifyTable(t, s, "t", base+5)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEvictionPolicies(t *testing.T) {
	for _, policy := range []string{"lru", "gdsf"} {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			opts := smallStoreOpts(nil)
			opts.Eviction = policy
			s, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.CreateTable("t", testSchema()); err != nil {
				t.Fatal(err)
			}
			if err := s.BulkLoad("t", testRows(0, 200)); err != nil {
				t.Fatal(err)
			}
			verifyTable(t, s, "t", 200)
			if st := s.PoolStats(); st.Evictions == 0 {
				t.Errorf("%s: no evictions scanning 200 rows through 4 frames: %+v", policy, st)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
	if _, err := Open(t.TempDir(), Options{Eviction: "clock"}); err == nil {
		t.Error("unknown eviction policy accepted")
	}
}

func walSize(t *testing.T, dir string) int64 {
	t.Helper()
	st, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentScansAndInserts hammers a 4-frame pool with parallel
// scanners while a writer appends batches — the regime the pool's I/O
// latch exists for: misses, evictions and dirty writebacks all overlapping.
// Run under -race this also proves the latch protocol publishes frames
// safely; afterwards the tracker must drain to zero.
func TestConcurrentScansAndInserts(t *testing.T) {
	dir := t.TempDir()
	mem := exec.NewMemTracker("concurrent", 0, nil)
	s, err := Open(dir, smallStoreOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("t", testRows(0, 80)); err != nil {
		t.Fatal(err)
	}
	tbl, err := s.Table("t")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				it, err := tbl.Iterate(storage.Span{Start: 0, End: 80})
				if err != nil {
					errs <- err
					return
				}
				prev := -1
				for {
					rid, row, ok, err := it.Next()
					if err != nil {
						errs <- err
						it.Close()
						return
					}
					if !ok {
						break
					}
					if rid != prev+1 || row[0].I != int64(rid) {
						errs <- fmt.Errorf("scan %d: rid %d after %d, id %d", seed, rid, prev, row[0].I)
						it.Close()
						return
					}
					prev = rid
				}
				it.Close()
				if _, err := tbl.FetchRow((seed*7 + iter) % 80); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// One writer appending concurrently: written rows land past rid 80, so
	// the scanners' fixed span stays stable while evictions churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := s.Insert("t", testRows(80+i*4, 4)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	verifyTable(t, s, "t", 120)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := mem.Bytes(); got != 0 {
		t.Fatalf("tracked bytes after close: %d", got)
	}
}
