package pager

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkBufferPoolHitRatio compares the eviction policies on a skewed
// point-lookup workload (80% of fetches hit the hottest 20% of rids) at
// pool sizes of 10%, 50% and 100% of the table, reporting the achieved hit
// ratio as a custom metric. At 100% every policy converges to ~1.0; the
// interesting spread is at 10%, where GDSF's frequency term protects the
// hot set against the scan-like cold tail.
func BenchmarkBufferPoolHitRatio(b *testing.B) {
	const tableRows = 12000

	// Build the on-disk table once; every sub-benchmark reopens it with its
	// own pool configuration.
	dir := b.TempDir()
	s, err := Open(dir, Options{PageSize: MinPageSize, PoolBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.CreateTable("bench", testSchema()); err != nil {
		b.Fatal(err)
	}
	rows := testRows(0, tableRows)
	if err := s.BulkLoad("bench", rows); err != nil {
		b.Fatal(err)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}

	// Page count drives the pool sizing; recompute it from the store.
	s, err = Open(dir, Options{PageSize: MinPageSize, PoolBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := s.Table("bench")
	if err != nil {
		b.Fatal(err)
	}
	pages := (tbl.NumRows() + 8) / 9 // ~9 of these rows per 512-byte page
	s.Close()

	for _, policy := range []string{"lru", "gdsf"} {
		for _, pct := range []int{10, 50, 100} {
			b.Run(fmt.Sprintf("%s/pool=%d%%", policy, pct), func(b *testing.B) {
				poolPages := pages * pct / 100
				if poolPages < 4 {
					poolPages = 4
				}
				s, err := Open(dir, Options{
					PageSize:  MinPageSize,
					PoolBytes: int64(poolPages) * MinPageSize,
					Eviction:  policy,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				tbl, err := s.Table("bench")
				if err != nil {
					b.Fatal(err)
				}
				n := tbl.NumRows()
				hot := n / 5
				rng := rand.New(rand.NewSource(42))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var rid int
					if rng.Intn(10) < 8 {
						rid = rng.Intn(hot)
					} else {
						rid = hot + rng.Intn(n-hot)
					}
					if _, err := tbl.FetchRow(rid); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := s.PoolStats()
				if total := st.Hits + st.Misses; total > 0 {
					b.ReportMetric(float64(st.Hits)/float64(total), "hit-ratio")
				}
			})
		}
	}
}
