package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"bufferdb/internal/obsv"
)

// WAL record framing:
//
//	[4 bodyLen uint32][4 crc32c(body) uint32][body]
//	body: [8 lsn uint64][1 type][payload]
//
// Record types:
//
//	walInsert      payload: [uvarint tableNameLen][name][uvarint pageID][row bytes]
//	walCommit      payload: empty — the batch since the previous commit is durable
//	walCheckpoint  payload: empty — the first record of a freshly reset log;
//	               replay treats it as a no-op whose LSN re-seeds the LSN
//	               counter above every page LSN stamped before the checkpoint
//
// The replayer buffers insert records and applies them only when their
// commit record arrives intact; a torn record (short frame, bad CRC,
// over-declared length) ends replay and truncates the log there, which
// discards both torn bytes and any commit-less tail — exactly the
// "committed data replays, torn tail is discarded" contract.
const (
	walInsert     = 1
	walCommit     = 2
	walCheckpoint = 3

	walFrameHeader = 8
)

// walRecord is one decoded log record.
type walRecord struct {
	lsn     uint64
	kind    byte
	payload []byte
}

// wal is the write-ahead log over one file. It is not internally locked;
// the owning Store serializes writers under its mutex.
type wal struct {
	f       *os.File
	nextLSN uint64
	// maxRecord bounds the bodyLen a reader will believe before
	// allocating; sized from the page size so even a multi-page row name
	// cannot be faked into a huge allocation by corrupt length bytes.
	maxRecord uint32

	appendFault faultPoint
	syncFault   faultPoint

	// buf accumulates frames between syncs so one commit is one write.
	buf []byte

	// poisoned marks a failed flush whose rollback also failed: the file
	// may hold fully-written frames of a commit the caller was told failed,
	// indistinguishable from a real commit. The owning store wedges; the
	// next open resolves the ambiguity one way (whatever the media kept).
	poisoned bool
}

// metricWALBytes counts bytes appended to the log.
func metricWALBytes() *obsv.Counter { return obsv.Default.Counter("bufferdb_pager_wal_bytes_total") }

// openWAL opens (or creates) the log file.
func openWAL(path string, pageSize int) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open wal: %w", err)
	}
	return &wal{f: f, nextLSN: 1, maxRecord: uint32(4*pageSize + 256)}, nil
}

// append stages one record in the write buffer and returns its LSN.
func (w *wal) append(kind byte, payload []byte) uint64 {
	lsn := w.nextLSN
	w.nextLSN++
	body := make([]byte, 0, 9+len(payload))
	body = binary.LittleEndian.AppendUint64(body, lsn)
	body = append(body, kind)
	body = append(body, payload...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(body)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.Checksum(body, castagnoli))
	w.buf = append(w.buf, body...)
	return lsn
}

// flush writes the staged frames and fsyncs — the commit point. The staged
// buffer is dropped on failure as well: retrying stale frames would
// interleave LSNs out of order. Failure past the write additionally rolls
// the file back to its pre-flush length — frames of an aborted commit must
// not linger where a later replay would read them as committed ahead of
// the retry's frames.
func (w *wal) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	buf := w.buf
	w.buf = w.buf[:0]
	if err := w.appendFault.fire(); err != nil {
		return err
	}
	off, err := w.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("pager: wal tell: %w", err)
	}
	if _, err := w.f.Write(buf); err != nil {
		w.unwrite(off)
		return fmt.Errorf("pager: wal write: %w", err)
	}
	metricWALBytes().Add(uint64(len(buf)))
	if err := w.syncFault.fire(); err != nil {
		w.unwrite(off)
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.unwrite(off)
		return fmt.Errorf("pager: wal fsync: %w", err)
	}
	return nil
}

// unwrite rolls the log back to off after a failed flush and makes the
// rollback itself durable. A rollback that fails poisons the log: the
// aborted frames may survive on disk looking committed, so the owning
// store must stop writing and let the next open settle the ambiguity.
func (w *wal) unwrite(off int64) {
	if w.f.Truncate(off) != nil {
		w.poisoned = true
		return
	}
	if _, err := w.f.Seek(off, io.SeekStart); err != nil {
		w.poisoned = true
		return
	}
	if w.f.Sync() != nil {
		w.poisoned = true
	}
}

// reset truncates the log after a completed checkpoint. LSNs keep
// increasing across resets so page LSNs stay comparable.
func (w *wal) reset() error {
	w.buf = w.buf[:0]
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("pager: wal truncate: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("pager: wal seek: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("pager: wal fsync: %w", err)
	}
	return nil
}

// close closes the underlying file without flushing staged frames.
func (w *wal) close() error { return w.f.Close() }

// scan reads every intact record from the start of the log. It returns the
// records up to (not including) the first torn or corrupt frame, plus the
// byte offset where that tail begins (== file size when the log is clean).
func (w *wal) scan() (recs []walRecord, tailOff int64, err error) {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("pager: wal seek: %w", err)
	}
	data, err := io.ReadAll(w.f)
	if err != nil {
		return nil, 0, fmt.Errorf("pager: wal read: %w", err)
	}
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < walFrameHeader {
			return recs, off, nil
		}
		bodyLen := binary.LittleEndian.Uint32(rest)
		crc := binary.LittleEndian.Uint32(rest[4:])
		// Bound the declared length against both the cap and the bytes
		// actually present before believing it.
		if bodyLen < 9 || bodyLen > w.maxRecord || int(bodyLen) > len(rest)-walFrameHeader {
			return recs, off, nil
		}
		body := rest[walFrameHeader : walFrameHeader+int(bodyLen)]
		if crc32.Checksum(body, castagnoli) != crc {
			return recs, off, nil
		}
		rec := walRecord{
			lsn:     binary.LittleEndian.Uint64(body),
			kind:    body[8],
			payload: body[9:],
		}
		recs = append(recs, rec)
		off += walFrameHeader + int64(bodyLen)
	}
}

// truncateTail drops everything from tailOff on — the torn bytes scan
// stopped at — so the next append continues from a clean frame boundary.
func (w *wal) truncateTail(tailOff int64) error {
	if err := w.f.Truncate(tailOff); err != nil {
		return fmt.Errorf("pager: wal truncate tail: %w", err)
	}
	if _, err := w.f.Seek(tailOff, io.SeekStart); err != nil {
		return fmt.Errorf("pager: wal seek: %w", err)
	}
	return nil
}

// insertPayload encodes a walInsert payload.
func insertPayload(table string, pageID uint32, rowBytes []byte) []byte {
	buf := make([]byte, 0, len(table)+len(rowBytes)+10)
	buf = binary.AppendUvarint(buf, uint64(len(table)))
	buf = append(buf, table...)
	buf = binary.AppendUvarint(buf, uint64(pageID))
	buf = append(buf, rowBytes...)
	return buf
}

// decodeInsertPayload splits a walInsert payload, bounding the declared
// name length against the payload before slicing.
func decodeInsertPayload(p []byte) (table string, pageID uint32, rowBytes []byte, err error) {
	nameLen, n := binary.Uvarint(p)
	if n <= 0 || nameLen > uint64(len(p)-n) || nameLen > 1<<10 {
		return "", 0, nil, fmt.Errorf("pager: %w: bad wal insert table name", ErrCorrupt)
	}
	p = p[n:]
	table = string(p[:nameLen])
	p = p[nameLen:]
	id, n := binary.Uvarint(p)
	if n <= 0 || id > 1<<31 {
		return "", 0, nil, fmt.Errorf("pager: %w: bad wal insert page id", ErrCorrupt)
	}
	return table, uint32(id), p[n:], nil
}
