package pager

import (
	"os"
	"path/filepath"
	"testing"

	"bufferdb/internal/storage"
)

// FuzzRowCodec throws arbitrary bytes at the row decoder: corrupt input
// must error (never panic, never allocate past the declared bounds), and
// anything that decodes must survive a re-encode/re-decode round trip.
func FuzzRowCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}) // huge declared column count
	f.Add(appendRow(nil, storage.Row{
		storage.NewInt(42),
		storage.NewString("hello"),
		storage.Null,
		storage.NewFloat(3.25),
		{Kind: storage.TypeBool, I: 1},
		{Kind: storage.TypeDate, I: 9215},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		row, err := decodeRow(data)
		if err != nil {
			return
		}
		enc := appendRow(nil, row)
		row2, err := decodeRow(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded row failed: %v", err)
		}
		if len(row2) != len(row) {
			t.Fatalf("round trip changed arity %d -> %d", len(row), len(row2))
		}
		for i := range row {
			if row[i].Kind != row2[i].Kind {
				t.Fatalf("column %d kind %v -> %v", i, row[i].Kind, row2[i].Kind)
			}
		}
	})
}

// FuzzPageDecode treats arbitrary bytes as a page image: structural
// validation and every slot access must error on corruption rather than
// panic or slice out of range.
func FuzzPageDecode(f *testing.F) {
	valid := make([]byte, MinPageSize)
	p := initPage(valid)
	p.appendTuple(appendRow(nil, testRow(1)))
	p.appendTuple(appendRow(nil, testRow(2)))
	p.setLSN(7)
	p.seal()
	f.Add(valid)
	f.Add(make([]byte, MinPageSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		buf := make([]byte, MinPageSize)
		copy(buf, data)
		pg := page{buf}
		_ = pg.checkSeal()
		if err := pg.validate(); err != nil {
			return
		}
		for i := 0; i < pg.slotCount(); i++ {
			tup, err := pg.tuple(i)
			if err != nil {
				continue
			}
			_, _ = decodeRow(tup)
		}
		_ = pg.freeSpace()
	})
}

// FuzzWALScan replays arbitrary bytes as a log file: scan must stop at the
// first torn frame without panicking, the reported tail offset must stay
// within the file, and every surfaced insert payload must decode safely.
func FuzzWALScan(f *testing.F) {
	w := &wal{nextLSN: 1, maxRecord: uint32(4*MinPageSize + 256)}
	w.append(walInsert, insertPayload("t", 0, appendRow(nil, testRow(1))))
	w.append(walCommit, nil)
	w.append(walCheckpoint, nil)
	f.Add(append([]byte{}, w.buf...))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := openWAL(path, MinPageSize)
		if err != nil {
			t.Fatal(err)
		}
		defer w.close()
		recs, tailOff, err := w.scan()
		if err != nil {
			return
		}
		if tailOff < 0 || tailOff > int64(len(data)) {
			t.Fatalf("tail offset %d outside file of %d bytes", tailOff, len(data))
		}
		for _, r := range recs {
			if r.kind == walInsert {
				if table, _, rowBytes, err := decodeInsertPayload(r.payload); err == nil {
					_ = table
					_, _ = decodeRow(rowBytes)
				}
			}
		}
	})
}
