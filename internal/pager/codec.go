// Package pager is bufferdb's persistent storage tier: fixed-size slotted
// pages in per-table heap files, a buffer pool with pluggable eviction
// (LRU and GDSF), and a write-ahead log with LSN-stamped records,
// fsync-on-commit and replay-on-open crash recovery.
//
// The design mirrors the paper's central idea one level down the memory
// hierarchy: the buffer operator keeps *instructions* cache-resident by
// batching operator invocations; the buffer pool keeps *data* resident by
// caching pages — and both are observable through the same obsv counter
// registry (bufferdb_pager_* next to the simulated cache counters).
//
// A Store owns one data directory:
//
//	catalog.json   table schemas + stats (rewritten at every checkpoint)
//	<table>.heap   slotted pages, fixed size, append-only row placement
//	wal.log        write-ahead log since the last checkpoint
//
// Durability protocol: Insert appends per-row WAL records plus a commit
// record and fsyncs the log before touching any page, so a crash at any
// point either replays the whole batch (commit record durable) or discards
// it (torn or commit-less tail). Pages carry the LSN of the last record
// applied to them, making replay idempotent when some dirty pages reached
// disk before the crash and others did not. Checkpoint flushes every dirty
// page, rewrites the catalog, fsyncs the heaps and then resets the log.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"bufferdb/internal/storage"
)

// ErrCorrupt is the sentinel wrapped by every decode failure — a torn
// page, an over-declared slot count, a truncated value. Callers test it
// with errors.Is; the WAL replayer treats it as the torn tail of the log.
var ErrCorrupt = errors.New("corrupt on-disk data")

// maxColumns bounds the per-row column count a decoder will believe before
// allocating — far above any real schema, far below an allocation attack.
const maxColumns = 4096

// appendRow encodes a row after buf: a uvarint column count, then per
// column a one-byte type tag and the type's payload. Strings carry a
// uvarint length prefix; integers, dates and booleans are zigzag varints;
// floats are 8 fixed bytes.
func appendRow(buf []byte, r storage.Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, v := range r {
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case storage.TypeNull:
		case storage.TypeBool, storage.TypeInt64, storage.TypeDate:
			buf = binary.AppendVarint(buf, v.I)
		case storage.TypeFloat64:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case storage.TypeString:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		default:
			// Unknown kinds cannot occur for analyzer-produced rows; encode
			// as NULL-compatible tag so decode fails loudly rather than
			// silently dropping data.
			panic(fmt.Sprintf("pager: cannot encode value kind %d", v.Kind))
		}
	}
	return buf
}

// decodeRow decodes one encoded row. Every length and count is bounded
// against the remaining input before any allocation, so corrupt input
// errors instead of panicking or over-allocating.
func decodeRow(b []byte) (storage.Row, error) {
	ncols, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("pager: %w: bad column count", ErrCorrupt)
	}
	b = b[n:]
	// Each column needs at least its tag byte; a declared count beyond the
	// payload (or the hard cap) is corruption, not a big row.
	if ncols > uint64(len(b)) || ncols > maxColumns {
		return nil, fmt.Errorf("pager: %w: declared %d columns in %d bytes", ErrCorrupt, ncols, len(b))
	}
	row := make(storage.Row, ncols)
	for i := range row {
		if len(b) == 0 {
			return nil, fmt.Errorf("pager: %w: truncated row at column %d", ErrCorrupt, i)
		}
		kind := storage.Type(b[0])
		b = b[1:]
		switch kind {
		case storage.TypeNull:
			row[i] = storage.Null
		case storage.TypeBool, storage.TypeInt64, storage.TypeDate:
			v, n := binary.Varint(b)
			if n <= 0 {
				return nil, fmt.Errorf("pager: %w: bad integer at column %d", ErrCorrupt, i)
			}
			b = b[n:]
			row[i] = storage.Value{Kind: kind, I: v}
		case storage.TypeFloat64:
			if len(b) < 8 {
				return nil, fmt.Errorf("pager: %w: truncated float at column %d", ErrCorrupt, i)
			}
			row[i] = storage.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case storage.TypeString:
			sz, n := binary.Uvarint(b)
			if n <= 0 || sz > uint64(len(b)-n) {
				return nil, fmt.Errorf("pager: %w: bad string length at column %d", ErrCorrupt, i)
			}
			b = b[n:]
			row[i] = storage.NewString(string(b[:sz]))
			b = b[sz:]
		default:
			return nil, fmt.Errorf("pager: %w: unknown value kind %d at column %d", ErrCorrupt, kind, i)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("pager: %w: %d trailing bytes after row", ErrCorrupt, len(b))
	}
	return row, nil
}
