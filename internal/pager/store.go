package pager

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"bufferdb/internal/exec"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// Options configures a Store.
type Options struct {
	// PageSize is the page size in bytes for a newly created store; existing
	// stores always open with the size recorded in their catalog. Zero
	// selects DefaultPageSize.
	PageSize int
	// PoolBytes bounds buffer-pool residency. Zero selects 4 MiB; the floor
	// is 4 frames (a pool that cannot hold a handful of pages cannot make
	// progress).
	PoolBytes int64
	// Eviction names the pool's eviction policy: "lru" (default) or "gdsf".
	Eviction string
	// Mem, when non-nil, is charged with every resident frame, putting the
	// page cache under the same budget as query execution.
	Mem *exec.MemTracker
	// Fault, when non-nil, arms the pager's five injection sites (SiteRead,
	// SiteWrite, SiteFsync, SiteWALAppend, SiteWALFsync).
	Fault *faultinject.Injector
}

// catalogFile is the on-disk catalog (catalog.json), rewritten atomically at
// every checkpoint. Row counts are advisory — the page headers are
// authoritative at open — but LastLSN is load-bearing: it keeps LSNs
// monotonic across restarts even when the log was reset.
type catalogFile struct {
	Version  int            `json:"version"`
	PageSize int            `json:"pageSize"`
	LastLSN  uint64         `json:"lastLSN"`
	Tables   []catalogTable `json:"tables"`
}

type catalogTable struct {
	Name     string          `json:"name"`
	Columns  []catalogColumn `json:"columns"`
	Rows     int             `json:"rows"`
	RowBytes int64           `json:"rowBytes"`
}

type catalogColumn struct {
	Table string `json:"table"`
	Name  string `json:"name"`
	Type  int    `json:"type"`
}

const (
	catalogName    = "catalog.json"
	walName        = "wal.log"
	catalogVersion = 1
)

// tableState is a Store's bookkeeping for one table.
type tableState struct {
	name   string
	schema storage.Schema
	file   *heapFile
	tbl    *storage.Table

	// rowBytes is the cumulative in-memory byte size of all rows, feeding
	// AvgRowBytes for the planner's cost model.
	rowBytes int64
	// tailFree caches the free bytes of the last page; -1 means unknown
	// (computed lazily from the tail page on the first insert).
	tailFree int
}

// Store is one persistent database directory: a catalog, per-table heap
// files, a shared buffer pool and a write-ahead log. Reads (FetchRow,
// Iterate through the storage.Heap adapters) are safe for any number of
// concurrent callers; writes are serialized by the store mutex.
type Store struct {
	dir      string
	pageSize int
	pool     *Pool
	wal      *wal

	fsyncFault faultPoint

	mu     sync.Mutex
	tables map[string]*tableState
	wedged error
}

// HasCatalog reports whether dir holds an existing store (a catalog file).
func HasCatalog(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, catalogName))
	return err == nil
}

// Open opens (or creates) the store in dir, running crash recovery: intact
// committed WAL batches are replayed into the pages, the torn tail is
// truncated, and the store checkpoints so it starts clean.
func Open(dir string, opts Options) (*Store, error) {
	if opts.PageSize == 0 {
		opts.PageSize = DefaultPageSize
	}
	if opts.PageSize < MinPageSize || opts.PageSize > MaxPageSize {
		return nil, fmt.Errorf("pager: page size %d outside [%d,%d]", opts.PageSize, MinPageSize, MaxPageSize)
	}
	if opts.PoolBytes == 0 {
		opts.PoolBytes = 4 << 20
	}
	policy, err := NewPolicy(opts.Eviction)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pager: create data dir: %w", err)
	}

	readF, writeF, fsyncF, walAppendF, walFsyncF := resolveFaults(opts.Fault)

	var cat catalogFile
	data, err := os.ReadFile(filepath.Join(dir, catalogName))
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &cat); err != nil {
			return nil, fmt.Errorf("pager: %w: catalog: %v", ErrCorrupt, err)
		}
		if cat.PageSize != 0 {
			opts.PageSize = cat.PageSize
		}
	case os.IsNotExist(err):
		cat = catalogFile{Version: catalogVersion, PageSize: opts.PageSize}
	default:
		return nil, fmt.Errorf("pager: read catalog: %w", err)
	}

	capFrames := int(opts.PoolBytes / int64(opts.PageSize))
	if capFrames < 4 {
		capFrames = 4
	}

	s := &Store{
		dir:        dir,
		pageSize:   opts.PageSize,
		pool:       newPool(opts.PageSize, capFrames, policy, opts.Mem, readF, writeF),
		fsyncFault: fsyncF,
		tables:     make(map[string]*tableState),
	}

	for _, ct := range cat.Tables {
		schema := make(storage.Schema, len(ct.Columns))
		for i, c := range ct.Columns {
			schema[i] = storage.Column{Table: c.Table, Name: c.Name, Type: storage.Type(c.Type)}
		}
		if err := s.attachTable(ct.Name, schema, ct.RowBytes); err != nil {
			s.closeFiles()
			return nil, err
		}
	}

	w, err := openWAL(filepath.Join(dir, walName), opts.PageSize)
	if err != nil {
		s.closeFiles()
		return nil, err
	}
	w.appendFault, w.syncFault = walAppendF, walFsyncF
	s.wal = w

	if err := s.recover(cat.LastLSN); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// attachTable opens a table's heap file and registers its state. Caller
// holds the store exclusively (open or the mutex).
func (s *Store) attachTable(name string, schema storage.Schema, rowBytes int64) error {
	path := filepath.Join(s.dir, name+".heap")
	h, err := openHeapFile(path, name, s.pageSize, uint32(len(s.tables)))
	if err != nil {
		return err
	}
	if err := h.loadPageStarts(); err != nil {
		h.close()
		return err
	}
	ts := &tableState{name: name, schema: schema, file: h, rowBytes: rowBytes, tailFree: -1}
	ts.tbl = storage.NewPagedTable(name, schema, &tableHeap{s: s, ts: ts})
	s.tables[name] = ts
	return nil
}

// recover replays the WAL, truncates its torn tail, and checkpoints.
func (s *Store) recover(catalogLSN uint64) error {
	recs, tailOff, err := s.wal.scan()
	if err != nil {
		return err
	}
	maxLSN := catalogLSN
	for _, r := range recs {
		if r.lsn > maxLSN {
			maxLSN = r.lsn
		}
	}
	s.wal.nextLSN = maxLSN + 1

	// Commit-then-apply replay: inserts buffer until their commit record
	// proves the batch durable; a commit-less tail is discarded with the
	// torn bytes.
	var pending []walRecord
	for _, r := range recs {
		switch r.kind {
		case walInsert:
			pending = append(pending, r)
		case walCommit:
			for _, ins := range pending {
				if err := s.replayInsert(ins); err != nil {
					return err
				}
			}
			pending = pending[:0]
		case walCheckpoint:
			// No-op: its LSN already seeded nextLSN above.
		default:
			return fmt.Errorf("pager: %w: wal record type %d", ErrCorrupt, r.kind)
		}
	}
	if err := s.wal.truncateTail(tailOff); err != nil {
		return err
	}
	// Recovery ends with a checkpoint so the reopened store starts clean:
	// replayed pages flushed, catalog rewritten, log reset.
	return s.checkpointLocked()
}

// replayInsert applies one committed WAL insert, idempotently: a page whose
// LSN is at or past the record's was flushed with the row already in it.
func (s *Store) replayInsert(r walRecord) error {
	table, pageID, rowBytes, err := decodeInsertPayload(r.payload)
	if err != nil {
		return err
	}
	ts, ok := s.tables[table]
	if !ok {
		return fmt.Errorf("pager: %w: wal insert into unknown table %q", ErrCorrupt, table)
	}
	row, err := decodeRow(rowBytes)
	if err != nil {
		return err
	}
	var fr *frame
	switch {
	case pageID < ts.file.numPages:
		fr, err = s.pool.fetch(ts.file, pageID)
	case pageID == ts.file.numPages:
		fr, err = s.pool.newPage(ts.file, pageID)
		if err == nil {
			ts.file.numPages++
			ts.file.pageStarts = append(ts.file.pageStarts, ts.file.pageStarts[len(ts.file.pageStarts)-1])
		}
	default:
		return fmt.Errorf("pager: %w: wal insert skips to page %d of %d in %s", ErrCorrupt, pageID, ts.file.numPages, table)
	}
	if err != nil {
		return err
	}
	fr.mu.Lock()
	p := page{fr.data}
	applied := false
	if p.lsn() < r.lsn {
		if _, ok := p.appendTuple(rowBytes); !ok {
			fr.mu.Unlock()
			s.pool.unpin(fr, false)
			return fmt.Errorf("pager: %w: replayed row does not fit page %d of %s", ErrCorrupt, pageID, table)
		}
		p.setLSN(r.lsn)
		applied = true
	}
	fr.mu.Unlock()
	s.pool.unpin(fr, applied)
	if applied {
		// The page's first-row index stays correct: replay appends in the
		// original order, so only tail entries move.
		for i := int(pageID) + 1; i < len(ts.file.pageStarts); i++ {
			ts.file.pageStarts[i]++
		}
		ts.rowBytes += int64(row.ByteSize())
		ts.tailFree = -1
	}
	return nil
}

// Tables returns the store's tables as catalog-ready storage.Table values,
// in name order. Their rows stream through the buffer pool.
func (s *Store) Tables() []*storage.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*storage.Table, len(names))
	for i, n := range names {
		out[i] = s.tables[n].tbl
	}
	return out
}

// Table returns the named table, or an error wrapping
// storage.ErrUnknownTable.
func (s *Store) Table(name string) (*storage.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("pager: no table named %q: %w", name, storage.ErrUnknownTable)
	}
	return ts.tbl, nil
}

// PoolStats returns the buffer pool's counters.
func (s *Store) PoolStats() PoolStats { return s.pool.Stats() }

// CreateTable registers a new empty table and durably records it in the
// catalog (WAL inserts reference tables by name, so the catalog entry must
// outlive a crash before any insert commits).
func (s *Store) CreateTable(name string, schema storage.Schema) (*storage.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged != nil {
		return nil, s.wedged
	}
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("pager: table %s already exists", name)
	}
	if err := s.attachTable(name, schema, 0); err != nil {
		return nil, err
	}
	if err := s.writeCatalogLocked(); err != nil {
		return nil, err
	}
	return s.tables[name].tbl, nil
}

// BulkLoad appends rows by writing pages directly, bypassing the WAL and
// the pool — the standard bulk path: if the load fails or the process dies
// before the closing checkpoint, the catalog still records the old row
// count and the recovery checkpoint rewrites it from the page headers.
// Call Checkpoint after the last bulk load to make the data durable.
func (s *Store) BulkLoad(table string, rows []storage.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged != nil {
		return s.wedged
	}
	ts, ok := s.tables[table]
	if !ok {
		return fmt.Errorf("pager: no table named %q: %w", table, storage.ErrUnknownTable)
	}
	if ts.file.numRows() > 0 || ts.file.numPages > 0 {
		return fmt.Errorf("pager: bulk load into non-empty table %s", table)
	}

	// A failed load truncates the file back to empty: the bookkeeping below
	// only adopts the pages on success, and orphan pages past the recorded
	// count would otherwise be readopted as live rows by the next open.
	fail := func(err error) error {
		_ = ts.file.f.Truncate(0)
		ts.rowBytes = 0
		return err
	}

	buf := make([]byte, s.pageSize)
	p := initPage(buf)
	pageID := uint32(0)
	inPage := 0
	starts := []int{0}
	flush := func() error {
		if err := ts.file.writePage(pageID, buf, s.pool.writeFault); err != nil {
			return fail(err)
		}
		starts = append(starts, starts[len(starts)-1]+inPage)
		pageID++
		inPage = 0
		p = initPage(buf)
		return nil
	}

	var enc []byte
	for i, r := range rows {
		if len(r) != len(ts.schema) {
			return fail(fmt.Errorf("pager: bulk load %s: row %d arity %d != schema arity %d", table, i, len(r), len(ts.schema)))
		}
		enc = appendRow(enc[:0], r)
		if len(enc) > maxTupleBytes(s.pageSize) {
			return fail(fmt.Errorf("pager: bulk load %s: row %d (%d bytes) exceeds page capacity %d", table, i, len(enc), maxTupleBytes(s.pageSize)))
		}
		if _, ok := p.appendTuple(enc); !ok {
			if err := flush(); err != nil {
				return err
			}
			p.appendTuple(enc)
		}
		inPage++
		ts.rowBytes += int64(r.ByteSize())
	}
	if inPage > 0 {
		if err := flush(); err != nil {
			return err
		}
	}
	if err := ts.file.sync(s.fsyncFault); err != nil {
		return fail(err)
	}
	ts.file.numPages = pageID
	ts.file.pageStarts = starts
	ts.tailFree = -1
	return nil
}

// Insert durably appends rows to a table. The batch is atomic: every row's
// WAL record plus one commit record reach disk (one write, one fsync)
// before any page is touched, so a crash either replays the whole batch or
// discards it.
func (s *Store) Insert(table string, rows []storage.Row) error {
	if len(rows) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged != nil {
		return s.wedged
	}
	ts, ok := s.tables[table]
	if !ok {
		return fmt.Errorf("pager: no table named %q: %w", table, storage.ErrUnknownTable)
	}

	// The tail page's free space decides placement; compute it lazily.
	if ts.tailFree < 0 {
		if ts.file.numPages == 0 {
			ts.tailFree = 0
		} else {
			fr, err := s.pool.fetch(ts.file, ts.file.numPages-1)
			if err != nil {
				return err
			}
			fr.mu.RLock()
			ts.tailFree = page{fr.data}.freeSpace()
			fr.mu.RUnlock()
			s.pool.unpin(fr, false)
		}
	}

	// Validate and encode every row BEFORE staging anything in the log: an
	// error below must leave wal.buf empty, or the orphan records of the
	// failed batch would be written ahead of the next successful batch's
	// commit record and replayed as if they had committed.
	encs := make([][]byte, len(rows))
	for i, r := range rows {
		if len(r) != len(ts.schema) {
			return fmt.Errorf("pager: insert %s: row %d arity %d != schema arity %d", table, i, len(r), len(ts.schema))
		}
		enc := appendRow(nil, r)
		if len(enc) > maxTupleBytes(s.pageSize) {
			return fmt.Errorf("pager: insert %s: row %d (%d bytes) exceeds page capacity %d", table, i, len(enc), maxTupleBytes(s.pageSize))
		}
		encs[i] = enc
	}

	// Plan placements and stage WAL records; nothing is applied yet and no
	// fallible step separates the first append from the flush, so a failed
	// commit leaves both the store and the log buffer untouched.
	type placement struct {
		pageID uint32
		enc    []byte
		lsn    uint64
	}
	plans := make([]placement, 0, len(rows))
	numPages := ts.file.numPages
	tailFree := ts.tailFree
	for _, enc := range encs {
		need := len(enc) + slotSize
		var pageID uint32
		if numPages == 0 || tailFree < need {
			pageID = numPages
			numPages++
			tailFree = s.pageSize - pageHeaderSize - slotSize
		} else {
			pageID = numPages - 1
		}
		tailFree -= need
		lsn := s.wal.append(walInsert, insertPayload(table, pageID, enc))
		plans = append(plans, placement{pageID: pageID, enc: enc, lsn: lsn})
	}
	s.wal.append(walCommit, nil)
	if err := s.wal.flush(); err != nil {
		if s.wal.poisoned {
			return s.wedge(fmt.Errorf("pager: insert %s: commit failed and log rollback failed (reopen to recover): %w", table, err))
		}
		return err
	}

	// Commit is durable; apply to the pages. A failure past this point
	// (injected I/O fault on a pool miss or eviction writeback) wedges the
	// store: the data is safe in the log and the next Open replays it, but
	// this process's in-memory state no longer matches the pages.
	for _, pl := range plans {
		var (
			fr  *frame
			err error
		)
		if pl.pageID == ts.file.numPages {
			fr, err = s.pool.newPage(ts.file, pl.pageID)
			if err == nil {
				ts.file.numPages++
				ts.file.pageStarts = append(ts.file.pageStarts, ts.file.pageStarts[len(ts.file.pageStarts)-1])
			}
		} else {
			fr, err = s.pool.fetch(ts.file, pl.pageID)
		}
		if err != nil {
			return s.wedge(fmt.Errorf("pager: insert %s committed but not applied (reopen to recover): %w", table, err))
		}
		fr.mu.Lock()
		p := page{fr.data}
		_, ok := p.appendTuple(pl.enc)
		if ok {
			p.setLSN(pl.lsn)
		}
		fr.mu.Unlock()
		s.pool.unpin(fr, ok)
		if !ok {
			return s.wedge(fmt.Errorf("pager: insert %s: planned row does not fit page %d", table, pl.pageID))
		}
		ts.file.pageStarts[len(ts.file.pageStarts)-1]++
	}
	for _, r := range rows {
		ts.rowBytes += int64(r.ByteSize())
	}
	ts.tailFree = tailFree
	return nil
}

// wedge marks the store failed between a durable commit and its in-memory
// application; every subsequent write refuses until the store is reopened
// (which replays the log and reconverges).
func (s *Store) wedge(err error) error {
	s.wedged = err
	return err
}

// Checkpoint makes everything durable and resets the log: flush dirty
// pages, fsync the heaps, atomically rewrite the catalog (carrying the LSN
// high-water mark), truncate the WAL.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged != nil {
		return s.wedged
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	for _, ts := range s.tables {
		if err := s.pool.flushFile(ts.file); err != nil {
			return err
		}
		if err := ts.file.sync(s.fsyncFault); err != nil {
			return err
		}
	}
	if err := s.writeCatalogLocked(); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	// Re-seed the log with a checkpoint record so even a catalog lost to a
	// later crash cannot roll LSNs back below the pages' stamps.
	s.wal.append(walCheckpoint, nil)
	if err := s.wal.flush(); err != nil {
		if s.wal.poisoned {
			return s.wedge(fmt.Errorf("pager: checkpoint record flush failed and log rollback failed (reopen to recover): %w", err))
		}
		return err
	}
	metricCheckpoints().Inc()
	return nil
}

// writeCatalogLocked rewrites catalog.json atomically (tmp + fsync +
// rename).
func (s *Store) writeCatalogLocked() error {
	cat := catalogFile{Version: catalogVersion, PageSize: s.pageSize, LastLSN: 0, Tables: make([]catalogTable, 0, len(s.tables))}
	if s.wal != nil {
		cat.LastLSN = s.wal.nextLSN - 1
	}
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ts := s.tables[n]
		ct := catalogTable{Name: n, Rows: ts.file.numRows(), RowBytes: ts.rowBytes}
		for _, c := range ts.schema {
			ct.Columns = append(ct.Columns, catalogColumn{Table: c.Table, Name: c.Name, Type: int(c.Type)})
		}
		cat.Tables = append(cat.Tables, ct)
	}
	data, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return fmt.Errorf("pager: encode catalog: %w", err)
	}
	tmp := filepath.Join(s.dir, catalogName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("pager: write catalog: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("pager: write catalog: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("pager: fsync catalog: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("pager: close catalog: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, catalogName)); err != nil {
		return fmt.Errorf("pager: install catalog: %w", err)
	}
	return nil
}

// Close checkpoints (unless wedged) and releases every resource. The pool's
// memory charge drains to zero even on a failed checkpoint.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	if s.wedged == nil {
		firstErr = s.checkpointLocked()
	}
	if err := s.closeFiles(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// CloseAbrupt releases resources WITHOUT checkpointing or flushing — pool
// contents (dirty pages included) are dropped on the floor. It simulates a
// crash for the recovery tests: everything not yet on disk is lost,
// everything the WAL committed must survive a subsequent Open.
func (s *Store) CloseAbrupt() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeFiles()
}

// closeFiles tears down pool, WAL and heap files. Idempotent enough for the
// open-failure paths (nil wal, partially attached tables).
func (s *Store) closeFiles() error {
	var firstErr error
	if s.pool != nil {
		s.pool.close()
	}
	if s.wal != nil {
		if err := s.wal.close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.wal = nil
	}
	for _, ts := range s.tables {
		if err := ts.file.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.tables = make(map[string]*tableState)
	return firstErr
}

// tableHeap adapts one table's pages to storage.Heap, which is how the
// executor's scans and the planner's samplers reach disk-backed rows.
type tableHeap struct {
	s  *Store
	ts *tableState
}

// NumRows implements storage.Heap.
func (h *tableHeap) NumRows() int {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.ts.file.numRows()
}

// AvgRowBytes implements storage.Heap.
func (h *tableHeap) AvgRowBytes() int {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	n := h.ts.file.numRows()
	if n == 0 {
		return 0
	}
	return int(h.ts.rowBytes / int64(n))
}

// FetchRow implements storage.Heap: one pinned page, one decoded row. The
// returned row owns its memory (decode copies), so it stays valid after the
// page is unpinned or even evicted.
func (h *tableHeap) FetchRow(rid int) (storage.Row, error) {
	h.s.mu.Lock()
	if err := h.s.wedged; err != nil {
		// A wedged store stopped mid-apply: some pages of a committed batch
		// carry its rows, others don't. Refuse reads too, or callers would
		// observe the torn batch until the process reopens the store.
		h.s.mu.Unlock()
		return nil, err
	}
	pageID, slot, err := h.ts.file.pageOf(rid)
	h.s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	fr, err := h.s.pool.fetch(h.ts.file, pageID)
	if err != nil {
		return nil, err
	}
	fr.mu.RLock()
	tup, err := page{fr.data}.tuple(slot)
	var row storage.Row
	if err == nil {
		row, err = decodeRow(tup)
	}
	fr.mu.RUnlock()
	h.s.pool.unpin(fr, false)
	if err != nil {
		return nil, fmt.Errorf("pager: %s row %d: %w", h.ts.name, rid, err)
	}
	return row, nil
}

// Iterate implements storage.Heap: a rid-ordered stream that pins one page
// at a time and decodes it wholesale, so a pool holding a fraction of the
// table still scans it correctly — pages wash through the pool as the scan
// advances.
func (h *tableHeap) Iterate(span storage.Span) (storage.RowIterator, error) {
	if span.Start < 0 || span.Start > span.End {
		return nil, fmt.Errorf("pager: %s: bad span [%d,%d)", h.ts.name, span.Start, span.End)
	}
	h.s.mu.Lock()
	err := h.s.wedged
	h.s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return &pagedIterator{h: h, next: span.Start, end: span.End}, nil
}

// pagedIterator streams one span of a paged table. It holds no pin between
// Next calls: each page is pinned once, decoded into rows that own their
// memory, and unpinned before the first of its rows is returned.
type pagedIterator struct {
	h    *tableHeap
	next int // rid of the next row to return
	end  int

	rows    []storage.Row // decoded rows of the current page
	rowBase int           // rid of rows[0]
	err     error
	done    bool
}

// Next implements storage.RowIterator.
func (it *pagedIterator) Next() (int, storage.Row, bool, error) {
	if it.done || it.err != nil {
		return 0, nil, false, it.err
	}
	for {
		if idx := it.next - it.rowBase; len(it.rows) > 0 && idx >= 0 && idx < len(it.rows) {
			rid := it.next
			it.next++
			if rid >= it.end {
				it.done = true
				return 0, nil, false, nil
			}
			return rid, it.rows[idx], true, nil
		}
		if it.next >= it.end {
			it.done = true
			return 0, nil, false, nil
		}
		if err := it.loadPage(); err != nil {
			it.err = err
			return 0, nil, false, err
		}
	}
}

// loadPage decodes the page holding rid it.next.
func (it *pagedIterator) loadPage() error {
	h := it.h
	h.s.mu.Lock()
	if err := h.s.wedged; err != nil {
		// See FetchRow: a wedged store may hold a half-applied batch.
		h.s.mu.Unlock()
		return err
	}
	pageID, _, err := h.ts.file.pageOf(it.next)
	var base int
	if err == nil {
		base = h.ts.file.pageStarts[pageID]
	}
	h.s.mu.Unlock()
	if err != nil {
		return err
	}
	fr, err := h.s.pool.fetch(h.ts.file, pageID)
	if err != nil {
		return err
	}
	fr.mu.RLock()
	p := page{fr.data}
	n := p.slotCount()
	rows := make([]storage.Row, 0, n)
	for i := 0; i < n && err == nil; i++ {
		var tup []byte
		if tup, err = p.tuple(i); err == nil {
			var row storage.Row
			if row, err = decodeRow(tup); err == nil {
				rows = append(rows, row)
			}
		}
	}
	fr.mu.RUnlock()
	h.s.pool.unpin(fr, false)
	if err != nil {
		return fmt.Errorf("pager: %s page %d: %w", h.ts.name, pageID, err)
	}
	it.rows, it.rowBase = rows, base
	return nil
}

// Close implements storage.RowIterator.
func (it *pagedIterator) Close() error {
	it.done = true
	it.rows = nil
	return it.err
}
