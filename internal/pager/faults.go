package pager

import "bufferdb/internal/faultinject"

// Fault-injection sites of the storage tier. A Store resolves each site
// once at Open against the injector in its Options (nil in production —
// every site then costs one branch, like the executor's points):
//
//	pager:read    heap-file page read (pool miss)
//	pager:write   heap-file page write (dirty writeback, checkpoint flush)
//	pager:fsync   heap-file fsync (checkpoint, bulk load)
//	wal:append    write-ahead-log write
//	wal:fsync     write-ahead-log fsync (the commit point)
//
// The chaos suite (TestChaosPager*) drives every site and asserts typed
// errors, intact reads afterwards, and zero tracked bytes after Close.
const (
	SiteRead      = "pager:read"
	SiteWrite     = "pager:write"
	SiteFsync     = "pager:fsync"
	SiteWALAppend = "wal:append"
	SiteWALFsync  = "wal:fsync"
)

// faultPoint is a resolved injection site; the zero value (nil point) is
// inert.
type faultPoint struct {
	p *faultinject.Point
}

// fire triggers the site's due rules, if any.
func (f faultPoint) fire() error { return f.p.Fire() }

// resolveFaults arms the store's five sites against inj (which may be nil).
func resolveFaults(inj *faultinject.Injector) (read, write, fsync, walAppend, walFsync faultPoint) {
	return faultPoint{inj.Point(SiteRead)},
		faultPoint{inj.Point(SiteWrite)},
		faultPoint{inj.Point(SiteFsync)},
		faultPoint{inj.Point(SiteWALAppend)},
		faultPoint{inj.Point(SiteWALFsync)}
}
