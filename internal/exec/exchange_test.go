package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/storage"
)

// spanScans builds one span-bounded SeqScan per partition of a table.
func spanScans(t *testing.T, table *storage.Table, workers int) []Operator {
	t.Helper()
	spans := table.Partitions(workers)
	parts := make([]Operator, len(spans))
	for i := range spans {
		parts[i] = NewSeqScanSpan(table, nil, nil, &spans[i])
	}
	return parts
}

func TestExchangeGathersInPartitionOrder(t *testing.T) {
	li := tbl(t, "lineitem")
	want := runPlan(t, NewSeqScan(li, nil, nil))
	for _, workers := range []int{1, 2, 3, 7, 16} {
		ex, err := NewExchange(spanScans(t, li, workers))
		if err != nil {
			t.Fatal(err)
		}
		got := runPlan(t, ex)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(got), len(want))
		}
		if HashRows(got) != HashRows(want) {
			t.Fatalf("workers=%d: gathered rows differ from sequential scan", workers)
		}
	}
}

func TestExchangeSerialWhenInstrumented(t *testing.T) {
	li := tbl(t, "lineitem")
	ex, err := NewExchange(spanScans(t, li, 4))
	if err != nil {
		t.Fatal(err)
	}
	// A tracer forces serial inline execution (the simulated machine is
	// single-core); results must still match.
	ctx := &Context{Catalog: testDB, Trace: NewTracer(16)}
	rows, err := Run(ctx, ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != li.NumRows() {
		t.Fatalf("serial gather produced %d rows, want %d", len(rows), li.NumRows())
	}
}

func TestExchangeConformance(t *testing.T) {
	li := tbl(t, "lineitem")
	Conformance(t, "Exchange", func() Operator {
		ex, err := NewExchange(spanScans(t, li, 3))
		if err != nil {
			t.Fatal(err)
		}
		return ex
	})
}

func TestExchangeEmptyPartitions(t *testing.T) {
	if _, err := NewExchange(nil); err == nil {
		t.Error("NewExchange with no partitions succeeded")
	}
}

// failingOp errors after serving a few rows, to test worker error surfacing.
type failingOp struct {
	n      int
	served int
	opened bool
}

func (f *failingOp) Open(*Context) error { f.served = 0; f.opened = true; return nil }
func (f *failingOp) Next(*Context) (storage.Row, error) {
	if !f.opened {
		return nil, errNotOpen(f.Name())
	}
	if f.served >= f.n {
		return nil, fmt.Errorf("failingOp: deliberate failure")
	}
	f.served++
	return storage.Row{storage.NewInt(int64(f.served))}, nil
}
func (f *failingOp) Close(*Context) error         { f.opened = false; return nil }
func (f *failingOp) Schema() storage.Schema       { return storage.Schema{{Name: "x", Type: storage.TypeInt64}} }
func (f *failingOp) Children() []Operator         { return nil }
func (f *failingOp) Name() string                 { return "failingOp" }
func (f *failingOp) Module() *codemodel.Module    { return nil }
func (f *failingOp) Blocking() bool               { return false }

func TestExchangeSurfacesWorkerError(t *testing.T) {
	parts := []Operator{
		&failingOp{n: 1 << 30}, // never fails within the test's pulls
		&failingOp{n: 5},
	}
	parts[0].(*failingOp).n = 5_000 // finite so the healthy partition drains
	ex, err := NewExchange(parts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(&Context{Catalog: testDB}, ex)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("Run = %v, want the worker's error", err)
	}
}

func TestExchangeCancellation(t *testing.T) {
	li := tbl(t, "lineitem")
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex, err := NewExchange(spanScans(t, li, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(&Context{Catalog: testDB, Ctx: cctx}, ex)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on canceled ctx = %v, want nil or context.Canceled", err)
	}
}
