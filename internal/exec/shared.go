package exec

import (
	"time"

	"bufferdb/internal/storage"
)

// SharedBuild wires one hash join's build side to the semantic reuse
// cache. The plan-layer splice (plan.ApplyReuse) attaches it to the
// HashBuild node; all three engines' join operators consult it the same
// way:
//
//   - On a cache hit, Table is the adopted, read-only build table and the
//     build child has been replaced with an empty source — the operator
//     skips its build drain entirely and probes Table. The entry stays
//     pinned for the cursor's lifetime (the facade releases it), so
//     eviction never un-accounts memory mid-probe.
//   - On a miss, Publish is set: after a complete, successful build drain
//     the operator hands its finished table to the cache with the bytes it
//     charged and the wall-clock cost of building. Publish must only be
//     called with a fully built table — never after a canceled or failed
//     drain.
//
// A nil SharedBuild (the default everywhere outside the facade's reuse
// path) costs one branch at Open.
type SharedBuild struct {
	// Table is the adopted build side on a hit; nil on a miss.
	Table map[int64][]storage.Row
	// Publish hands a finished build to the cache on a miss; nil on a hit.
	Publish func(table map[int64][]storage.Row, bytes int64, cost time.Duration)
}

// SharedAgg wires one hash aggregate to the reuse cache on a miss. (On a
// hit the whole aggregate node is replaced by a CachedRows source, so the
// operator never sees the shared state.) Publish receives the operator's
// complete, sorted output rows — materialized by the same code path that
// emits them — with their estimated retained bytes and build cost.
type SharedAgg struct {
	Publish func(rows []storage.Row, bytes int64, cost time.Duration)
}
