package exec

import (
	"strings"
	"testing"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/cpusim"
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
)

// instrumentedCtx builds a context with a live simulated CPU and placed
// tables, exercising every operator's data- and instruction-modeling path.
func instrumentedCtx(t *testing.T, cm *codemodel.Catalog) *Context {
	t.Helper()
	cpu, err := cpusim.New(cpusim.DefaultConfig(), cm.TextSegmentBytes())
	if err != nil {
		t.Fatal(err)
	}
	placements := PlaceCatalog(cpu, testDB)
	return &Context{Catalog: testDB, CPU: cpu, Placements: placements}
}

func TestInstrumentedSeqScanAgg(t *testing.T) {
	cm := codemodel.NewCatalog()
	li := tbl(t, "lineitem")
	filter := shipdateFilter(t, li.Schema(), "1995-06-17")
	scan := NewSeqScan(li, filter, cm.MustModule("SeqScanPred"))
	aggMod, err := cm.AggModule([]string{"count"})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregate(scan, nil, []expr.AggSpec{{Func: expr.AggCountStar}}, aggMod)
	if err != nil {
		t.Fatal(err)
	}
	ctx := instrumentedCtx(t, cm)
	rows, err := Run(ctx, agg)
	if err != nil || len(rows) != 1 {
		t.Fatalf("run: %v %v", rows, err)
	}
	ctr := ctx.CPU.Counters()
	if ctr.Uops == 0 || ctr.L1IAccesses == 0 || ctr.Branches == 0 {
		t.Errorf("instruction side not modeled: %+v", ctr)
	}
	if ctr.L1DAccesses == 0 {
		t.Error("data side not modeled")
	}
	// Result must match the uninstrumented run.
	plain := runPlan(t, mustAgg(t, NewSeqScan(li, shipdateFilter(t, li.Schema(), "1995-06-17"), nil)))
	if rows[0].String() != plain[0].String() {
		t.Errorf("instrumentation changed the answer: %s vs %s", rows[0], plain[0])
	}
}

func mustAgg(t *testing.T, child Operator) Operator {
	t.Helper()
	agg, err := NewAggregate(child, nil, []expr.AggSpec{{Func: expr.AggCountStar}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

func TestInstrumentedJoinsProduceTraffic(t *testing.T) {
	cm := codemodel.NewCatalog()
	li := tbl(t, "lineitem")
	orders := tbl(t, "orders")
	liKey := colRef(t, li.Schema(), "l_orderkey")
	oKey := colRef(t, orders.Schema(), "o_orderkey")

	// Hash join: bucket traffic must show up as non-sequential accesses.
	hj := NewHashJoin(
		NewSeqScan(li, nil, cm.MustModule("SeqScan")),
		NewSeqScan(orders, nil, cm.MustModule("SeqScan")),
		liKey, oKey,
		cm.MustModule("HashBuild"), cm.MustModule("HashProbe"),
	)
	ctx := instrumentedCtx(t, cm)
	rows, err := Run(ctx, hj)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != li.NumRows() {
		t.Fatalf("hash join rows = %d", len(rows))
	}
	if ctx.CPU.Counters().L1DMisses == 0 {
		t.Error("hash join produced no data-cache misses")
	}

	// Nested loop with instrumented index lookup.
	inner, err := NewIndexLookup(orders, orders.IndexOn("o_orderkey"), cm.MustModule("IndexScan"))
	if err != nil {
		t.Fatal(err)
	}
	nl := NewNestLoopJoin(NewSeqScan(li, nil, cm.MustModule("SeqScan")), inner, colRef(t, li.Schema(), "l_orderkey"), nil, cm.MustModule("NestLoop"))
	ctx2 := instrumentedCtx(t, cm)
	rows, err = Run(ctx2, nl)
	if err != nil || len(rows) != li.NumRows() {
		t.Fatalf("nestloop: %d rows, %v", len(rows), err)
	}

	// Merge join over sort + ordered index scan.
	sorted := NewSort(NewSeqScan(li, nil, cm.MustModule("SeqScan")),
		[]SortKey{{Expr: colRef(t, li.Schema(), "l_orderkey")}}, cm.MustModule("Sort"))
	oscan, err := NewIndexFullScan(orders, orders.IndexOn("o_orderkey"), nil, cm.MustModule("IndexScan"))
	if err != nil {
		t.Fatal(err)
	}
	mj := NewMergeJoin(sorted, oscan, colRef(t, li.Schema(), "l_orderkey"), colRef(t, orders.Schema(), "o_orderkey"), cm.MustModule("MergeJoin"))
	ctx3 := instrumentedCtx(t, cm)
	rows, err = Run(ctx3, mj)
	if err != nil || len(rows) != li.NumRows() {
		t.Fatalf("mergejoin: %d rows, %v", len(rows), err)
	}
	if ctx3.CPU.Counters().Branches == 0 {
		t.Error("sort comparisons issued no branches")
	}
}

func TestInstrumentedFilterProjectMaterial(t *testing.T) {
	cm := codemodel.NewCatalog()
	li := tbl(t, "lineitem")
	sch := li.Schema()
	f := NewFilter(NewSeqScan(li, nil, cm.MustModule("SeqScan")),
		shipdateFilter(t, sch, "1995-06-17"), cm.MustModule("Filter"))
	pr, err := NewProject(f, []expr.Expr{colRef(t, sch, "l_orderkey")}, []string{"k"}, cm.MustModule("Project"))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMaterial(pr, cm.MustModule("Material"))
	ctx := instrumentedCtx(t, cm)
	rows, err := Run(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	want := runPlan(t, NewSeqScan(li, shipdateFilter(t, sch, "1995-06-17"), nil))
	if len(rows) != len(want) {
		t.Errorf("filter+project+material = %d rows, want %d", len(rows), len(want))
	}
	if len(rows[0]) != 1 {
		t.Errorf("projection width = %d", len(rows[0]))
	}
}

func TestJoinNullKeysSkipped(t *testing.T) {
	schA := storage.Schema{{Name: "k", Type: storage.TypeInt64}}
	schB := storage.Schema{{Name: "k2", Type: storage.TypeInt64}}
	aRows := []storage.Row{
		{storage.NewInt(1)},
		{storage.Null},
		{storage.NewInt(2)},
	}
	bRows := []storage.Row{
		{storage.NewInt(1)},
		{storage.NewInt(2)},
		{storage.Null},
	}
	ka := expr.NewColRef(0, "k", storage.TypeInt64)
	kb := expr.NewColRef(0, "k2", storage.TypeInt64)

	hj := NewHashJoin(NewValues(schA, aRows), NewValues(schB, bRows), ka, kb, nil, nil)
	rows := runPlan(t, hj)
	if len(rows) != 2 {
		t.Errorf("hash join with NULL keys = %d rows, want 2", len(rows))
	}
	mj := NewMergeJoin(NewValues(schA, aRows), NewValues(schB, bRows), ka, kb, nil)
	// Merge join requires sorted inputs; NULLs are skipped during advance,
	// and these inputs are sorted on the non-NULL prefix.
	rows = runPlan(t, mj)
	if len(rows) != 2 {
		t.Errorf("merge join with NULL keys = %d rows, want 2", len(rows))
	}
}

func TestMergeJoinEdgeCases(t *testing.T) {
	sch := storage.Schema{{Name: "k", Type: storage.TypeInt64}}
	k := expr.NewColRef(0, "k", storage.TypeInt64)
	mk := func(vals ...int64) []storage.Row {
		rows := make([]storage.Row, len(vals))
		for i, v := range vals {
			rows[i] = storage.Row{storage.NewInt(v)}
		}
		return rows
	}
	cases := []struct {
		name        string
		left, right []int64
		want        int
	}{
		{"both empty", nil, nil, 0},
		{"left empty", nil, []int64{1, 2}, 0},
		{"right empty", []int64{1, 2}, nil, 0},
		{"no overlap", []int64{1, 2}, []int64{3, 4}, 0},
		{"dup both sides", []int64{1, 1, 2}, []int64{1, 1, 2, 2}, 2*2 + 1*2},
		{"left dups", []int64{5, 5, 5}, []int64{5}, 3},
		{"right tail unmatched", []int64{1}, []int64{1, 9, 10}, 1},
		{"left tail unmatched", []int64{1, 9, 10}, []int64{1}, 1},
	}
	for _, c := range cases {
		var l, r []storage.Row
		if c.left != nil {
			l = mk(c.left...)
		}
		if c.right != nil {
			r = mk(c.right...)
		}
		mj := NewMergeJoin(NewValues(sch, l), NewValues(sch, r), k, k, nil)
		rows := runPlan(t, mj)
		if len(rows) != c.want {
			t.Errorf("%s: %d rows, want %d", c.name, len(rows), c.want)
		}
	}
}

func TestOperatorMetadata(t *testing.T) {
	cm := codemodel.NewCatalog()
	li := tbl(t, "lineitem")
	orders := tbl(t, "orders")
	liKey := colRef(t, li.Schema(), "l_orderkey")
	oKey := colRef(t, orders.Schema(), "o_orderkey")

	inner, err := NewIndexLookup(orders, orders.IndexOn("o_orderkey"), nil)
	if err != nil {
		t.Fatal(err)
	}
	nl := NewNestLoopJoin(NewSeqScan(li, nil, nil), inner, liKey, nil, cm.MustModule("NestLoop"))
	hj := NewHashJoin(NewSeqScan(li, nil, nil), NewSeqScan(orders, nil, nil), liKey, oKey,
		cm.MustModule("HashBuild"), cm.MustModule("HashProbe"))
	mj := NewMergeJoin(NewSeqScan(li, nil, nil), NewSeqScan(orders, nil, nil), liKey, oKey, cm.MustModule("MergeJoin"))
	srt := NewSort(NewSeqScan(li, nil, nil), []SortKey{{Expr: liKey, Desc: true}}, nil)
	mat := NewMaterial(NewSeqScan(li, nil, nil), nil)
	fil := NewFilter(NewSeqScan(li, nil, nil), shipdateFilter(t, li.Schema(), "1995-06-17"), nil)
	agg := mustAgg(t, NewSeqScan(li, nil, nil))
	lim := NewLimit(NewSeqScan(li, nil, nil), 3)
	ifs, err := NewIndexFullScan(orders, orders.IndexOn("o_orderkey"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	width := len(li.Schema()) + len(orders.Schema())
	cases := []struct {
		op           Operator
		nameContains string
		children     int
		blocking     bool
		schemaWidth  int
	}{
		{nl, "NestLoopJoin", 2, false, width},
		{hj, "HashJoin", 2, false, width},
		{mj, "MergeJoin", 2, false, width},
		{srt, "Sort", 1, true, len(li.Schema())},
		{mat, "Material", 1, true, len(li.Schema())},
		{fil, "Filter", 1, false, len(li.Schema())},
		{agg, "Aggregate", 1, false, 1},
		{lim, "Limit(3)", 1, false, len(li.Schema())},
		{ifs, "IndexFullScan", 0, false, len(orders.Schema())},
		{inner, "IndexLookup", 0, false, len(orders.Schema())},
	}
	for _, c := range cases {
		if !strings.Contains(c.op.Name(), c.nameContains) {
			t.Errorf("name %q missing %q", c.op.Name(), c.nameContains)
		}
		if len(c.op.Children()) != c.children {
			t.Errorf("%s children = %d, want %d", c.op.Name(), len(c.op.Children()), c.children)
		}
		if c.op.Blocking() != c.blocking {
			t.Errorf("%s blocking = %v", c.op.Name(), c.op.Blocking())
		}
		if len(c.op.Schema()) != c.schemaWidth {
			t.Errorf("%s schema width = %d, want %d", c.op.Name(), len(c.op.Schema()), c.schemaWidth)
		}
	}
	if hj.Module() != cm.MustModule("HashProbe") || hj.BuildModule() != cm.MustModule("HashBuild") {
		t.Error("hash join module accessors wrong")
	}
	if mj.Module() != cm.MustModule("MergeJoin") || nl.Module() != cm.MustModule("NestLoop") {
		t.Error("join module accessors wrong")
	}
	if lim.Module() != nil {
		t.Error("limit must be module-less")
	}
	// Trace labels settable everywhere.
	nl.SetTraceLabel('x')
	hj.SetTraceLabel('x')
	mj.SetTraceLabel('x')
	srt.SetTraceLabel('x')
	mat.SetTraceLabel('x')
	fil.SetTraceLabel('x')
	ifs.SetTraceLabel('x')
	inner.SetTraceLabel('x')
}

func TestAggFuncNames(t *testing.T) {
	v := expr.NewColRef(0, "v", storage.TypeInt64)
	got := AggFuncNames([]expr.AggSpec{
		{Func: expr.AggCountStar},
		{Func: expr.AggCount, Arg: v},
		{Func: expr.AggSum, Arg: v},
		{Func: expr.AggAvg, Arg: v},
		{Func: expr.AggMin, Arg: v},
		{Func: expr.AggMax, Arg: v},
	})
	want := "count count sum avg min max"
	if strings.Join(got, " ") != want {
		t.Errorf("AggFuncNames = %v", got)
	}
}

func TestKeyEvalErrors(t *testing.T) {
	sch := storage.Schema{{Name: "s", Type: storage.TypeString}}
	rows := []storage.Row{{storage.NewString("x")}}
	k := expr.NewColRef(0, "s", storage.TypeString)
	hj := NewHashJoin(NewValues(sch, rows), NewValues(sch, rows), k, k, nil, nil)
	ctx := &Context{Catalog: testDB}
	if err := hj.Open(ctx); err == nil {
		// build side evaluates the key during Open
		t.Error("string join key accepted")
	}
}

func TestInstrumentedBranchOutcomesVary(t *testing.T) {
	// The predicate outcome feeds data-dependent branch sites: a highly
	// selective and an unselective scan must produce different
	// misprediction profiles.
	cm := codemodel.NewCatalog()
	li := tbl(t, "lineitem")
	run := func(cutoff string) uint64 {
		ctx := instrumentedCtx(t, cm)
		scan := NewSeqScan(li, shipdateFilter(t, li.Schema(), cutoff), cm.MustModule("SeqScanPred"))
		if _, err := Run(ctx, scan); err != nil {
			t.Fatal(err)
		}
		return ctx.CPU.Counters().Mispredicts
	}
	selective := run("1992-03-01") // almost never true
	balanced := run("1995-06-17")  // ~50/50
	if balanced <= selective {
		t.Errorf("balanced predicate mispredicts (%d) not above selective (%d)", balanced, selective)
	}
}
