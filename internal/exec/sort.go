package exec

import (
	"fmt"
	"sort"
	"strings"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/expr"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// SortKey is one ORDER BY item.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort is the blocking sort operator. It drains its child on the first
// Next, sorts in memory (the paper's setup gives sorting enough memory to
// never spill), and then streams the sorted rows. Because it already
// executes its input in one long batch, the plan refinement algorithm never
// puts a buffer above it (paper §6).
type Sort struct {
	Child Operator
	Keys  []SortKey

	module *codemodel.Module
	label  byte
	stats  *OpStats
	fault  *faultinject.Point

	rows    []storage.Row
	keys    [][]storage.Value
	addrs   []uint64
	memUsed int64
	pos     int
	sorted  bool
	opened  bool
}

// NewSort constructs the operator; module may be nil.
func NewSort(child Operator, keys []SortKey, module *codemodel.Module) *Sort {
	return &Sort{Child: child, Keys: keys, module: module, label: 'O'}
}

// SetTraceLabel sets the trace label.
func (s *Sort) SetTraceLabel(b byte) { s.label = b }

// Open implements Operator.
func (s *Sort) Open(ctx *Context) error {
	s.stats = ctx.StatsFor(s, s.Name())
	if s.stats != nil {
		defer s.stats.EndOpen(ctx, s.stats.Begin(ctx))
	}
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	s.fault = ctx.FaultPoint(s.Name() + ":next")
	s.rows, s.keys, s.addrs = nil, nil, nil
	ctx.ShrinkMem(s.memUsed) // reopen without Close: release stale charges
	s.memUsed = 0
	s.pos, s.sorted = 0, false
	s.opened = true
	return nil
}

// fill drains the child and sorts. Per input tuple the sort module runs
// once (tuple insertion); the sort itself charges per-comparison cost.
func (s *Sort) fill(ctx *Context) error {
	arena := NewArena(ctx.CPU)
	for {
		if err := ctx.Canceled(); err != nil {
			return err
		}
		row, err := s.Child.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keys := make([]storage.Value, len(s.Keys))
		for i, k := range s.Keys {
			v, err := k.Expr.Eval(row)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		ctx.ExecModule(s.module, ctx.DataBits(true))
		if err := ctx.GrowMem(int64(row.ByteSize())); err != nil {
			return err
		}
		s.memUsed += int64(row.ByteSize())
		addr := arena.Alloc(row.ByteSize())
		ctx.Write(addr, row.ByteSize())
		s.rows = append(s.rows, row)
		s.keys = append(s.keys, keys)
		s.addrs = append(s.addrs, addr)
	}

	idx := make([]int, len(s.rows))
	for i := range idx {
		idx[i] = i
	}
	cpu := ctx.CPU
	var comparePC uint64
	if s.module != nil && len(s.module.Sites()) > 0 {
		comparePC = s.module.Sites()[0].PC
	}
	less := func(i, j int) bool {
		a, b := idx[i], idx[j]
		result := false
		ka, kb := s.keys[a], s.keys[b]
		for i := range ka {
			c := storage.Compare(ka[i], kb[i])
			if s.Keys[i].Desc {
				c = -c
			}
			if c != 0 {
				result = c < 0
				break
			}
		}
		if cpu != nil {
			// Comparator cost: two key loads, ~30 µops, one data branch.
			cpu.DataRead(s.addrs[a], 16)
			cpu.DataRead(s.addrs[b], 16)
			cpu.AddUops(30)
			if comparePC != 0 {
				cpu.ExecBranch(comparePC, result)
			}
		}
		return result
	}
	sort.SliceStable(idx, less)

	rows := make([]storage.Row, len(idx))
	addrs := make([]uint64, len(idx))
	for i, j := range idx {
		rows[i] = s.rows[j]
		addrs[i] = s.addrs[j]
	}
	s.rows, s.addrs = rows, addrs
	s.keys = nil
	s.sorted = true
	return nil
}

// Next implements Operator.
func (s *Sort) Next(ctx *Context) (out storage.Row, err error) {
	if !s.opened {
		return nil, errNotOpen(s.Name())
	}
	if s.stats != nil {
		defer s.stats.EndNext(ctx, s.stats.Begin(ctx), &out)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(s.label, s.Name())
	}
	if err := s.fault.Fire(); err != nil {
		return nil, err
	}
	if !s.sorted {
		if err := s.fill(ctx); err != nil {
			return nil, err
		}
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	ctx.Read(s.addrs[s.pos], row.ByteSize())
	ctx.ExecModule(s.module, ctx.DataBits(true))
	s.pos++
	return row, nil
}

// Close implements Operator.
func (s *Sort) Close(ctx *Context) error {
	s.opened = false
	s.rows, s.keys, s.addrs = nil, nil, nil
	ctx.ShrinkMem(s.memUsed)
	s.memUsed = 0
	return s.Child.Close(ctx)
}

// Schema implements Operator.
func (s *Sort) Schema() storage.Schema { return s.Child.Schema() }

// Children implements Operator.
func (s *Sort) Children() []Operator { return []Operator{s.Child} }

// Name implements Operator.
func (s *Sort) Name() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return fmt.Sprintf("Sort(%s)", strings.Join(parts, ", "))
}

// Module implements Operator.
func (s *Sort) Module() *codemodel.Module { return s.module }

// Blocking implements Operator.
func (s *Sort) Blocking() bool { return true }
