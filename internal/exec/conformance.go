package exec

import (
	"fmt"
	"testing"
)

// Conformance checks an operator against the open-next-close lifecycle
// contract every engine component relies on:
//
//   - a drained operator returns the same row count after reopening
//   - Open is idempotent (a second Open before draining resets cleanly)
//   - Next after Close errors instead of producing stale rows
//   - Close is idempotent
//
// mk must construct a fresh operator tree over the same input each call;
// the harness drives each instance uninstrumented. It is exported (rather
// than living in a _test file) so internal/core and internal/vec run the
// same checks over buffers, batch operators and adapters.
func Conformance(t testing.TB, name string, mk func() Operator) {
	t.Helper()

	baseline, err := drain(mk())
	if err != nil {
		t.Fatalf("%s: baseline run: %v", name, err)
	}

	// Open-twice: a second Open must reset, not corrupt, state.
	op := mk()
	ctx := &Context{}
	if err := op.Open(ctx); err != nil {
		t.Fatalf("%s: first Open: %v", name, err)
	}
	if err := op.Open(ctx); err != nil {
		t.Fatalf("%s: second Open: %v", name, err)
	}
	n, err := drainOpened(ctx, op)
	if err != nil {
		t.Fatalf("%s: drain after double Open: %v", name, err)
	}
	if n != baseline {
		t.Errorf("%s: double Open changed row count: %d, want %d", name, n, baseline)
	}

	// Next-after-Close must error.
	op = mk()
	ctx = &Context{}
	if err := op.Open(ctx); err != nil {
		t.Fatalf("%s: Open: %v", name, err)
	}
	if err := op.Close(ctx); err != nil {
		t.Fatalf("%s: Close: %v", name, err)
	}
	if _, err := op.Next(ctx); err == nil {
		t.Errorf("%s: Next after Close succeeded, want error", name)
	}

	// Close-idempotent.
	if err := op.Close(ctx); err != nil {
		t.Errorf("%s: second Close: %v", name, err)
	}

	// Reopen after Close must produce the full result again.
	n, err = drainOpened(ctx, openFresh(ctx, op))
	if err != nil {
		t.Fatalf("%s: drain after reopen: %v", name, err)
	}
	if n != baseline {
		t.Errorf("%s: reopen changed row count: %d, want %d", name, n, baseline)
	}
}

// openFresh opens op, panicking on error (callers just checked Close).
func openFresh(ctx *Context, op Operator) Operator {
	if err := op.Open(ctx); err != nil {
		panic(fmt.Sprintf("exec: conformance reopen: %v", err))
	}
	return op
}

// drain runs a fresh operator to completion and returns its row count.
func drain(op Operator) (int, error) {
	ctx := &Context{}
	if err := op.Open(ctx); err != nil {
		return 0, err
	}
	return drainOpened(ctx, op)
}

// drainOpened pulls an already-open operator dry and closes it.
func drainOpened(ctx *Context, op Operator) (int, error) {
	n := 0
	for {
		row, err := op.Next(ctx)
		if err != nil {
			_ = op.Close(ctx)
			return 0, err
		}
		if row == nil {
			break
		}
		n++
	}
	return n, op.Close(ctx)
}
