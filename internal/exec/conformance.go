package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// Conformance checks an operator against the open-next-close lifecycle
// contract every engine component relies on:
//
//   - a drained operator returns the same row count after reopening
//   - Open is idempotent (a second Open before draining resets cleanly)
//   - Next after Close errors instead of producing stale rows
//   - Close is idempotent
//   - an early Close (mid-stream) is clean: the operator can be reopened
//     and still produces the full result
//   - cancellation mid-stream is bounded: once the execution context is
//     canceled the operator either surfaces an error wrapping
//     context.Canceled or finishes its remaining rows, but never exceeds
//     its row count and never hangs
//
// mk must construct a fresh operator tree over the same input each call;
// the harness drives each instance uninstrumented. It is exported (rather
// than living in a _test file) so internal/core and internal/vec run the
// same checks over buffers, batch operators and adapters.
func Conformance(t testing.TB, name string, mk func() Operator) {
	t.Helper()

	baseline, err := drain(mk())
	if err != nil {
		t.Fatalf("%s: baseline run: %v", name, err)
	}

	// Open-twice: a second Open must reset, not corrupt, state.
	op := mk()
	ctx := &Context{}
	if err := op.Open(ctx); err != nil {
		t.Fatalf("%s: first Open: %v", name, err)
	}
	if err := op.Open(ctx); err != nil {
		t.Fatalf("%s: second Open: %v", name, err)
	}
	n, err := drainOpened(ctx, op)
	if err != nil {
		t.Fatalf("%s: drain after double Open: %v", name, err)
	}
	if n != baseline {
		t.Errorf("%s: double Open changed row count: %d, want %d", name, n, baseline)
	}

	// Next-after-Close must error.
	op = mk()
	ctx = &Context{}
	if err := op.Open(ctx); err != nil {
		t.Fatalf("%s: Open: %v", name, err)
	}
	if err := op.Close(ctx); err != nil {
		t.Fatalf("%s: Close: %v", name, err)
	}
	if _, err := op.Next(ctx); err == nil {
		t.Errorf("%s: Next after Close succeeded, want error", name)
	}

	// Close-idempotent.
	if err := op.Close(ctx); err != nil {
		t.Errorf("%s: second Close: %v", name, err)
	}

	// Reopen after Close must produce the full result again.
	n, err = drainOpened(ctx, openFresh(ctx, op))
	if err != nil {
		t.Fatalf("%s: drain after reopen: %v", name, err)
	}
	if n != baseline {
		t.Errorf("%s: reopen changed row count: %d, want %d", name, n, baseline)
	}

	// Early Close: abandoning a stream after one row must leave the
	// operator reopenable with the full result intact — the contract the
	// facade's Rows.Close relies on.
	op = mk()
	ctx = &Context{}
	if err := op.Open(ctx); err != nil {
		t.Fatalf("%s: Open before early Close: %v", name, err)
	}
	if baseline > 0 {
		if _, err := op.Next(ctx); err != nil {
			t.Fatalf("%s: Next before early Close: %v", name, err)
		}
	}
	if err := op.Close(ctx); err != nil {
		t.Fatalf("%s: early Close: %v", name, err)
	}
	n, err = drainOpened(ctx, openFresh(ctx, op))
	if err != nil {
		t.Fatalf("%s: drain after early Close: %v", name, err)
	}
	if n != baseline {
		t.Errorf("%s: early Close lost rows on reopen: %d, want %d", name, n, baseline)
	}

	// Cancellation mid-stream. Blocking operators that already hold their
	// result in memory may legitimately run to EOF; everything else must
	// surface the context error. Either way the operator must terminate
	// within its row count and an error, if any, must wrap the context's.
	op = mk()
	cctx, cancel := context.WithCancel(context.Background())
	ctx = &Context{Ctx: cctx}
	if err := op.Open(ctx); err != nil {
		t.Fatalf("%s: Open with context: %v", name, err)
	}
	if baseline > 0 {
		if _, err := op.Next(ctx); err != nil {
			t.Fatalf("%s: Next before cancel: %v", name, err)
		}
	}
	cancel()
	served, errored := 0, false
	for served <= baseline {
		row, err := op.Next(ctx)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s: post-cancel error %v does not wrap context.Canceled", name, err)
			}
			errored = true
			break
		}
		if row == nil {
			break
		}
		served++
	}
	if !errored && served > baseline {
		t.Errorf("%s: produced more than %d rows after cancellation", name, baseline)
	}
	if err := op.Close(ctx); err != nil {
		t.Errorf("%s: Close after cancellation: %v", name, err)
	}
}

// openFresh opens op, panicking on error (callers just checked Close).
func openFresh(ctx *Context, op Operator) Operator {
	if err := op.Open(ctx); err != nil {
		panic(fmt.Sprintf("exec: conformance reopen: %v", err))
	}
	return op
}

// drain runs a fresh operator to completion and returns its row count.
func drain(op Operator) (int, error) {
	ctx := &Context{}
	if err := op.Open(ctx); err != nil {
		return 0, err
	}
	return drainOpened(ctx, op)
}

// drainOpened pulls an already-open operator dry and closes it.
func drainOpened(ctx *Context, op Operator) (int, error) {
	n := 0
	for {
		row, err := op.Next(ctx)
		if err != nil {
			_ = op.Close(ctx)
			return 0, err
		}
		if row == nil {
			break
		}
		n++
	}
	return n, op.Close(ctx)
}
