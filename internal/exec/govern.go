package exec

import (
	"errors"
	"fmt"
	"runtime/debug"

	"bufferdb/internal/storage"
)

// ErrDeadlineExceeded is the sentinel wrapped when a query's deadline
// expires mid-execution. The wrapped chain also carries
// context.DeadlineExceeded, so both errors.Is tests hold.
var ErrDeadlineExceeded = errors.New("query deadline exceeded")

// ErrOperatorPanic is the sentinel wrapped when an operator panics inside a
// drive loop or an exchange worker. The panic is contained: the plan tears
// down, goroutines exit, and the query surfaces a typed error instead of
// crashing the process.
var ErrOperatorPanic = errors.New("operator panicked")

// PanicError converts a recovered panic value into the typed, wrapped error
// the drive loops surface. When the panic value is itself an error (the
// fault injector's PanicValue, a runtime error, …) it stays on the unwrap
// chain so callers can still errors.Is against it.
func PanicError(name string, recovered any) error {
	if err, ok := recovered.(error); ok {
		return fmt.Errorf("exec: %w in %s: %w\n%s", ErrOperatorPanic, name, err, debug.Stack())
	}
	return fmt.Errorf("exec: %w in %s: %v\n%s", ErrOperatorPanic, name, recovered, debug.Stack())
}

// CallOpen invokes op.Open, converting a panic into a wrapped
// ErrOperatorPanic.
func CallOpen(ctx *Context, op Operator) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = PanicError(op.Name(), r)
		}
	}()
	return op.Open(ctx)
}

// CallNext invokes op.Next, converting a panic into a wrapped
// ErrOperatorPanic.
func CallNext(ctx *Context, op Operator) (row storage.Row, err error) {
	defer func() {
		if r := recover(); r != nil {
			row, err = nil, PanicError(op.Name(), r)
		}
	}()
	return op.Next(ctx)
}

// CallClose invokes op.Close, converting a panic into a wrapped
// ErrOperatorPanic — teardown must never take the process down with it.
func CallClose(ctx *Context, op Operator) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = PanicError(op.Name(), r)
		}
	}()
	return op.Close(ctx)
}
