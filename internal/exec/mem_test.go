package exec

import (
	"errors"
	"sync"
	"testing"
)

func TestMemTrackerBudget(t *testing.T) {
	q := NewMemTracker("query", 100, nil)
	if err := q.Grow(60); err != nil {
		t.Fatalf("Grow(60): %v", err)
	}
	if err := q.Grow(50); !errors.Is(err, ErrMemoryBudgetExceeded) {
		t.Fatalf("Grow past budget: got %v, want ErrMemoryBudgetExceeded", err)
	}
	if got := q.Bytes(); got != 60 {
		t.Fatalf("rejected Grow changed accounting: %d, want 60", got)
	}
	q.Shrink(60)
	if got := q.Bytes(); got != 0 {
		t.Fatalf("Bytes after Shrink = %d, want 0", got)
	}
	if got := q.Peak(); got != 60 {
		t.Fatalf("Peak = %d, want 60", got)
	}
}

func TestMemTrackerHierarchy(t *testing.T) {
	proc := NewMemTracker("process", 100, nil)
	a := NewMemTracker("a", 0, proc)
	b := NewMemTracker("b", 0, proc)
	if err := a.Grow(70); err != nil {
		t.Fatalf("a.Grow: %v", err)
	}
	// b is unbudgeted but the parent rejects; nothing may stick anywhere.
	if err := b.Grow(40); !errors.Is(err, ErrMemoryBudgetExceeded) {
		t.Fatalf("parent limit not enforced: %v", err)
	}
	if got := b.Bytes(); got != 0 {
		t.Fatalf("failed child charge stuck: %d", got)
	}
	if got := proc.Bytes(); got != 70 {
		t.Fatalf("process bytes = %d, want 70", got)
	}
	a.ReleaseAll()
	if got := proc.Bytes(); got != 0 {
		t.Fatalf("ReleaseAll left %d bytes on the parent", got)
	}
}

func TestMemTrackerNilInert(t *testing.T) {
	var tr *MemTracker
	if err := tr.Grow(1 << 40); err != nil {
		t.Fatalf("nil Grow: %v", err)
	}
	tr.Shrink(5)
	tr.ReleaseAll()
	if tr.Bytes() != 0 || tr.Peak() != 0 {
		t.Fatalf("nil tracker reported usage")
	}
}

func TestMemTrackerConcurrent(t *testing.T) {
	proc := NewMemTracker("process", 0, nil)
	q := NewMemTracker("query", 0, proc)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := q.Grow(16); err != nil {
					t.Errorf("Grow: %v", err)
					return
				}
			}
			for i := 0; i < 1000; i++ {
				q.Shrink(16)
			}
		}()
	}
	wg.Wait()
	if q.Bytes() != 0 || proc.Bytes() != 0 {
		t.Fatalf("concurrent grow/shrink left %d/%d bytes", q.Bytes(), proc.Bytes())
	}
}

func TestMemTrackerOverShrinkClamps(t *testing.T) {
	proc := NewMemTracker("process", 0, nil)
	q := NewMemTracker("query", 0, proc)
	if err := q.Grow(10); err != nil {
		t.Fatal(err)
	}
	q.Shrink(25) // accounting bug upstream: must clamp, not go negative
	if got := q.Bytes(); got != 0 {
		t.Fatalf("Bytes = %d, want 0", got)
	}
	if got := proc.Bytes(); got != 0 {
		t.Fatalf("parent Bytes = %d, want 0", got)
	}
}
