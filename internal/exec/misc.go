package exec

import (
	"fmt"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// Material materializes its child's entire output on the first Next and
// then streams it — PostgreSQL's Material node, which many TPC-H subplans
// introduce and which (as the paper notes in §7.6) already provides the
// batching that explicit buffering would otherwise add.
type Material struct {
	Child Operator

	module *codemodel.Module
	label  byte
	stats  *OpStats
	fault  *faultinject.Point

	rows    []storage.Row
	addrs   []uint64
	memUsed int64
	pos     int
	filled  bool
	opened  bool
}

// NewMaterial constructs the operator; module may be nil.
func NewMaterial(child Operator, module *codemodel.Module) *Material {
	return &Material{Child: child, module: module, label: 'T'}
}

// SetTraceLabel sets the trace label.
func (m *Material) SetTraceLabel(b byte) { m.label = b }

// Open implements Operator.
func (m *Material) Open(ctx *Context) error {
	m.stats = ctx.StatsFor(m, m.Name())
	if m.stats != nil {
		defer m.stats.EndOpen(ctx, m.stats.Begin(ctx))
	}
	if err := m.Child.Open(ctx); err != nil {
		return err
	}
	m.fault = ctx.FaultPoint(m.Name() + ":next")
	m.rows, m.addrs = nil, nil
	ctx.ShrinkMem(m.memUsed) // reopen without Close: release stale charges
	m.memUsed = 0
	m.pos, m.filled = 0, false
	m.opened = true
	return nil
}

// Next implements Operator.
func (m *Material) Next(ctx *Context) (out storage.Row, err error) {
	if !m.opened {
		return nil, errNotOpen(m.Name())
	}
	if m.stats != nil {
		defer m.stats.EndNext(ctx, m.stats.Begin(ctx), &out)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(m.label, m.Name())
	}
	if err := m.fault.Fire(); err != nil {
		return nil, err
	}
	if !m.filled {
		arena := NewArena(ctx.CPU)
		for {
			if err := ctx.Canceled(); err != nil {
				return nil, err
			}
			row, err := m.Child.Next(ctx)
			if err != nil {
				return nil, err
			}
			if row == nil {
				break
			}
			if err := ctx.GrowMem(int64(row.ByteSize())); err != nil {
				return nil, err
			}
			m.memUsed += int64(row.ByteSize())
			addr := arena.Alloc(row.ByteSize())
			ctx.Write(addr, row.ByteSize())
			ctx.ExecModule(m.module, ctx.DataBits(true))
			m.rows = append(m.rows, row)
			m.addrs = append(m.addrs, addr)
		}
		m.filled = true
	}
	if m.pos >= len(m.rows) {
		return nil, nil
	}
	row := m.rows[m.pos]
	ctx.Read(m.addrs[m.pos], row.ByteSize())
	ctx.ExecModule(m.module, ctx.DataBits(true))
	m.pos++
	return row, nil
}

// Close implements Operator.
func (m *Material) Close(ctx *Context) error {
	m.opened = false
	m.rows, m.addrs = nil, nil
	ctx.ShrinkMem(m.memUsed)
	m.memUsed = 0
	return m.Child.Close(ctx)
}

// Schema implements Operator.
func (m *Material) Schema() storage.Schema { return m.Child.Schema() }

// Children implements Operator.
func (m *Material) Children() []Operator { return []Operator{m.Child} }

// Name implements Operator.
func (m *Material) Name() string { return "Material" }

// Module implements Operator.
func (m *Material) Module() *codemodel.Module { return m.module }

// Blocking implements Operator.
func (m *Material) Blocking() bool { return true }

// Limit passes through the first N rows of its child.
type Limit struct {
	Child Operator
	N     int

	stats   *OpStats
	emitted int
	opened  bool
}

// NewLimit constructs the operator.
func NewLimit(child Operator, n int) *Limit {
	return &Limit{Child: child, N: n}
}

// Open implements Operator.
func (l *Limit) Open(ctx *Context) error {
	l.stats = ctx.StatsFor(l, l.Name())
	if l.stats != nil {
		defer l.stats.EndOpen(ctx, l.stats.Begin(ctx))
	}
	l.emitted = 0
	l.opened = true
	return l.Child.Open(ctx)
}

// Next implements Operator.
func (l *Limit) Next(ctx *Context) (out storage.Row, err error) {
	if !l.opened {
		return nil, errNotOpen(l.Name())
	}
	if l.stats != nil {
		defer l.stats.EndNext(ctx, l.stats.Begin(ctx), &out)
	}
	if l.emitted >= l.N {
		return nil, nil
	}
	row, err := l.Child.Next(ctx)
	if err != nil || row == nil {
		return nil, err
	}
	l.emitted++
	return row, nil
}

// Close implements Operator.
func (l *Limit) Close(ctx *Context) error {
	l.opened = false
	return l.Child.Close(ctx)
}

// Schema implements Operator.
func (l *Limit) Schema() storage.Schema { return l.Child.Schema() }

// Children implements Operator.
func (l *Limit) Children() []Operator { return []Operator{l.Child} }

// Name implements Operator.
func (l *Limit) Name() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Module implements Operator: Limit is too small to model.
func (l *Limit) Module() *codemodel.Module { return nil }

// Blocking implements Operator.
func (l *Limit) Blocking() bool { return false }

// Values is a leaf operator over fixed rows, used by tests and examples.
type Values struct {
	Rows   []storage.Row
	Sch    storage.Schema
	module *codemodel.Module
	label  byte

	stats  *OpStats
	pos    int
	opened bool
}

// NewValues constructs the fixture operator.
func NewValues(sch storage.Schema, rows []storage.Row) *Values {
	return &Values{Rows: rows, Sch: sch, label: 'V'}
}

// SetModule attaches an instruction-footprint module, letting tests drive
// the simulator with arbitrary row streams.
func (v *Values) SetModule(m *codemodel.Module) { v.module = m }

// SetTraceLabel sets the trace label.
func (v *Values) SetTraceLabel(b byte) { v.label = b }

// Open implements Operator.
func (v *Values) Open(ctx *Context) error {
	v.stats = ctx.StatsFor(v, v.Name())
	if v.stats != nil {
		defer v.stats.EndOpen(ctx, v.stats.Begin(ctx))
	}
	v.pos = 0
	v.opened = true
	return nil
}

// Next implements Operator.
func (v *Values) Next(ctx *Context) (out storage.Row, err error) {
	if !v.opened {
		return nil, errNotOpen(v.Name())
	}
	if v.stats != nil {
		defer v.stats.EndNext(ctx, v.stats.Begin(ctx), &out)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(v.label, v.Name())
	}
	if v.pos >= len(v.Rows) {
		return nil, nil
	}
	row := v.Rows[v.pos]
	v.pos++
	ctx.ExecModule(v.module, ctx.DataBits(true))
	return row, nil
}

// Close implements Operator.
func (v *Values) Close(*Context) error {
	v.opened = false
	return nil
}

// Schema implements Operator.
func (v *Values) Schema() storage.Schema { return v.Sch }

// Children implements Operator.
func (v *Values) Children() []Operator { return nil }

// Name implements Operator.
func (v *Values) Name() string { return fmt.Sprintf("Values(%d rows)", len(v.Rows)) }

// Module implements Operator.
func (v *Values) Module() *codemodel.Module { return v.module }

// Blocking implements Operator.
func (v *Values) Blocking() bool { return false }
