package exec

import (
	"fmt"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// CachedRows streams rows adopted from the semantic reuse cache. It is the
// operator behind a spliced plan.KindCachedSource node: a full aggregate
// result on an aggregate hit, or an empty placeholder standing in for the
// drained build input of an adopted hash-join build side. The rows belong
// to the cache — they are shared, read-only, and their memory lives under
// the cache's reservation, so the operator charges nothing against the
// query's budget. The facade keeps the backing entry pinned for the
// cursor's lifetime.
type CachedRows struct {
	rows []storage.Row
	sch  storage.Schema

	stats  *OpStats
	fault  *faultinject.Point
	pos    int
	opened bool
}

// NewCachedRows constructs a cached-source operator over shared rows.
func NewCachedRows(sch storage.Schema, rows []storage.Row) *CachedRows {
	return &CachedRows{rows: rows, sch: sch}
}

// Open implements Operator.
func (c *CachedRows) Open(ctx *Context) error {
	c.stats = ctx.StatsFor(c, c.Name())
	if c.stats != nil {
		defer c.stats.EndOpen(ctx, c.stats.Begin(ctx))
	}
	c.fault = ctx.FaultPoint(c.Name() + ":next")
	c.pos = 0
	c.opened = true
	return nil
}

// Next implements Operator.
func (c *CachedRows) Next(ctx *Context) (out storage.Row, err error) {
	if !c.opened {
		return nil, errNotOpen(c.Name())
	}
	if c.stats != nil {
		defer c.stats.EndNext(ctx, c.stats.Begin(ctx), &out)
	}
	if err := c.fault.Fire(); err != nil {
		return nil, err
	}
	if err := ctx.Canceled(); err != nil {
		return nil, err
	}
	if c.pos >= len(c.rows) {
		return nil, nil
	}
	row := c.rows[c.pos]
	c.pos++
	return row, nil
}

// Close implements Operator.
func (c *CachedRows) Close(*Context) error {
	c.opened = false
	return nil
}

// Schema implements Operator.
func (c *CachedRows) Schema() storage.Schema { return c.sch }

// Children implements Operator.
func (c *CachedRows) Children() []Operator { return nil }

// Name implements Operator.
func (c *CachedRows) Name() string { return fmt.Sprintf("CachedSource(%d rows)", len(c.rows)) }

// Module implements Operator: replaying cached rows executes almost no
// code, which is the point.
func (c *CachedRows) Module() *codemodel.Module { return nil }

// Blocking implements Operator.
func (c *CachedRows) Blocking() bool { return false }
