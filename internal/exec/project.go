package exec

import (
	"fmt"
	"strings"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
)

// Filter drops rows that fail a predicate. PostgreSQL folds qualification
// into each operator's own code; this engine pushes single-relation
// predicates into scans the same way and uses Filter only for residual
// predicates above joins.
type Filter struct {
	Child Operator
	Pred  expr.Expr

	module *codemodel.Module
	label  byte
	stats  *OpStats
	opened bool
}

// NewFilter constructs the operator; module may be nil.
func NewFilter(child Operator, pred expr.Expr, module *codemodel.Module) *Filter {
	return &Filter{Child: child, Pred: pred, module: module, label: 'F'}
}

// SetTraceLabel sets the trace label.
func (f *Filter) SetTraceLabel(b byte) { f.label = b }

// Open implements Operator.
func (f *Filter) Open(ctx *Context) error {
	f.stats = ctx.StatsFor(f, f.Name())
	if f.stats != nil {
		defer f.stats.EndOpen(ctx, f.stats.Begin(ctx))
	}
	f.opened = true
	return f.Child.Open(ctx)
}

// Next implements Operator.
func (f *Filter) Next(ctx *Context) (out storage.Row, err error) {
	if !f.opened {
		return nil, errNotOpen(f.Name())
	}
	if f.stats != nil {
		defer f.stats.EndNext(ctx, f.stats.Begin(ctx), &out)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(f.label, f.Name())
	}
	for {
		row, err := f.Child.Next(ctx)
		if err != nil || row == nil {
			return nil, err
		}
		ok, err := expr.EvalBool(f.Pred, row)
		if err != nil {
			return nil, err
		}
		ctx.ExecModule(f.module, ctx.DataBits(ok))
		if ok {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close(ctx *Context) error {
	f.opened = false
	return f.Child.Close(ctx)
}

// Schema implements Operator.
func (f *Filter) Schema() storage.Schema { return f.Child.Schema() }

// Children implements Operator.
func (f *Filter) Children() []Operator { return []Operator{f.Child} }

// Name implements Operator.
func (f *Filter) Name() string { return fmt.Sprintf("Filter(%s)", f.Pred.String()) }

// Module implements Operator.
func (f *Filter) Module() *codemodel.Module { return f.module }

// Blocking implements Operator.
func (f *Filter) Blocking() bool { return false }

// Project evaluates a target list over each input row.
type Project struct {
	Child Operator
	Exprs []expr.Expr
	// Names are output column names, parallel to Exprs.
	Names []string

	module *codemodel.Module
	label  byte
	stats  *OpStats
	schema storage.Schema
	arena  *Arena
	opened bool
}

// NewProject constructs the operator; module may be nil.
func NewProject(child Operator, exprs []expr.Expr, names []string, module *codemodel.Module) (*Project, error) {
	if len(exprs) == 0 {
		return nil, fmt.Errorf("exec: Project needs a target list")
	}
	if len(names) != len(exprs) {
		return nil, fmt.Errorf("exec: Project names/exprs mismatch: %d vs %d", len(names), len(exprs))
	}
	p := &Project{Child: child, Exprs: exprs, Names: names, module: module, label: 'J'}
	for i, e := range exprs {
		p.schema = append(p.schema, storage.Column{Name: names[i], Type: e.Type()})
	}
	return p, nil
}

// SetTraceLabel sets the trace label.
func (p *Project) SetTraceLabel(b byte) { p.label = b }

// Open implements Operator.
func (p *Project) Open(ctx *Context) error {
	p.stats = ctx.StatsFor(p, p.Name())
	if p.stats != nil {
		defer p.stats.EndOpen(ctx, p.stats.Begin(ctx))
	}
	p.arena = NewArena(ctx.CPU)
	p.opened = true
	return p.Child.Open(ctx)
}

// Next implements Operator.
func (p *Project) Next(ctx *Context) (res storage.Row, err error) {
	if !p.opened {
		return nil, errNotOpen(p.Name())
	}
	if p.stats != nil {
		defer p.stats.EndNext(ctx, p.stats.Begin(ctx), &res)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(p.label, p.Name())
	}
	row, err := p.Child.Next(ctx)
	if err != nil || row == nil {
		return nil, err
	}
	out := make(storage.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	ctx.ExecModule(p.module, ctx.DataBits(true))
	ctx.Write(p.arena.Alloc(out.ByteSize()), out.ByteSize())
	return out, nil
}

// Close implements Operator.
func (p *Project) Close(ctx *Context) error {
	p.opened = false
	return p.Child.Close(ctx)
}

// Schema implements Operator.
func (p *Project) Schema() storage.Schema { return p.schema }

// Children implements Operator.
func (p *Project) Children() []Operator { return []Operator{p.Child} }

// Name implements Operator.
func (p *Project) Name() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return fmt.Sprintf("Project(%s)", strings.Join(parts, ", "))
}

// Module implements Operator.
func (p *Project) Module() *codemodel.Module { return p.module }

// Blocking implements Operator.
func (p *Project) Blocking() bool { return false }
