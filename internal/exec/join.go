package exec

import (
	"fmt"
	"time"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/expr"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// hashEntryOverhead approximates the per-row bookkeeping of the Go map
// bucket and row-slice header a hash join or aggregate retains alongside
// the tuple bytes it charges to the memory tracker.
const hashEntryOverhead = 48

// keyEval evaluates a join key expression, enforcing the engine's rule that
// equi-join keys are BIGINT-typed (all TPC-H keys are).
func keyEval(e expr.Expr, row storage.Row) (int64, bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return 0, false, err
	}
	if v.IsNull() {
		return 0, false, nil
	}
	if v.Kind != storage.TypeInt64 {
		return 0, false, fmt.Errorf("exec: join key must be BIGINT, got %v", v.Kind)
	}
	return v.I, true, nil
}

// NestLoopJoin is an (index) nested-loop join: for each outer tuple it
// rescans the inner operator with the outer key and emits the
// concatenation of outer and inner rows.
type NestLoopJoin struct {
	Outer    Operator
	Inner    Rescannable
	OuterKey expr.Expr
	// Residual is an optional extra predicate over the concatenated row.
	Residual expr.Expr

	module *codemodel.Module
	label  byte
	stats  *OpStats
	fault  *faultinject.Point
	arena  *Arena
	schema storage.Schema

	outerRow storage.Row
	opened   bool
}

// NewNestLoopJoin constructs the join. module may be nil.
func NewNestLoopJoin(outer Operator, inner Rescannable, outerKey expr.Expr, residual expr.Expr, module *codemodel.Module) *NestLoopJoin {
	return &NestLoopJoin{
		Outer:    outer,
		Inner:    inner,
		OuterKey: outerKey,
		Residual: residual,
		module:   module,
		label:    'N',
		schema:   outer.Schema().Concat(inner.Schema()),
	}
}

// SetTraceLabel sets the trace label.
func (j *NestLoopJoin) SetTraceLabel(b byte) { j.label = b }

// Open implements Operator.
func (j *NestLoopJoin) Open(ctx *Context) error {
	j.stats = ctx.StatsFor(j, j.Name())
	if j.stats != nil {
		defer j.stats.EndOpen(ctx, j.stats.Begin(ctx))
	}
	if err := j.Outer.Open(ctx); err != nil {
		return err
	}
	if err := j.Inner.Open(ctx); err != nil {
		return err
	}
	j.fault = ctx.FaultPoint(j.Name() + ":next")
	j.arena = NewArena(ctx.CPU)
	j.outerRow = nil
	j.opened = true
	return nil
}

// Next implements Operator.
func (j *NestLoopJoin) Next(ctx *Context) (res storage.Row, err error) {
	if !j.opened {
		return nil, errNotOpen(j.Name())
	}
	if j.stats != nil {
		defer j.stats.EndNext(ctx, j.stats.Begin(ctx), &res)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(j.label, j.Name())
	}
	if err := j.fault.Fire(); err != nil {
		return nil, err
	}
	for {
		if j.outerRow == nil {
			row, err := j.Outer.Next(ctx)
			if err != nil {
				return nil, err
			}
			if row == nil {
				return nil, nil
			}
			j.outerRow = row
			key, ok, err := keyEval(j.OuterKey, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				// NULL key joins nothing.
				j.outerRow = nil
				continue
			}
			if err := j.Inner.Rescan(storage.NewInt(key)); err != nil {
				return nil, err
			}
		}
		inner, err := j.Inner.Next(ctx)
		if err != nil {
			return nil, err
		}
		if inner == nil {
			j.outerRow = nil
			ctx.ExecModule(j.module, ctx.DataBits(false))
			continue
		}
		out := j.outerRow.Concat(inner)
		if j.Residual != nil {
			match, err := expr.EvalBool(j.Residual, out)
			if err != nil {
				return nil, err
			}
			if !match {
				ctx.ExecModule(j.module, ctx.DataBits(false))
				continue
			}
		}
		ctx.ExecModule(j.module, ctx.DataBits(true))
		ctx.Write(j.arena.Alloc(out.ByteSize()), out.ByteSize())
		return out, nil
	}
}

// Close implements Operator.
func (j *NestLoopJoin) Close(ctx *Context) error {
	j.opened = false
	err1 := j.Outer.Close(ctx)
	err2 := j.Inner.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Operator.
func (j *NestLoopJoin) Schema() storage.Schema { return j.schema }

// Children implements Operator.
func (j *NestLoopJoin) Children() []Operator { return []Operator{j.Outer, j.Inner} }

// Name implements Operator.
func (j *NestLoopJoin) Name() string {
	return fmt.Sprintf("NestLoopJoin(key=%s)", j.OuterKey.String())
}

// Module implements Operator.
func (j *NestLoopJoin) Module() *codemodel.Module { return j.module }

// Blocking implements Operator.
func (j *NestLoopJoin) Blocking() bool { return false }

// HashJoin is an in-memory equi-hash-join. Open drains the build (inner)
// side into a hash table — the blocking build phase, a separate module in
// the paper's footprint analysis — and Next streams the probe (outer) side.
type HashJoin struct {
	Outer    Operator // probe side
	Inner    Operator // build side
	OuterKey expr.Expr
	InnerKey expr.Expr

	buildModule  *codemodel.Module
	probeModule  *codemodel.Module
	label        byte
	stats        *OpStats
	fault        *faultinject.Point
	buildFault   *faultinject.Point
	publishFault *faultinject.Point
	arena        *Arena
	schema       storage.Schema
	shared       *SharedBuild

	table        map[int64][]storage.Row
	memUsed      int64
	bucketRegion uint64
	bucketCount  uint64

	current    []storage.Row
	currentPos int
	outerRow   storage.Row
	opened     bool
}

// NewHashJoin constructs the join; modules may be nil.
func NewHashJoin(outer, inner Operator, outerKey, innerKey expr.Expr, buildModule, probeModule *codemodel.Module) *HashJoin {
	return &HashJoin{
		Outer:       outer,
		Inner:       inner,
		OuterKey:    outerKey,
		InnerKey:    innerKey,
		buildModule: buildModule,
		probeModule: probeModule,
		label:       'H',
		schema:      outer.Schema().Concat(inner.Schema()),
	}
}

// SetTraceLabel sets the trace label.
func (j *HashJoin) SetTraceLabel(b byte) { j.label = b }

// SetShared wires the build side to the semantic reuse cache; see
// SharedBuild. Must be set before Open.
func (j *HashJoin) SetShared(sb *SharedBuild) { j.shared = sb }

// bucketAddr maps a key to its simulated bucket address — a random-access
// pattern the prefetcher cannot cover, as with a real hash table.
func (j *HashJoin) bucketAddr(key int64) uint64 {
	if j.bucketRegion == 0 {
		return 0
	}
	x := uint64(key) * 0x9e3779b97f4a7c15
	x ^= x >> 32
	return j.bucketRegion + (x%j.bucketCount)*16
}

// Open implements Operator: it runs the build phase.
func (j *HashJoin) Open(ctx *Context) error {
	j.stats = ctx.StatsFor(j, j.Name())
	if j.stats != nil {
		defer j.stats.EndOpen(ctx, j.stats.Begin(ctx))
	}
	if err := j.Outer.Open(ctx); err != nil {
		return err
	}
	if err := j.Inner.Open(ctx); err != nil {
		return err
	}
	j.fault = ctx.FaultPoint(j.Name() + ":next")
	j.buildFault = ctx.FaultPoint(j.Name() + ":build")
	j.publishFault = ctx.FaultPoint(j.Name() + ":publish")
	j.arena = NewArena(ctx.CPU)
	j.table = make(map[int64][]storage.Row)
	ctx.ShrinkMem(j.memUsed) // reopen without Close: release stale charges
	j.memUsed = 0
	j.current, j.outerRow = nil, nil
	j.currentPos = 0

	// Size the simulated bucket array lazily from the first build; use a
	// fixed generous region.
	if ctx.CPU != nil {
		j.bucketCount = 1 << 16
		j.bucketRegion = ctx.CPU.AllocData(int(j.bucketCount) * 16)
	}
	if j.shared != nil && j.shared.Table != nil {
		// Reuse-cache hit: adopt the published build side instead of
		// draining the (already emptied) build input. The adopted table is
		// read-only and its bytes live under the cache's reservation, so
		// nothing is charged to this query.
		j.table = j.shared.Table
		j.opened = true
		return nil
	}
	buildStart := time.Now()
	buildArena := NewArena(ctx.CPU)
	for {
		// The build is a blocking loop: poll cancellation and deadlines so
		// a large build aborts promptly instead of outliving its query.
		if err := ctx.Canceled(); err != nil {
			return err
		}
		if err := j.buildFault.Fire(); err != nil {
			return err
		}
		row, err := j.Inner.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		key, ok, err := keyEval(j.InnerKey, row)
		if err != nil {
			return err
		}
		ctx.ExecModule(j.buildModule, ctx.DataBits(ok))
		if !ok {
			continue
		}
		charge := int64(row.ByteSize()) + hashEntryOverhead
		if err := ctx.GrowMem(charge); err != nil {
			return err
		}
		j.memUsed += charge
		j.table[key] = append(j.table[key], row)
		// Copy the tuple into hash-table memory and link the bucket.
		ctx.Write(buildArena.Alloc(row.ByteSize()), row.ByteSize())
		ctx.Write(j.bucketAddr(key), 16)
	}
	if j.shared != nil && j.shared.Publish != nil {
		// Reuse-cache miss: hand the finished build to the cache. The
		// publish fault fires first, so a poisoned build can never be
		// inserted and later served.
		if err := j.publishFault.Fire(); err != nil {
			return err
		}
		j.shared.Publish(j.table, j.memUsed, time.Since(buildStart))
	}
	j.opened = true
	return nil
}

// Next implements Operator: the probe phase.
func (j *HashJoin) Next(ctx *Context) (res storage.Row, err error) {
	if !j.opened {
		return nil, errNotOpen(j.Name())
	}
	if j.stats != nil {
		defer j.stats.EndNext(ctx, j.stats.Begin(ctx), &res)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(j.label, j.Name())
	}
	if err := j.fault.Fire(); err != nil {
		return nil, err
	}
	for {
		if j.currentPos < len(j.current) {
			inner := j.current[j.currentPos]
			j.currentPos++
			out := j.outerRow.Concat(inner)
			ctx.ExecModule(j.probeModule, ctx.DataBits(true))
			ctx.Read(j.bucketAddr(0), 16) // bucket chain advance
			ctx.Write(j.arena.Alloc(out.ByteSize()), out.ByteSize())
			return out, nil
		}
		row, err := j.Outer.Next(ctx)
		if err != nil {
			return nil, err
		}
		if row == nil {
			return nil, nil
		}
		key, ok, err := keyEval(j.OuterKey, row)
		if err != nil {
			return nil, err
		}
		if !ok {
			ctx.ExecModule(j.probeModule, ctx.DataBits(false))
			continue
		}
		ctx.Read(j.bucketAddr(key), 16)
		matches := j.table[key]
		ctx.ExecModule(j.probeModule, ctx.DataBits(len(matches) > 0))
		j.outerRow = row
		j.current = matches
		j.currentPos = 0
	}
}

// Close implements Operator.
func (j *HashJoin) Close(ctx *Context) error {
	j.opened = false
	j.table = nil
	ctx.ShrinkMem(j.memUsed)
	j.memUsed = 0
	err1 := j.Outer.Close(ctx)
	err2 := j.Inner.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Operator.
func (j *HashJoin) Schema() storage.Schema { return j.schema }

// Children implements Operator.
func (j *HashJoin) Children() []Operator { return []Operator{j.Outer, j.Inner} }

// Name implements Operator.
func (j *HashJoin) Name() string {
	return fmt.Sprintf("HashJoin(%s = %s)", j.OuterKey.String(), j.InnerKey.String())
}

// Module implements Operator: the probe module (the pipelined phase).
// The build module is reported through BuildModule.
func (j *HashJoin) Module() *codemodel.Module { return j.probeModule }

// BuildModule returns the blocking build phase's module.
func (j *HashJoin) BuildModule() *codemodel.Module { return j.buildModule }

// Blocking implements Operator: the probe phase pipelines (the build phase
// inside Open is the blocking part, which the planner models separately).
func (j *HashJoin) Blocking() bool { return false }

// MergeJoin joins two inputs sorted on their keys. Duplicate right-side key
// groups are buffered so every left row of a key joins the full group.
type MergeJoin struct {
	Left     Operator
	Right    Operator
	LeftKey  expr.Expr
	RightKey expr.Expr

	module *codemodel.Module
	label  byte
	stats  *OpStats
	fault  *faultinject.Point
	arena  *Arena
	schema storage.Schema

	leftRow   storage.Row
	leftKey   int64
	rightRow  storage.Row // lookahead
	rightKey  int64
	group     []storage.Row
	groupKey  int64
	groupPos  int
	rightDone bool
	opened    bool
}

// NewMergeJoin constructs the join; module may be nil.
func NewMergeJoin(left, right Operator, leftKey, rightKey expr.Expr, module *codemodel.Module) *MergeJoin {
	return &MergeJoin{
		Left:     left,
		Right:    right,
		LeftKey:  leftKey,
		RightKey: rightKey,
		module:   module,
		label:    'M',
		schema:   left.Schema().Concat(right.Schema()),
	}
}

// SetTraceLabel sets the trace label.
func (j *MergeJoin) SetTraceLabel(b byte) { j.label = b }

// Open implements Operator.
func (j *MergeJoin) Open(ctx *Context) error {
	j.stats = ctx.StatsFor(j, j.Name())
	if j.stats != nil {
		defer j.stats.EndOpen(ctx, j.stats.Begin(ctx))
	}
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	j.fault = ctx.FaultPoint(j.Name() + ":next")
	j.arena = NewArena(ctx.CPU)
	j.leftRow, j.rightRow, j.group = nil, nil, nil
	j.groupPos, j.rightDone = 0, false
	j.opened = true
	return nil
}

// advanceLeft pulls the next left row and its key.
func (j *MergeJoin) advanceLeft(ctx *Context) error {
	for {
		row, err := j.Left.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			j.leftRow = nil
			return nil
		}
		key, ok, err := keyEval(j.LeftKey, row)
		if err != nil {
			return err
		}
		ctx.ExecModule(j.module, ctx.DataBits(ok))
		if !ok {
			continue // NULL keys join nothing
		}
		j.leftRow, j.leftKey = row, key
		return nil
	}
}

// advanceRight pulls the next right row into the lookahead slot.
func (j *MergeJoin) advanceRight(ctx *Context) error {
	for {
		row, err := j.Right.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			j.rightRow = nil
			j.rightDone = true
			return nil
		}
		key, ok, err := keyEval(j.RightKey, row)
		if err != nil {
			return err
		}
		ctx.ExecModule(j.module, ctx.DataBits(ok))
		if !ok {
			continue
		}
		j.rightRow, j.rightKey = row, key
		return nil
	}
}

// loadGroup collects all right rows equal to the lookahead key.
func (j *MergeJoin) loadGroup(ctx *Context) error {
	j.group = j.group[:0]
	j.groupKey = j.rightKey
	for j.rightRow != nil && j.rightKey == j.groupKey {
		j.group = append(j.group, j.rightRow)
		if err := j.advanceRight(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator.
func (j *MergeJoin) Next(ctx *Context) (res storage.Row, err error) {
	if !j.opened {
		return nil, errNotOpen(j.Name())
	}
	if j.stats != nil {
		defer j.stats.EndNext(ctx, j.stats.Begin(ctx), &res)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(j.label, j.Name())
	}
	if err := j.fault.Fire(); err != nil {
		return nil, err
	}
	// Prime inputs on the first call.
	if j.leftRow == nil && j.group == nil && !j.rightDone {
		if err := j.advanceLeft(ctx); err != nil {
			return nil, err
		}
		if err := j.advanceRight(ctx); err != nil {
			return nil, err
		}
		if j.rightRow != nil {
			if err := j.loadGroup(ctx); err != nil {
				return nil, err
			}
		}
	}
	for {
		if j.leftRow == nil || (len(j.group) == 0 && j.rightDone) {
			return nil, nil
		}
		switch {
		case j.leftKey == j.groupKey && len(j.group) > 0:
			if j.groupPos < len(j.group) {
				out := j.leftRow.Concat(j.group[j.groupPos])
				j.groupPos++
				ctx.ExecModule(j.module, ctx.DataBits(true))
				ctx.Write(j.arena.Alloc(out.ByteSize()), out.ByteSize())
				return out, nil
			}
			j.groupPos = 0
			if err := j.advanceLeft(ctx); err != nil {
				return nil, err
			}
		case j.leftKey < j.groupKey || len(j.group) == 0:
			if err := j.advanceLeft(ctx); err != nil {
				return nil, err
			}
		default: // leftKey > groupKey
			if j.rightRow == nil {
				return nil, nil
			}
			if err := j.loadGroup(ctx); err != nil {
				return nil, err
			}
			j.groupPos = 0
		}
	}
}

// Close implements Operator.
func (j *MergeJoin) Close(ctx *Context) error {
	j.opened = false
	err1 := j.Left.Close(ctx)
	err2 := j.Right.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Operator.
func (j *MergeJoin) Schema() storage.Schema { return j.schema }

// Children implements Operator.
func (j *MergeJoin) Children() []Operator { return []Operator{j.Left, j.Right} }

// Name implements Operator.
func (j *MergeJoin) Name() string {
	return fmt.Sprintf("MergeJoin(%s = %s)", j.LeftKey.String(), j.RightKey.String())
}

// Module implements Operator.
func (j *MergeJoin) Module() *codemodel.Module { return j.module }

// Blocking implements Operator.
func (j *MergeJoin) Blocking() bool { return false }
