package exec

import (
	"sync"

	"bufferdb/internal/storage"
)

// OpStats accumulates one operator's runtime counters for one execution.
// Every operator — Volcano, buffer, and block-oriented alike — registers a
// handle at Open (Context.StatsFor) and feeds it from its hot path behind a
// single nil check, so a disabled collector costs one predictable branch
// per invocation and an enabled one never perturbs the simulated CPU: the
// collector only *reads* simulator state, it executes nothing on it.
//
// The simulated-CPU fields are inclusive: they cover the operator plus
// everything beneath it, summed over its Open and Next/NextBatch brackets.
// Renderers derive exclusive (self) attribution by subtracting children —
// see plan.BuildReport.
type OpStats struct {
	// Name is the operator's display name at registration time.
	Name string

	// Opens counts Open invocations (conformance reopens make this > 1).
	Opens uint64
	// Calls counts Next (Volcano) or NextBatch (block) invocations.
	Calls uint64
	// Rows counts rows produced.
	Rows uint64
	// Batches counts non-empty batches produced (block operators only).
	Batches uint64
	// Drains counts buffer/adapter refill runs — how many times the child
	// pipeline was executed in a burst (paper Fig. 1: one Drain is one
	// CCCC… run).
	Drains uint64
	// FillTuples counts tuples stored across all refills; FillTuples/Drains
	// is the achieved batch length, the quantity that decides whether a
	// buffer amortized its instruction reloads.
	FillTuples uint64
	// Partitions is an exchange operator's fan-out (0 elsewhere).
	Partitions int

	// Inclusive simulated-CPU attribution. All zero when the execution ran
	// without a simulated CPU.
	Cycles    float64
	Uops      uint64
	L1IMisses uint64
}

// AvgFill returns the mean tuples stored per drain run (0 when the operator
// never drained).
func (s *OpStats) AvgFill() float64 {
	if s.Drains == 0 {
		return 0
	}
	return float64(s.FillTuples) / float64(s.Drains)
}

// StatSnap is a point-in-time simulator snapshot used to bracket an
// operator invocation for inclusive attribution.
type StatSnap struct {
	cycles float64
	uops   uint64
	l1i    uint64
	valid  bool
}

// Begin snapshots the simulated CPU ahead of an operator invocation. With
// no CPU attached the snapshot is inert and End* only bump event counters.
func (s *OpStats) Begin(ctx *Context) StatSnap {
	if ctx.CPU == nil {
		return StatSnap{}
	}
	ctr := ctx.CPU.Counters()
	return StatSnap{cycles: ctx.CPU.TotalCycles(), uops: ctr.Uops, l1i: ctr.L1IMisses, valid: true}
}

// accumulate folds the delta since snap into the inclusive counters.
func (s *OpStats) accumulate(ctx *Context, snap StatSnap) {
	if !snap.valid {
		return
	}
	ctr := ctx.CPU.Counters()
	s.Cycles += ctx.CPU.TotalCycles() - snap.cycles
	s.Uops += ctr.Uops - snap.uops
	s.L1IMisses += ctr.L1IMisses - snap.l1i
}

// EndOpen closes an Open bracket.
func (s *OpStats) EndOpen(ctx *Context, snap StatSnap) {
	s.Opens++
	s.accumulate(ctx, snap)
}

// EndNext closes a Next bracket; row points at the invocation's named
// return value so a deferred call observes what was actually produced.
func (s *OpStats) EndNext(ctx *Context, snap StatSnap, row *storage.Row) {
	s.Calls++
	if *row != nil {
		s.Rows++
	}
	s.accumulate(ctx, snap)
}

// EndBatch closes a NextBatch bracket; batch points at the invocation's
// named return value (convert a *vec.Batch with (*[]storage.Row)(&out)).
func (s *OpStats) EndBatch(ctx *Context, snap StatSnap, batch *[]storage.Row) {
	s.Calls++
	if n := len(*batch); n > 0 {
		s.Batches++
		s.Rows += uint64(n)
	}
	s.accumulate(ctx, snap)
}

// Drained records one refill run that stored n tuples.
func (s *OpStats) Drained(n int) {
	s.Drains++
	s.FillTuples += uint64(n)
}

// StatsCollector is the per-execution registry of operator stats. It is
// deliberately per-execution state, like the CPU and the tracer: attach a
// fresh collector to a Context, run the plan, then read the handles back
// through Lookup. Registration is mutex-guarded because exchange workers
// open partition subtrees concurrently; each registered OpStats is then
// written by exactly one goroutine (the one driving that operator), so the
// hot path needs no synchronization.
type StatsCollector struct {
	mu  sync.Mutex
	ops map[any]*OpStats
}

// NewStatsCollector returns an empty collector.
func NewStatsCollector() *StatsCollector {
	return &StatsCollector{ops: make(map[any]*OpStats)}
}

// Register returns the stats handle for key (the operator instance),
// creating it on first use. Re-registration (operator reopen) returns the
// same handle so counters accumulate across reopens.
func (sc *StatsCollector) Register(key any, name string) *OpStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if s, ok := sc.ops[key]; ok {
		return s
	}
	s := &OpStats{Name: name}
	sc.ops[key] = s
	return s
}

// Lookup returns key's handle, or nil if the operator never registered
// (it was never opened).
func (sc *StatsCollector) Lookup(key any) *OpStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.ops[key]
}

// Len returns the number of registered operators.
func (sc *StatsCollector) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.ops)
}
