package exec

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/expr"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// Aggregate implements grouped and ungrouped aggregation with hashed
// grouping. With no GROUP BY expressions it produces exactly one row (the
// paper's Query 1 and Query 2 shape); with grouping it produces one row per
// group, emitted in group-key order for deterministic results.
//
// The aggregation module's instruction footprint depends on which aggregate
// functions the query uses — the paper's Table 2 lists the base plus
// per-function increments — so the planner requests the module from
// codemodel.AggModule with the query's function list.
type Aggregate struct {
	Child   Operator
	GroupBy []expr.Expr
	Aggs    []expr.AggSpec

	module       *codemodel.Module
	label        byte
	stats        *OpStats
	fault        *faultinject.Point
	publishFault *faultinject.Point
	schema       storage.Schema
	shared       *SharedAgg

	groups       map[string]*aggGroup
	order        []string
	memUsed      int64
	pos          int
	done         bool
	opened       bool
	tableRegion  uint64
	tableBuckets uint64
}

type aggGroup struct {
	keyVals storage.Row
	accs    []expr.Accumulator
}

// NewAggregate constructs the operator, deriving the output schema.
// module may be nil.
func NewAggregate(child Operator, groupBy []expr.Expr, aggs []expr.AggSpec, module *codemodel.Module) (*Aggregate, error) {
	a := &Aggregate{
		Child:   child,
		GroupBy: groupBy,
		Aggs:    aggs,
		module:  module,
		label:   'A',
	}
	for i, g := range groupBy {
		name := fmt.Sprintf("group%d", i)
		if cr, ok := g.(*expr.ColRef); ok {
			name = cr.Name
		}
		a.schema = append(a.schema, storage.Column{Name: name, Type: g.Type()})
	}
	for _, spec := range aggs {
		ty, err := spec.ResultType()
		if err != nil {
			return nil, err
		}
		a.schema = append(a.schema, storage.Column{Name: spec.OutputName(), Type: ty})
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("exec: Aggregate needs at least one aggregate")
	}
	return a, nil
}

// SetTraceLabel sets the trace label.
func (a *Aggregate) SetTraceLabel(b byte) { a.label = b }

// SetShared wires the finished aggregate table to the semantic reuse
// cache; see SharedAgg. Must be set before Open.
func (a *Aggregate) SetShared(sa *SharedAgg) { a.shared = sa }

// Open implements Operator.
func (a *Aggregate) Open(ctx *Context) error {
	a.stats = ctx.StatsFor(a, a.Name())
	if a.stats != nil {
		defer a.stats.EndOpen(ctx, a.stats.Begin(ctx))
	}
	if err := a.Child.Open(ctx); err != nil {
		return err
	}
	a.fault = ctx.FaultPoint(a.Name() + ":next")
	a.publishFault = ctx.FaultPoint(a.Name() + ":publish")
	a.groups = make(map[string]*aggGroup)
	a.order = nil
	ctx.ShrinkMem(a.memUsed) // reopen without Close: release stale charges
	a.memUsed = 0
	a.pos, a.done = 0, false
	if ctx.CPU != nil && a.tableRegion == 0 {
		a.tableBuckets = 1 << 12
		a.tableRegion = ctx.CPU.AllocData(int(a.tableBuckets) * 64)
	}
	a.opened = true
	return nil
}

// groupAddr maps a group key to its simulated accumulator address.
func (a *Aggregate) groupAddr(key string) uint64 {
	if a.tableRegion == 0 {
		return 0
	}
	var h uint64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return a.tableRegion + (h%a.tableBuckets)*64
}

// consume drains the child, folding every row into its group.
func (a *Aggregate) consume(ctx *Context) error {
	start := time.Now()
	for {
		if err := ctx.Canceled(); err != nil {
			return err
		}
		row, err := a.Child.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keyVals := make(storage.Row, len(a.GroupBy))
		for i, g := range a.GroupBy {
			v, err := g.Eval(row)
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		key := keyVals.String()
		grp, ok := a.groups[key]
		if !ok {
			// Each new group retains its key string, key row, and one
			// accumulator per aggregate for the life of the operator.
			charge := int64(len(key)) + int64(keyVals.ByteSize()) +
				int64(len(a.Aggs))*hashEntryOverhead
			if err := ctx.GrowMem(charge); err != nil {
				return err
			}
			a.memUsed += charge
			grp = &aggGroup{keyVals: keyVals, accs: make([]expr.Accumulator, len(a.Aggs))}
			for i, spec := range a.Aggs {
				acc, err := expr.NewAccumulator(spec)
				if err != nil {
					return err
				}
				grp.accs[i] = acc
			}
			a.groups[key] = grp
			a.order = append(a.order, key)
		}
		for _, acc := range grp.accs {
			if err := acc.Add(row); err != nil {
				return err
			}
		}
		// The transition functions touch the group's accumulator state.
		addr := a.groupAddr(key)
		ctx.Read(addr, 64)
		ctx.Write(addr, 64)
		ctx.ExecModule(a.module, ctx.DataBits(!ok))
	}
	// Deterministic output order: sort groups by key values.
	sort.Slice(a.order, func(i, j int) bool {
		gi, gj := a.groups[a.order[i]], a.groups[a.order[j]]
		for k := range gi.keyVals {
			if c := storage.Compare(gi.keyVals[k], gj.keyVals[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	a.done = true
	if a.shared != nil && a.shared.Publish != nil {
		// Reuse-cache miss: materialize the complete, sorted output — the
		// same rows Next will emit — and hand it to the cache. The publish
		// fault fires first, so a poisoned table can never be inserted.
		if err := a.publishFault.Fire(); err != nil {
			return err
		}
		rows, bytes, err := a.materializeRows()
		if err != nil {
			return err
		}
		a.shared.Publish(rows, bytes, time.Since(start))
	}
	return nil
}

// materializeRows builds the operator's full output — mirroring Next's
// emission exactly, including the one synthetic row of an ungrouped
// aggregate over zero input rows — plus the retained-bytes estimate the
// cache charges for it. Accumulator Result calls are pure, so emission
// after materialization produces identical values.
func (a *Aggregate) materializeRows() ([]storage.Row, int64, error) {
	var bytes int64
	if len(a.GroupBy) == 0 && len(a.order) == 0 {
		out := make(storage.Row, 0, len(a.Aggs))
		for _, spec := range a.Aggs {
			acc, err := expr.NewAccumulator(spec)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, acc.Result())
		}
		return []storage.Row{out}, int64(out.ByteSize()) + hashEntryOverhead, nil
	}
	rows := make([]storage.Row, 0, len(a.order))
	for _, key := range a.order {
		grp := a.groups[key]
		out := make(storage.Row, 0, len(a.GroupBy)+len(a.Aggs))
		out = append(out, grp.keyVals...)
		for _, acc := range grp.accs {
			out = append(out, acc.Result())
		}
		rows = append(rows, out)
		bytes += int64(out.ByteSize()) + hashEntryOverhead
	}
	return rows, bytes, nil
}

// Next implements Operator.
func (a *Aggregate) Next(ctx *Context) (res storage.Row, err error) {
	if !a.opened {
		return nil, errNotOpen(a.Name())
	}
	if a.stats != nil {
		defer a.stats.EndNext(ctx, a.stats.Begin(ctx), &res)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(a.label, a.Name())
	}
	if err := a.fault.Fire(); err != nil {
		return nil, err
	}
	if !a.done {
		if err := a.consume(ctx); err != nil {
			return nil, err
		}
	}
	// Ungrouped aggregation over zero rows still yields one row
	// (COUNT(*) = 0, SUM = NULL, …).
	if len(a.GroupBy) == 0 && len(a.order) == 0 && a.pos == 0 {
		a.pos++
		out := make(storage.Row, 0, len(a.Aggs))
		for _, spec := range a.Aggs {
			acc, err := expr.NewAccumulator(spec)
			if err != nil {
				return nil, err
			}
			out = append(out, acc.Result())
		}
		ctx.ExecModule(a.module, ctx.DataBits(true))
		return out, nil
	}
	if a.pos >= len(a.order) {
		return nil, nil
	}
	grp := a.groups[a.order[a.pos]]
	a.pos++
	out := make(storage.Row, 0, len(a.GroupBy)+len(a.Aggs))
	out = append(out, grp.keyVals...)
	for _, acc := range grp.accs {
		out = append(out, acc.Result())
	}
	ctx.ExecModule(a.module, ctx.DataBits(true))
	return out, nil
}

// Close implements Operator.
func (a *Aggregate) Close(ctx *Context) error {
	a.opened = false
	a.groups = nil
	a.order = nil
	ctx.ShrinkMem(a.memUsed)
	a.memUsed = 0
	return a.Child.Close(ctx)
}

// Schema implements Operator.
func (a *Aggregate) Schema() storage.Schema { return a.schema }

// Children implements Operator.
func (a *Aggregate) Children() []Operator { return []Operator{a.Child} }

// Name implements Operator.
func (a *Aggregate) Name() string {
	aggs := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		aggs[i] = s.String()
	}
	if len(a.GroupBy) == 0 {
		return fmt.Sprintf("Aggregate(%s)", strings.Join(aggs, ", "))
	}
	groups := make([]string, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groups[i] = g.String()
	}
	return fmt.Sprintf("Aggregate(%s GROUP BY %s)", strings.Join(aggs, ", "), strings.Join(groups, ", "))
}

// Module implements Operator.
func (a *Aggregate) Module() *codemodel.Module { return a.module }

// Blocking implements Operator. Although aggregation consumes its whole
// input before emitting, its transition code runs once per input tuple,
// interleaved with the child — which is exactly the thrashing pattern the
// paper buffers against. The paper accordingly treats Aggregation as a
// regular execution-group member (its Query 2 groups Scan and Aggregation
// together; its Query 1 buffers between them), reserving the blocking
// exclusion for sort and hash-table building. We follow that.
func (a *Aggregate) Blocking() bool { return false }

// AggFuncNames extracts the lower-case function-name list for
// codemodel.AggModule from a spec list.
func AggFuncNames(specs []expr.AggSpec) []string {
	var out []string
	for _, s := range specs {
		switch s.Func {
		case expr.AggCountStar, expr.AggCount:
			out = append(out, "count")
		case expr.AggSum:
			out = append(out, "sum")
		case expr.AggAvg:
			out = append(out, "avg")
		case expr.AggMin:
			out = append(out, "min")
		case expr.AggMax:
			out = append(out, "max")
		}
	}
	return out
}
