package exec

import (
	"fmt"

	"bufferdb/internal/btree"
	"bufferdb/internal/codemodel"
	"bufferdb/internal/expr"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// SeqScan is the heap scan operator. With a Filter it evaluates the
// predicate per heap tuple and returns only satisfying rows; the scan and
// qualification code runs once per *input* tuple, exactly like PostgreSQL's
// ExecScan loop — which is why a selective predicate amortizes instruction
// work per output tuple (paper §7.3). A Span restricts the scan to a
// contiguous row range, which is how an Exchange fans one table out over
// partition workers.
type SeqScan struct {
	Table  *storage.Table
	Filter expr.Expr     // optional
	Span   *storage.Span // optional: scan only [Start, End)

	module *codemodel.Module
	label  byte
	stats  *OpStats
	fault  *faultinject.Point

	pos    int
	end    int
	place  TablePlacement
	placed bool
	opened bool

	// it streams rows when the table is disk-backed (paged); memory tables
	// keep the zero-overhead direct slice access path.
	it storage.RowIterator
}

// NewSeqScan constructs a sequential scan. module may be nil (uninstrumented).
func NewSeqScan(table *storage.Table, filter expr.Expr, module *codemodel.Module) *SeqScan {
	return &SeqScan{Table: table, Filter: filter, module: module, label: 'C'}
}

// NewSeqScanSpan constructs a scan over one heap partition. A nil span
// scans the whole table.
func NewSeqScanSpan(table *storage.Table, filter expr.Expr, module *codemodel.Module, span *storage.Span) *SeqScan {
	s := NewSeqScan(table, filter, module)
	s.Span = span
	return s
}

// SetTraceLabel sets the single-letter label used in invocation traces.
func (s *SeqScan) SetTraceLabel(b byte) { s.label = b }

// Open implements Operator.
func (s *SeqScan) Open(ctx *Context) error {
	s.stats = ctx.StatsFor(s, s.Name())
	if s.stats != nil {
		defer s.stats.EndOpen(ctx, s.stats.Begin(ctx))
	}
	s.fault = ctx.FaultPoint(s.Name() + ":next")
	s.pos, s.end = 0, s.Table.NumRows()
	if s.Span != nil {
		s.pos, s.end = s.Span.Start, s.Span.End
	}
	if s.Table.Paged() {
		it, err := s.Table.Iterate(storage.Span{Start: s.pos, End: s.end})
		if err != nil {
			return err
		}
		s.it = it
	}
	s.place, s.placed = ctx.Placements[s.Table]
	s.opened = true
	return nil
}

// Next implements Operator.
func (s *SeqScan) Next(ctx *Context) (out storage.Row, err error) {
	if !s.opened {
		return nil, errNotOpen(s.Name())
	}
	if s.stats != nil {
		defer s.stats.EndNext(ctx, s.stats.Begin(ctx), &out)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(s.label, s.Name())
	}
	if err := s.fault.Fire(); err != nil {
		return nil, err
	}
	for s.pos < s.end {
		// A selective filter can reject long stretches without returning;
		// poll cancellation here so such scans abort promptly.
		if err := ctx.Canceled(); err != nil {
			return nil, err
		}
		var (
			rid int
			row storage.Row
		)
		if s.it != nil {
			var ok bool
			rid, row, ok, err = s.it.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			s.pos = rid + 1
		} else {
			rid = s.pos
			s.pos++
			row = s.Table.Row(rid)
		}
		if s.placed {
			ctx.Read(s.place.Base+uint64(rid)*uint64(s.place.RowBytes), s.place.RowBytes)
		}
		if s.Filter == nil {
			ctx.ExecModule(s.module, ctx.DataBits(true))
			return row, nil
		}
		match, err := expr.EvalBool(s.Filter, row)
		if err != nil {
			return nil, err
		}
		ctx.ExecModule(s.module, ctx.DataBits(match))
		if match {
			return row, nil
		}
	}
	return nil, nil
}

// Close implements Operator.
func (s *SeqScan) Close(*Context) error {
	s.opened = false
	if s.it != nil {
		err := s.it.Close()
		s.it = nil
		return err
	}
	return nil
}

// Schema implements Operator.
func (s *SeqScan) Schema() storage.Schema { return s.Table.Schema() }

// Children implements Operator.
func (s *SeqScan) Children() []Operator { return nil }

// Name implements Operator.
func (s *SeqScan) Name() string {
	if s.Filter != nil {
		return fmt.Sprintf("SeqScan(%s, filter=%s)", s.Table.Name(), s.Filter.String())
	}
	return fmt.Sprintf("SeqScan(%s)", s.Table.Name())
}

// Module implements Operator.
func (s *SeqScan) Module() *codemodel.Module { return s.module }

// Blocking implements Operator.
func (s *SeqScan) Blocking() bool { return false }

// indexAccess bundles the shared machinery of the two index operators:
// the search structure plus simulated node-region traffic.
type indexAccess struct {
	table *storage.Table
	meta  *storage.IndexMeta
	tree  *btree.Tree

	nodeRegion uint64
	nodeBytes  uint64
}

func newIndexAccess(table *storage.Table, meta *storage.IndexMeta) (*indexAccess, error) {
	tree, ok := meta.Search.(*btree.Tree)
	if !ok {
		return nil, fmt.Errorf("exec: index %s has no search structure", meta.Name)
	}
	return &indexAccess{table: table, meta: meta, tree: tree}, nil
}

// place reserves the simulated node region on first use.
func (ia *indexAccess) place(ctx *Context) {
	if ctx.CPU == nil || ia.nodeRegion != 0 {
		return
	}
	// ~16 bytes per entry of inner/leaf structure.
	size := ia.tree.Len()*16 + 4096
	ia.nodeRegion = ctx.CPU.AllocData(size)
	ia.nodeBytes = uint64(size)
}

// descend models the root-to-leaf traversal for a key: one 64-byte node
// read per level at a key-dependent (cache-unfriendly) offset.
func (ia *indexAccess) descend(ctx *Context, key int64) {
	if ia.nodeRegion == 0 {
		return
	}
	h := ia.tree.Height()
	x := uint64(key) * 0x9e3779b97f4a7c15
	for level := 0; level < h; level++ {
		x ^= x >> 29
		x *= 0xbf58476d1ce4e5b9
		off := (x % (ia.nodeBytes / 64)) * 64
		ctx.Read(ia.nodeRegion+off, 64)
	}
}

// readHeap models fetching the heap row for rid.
func (ia *indexAccess) readHeap(ctx *Context, rid int) {
	if addr, size, ok := ctx.Placements.Addr(ia.table, rid); ok {
		ctx.Read(addr, size)
	}
}

// IndexLookup is the rescannable inner side of an index nested-loop join:
// each Rescan repositions it on a key; Next then returns the matching heap
// rows. For a unique (primary key) index that is at most one row — the
// paper's foreign-key join case whose output cardinality is too small to
// ever justify a buffer above it (§6).
type IndexLookup struct {
	ia     *indexAccess
	module *codemodel.Module
	label  byte
	stats  *OpStats
	fault  *faultinject.Point

	rids    []int
	pos     int
	lastKey int64
	opened  bool
}

// NewIndexLookup constructs the lookup operator over table's index meta.
func NewIndexLookup(table *storage.Table, meta *storage.IndexMeta, module *codemodel.Module) (*IndexLookup, error) {
	ia, err := newIndexAccess(table, meta)
	if err != nil {
		return nil, err
	}
	return &IndexLookup{ia: ia, module: module, label: 'I'}, nil
}

// SetTraceLabel sets the trace label.
func (s *IndexLookup) SetTraceLabel(b byte) { s.label = b }

// Open implements Operator.
func (s *IndexLookup) Open(ctx *Context) error {
	s.stats = ctx.StatsFor(s, s.Name())
	if s.stats != nil {
		defer s.stats.EndOpen(ctx, s.stats.Begin(ctx))
	}
	s.fault = ctx.FaultPoint(s.Name() + ":next")
	s.ia.place(ctx)
	s.rids = nil
	s.pos = 0
	s.opened = true
	return nil
}

// Rescan implements Rescannable.
func (s *IndexLookup) Rescan(key storage.Value) error {
	if !s.opened {
		return fmt.Errorf("exec: IndexLookup.Rescan before Open")
	}
	if key.Kind != storage.TypeInt64 {
		return fmt.Errorf("exec: index key must be BIGINT, got %v", key.Kind)
	}
	if s.ia.meta.Unique {
		if rid, ok := s.ia.tree.LookupOne(key.I); ok {
			s.rids = append(s.rids[:0], rid)
		} else {
			s.rids = s.rids[:0]
		}
	} else {
		rids, _ := s.ia.tree.Lookup(key.I)
		s.rids = append(s.rids[:0], rids...)
	}
	s.pos = 0
	s.lastKey = key.I
	return nil
}

// Next implements Operator.
func (s *IndexLookup) Next(ctx *Context) (out storage.Row, err error) {
	if !s.opened {
		return nil, errNotOpen(s.Name())
	}
	if s.stats != nil {
		defer s.stats.EndNext(ctx, s.stats.Begin(ctx), &out)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(s.label, s.Name())
	}
	if err := s.fault.Fire(); err != nil {
		return nil, err
	}
	if s.pos == 0 {
		// Model the root-to-leaf descent on the first fetch of a rescan.
		s.ia.descend(ctx, s.lastKey)
	}
	if s.pos >= len(s.rids) {
		ctx.ExecModule(s.module, ctx.DataBits(false))
		return nil, nil
	}
	rid := s.rids[s.pos]
	s.pos++
	s.ia.readHeap(ctx, rid)
	ctx.ExecModule(s.module, ctx.DataBits(true))
	return s.ia.table.FetchRow(rid)
}

// Close implements Operator.
func (s *IndexLookup) Close(*Context) error {
	s.opened = false
	return nil
}

// Schema implements Operator.
func (s *IndexLookup) Schema() storage.Schema { return s.ia.table.Schema() }

// Children implements Operator.
func (s *IndexLookup) Children() []Operator { return nil }

// Name implements Operator.
func (s *IndexLookup) Name() string {
	return fmt.Sprintf("IndexLookup(%s.%s)", s.ia.table.Name(), s.ia.meta.Column)
}

// Module implements Operator.
func (s *IndexLookup) Module() *codemodel.Module { return s.module }

// Blocking implements Operator.
func (s *IndexLookup) Blocking() bool { return false }

// IndexFullScan returns a table's rows in index-key order — the ordered
// input the paper's merge-join plan draws from the orders primary key.
type IndexFullScan struct {
	ia     *indexAccess
	module *codemodel.Module
	Filter expr.Expr // optional
	label  byte
	stats  *OpStats
	fault  *faultinject.Point

	cursor *btree.Cursor
	opened bool
}

// NewIndexFullScan constructs the ordered scan.
func NewIndexFullScan(table *storage.Table, meta *storage.IndexMeta, filter expr.Expr, module *codemodel.Module) (*IndexFullScan, error) {
	ia, err := newIndexAccess(table, meta)
	if err != nil {
		return nil, err
	}
	return &IndexFullScan{ia: ia, module: module, Filter: filter, label: 'X'}, nil
}

// SetTraceLabel sets the trace label.
func (s *IndexFullScan) SetTraceLabel(b byte) { s.label = b }

// Open implements Operator.
func (s *IndexFullScan) Open(ctx *Context) error {
	s.stats = ctx.StatsFor(s, s.Name())
	if s.stats != nil {
		defer s.stats.EndOpen(ctx, s.stats.Begin(ctx))
	}
	s.fault = ctx.FaultPoint(s.Name() + ":next")
	s.ia.place(ctx)
	s.cursor = s.ia.tree.Min()
	s.opened = true
	return nil
}

// Next implements Operator.
func (s *IndexFullScan) Next(ctx *Context) (out storage.Row, err error) {
	if !s.opened {
		return nil, errNotOpen(s.Name())
	}
	if s.stats != nil {
		defer s.stats.EndNext(ctx, s.stats.Begin(ctx), &out)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(s.label, s.Name())
	}
	if err := s.fault.Fire(); err != nil {
		return nil, err
	}
	for {
		if err := ctx.Canceled(); err != nil {
			return nil, err
		}
		_, rid, ok := s.cursor.Next()
		if !ok {
			return nil, nil
		}
		// Leaf-chain walk: sequential reads over the node region.
		if s.ia.nodeRegion != 0 {
			off := (uint64(rid) * 16) % s.ia.nodeBytes
			ctx.Read(s.ia.nodeRegion+off, 16)
		}
		s.ia.readHeap(ctx, rid)
		row, err := s.ia.table.FetchRow(rid)
		if err != nil {
			return nil, err
		}
		if s.Filter == nil {
			ctx.ExecModule(s.module, ctx.DataBits(true))
			return row, nil
		}
		match, err := expr.EvalBool(s.Filter, row)
		if err != nil {
			return nil, err
		}
		ctx.ExecModule(s.module, ctx.DataBits(match))
		if match {
			return row, nil
		}
	}
}

// Close implements Operator.
func (s *IndexFullScan) Close(*Context) error {
	s.opened = false
	return nil
}

// Schema implements Operator.
func (s *IndexFullScan) Schema() storage.Schema { return s.ia.table.Schema() }

// Children implements Operator.
func (s *IndexFullScan) Children() []Operator { return nil }

// Name implements Operator.
func (s *IndexFullScan) Name() string {
	return fmt.Sprintf("IndexFullScan(%s.%s)", s.ia.table.Name(), s.ia.meta.Column)
}

// Module implements Operator.
func (s *IndexFullScan) Module() *codemodel.Module { return s.module }

// Blocking implements Operator.
func (s *IndexFullScan) Blocking() bool { return false }
