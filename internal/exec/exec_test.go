package exec

import (
	"strings"
	"testing"

	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
	"bufferdb/internal/tpch"
)

// testDB is a tiny shared TPC-H instance.
var testDB = func() *storage.Catalog {
	cat, err := tpch.Generate(tpch.Config{ScaleFactor: 0.002})
	if err != nil {
		panic(err)
	}
	return cat
}()

func tbl(t *testing.T, name string) *storage.Table {
	t.Helper()
	tb, err := testDB.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func colRef(t *testing.T, sch storage.Schema, name string) *expr.ColRef {
	t.Helper()
	i, err := sch.ColumnIndex("", name)
	if err != nil || i < 0 {
		t.Fatalf("column %s: %d, %v", name, i, err)
	}
	return expr.NewColRef(i, name, sch[i].Type)
}

func runPlan(t *testing.T, root Operator) []storage.Row {
	t.Helper()
	rows, err := Run(&Context{Catalog: testDB}, root)
	if err != nil {
		t.Fatalf("Run(%s): %v", root.Name(), err)
	}
	return rows
}

func shipdateFilter(t *testing.T, sch storage.Schema, cutoff string) expr.Expr {
	t.Helper()
	d, err := storage.ParseDate(cutoff)
	if err != nil {
		t.Fatal(err)
	}
	return expr.MustBinary(expr.OpLe, colRef(t, sch, "l_shipdate"), expr.NewConst(d))
}

func TestSeqScanAll(t *testing.T) {
	li := tbl(t, "lineitem")
	rows := runPlan(t, NewSeqScan(li, nil, nil))
	if len(rows) != li.NumRows() {
		t.Errorf("scanned %d rows, table has %d", len(rows), li.NumRows())
	}
}

func TestSeqScanFilter(t *testing.T) {
	li := tbl(t, "lineitem")
	filter := shipdateFilter(t, li.Schema(), "1995-06-17")
	rows := runPlan(t, NewSeqScan(li, filter, nil))

	// Brute-force reference.
	want := 0
	cutoff := storage.DateFromYMD(1995, 6, 17).I
	idx, _ := li.Schema().ColumnIndex("", "l_shipdate")
	for _, r := range li.Rows() {
		if r[idx].I <= cutoff {
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("filter returned %d rows, want %d", len(rows), want)
	}
	if want == 0 || want == li.NumRows() {
		t.Fatalf("degenerate selectivity %d of %d", want, li.NumRows())
	}
	for _, r := range rows {
		if r[idx].I > cutoff {
			t.Fatalf("row %v violates filter", r)
		}
	}
}

func TestSeqScanReopen(t *testing.T) {
	li := tbl(t, "lineitem")
	scan := NewSeqScan(li, nil, nil)
	a := runPlan(t, scan)
	b := runPlan(t, scan)
	if len(a) != len(b) {
		t.Errorf("reopen changed cardinality: %d vs %d", len(a), len(b))
	}
}

func TestNextBeforeOpen(t *testing.T) {
	li := tbl(t, "lineitem")
	ops := []Operator{
		NewSeqScan(li, nil, nil),
		NewSort(NewSeqScan(li, nil, nil), nil, nil),
		NewLimit(NewSeqScan(li, nil, nil), 1),
		NewValues(li.Schema(), nil),
		NewMaterial(NewSeqScan(li, nil, nil), nil),
	}
	for _, op := range ops {
		if _, err := op.Next(&Context{Catalog: testDB}); err == nil {
			t.Errorf("%s.Next before Open succeeded", op.Name())
		}
	}
}

func TestIndexLookup(t *testing.T) {
	orders := tbl(t, "orders")
	lu, err := NewIndexLookup(orders, orders.IndexOn("o_orderkey"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Catalog: testDB}
	if err := lu.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if err := lu.Rescan(storage.NewInt(42)); err != nil {
		t.Fatal(err)
	}
	row, err := lu.Next(ctx)
	if err != nil || row == nil || row[0].I != 42 {
		t.Fatalf("lookup(42) = %v, %v", row, err)
	}
	if row, _ := lu.Next(ctx); row != nil {
		t.Error("unique lookup returned a second row")
	}
	// Missing key.
	if err := lu.Rescan(storage.NewInt(1 << 40)); err != nil {
		t.Fatal(err)
	}
	if row, _ := lu.Next(ctx); row != nil {
		t.Error("lookup of absent key returned a row")
	}
	// Non-int key rejected.
	if err := lu.Rescan(storage.NewString("x")); err == nil {
		t.Error("string rescan key accepted")
	}
	// Non-unique index returns all duplicates.
	li := tbl(t, "lineitem")
	flu, err := NewIndexLookup(li, li.IndexOn("l_orderkey"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := flu.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if err := flu.Rescan(storage.NewInt(42)); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		row, err := flu.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			break
		}
		if row[0].I != 42 {
			t.Fatalf("fk lookup returned order %d", row[0].I)
		}
		n++
	}
	if n < 1 || n > 7 {
		t.Errorf("fk lookup(42) returned %d rows", n)
	}
	_ = lu.Close(ctx)
	_ = flu.Close(ctx)
}

func TestIndexFullScanOrdered(t *testing.T) {
	orders := tbl(t, "orders")
	scan, err := NewIndexFullScan(orders, orders.IndexOn("o_orderkey"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := runPlan(t, scan)
	if len(rows) != orders.NumRows() {
		t.Fatalf("full scan returned %d of %d rows", len(rows), orders.NumRows())
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].I >= rows[i][0].I {
			t.Fatalf("index scan out of order at %d", i)
		}
	}
}

func TestIndexFullScanFilter(t *testing.T) {
	orders := tbl(t, "orders")
	sch := orders.Schema()
	filter := expr.MustBinary(expr.OpLt, colRef(t, sch, "o_orderkey"), expr.NewConst(storage.NewInt(100)))
	scan, err := NewIndexFullScan(orders, orders.IndexOn("o_orderkey"), filter, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := runPlan(t, scan)
	if len(rows) != 99 {
		t.Errorf("filtered index scan returned %d rows, want 99", len(rows))
	}
}

// joinReference computes the lineitem ⋈ orders join cardinality directly.
func joinReference(t *testing.T, cutoff string) int {
	t.Helper()
	li := tbl(t, "lineitem")
	c := storage.DateFromYMD(1995, 6, 17)
	if cutoff != "1995-06-17" {
		var err error
		c, err = storage.ParseDate(cutoff)
		if err != nil {
			t.Fatal(err)
		}
	}
	idx, _ := li.Schema().ColumnIndex("", "l_shipdate")
	n := 0
	for _, r := range li.Rows() {
		if r[idx].I <= c.I {
			n++ // every lineitem joins exactly one order
		}
	}
	return n
}

func TestThreeJoinMethodsAgree(t *testing.T) {
	li := tbl(t, "lineitem")
	orders := tbl(t, "orders")
	liSch := li.Schema()
	cutoff := "1995-06-17"
	want := joinReference(t, cutoff)
	outWidth := len(liSch) + len(orders.Schema())

	okey := func() expr.Expr { return colRef(t, liSch, "l_orderkey") }

	// Nested-loop with inner index lookup.
	inner, err := NewIndexLookup(orders, orders.IndexOn("o_orderkey"), nil)
	if err != nil {
		t.Fatal(err)
	}
	nl := NewNestLoopJoin(NewSeqScan(li, shipdateFilter(t, liSch, cutoff), nil), inner, okey(), nil, nil)
	nlRows := runPlan(t, nl)

	// Hash join, build on orders.
	hj := NewHashJoin(
		NewSeqScan(li, shipdateFilter(t, liSch, cutoff), nil),
		NewSeqScan(orders, nil, nil),
		okey(),
		colRef(t, orders.Schema(), "o_orderkey"),
		nil, nil,
	)
	hjRows := runPlan(t, hj)

	// Merge join: sort lineitem by orderkey, index-order scan of orders.
	sorted := NewSort(
		NewSeqScan(li, shipdateFilter(t, liSch, cutoff), nil),
		[]SortKey{{Expr: okey()}},
		nil,
	)
	oscan, err := NewIndexFullScan(orders, orders.IndexOn("o_orderkey"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mj := NewMergeJoin(sorted, oscan, okey(), colRef(t, orders.Schema(), "o_orderkey"), nil)
	mjRows := runPlan(t, mj)

	for name, rows := range map[string][]storage.Row{"nestloop": nlRows, "hash": hjRows, "merge": mjRows} {
		if len(rows) != want {
			t.Errorf("%s join returned %d rows, want %d", name, len(rows), want)
		}
		for _, r := range rows {
			if len(r) != outWidth {
				t.Fatalf("%s join row arity %d, want %d", name, len(r), outWidth)
			}
			// Join key consistency: l_orderkey == o_orderkey.
			if r[0].I != r[len(liSch)].I {
				t.Fatalf("%s join mismatched keys: %d vs %d", name, r[0].I, r[len(liSch)].I)
			}
		}
	}
}

func TestSortOrders(t *testing.T) {
	li := tbl(t, "lineitem")
	sch := li.Schema()
	keyIdx, _ := sch.ColumnIndex("", "l_extendedprice")
	s := NewSort(NewSeqScan(li, nil, nil), []SortKey{{Expr: colRef(t, sch, "l_extendedprice"), Desc: true}}, nil)
	rows := runPlan(t, s)
	if len(rows) != li.NumRows() {
		t.Fatalf("sort dropped rows: %d of %d", len(rows), li.NumRows())
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][keyIdx].F < rows[i][keyIdx].F {
			t.Fatalf("descending sort violated at %d", i)
		}
	}
}

func TestSortMultiKeyStable(t *testing.T) {
	sch := storage.Schema{
		{Name: "a", Type: storage.TypeInt64},
		{Name: "b", Type: storage.TypeString},
	}
	rows := []storage.Row{
		{storage.NewInt(2), storage.NewString("x")},
		{storage.NewInt(1), storage.NewString("z")},
		{storage.NewInt(2), storage.NewString("a")},
		{storage.NewInt(1), storage.NewString("a")},
	}
	s := NewSort(NewValues(sch, rows), []SortKey{
		{Expr: expr.NewColRef(0, "a", storage.TypeInt64)},
		{Expr: expr.NewColRef(1, "b", storage.TypeString)},
	}, nil)
	got := runPlan(t, s)
	want := "1|a;1|z;2|a;2|x"
	var parts []string
	for _, r := range got {
		parts = append(parts, r.String())
	}
	if strings.Join(parts, ";") != want {
		t.Errorf("sorted = %v, want %s", parts, want)
	}
}

func TestAggregateUngrouped(t *testing.T) {
	li := tbl(t, "lineitem")
	sch := li.Schema()
	qty := colRef(t, sch, "l_quantity")
	agg, err := NewAggregate(NewSeqScan(li, nil, nil), nil, []expr.AggSpec{
		{Func: expr.AggCountStar},
		{Func: expr.AggSum, Arg: qty},
		{Func: expr.AggAvg, Arg: qty},
		{Func: expr.AggMin, Arg: qty},
		{Func: expr.AggMax, Arg: qty},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := runPlan(t, agg)
	if len(rows) != 1 {
		t.Fatalf("ungrouped agg returned %d rows", len(rows))
	}
	r := rows[0]
	if r[0].I != int64(li.NumRows()) {
		t.Errorf("COUNT(*) = %d, want %d", r[0].I, li.NumRows())
	}
	// Reference sum.
	idx, _ := sch.ColumnIndex("", "l_quantity")
	var sum float64
	mn, mx := 1e18, -1e18
	for _, row := range li.Rows() {
		v := row[idx].F
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if got := r[1].F; got != sum {
		t.Errorf("SUM = %v, want %v", got, sum)
	}
	if got := r[2].F; got < mn || got > mx {
		t.Errorf("AVG = %v outside [%v, %v]", got, mn, mx)
	}
	if r[3].F != mn || r[4].F != mx {
		t.Errorf("MIN/MAX = %v/%v, want %v/%v", r[3].F, r[4].F, mn, mx)
	}
}

func TestAggregateGrouped(t *testing.T) {
	li := tbl(t, "lineitem")
	sch := li.Schema()
	agg, err := NewAggregate(
		NewSeqScan(li, nil, nil),
		[]expr.Expr{colRef(t, sch, "l_returnflag"), colRef(t, sch, "l_linestatus")},
		[]expr.AggSpec{{Func: expr.AggCountStar}},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := runPlan(t, agg)
	if len(rows) < 2 || len(rows) > 4 {
		t.Fatalf("grouped agg returned %d groups", len(rows))
	}
	// Counts must add up and output must be key-ordered.
	total := int64(0)
	for i, r := range rows {
		total += r[2].I
		if i > 0 {
			prev, cur := rows[i-1], r
			if storage.Compare(prev[0], cur[0]) > 0 ||
				(storage.Compare(prev[0], cur[0]) == 0 && storage.Compare(prev[1], cur[1]) >= 0) {
				t.Errorf("group output not ordered at %d", i)
			}
		}
	}
	if total != int64(li.NumRows()) {
		t.Errorf("group counts sum to %d, want %d", total, li.NumRows())
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	sch := storage.Schema{{Name: "v", Type: storage.TypeInt64}}
	v := expr.NewColRef(0, "v", storage.TypeInt64)
	agg, err := NewAggregate(NewValues(sch, nil), nil, []expr.AggSpec{
		{Func: expr.AggCountStar},
		{Func: expr.AggSum, Arg: v},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := runPlan(t, agg)
	if len(rows) != 1 {
		t.Fatalf("empty-input agg returned %d rows", len(rows))
	}
	if rows[0][0].I != 0 || !rows[0][1].IsNull() {
		t.Errorf("empty-input agg = %v, want 0|NULL", rows[0])
	}
	// Grouped aggregation over empty input yields no rows.
	gagg, err := NewAggregate(NewValues(sch, nil), []expr.Expr{v}, []expr.AggSpec{{Func: expr.AggCountStar}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows := runPlan(t, gagg); len(rows) != 0 {
		t.Errorf("grouped agg over empty input returned %d rows", len(rows))
	}
	// Aggregate without aggregates is rejected.
	if _, err := NewAggregate(NewValues(sch, nil), nil, nil, nil); err == nil {
		t.Error("aggregate-free Aggregate accepted")
	}
}

func TestMaterialAndLimit(t *testing.T) {
	li := tbl(t, "lineitem")
	m := NewMaterial(NewSeqScan(li, nil, nil), nil)
	rows := runPlan(t, m)
	if len(rows) != li.NumRows() {
		t.Errorf("material returned %d rows", len(rows))
	}
	l := NewLimit(NewSeqScan(li, nil, nil), 7)
	if rows := runPlan(t, NewLimit(NewSeqScan(li, nil, nil), 7)); len(rows) != 7 {
		t.Errorf("limit returned %d rows", len(rows))
	}
	_ = l
	if rows := runPlan(t, NewLimit(NewValues(li.Schema(), nil), 7)); len(rows) != 0 {
		t.Errorf("limit over empty input returned %d rows", len(rows))
	}
}

func TestTracer(t *testing.T) {
	sch := storage.Schema{{Name: "v", Type: storage.TypeInt64}}
	var rows []storage.Row
	for i := 0; i < 5; i++ {
		rows = append(rows, storage.Row{storage.NewInt(int64(i))})
	}
	vals := NewValues(sch, rows)
	vals.SetTraceLabel('C')
	agg, err := NewAggregate(vals, nil, []expr.AggSpec{{Func: expr.AggCountStar}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg.SetTraceLabel('P')
	tr := NewTracer(64)
	ctx := &Context{Catalog: testDB, Trace: tr}
	if _, err := Run(ctx, agg); err != nil {
		t.Fatal(err)
	}
	// Demand-pull: P then all C's (agg consumes in one Next), then P for EOF.
	got := tr.String()
	if !strings.HasPrefix(got, "PCCCCCC") {
		t.Errorf("trace = %q", got)
	}
	if tr.Legend()['C'] == "" || tr.Legend()['P'] == "" {
		t.Error("legend incomplete")
	}
}

func TestFormatPlanAndWalk(t *testing.T) {
	li := tbl(t, "lineitem")
	agg, err := NewAggregate(NewSeqScan(li, nil, nil), nil, []expr.AggSpec{{Func: expr.AggCountStar}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := FormatPlan(agg)
	if !strings.Contains(s, "Aggregate") || !strings.Contains(s, "  SeqScan") {
		t.Errorf("FormatPlan = %q", s)
	}
	n := 0
	Walk(agg, func(Operator) { n++ })
	if n != 2 {
		t.Errorf("Walk visited %d nodes", n)
	}
}

func TestArenaWraps(t *testing.T) {
	a := &Arena{base: 1 << 20, size: 1024}
	first := a.Alloc(512)
	if first != 1<<20 {
		t.Errorf("first alloc at %#x", first)
	}
	a.Alloc(512)
	third := a.Alloc(512) // wraps
	if third != 1<<20 {
		t.Errorf("wrap alloc at %#x", third)
	}
	// Oversized allocation clamps rather than overflowing.
	big := a.Alloc(4096)
	if big < 1<<20 || big >= 1<<20+1024 {
		t.Errorf("oversized alloc at %#x", big)
	}
	// Inert arena yields 0.
	inert := &Arena{}
	if inert.Alloc(100) != 0 {
		t.Error("inert arena returned a real address")
	}
}
