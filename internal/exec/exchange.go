package exec

import (
	"fmt"
	"sync"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// Exchange is the gather side of Volcano-style encapsulated parallelism
// (Graefe's exchange operator): it owns one compiled subtree per partition
// of the input and merges their outputs into the parent's demand-pull
// stream. Partition subtrees are typically span-bounded scan pipelines
// produced by plan.Parallelize — including any buffer operators the
// refinement pass inserted, which stay below the gather so every worker
// keeps its own instruction-cache-friendly run.
//
// Rows are emitted in partition order: all of partition 0, then partition
// 1, and so on. Because partitions are contiguous row ranges and the
// per-partition pipelines preserve order, the merged stream is
// byte-identical to the sequential plan for any worker count.
//
// Execution mode depends on the Context. Uninstrumented (no CPU, no
// tracer), Open spawns one goroutine per partition; each drains its subtree
// through a private child Context into a bounded channel of row chunks, so
// later partitions compute ahead under backpressure while the parent
// consumes earlier ones. On a simulated CPU the machine is single-core, so
// the partitions run inline one after another on the shared Context —
// deterministic, and directly comparable with the sequential plan.
type Exchange struct {
	parts []Operator

	// serial-mode cursor.
	cur int

	// parallel-mode state, rebuilt on every Open.
	parallel bool
	workers  []*exchangeWorker
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	chunk []storage.Row // chunk being served
	pos   int           // next row within chunk

	stats  *OpStats
	fault  *faultinject.Point
	mem    *MemTracker // gather-side handle for releasing queued chunks
	opened bool
}

// exchangeChunk is the number of rows a worker accumulates before handing
// them to the gather; chunking amortizes channel synchronization the same
// way buffers amortize instruction fetch.
const exchangeChunk = 256

// exchangeDepth is the per-worker channel capacity in chunks: enough that
// workers rarely stall on the consumer, small enough to bound memory.
const exchangeDepth = 8

// exchangeWorker drains one partition subtree into its channel.
type exchangeWorker struct {
	out chan []storage.Row
	err error // read by the gather only after out is closed
}

// NewExchange constructs a gather over per-partition subtrees. At least one
// partition is required; all partitions must produce the same schema.
func NewExchange(parts []Operator) (*Exchange, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("exec: Exchange needs at least one partition")
	}
	return &Exchange{parts: parts}, nil
}

// Open implements Operator.
func (e *Exchange) Open(ctx *Context) error {
	e.shutdown()
	e.stats = ctx.StatsFor(e, e.Name())
	if e.stats != nil {
		e.stats.Partitions = len(e.parts)
		defer e.stats.EndOpen(ctx, e.stats.Begin(ctx))
	}
	e.cur, e.chunk, e.pos = 0, nil, 0
	e.fault = ctx.FaultPoint(e.Name() + ":next")
	e.mem = ctx.Mem
	e.parallel = ctx.CPU == nil && ctx.Trace == nil
	e.opened = true
	if !e.parallel {
		// Serial mode: partitions run inline, opened lazily in Next.
		if len(e.parts) > 0 {
			return e.parts[0].Open(ctx)
		}
		return nil
	}
	e.stop = make(chan struct{})
	e.stopOnce = sync.Once{}
	e.workers = make([]*exchangeWorker, len(e.parts))
	for i, part := range e.parts {
		w := &exchangeWorker{out: make(chan []storage.Row, exchangeDepth)}
		e.workers[i] = w
		e.wg.Add(1)
		// Each worker owns a private Context: its own branch-outcome
		// stream and cancellation tick, sharing only the read-only
		// catalog, the caller's cancellation context, the (mutex-guarded)
		// memory tracker and fault injector, and (if enabled) the stats
		// collector, whose registration path is mutex-guarded and whose
		// per-operator slots are each written by one worker only.
		wctx := &Context{Catalog: ctx.Catalog, Ctx: ctx.Ctx, Stats: ctx.Stats, Mem: ctx.Mem, Fault: ctx.Fault}
		go func(part Operator, w *exchangeWorker) {
			defer e.wg.Done()
			defer close(w.out)
			// Contain worker panics: the recover runs before close(w.out)
			// (defers are LIFO), so the gather always observes w.err after
			// the channel closes.
			defer func() {
				if r := recover(); r != nil {
					w.err = PanicError(part.Name(), r)
				}
			}()
			w.err = e.drainPartition(wctx, part, w.out)
		}(part, w)
	}
	return nil
}

// drainPartition runs one partition subtree to completion, sending chunks
// until EOF, error, or shutdown.
func (e *Exchange) drainPartition(ctx *Context, part Operator, out chan<- []storage.Row) error {
	if err := CallOpen(ctx, part); err != nil {
		return err
	}
	defer CallClose(ctx, part)
	chunk := make([]storage.Row, 0, exchangeChunk)
	// Each queued chunk is charged against the query's budget before the
	// send and released by the gather (or the shutdown drain) on receive, so
	// tracked bytes bound the bytes actually parked in channels.
	flush := func() (stopped bool, err error) {
		if len(chunk) == 0 {
			return false, nil
		}
		bytes := RowsBytes(chunk)
		if err := ctx.GrowMem(bytes); err != nil {
			return false, err
		}
		select {
		case out <- chunk:
			chunk = make([]storage.Row, 0, exchangeChunk)
			return false, nil
		case <-e.stop:
			ctx.ShrinkMem(bytes) // never handed off; return the charge
			return true, nil
		}
	}
	for {
		if err := ctx.Canceled(); err != nil {
			return err
		}
		row, err := part.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			_, err := flush()
			return err
		}
		chunk = append(chunk, row)
		if len(chunk) == exchangeChunk {
			if stopped, err := flush(); stopped || err != nil {
				return err
			}
		}
	}
}

// Next implements Operator.
func (e *Exchange) Next(ctx *Context) (out storage.Row, err error) {
	if !e.opened {
		return nil, errNotOpen(e.Name())
	}
	if e.stats != nil {
		defer e.stats.EndNext(ctx, e.stats.Begin(ctx), &out)
	}
	if err := e.fault.Fire(); err != nil {
		return nil, err
	}
	if e.parallel {
		return e.nextParallel()
	}
	return e.nextSerial(ctx)
}

// nextSerial serves the partitions one after another on the caller's
// (instrumented) context.
func (e *Exchange) nextSerial(ctx *Context) (storage.Row, error) {
	for e.cur < len(e.parts) {
		row, err := e.parts[e.cur].Next(ctx)
		if err != nil {
			return nil, err
		}
		if row != nil {
			if ctx.CPU != nil {
				// The gather's serve path costs the same handful of
				// µops as a buffer's.
				ctx.CPU.AddUops(serveUops)
			}
			return row, nil
		}
		if err := e.parts[e.cur].Close(ctx); err != nil {
			return nil, err
		}
		e.cur++
		if e.cur < len(e.parts) {
			if err := e.parts[e.cur].Open(ctx); err != nil {
				return nil, err
			}
		}
	}
	return nil, nil
}

// nextParallel serves chunks from the workers in partition order.
func (e *Exchange) nextParallel() (storage.Row, error) {
	for {
		if e.pos < len(e.chunk) {
			row := e.chunk[e.pos]
			e.pos++
			return row, nil
		}
		if e.cur >= len(e.workers) {
			return nil, nil
		}
		w := e.workers[e.cur]
		chunk, ok := <-w.out
		if ok {
			e.mem.Shrink(RowsBytes(chunk))
			e.chunk, e.pos = chunk, 0
			continue
		}
		// Partition drained; surface its error, if any, before advancing.
		if w.err != nil {
			return nil, w.err
		}
		e.cur++
	}
}

// serveUops is the simulated execution cost of handing one gathered tuple
// to the parent — bounds check, array load, pointer return — matching the
// buffer operator's serve path.
const serveUops = 12

// shutdown stops any running workers and waits for them to exit.
func (e *Exchange) shutdown() {
	if e.workers == nil {
		return
	}
	e.stopOnce.Do(func() { close(e.stop) })
	// Drain so workers blocked on a full channel observe the stop,
	// releasing the budget charge of every chunk still queued.
	for _, w := range e.workers {
		for chunk := range w.out {
			e.mem.Shrink(RowsBytes(chunk))
		}
	}
	e.wg.Wait()
	e.workers = nil
}

// Close implements Operator.
func (e *Exchange) Close(ctx *Context) error {
	if e.parallel {
		e.shutdown()
	} else if e.opened && e.cur < len(e.parts) {
		// Serial mode: the current partition is still open.
		if err := e.parts[e.cur].Close(ctx); err != nil {
			e.opened = false
			return err
		}
		e.cur = len(e.parts)
	}
	e.opened = false
	return nil
}

// Schema implements Operator.
func (e *Exchange) Schema() storage.Schema { return e.parts[0].Schema() }

// Children implements Operator.
func (e *Exchange) Children() []Operator { return e.parts }

// Name implements Operator.
func (e *Exchange) Name() string { return fmt.Sprintf("Gather(%d)", len(e.parts)) }

// Module implements Operator: the gather's serve path is too small to model
// as a module (its µops are charged directly in serial mode).
func (e *Exchange) Module() *codemodel.Module { return nil }

// Blocking implements Operator: the gather streams; it never materializes a
// whole input.
func (e *Exchange) Blocking() bool { return false }
