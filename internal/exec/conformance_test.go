package exec

import (
	"testing"

	"bufferdb/internal/expr"
)

// TestOperatorConformance runs the lifecycle conformance harness over every
// operator in the package.
func TestOperatorConformance(t *testing.T) {
	li := tbl(t, "lineitem")
	orders := tbl(t, "orders")
	liSch := li.Schema()
	oSch := orders.Schema()
	liKey := func() expr.Expr { return colRef(t, liSch, "l_orderkey") }
	oKey := func() expr.Expr { return colRef(t, oSch, "o_orderkey") }
	countStar := []expr.AggSpec{{Func: expr.AggCountStar}}

	cases := map[string]func() Operator{
		"SeqScan": func() Operator { return NewSeqScan(li, nil, nil) },
		"SeqScanPred": func() Operator {
			return NewSeqScan(li, shipdateFilter(t, liSch, "1995-06-17"), nil)
		},
		"IndexLookup": func() Operator {
			lu, err := NewIndexLookup(orders, orders.IndexOn("o_orderkey"), nil)
			if err != nil {
				t.Fatal(err)
			}
			return lu
		},
		"IndexFullScan": func() Operator {
			s, err := NewIndexFullScan(orders, orders.IndexOn("o_orderkey"), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"NestLoopJoin": func() Operator {
			inner, err := NewIndexLookup(orders, orders.IndexOn("o_orderkey"), nil)
			if err != nil {
				t.Fatal(err)
			}
			return NewNestLoopJoin(NewSeqScan(li, nil, nil), inner, liKey(), nil, nil)
		},
		"HashJoin": func() Operator {
			return NewHashJoin(NewSeqScan(li, nil, nil), NewSeqScan(orders, nil, nil),
				liKey(), oKey(), nil, nil)
		},
		"MergeJoin": func() Operator {
			sorted := NewSort(NewSeqScan(li, nil, nil), []SortKey{{Expr: liKey()}}, nil)
			oscan, err := NewIndexFullScan(orders, orders.IndexOn("o_orderkey"), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			return NewMergeJoin(sorted, oscan, liKey(), oKey(), nil)
		},
		"Sort": func() Operator {
			return NewSort(NewSeqScan(li, nil, nil), []SortKey{{Expr: liKey(), Desc: true}}, nil)
		},
		"Aggregate": func() Operator {
			a, err := NewAggregate(NewSeqScan(li, nil, nil), nil, countStar, nil)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"AggregateGrouped": func() Operator {
			a, err := NewAggregate(NewSeqScan(li, nil, nil),
				[]expr.Expr{colRef(t, liSch, "l_returnflag")}, countStar, nil)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"Material": func() Operator { return NewMaterial(NewSeqScan(orders, nil, nil), nil) },
		"Limit":    func() Operator { return NewLimit(NewSeqScan(li, nil, nil), 10) },
		"Filter": func() Operator {
			return NewFilter(NewSeqScan(li, nil, nil), shipdateFilter(t, liSch, "1995-06-17"), nil)
		},
		"Project": func() Operator {
			p, err := NewProject(NewSeqScan(li, nil, nil),
				[]expr.Expr{liKey()}, []string{"l_orderkey"}, nil)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"Values": func() Operator {
			vals := NewValues(liSch, nil)
			for rid := 0; rid < 5; rid++ {
				vals.Rows = append(vals.Rows, li.Row(rid))
			}
			return vals
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) { Conformance(t, name, mk) })
	}
}
