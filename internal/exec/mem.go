package exec

import (
	"errors"
	"fmt"
	"sync"

	"bufferdb/internal/storage"
)

// ErrMemoryBudgetExceeded is the sentinel wrapped by every memory-budget
// rejection. The dynamic error names the tracker, the request and the
// budget; callers test errors.Is(err, ErrMemoryBudgetExceeded).
var ErrMemoryBudgetExceeded = errors.New("memory budget exceeded")

// MemTracker is a hierarchical memory accountant: every allocating operator
// charges the bytes it retains (buffer pointer arrays, hash tables, sort
// buffers, exchange queues) against its execution's tracker, which in turn
// charges its parent — typically a per-query tracker under a process-wide
// one, mirroring the MonetDB/X100-style per-operator memory discipline.
//
// Grow returns a typed error instead of allocating past the limit, so a
// query that outgrows its budget fails cleanly while the memory it did
// charge is returned on operator Close (or, as a backstop, by ReleaseAll
// when the cursor shuts down).
//
// A MemTracker is safe for concurrent use — exchange workers charge their
// parent query's tracker from multiple goroutines. A nil *MemTracker is
// inert: every method is a no-op, which is what keeps the governor off the
// hot path when no limits are configured.
type MemTracker struct {
	name   string
	limit  int64 // 0 = unlimited (accounting only)
	parent *MemTracker

	mu   sync.Mutex
	used int64
	peak int64
}

// NewMemTracker builds a tracker. limit 0 tracks without bounding; parent
// may be nil (a root tracker, e.g. the process-wide one).
func NewMemTracker(name string, limit int64, parent *MemTracker) *MemTracker {
	return &MemTracker{name: name, limit: limit, parent: parent}
}

// Grow charges n bytes, propagating to the parent. On rejection — by this
// tracker's limit or any ancestor's — nothing is charged anywhere and the
// returned error wraps ErrMemoryBudgetExceeded.
func (t *MemTracker) Grow(n int64) error {
	if t == nil || n == 0 {
		return nil
	}
	t.mu.Lock()
	if t.limit > 0 && t.used+n > t.limit {
		used, limit := t.used, t.limit
		t.mu.Unlock()
		return fmt.Errorf("exec: %w: %s needs %d bytes with %d of %d in use",
			ErrMemoryBudgetExceeded, t.name, n, used, limit)
	}
	t.used += n
	if t.used > t.peak {
		t.peak = t.used
	}
	t.mu.Unlock()
	if err := t.parent.Grow(n); err != nil {
		t.mu.Lock()
		t.used -= n
		t.mu.Unlock()
		return err
	}
	return nil
}

// Shrink returns n bytes to the tracker and its ancestors.
func (t *MemTracker) Shrink(n int64) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	t.used -= n
	if t.used < 0 {
		// Over-shrink indicates an accounting bug; clamp rather than let a
		// later query borrow phantom headroom.
		n += t.used
		t.used = 0
	}
	t.mu.Unlock()
	t.parent.Shrink(n)
}

// Bytes reports the currently charged bytes.
func (t *MemTracker) Bytes() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.used
}

// Peak reports the high-water mark.
func (t *MemTracker) Peak() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peak
}

// ReleaseAll returns every charged byte to the ancestors and zeroes the
// tracker — the cursor-shutdown backstop that guarantees a failed (or
// panicked) query leaks nothing into the process-wide accounting even when
// some operator never reached Close.
func (t *MemTracker) ReleaseAll() {
	if t == nil {
		return
	}
	t.mu.Lock()
	n := t.used
	t.used = 0
	t.mu.Unlock()
	if n > 0 {
		t.parent.Shrink(n)
	}
}

// RowsBytes sums the byte sizes of a row slice — the charge unit for
// exchange chunks and other retained row batches.
func RowsBytes(rows []storage.Row) int64 {
	var n int64
	for _, r := range rows {
		n += int64(r.ByteSize())
	}
	return n
}
