// Package exec implements the demand-pull (Volcano-style) query execution
// engine: open/next/close iterators for scans, joins, sorting and
// aggregation, in the mold of the PostgreSQL executor the paper studies.
//
// Every operator is instrumented: each Next() invocation replays the
// operator's synthetic instruction footprint (internal/codemodel) through
// the simulated CPU (internal/cpusim) and models its tuple traffic through
// the simulated data caches. Running a plan therefore produces both the real
// query result and the hardware-counter profile the paper's figures are
// built from. With a nil CPU the engine runs uninstrumented at full speed,
// which is what the correctness tests and the wall-clock benchmarks use.
package exec

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/cpusim"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// Operator is the open-next-close iterator interface (paper §4). Next
// returns (nil, nil) at end of stream. An operator may be reopened after
// Close; Open must reset all state.
type Operator interface {
	Open(ctx *Context) error
	Next(ctx *Context) (storage.Row, error)
	Close(ctx *Context) error
	// Schema describes the rows Next produces.
	Schema() storage.Schema
	// Children returns the input operators, outer first.
	Children() []Operator
	// Name is a short display name for EXPLAIN and traces.
	Name() string
	// Module is the operator's instruction-footprint module; nil means the
	// operator has no modeled code (e.g. test fixtures).
	Module() *codemodel.Module
	// Blocking reports whether the operator must consume its entire input
	// before producing output (sort, hash build). Blocking operators
	// already batch execution below them, so the plan refinement algorithm
	// never wraps them in buffers (paper §6).
	Blocking() bool
}

// Rescannable is implemented by inner operators of a nested-loop join: the
// join repositions them with a new key for every outer tuple.
type Rescannable interface {
	Operator
	// Rescan resets the operator to produce the rows matching key.
	Rescan(key storage.Value) error
}

// Context carries per-execution state: the catalog, the (optional) CPU
// simulator, the (optional) invocation tracer, the (optional) cancellation
// context and the simulated table placements of this run.
//
// A Context belongs to exactly one executing plan; concurrent queries each
// build their own. Nothing a Context points to is mutated through it except
// the CPU and tracer, which are also per-execution.
type Context struct {
	Catalog *storage.Catalog
	// CPU is the simulated processor; nil runs uninstrumented.
	CPU *cpusim.CPU
	// Trace, when non-nil, records the operator invocation sequence
	// (paper Fig. 1).
	Trace *Tracer
	// Ctx, when non-nil, cancels the execution: Run and the long-running
	// leaf operators poll it and abort with its error.
	Ctx context.Context
	// Placements maps tables to their simulated addresses for this
	// execution (see PlaceCatalog); nil skips data-cache modeling.
	Placements Placements
	// Stats, when non-nil, collects per-operator runtime counters for this
	// execution (see StatsCollector). Operators cache their handle at Open
	// via StatsFor, so a nil collector costs one branch per invocation.
	Stats *StatsCollector
	// Mem, when non-nil, is this execution's memory tracker: allocating
	// operators charge retained bytes through GrowMem and a query that
	// outgrows its budget aborts with ErrMemoryBudgetExceeded. Nil runs
	// unaccounted at zero cost.
	Mem *MemTracker
	// Fault, when non-nil, arms deterministic fault injection: operators
	// resolve their sites at Open via FaultPoint and fire them on the hot
	// path. Nil (the production configuration) costs one branch at Open.
	Fault *faultinject.Injector

	// bitsState seeds the pseudo-random data-branch outcome stream.
	bitsState uint64
	// cancelTick counts cancellation polls so Ctx.Err is consulted only
	// every cancelEvery calls on the hot path.
	cancelTick uint
}

// cancelEvery is the polling interval (in Canceled calls) for cancellation
// checks: frequent enough that a scan aborts within microseconds, sparse
// enough to be invisible in per-tuple cost.
const cancelEvery = 64

// Canceled reports a pending cancellation. The first call after Context
// creation checks immediately; later calls poll every cancelEvery-th
// invocation. A non-nil result wraps the context's error, so callers can
// test errors.Is(err, context.Canceled).
func (c *Context) Canceled() error {
	if c.Ctx == nil {
		return nil
	}
	tick := c.cancelTick
	c.cancelTick++
	if tick%cancelEvery != 0 {
		return nil
	}
	if err := c.Ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("exec: %w: %w", ErrDeadlineExceeded, err)
		}
		return fmt.Errorf("exec: query canceled: %w", err)
	}
	return nil
}

// CanceledNow is Canceled without the polling throttle: it consults Ctx.Err
// on every call. Batch-at-a-time operators use it — one check per ~1024-row
// batch is already sparse, and throttling on top of batch granularity could
// let a short query outrun its own deadline without ever noticing.
func (c *Context) CanceledNow() error {
	if c.Ctx == nil {
		return nil
	}
	if err := c.Ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("exec: %w: %w", ErrDeadlineExceeded, err)
		}
		return fmt.Errorf("exec: query canceled: %w", err)
	}
	return nil
}

// GrowMem charges n retained bytes against the execution's memory tracker;
// inert (and branch-cheap) when no tracker is attached.
func (c *Context) GrowMem(n int64) error {
	if c.Mem == nil {
		return nil
	}
	return c.Mem.Grow(n)
}

// ShrinkMem returns n bytes to the execution's memory tracker.
func (c *Context) ShrinkMem(n int64) {
	if c.Mem != nil {
		c.Mem.Shrink(n)
	}
}

// FaultPoint resolves a fault-injection site against the execution's
// injector; nil when injection is off or nothing matches the site, so
// operators pay one branch per invocation, exactly like the stats handle.
func (c *Context) FaultPoint(site string) *faultinject.Point {
	if c.Fault == nil {
		return nil
	}
	return c.Fault.Point(site)
}

// StatsFor registers the operator behind key with this execution's stats
// collector and returns its handle, or nil when collection is disabled.
// Operators call it at Open and keep the handle for their hot path.
func (c *Context) StatsFor(key any, name string) *OpStats {
	if c.Stats == nil {
		return nil
	}
	return c.Stats.Register(key, name)
}

// ExecModule replays one invocation of m on the simulated CPU; no-op when
// uninstrumented or for module-less operators.
func (c *Context) ExecModule(m *codemodel.Module, dataBits uint64) {
	if c.CPU != nil && m != nil {
		c.CPU.ExecModule(m, dataBits)
	}
}

// ExecModuleBatch replays one amortized block invocation of m covering
// len(dataBits) input tuples: instruction fetch once, execution and branch
// outcomes per tuple (see cpusim.ExecModuleBatch). It is the instrumentation
// hook the block-oriented engine (internal/vec) drives; no-op when
// uninstrumented or for module-less operators.
func (c *Context) ExecModuleBatch(m *codemodel.Module, dataBits []uint64) {
	if c.CPU != nil && m != nil && len(dataBits) > 0 {
		c.CPU.ExecModuleBatch(m, dataBits)
	}
}

// Read models a data load.
func (c *Context) Read(addr uint64, size int) {
	if c.CPU != nil && addr != 0 {
		c.CPU.DataRead(addr, size)
	}
}

// Write models a data store.
func (c *Context) Write(addr uint64, size int) {
	if c.CPU != nil && addr != 0 {
		c.CPU.DataWrite(addr, size)
	}
}

// DataBits combines a meaningful outcome bit (bit 0: predicate result, join
// match, …) with pseudo-random noise bits for the remaining data-dependent
// branch sites of a module.
func (c *Context) DataBits(outcome bool) uint64 {
	c.bitsState += 0x9e3779b97f4a7c15
	z := c.bitsState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z ^= z >> 27
	bits := z &^ 1
	if outcome {
		bits |= 1
	}
	return bits
}

// TablePlacement is one table's simulated base address and mean row width
// in a CPU's data-address space.
type TablePlacement struct {
	Base     uint64
	RowBytes int
}

// Placements maps tables to their simulated placement for one execution.
// Placement used to live on storage.Table itself, but that made concurrent
// instrumented runs overwrite each other's address spaces; it is per-CPU
// state, so it rides on the Context now.
type Placements map[*storage.Table]TablePlacement

// Addr returns the simulated address of row id in table t, or ok=false
// when t has not been placed in this execution's address space.
func (p Placements) Addr(t *storage.Table, id int) (addr uint64, size int, ok bool) {
	pl, ok := p[t]
	if !ok {
		return 0, 0, false
	}
	return pl.Base + uint64(id)*uint64(pl.RowBytes), pl.RowBytes, true
}

// PlaceCatalog assigns simulated memory addresses to every table in the
// catalog so scans generate data-cache traffic. Call once per CPU and
// attach the result to the execution's Context.
func PlaceCatalog(cpu *cpusim.CPU, cat *storage.Catalog) Placements {
	placements := make(Placements)
	for _, t := range cat.Tables() {
		rowBytes := t.AvgRowBytes()
		base := cpu.AllocData(rowBytes * (t.NumRows() + 1))
		placements[t] = TablePlacement{Base: base, RowBytes: rowBytes}
	}
	return placements
}

// Arena models an operator's memory context: intermediate tuples are
// written sequentially into a fixed region, wrapping at the end. A consumer
// that reads a tuple immediately (one-tuple-at-a-time pipelining) hits the
// data cache; a consumer that reads it after a large batch of later
// allocations (a buffered plan) pays data-cache misses — sequential ones,
// which the hardware prefetcher mostly hides. This is precisely the L2
// trade-off of paper §7.4.
type Arena struct {
	base uint64
	size uint64
	off  uint64
}

// arenaBytes is large enough that even the biggest buffer-size sweep (64 K
// tuples) never laps itself within one batch.
const arenaBytes = 32 << 20

// NewArena reserves an arena on the CPU's simulated heap; with a nil CPU it
// returns an inert arena whose allocations are address 0 (unmodeled).
func NewArena(cpu *cpusim.CPU) *Arena {
	if cpu == nil {
		return &Arena{}
	}
	return &Arena{base: cpu.AllocData(arenaBytes), size: arenaBytes}
}

// Alloc reserves size bytes and returns the simulated address (0 when
// unmodeled).
func (a *Arena) Alloc(size int) uint64 {
	if a.base == 0 {
		return 0
	}
	sz := uint64(size)
	if sz > a.size {
		sz = a.size
	}
	if a.off+sz > a.size {
		a.off = 0
	}
	addr := a.base + a.off
	a.off += (sz + 63) &^ 63
	return addr
}

// Tracer records the operator execution sequence, reproducing the paper's
// Figure 1 (PCPCPC… vs PCCCCCPPPPP…).
type Tracer struct {
	max    int
	events []byte
	labels map[byte]string
}

// NewTracer records up to max events.
func NewTracer(max int) *Tracer {
	return &Tracer{max: max, labels: make(map[byte]string)}
}

// Record appends one event tagged by a single-letter operator label.
func (t *Tracer) Record(label byte, name string) {
	if len(t.events) < t.max {
		t.events = append(t.events, label)
		if _, ok := t.labels[label]; !ok {
			t.labels[label] = name
		}
	}
}

// String renders the recorded sequence, e.g. "PCPCPCPC".
func (t *Tracer) String() string { return string(t.events) }

// Legend maps labels to operator names.
func (t *Tracer) Legend() map[byte]string { return t.labels }

// Run drives a plan to completion and returns all result rows. It opens,
// drains and closes the root operator. When ctx carries a cancellation
// context, the pull loop polls it and aborts with an error wrapping the
// context's, closing the plan on the way out. Panics anywhere in the
// operator tree are contained: the plan is torn down and the error wraps
// ErrOperatorPanic.
func Run(ctx *Context, root Operator) ([]storage.Row, error) {
	if err := CallOpen(ctx, root); err != nil {
		_ = CallClose(ctx, root)
		return nil, err
	}
	var out []storage.Row
	for {
		if err := ctx.Canceled(); err != nil {
			_ = CallClose(ctx, root)
			return nil, err
		}
		row, err := CallNext(ctx, root)
		if err != nil {
			_ = CallClose(ctx, root)
			return nil, err
		}
		if row == nil {
			break
		}
		out = append(out, row)
	}
	if err := root.Close(ctx); err != nil {
		return nil, err
	}
	return out, nil
}

// HashRows returns an FNV-1a hash over a result set's rendered rows,
// including row order. Callers use it to assert two plan variants produced
// identical results without retaining both result sets.
func HashRows(rows []storage.Row) uint64 {
	h := fnv.New64a()
	for _, r := range rows {
		h.Write([]byte(r.String()))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// Walk visits the operator tree in depth-first pre-order.
func Walk(op Operator, visit func(Operator)) {
	visit(op)
	for _, c := range op.Children() {
		Walk(c, visit)
	}
}

// FormatPlan renders an operator tree as an indented EXPLAIN-style listing.
func FormatPlan(op Operator) string {
	var b []byte
	var rec func(o Operator, depth int)
	rec = func(o Operator, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		b = append(b, o.Name()...)
		b = append(b, '\n')
		for _, c := range o.Children() {
			rec(c, depth+1)
		}
	}
	rec(op, 0)
	return string(b)
}

// errNotOpen is a shared guard error for operators driven before Open.
func errNotOpen(name string) error {
	return fmt.Errorf("exec: %s.Next called before Open", name)
}
