package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 70000)}
	types := []Type{THello, TQuery, TRowBatch, TError}
	for i, p := range payloads {
		if err := WriteFrame(&buf, types[i], p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i, p := range payloads {
		ft, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if ft != types[i] {
			t.Fatalf("frame %d: type %v, want %v", i, ft, types[i])
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(got), len(p))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}

func TestFrameOversize(t *testing.T) {
	if err := WriteFrame(io.Discard, TQuery, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("WriteFrame accepted an oversized payload")
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], MaxFrame+1)
	hdr[4] = byte(TQuery)
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("ReadFrame accepted an oversized length prefix")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TDone, []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{1, 4, 5, 7, len(raw) - 1} {
		if _, _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("ReadFrame accepted a frame truncated to %d bytes", cut)
		}
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []any{
		nil,
		true,
		false,
		int64(-42),
		int64(1) << 60,
		3.14159,
		"",
		"hello, wörld",
		strings.Repeat("x", 4096),
		time.Unix(820454400, 0).UTC(), // 1996-01-01, a TPC-H date
	}
	var b Builder
	for _, v := range vals {
		if err := b.Value(v); err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
	}
	r := NewReader(b.Bytes())
	for i, want := range vals {
		got := r.Value()
		if tv, ok := want.(time.Time); ok {
			if !tv.Equal(got.(time.Time)) {
				t.Fatalf("value %d: got %v, want %v", i, got, want)
			}
			continue
		}
		if got != want {
			t.Fatalf("value %d: got %#v, want %#v", i, got, want)
		}
	}
	if err := r.Err(); err != nil {
		t.Fatalf("reader error: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

func TestValueRejectsUnknownType(t *testing.T) {
	var b Builder
	if err := b.Value(struct{}{}); err == nil {
		t.Fatal("encoded an unsupported type")
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{0x01}) // too short for a u32
	_ = r.U32()
	if r.Err() == nil {
		t.Fatal("truncated read did not set the error")
	}
	// Later reads stay zero-valued and don't panic.
	if got := r.U64(); got != 0 {
		t.Fatalf("read after error returned %d", got)
	}
	if s := r.String(); s != "" {
		t.Fatalf("read after error returned %q", s)
	}
}

func TestOptsRoundTrip(t *testing.T) {
	cases := []QueryOpts{
		{},
		{Engine: "vec", Parallelism: 4, TimeoutMS: 1500, DisableRefinement: true, NoResultCache: true},
		{Engine: "volcano", Parallelism: -1},
		{ForceJoin: "nestloop", BufferSize: 512, MemoryBudget: 64 << 20, AdmissionWaitMS: 250},
		{Engine: "push", TimeoutMS: 1, ForceJoin: "hash", BufferSize: -3,
			MemoryBudget: -1, AdmissionWaitMS: 9999999},
		{Engine: "vec", Slice: 3},
	}
	for i, o := range cases {
		var b Builder
		b.Opts(o)
		r := NewReader(b.Bytes())
		got := r.Opts()
		if err := r.Err(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != o {
			t.Fatalf("case %d: got %+v, want %+v", i, got, o)
		}
	}
}

func TestCacheKeySeparatesOptions(t *testing.T) {
	sql := "SELECT COUNT(*) FROM lineitem"
	keys := map[string]bool{}
	for _, o := range []QueryOpts{
		{},
		{Engine: "vec"},
		{Parallelism: 4},
		{DisableRefinement: true},
		{ForceJoin: "hash"},
		{ForceJoin: "merge"},
		{BufferSize: 256},
		{Slice: 2},
	} {
		keys[o.CacheKey(sql)] = true
	}
	if len(keys) != 8 {
		t.Fatalf("cache keys collide: %v", keys)
	}
	// Execution-time knobs must NOT split the key.
	a := QueryOpts{TimeoutMS: 10}.CacheKey(sql)
	b := QueryOpts{NoResultCache: true}.CacheKey(sql)
	if a != b || a != (QueryOpts{}).CacheKey(sql) {
		t.Fatal("execution-time options leaked into the plan cache key")
	}
	if (QueryOpts{MemoryBudget: 1024}).CacheKey(sql) != (QueryOpts{}).CacheKey(sql) {
		t.Fatal("memory budget leaked into the plan cache key")
	}
	if (QueryOpts{AdmissionWaitMS: 5}).CacheKey(sql) != (QueryOpts{}).CacheKey(sql) {
		t.Fatal("admission wait leaked into the plan cache key")
	}
}
