package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Builder appends protocol primitives to a growing payload. The zero value
// is ready to use; Bytes returns the accumulated payload.
type Builder struct {
	buf []byte
}

// Bytes returns the built payload.
func (b *Builder) Bytes() []byte { return b.buf }

// Len returns the current payload size.
func (b *Builder) Len() int { return len(b.buf) }

// Reset empties the builder, keeping its capacity.
func (b *Builder) Reset() { b.buf = b.buf[:0] }

// U8 appends a byte.
func (b *Builder) U8(v byte) { b.buf = append(b.buf, v) }

// U16 appends a big-endian uint16.
func (b *Builder) U16(v uint16) { b.buf = binary.BigEndian.AppendUint16(b.buf, v) }

// U32 appends a big-endian uint32.
func (b *Builder) U32(v uint32) { b.buf = binary.BigEndian.AppendUint32(b.buf, v) }

// U64 appends a big-endian uint64.
func (b *Builder) U64(v uint64) { b.buf = binary.BigEndian.AppendUint64(b.buf, v) }

// I64 appends a big-endian int64 (two's complement).
func (b *Builder) I64(v int64) { b.U64(uint64(v)) }

// F64 appends a float64 as IEEE-754 bits.
func (b *Builder) F64(v float64) { b.U64(math.Float64bits(v)) }

// String appends a uint32 length prefix and the string's bytes.
func (b *Builder) String(s string) {
	b.U32(uint32(len(s)))
	b.buf = append(b.buf, s...)
}

// Reader consumes protocol primitives from a payload. Errors are sticky:
// after the first malformed read every later read returns the zero value,
// and Err reports the failure once at the end — mirroring bufio.Scanner's
// usage pattern so per-field error checks don't litter the decoders.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the unread byte count.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated payload reading %s at offset %d", what, r.off)
	}
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail("u8")
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail("u16")
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail("u32")
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// I64 reads a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail("string")
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// Value kind tags for the row codec. The set mirrors the native Go values
// the engine's Result rows carry.
const (
	valNull  byte = 0
	valBool  byte = 1
	valInt   byte = 2
	valFloat byte = 3
	valStr   byte = 4
	valTime  byte = 5 // unix seconds, rendered UTC
)

// Value appends one row cell: a kind tag plus its encoding. Supported types
// are exactly the engine's native result values (nil, bool, int64, float64,
// string, time.Time).
func (b *Builder) Value(v any) error {
	switch x := v.(type) {
	case nil:
		b.U8(valNull)
	case bool:
		b.U8(valBool)
		if x {
			b.U8(1)
		} else {
			b.U8(0)
		}
	case int64:
		b.U8(valInt)
		b.I64(x)
	case float64:
		b.U8(valFloat)
		b.F64(x)
	case string:
		b.U8(valStr)
		b.String(x)
	case time.Time:
		b.U8(valTime)
		b.I64(x.Unix())
	default:
		return fmt.Errorf("wire: cannot encode value of type %T", v)
	}
	return nil
}

// Value reads one row cell back into its native Go type.
func (r *Reader) Value() any {
	switch k := r.U8(); k {
	case valNull:
		return nil
	case valBool:
		return r.U8() != 0
	case valInt:
		return r.I64()
	case valFloat:
		return r.F64()
	case valStr:
		return r.String()
	case valTime:
		return time.Unix(r.I64(), 0).UTC()
	default:
		if r.err == nil {
			r.err = fmt.Errorf("wire: unknown value kind 0x%02x at offset %d", k, r.off-1)
		}
		return nil
	}
}

// QueryOpts is the per-statement tuning a client may ship with TQuery and
// TPrepare. The zero value means "server defaults".
type QueryOpts struct {
	// Engine selects the execution engine ("" = server default).
	Engine string
	// Parallelism overrides the scan fan-out (0 = server default).
	Parallelism int32
	// TimeoutMS bounds the query's wall clock in milliseconds (0 = none).
	TimeoutMS int64
	// DisableRefinement runs the conventional (unbuffered) plan.
	DisableRefinement bool
	// NoResultCache opts this statement out of the server's result-reuse
	// cache even when the server has it enabled.
	NoResultCache bool
	// ForceJoin selects the join algorithm ("" = planner default); the
	// server validates the name at the protocol boundary.
	ForceJoin string
	// BufferSize overrides the capacity of buffers the refinement pass
	// inserts (0 = server default).
	BufferSize int32
	// MemoryBudget caps the query's tracked allocations in bytes
	// (0 = no per-query cap; the server's MemoryLimit still applies).
	MemoryBudget int64
	// AdmissionWaitMS overrides how long the query may queue for an
	// execution slot before being shed (0 = server default).
	AdmissionWaitMS int64
	// Slice addresses one hash slice on a server hosting several replicas:
	// 0 targets the server's default (primary) slice, k>0 targets slice
	// index k-1. Servers reject slices they do not host.
	Slice int32
}

// Opt flag bits.
const (
	optDisableRefinement byte = 1 << 0
	optNoResultCache     byte = 1 << 1
)

// Opts appends an encoded QueryOpts. Every field is always encoded — the
// flags byte carries only booleans — so decode never depends on which
// options the client happened to set.
func (b *Builder) Opts(o QueryOpts) {
	var flags byte
	if o.DisableRefinement {
		flags |= optDisableRefinement
	}
	if o.NoResultCache {
		flags |= optNoResultCache
	}
	b.U8(flags)
	b.String(o.Engine)
	b.U32(uint32(o.Parallelism))
	b.I64(o.TimeoutMS)
	b.String(o.ForceJoin)
	b.U32(uint32(o.BufferSize))
	b.I64(o.MemoryBudget)
	b.I64(o.AdmissionWaitMS)
	b.U32(uint32(o.Slice))
}

// Opts reads an encoded QueryOpts.
func (r *Reader) Opts() QueryOpts {
	flags := r.U8()
	return QueryOpts{
		Engine:            r.String(),
		Parallelism:       int32(r.U32()),
		TimeoutMS:         r.I64(),
		ForceJoin:         r.String(),
		BufferSize:        int32(r.U32()),
		MemoryBudget:      r.I64(),
		AdmissionWaitMS:   r.I64(),
		Slice:             int32(r.U32()),
		DisableRefinement: flags&optDisableRefinement != 0,
		NoResultCache:     flags&optNoResultCache != 0,
	}
}

// CacheKey renders the option fields that shape a plan (not per-execution
// knobs like the timeout or memory budget) alongside the SQL text, for the
// server's statement and result caches. Slice participates because each
// slice is a distinct catalog: the same SQL compiled against slice 0 and
// slice 2 are different plans over different data.
func (o QueryOpts) CacheKey(sql string) string {
	ref := byte('r')
	if o.DisableRefinement {
		ref = 'c'
	}
	return fmt.Sprintf("%s|%d|%c|%s|%d|%d|%s", o.Engine, o.Parallelism, ref, o.ForceJoin, o.BufferSize, o.Slice, sql)
}
