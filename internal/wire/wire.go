// Package wire defines the bufferdb client/server protocol: a stream of
// length-prefixed binary frames over a byte-oriented transport (TCP). Both
// internal/server and internal/client speak exactly this package — there is
// no other source of truth for the bytes on the wire.
//
// Frame layout:
//
//	uint32 big-endian  payload length (excluding the 5-byte header)
//	byte               frame type
//	[]byte             payload
//
// A session opens with Hello/HelloOK (magic + protocol version), then the
// client drives request/response exchanges. Responses to a Query or Execute
// are a Columns frame, zero or more RowBatch frames, and a terminal Done —
// or a terminal Error frame at any point, whose stable code maps the
// engine's sentinel errors (busy, deadline, memory budget, contained panic,
// cancellation) across the connection. The only frame a client may send
// while a response is streaming is Cancel.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// Magic opens every Hello frame: "BDB1" as a big-endian uint32.
	Magic uint32 = 0x42444231
	// Version is the protocol revision; servers reject other versions.
	Version byte = 1
	// MaxFrame caps a frame payload. Row batches are built well under it;
	// a peer announcing a larger frame is treated as a protocol error
	// rather than an allocation request.
	MaxFrame = 16 << 20
)

// Type identifies a frame. Client-originated types sit below 0x80,
// server-originated types at or above it.
type Type byte

// Client → server frames.
const (
	// THello carries magic + version; must be the first frame.
	THello Type = 0x01
	// TQuery is an ad-hoc statement: options + SQL text.
	TQuery Type = 0x02
	// TPrepare plans a statement for repeated execution: options + SQL.
	TPrepare Type = 0x03
	// TExecute runs a prepared statement by id.
	TExecute Type = 0x04
	// TCancel aborts the response currently streaming on this connection.
	// Legal only between TQuery/TExecute and the terminal Done/Error.
	TCancel Type = 0x05
	// TCloseStmt discards a prepared statement id.
	TCloseStmt Type = 0x06
	// TTables asks for the catalog's table names and cardinalities.
	TTables Type = 0x07
)

// Server → client frames.
const (
	// THelloOK acknowledges the handshake: version + server info string.
	THelloOK Type = 0x81
	// TColumns opens a result stream: the output column names.
	TColumns Type = 0x82
	// TRowBatch carries a bounded batch of encoded rows.
	TRowBatch Type = 0x83
	// TDone terminates a successful result stream: total row count.
	TDone Type = 0x84
	// TError terminates a request (or the whole session, for protocol
	// errors): stable code + message.
	TError Type = 0x85
	// TPrepared acknowledges TPrepare: the statement id.
	TPrepared Type = 0x86
	// TTablesOK answers TTables.
	TTablesOK Type = 0x87
)

// String names a frame type for error messages.
func (t Type) String() string {
	switch t {
	case THello:
		return "Hello"
	case TQuery:
		return "Query"
	case TPrepare:
		return "Prepare"
	case TExecute:
		return "Execute"
	case TCancel:
		return "Cancel"
	case TCloseStmt:
		return "CloseStmt"
	case TTables:
		return "Tables"
	case THelloOK:
		return "HelloOK"
	case TColumns:
		return "Columns"
	case TRowBatch:
		return "RowBatch"
	case TDone:
		return "Done"
	case TError:
		return "Error"
	case TPrepared:
		return "Prepared"
	case TTablesOK:
		return "TablesOK"
	}
	return fmt.Sprintf("Type(0x%02x)", byte(t))
}

// Code is a stable error class carried by TError frames. The client maps
// codes back to the engine's sentinel errors so errors.Is works across the
// wire exactly as it does in-process.
type Code uint16

// Error codes.
const (
	// CodeQuery is a statement failure with no more specific class:
	// parse errors, unknown tables, execution errors.
	CodeQuery Code = 1
	// CodeBusy maps ErrServerBusy: admission control shed the query.
	CodeBusy Code = 2
	// CodeDeadline maps ErrDeadlineExceeded.
	CodeDeadline Code = 3
	// CodeOOM maps ErrMemoryBudgetExceeded.
	CodeOOM Code = 4
	// CodePanic maps ErrQueryPanic: a contained operator panic.
	CodePanic Code = 5
	// CodeCanceled reports a query aborted by a Cancel frame or client
	// disconnect observed server-side.
	CodeCanceled Code = 6
	// CodeProtocol reports a malformed or out-of-order frame; the server
	// closes the connection after sending it.
	CodeProtocol Code = 7
	// CodeUnknownStmt reports an Execute/CloseStmt id the session never
	// prepared.
	CodeUnknownStmt Code = 8
	// CodeShutdown reports the server is draining; retry elsewhere/later.
	CodeShutdown Code = 9
	// CodeUnavailable reports a distributed query that failed because a
	// shard could not be reached (or died mid-stream). The coordinator
	// cancels the sibling shard streams before sending it.
	CodeUnavailable Code = 10
)

// String names a code for logs and error text.
func (c Code) String() string {
	switch c {
	case CodeQuery:
		return "query"
	case CodeBusy:
		return "busy"
	case CodeDeadline:
		return "deadline"
	case CodeOOM:
		return "oom"
	case CodePanic:
		return "panic"
	case CodeCanceled:
		return "canceled"
	case CodeProtocol:
		return "protocol"
	case CodeUnknownStmt:
		return "unknown-stmt"
	case CodeShutdown:
		return "shutdown"
	case CodeUnavailable:
		return "unavailable"
	}
	return fmt.Sprintf("code(%d)", uint16(c))
}

// WriteFrame writes one frame. The writer is typically buffered; callers
// flush at response boundaries.
func WriteFrame(w io.Writer, t Type, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d bytes exceeds MaxFrame", len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, rejecting payloads over MaxFrame before
// allocating.
func ReadFrame(r io.Reader) (Type, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: incoming frame of %d bytes exceeds MaxFrame", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return Type(hdr[4]), payload, nil
}
