// Package faultinject is a deterministic, seed-driven fault-injection
// harness for the execution engines. An Injector carries a list of fault
// rules; operators acquire a Point for each named injection site at Open
// (via exec.Context.FaultPoint) and call Fire on their hot path. A site
// with no matching rule costs one nil check; an execution with no injector
// attached costs the same — the harness is strictly zero-overhead when
// disabled, like the stats collector.
//
// Determinism: a rule fires on a schedule derived only from the rule's own
// hit counter (After/Every) or from a splitmix64 stream seeded by the
// injector seed and the site name (Prob). Two runs with the same plan, the
// same injector configuration and the same seed inject the same faults at
// the same invocations, which is what lets the chaos suite replay a failure.
package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error. Chaos tests
// assert errors.Is(err, ErrInjected) end to end through the facade.
var ErrInjected = errors.New("injected fault")

// Kind selects what a firing rule does.
type Kind int

const (
	// KindError makes Fire return an error wrapping ErrInjected.
	KindError Kind = iota
	// KindPanic makes Fire panic with a *PanicValue. The engines' drive
	// loops convert it (like any other panic) into a typed error.
	KindPanic
	// KindLatency makes Fire sleep for the rule's Latency and return nil —
	// for driving deadline and cancellation paths.
	KindLatency
)

// String names the kind for messages.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindLatency:
		return "latency"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// PanicValue is the value KindPanic panics with, so tests can tell an
// injected panic apart from a genuine engine bug in recovered output.
type PanicValue struct {
	Site string
}

// Error makes an injected panic, once recovered and wrapped, also satisfy
// errors.Is(err, ErrInjected) when the recovery path preserves the value.
func (p *PanicValue) Error() string {
	return fmt.Sprintf("injected panic at %s", p.Site)
}

// Unwrap links the panic value to ErrInjected.
func (p *PanicValue) Unwrap() error { return ErrInjected }

// Fault is one injection rule. The zero Match matches every site; otherwise
// a site matches when it contains Match as a substring (site names are
// "<operator name>:<point>", e.g. "HashJoin(l_orderkey = o_orderkey):next").
type Fault struct {
	// Match is a substring selecting the sites this rule arms.
	Match string
	// Kind is what happens when the rule fires.
	Kind Kind
	// After skips the first After matching invocations (counted across all
	// sites the rule matches), so a fault can land mid-stream rather than
	// on the first tuple.
	After uint64
	// Every fires on every Every-th invocation past After; 0 fires exactly
	// once (at invocation After).
	Every uint64
	// Prob, when > 0, gates each scheduled firing by a deterministic
	// pseudo-random draw in [0,1) from the injector's seeded stream.
	Prob float64
	// Latency is the sleep duration for KindLatency rules.
	Latency time.Duration
}

// rule is an armed Fault with its invocation counter.
type rule struct {
	Fault
	hits  atomic.Uint64
	fired atomic.Uint64
}

// Injector holds the armed rules for one execution. It is safe for
// concurrent use: exchange workers share their parent's injector.
type Injector struct {
	seed  uint64
	rules []*rule
}

// New builds an injector over the given rules.
func New(seed uint64, faults ...Fault) *Injector {
	in := &Injector{seed: seed}
	for _, f := range faults {
		in.rules = append(in.rules, &rule{Fault: f})
	}
	return in
}

// Fired reports how many faults the injector has triggered so far, summed
// over all rules (latency firings included).
func (in *Injector) Fired() uint64 {
	if in == nil {
		return 0
	}
	var n uint64
	for _, r := range in.rules {
		n += r.fired.Load()
	}
	return n
}

// Point is the armed per-site handle operators keep on their struct: the
// subset of rules matching the site. A nil *Point (no matching rules, or no
// injector) fires nothing and costs one branch.
type Point struct {
	site  string
	seed  uint64
	rules []*rule
}

// Point resolves a site name against the injector's rules, returning nil
// when nothing matches — so disabled sites stay off the hot path entirely.
func (in *Injector) Point(site string) *Point {
	if in == nil {
		return nil
	}
	var matched []*rule
	for _, r := range in.rules {
		if r.Match == "" || strings.Contains(site, r.Match) {
			matched = append(matched, r)
		}
	}
	if len(matched) == 0 {
		return nil
	}
	return &Point{site: site, seed: in.seed, rules: matched}
}

// Fire evaluates the point's rules in order; the first rule whose schedule
// is due triggers. Nil receivers are inert.
func (p *Point) Fire() error {
	if p == nil {
		return nil
	}
	for _, r := range p.rules {
		n := r.hits.Add(1) - 1
		if n < r.After {
			continue
		}
		if r.Every > 0 {
			if (n-r.After)%r.Every != 0 {
				continue
			}
		} else if n != r.After {
			continue
		}
		if r.Prob > 0 && splitmix(p.seed^hashSite(p.site)^n) >= r.Prob {
			continue
		}
		r.fired.Add(1)
		switch r.Kind {
		case KindPanic:
			panic(&PanicValue{Site: p.site})
		case KindLatency:
			time.Sleep(r.Latency)
		default:
			return fmt.Errorf("faultinject: %w at %s (invocation %d)", ErrInjected, p.site, n)
		}
	}
	return nil
}

// hashSite folds a site name into the seed stream (FNV-1a).
func hashSite(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// splitmix maps a 64-bit state to a uniform float64 in [0,1).
func splitmix(x uint64) float64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
