package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestPointResolution(t *testing.T) {
	in := New(1, Fault{Match: "HashJoin", Kind: KindError})
	if p := in.Point("SeqScan(lineitem):next"); p != nil {
		t.Fatalf("non-matching site resolved to a live point")
	}
	if p := in.Point("HashJoin(a = b):next"); p == nil {
		t.Fatalf("matching site resolved to nil")
	}
	var nilInj *Injector
	if p := nilInj.Point("anything"); p != nil {
		t.Fatalf("nil injector handed out a point")
	}
	var nilPoint *Point
	if err := nilPoint.Fire(); err != nil {
		t.Fatalf("nil point fired: %v", err)
	}
}

func TestErrorSchedule(t *testing.T) {
	in := New(1, Fault{Match: "scan", Kind: KindError, After: 3})
	p := in.Point("scan:next")
	for i := 0; i < 3; i++ {
		if err := p.Fire(); err != nil {
			t.Fatalf("fired early at invocation %d: %v", i, err)
		}
	}
	err := p.Fire()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("invocation 3: got %v, want ErrInjected", err)
	}
	// Every unset: fires exactly once.
	for i := 0; i < 10; i++ {
		if err := p.Fire(); err != nil {
			t.Fatalf("one-shot rule fired again: %v", err)
		}
	}
	if got := in.Fired(); got != 1 {
		t.Fatalf("Fired() = %d, want 1", got)
	}
}

func TestEverySchedule(t *testing.T) {
	in := New(1, Fault{Kind: KindError, After: 1, Every: 2})
	p := in.Point("x")
	var pattern []bool
	for i := 0; i < 7; i++ {
		pattern = append(pattern, p.Fire() != nil)
	}
	want := []bool{false, true, false, true, false, true, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("invocation %d: fired=%v, want %v (pattern %v)", i, pattern[i], want[i], pattern)
		}
	}
}

func TestPanicKind(t *testing.T) {
	in := New(1, Fault{Kind: KindPanic})
	p := in.Point("agg:next")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("KindPanic did not panic")
		}
		pv, ok := r.(*PanicValue)
		if !ok {
			t.Fatalf("panicked with %T, want *PanicValue", r)
		}
		if !errors.Is(pv, ErrInjected) {
			t.Fatalf("panic value does not unwrap to ErrInjected")
		}
	}()
	_ = p.Fire()
}

func TestLatencyKind(t *testing.T) {
	in := New(1, Fault{Kind: KindLatency, Latency: 10 * time.Millisecond, Every: 1})
	p := in.Point("scan")
	start := time.Now()
	if err := p.Fire(); err != nil {
		t.Fatalf("latency rule returned error: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("latency fire returned after %v, want >= 10ms", d)
	}
}

func TestProbDeterministic(t *testing.T) {
	run := func() []bool {
		in := New(42, Fault{Kind: KindError, Every: 1, Prob: 0.5})
		p := in.Point("scan:next")
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, p.Fire() != nil)
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different schedules at invocation %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("Prob=0.5 fired %d/%d times; schedule is not probabilistic", fired, len(a))
	}
}
