package cpusim

// BranchPredictor is a gshare-style direction predictor: a table of two-bit
// saturating counters indexed by the branch PC xor-folded with a short
// global history register. The paper attributes part of buffering's win to
// branch behavior — interleaved operators mix outcome patterns at shared
// branch sites, while buffered execution produces long single-operator runs
// the counters can track. That effect emerges here mechanically.
type BranchPredictor struct {
	counters    []uint8
	indexMask   uint64
	history     uint64
	historyMask uint64

	branches    uint64
	mispredicts uint64
}

// NewBranchPredictor builds a predictor with 2^tableBits counters and
// historyBits bits of global history. Counters start weakly not-taken.
func NewBranchPredictor(tableBits, historyBits int) *BranchPredictor {
	size := 1 << tableBits
	return &BranchPredictor{
		counters:    make([]uint8, size),
		indexMask:   uint64(size - 1),
		historyMask: (1 << historyBits) - 1,
	}
}

// Branch records the execution of a conditional branch at pc with the given
// outcome, returning whether the prediction was correct.
func (p *BranchPredictor) Branch(pc uint64, taken bool) bool {
	idx := ((pc >> 2) ^ p.history) & p.indexMask
	ctr := p.counters[idx]
	predictedTaken := ctr >= 2

	// Update the saturating counter and history.
	if taken {
		if ctr < 3 {
			p.counters[idx] = ctr + 1
		}
	} else if ctr > 0 {
		p.counters[idx] = ctr - 1
	}
	p.history = ((p.history << 1) | b2u(taken)) & p.historyMask

	p.branches++
	correct := predictedTaken == taken
	if !correct {
		p.mispredicts++
	}
	return correct
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Branches returns the number of executed branches.
func (p *BranchPredictor) Branches() uint64 { return p.branches }

// Mispredicts returns the number of mispredicted branches.
func (p *BranchPredictor) Mispredicts() uint64 { return p.mispredicts }

// Reset clears table, history and counters.
func (p *BranchPredictor) Reset() {
	for i := range p.counters {
		p.counters[i] = 0
	}
	p.history, p.branches, p.mispredicts = 0, 0, 0
}
