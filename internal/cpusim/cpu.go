package cpusim

import (
	"fmt"

	"bufferdb/internal/codemodel"
)

// Config describes the simulated machine. DefaultConfig matches the paper's
// Table 1 Pentium 4 where the paper states a value, with documented
// adaptations (see DESIGN.md §4): the 12K-µop trace cache is modeled as the
// paper's own 16 KB upper-estimate L1I (fully associative — see ICache), and
// the ITLB is scaled to 58 entries to preserve the paper's pressure ratio
// against our smaller synthetic text segment.
type Config struct {
	// ClockHz converts cycles to seconds (paper: 2.4 GHz).
	ClockHz float64
	// BytesPerUop converts fetched instruction bytes to µops.
	BytesPerUop int
	// CyclesPerUop is the ideal execution cost per µop.
	CyclesPerUop float64

	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig

	ITLBEntries int
	PageBytes   int

	// Branch predictor geometry.
	BPTableBits   int
	BPHistoryBits int

	// Miss/mispredict latencies in cycles.
	LatL1IMiss    int // trace-cache miss, served from L2 (paper: ≥ 27)
	LatL1DMiss    int // L1D miss, served from L2 (paper: 18)
	LatL2Miss     int // L2 miss, served from memory (paper: 276)
	LatITLBMiss   int // page walk
	LatMispredict int // paper: ≥ 20
	// LatPrefetched is the exposed latency of an L2/memory miss covered by
	// a hardware prefetch stream.
	LatPrefetched int

	PrefetchStreams int

	// L1IPrefetchNextLines models a next-N-line instruction prefetcher:
	// on an L1I miss, the following N lines are installed alongside the
	// missing one. 0 (the default, and the paper's machine for the study)
	// disables it. The related-work ablation uses this to show that
	// instruction prefetching cuts the miss *count* on straight-line code
	// but cannot remove the serial refetch the thrashing pipeline pays —
	// the paper's §2 argument that compiler/hardware prefetching does not
	// solve the footprint problem.
	L1IPrefetchNextLines int
}

// DefaultConfig returns the simulated machine of DESIGN.md §4.
func DefaultConfig() Config {
	return Config{
		ClockHz:     2.4e9,
		BytesPerUop: 4,
		// 2.5 cycles per µop models the Pentium 4's base CPI on pointer-
		// chasing database code absent cache stalls (the paper's Table 4
		// CPIs sit well above 2 even for the buffered plans); it also
		// puts the trace-miss share of Query 1 (Fig. 4) near the paper's.
		CyclesPerUop: 2.5,
		L1I:          CacheConfig{Name: "L1I", SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		L1D:          CacheConfig{Name: "L1D", SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		L2:           CacheConfig{Name: "L2", SizeBytes: 256 << 10, LineBytes: 128, Ways: 8},

		// 58 entries: scaled from the Pentium 4's ITLB so the pressure
		// ratio against our (smaller) synthetic text segment matches the
		// paper's — a single operator's page working set fits, the Query 1
		// pipeline's does not. See DESIGN.md §4.
		ITLBEntries: 58,
		PageBytes:   4 << 10,

		BPTableBits:   12,
		BPHistoryBits: 4,

		LatL1IMiss:    27,
		LatL1DMiss:    18,
		LatL2Miss:     276,
		LatITLBMiss:   30,
		LatMispredict: 20,
		LatPrefetched: 8,

		PrefetchStreams: 8,
	}
}

// Counters is the simulator's "hardware performance counter" bank.
type Counters struct {
	Uops        uint64
	L1IMisses   uint64
	L1IAccesses uint64
	ITLBMisses  uint64
	L1DMisses   uint64
	L1DAccesses uint64
	// L2Misses counts L2 misses that went to memory at full latency.
	L2Misses uint64
	// L2MissesPrefetched counts L2 misses covered by a prefetch stream.
	L2MissesPrefetched uint64
	Branches           uint64
	Mispredicts        uint64
	// L1IPrefetches counts lines installed by the optional next-line
	// instruction prefetcher.
	L1IPrefetches uint64
}

// Cycles is the cycle account, by cause, so that the paper's stacked
// breakdown bars can be reproduced directly.
type Cycles struct {
	Base       float64 // µops × CyclesPerUop — "other cost"
	L1IMiss    float64 // trace-cache miss penalty
	ITLBMiss   float64
	L1DMiss    float64
	L2Miss     float64 // includes the residual cost of prefetched misses
	Mispredict float64
}

// Total sums all components.
func (c Cycles) Total() float64 {
	return c.Base + c.L1IMiss + c.ITLBMiss + c.L1DMiss + c.L2Miss + c.Mispredict
}

// CPU is one simulated processor. It is not safe for concurrent use; the
// engine executes queries single-threaded, exactly like the paper's
// demand-pull executor.
type CPU struct {
	Cfg Config

	// FetchHook, when set, observes every instruction-line fetch together
	// with the module executing it. The dynamic call-graph recorder
	// (internal/core) uses it to reproduce the paper's §7.1 methodology:
	// derive per-module footprints by running calibration queries and
	// watching which code actually executes.
	FetchHook func(m *codemodel.Module, lineAddr uint64)

	l1i  *ICache
	l1d  *Cache
	l2   *Cache
	itlb *TLB
	bp   *BranchPredictor
	pf   *StreamPrefetcher

	counters Counters
	cycles   Cycles

	// lastIPage short-circuits ITLB lookups for consecutive fetches from
	// one page.
	lastIPage uint64

	// heapNext is the bump allocator for simulated data addresses.
	heapNext uint64
}

// New builds a CPU. The text segment extent reserves low addresses for code
// so data allocations never alias instruction lines.
func New(cfg Config, textSegmentEnd uint64) (*CPU, error) {
	if err := cfg.L1I.Validate(); err != nil {
		return nil, err
	}
	codeBase := uint64(0x40_0000)
	if textSegmentEnd <= codeBase {
		textSegmentEnd = codeBase + (8 << 20)
	}
	l1i, err := NewICache(cfg.L1I.SizeBytes, cfg.L1I.LineBytes, codeBase, textSegmentEnd)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, err
	}
	if cfg.ITLBEntries <= 0 || cfg.PageBytes <= 0 {
		return nil, fmt.Errorf("cpusim: bad ITLB geometry")
	}
	heapBase := (textSegmentEnd + uint64(cfg.PageBytes)) &^ (uint64(cfg.PageBytes) - 1)
	if heapBase < 1<<24 {
		heapBase = 1 << 24
	}
	return &CPU{
		Cfg:       cfg,
		l1i:       l1i,
		l1d:       l1d,
		l2:        l2,
		itlb:      NewTLB(cfg.ITLBEntries, cfg.PageBytes),
		bp:        NewBranchPredictor(cfg.BPTableBits, cfg.BPHistoryBits),
		pf:        NewStreamPrefetcher(cfg.PrefetchStreams),
		heapNext:  heapBase,
		lastIPage: ^uint64(0),
	}, nil
}

// MustNew is New with a panic on error, for fixtures with known-good configs.
func MustNew(cfg Config, textSegmentEnd uint64) *CPU {
	c, err := New(cfg, textSegmentEnd)
	if err != nil {
		panic(err)
	}
	return c
}

// AllocData reserves size bytes of simulated heap and returns the base
// address, line-aligned. The engine places tables, intermediate tuple
// arenas, hash tables and buffer arrays with it.
func (c *CPU) AllocData(size int) uint64 {
	const align = 64
	base := (c.heapNext + align - 1) &^ (align - 1)
	c.heapNext = base + uint64(size)
	return base
}

// ExecModule simulates one invocation of a module: it fetches the module's
// hot instruction lines through ITLB → L1I → L2 → memory, executes its µops
// and runs its branch sites through the predictor. dataBits supplies the
// outcomes of the module's data-dependent branch sites (bit i → i-th data
// site), which the executor derives from real tuple data.
func (c *CPU) ExecModule(m *codemodel.Module, dataBits uint64) {
	c.fetchModule(m)
	c.AddUops(uint64(m.HotBytes() / c.Cfg.BytesPerUop))
	c.execSites(m, dataBits)
}

// ExecModuleBatch simulates one block-oriented (vectorized) invocation of a
// module over a batch of tuples: the module's instruction lines are fetched
// once — the batch loop keeps the code resident while it runs — while
// execution µops and branch sites are paid once per tuple, exactly as many
// as the equivalent sequence of tuple-at-a-time invocations would execute.
// dataBits carries one entry per input tuple; its length is the batch size.
// This is the instrumentation contract of internal/vec, and what makes the
// vectorized engine's counters directly comparable with the buffered
// Volcano plans (same µop and branch totals, amortized instruction fetch).
func (c *CPU) ExecModuleBatch(m *codemodel.Module, dataBits []uint64) {
	if len(dataBits) == 0 {
		return
	}
	c.fetchModule(m)
	uops := uint64(m.HotBytes() / c.Cfg.BytesPerUop)
	for _, bits := range dataBits {
		c.AddUops(uops)
		c.execSites(m, bits)
	}
}

// fetchModule streams the module's hot lines through ITLB → L1I → L2.
func (c *CPU) fetchModule(m *codemodel.Module) {
	cfg := &c.Cfg
	for _, line := range m.Lines() {
		if c.FetchHook != nil {
			c.FetchHook(m, line)
		}
		page := c.itlb.PageOf(line)
		if page != c.lastIPage {
			c.lastIPage = page
			if !c.itlb.Access(line) {
				c.counters.ITLBMisses++
				c.cycles.ITLBMiss += float64(cfg.LatITLBMiss)
			}
		}
		c.counters.L1IAccesses++
		if !c.l1i.Access(line) {
			c.counters.L1IMisses++
			c.cycles.L1IMiss += float64(cfg.LatL1IMiss)
			if !c.l2.Access(line) {
				// Cold instruction fetch from memory. Instruction-side L2
				// misses are not prefetched: the fetch stalls serially,
				// which is the paper's point about i-cache miss latency
				// being hard to overlap.
				c.counters.L2Misses++
				c.cycles.L2Miss += float64(cfg.LatL2Miss)
			}
			// Optional next-line instruction prefetch (see Config).
			for n := 1; n <= cfg.L1IPrefetchNextLines; n++ {
				next := line + uint64(n*c.Cfg.L1I.LineBytes)
				if c.l1i.InRange(next) && !c.l1i.Contains(next) {
					c.l1i.Install(next)
					c.counters.L1IPrefetches++
				}
			}
		}
	}
}

// execSites runs the module's branch sites through the predictor.
func (c *CPU) execSites(m *codemodel.Module, dataBits uint64) {
	cfg := &c.Cfg
	dataIdx := 0
	for _, site := range m.Sites() {
		var taken bool
		switch site.Kind {
		case codemodel.SiteBiased:
			taken = true
		case codemodel.SiteCallerDep:
			// Outcome depends on which module runs the shared function.
			taken = callerOutcome(site.PC, m.ID)
		case codemodel.SiteData:
			taken = dataBits&(1<<uint(dataIdx)) != 0
			dataIdx++
		}
		c.counters.Branches++
		if !c.bp.Branch(site.PC, taken) {
			c.counters.Mispredicts++
			c.cycles.Mispredict += float64(cfg.LatMispredict)
		}
	}
}

// callerOutcome derives a deterministic per-(site, module) branch direction.
// Distinct modules disagree at roughly half the shared sites, which is what
// makes interleaved execution hard on the predictor.
func callerOutcome(pc uint64, moduleID uint32) bool {
	x := pc ^ (uint64(moduleID) * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x&1 != 0
}

// AddUops charges execution cost for work that happens inside one module
// invocation beyond its per-call footprint — e.g. the comparator runs of a
// sort, whose count depends on input size rather than on calls.
func (c *CPU) AddUops(n uint64) {
	c.counters.Uops += n
	c.cycles.Base += float64(n) * c.Cfg.CyclesPerUop
}

// ExecBranch runs a single ad-hoc conditional branch through the predictor,
// for data-dependent control flow not tied to a module's static sites
// (e.g. sort comparisons).
func (c *CPU) ExecBranch(pc uint64, taken bool) {
	c.counters.Branches++
	if !c.bp.Branch(pc, taken) {
		c.counters.Mispredicts++
		c.cycles.Mispredict += float64(c.Cfg.LatMispredict)
	}
}

// DataRead simulates a load of size bytes at addr through L1D → L2 → memory.
func (c *CPU) DataRead(addr uint64, size int) { c.dataAccess(addr, size) }

// DataWrite simulates a store (the cache model is write-allocate, so the
// traffic pattern matches DataRead).
func (c *CPU) DataWrite(addr uint64, size int) { c.dataAccess(addr, size) }

func (c *CPU) dataAccess(addr uint64, size int) {
	if size <= 0 {
		return
	}
	cfg := &c.Cfg
	lineBytes := uint64(c.l1d.LineBytes())
	first := addr / lineBytes
	last := (addr + uint64(size) - 1) / lineBytes
	for line := first; line <= last; line++ {
		a := line * lineBytes
		c.counters.L1DAccesses++
		if c.l1d.Access(a) {
			continue
		}
		c.counters.L1DMisses++
		c.cycles.L1DMiss += float64(cfg.LatL1DMiss)
		if c.l2.Access(a) {
			continue
		}
		// L2 miss: covered by a prefetch stream or a full memory access.
		if c.pf.Covered(line) {
			c.counters.L2MissesPrefetched++
			c.cycles.L2Miss += float64(cfg.LatPrefetched)
		} else {
			c.counters.L2Misses++
			c.cycles.L2Miss += float64(cfg.LatL2Miss)
		}
	}
}

// Counters returns a copy of the counter bank.
func (c *CPU) Counters() Counters { return c.counters }

// CycleBreakdown returns a copy of the cycle account.
func (c *CPU) CycleBreakdown() Cycles { return c.cycles }

// TotalCycles returns the simulated cycle count.
func (c *CPU) TotalCycles() float64 { return c.cycles.Total() }

// ElapsedSeconds converts cycles to simulated wall-clock seconds.
func (c *CPU) ElapsedSeconds() float64 { return c.cycles.Total() / c.Cfg.ClockHz }

// CPI returns cycles per µop — the paper's Table 4 metric.
func (c *CPU) CPI() float64 {
	if c.counters.Uops == 0 {
		return 0
	}
	return c.cycles.Total() / float64(c.counters.Uops)
}

// Reset clears all microarchitectural state and counters, keeping the data
// heap allocations (the database stays loaded between runs, as in the
// paper's warm-cache methodology — except the caches themselves, which each
// run warms up itself).
func (c *CPU) Reset() {
	c.l1i.Reset()
	c.l1d.Reset()
	c.l2.Reset()
	c.itlb.Reset()
	c.bp.Reset()
	c.pf.Reset()
	c.counters = Counters{}
	c.cycles = Cycles{}
	c.lastIPage = ^uint64(0)
}
