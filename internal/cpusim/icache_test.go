package cpusim

import "testing"

func mustICache(t *testing.T, sizeBytes int) *ICache {
	t.Helper()
	c, err := NewICache(sizeBytes, 64, 0x1000, 0x1000+1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestICacheGeometryErrors(t *testing.T) {
	if _, err := NewICache(0, 64, 0, 100); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewICache(1024, 48, 0, 100); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if _, err := NewICache(1024, 64, 100, 100); err == nil {
		t.Error("empty code range accepted")
	}
}

func TestICacheHitMiss(t *testing.T) {
	c := mustICache(t, 1024) // 16 lines
	if c.Access(0x1000) {
		t.Error("cold hit")
	}
	if !c.Access(0x1000) || !c.Access(0x103f) {
		t.Error("warm miss")
	}
	if c.Hits() != 2 || c.Misses() != 1 || c.Resident() != 1 {
		t.Errorf("hits=%d misses=%d resident=%d", c.Hits(), c.Misses(), c.Resident())
	}
	if c.Capacity() != 16 {
		t.Errorf("capacity = %d", c.Capacity())
	}
}

func TestICacheLRUEviction(t *testing.T) {
	c := mustICache(t, 256) // 4 lines
	for i := 0; i < 4; i++ {
		c.Access(0x1000 + uint64(i*64))
	}
	c.Access(0x1000)        // line 0 becomes MRU
	c.Access(0x1000 + 4*64) // evicts line 1 (the LRU)
	if !c.Contains(0x1000) {
		t.Error("MRU evicted")
	}
	if c.Contains(0x1000 + 64) {
		t.Error("LRU survived")
	}
	if c.Resident() != 4 {
		t.Errorf("resident = %d", c.Resident())
	}
}

func TestICacheCyclicOverflowThrashes(t *testing.T) {
	// The defining property for the thrashing study: a cyclic working set
	// one line over capacity misses on every access under LRU.
	c := mustICache(t, 256) // 4 lines
	for round := 0; round < 5; round++ {
		for i := 0; i < 5; i++ {
			c.Access(0x1000 + uint64(i*64))
		}
	}
	if c.Hits() != 0 {
		t.Errorf("cyclic overflow got %d hits, want 0", c.Hits())
	}
}

func TestICacheOutOfRangePanics(t *testing.T) {
	c := mustICache(t, 1024)
	for _, addr := range []uint64{0xfff, 0x1000 + 2<<20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fetch at %#x did not panic", addr)
				}
			}()
			c.Access(addr)
		}()
	}
}

func TestICacheReset(t *testing.T) {
	c := mustICache(t, 1024)
	c.Access(0x1000)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 || c.Resident() != 0 || c.Contains(0x1000) {
		t.Error("Reset incomplete")
	}
	if c.Access(0x1000) {
		t.Error("hit after Reset")
	}
}
