package cpusim

// StreamPrefetcher models the Pentium 4's hardware prefetcher: it detects
// ascending sequential access streams at cache-line granularity and runs
// ahead of them, so that misses within a recognized stream are (mostly)
// hidden. The paper leans on this to explain why large buffers do not pay
// the full L2 data-miss cost: buffered intermediate tuples are written and
// read sequentially (§7.4).
type StreamPrefetcher struct {
	// streams holds the next expected line per tracked stream, most
	// recently used first. A small fixed count, as in hardware.
	streams []uint64
	hits    uint64
}

// NewStreamPrefetcher builds a prefetcher tracking the given number of
// concurrent streams (hardware typically follows 8–16).
func NewStreamPrefetcher(nStreams int) *StreamPrefetcher {
	return &StreamPrefetcher{streams: make([]uint64, nStreams)}
}

// Covered reports whether a miss on the given line address is covered by a
// recognized stream, and trains the stream table. A line is covered when it
// is the successor (or near-successor, tolerating one skipped line) of a
// previous access in some stream.
func (p *StreamPrefetcher) Covered(line uint64) bool {
	for i, next := range p.streams {
		if next == 0 {
			continue
		}
		if line == next || line == next+1 {
			// In-stream: advance and promote to MRU.
			copy(p.streams[1:i+1], p.streams[:i])
			p.streams[0] = line + 1
			p.hits++
			return true
		}
	}
	// New stream: allocate in the LRU slot (the last one).
	copy(p.streams[1:], p.streams[:len(p.streams)-1])
	p.streams[0] = line + 1
	return false
}

// Hits returns the number of misses covered by prefetch streams.
func (p *StreamPrefetcher) Hits() uint64 { return p.hits }

// Reset clears all streams.
func (p *StreamPrefetcher) Reset() {
	for i := range p.streams {
		p.streams[i] = 0
	}
	p.hits = 0
}
