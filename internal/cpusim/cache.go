// Package cpusim is a cycle-approximate simulator of the memory system and
// branch unit of the paper's experimental machine (a Pentium 4, Table 1).
//
// The paper measures instruction-cache thrashing with hardware counters on
// real silicon. A Go reproduction cannot do that: the Go runtime (GC,
// scheduler, its own multi-megabyte text segment) would dominate any native
// i-cache measurement. Instead, the query engine drives this simulator —
// every operator invocation replays its synthetic instruction footprint
// (internal/codemodel) through a simulated L1I/ITLB, its branch sites
// through a simulated predictor, and its tuple traffic through a simulated
// L1D/L2 with a sequential-stream prefetcher. Counters are exact, and the
// cycle model turns them into the paper's execution-time breakdowns.
package cpusim

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
}

// Validate checks structural sanity.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cpusim: cache %s: non-positive geometry", c.Name)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cpusim: cache %s: size %d not divisible by line*ways", c.Name, c.SizeBytes)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cpusim: cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	default:
		nSets := c.SizeBytes / (c.LineBytes * c.Ways)
		if nSets&(nSets-1) != 0 {
			return fmt.Errorf("cpusim: cache %s: set count %d not a power of two", c.Name, nSets)
		}
		return nil
	}
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg      CacheConfig
	nSets    int
	lineBits uint
	setMask  uint64

	// tags[set*ways+way]; valid bit folded into tag via +1 offset (tag 0
	// means empty).
	tags []uint64
	// lastUse[set*ways+way] is the LRU timestamp.
	lastUse []uint64
	clock   uint64

	hits   uint64
	misses uint64
}

// NewCache builds a cache from a validated config.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	return &Cache{
		cfg:      cfg,
		nSets:    nSets,
		lineBits: lineBits,
		setMask:  uint64(nSets - 1),
		tags:     make([]uint64, nSets*cfg.Ways),
		lastUse:  make([]uint64, nSets*cfg.Ways),
	}, nil
}

// Access looks up the line containing addr, inserting it on a miss and
// evicting the set's LRU way. It returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	tag := line + 1 // +1 so that tag 0 means "empty way"
	base := set * c.cfg.Ways
	c.clock++

	lruWay, lruUse := base, c.lastUse[base]
	for w := base; w < base+c.cfg.Ways; w++ {
		if c.tags[w] == tag {
			c.lastUse[w] = c.clock
			c.hits++
			return true
		}
		if c.lastUse[w] < lruUse {
			lruWay, lruUse = w, c.lastUse[w]
		}
	}
	c.tags[lruWay] = tag
	c.lastUse[lruWay] = c.clock
	c.misses++
	return false
}

// Contains reports whether the line holding addr is resident, without
// touching LRU state or counters. Tests use it to assert residency.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	tag := line + 1
	base := set * c.cfg.Ways
	for w := base; w < base+c.cfg.Ways; w++ {
		if c.tags[w] == tag {
			return true
		}
	}
	return false
}

// Hits returns the hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lastUse[i] = 0
	}
	c.clock, c.hits, c.misses = 0, 0, 0
}

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }
