package cpusim

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, size, line, ways int) *Cache {
	t.Helper()
	c, err := NewCache(CacheConfig{Name: "t", SizeBytes: size, LineBytes: line, Ways: ways})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{Name: "zero", SizeBytes: 0, LineBytes: 64, Ways: 4},
		{Name: "negways", SizeBytes: 1024, LineBytes: 64, Ways: -1},
		{Name: "indivisible", SizeBytes: 1000, LineBytes: 64, Ways: 4},
		{Name: "npot-line", SizeBytes: 4096, LineBytes: 48, Ways: 4},
		{Name: "npot-sets", SizeBytes: 64 * 3 * 64, LineBytes: 64, Ways: 64},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %s accepted", cfg.Name)
		}
	}
	good := CacheConfig{Name: "ok", SizeBytes: 16 << 10, LineBytes: 64, Ways: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := mustCache(t, 1024, 64, 2)
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	// Same line, different offset.
	if !c.Access(0x103f) {
		t.Error("same-line access missed")
	}
	// Next line misses.
	if c.Access(0x1040) {
		t.Error("different line hit")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache, 8 sets of 64-byte lines: addresses that differ by
	// 8*64=512 map to the same set.
	c := mustCache(t, 1024, 64, 2)
	const stride = 512
	a, b, d := uint64(0), uint64(stride), uint64(2*stride)
	c.Access(a)
	c.Access(b)
	if !c.Contains(a) || !c.Contains(b) {
		t.Fatal("fill failed")
	}
	c.Access(a) // make b the LRU
	c.Access(d) // evicts b
	if !c.Contains(a) {
		t.Error("LRU evicted the MRU line")
	}
	if c.Contains(b) {
		t.Error("LRU line not evicted")
	}
	if !c.Contains(d) {
		t.Error("newly inserted line missing")
	}
}

func TestCacheCapacityThrash(t *testing.T) {
	// Cyclic access over a working set larger than the cache misses every
	// time under LRU — the instruction-thrashing mechanism in miniature.
	c := mustCache(t, 1024, 64, 4)
	lines := 1024/64 + 4 // 20 lines over a 16-line cache
	for round := 0; round < 10; round++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i * 64))
		}
	}
	if c.Hits() != 0 {
		t.Errorf("cyclic overflow working set got %d hits, want 0", c.Hits())
	}
	// The same set shrunk to fit the cache hits after the first round.
	c.Reset()
	lines = 8
	for round := 0; round < 10; round++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i * 64))
		}
	}
	if got := c.Misses(); got != 8 {
		t.Errorf("resident working set missed %d times, want 8 cold misses", got)
	}
}

func TestCacheReset(t *testing.T) {
	c := mustCache(t, 1024, 64, 2)
	c.Access(0x40)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("counters survive Reset")
	}
	if c.Contains(0x40) {
		t.Error("contents survive Reset")
	}
}

// Property: a working set of distinct lines no larger than one way per set
// never misses after the first pass, for any alignment.
func TestCacheResidencyProperty(t *testing.T) {
	f := func(base uint32, n uint8) bool {
		c, err := NewCache(CacheConfig{Name: "p", SizeBytes: 8192, LineBytes: 64, Ways: 4})
		if err != nil {
			return false
		}
		lines := int(n%32) + 1 // ≤ 32 lines in a 128-line cache
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < lines; i++ {
				c.Access(uint64(base) + uint64(i*64))
			}
		}
		return c.Misses() == uint64(lines)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(2, 4096)
	if tlb.Access(0x1000) {
		t.Error("cold TLB hit")
	}
	if !tlb.Access(0x1fff) {
		t.Error("same-page access missed")
	}
	tlb.Access(0x2000)
	tlb.Access(0x1000) // page 1 MRU again
	tlb.Access(0x5000) // evicts page 2
	if !tlb.Access(0x1000) {
		t.Error("MRU page evicted")
	}
	if tlb.Access(0x2000) {
		t.Error("LRU page not evicted")
	}
	if tlb.PageOf(0x2fff) != 2 {
		t.Errorf("PageOf = %d", tlb.PageOf(0x2fff))
	}
	tlb.Reset()
	if tlb.Hits() != 0 || tlb.Misses() != 0 {
		t.Error("TLB counters survive Reset")
	}
}

func TestBranchPredictorLearnsBias(t *testing.T) {
	p := NewBranchPredictor(10, 0)
	const pc = 0x4400
	for i := 0; i < 100; i++ {
		p.Branch(pc, true)
	}
	if p.Branches() != 100 {
		t.Fatalf("branches = %d", p.Branches())
	}
	// A always-taken branch mispredicts at most twice while warming up.
	if p.Mispredicts() > 2 {
		t.Errorf("biased branch mispredicted %d times", p.Mispredicts())
	}
}

func TestBranchPredictorAlternationHurts(t *testing.T) {
	// The caller-mixing effect: one site, outcomes alternating per call
	// (as when two operators interleave through a shared function) versus
	// the same outcomes delivered in long runs (as under buffering).
	run := func(outcomes []bool) uint64 {
		p := NewBranchPredictor(12, 0)
		for _, o := range outcomes {
			p.Branch(0x4400, o)
		}
		return p.Mispredicts()
	}
	n := 2048
	alternating := make([]bool, n)
	batched := make([]bool, n)
	for i := range alternating {
		alternating[i] = i%2 == 0
		batched[i] = i < n/2
	}
	a, b := run(alternating), run(batched)
	if a <= 4*b {
		t.Errorf("alternating mispredicts (%d) not ≫ batched (%d)", a, b)
	}
}

func TestStreamPrefetcher(t *testing.T) {
	p := NewStreamPrefetcher(4)
	if p.Covered(100) {
		t.Error("first access covered")
	}
	for l := uint64(101); l < 120; l++ {
		if !p.Covered(l) {
			t.Errorf("sequential line %d not covered", l)
		}
	}
	// A random access is not covered…
	if p.Covered(9000) {
		t.Error("random access covered")
	}
	// …and neither is a descending stream.
	if p.Covered(8999) {
		t.Error("descending access covered")
	}
	if p.Hits() != 19 {
		t.Errorf("stream hits = %d", p.Hits())
	}
	// Multiple interleaved streams are tracked.
	p.Reset()
	p.Covered(1000)
	p.Covered(2000)
	p.Covered(3000)
	if !p.Covered(1001) || !p.Covered(2001) || !p.Covered(3001) {
		t.Error("interleaved streams lost")
	}
}
