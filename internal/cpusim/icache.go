package cpusim

import "fmt"

// ICache models the first-level instruction cache as a fully-associative
// LRU cache over a bounded code address range.
//
// Why fully associative, when the backing structure on the paper's Pentium 4
// is an 8-way trace cache? Two reasons, documented in DESIGN.md §4:
//
//  1. A trace cache is indexed by trace head and branch history, not by
//     instruction address, so it does not suffer address-conflict misses
//     the way a conventional set-indexed cache does.
//  2. Our synthetic functions are deliberately scattered across the text
//     segment (for ITLB realism). Under set indexing, that scatter would
//     manufacture conflict misses that real, linker-packed hot code does
//     not pay. Full associativity keeps the capacity behavior — which is
//     what the paper's thrashing argument is about — while discarding the
//     layout artifact.
//
// The implementation exploits the bounded code range: residency and LRU
// links are dense arrays indexed by line number, giving O(1) accesses with
// no hashing.
type ICache struct {
	base     uint64
	lineBits uint
	capacity int

	// Per-line state, indexed by (addr-base)>>lineBits.
	// next/prev form a doubly-linked LRU list threaded through resident
	// lines; -1 terminates. A line is resident iff linked (or == head).
	resident []bool
	next     []int32
	prev     []int32
	head     int32 // MRU
	tail     int32 // LRU
	count    int

	hits   uint64
	misses uint64
}

// NewICache builds an instruction cache of sizeBytes capacity with the
// given line size, covering code addresses in [base, limit).
func NewICache(sizeBytes, lineBytes int, base, limit uint64) (*ICache, error) {
	if sizeBytes <= 0 || lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cpusim: bad icache geometry size=%d line=%d", sizeBytes, lineBytes)
	}
	if limit <= base {
		return nil, fmt.Errorf("cpusim: empty code range [%#x, %#x)", base, limit)
	}
	bits := uint(0)
	for 1<<bits < lineBytes {
		bits++
	}
	nLines := int((limit-base)>>bits) + 1
	c := &ICache{
		base:     base,
		lineBits: bits,
		capacity: sizeBytes / lineBytes,
		resident: make([]bool, nLines),
		next:     make([]int32, nLines),
		prev:     make([]int32, nLines),
		head:     -1,
		tail:     -1,
	}
	return c, nil
}

// Access fetches the line containing addr, returning true on a hit.
// Misses install the line, evicting the LRU line at capacity.
func (c *ICache) Access(addr uint64) bool {
	idx := c.index(addr)
	if c.resident[idx] {
		c.hits++
		c.touch(idx)
		return true
	}
	c.misses++
	if c.count == c.capacity {
		c.evictLRU()
	}
	c.insertMRU(idx)
	return false
}

// Contains reports residency without LRU side effects.
func (c *ICache) Contains(addr uint64) bool {
	return c.resident[c.index(addr)]
}

// InRange reports whether addr falls inside the covered code range.
func (c *ICache) InRange(addr uint64) bool {
	return addr >= c.base && (addr-c.base)>>c.lineBits < uint64(len(c.resident))
}

// Install brings a line in (evicting LRU at capacity) without counting a
// hit or a miss — the prefetch path.
func (c *ICache) Install(addr uint64) {
	idx := c.index(addr)
	if c.resident[idx] {
		return
	}
	if c.count == c.capacity {
		c.evictLRU()
	}
	c.insertMRU(idx)
}

func (c *ICache) index(addr uint64) int32 {
	if addr < c.base {
		panic(fmt.Sprintf("cpusim: instruction fetch below code base: %#x", addr))
	}
	idx := (addr - c.base) >> c.lineBits
	if idx >= uint64(len(c.resident)) {
		panic(fmt.Sprintf("cpusim: instruction fetch beyond code range: %#x", addr))
	}
	return int32(idx)
}

// touch moves a resident line to the MRU position.
func (c *ICache) touch(idx int32) {
	if c.head == idx {
		return
	}
	// Unlink.
	p, n := c.prev[idx], c.next[idx]
	if p >= 0 {
		c.next[p] = n
	}
	if n >= 0 {
		c.prev[n] = p
	}
	if c.tail == idx {
		c.tail = p
	}
	// Relink at head.
	c.prev[idx] = -1
	c.next[idx] = c.head
	if c.head >= 0 {
		c.prev[c.head] = idx
	}
	c.head = idx
}

func (c *ICache) insertMRU(idx int32) {
	c.resident[idx] = true
	c.prev[idx] = -1
	c.next[idx] = c.head
	if c.head >= 0 {
		c.prev[c.head] = idx
	}
	c.head = idx
	if c.tail < 0 {
		c.tail = idx
	}
	c.count++
}

func (c *ICache) evictLRU() {
	victim := c.tail
	if victim < 0 {
		return
	}
	c.resident[victim] = false
	p := c.prev[victim]
	c.tail = p
	if p >= 0 {
		c.next[p] = -1
	} else {
		c.head = -1
	}
	c.count--
}

// Hits returns the hit count.
func (c *ICache) Hits() uint64 { return c.hits }

// Misses returns the miss count.
func (c *ICache) Misses() uint64 { return c.misses }

// Resident returns the number of currently resident lines.
func (c *ICache) Resident() int { return c.count }

// Capacity returns the line capacity.
func (c *ICache) Capacity() int { return c.capacity }

// Reset clears contents and counters.
func (c *ICache) Reset() {
	for i := range c.resident {
		c.resident[i] = false
	}
	c.head, c.tail, c.count = -1, -1, 0
	c.hits, c.misses = 0, 0
}
