package cpusim

import (
	"testing"

	"bufferdb/internal/codemodel"
)

func newTestCPU(t *testing.T, cat *codemodel.Catalog) *CPU {
	t.Helper()
	cpu, err := New(DefaultConfig(), cat.TextSegmentBytes())
	if err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	for _, cc := range []CacheConfig{cfg.L1I, cfg.L1D, cfg.L2} {
		if err := cc.Validate(); err != nil {
			t.Errorf("%s: %v", cc.Name, err)
		}
	}
	if cfg.ClockHz != 2.4e9 {
		t.Errorf("clock = %v", cfg.ClockHz)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1I.SizeBytes = 1000 // indivisible
	if _, err := New(cfg, 0); err == nil {
		t.Error("bad L1I accepted")
	}
	cfg = DefaultConfig()
	cfg.ITLBEntries = 0
	if _, err := New(cfg, 0); err == nil {
		t.Error("zero ITLB accepted")
	}
}

func TestAllocData(t *testing.T) {
	cat := codemodel.NewCatalog()
	cpu := newTestCPU(t, cat)
	a := cpu.AllocData(100)
	b := cpu.AllocData(100)
	if a%64 != 0 || b%64 != 0 {
		t.Error("allocations not line-aligned")
	}
	if b < a+100 {
		t.Error("allocations overlap")
	}
	if a <= cat.TextSegmentBytes() {
		t.Error("heap overlaps text segment")
	}
}

func TestExecModuleWarmsCache(t *testing.T) {
	cat := codemodel.NewCatalog()
	cpu := newTestCPU(t, cat)
	m := cat.MustModule("Buffer") // tiny module, fits trivially

	cpu.ExecModule(m, 0)
	cold := cpu.Counters().L1IMisses
	if cold == 0 {
		t.Fatal("no cold misses")
	}
	for i := 0; i < 10; i++ {
		cpu.ExecModule(m, 0)
	}
	if got := cpu.Counters().L1IMisses; got != cold {
		t.Errorf("warm executions missed: %d misses after warmup vs %d cold", got, cold)
	}
	if cpu.Counters().Uops == 0 || cpu.Counters().Branches == 0 {
		t.Error("uops/branches not counted")
	}
}

// TestInterleavingThrashes is the core mechanism check (paper Fig. 1):
// alternating two modules whose combined hot set exceeds the L1I must incur
// far more instruction misses per invocation than running each in long
// batches — and batching must get close to zero steady-state misses.
func TestInterleavingThrashes(t *testing.T) {
	cat := codemodel.NewCatalog()
	scan := cat.MustModule("SeqScanPred")
	agg, err := cat.AggModule([]string{"sum", "avg", "count"})
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 2000
	// Interleaved: C P C P … (Fig. 1a).
	inter := newTestCPU(t, cat)
	for i := 0; i < rounds; i++ {
		inter.ExecModule(scan, uint64(i&7))
		inter.ExecModule(agg, uint64(i&3))
	}
	// Buffered with batch size 1000: C×1000 P×1000 … (Fig. 1b).
	buf := newTestCPU(t, cat)
	const batch = 1000
	for done := 0; done < rounds; done += batch {
		for i := 0; i < batch; i++ {
			buf.ExecModule(scan, uint64(i&7))
		}
		for i := 0; i < batch; i++ {
			buf.ExecModule(agg, uint64(i&3))
		}
	}

	im, bm := inter.Counters().L1IMisses, buf.Counters().L1IMisses
	if im == 0 {
		t.Fatal("interleaved run had no L1I misses; working set too small")
	}
	reduction := 1 - float64(bm)/float64(im)
	if reduction < 0.70 {
		t.Errorf("buffering reduced L1I misses by %.0f%%, want ≥ 70%% (paper: up to 80%%)", reduction*100)
	}

	// ITLB misses must drop too (paper: ~86%).
	it, bt := inter.Counters().ITLBMisses, buf.Counters().ITLBMisses
	if it == 0 {
		t.Fatal("no ITLB misses in interleaved run")
	}
	if tlbRed := 1 - float64(bt)/float64(it); tlbRed < 0.5 {
		t.Errorf("buffering reduced ITLB misses by %.0f%%, want ≥ 50%%", tlbRed*100)
	}

	// Branch mispredictions must drop (paper: 10–45% depending on plan).
	imiss, bmiss := inter.Counters().Mispredicts, buf.Counters().Mispredicts
	if bmiss >= imiss {
		t.Errorf("buffering did not reduce mispredictions: %d vs %d", bmiss, imiss)
	}

	// And therefore simulated time improves.
	if buf.TotalCycles() >= inter.TotalCycles() {
		t.Errorf("buffered cycles %.0f >= interleaved %.0f", buf.TotalCycles(), inter.TotalCycles())
	}
}

// TestSmallGroupNoThrash mirrors the paper's Query 2: when the combined hot
// set fits in L1I, interleaving is already fine and batching buys little.
func TestSmallGroupNoThrash(t *testing.T) {
	cat := codemodel.NewCatalog()
	scan := cat.MustModule("SeqScanPred")
	agg, err := cat.AggModule([]string{"count"})
	if err != nil {
		t.Fatal(err)
	}
	cpu := newTestCPU(t, cat)
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		cpu.ExecModule(scan, uint64(i&7))
		cpu.ExecModule(agg, uint64(i&3))
	}
	missesPerRound := float64(cpu.Counters().L1IMisses) / rounds
	// Steady state must be near zero; allow the cold warmup amortized.
	if missesPerRound > 2 {
		t.Errorf("fitting working set still misses %.2f lines/round", missesPerRound)
	}
}

func TestDataAccessAndPrefetch(t *testing.T) {
	cat := codemodel.NewCatalog()
	cpu := newTestCPU(t, cat)

	// Sequential scan over 4 MB: far beyond L2, but the stream prefetcher
	// must cover almost all memory misses.
	base := cpu.AllocData(4 << 20)
	for off := 0; off < 4<<20; off += 128 {
		cpu.DataRead(base+uint64(off), 128)
	}
	ctr := cpu.Counters()
	if ctr.L1DMisses == 0 {
		t.Fatal("sequential scan produced no L1D misses")
	}
	covered := float64(ctr.L2MissesPrefetched) / float64(ctr.L2MissesPrefetched+ctr.L2Misses)
	if covered < 0.95 {
		t.Errorf("prefetch covered %.2f of sequential memory misses, want ≥ 0.95", covered)
	}

	// Random accesses over the same region: mostly uncovered.
	cpu.Reset()
	rng := uint64(12345)
	for i := 0; i < 20000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		off := (rng >> 16) % (4 << 20)
		cpu.DataRead(base+off, 8)
	}
	ctr = cpu.Counters()
	if ctr.L2Misses == 0 {
		t.Fatal("random reads never missed to memory")
	}
	covered = float64(ctr.L2MissesPrefetched) / float64(ctr.L2MissesPrefetched+ctr.L2Misses)
	if covered > 0.30 {
		t.Errorf("prefetch claimed %.2f of random misses, want ≤ 0.30", covered)
	}

	// Zero-size access is a no-op.
	before := cpu.Counters().L1DAccesses
	cpu.DataRead(base, 0)
	if cpu.Counters().L1DAccesses != before {
		t.Error("zero-size read touched the cache")
	}
}

func TestCycleAccounting(t *testing.T) {
	cat := codemodel.NewCatalog()
	cpu := newTestCPU(t, cat)
	m := cat.MustModule("SeqScan")
	cpu.ExecModule(m, 1)

	cyc := cpu.CycleBreakdown()
	if cyc.Base <= 0 || cyc.L1IMiss <= 0 {
		t.Errorf("missing cycle components: %+v", cyc)
	}
	sum := cyc.Base + cyc.L1IMiss + cyc.ITLBMiss + cyc.L1DMiss + cyc.L2Miss + cyc.Mispredict
	if got := cyc.Total(); got != sum {
		t.Errorf("Total() = %v, components sum to %v", got, sum)
	}
	if cpu.TotalCycles() != cyc.Total() {
		t.Error("TotalCycles troubles")
	}
	if sec := cpu.ElapsedSeconds(); sec <= 0 || sec > 1 {
		t.Errorf("elapsed = %v s", sec)
	}
	if cpi := cpu.CPI(); cpi < 1 {
		t.Errorf("CPI = %v, must be ≥ 1 (base cost alone is 1)", cpi)
	}
	cpu.Reset()
	if cpu.TotalCycles() != 0 || cpu.Counters().Uops != 0 {
		t.Error("Reset did not clear accounting")
	}
	if cpu.CPI() != 0 {
		t.Error("CPI over zero uops must be 0")
	}
}

func TestCallerOutcomeDiffersAcrossModules(t *testing.T) {
	// Two modules disagree at roughly half the shared sites.
	differ, total := 0, 0
	for pc := uint64(0x400000); pc < 0x400000+64*1024; pc += 997 {
		total++
		if callerOutcome(pc, 1) != callerOutcome(pc, 2) {
			differ++
		}
	}
	frac := float64(differ) / float64(total)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("modules disagree at %.2f of sites, want ≈ 0.5", frac)
	}
	// Deterministic.
	if callerOutcome(0x1234, 7) != callerOutcome(0x1234, 7) {
		t.Error("callerOutcome not deterministic")
	}
}
