package cpusim

// TLB is a fully-associative translation lookaside buffer with LRU
// replacement, used for the instruction TLB. Entry counts are small
// (tens of entries), so the linear scan is cheap; callers additionally
// short-circuit repeated accesses to the same page.
type TLB struct {
	pageBits uint
	pages    []uint64 // +1 offset, 0 = empty
	lastUse  []uint64
	clock    uint64

	hits   uint64
	misses uint64
}

// NewTLB builds a TLB with the given entry count and page size.
func NewTLB(entries, pageBytes int) *TLB {
	bits := uint(0)
	for 1<<bits < pageBytes {
		bits++
	}
	return &TLB{
		pageBits: bits,
		pages:    make([]uint64, entries),
		lastUse:  make([]uint64, entries),
	}
}

// Access translates addr, returning true on a TLB hit. Misses install the
// page, evicting the LRU entry.
func (t *TLB) Access(addr uint64) bool {
	page := (addr >> t.pageBits) + 1
	t.clock++
	lru, lruUse := 0, t.lastUse[0]
	for i, p := range t.pages {
		if p == page {
			t.lastUse[i] = t.clock
			t.hits++
			return true
		}
		if t.lastUse[i] < lruUse {
			lru, lruUse = i, t.lastUse[i]
		}
	}
	t.pages[lru] = page
	t.lastUse[lru] = t.clock
	t.misses++
	return false
}

// PageOf returns the page number containing addr.
func (t *TLB) PageOf(addr uint64) uint64 { return addr >> t.pageBits }

// Hits returns the hit count.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.misses }

// Reset clears contents and counters.
func (t *TLB) Reset() {
	for i := range t.pages {
		t.pages[i] = 0
		t.lastUse[i] = 0
	}
	t.clock, t.hits, t.misses = 0, 0, 0
}
