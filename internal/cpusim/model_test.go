package cpusim

import (
	"math/rand"
	"testing"

	"bufferdb/internal/codemodel"
)

// refLRU is a brute-force fully-associative LRU cache used as the reference
// model for ICache.
type refLRU struct {
	capacity int
	order    []uint64 // MRU first
}

func (r *refLRU) access(line uint64) bool {
	for i, l := range r.order {
		if l == line {
			copy(r.order[1:i+1], r.order[:i])
			r.order[0] = line
			return true
		}
	}
	if len(r.order) == r.capacity {
		r.order = r.order[:len(r.order)-1]
	}
	r.order = append([]uint64{line}, r.order...)
	return false
}

// TestICacheMatchesReferenceModel drives ICache and a brute-force LRU with
// the same random access stream and requires identical hit/miss behavior.
func TestICacheMatchesReferenceModel(t *testing.T) {
	const capacity = 32
	c, err := NewICache(capacity*64, 64, 0x1000, 0x1000+1<<16)
	if err != nil {
		t.Fatal(err)
	}
	ref := &refLRU{capacity: capacity}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50_000; i++ {
		// Mix of cyclic and random accesses to stress both regimes.
		var line uint64
		if rng.Intn(2) == 0 {
			line = uint64(i % 48) // cyclic overflow working set
		} else {
			line = uint64(rng.Intn(256))
		}
		addr := 0x1000 + line*64
		got := c.Access(addr)
		want := ref.access(line)
		if got != want {
			t.Fatalf("step %d (line %d): ICache hit=%v, reference hit=%v", i, line, got, want)
		}
	}
	if int(c.Misses()+c.Hits()) != 50_000 {
		t.Errorf("counter total = %d", c.Misses()+c.Hits())
	}
}

// refSetAssoc is a brute-force set-associative LRU reference for Cache.
type refSetAssoc struct {
	nSets, ways int
	sets        [][]uint64 // per-set MRU-first line lists
}

func (r *refSetAssoc) access(line uint64) bool {
	set := int(line % uint64(r.nSets))
	lst := r.sets[set]
	for i, l := range lst {
		if l == line {
			copy(lst[1:i+1], lst[:i])
			lst[0] = line
			return true
		}
	}
	if len(lst) == r.ways {
		lst = lst[:len(lst)-1]
	}
	r.sets[set] = append([]uint64{line}, lst...)
	return false
}

// TestCacheMatchesReferenceModel model-checks the set-associative Cache.
func TestCacheMatchesReferenceModel(t *testing.T) {
	const (
		sizeBytes = 8192
		lineBytes = 64
		ways      = 4
	)
	c, err := NewCache(CacheConfig{Name: "m", SizeBytes: sizeBytes, LineBytes: lineBytes, Ways: ways})
	if err != nil {
		t.Fatal(err)
	}
	nSets := sizeBytes / (lineBytes * ways)
	ref := &refSetAssoc{nSets: nSets, ways: ways, sets: make([][]uint64, nSets)}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50_000; i++ {
		line := uint64(rng.Intn(4 * nSets * ways))
		got := c.Access(line * lineBytes)
		want := ref.access(line)
		if got != want {
			t.Fatalf("step %d (line %d): Cache hit=%v, reference hit=%v", i, line, got, want)
		}
	}
}

// TestTLBMatchesReferenceModel model-checks the fully-associative TLB.
func TestTLBMatchesReferenceModel(t *testing.T) {
	const entries = 16
	tlb := NewTLB(entries, 4096)
	ref := &refLRU{capacity: entries}
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 20_000; i++ {
		page := uint64(rng.Intn(48))
		got := tlb.Access(page * 4096)
		want := ref.access(page)
		if got != want {
			t.Fatalf("step %d (page %d): TLB hit=%v, reference hit=%v", i, page, got, want)
		}
	}
}

// TestL1IPrefetchNextLines unit-tests the optional instruction prefetcher
// on a thrashing two-module interleave: prefetching must install lines and
// reduce misses, without changing executed work.
func TestL1IPrefetchNextLines(t *testing.T) {
	cat := codemodel.NewCatalog()
	scan := cat.MustModule("SeqScanPred")
	agg, err := cat.AggModule([]string{"sum", "avg", "count"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.L1IPrefetchNextLines = 3
	cpuPF := MustNew(cfg, cat.TextSegmentBytes())
	cpuNo := MustNew(DefaultConfig(), cat.TextSegmentBytes())

	for i := 0; i < 500; i++ {
		cpuPF.ExecModule(scan, 0)
		cpuPF.ExecModule(agg, 0)
		cpuNo.ExecModule(scan, 0)
		cpuNo.ExecModule(agg, 0)
	}
	pf, no := cpuPF.Counters(), cpuNo.Counters()
	if pf.L1IPrefetches == 0 {
		t.Fatal("prefetcher never installed a line")
	}
	if pf.L1IMisses >= no.L1IMisses {
		t.Errorf("prefetch did not reduce misses: %d vs %d", pf.L1IMisses, no.L1IMisses)
	}
	if no.L1IPrefetches != 0 {
		t.Error("prefetch counter moved while disabled")
	}
	if pf.Uops != no.Uops || pf.Branches != no.Branches {
		t.Error("prefetching changed executed work")
	}
}
