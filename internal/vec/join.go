package vec

import (
	"fmt"
	"time"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// hashEntryOverhead approximates the per-row bookkeeping (map bucket and
// row-slice header) a hash join or aggregate retains alongside the tuple
// bytes. Mirrors exec.hashEntryOverhead.
const hashEntryOverhead = 48

// keyEval evaluates a join key expression, enforcing the engine's rule that
// equi-join keys are BIGINT-typed (all TPC-H keys are).
func keyEval(e expr.Expr, row storage.Row) (int64, bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return 0, false, err
	}
	if v.IsNull() {
		return 0, false, nil
	}
	if v.Kind != storage.TypeInt64 {
		return 0, false, fmt.Errorf("vec: join key must be BIGINT, got %v", v.Kind)
	}
	return v.I, true, nil
}

// HashJoin is the block-oriented in-memory equi-hash-join. Open drains the
// build (inner) side batch by batch into the hash table; NextBatch probes
// the outer side, filling the output vector across outer batches. Per-tuple
// module invocations match exec.HashJoin exactly — one probe invocation per
// outer tuple plus one per emitted match — with instruction fetch amortized
// per batch.
type HashJoin struct {
	Outer    Operator // probe side
	Inner    Operator // build side
	OuterKey expr.Expr
	InnerKey expr.Expr

	buildModule  *codemodel.Module
	probeModule  *codemodel.Module
	arena        *exec.Arena
	schema       storage.Schema
	stats        *exec.OpStats
	fault        *faultinject.Point
	buildFault   *faultinject.Point
	publishFault *faultinject.Point
	shared       *exec.SharedBuild

	table        map[int64][]storage.Row
	memUsed      int64
	bucketRegion uint64
	bucketCount  uint64

	out  batchBuf
	bits []uint64
	size int

	outerBatch Batch
	outerPos   int
	outerRow   storage.Row
	matches    []storage.Row
	matchPos   int
	outerDone  bool
	opened     bool
}

// NewHashJoin constructs the join; modules may be nil, size 0 selects
// DefaultBatchSize.
func NewHashJoin(outer, inner Operator, outerKey, innerKey expr.Expr, buildModule, probeModule *codemodel.Module, size int) *HashJoin {
	return &HashJoin{
		Outer:       outer,
		Inner:       inner,
		OuterKey:    outerKey,
		InnerKey:    innerKey,
		buildModule: buildModule,
		probeModule: probeModule,
		size:        size,
		schema:      outer.Schema().Concat(inner.Schema()),
	}
}

// SetShared wires the build side to the semantic reuse cache; see
// exec.SharedBuild. Must be set before Open.
func (j *HashJoin) SetShared(sb *exec.SharedBuild) { j.shared = sb }

// bucketAddr maps a key to its simulated bucket address — a random-access
// pattern the prefetcher cannot cover, as with a real hash table.
func (j *HashJoin) bucketAddr(key int64) uint64 {
	if j.bucketRegion == 0 {
		return 0
	}
	x := uint64(key) * 0x9e3779b97f4a7c15
	x ^= x >> 32
	return j.bucketRegion + (x%j.bucketCount)*16
}

// Open implements Operator: it runs the build phase.
func (j *HashJoin) Open(ctx *exec.Context) error {
	j.stats = ctx.StatsFor(j, j.Name())
	if j.stats != nil {
		defer j.stats.EndOpen(ctx, j.stats.Begin(ctx))
	}
	if err := j.Outer.Open(ctx); err != nil {
		return err
	}
	if err := j.Inner.Open(ctx); err != nil {
		return err
	}
	j.fault = ctx.FaultPoint(j.Name() + ":next")
	j.buildFault = ctx.FaultPoint(j.Name() + ":build")
	j.publishFault = ctx.FaultPoint(j.Name() + ":publish")
	j.arena = exec.NewArena(ctx.CPU)
	j.table = make(map[int64][]storage.Row)
	ctx.ShrinkMem(j.memUsed) // reopen without Close: release stale charges
	j.memUsed = 0
	j.out.open(ctx, j.size)
	j.outerBatch, j.outerRow, j.matches = nil, nil, nil
	j.outerPos, j.matchPos = 0, 0
	j.outerDone = false

	if ctx.CPU != nil && j.bucketRegion == 0 {
		j.bucketCount = 1 << 16
		j.bucketRegion = ctx.CPU.AllocData(int(j.bucketCount) * 16)
	}
	if j.shared != nil && j.shared.Table != nil {
		// Reuse-cache hit: adopt the published build side; its bytes live
		// under the cache's reservation, nothing charged here.
		j.table = j.shared.Table
		j.opened = true
		return nil
	}
	buildStart := time.Now()
	buildArena := exec.NewArena(ctx.CPU)
	for {
		// The build is a blocking loop: poll cancellation and deadlines so
		// a large build aborts promptly instead of outliving its query.
		if err := ctx.CanceledNow(); err != nil {
			return err
		}
		if err := j.buildFault.Fire(); err != nil {
			return err
		}
		in, err := j.Inner.NextBatch(ctx)
		if err != nil {
			return err
		}
		if len(in) == 0 {
			break
		}
		j.bits = j.bits[:0]
		for _, row := range in {
			key, ok, err := keyEval(j.InnerKey, row)
			if err != nil {
				return err
			}
			j.bits = append(j.bits, ctx.DataBits(ok))
			if !ok {
				continue
			}
			charge := int64(row.ByteSize()) + hashEntryOverhead
			if err := ctx.GrowMem(charge); err != nil {
				return err
			}
			j.memUsed += charge
			j.table[key] = append(j.table[key], row)
			// Copy the tuple into hash-table memory and link the bucket.
			ctx.Write(buildArena.Alloc(row.ByteSize()), row.ByteSize())
			ctx.Write(j.bucketAddr(key), 16)
		}
		ctx.ExecModuleBatch(j.buildModule, j.bits)
	}
	if j.shared != nil && j.shared.Publish != nil {
		// Reuse-cache miss: hand the finished build to the cache. The
		// publish fault fires first, so a poisoned build is never inserted.
		if err := j.publishFault.Fire(); err != nil {
			return err
		}
		j.shared.Publish(j.table, j.memUsed, time.Since(buildStart))
	}
	j.opened = true
	return nil
}

// NextBatch implements Operator: the probe phase.
func (j *HashJoin) NextBatch(ctx *exec.Context) (res Batch, err error) {
	if !j.opened {
		return nil, errNotOpen(j.Name())
	}
	if j.stats != nil {
		defer j.stats.EndBatch(ctx, j.stats.Begin(ctx), (*[]storage.Row)(&res))
	}
	if err := j.fault.Fire(); err != nil {
		return nil, err
	}
	j.out.reset()
	j.bits = j.bits[:0]
	for !j.out.full() {
		if j.matchPos < len(j.matches) {
			inner := j.matches[j.matchPos]
			j.matchPos++
			out := j.outerRow.Concat(inner)
			j.bits = append(j.bits, ctx.DataBits(true))
			ctx.Read(j.bucketAddr(0), 16) // bucket chain advance
			ctx.Write(j.arena.Alloc(out.ByteSize()), out.ByteSize())
			j.out.append(ctx, out)
			continue
		}
		if j.outerPos >= len(j.outerBatch) {
			if j.outerDone {
				break
			}
			b, err := j.Outer.NextBatch(ctx)
			if err != nil {
				return nil, err
			}
			if len(b) == 0 {
				j.outerDone = true
				break
			}
			j.outerBatch, j.outerPos = b, 0
		}
		row := j.outerBatch[j.outerPos]
		j.outerPos++
		key, ok, err := keyEval(j.OuterKey, row)
		if err != nil {
			return nil, err
		}
		if !ok {
			j.bits = append(j.bits, ctx.DataBits(false))
			continue
		}
		ctx.Read(j.bucketAddr(key), 16)
		j.matches = j.table[key]
		j.matchPos = 0
		j.bits = append(j.bits, ctx.DataBits(len(j.matches) > 0))
		j.outerRow = row
	}
	ctx.ExecModuleBatch(j.probeModule, j.bits)
	return j.out.take(), nil
}

// Close implements Operator.
func (j *HashJoin) Close(ctx *exec.Context) error {
	j.opened = false
	j.table = nil
	ctx.ShrinkMem(j.memUsed)
	j.memUsed = 0
	err1 := j.Outer.Close(ctx)
	err2 := j.Inner.Close(ctx)
	if err1 != nil {
		return err1
	}
	return err2
}

// Schema implements Operator.
func (j *HashJoin) Schema() storage.Schema { return j.schema }

// Children implements Operator.
func (j *HashJoin) Children() []Operator { return []Operator{j.Outer, j.Inner} }

// Name implements Operator.
func (j *HashJoin) Name() string {
	return fmt.Sprintf("VecHashJoin(%s = %s)", j.OuterKey.String(), j.InnerKey.String())
}
