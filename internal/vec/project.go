package vec

import (
	"fmt"
	"strings"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
)

// Project evaluates a target list over each row of its input batch. Output
// batches are the same length as input batches; the projection code is
// fetched once per batch.
type Project struct {
	Child Operator
	Exprs []expr.Expr
	// Names are output column names, parallel to Exprs.
	Names []string

	module *codemodel.Module
	schema storage.Schema
	arena  *exec.Arena
	stats  *exec.OpStats

	out    batchBuf
	bits   []uint64
	opened bool
}

// NewProject constructs the operator; module may be nil.
func NewProject(child Operator, exprs []expr.Expr, names []string, module *codemodel.Module) (*Project, error) {
	if len(exprs) == 0 {
		return nil, fmt.Errorf("vec: Project needs a target list")
	}
	if len(names) != len(exprs) {
		return nil, fmt.Errorf("vec: Project names/exprs mismatch: %d vs %d", len(names), len(exprs))
	}
	p := &Project{Child: child, Exprs: exprs, Names: names, module: module}
	for i, e := range exprs {
		p.schema = append(p.schema, storage.Column{Name: names[i], Type: e.Type()})
	}
	return p, nil
}

// Open implements Operator.
func (p *Project) Open(ctx *exec.Context) error {
	p.stats = ctx.StatsFor(p, p.Name())
	if p.stats != nil {
		defer p.stats.EndOpen(ctx, p.stats.Begin(ctx))
	}
	p.arena = exec.NewArena(ctx.CPU)
	p.out.open(ctx, 0)
	p.opened = true
	return p.Child.Open(ctx)
}

// NextBatch implements Operator.
func (p *Project) NextBatch(ctx *exec.Context) (res Batch, err error) {
	if !p.opened {
		return nil, errNotOpen(p.Name())
	}
	if p.stats != nil {
		defer p.stats.EndBatch(ctx, p.stats.Begin(ctx), (*[]storage.Row)(&res))
	}
	in, err := p.Child.NextBatch(ctx)
	if err != nil {
		return nil, err
	}
	if len(in) == 0 {
		return nil, nil
	}
	p.out.reset()
	p.bits = p.bits[:0]
	for _, row := range in {
		out := make(storage.Row, len(p.Exprs))
		for i, e := range p.Exprs {
			v, err := e.Eval(row)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		ctx.Write(p.arena.Alloc(out.ByteSize()), out.ByteSize())
		p.bits = append(p.bits, ctx.DataBits(true))
		p.out.append(ctx, out)
	}
	ctx.ExecModuleBatch(p.module, p.bits)
	return p.out.take(), nil
}

// Close implements Operator.
func (p *Project) Close(ctx *exec.Context) error {
	p.opened = false
	return p.Child.Close(ctx)
}

// Schema implements Operator.
func (p *Project) Schema() storage.Schema { return p.schema }

// Children implements Operator.
func (p *Project) Children() []Operator { return []Operator{p.Child} }

// Name implements Operator.
func (p *Project) Name() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return fmt.Sprintf("VecProject(%s)", strings.Join(parts, ", "))
}
