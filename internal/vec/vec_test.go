package vec

import (
	"testing"

	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
	"bufferdb/internal/tpch"
)

var testDB = func() *storage.Catalog {
	cat, err := tpch.Generate(tpch.Config{ScaleFactor: 0.002})
	if err != nil {
		panic(err)
	}
	return cat
}()

func tbl(t *testing.T, name string) *storage.Table {
	t.Helper()
	tb, err := testDB.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func colRef(t *testing.T, sch storage.Schema, name string) *expr.ColRef {
	t.Helper()
	i, err := sch.ColumnIndex("", name)
	if err != nil || i < 0 {
		t.Fatalf("column %s: %d, %v", name, i, err)
	}
	return expr.NewColRef(i, name, sch[i].Type)
}

func shipdateFilter(t *testing.T, sch storage.Schema) expr.Expr {
	t.Helper()
	d, err := storage.ParseDate("1995-06-17")
	if err != nil {
		t.Fatal(err)
	}
	return expr.MustBinary(expr.OpLe, colRef(t, sch, "l_shipdate"), expr.NewConst(d))
}

func runVec(t *testing.T, op Operator) []storage.Row {
	t.Helper()
	rows, err := Run(&exec.Context{Catalog: testDB}, op)
	if err != nil {
		t.Fatalf("vec.Run(%s): %v", op.Name(), err)
	}
	return rows
}

func runVolcano(t *testing.T, op exec.Operator) []storage.Row {
	t.Helper()
	rows, err := exec.Run(&exec.Context{Catalog: testDB}, op)
	if err != nil {
		t.Fatalf("exec.Run(%s): %v", op.Name(), err)
	}
	return rows
}

func assertSameRows(t *testing.T, label string, got, want []storage.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].String() != want[i].String() {
			t.Fatalf("%s: row %d = %s, want %s", label, i, got[i], want[i])
		}
	}
}

// countSum is the aggregate list used by the aggregation tests.
func countSum(t *testing.T, sch storage.Schema) []expr.AggSpec {
	t.Helper()
	return []expr.AggSpec{
		{Func: expr.AggCountStar},
		{Func: expr.AggSum, Arg: colRef(t, sch, "l_quantity")},
	}
}

// TestSeqScanMatchesVolcano covers filtered and unfiltered scans, with
// batch sizes that do and do not divide the row count.
func TestSeqScanMatchesVolcano(t *testing.T) {
	li := tbl(t, "lineitem")
	for _, size := range []int{0, 1, 7, 1024, li.NumRows() * 2} {
		got := runVec(t, NewSeqScan(li, nil, nil, size))
		assertSameRows(t, "scan", got, runVolcano(t, exec.NewSeqScan(li, nil, nil)))

		got = runVec(t, NewSeqScan(li, shipdateFilter(t, li.Schema()), nil, size))
		assertSameRows(t, "scan+filter", got,
			runVolcano(t, exec.NewSeqScan(li, shipdateFilter(t, li.Schema()), nil)))
	}
}

func TestProjectMatchesVolcano(t *testing.T) {
	li := tbl(t, "lineitem")
	sch := li.Schema()
	exprs := []expr.Expr{colRef(t, sch, "l_orderkey"), colRef(t, sch, "l_quantity")}
	names := []string{"l_orderkey", "l_quantity"}

	vp, err := NewProject(NewSeqScan(li, nil, nil, 64), exprs, names, nil)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := exec.NewProject(exec.NewSeqScan(li, nil, nil), exprs, names, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "project", runVec(t, vp), runVolcano(t, ep))
	if vp.Schema().String() != ep.Schema().String() {
		t.Errorf("schema mismatch: %s vs %s", vp.Schema(), ep.Schema())
	}
}

func TestHashAggregateMatchesVolcano(t *testing.T) {
	li := tbl(t, "lineitem")
	sch := li.Schema()
	groupBy := []expr.Expr{colRef(t, sch, "l_returnflag"), colRef(t, sch, "l_linestatus")}

	va, err := NewHashAggregate(NewSeqScan(li, nil, nil, 0), groupBy, countSum(t, sch), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := exec.NewAggregate(exec.NewSeqScan(li, nil, nil), groupBy, countSum(t, sch), nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "agg grouped", runVec(t, va), runVolcano(t, ea))

	// Ungrouped, including over zero input rows.
	va, err = NewHashAggregate(NewSeqScan(li, nil, nil, 0), nil, countSum(t, sch), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ea, err = exec.NewAggregate(exec.NewSeqScan(li, nil, nil), nil, countSum(t, sch), nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "agg ungrouped", runVec(t, va), runVolcano(t, ea))

	never, err := storage.ParseDate("1901-01-01")
	if err != nil {
		t.Fatal(err)
	}
	empty := expr.MustBinary(expr.OpLe, colRef(t, sch, "l_shipdate"), expr.NewConst(never))
	va, err = NewHashAggregate(NewSeqScan(li, empty, nil, 0), nil, countSum(t, sch), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := runVec(t, va)
	if len(rows) != 1 {
		t.Fatalf("ungrouped aggregate over empty input: %d rows, want 1", len(rows))
	}
	if rows[0][0].I != 0 {
		t.Errorf("COUNT(*) over empty input = %v, want 0", rows[0][0])
	}
}

func TestHashJoinMatchesVolcano(t *testing.T) {
	li := tbl(t, "lineitem")
	orders := tbl(t, "orders")
	liKey := colRef(t, li.Schema(), "l_orderkey")
	oKey := colRef(t, orders.Schema(), "o_orderkey")

	for _, size := range []int{0, 3, 257} {
		vj := NewHashJoin(NewSeqScan(li, nil, nil, size), NewSeqScan(orders, nil, nil, size),
			liKey, oKey, nil, nil, size)
		ej := exec.NewHashJoin(exec.NewSeqScan(li, nil, nil), exec.NewSeqScan(orders, nil, nil),
			liKey, oKey, nil, nil)
		assertSameRows(t, "hash join", runVec(t, vj), runVolcano(t, ej))
	}
}

func TestLimitMatchesVolcano(t *testing.T) {
	li := tbl(t, "lineitem")
	for _, n := range []int{0, 1, 10, 1500, li.NumRows() + 5} {
		got := runVec(t, NewLimit(NewSeqScan(li, nil, nil, 64), n))
		want := runVolcano(t, exec.NewLimit(exec.NewSeqScan(li, nil, nil), n))
		assertSameRows(t, "limit", got, want)
	}
}

// TestAdaptersRoundTrip pushes rows Volcano → batch → Volcano and asserts
// nothing is lost, duplicated or reordered.
func TestAdaptersRoundTrip(t *testing.T) {
	li := tbl(t, "lineitem")
	want := runVolcano(t, exec.NewSeqScan(li, nil, nil))

	got := runVec(t, NewFromVolcano(exec.NewSeqScan(li, nil, nil), 100, nil))
	assertSameRows(t, "FromVolcano", got, want)

	round := runVolcano(t, NewToVolcano(NewFromVolcano(exec.NewSeqScan(li, nil, nil), 100, nil)))
	assertSameRows(t, "ToVolcano∘FromVolcano", round, want)

	// Batch subtree under a Volcano sort: the mixed-plan shape Compile emits.
	sorted := exec.NewSort(NewToVolcano(NewSeqScan(li, nil, nil, 0)),
		[]exec.SortKey{{Expr: colRef(t, li.Schema(), "l_extendedprice"), Desc: true}}, nil)
	wantSorted := runVolcano(t, exec.NewSort(exec.NewSeqScan(li, nil, nil),
		[]exec.SortKey{{Expr: colRef(t, li.Schema(), "l_extendedprice"), Desc: true}}, nil))
	assertSameRows(t, "Sort over ToVolcano", runVolcano(t, sorted), wantSorted)
}

// TestVecOperatorConformance runs the exec lifecycle harness over every
// batch operator (behind a ToVolcano adapter) and over the adapters
// themselves.
func TestVecOperatorConformance(t *testing.T) {
	li := tbl(t, "lineitem")
	orders := tbl(t, "orders")
	sch := li.Schema()

	cases := map[string]func() exec.Operator{
		"SeqScan": func() exec.Operator {
			return NewToVolcano(NewSeqScan(li, nil, nil, 64))
		},
		"SeqScanPred": func() exec.Operator {
			return NewToVolcano(NewSeqScan(li, shipdateFilter(t, sch), nil, 64))
		},
		"Project": func() exec.Operator {
			p, err := NewProject(NewSeqScan(li, nil, nil, 64),
				[]expr.Expr{colRef(t, sch, "l_orderkey")}, []string{"l_orderkey"}, nil)
			if err != nil {
				t.Fatal(err)
			}
			return NewToVolcano(p)
		},
		"HashAggregate": func() exec.Operator {
			a, err := NewHashAggregate(NewSeqScan(li, nil, nil, 64),
				[]expr.Expr{colRef(t, sch, "l_returnflag")}, countSum(t, sch), nil, 64)
			if err != nil {
				t.Fatal(err)
			}
			return NewToVolcano(a)
		},
		"HashJoin": func() exec.Operator {
			return NewToVolcano(NewHashJoin(
				NewSeqScan(li, nil, nil, 64), NewSeqScan(orders, nil, nil, 64),
				colRef(t, sch, "l_orderkey"), colRef(t, orders.Schema(), "o_orderkey"),
				nil, nil, 64))
		},
		"Limit": func() exec.Operator {
			return NewToVolcano(NewLimit(NewSeqScan(li, nil, nil, 64), 10))
		},
		"FromVolcano": func() exec.Operator {
			return NewToVolcano(NewFromVolcano(exec.NewSeqScan(li, nil, nil), 64, nil))
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) { exec.Conformance(t, name, mk) })
	}
}

// TestBatchSizes asserts every non-final batch a producer returns is
// exactly its configured size (full batches are what amortize the
// instruction fetch).
func TestBatchSizes(t *testing.T) {
	li := tbl(t, "lineitem")
	const size = 100
	s := NewSeqScan(li, nil, nil, size)
	ctx := &exec.Context{Catalog: testDB}
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for {
		b, err := s.NextBatch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			break
		}
		sizes = append(sizes, len(b))
	}
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, n := range sizes {
		total += n
		if i < len(sizes)-1 && n != size {
			t.Errorf("batch %d has %d rows, want %d", i, n, size)
		}
	}
	if total != li.NumRows() {
		t.Errorf("batches covered %d rows, want %d", total, li.NumRows())
	}
}
