package vec

import (
	"fmt"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// SeqScan is the block-oriented heap scan. Each NextBatch runs the scan
// loop until the output vector is full or the heap is exhausted — with a
// selective predicate a batch therefore covers more than batch-size input
// tuples, exactly like a buffer refill over a filtering child. The scan and
// qualification µops are paid per input tuple; the scan code is fetched
// once per batch.
type SeqScan struct {
	Table  *storage.Table
	Filter expr.Expr     // optional
	Span   *storage.Span // optional: scan only [Start, End)

	module *codemodel.Module
	stats  *exec.OpStats
	fault  *faultinject.Point

	out    batchBuf
	bits   []uint64
	size   int
	pos    int
	end    int
	place  exec.TablePlacement
	placed bool
	opened bool

	// it streams rows when the table is disk-backed (paged); memory tables
	// keep the zero-overhead direct slice access path.
	it storage.RowIterator
}

// NewSeqScan constructs the scan. module may be nil (uninstrumented);
// size 0 selects DefaultBatchSize.
func NewSeqScan(table *storage.Table, filter expr.Expr, module *codemodel.Module, size int) *SeqScan {
	return &SeqScan{Table: table, Filter: filter, module: module, size: size}
}

// NewSeqScanSpan constructs a scan over one heap partition. A nil span
// scans the whole table.
func NewSeqScanSpan(table *storage.Table, filter expr.Expr, module *codemodel.Module, size int, span *storage.Span) *SeqScan {
	s := NewSeqScan(table, filter, module, size)
	s.Span = span
	return s
}

// Open implements Operator.
func (s *SeqScan) Open(ctx *exec.Context) error {
	s.stats = ctx.StatsFor(s, s.Name())
	if s.stats != nil {
		defer s.stats.EndOpen(ctx, s.stats.Begin(ctx))
	}
	s.fault = ctx.FaultPoint(s.Name() + ":next")
	s.out.open(ctx, s.size)
	s.pos, s.end = 0, s.Table.NumRows()
	if s.Span != nil {
		s.pos, s.end = s.Span.Start, s.Span.End
	}
	if s.Table.Paged() {
		it, err := s.Table.Iterate(storage.Span{Start: s.pos, End: s.end})
		if err != nil {
			return err
		}
		s.it = it
	}
	s.place, s.placed = ctx.Placements[s.Table]
	s.opened = true
	return nil
}

// NextBatch implements Operator.
func (s *SeqScan) NextBatch(ctx *exec.Context) (out Batch, err error) {
	if !s.opened {
		return nil, errNotOpen(s.Name())
	}
	if s.stats != nil {
		defer s.stats.EndBatch(ctx, s.stats.Begin(ctx), (*[]storage.Row)(&out))
	}
	if err := ctx.CanceledNow(); err != nil {
		return nil, err
	}
	if err := s.fault.Fire(); err != nil {
		return nil, err
	}
	s.out.reset()
	s.bits = s.bits[:0]
	for s.pos < s.end && !s.out.full() {
		var (
			rid int
			row storage.Row
		)
		if s.it != nil {
			var ok bool
			rid, row, ok, err = s.it.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			s.pos = rid + 1
		} else {
			rid = s.pos
			s.pos++
			row = s.Table.Row(rid)
		}
		if s.placed {
			ctx.Read(s.place.Base+uint64(rid)*uint64(s.place.RowBytes), s.place.RowBytes)
		}
		match := true
		if s.Filter != nil {
			var err error
			match, err = expr.EvalBool(s.Filter, row)
			if err != nil {
				return nil, err
			}
		}
		s.bits = append(s.bits, ctx.DataBits(match))
		if match {
			s.out.append(ctx, row)
		}
	}
	ctx.ExecModuleBatch(s.module, s.bits)
	return s.out.take(), nil
}

// Close implements Operator.
func (s *SeqScan) Close(*exec.Context) error {
	s.opened = false
	if s.it != nil {
		err := s.it.Close()
		s.it = nil
		return err
	}
	return nil
}

// Schema implements Operator.
func (s *SeqScan) Schema() storage.Schema { return s.Table.Schema() }

// Children implements Operator.
func (s *SeqScan) Children() []Operator { return nil }

// Name implements Operator.
func (s *SeqScan) Name() string {
	if s.Filter != nil {
		return fmt.Sprintf("VecSeqScan(%s, filter=%s)", s.Table.Name(), s.Filter.String())
	}
	return fmt.Sprintf("VecSeqScan(%s)", s.Table.Name())
}
