package vec

import (
	"fmt"

	"bufferdb/internal/exec"
	"bufferdb/internal/storage"
)

// Limit passes through the first N rows of its child, truncating the final
// batch. Like exec.Limit it is too small to model.
type Limit struct {
	Child Operator
	N     int

	stats   *exec.OpStats
	emitted int
	opened  bool
}

// NewLimit constructs the operator.
func NewLimit(child Operator, n int) *Limit {
	return &Limit{Child: child, N: n}
}

// Open implements Operator.
func (l *Limit) Open(ctx *exec.Context) error {
	l.stats = ctx.StatsFor(l, l.Name())
	if l.stats != nil {
		defer l.stats.EndOpen(ctx, l.stats.Begin(ctx))
	}
	l.emitted = 0
	l.opened = true
	return l.Child.Open(ctx)
}

// NextBatch implements Operator.
func (l *Limit) NextBatch(ctx *exec.Context) (out Batch, err error) {
	if !l.opened {
		return nil, errNotOpen(l.Name())
	}
	if l.stats != nil {
		defer l.stats.EndBatch(ctx, l.stats.Begin(ctx), (*[]storage.Row)(&out))
	}
	if l.emitted >= l.N {
		return nil, nil
	}
	batch, err := l.Child.NextBatch(ctx)
	if err != nil || len(batch) == 0 {
		return nil, err
	}
	if l.emitted+len(batch) > l.N {
		batch = batch[:l.N-l.emitted]
	}
	l.emitted += len(batch)
	return batch, nil
}

// Close implements Operator.
func (l *Limit) Close(ctx *exec.Context) error {
	l.opened = false
	return l.Child.Close(ctx)
}

// Schema implements Operator.
func (l *Limit) Schema() storage.Schema { return l.Child.Schema() }

// Children implements Operator.
func (l *Limit) Children() []Operator { return []Operator{l.Child} }

// Name implements Operator.
func (l *Limit) Name() string { return fmt.Sprintf("VecLimit(%d)", l.N) }
