// Package vec implements a block-oriented (vectorized) query execution
// engine: operators exchange fixed-capacity batches of row references
// instead of single tuples. This is the heavyweight alternative the paper's
// §2 positions the buffer operator against — every operator is rewritten to
// a NextBatch contract, rather than leaving the Volcano iterators untouched
// and inserting buffers between them.
//
// Batch operators drive the same codemodel/cpusim instrumentation as
// internal/exec, but amortized: one instruction-fetch replay per batch
// (the operator's code stays resident while its batch loop runs) with
// execution µops and branch outcomes still paid per tuple
// (exec.Context.ExecModuleBatch). Simulated counters are therefore directly
// comparable with buffered Volcano plans, which pay one full module replay
// per tuple but in batched bursts that keep the cache warm.
//
// Only the hot operators have batch variants (SeqScan, Project,
// HashAggregate, HashJoin, Limit); FromVolcano/ToVolcano adapt the rest,
// so any plan compiles (plan.Compile with EngineVec) and the SQL front end
// needs no changes.
package vec

import (
	"fmt"

	"bufferdb/internal/exec"
	"bufferdb/internal/storage"
)

// DefaultBatchSize is the tuple capacity of a batch, mirroring the buffer
// operator's default (core.DefaultBufferSize) so the two engines batch at
// the same granularity and their comparison isolates the execution model.
const DefaultBatchSize = 1024

// Batch is a block of row references. Like the buffer operator, a batch
// never copies tuples — rows stay in their producer's memory. A returned
// Batch (the slice, not the rows) is only valid until the producer's next
// NextBatch or Close call; consumers that retain rows across calls may keep
// the row references but not the slice.
type Batch []storage.Row

// Operator is the block-oriented iterator contract. NextBatch returns a
// zero-length batch only at end of stream, and keeps returning one if
// called again. An operator may be reopened after Close; Open must reset
// all state.
type Operator interface {
	Open(ctx *exec.Context) error
	NextBatch(ctx *exec.Context) (Batch, error)
	Close(ctx *exec.Context) error
	// Schema describes the rows NextBatch produces.
	Schema() storage.Schema
	// Children returns the input operators, outer first.
	Children() []Operator
	// Name is a short display name for EXPLAIN and traces.
	Name() string
}

// batchBuf is the reusable output vector every batch producer owns: the
// Batch slice plus its simulated pointer-array region, so producing a row
// models the same 8-byte reference store the buffer operator pays. The
// region is allocated once and survives reopens, like the buffer's array.
type batchBuf struct {
	rows   Batch
	size   int
	region uint64
}

// open sizes the vector (0 selects DefaultBatchSize) and places its
// simulated pointer array on first use.
func (b *batchBuf) open(ctx *exec.Context, size int) {
	if size <= 0 {
		size = DefaultBatchSize
	}
	b.size = size
	if cap(b.rows) < size {
		b.rows = make(Batch, 0, size)
	}
	b.rows = b.rows[:0]
	if ctx.CPU != nil && b.region == 0 {
		b.region = ctx.CPU.AllocData(size * 8)
	}
}

func (b *batchBuf) reset()     { b.rows = b.rows[:0] }
func (b *batchBuf) full() bool { return len(b.rows) >= b.size }

// append stores one row reference, modeling the pointer write.
func (b *batchBuf) append(ctx *exec.Context, row storage.Row) {
	if b.region != 0 {
		ctx.Write(b.region+uint64(len(b.rows))*8, 8)
	}
	b.rows = append(b.rows, row)
}

// take returns the accumulated batch, nil when empty.
func (b *batchBuf) take() Batch {
	if len(b.rows) == 0 {
		return nil
	}
	return b.rows
}

// CallOpen invokes op.Open, converting a panic into a wrapped
// exec.ErrOperatorPanic.
func CallOpen(ctx *exec.Context, op Operator) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = exec.PanicError(op.Name(), r)
		}
	}()
	return op.Open(ctx)
}

// CallNextBatch invokes op.NextBatch, converting a panic into a wrapped
// exec.ErrOperatorPanic.
func CallNextBatch(ctx *exec.Context, op Operator) (batch Batch, err error) {
	defer func() {
		if r := recover(); r != nil {
			batch, err = nil, exec.PanicError(op.Name(), r)
		}
	}()
	return op.NextBatch(ctx)
}

// CallClose invokes op.Close, converting a panic into a wrapped
// exec.ErrOperatorPanic — teardown must never take the process down.
func CallClose(ctx *exec.Context, op Operator) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = exec.PanicError(op.Name(), r)
		}
	}()
	return op.Close(ctx)
}

// Run drives a block-oriented plan to completion and returns all result
// rows. It opens, drains and closes the root operator, containing panics
// from any operator in the tree.
func Run(ctx *exec.Context, root Operator) ([]storage.Row, error) {
	if err := CallOpen(ctx, root); err != nil {
		_ = CallClose(ctx, root)
		return nil, err
	}
	var out []storage.Row
	for {
		batch, err := CallNextBatch(ctx, root)
		if err != nil {
			_ = CallClose(ctx, root)
			return nil, err
		}
		if len(batch) == 0 {
			break
		}
		out = append(out, batch...)
	}
	if err := CallClose(ctx, root); err != nil {
		return nil, err
	}
	return out, nil
}

// Walk visits the operator tree in depth-first pre-order.
func Walk(op Operator, visit func(Operator)) {
	visit(op)
	for _, c := range op.Children() {
		Walk(c, visit)
	}
}

// errNotOpen is the shared guard error for operators driven before Open.
func errNotOpen(name string) error {
	return fmt.Errorf("vec: %s.NextBatch called before Open", name)
}
