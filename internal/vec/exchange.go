package vec

import (
	"fmt"
	"sync"

	"bufferdb/internal/exec"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// Exchange is the block-oriented gather: the batch-engine counterpart of
// exec.Exchange. It owns one batch subtree per partition and merges their
// batches into the parent's stream in partition order, so the merged output
// is byte-identical to the sequential plan for any worker count.
//
// Like exec.Exchange the execution mode depends on the Context: on a
// simulated CPU (or with a tracer attached) the single-core machine runs
// the partitions inline one after another; uninstrumented, Open spawns one
// goroutine per partition draining into a bounded channel. Batch slices are
// reused by their producer across NextBatch calls, so workers copy each
// batch before handing it across the channel.
type Exchange struct {
	parts []Operator

	// serial-mode cursor.
	cur int

	// parallel-mode state, rebuilt on every Open.
	parallel bool
	workers  []*exchangeWorker
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	stats  *exec.OpStats
	fault  *faultinject.Point
	mem    *exec.MemTracker // gather-side handle for releasing queued batches
	opened bool
}

// exchangeDepth is the per-worker channel capacity in batches.
const exchangeDepth = 8

// exchangeWorker drains one partition subtree into its channel.
type exchangeWorker struct {
	out chan Batch
	err error // read by the gather only after out is closed
}

// NewExchange constructs a gather over per-partition batch subtrees. At
// least one partition is required; all must produce the same schema.
func NewExchange(parts []Operator) (*Exchange, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("vec: Exchange needs at least one partition")
	}
	return &Exchange{parts: parts}, nil
}

// Open implements Operator.
func (e *Exchange) Open(ctx *exec.Context) error {
	e.shutdown()
	e.stats = ctx.StatsFor(e, e.Name())
	if e.stats != nil {
		e.stats.Partitions = len(e.parts)
		defer e.stats.EndOpen(ctx, e.stats.Begin(ctx))
	}
	e.cur = 0
	e.fault = ctx.FaultPoint(e.Name() + ":next")
	e.mem = ctx.Mem
	e.parallel = ctx.CPU == nil && ctx.Trace == nil
	e.opened = true
	if !e.parallel {
		return e.parts[0].Open(ctx)
	}
	e.stop = make(chan struct{})
	e.stopOnce = sync.Once{}
	e.workers = make([]*exchangeWorker, len(e.parts))
	for i, part := range e.parts {
		w := &exchangeWorker{out: make(chan Batch, exchangeDepth)}
		e.workers[i] = w
		e.wg.Add(1)
		// Workers share the stats collector: registration is mutex-guarded
		// and each partition operator's slot is written by its worker only.
		// The memory tracker and fault injector are likewise safe to share.
		wctx := &exec.Context{Catalog: ctx.Catalog, Ctx: ctx.Ctx, Stats: ctx.Stats, Mem: ctx.Mem, Fault: ctx.Fault}
		go func(part Operator, w *exchangeWorker) {
			defer e.wg.Done()
			defer close(w.out)
			// Contain worker panics: the recover runs before close(w.out)
			// (defers are LIFO), so the gather always observes w.err after
			// the channel closes.
			defer func() {
				if r := recover(); r != nil {
					w.err = exec.PanicError(part.Name(), r)
				}
			}()
			w.err = e.drainPartition(wctx, part, w.out)
		}(part, w)
	}
	return nil
}

// drainPartition runs one partition subtree to completion, copying and
// sending each batch until EOF, error, or shutdown.
func (e *Exchange) drainPartition(ctx *exec.Context, part Operator, out chan<- Batch) error {
	if err := CallOpen(ctx, part); err != nil {
		return err
	}
	defer CallClose(ctx, part)
	for {
		if err := ctx.CanceledNow(); err != nil {
			return err
		}
		batch, err := part.NextBatch(ctx)
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			return nil
		}
		// The producer reuses the batch slice; copy before crossing the
		// channel (row references are stable, the slice is not). Each
		// queued batch is charged against the query's budget before the
		// send and released by the gather (or the shutdown drain).
		owned := make(Batch, len(batch))
		copy(owned, batch)
		bytes := exec.RowsBytes(owned)
		if err := ctx.GrowMem(bytes); err != nil {
			return err
		}
		select {
		case out <- owned:
		case <-e.stop:
			ctx.ShrinkMem(bytes) // never handed off; return the charge
			return nil
		}
	}
}

// NextBatch implements Operator.
func (e *Exchange) NextBatch(ctx *exec.Context) (out Batch, err error) {
	if !e.opened {
		return nil, errNotOpen(e.Name())
	}
	if e.stats != nil {
		defer e.stats.EndBatch(ctx, e.stats.Begin(ctx), (*[]storage.Row)(&out))
	}
	if err := e.fault.Fire(); err != nil {
		return nil, err
	}
	if e.parallel {
		return e.nextParallel()
	}
	return e.nextSerial(ctx)
}

// nextSerial serves the partitions one after another on the caller's
// (instrumented) context.
func (e *Exchange) nextSerial(ctx *exec.Context) (Batch, error) {
	for e.cur < len(e.parts) {
		batch, err := e.parts[e.cur].NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if len(batch) > 0 {
			if ctx.CPU != nil {
				// Handing a gathered batch to the parent costs the same
				// per-tuple serve path as the buffer operator's.
				ctx.CPU.AddUops(uint64(len(batch)) * serveUops)
			}
			return batch, nil
		}
		if err := e.parts[e.cur].Close(ctx); err != nil {
			return nil, err
		}
		e.cur++
		if e.cur < len(e.parts) {
			if err := e.parts[e.cur].Open(ctx); err != nil {
				return nil, err
			}
		}
	}
	return nil, nil
}

// nextParallel serves batches from the workers in partition order.
func (e *Exchange) nextParallel() (Batch, error) {
	for e.cur < len(e.workers) {
		w := e.workers[e.cur]
		batch, ok := <-w.out
		if ok {
			e.mem.Shrink(exec.RowsBytes(batch))
			return batch, nil
		}
		if w.err != nil {
			return nil, w.err
		}
		e.cur++
	}
	return nil, nil
}

// shutdown stops any running workers and waits for them to exit.
func (e *Exchange) shutdown() {
	if e.workers == nil {
		return
	}
	e.stopOnce.Do(func() { close(e.stop) })
	// Drain so workers blocked on a full channel observe the stop,
	// releasing the budget charge of every batch still queued.
	for _, w := range e.workers {
		for batch := range w.out {
			e.mem.Shrink(exec.RowsBytes(batch))
		}
	}
	e.wg.Wait()
	e.workers = nil
}

// Close implements Operator.
func (e *Exchange) Close(ctx *exec.Context) error {
	if e.parallel {
		e.shutdown()
	} else if e.opened && e.cur < len(e.parts) {
		if err := e.parts[e.cur].Close(ctx); err != nil {
			e.opened = false
			return err
		}
		e.cur = len(e.parts)
	}
	e.opened = false
	return nil
}

// Schema implements Operator.
func (e *Exchange) Schema() storage.Schema { return e.parts[0].Schema() }

// Children implements Operator.
func (e *Exchange) Children() []Operator { return e.parts }

// Name implements Operator.
func (e *Exchange) Name() string { return fmt.Sprintf("VecGather(%d)", len(e.parts)) }

var _ Operator = (*Exchange)(nil)
