package vec

import (
	"fmt"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/storage"
)

// serveUops is the execution cost of serving one tuple out of a batch —
// bounds check, array load, pointer return — identical to the buffer
// operator's serve path (core.Buffer).
const serveUops = 12

// FromVolcano adapts a Volcano iterator into a batch producer: each
// NextBatch pulls up to a batch of tuples from the child, which instruments
// itself per tuple as usual. The adapter's own cost is modeled with the
// buffer operator's footprint — it IS a buffer refill loop, just surfacing
// the array instead of serving from it — including the buffer's fixed
// setup cost at Open, so mixed vec plans stay comparable with buffered
// Volcano plans.
type FromVolcano struct {
	Child exec.Operator

	module *codemodel.Module // the "Buffer" module
	size   int
	stats  *exec.OpStats

	out    batchBuf
	bits   []uint64
	eof    bool
	opened bool
}

// NewFromVolcano constructs the adapter. size 0 selects DefaultBatchSize;
// module should be the codemodel "Buffer" module (nil uninstrumented).
func NewFromVolcano(child exec.Operator, size int, module *codemodel.Module) *FromVolcano {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &FromVolcano{Child: child, size: size, module: module}
}

// Open implements Operator.
func (f *FromVolcano) Open(ctx *exec.Context) error {
	f.stats = ctx.StatsFor(f, f.Name())
	if f.stats != nil {
		defer f.stats.EndOpen(ctx, f.stats.Begin(ctx))
	}
	if err := f.Child.Open(ctx); err != nil {
		return err
	}
	f.out.open(ctx, f.size)
	f.eof = false
	if ctx.CPU != nil {
		// Same fixed setup cost as core.Buffer.Open: operator-state
		// initialization plus allocating and zeroing the pointer array.
		ctx.CPU.AddUops(2000 + uint64(f.size*8/16))
		for off := 0; off < f.size*8; off += 64 {
			ctx.CPU.DataWrite(f.out.region+uint64(off), 64)
		}
	}
	f.opened = true
	return nil
}

// NextBatch implements Operator.
func (f *FromVolcano) NextBatch(ctx *exec.Context) (out Batch, err error) {
	if !f.opened {
		return nil, errNotOpen(f.Name())
	}
	if f.stats != nil {
		defer f.stats.EndBatch(ctx, f.stats.Begin(ctx), (*[]storage.Row)(&out))
	}
	if f.eof {
		return nil, nil
	}
	f.out.reset()
	f.bits = f.bits[:0]
	for !f.out.full() {
		row, err := f.Child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if row == nil {
			f.eof = true
			break
		}
		f.bits = append(f.bits, ctx.DataBits(true))
		f.out.append(ctx, row)
	}
	ctx.ExecModuleBatch(f.module, f.bits)
	out = f.out.take()
	if f.stats != nil && len(out) > 0 {
		// Each NextBatch is one refill run over the Volcano subtree.
		f.stats.Drained(len(out))
	}
	return out, nil
}

// Close implements Operator.
func (f *FromVolcano) Close(ctx *exec.Context) error {
	f.opened = false
	return f.Child.Close(ctx)
}

// Schema implements Operator.
func (f *FromVolcano) Schema() storage.Schema { return f.Child.Schema() }

// Children implements Operator: the Volcano subtree is not part of the
// batch operator tree; Volcano() exposes it.
func (f *FromVolcano) Children() []Operator { return nil }

// Volcano returns the wrapped Volcano subtree.
func (f *FromVolcano) Volcano() exec.Operator { return f.Child }

// Name implements Operator.
func (f *FromVolcano) Name() string {
	return fmt.Sprintf("FromVolcano(%s)", f.Child.Name())
}

// ToVolcano adapts a batch producer back into a Volcano iterator: Next
// serves rows out of the current batch and refills by calling the child's
// NextBatch. The serve path costs the same handful of µops as the buffer
// operator's; the refill cost is the child's own amortized instrumentation.
type ToVolcano struct {
	Child Operator

	stats  *exec.OpStats
	batch  Batch
	pos    int
	eof    bool
	opened bool
}

// NewToVolcano constructs the adapter.
func NewToVolcano(child Operator) *ToVolcano {
	return &ToVolcano{Child: child}
}

// Open implements exec.Operator.
func (t *ToVolcano) Open(ctx *exec.Context) error {
	t.stats = ctx.StatsFor(t, t.Name())
	if t.stats != nil {
		defer t.stats.EndOpen(ctx, t.stats.Begin(ctx))
	}
	t.batch, t.pos, t.eof = nil, 0, false
	t.opened = true
	return t.Child.Open(ctx)
}

// Next implements exec.Operator.
func (t *ToVolcano) Next(ctx *exec.Context) (out storage.Row, err error) {
	if !t.opened {
		return nil, fmt.Errorf("vec: %s.Next called before Open", t.Name())
	}
	if t.stats != nil {
		defer t.stats.EndNext(ctx, t.stats.Begin(ctx), &out)
	}
	for t.pos >= len(t.batch) {
		if t.eof {
			return nil, nil
		}
		batch, err := t.Child.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if len(batch) == 0 {
			t.eof = true
			return nil, nil
		}
		t.batch, t.pos = batch, 0
	}
	if ctx.CPU != nil {
		ctx.CPU.AddUops(serveUops)
	}
	row := t.batch[t.pos]
	t.pos++
	return row, nil
}

// Close implements exec.Operator.
func (t *ToVolcano) Close(ctx *exec.Context) error {
	t.opened = false
	t.batch = nil
	return t.Child.Close(ctx)
}

// Schema implements exec.Operator.
func (t *ToVolcano) Schema() storage.Schema { return t.Child.Schema() }

// Children implements exec.Operator: the batch subtree is not part of the
// Volcano operator tree; Vec() exposes it.
func (t *ToVolcano) Children() []exec.Operator { return nil }

// Vec returns the wrapped batch subtree.
func (t *ToVolcano) Vec() Operator { return t.Child }

// Name implements exec.Operator.
func (t *ToVolcano) Name() string {
	return fmt.Sprintf("ToVolcano(%s)", t.Child.Name())
}

// Module implements exec.Operator: the adapter serve path is too small to
// model as a module (its µops are charged directly).
func (t *ToVolcano) Module() *codemodel.Module { return nil }

// Blocking implements exec.Operator: the adapter batches but does not fully
// materialize.
func (t *ToVolcano) Blocking() bool { return false }
