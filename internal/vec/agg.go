package vec

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// HashAggregate is the block-oriented grouped/ungrouped aggregation. The
// fold phase consumes whole input batches — one amortized module replay per
// batch, transition µops and the group-lookup data traffic per tuple — and
// the emit phase streams result rows out in batches, in group-key order for
// deterministic results (matching exec.Aggregate).
type HashAggregate struct {
	Child   Operator
	GroupBy []expr.Expr
	Aggs    []expr.AggSpec

	module       *codemodel.Module
	schema       storage.Schema
	stats        *exec.OpStats
	fault        *faultinject.Point
	publishFault *faultinject.Point
	shared       *exec.SharedAgg

	groups       map[string]*aggGroup
	order        []string
	memUsed      int64
	pos          int
	done         bool
	emittedEmpty bool
	tableRegion  uint64
	tableBuckets uint64

	out    batchBuf
	bits   []uint64
	size   int
	opened bool
}

type aggGroup struct {
	keyVals storage.Row
	accs    []expr.Accumulator
}

// NewHashAggregate constructs the operator, deriving the output schema.
// module may be nil; size 0 selects DefaultBatchSize for output batches.
func NewHashAggregate(child Operator, groupBy []expr.Expr, aggs []expr.AggSpec, module *codemodel.Module, size int) (*HashAggregate, error) {
	a := &HashAggregate{
		Child:   child,
		GroupBy: groupBy,
		Aggs:    aggs,
		module:  module,
		size:    size,
	}
	for i, g := range groupBy {
		name := fmt.Sprintf("group%d", i)
		if cr, ok := g.(*expr.ColRef); ok {
			name = cr.Name
		}
		a.schema = append(a.schema, storage.Column{Name: name, Type: g.Type()})
	}
	for _, spec := range aggs {
		ty, err := spec.ResultType()
		if err != nil {
			return nil, err
		}
		a.schema = append(a.schema, storage.Column{Name: spec.OutputName(), Type: ty})
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("vec: HashAggregate needs at least one aggregate")
	}
	return a, nil
}

// SetShared wires the finished aggregate table to the semantic reuse
// cache; see exec.SharedAgg. Must be set before Open.
func (a *HashAggregate) SetShared(sa *exec.SharedAgg) { a.shared = sa }

// Open implements Operator.
func (a *HashAggregate) Open(ctx *exec.Context) error {
	a.stats = ctx.StatsFor(a, a.Name())
	if a.stats != nil {
		defer a.stats.EndOpen(ctx, a.stats.Begin(ctx))
	}
	if err := a.Child.Open(ctx); err != nil {
		return err
	}
	a.fault = ctx.FaultPoint(a.Name() + ":next")
	a.publishFault = ctx.FaultPoint(a.Name() + ":publish")
	a.groups = make(map[string]*aggGroup)
	a.order = nil
	ctx.ShrinkMem(a.memUsed) // reopen without Close: release stale charges
	a.memUsed = 0
	a.pos, a.done, a.emittedEmpty = 0, false, false
	a.out.open(ctx, a.size)
	if ctx.CPU != nil && a.tableRegion == 0 {
		a.tableBuckets = 1 << 12
		a.tableRegion = ctx.CPU.AllocData(int(a.tableBuckets) * 64)
	}
	a.opened = true
	return nil
}

// groupAddr maps a group key to its simulated accumulator address.
func (a *HashAggregate) groupAddr(key string) uint64 {
	if a.tableRegion == 0 {
		return 0
	}
	var h uint64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return a.tableRegion + (h%a.tableBuckets)*64
}

// consume drains the child batch by batch, folding every row into its group.
func (a *HashAggregate) consume(ctx *exec.Context) error {
	start := time.Now()
	for {
		if err := ctx.CanceledNow(); err != nil {
			return err
		}
		in, err := a.Child.NextBatch(ctx)
		if err != nil {
			return err
		}
		if len(in) == 0 {
			break
		}
		a.bits = a.bits[:0]
		for _, row := range in {
			keyVals := make(storage.Row, len(a.GroupBy))
			for i, g := range a.GroupBy {
				v, err := g.Eval(row)
				if err != nil {
					return err
				}
				keyVals[i] = v
			}
			key := keyVals.String()
			grp, ok := a.groups[key]
			if !ok {
				// Each new group retains its key string, key row, and one
				// accumulator per aggregate for the life of the operator.
				charge := int64(len(key)) + int64(keyVals.ByteSize()) +
					int64(len(a.Aggs))*hashEntryOverhead
				if err := ctx.GrowMem(charge); err != nil {
					return err
				}
				a.memUsed += charge
				grp = &aggGroup{keyVals: keyVals, accs: make([]expr.Accumulator, len(a.Aggs))}
				for i, spec := range a.Aggs {
					acc, err := expr.NewAccumulator(spec)
					if err != nil {
						return err
					}
					grp.accs[i] = acc
				}
				a.groups[key] = grp
				a.order = append(a.order, key)
			}
			for _, acc := range grp.accs {
				if err := acc.Add(row); err != nil {
					return err
				}
			}
			// The transition functions touch the group's accumulator state.
			addr := a.groupAddr(key)
			ctx.Read(addr, 64)
			ctx.Write(addr, 64)
			a.bits = append(a.bits, ctx.DataBits(!ok))
		}
		ctx.ExecModuleBatch(a.module, a.bits)
	}
	// Deterministic output order: sort groups by key values.
	sort.Slice(a.order, func(i, j int) bool {
		gi, gj := a.groups[a.order[i]], a.groups[a.order[j]]
		for k := range gi.keyVals {
			if c := storage.Compare(gi.keyVals[k], gj.keyVals[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	a.done = true
	if a.shared != nil && a.shared.Publish != nil {
		// Reuse-cache miss: materialize the complete, sorted output — the
		// same rows NextBatch will emit — and hand it to the cache. The
		// publish fault fires first, so a poisoned table is never inserted.
		if err := a.publishFault.Fire(); err != nil {
			return err
		}
		rows, bytes, err := a.materializeRows()
		if err != nil {
			return err
		}
		a.shared.Publish(rows, bytes, time.Since(start))
	}
	return nil
}

// materializeRows builds the operator's full output — mirroring NextBatch's
// emission exactly, including the one synthetic row of an ungrouped
// aggregate over zero input rows — plus the retained-bytes estimate the
// cache charges for it.
func (a *HashAggregate) materializeRows() ([]storage.Row, int64, error) {
	var bytes int64
	if len(a.GroupBy) == 0 && len(a.order) == 0 {
		out := make(storage.Row, 0, len(a.Aggs))
		for _, spec := range a.Aggs {
			acc, err := expr.NewAccumulator(spec)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, acc.Result())
		}
		return []storage.Row{out}, int64(out.ByteSize()) + hashEntryOverhead, nil
	}
	rows := make([]storage.Row, 0, len(a.order))
	for _, key := range a.order {
		grp := a.groups[key]
		out := make(storage.Row, 0, len(a.GroupBy)+len(a.Aggs))
		out = append(out, grp.keyVals...)
		for _, acc := range grp.accs {
			out = append(out, acc.Result())
		}
		rows = append(rows, out)
		bytes += int64(out.ByteSize()) + hashEntryOverhead
	}
	return rows, bytes, nil
}

// NextBatch implements Operator.
func (a *HashAggregate) NextBatch(ctx *exec.Context) (res Batch, err error) {
	if !a.opened {
		return nil, errNotOpen(a.Name())
	}
	if a.stats != nil {
		defer a.stats.EndBatch(ctx, a.stats.Begin(ctx), (*[]storage.Row)(&res))
	}
	if err := a.fault.Fire(); err != nil {
		return nil, err
	}
	if !a.done {
		if err := a.consume(ctx); err != nil {
			return nil, err
		}
	}
	// Ungrouped aggregation over zero rows still yields one row
	// (COUNT(*) = 0, SUM = NULL, …).
	if len(a.GroupBy) == 0 && len(a.order) == 0 {
		if a.emittedEmpty {
			return nil, nil
		}
		a.emittedEmpty = true
		out := make(storage.Row, 0, len(a.Aggs))
		for _, spec := range a.Aggs {
			acc, err := expr.NewAccumulator(spec)
			if err != nil {
				return nil, err
			}
			out = append(out, acc.Result())
		}
		a.out.reset()
		a.out.append(ctx, out)
		ctx.ExecModuleBatch(a.module, []uint64{ctx.DataBits(true)})
		return a.out.take(), nil
	}
	if a.pos >= len(a.order) {
		return nil, nil
	}
	a.out.reset()
	a.bits = a.bits[:0]
	for a.pos < len(a.order) && !a.out.full() {
		grp := a.groups[a.order[a.pos]]
		a.pos++
		out := make(storage.Row, 0, len(a.GroupBy)+len(a.Aggs))
		out = append(out, grp.keyVals...)
		for _, acc := range grp.accs {
			out = append(out, acc.Result())
		}
		a.bits = append(a.bits, ctx.DataBits(true))
		a.out.append(ctx, out)
	}
	ctx.ExecModuleBatch(a.module, a.bits)
	return a.out.take(), nil
}

// Close implements Operator.
func (a *HashAggregate) Close(ctx *exec.Context) error {
	a.opened = false
	a.groups = nil
	a.order = nil
	ctx.ShrinkMem(a.memUsed)
	a.memUsed = 0
	return a.Child.Close(ctx)
}

// Schema implements Operator.
func (a *HashAggregate) Schema() storage.Schema { return a.schema }

// Children implements Operator.
func (a *HashAggregate) Children() []Operator { return []Operator{a.Child} }

// Name implements Operator.
func (a *HashAggregate) Name() string {
	aggs := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		aggs[i] = s.String()
	}
	if len(a.GroupBy) == 0 {
		return fmt.Sprintf("VecHashAggregate(%s)", strings.Join(aggs, ", "))
	}
	groups := make([]string, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groups[i] = g.String()
	}
	return fmt.Sprintf("VecHashAggregate(%s GROUP BY %s)", strings.Join(aggs, ", "), strings.Join(groups, ", "))
}
