// Package codemodel defines the synthetic code layout that stands in for the
// PostgreSQL binary in the paper's instruction-footprint study.
//
// The paper (Table 2) measures per-operator ("module") instruction
// footprints by running calibration queries, recording the dynamic call
// graph with VTune, and summing the binary sizes of the functions each
// module actually invokes — counting functions shared between modules only
// once when combining them. This package reproduces that structure:
//
//   - a catalog of synthetic functions with addresses and sizes, grouped
//     into libraries (a shared runtime, a shared expression evaluator, a
//     numeric library, a hash library, and per-operator private code);
//   - modules (operators) defined as the set of functions their dynamic
//     call graph reaches, sized to match the paper's Table 2;
//   - per-module "cold" functions that appear in the static call graph but
//     are never executed (error paths), so that the naive static estimate
//     overestimates, as the paper observes;
//   - a hot fraction per function: even called functions execute only part
//     of their code, so the *touched* footprint is smaller than the
//     reported one — this is the paper's remark that its footprint analysis
//     is conservative;
//   - branch sites attached to functions, including caller-dependent sites
//     in shared libraries whose outcome depends on the invoking module
//     (the paper: "different database operators often share common
//     functions [which] may have different branching patterns when called
//     by different operators").
//
// Functions are laid out scattered across a multi-megabyte simulated text
// segment, the way a large binary lays out a working set amid unused code,
// which is what gives the instruction TLB something to do.
package codemodel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// HotFraction is the fraction of a called function's bytes actually executed
// per invocation. The remaining bytes are in the function body (so the
// reported footprint includes them) but are never fetched.
const HotFraction = 0.7

// CacheLineBytes is the instruction-fetch granularity used to precompute
// line traces. It matches the simulated L1I line size.
const CacheLineBytes = 64

// branchSiteEvery controls branch-site density: one conditional branch site
// per this many bytes of hot code.
const branchSiteEvery = 256

// SiteKind classifies a branch site by what drives its outcome.
type SiteKind uint8

const (
	// SiteBiased branches are strongly biased (always taken here): loop
	// back-edges, never-failing error checks. Predictors learn them fast;
	// they matter only through table capacity and aliasing.
	SiteBiased SiteKind = iota
	// SiteCallerDep branches live in shared library functions and resolve
	// differently depending on the module executing them (e.g. a datum
	// comparator called with different types by different operators).
	SiteCallerDep
	// SiteData branches depend on the data a tuple carries (predicate
	// results, join-match tests). The executor supplies their outcomes.
	SiteData
)

// BranchSite is one static conditional branch.
type BranchSite struct {
	PC   uint64
	Kind SiteKind
}

// Function is one synthetic function in the simulated binary.
type Function struct {
	Name string
	Lib  string
	Addr uint64
	// Size is the binary size in bytes — what footprint analysis reports.
	Size int
	// HotBytes is the number of bytes actually fetched per call.
	HotBytes int
	// Sites are the function's branch sites, inside the hot region.
	Sites []BranchSite
}

// Module is one executable unit of the engine — an operator implementation
// (or one phase of one, like a hash join's build and probe phases, which
// the paper treats as separate modules).
type Module struct {
	// Name identifies the module, e.g. "SeqScanPred" or "Agg[sum avg count]".
	Name string
	// ID feeds caller-dependent branch outcomes; distinct per module.
	ID uint32
	// Funcs is the dynamic call set: functions executed per invocation.
	Funcs []*Function
	// Cold is statically reachable code that never runs (error paths).
	Cold []*Function

	lines    []uint64
	sites    []BranchSite
	hotBytes int
	dataIdx  []int // positions of SiteData entries within sites
}

// finalize precomputes the per-invocation fetch trace and branch-site list.
func (m *Module) finalize() {
	m.lines = m.lines[:0]
	m.sites = m.sites[:0]
	m.hotBytes = 0
	for _, f := range m.Funcs {
		first := f.Addr / CacheLineBytes
		last := (f.Addr + uint64(f.HotBytes) - 1) / CacheLineBytes
		for l := first; l <= last; l++ {
			m.lines = append(m.lines, l*CacheLineBytes)
		}
		m.hotBytes += f.HotBytes
		m.sites = append(m.sites, f.Sites...)
	}
	m.dataIdx = m.dataIdx[:0]
	for i, s := range m.sites {
		if s.Kind == SiteData {
			m.dataIdx = append(m.dataIdx, i)
		}
	}
}

// Lines returns the cache-line addresses fetched by one invocation, in
// execution order. Callers must not mutate the slice.
func (m *Module) Lines() []uint64 { return m.lines }

// Sites returns the branch sites executed by one invocation.
func (m *Module) Sites() []BranchSite { return m.sites }

// DataSiteCount returns how many of the module's sites are data-dependent.
func (m *Module) DataSiteCount() int { return len(m.dataIdx) }

// HotBytes returns the instruction bytes fetched per invocation.
func (m *Module) HotBytes() int { return m.hotBytes }

// FootprintBytes is the dynamic-call-graph footprint the paper's analysis
// reports: the summed binary sizes of the functions the module executes.
func (m *Module) FootprintBytes() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.Size
	}
	return n
}

// StaticFootprintBytes is the naive static-call-graph estimate, which also
// counts reachable-but-never-executed functions. The paper rejects this
// estimator as an overestimate; the refinement ablation tests quantify it.
func (m *Module) StaticFootprintBytes() int {
	n := m.FootprintBytes()
	for _, f := range m.Cold {
		n += f.Size
	}
	return n
}

// CombinedFootprint returns the dynamic footprint of a set of modules with
// functions shared between modules counted once — the paper's §6.1 rule for
// estimating an execution group's footprint.
func CombinedFootprint(mods ...*Module) int {
	seen := make(map[*Function]struct{})
	n := 0
	for _, m := range mods {
		for _, f := range m.Funcs {
			if _, dup := seen[f]; dup {
				continue
			}
			seen[f] = struct{}{}
			n += f.Size
		}
	}
	return n
}

// NaiveCombinedFootprint sums per-module footprints without deduplicating
// shared functions — the estimator the paper warns against.
func NaiveCombinedFootprint(mods ...*Module) int {
	n := 0
	for _, m := range mods {
		n += m.FootprintBytes()
	}
	return n
}

// CombinedHotLines returns the number of distinct cache lines a set of
// modules touches per round of invocations — the quantity that actually
// determines whether interleaved execution thrashes the L1I.
func CombinedHotLines(mods ...*Module) int {
	seen := make(map[uint64]struct{})
	for _, m := range mods {
		for _, l := range m.lines {
			seen[l] = struct{}{}
		}
	}
	return len(seen)
}

// Library size targets, in bytes, chosen so that module footprints land on
// the paper's Table 2 (see DESIGN.md §5 for the arithmetic).
const (
	libRuntimeBytes   = 7168 // tuple slots, datum access, memory contexts, elog
	libExprBytes      = 3072 // expression evaluator, qual checking, projection
	libArithBytes     = 1536 // numeric addition/division used by SUM and AVG
	libHashBytes      = 768  // hash functions shared by hash join phases
	privSeqScanBytes  = 2048
	privPredBytes     = 1024 // predicate-specific scan code (qual loop)
	privIndexBytes    = 4096
	privSortBytes     = 4096
	privNestLoopBytes = 1024
	privMergeBytes    = 2048
	// Hash join phases hash raw key columns directly rather than going
	// through the general expression evaluator, so — unlike the other
	// joins — they do not pull in the expr library. Their private code is
	// correspondingly larger; totals still land on Table 2's 12 KB.
	privHBuildBytes   = 4352
	privHProbeBytes   = 4352
	privAggBaseBytes  = 2048
	privAggCountBytes = 448
	privAggMinBytes   = 1600
	privAggMaxBytes   = 1600
	privAggSumBytes   = 1228
	privAggAvgBytes   = 3000
	privBufferBytes   = 716
	privMaterialBytes = 1024
	// coldBytesPerModule is error-path code present in each module's static
	// call graph but never executed.
	coldBytesPerModule = 1536
)

// Library names.
const (
	LibRuntime = "runtime"
	LibExpr    = "expr"
	LibArith   = "arith"
	LibHash    = "hash"
)

// Layout selects how functions are placed in the simulated text segment.
type Layout uint8

const (
	// LayoutScattered models an ordinary large binary: used functions are
	// interleaved with unused code, so the working set spans many pages.
	// This is the default and the setting all paper experiments use.
	LayoutScattered Layout = iota
	// LayoutPacked models profile-guided code layout (the paper's §2
	// related work, e.g. Pettis–Hansen): hot functions are placed
	// contiguously. It collapses the ITLB working set but does not shrink
	// the instruction *footprint*, which is why — as the paper argues —
	// layout optimization alone cannot stop pipeline thrashing.
	LayoutPacked
)

// Catalog owns the function layout and hands out modules. One catalog
// corresponds to one simulated binary; the engine builds exactly one and
// shares it across all plans so that shared libraries really are shared.
// Module lookup assembles lazily on first use, so the catalog is internally
// synchronized: concurrent query compilations may request modules at once.
type Catalog struct {
	// mu guards the lazily grown state: modules, nextID and sorted. The
	// function layout itself (libs, nextAddr) is fixed at construction.
	mu       sync.Mutex
	libs     map[string][]*Function
	modules  map[string]*Module
	layout   Layout
	nextAddr uint64
	nextID   uint32
	rngState uint64
	// sorted is the lazily built address-ordered function index.
	sorted []*Function
}

// NewCatalog lays out the standard simulated binary (scattered layout).
func NewCatalog() *Catalog {
	return NewCatalogWithLayout(LayoutScattered)
}

// NewCatalogWithLayout lays out the simulated binary with the given
// function placement strategy.
func NewCatalogWithLayout(layout Layout) *Catalog {
	c := &Catalog{
		libs:     make(map[string][]*Function),
		modules:  make(map[string]*Module),
		layout:   layout,
		nextAddr: 0x40_0000, // a typical text-segment start
		rngState: 0x243f6a8885a308d3,
	}
	// Shared libraries first (they are hot in link order too). Shared
	// library functions carry caller-dependent branch sites.
	c.buildLib(LibRuntime, libRuntimeBytes, true)
	c.buildLib(LibExpr, libExprBytes, true)
	c.buildLib(LibArith, libArithBytes, true)
	c.buildLib(LibHash, libHashBytes, true)
	// Operator-private code: branch outcomes depend on data, not caller.
	for _, p := range []struct {
		name  string
		bytes int
	}{
		{"seqscan", privSeqScanBytes},
		{"pred", privPredBytes},
		{"indexscan", privIndexBytes},
		{"sort", privSortBytes},
		{"nestloop", privNestLoopBytes},
		{"mergejoin", privMergeBytes},
		{"hashbuild", privHBuildBytes},
		{"hashprobe", privHProbeBytes},
		{"aggbase", privAggBaseBytes},
		{"agg.count", privAggCountBytes},
		{"agg.min", privAggMinBytes},
		{"agg.max", privAggMaxBytes},
		{"agg.sum", privAggSumBytes},
		{"agg.avg", privAggAvgBytes},
		{"buffer", privBufferBytes},
		{"material", privMaterialBytes},
	} {
		c.buildLib(p.name, p.bytes, false)
	}
	// Cold error-path code, one pool per operator family.
	for _, name := range []string{
		"cold.seqscan", "cold.indexscan", "cold.sort", "cold.join",
		"cold.agg", "cold.buffer",
	} {
		c.buildLib(name, coldBytesPerModule, false)
	}
	return c
}

// rand is a splitmix64 step for deterministic layout jitter.
func (c *Catalog) rand() uint64 {
	c.rngState += 0x9e3779b97f4a7c15
	z := c.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// buildLib carves a library of the given total size into functions of
// 192–448 bytes, placed at scattered addresses with inter-function gaps so
// the working set spans many pages (ITLB pressure) and maps across many
// cache sets.
func (c *Catalog) buildLib(name string, totalBytes int, shared bool) {
	if _, dup := c.libs[name]; dup {
		panic("codemodel: duplicate library " + name)
	}
	var funcs []*Function
	remaining := totalBytes
	for i := 0; remaining > 0; i++ {
		size := 192 + int(c.rand()%257) // 192..448
		if size > remaining || remaining-size < 128 {
			size = remaining
		}
		hot := int(float64(size)*HotFraction + 0.5)
		f := &Function{
			Name:     fmt.Sprintf("%s_fn%d", name, i),
			Lib:      name,
			Addr:     c.nextAddr,
			Size:     size,
			HotBytes: hot,
		}
		f.Sites = c.makeSites(f, shared)
		funcs = append(funcs, f)
		// Scattered layout: a 1.5–6 KB gap of unused binary between used
		// functions. Packed layout: hot functions back to back. Either
		// way the next function aligns to a cache line, as compilers do.
		var gap uint64
		if c.layout == LayoutScattered {
			gap = 1536 + c.rand()%4608
		}
		c.nextAddr += uint64(size) + gap
		c.nextAddr = (c.nextAddr + CacheLineBytes - 1) &^ (CacheLineBytes - 1)
		remaining -= size
	}
	c.libs[name] = funcs
}

// makeSites places one branch site per branchSiteEvery hot bytes. In shared
// libraries one in four sites is caller-dependent. Data sites are not
// assigned here; modules claim them from their private code (see NewModule).
func (c *Catalog) makeSites(f *Function, shared bool) []BranchSite {
	n := f.HotBytes / branchSiteEvery
	if n < 1 {
		n = 1
	}
	sites := make([]BranchSite, n)
	for i := range sites {
		pc := f.Addr + uint64(i*branchSiteEvery+17)
		kind := SiteBiased
		// Roughly one shared-library site in four is caller-dependent,
		// selected by a PC hash so that single-site functions participate.
		if shared && (pc>>6)%4 == 1 {
			kind = SiteCallerDep
		}
		sites[i] = BranchSite{PC: pc, Kind: kind}
	}
	return sites
}

// Lib returns a library's functions (for footprint reporting and tests).
func (c *Catalog) Lib(name string) []*Function {
	return c.libs[name]
}

// LibBytes returns a library's total binary size.
func (c *Catalog) LibBytes(name string) int {
	n := 0
	for _, f := range c.libs[name] {
		n += f.Size
	}
	return n
}

// moduleSpec describes a module as a list of libraries plus cold code.
type moduleSpec struct {
	libs      []string
	cold      string
	dataSites int
}

// specs maps module names to their call sets. The paper's Table 2 rows fall
// out of these compositions (DESIGN.md §5).
var specs = map[string]moduleSpec{
	"SeqScan":     {libs: []string{LibRuntime, "seqscan"}, cold: "cold.seqscan", dataSites: 1},
	"SeqScanPred": {libs: []string{LibRuntime, LibExpr, "seqscan", "pred"}, cold: "cold.seqscan", dataSites: 3},
	"IndexScan":   {libs: []string{LibRuntime, LibExpr, "indexscan"}, cold: "cold.indexscan", dataSites: 2},
	"Sort":        {libs: []string{LibRuntime, LibExpr, "sort"}, cold: "cold.sort", dataSites: 2},
	"NestLoop":    {libs: []string{LibRuntime, LibExpr, "nestloop"}, cold: "cold.join", dataSites: 2},
	"MergeJoin":   {libs: []string{LibRuntime, LibExpr, "mergejoin"}, cold: "cold.join", dataSites: 2},
	"HashBuild":   {libs: []string{LibRuntime, LibHash, "hashbuild"}, cold: "cold.join", dataSites: 1},
	"HashProbe":   {libs: []string{LibRuntime, LibHash, "hashprobe"}, cold: "cold.join", dataSites: 2},
	// Filter is a standalone qualification node (residual join predicates).
	// PostgreSQL folds quals into each operator; the footprint is the
	// shared evaluator plus the qual-loop code.
	"Filter": {libs: []string{LibRuntime, LibExpr, "pred"}, cold: "cold.seqscan", dataSites: 2},
	// Project evaluates a target list; same evaluator machinery.
	"Project":  {libs: []string{LibRuntime, LibExpr}, dataSites: 1},
	"Buffer":   {libs: []string{"buffer"}, dataSites: 1},
	"Material": {libs: []string{LibRuntime, "material"}, cold: "cold.buffer", dataSites: 1},
}

// Module returns the named module, creating it on first use. Valid names
// are the keys of the spec table; aggregation modules are built with
// AggModule instead because their call set depends on the aggregate list.
func (c *Catalog) Module(name string) (*Module, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.modules[name]; ok {
		return m, nil
	}
	spec, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("codemodel: unknown module %q", name)
	}
	return c.assemble(name, spec), nil
}

// MustModule is Module for statically known names.
func (c *Catalog) MustModule(name string) *Module {
	m, err := c.Module(name)
	if err != nil {
		panic(err)
	}
	return m
}

// AggModule builds (or returns) the aggregation module for a set of
// aggregate function names, drawn from count, min, max, sum, avg.
// SUM and AVG additionally pull in the shared numeric library, and AVG
// pulls in SUM's and COUNT's helpers — which is how the paper's Table 2
// arrives at AVG's 6.3 KB while the combined module stays subadditive.
func (c *Catalog) AggModule(aggs []string) (*Module, error) {
	uniq := map[string]bool{}
	var order []string
	for _, a := range aggs {
		a = strings.ToLower(a)
		switch a {
		case "count", "min", "max", "sum", "avg":
			if !uniq[a] {
				uniq[a] = true
				order = append(order, a)
			}
		default:
			return nil, fmt.Errorf("codemodel: unknown aggregate %q", a)
		}
	}
	sort.Strings(order)
	name := "Agg[" + strings.Join(order, " ") + "]"
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.modules[name]; ok {
		return m, nil
	}
	libs := []string{LibRuntime, LibExpr, "aggbase"}
	needArith := false
	for _, a := range order {
		switch a {
		case "avg":
			libs = append(libs, "agg.avg", "agg.sum", "agg.count")
			needArith = true
		case "sum":
			libs = append(libs, "agg.sum")
			needArith = true
		default:
			libs = append(libs, "agg."+a)
		}
	}
	if needArith {
		libs = append(libs, LibArith)
	}
	return c.assemble(name, moduleSpec{libs: dedupStrings(libs), cold: "cold.agg", dataSites: 2}), nil
}

func dedupStrings(in []string) []string {
	seen := map[string]bool{}
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// assemble builds a module from a spec, converts the requested number of
// private biased sites into data sites, and registers it. Callers hold mu.
func (c *Catalog) assemble(name string, spec moduleSpec) *Module {
	m := &Module{Name: name, ID: c.nextID}
	c.nextID++
	for _, lib := range spec.libs {
		funcs, ok := c.libs[lib]
		if !ok {
			panic("codemodel: module " + name + " references unknown library " + lib)
		}
		m.Funcs = append(m.Funcs, funcs...)
	}
	if spec.cold != "" {
		m.Cold = append(m.Cold, c.libs[spec.cold]...)
	}
	m.finalize()
	// Claim data sites from private (non-shared) code, spread across the
	// module's site list.
	converted := 0
	for i := range m.sites {
		if converted >= spec.dataSites {
			break
		}
		// Walk backwards so data sites land in operator-private code,
		// which is laid out after the shared libraries.
		j := len(m.sites) - 1 - i
		if m.sites[j].Kind == SiteBiased {
			m.sites[j].Kind = SiteData
			converted++
		}
	}
	m.finalizeDataIdx()
	c.modules[name] = m
	return m
}

// finalizeDataIdx recomputes the data-site positions after site conversion.
func (m *Module) finalizeDataIdx() {
	m.dataIdx = m.dataIdx[:0]
	for i, s := range m.sites {
		if s.Kind == SiteData {
			m.dataIdx = append(m.dataIdx, i)
		}
	}
}

// Modules returns all instantiated modules in name order.
func (c *Catalog) Modules() []*Module {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.modules))
	for n := range c.modules {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Module, len(names))
	for i, n := range names {
		out[i] = c.modules[n]
	}
	return out
}

// TextSegmentBytes returns the extent of the simulated text segment, used
// by the CPU simulator to place the data heap above the code.
func (c *Catalog) TextSegmentBytes() uint64 { return c.nextAddr }

// FunctionAt returns the function whose body contains addr, or nil when
// addr falls into inter-function padding. It backs the dynamic call-graph
// recorder, which maps observed instruction fetches back to functions.
func (c *Catalog) FunctionAt(addr uint64) *Function {
	c.mu.Lock()
	c.ensureSorted()
	sorted := c.sorted
	c.mu.Unlock()
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		f := sorted[mid]
		switch {
		case addr < f.Addr:
			hi = mid
		case addr >= f.Addr+uint64(f.Size):
			lo = mid + 1
		default:
			return f
		}
	}
	return nil
}

// ensureSorted builds the address-sorted function index on first use.
// All libraries are created in NewCatalog, so the index never goes stale.
func (c *Catalog) ensureSorted() {
	if c.sorted != nil {
		return
	}
	for _, funcs := range c.libs {
		c.sorted = append(c.sorted, funcs...)
	}
	sort.Slice(c.sorted, func(i, j int) bool { return c.sorted[i].Addr < c.sorted[j].Addr })
}
