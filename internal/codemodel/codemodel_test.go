package codemodel

import (
	"testing"
)

// kb asserts a footprint is within tol bytes of want.
func near(got, want, tol int) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestTable2Footprints(t *testing.T) {
	c := NewCatalog()
	cases := []struct {
		module string
		wantKB float64
	}{
		{"SeqScan", 9},
		{"SeqScanPred", 13},
		{"IndexScan", 14},
		{"Sort", 14},
		{"NestLoop", 11},
		{"MergeJoin", 12},
		{"HashBuild", 12},
		{"HashProbe", 12},
	}
	for _, tc := range cases {
		m := c.MustModule(tc.module)
		want := int(tc.wantKB * 1024)
		if !near(m.FootprintBytes(), want, 256) {
			t.Errorf("%s footprint = %d B, want ≈ %d B", tc.module, m.FootprintBytes(), want)
		}
	}
	// Buffer operator is tiny (< 1 KB), per the paper.
	buf := c.MustModule("Buffer")
	if buf.FootprintBytes() >= 1024 {
		t.Errorf("Buffer footprint = %d B, want < 1 KB", buf.FootprintBytes())
	}
}

func TestAggregationFootprints(t *testing.T) {
	c := NewCatalog()
	base, err := c.AggModule(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !near(base.FootprintBytes(), 12*1024, 256) {
		t.Errorf("Agg base = %d B, want ≈ 12 KB", base.FootprintBytes())
	}
	count, _ := c.AggModule([]string{"count"})
	if inc := count.FootprintBytes() - base.FootprintBytes(); inc >= 1024 || inc <= 0 {
		t.Errorf("COUNT increment = %d B, want (0, 1 KB)", inc)
	}
	sum, _ := c.AggModule([]string{"sum"})
	if inc := sum.FootprintBytes() - base.FootprintBytes(); !near(inc, 2700, 300) {
		t.Errorf("SUM increment = %d B, want ≈ 2.7 KB", inc)
	}
	minm, _ := c.AggModule([]string{"min"})
	if inc := minm.FootprintBytes() - base.FootprintBytes(); !near(inc, 1600, 200) {
		t.Errorf("MIN increment = %d B, want ≈ 1.6 KB", inc)
	}
	avg, _ := c.AggModule([]string{"avg"})
	if inc := avg.FootprintBytes() - base.FootprintBytes(); !near(inc, 6300, 400) {
		t.Errorf("AVG increment = %d B, want ≈ 6.3 KB", inc)
	}
	// Sub-additivity: SUM+AVG+COUNT together cost less than the sum of the
	// individual increments because AVG shares SUM's and COUNT's helpers.
	q1, _ := c.AggModule([]string{"sum", "avg", "count"})
	sep := (sum.FootprintBytes() - base.FootprintBytes()) +
		(avg.FootprintBytes() - base.FootprintBytes()) +
		(count.FootprintBytes() - base.FootprintBytes())
	if got := q1.FootprintBytes() - base.FootprintBytes(); got >= sep {
		t.Errorf("combined agg increment %d B not subadditive vs %d B", got, sep)
	}
	if _, err := c.AggModule([]string{"median"}); err == nil {
		t.Error("unknown aggregate accepted")
	}
	// Same agg set in different order returns the identical module.
	a, _ := c.AggModule([]string{"avg", "count", "sum"})
	if a != q1 {
		t.Error("agg module not canonicalized by function set")
	}
}

func TestCombinedFootprintDedup(t *testing.T) {
	c := NewCatalog()
	scan := c.MustModule("SeqScanPred")
	agg, _ := c.AggModule([]string{"sum", "avg", "count"})

	combined := CombinedFootprint(scan, agg)
	naive := NaiveCombinedFootprint(scan, agg)
	if combined >= naive {
		t.Errorf("dedup combined %d >= naive %d", combined, naive)
	}
	// The shared runtime+expr overlap is about 10 KB.
	overlap := naive - combined
	if !near(overlap, 10*1024, 512) {
		t.Errorf("scan/agg shared code = %d B, want ≈ 10 KB", overlap)
	}
	// Paper's Query 1: combined ≈ 21–23 KB, exceeding a 16 KB L1I.
	if combined <= 16*1024 || combined > 24*1024 {
		t.Errorf("Query 1 combined footprint = %d B, want in (16 KB, 24 KB]", combined)
	}
	// Paper's Query 2: scan + COUNT-only aggregation ≈ 15 KB, fitting.
	countAgg, _ := c.AggModule([]string{"count"})
	q2 := CombinedFootprint(scan, countAgg)
	if q2 > 16*1024 {
		t.Errorf("Query 2 combined footprint = %d B, want <= 16 KB", q2)
	}
	// Idempotence: combining a module with itself adds nothing.
	if CombinedFootprint(scan, scan) != scan.FootprintBytes() {
		t.Error("CombinedFootprint(x, x) != footprint(x)")
	}
}

func TestHotVsStaticFootprint(t *testing.T) {
	c := NewCatalog()
	for _, name := range []string{"SeqScan", "SeqScanPred", "IndexScan", "Sort"} {
		m := c.MustModule(name)
		if m.HotBytes() >= m.FootprintBytes() {
			t.Errorf("%s: hot bytes %d >= reported footprint %d", name, m.HotBytes(), m.FootprintBytes())
		}
		frac := float64(m.HotBytes()) / float64(m.FootprintBytes())
		if frac < HotFraction-0.05 || frac > HotFraction+0.05 {
			t.Errorf("%s: hot fraction = %.3f, want ≈ %.2f", name, frac, HotFraction)
		}
		if m.StaticFootprintBytes() <= m.FootprintBytes() {
			t.Errorf("%s: static estimate %d not above dynamic %d (cold code missing)",
				name, m.StaticFootprintBytes(), m.FootprintBytes())
		}
	}
	// Key property for the thrashing experiments: each Query 1 operator's
	// hot set fits a 16 KB L1I, but the combination does not.
	scan := c.MustModule("SeqScanPred")
	agg, _ := c.AggModule([]string{"sum", "avg", "count"})
	const l1i = 16 * 1024
	scanHot := CombinedHotLines(scan) * CacheLineBytes
	aggHot := CombinedHotLines(agg) * CacheLineBytes
	bothHot := CombinedHotLines(scan, agg) * CacheLineBytes
	if scanHot >= l1i {
		t.Errorf("scan hot set %d B does not fit L1I", scanHot)
	}
	if aggHot >= l1i {
		t.Errorf("agg hot set %d B does not fit L1I", aggHot)
	}
	if bothHot <= l1i {
		t.Errorf("combined hot set %d B fits L1I; thrashing experiment needs it to exceed", bothHot)
	}
}

func TestModuleLines(t *testing.T) {
	c := NewCatalog()
	m := c.MustModule("SeqScan")
	lines := m.Lines()
	if len(lines) == 0 {
		t.Fatal("no fetch trace")
	}
	seen := map[uint64]bool{}
	for _, l := range lines {
		if l%CacheLineBytes != 0 {
			t.Fatalf("unaligned line address %#x", l)
		}
		seen[l] = true
	}
	// Functions are scattered: consecutive functions must not share lines.
	if len(seen) != len(lines) {
		t.Errorf("fetch trace revisits lines within one invocation: %d distinct of %d", len(seen), len(lines))
	}
	// Line count must cover the hot bytes.
	if got, minWant := len(lines)*CacheLineBytes, m.HotBytes(); got < minWant {
		t.Errorf("trace covers %d B < hot %d B", got, minWant)
	}
}

func TestBranchSites(t *testing.T) {
	c := NewCatalog()
	scan := c.MustModule("SeqScanPred")
	var biased, callerDep, data int
	for _, s := range scan.Sites() {
		switch s.Kind {
		case SiteBiased:
			biased++
		case SiteCallerDep:
			callerDep++
		case SiteData:
			data++
		}
	}
	if data != 3 {
		t.Errorf("SeqScanPred data sites = %d, want 3", data)
	}
	if callerDep == 0 {
		t.Error("no caller-dependent sites in shared libraries")
	}
	if biased == 0 {
		t.Error("no biased sites")
	}
	if scan.DataSiteCount() != data {
		t.Errorf("DataSiteCount = %d, counted %d", scan.DataSiteCount(), data)
	}
	// Shared sites appear in both modules that use the library, at the
	// same PC, but module-local kinds don't leak across modules.
	agg, _ := c.AggModule([]string{"count"})
	sharedPCs := map[uint64]SiteKind{}
	for _, s := range scan.Sites() {
		sharedPCs[s.PC] = s.Kind
	}
	overlap := 0
	for _, s := range agg.Sites() {
		if _, ok := sharedPCs[s.PC]; ok {
			overlap++
		}
	}
	if overlap == 0 {
		t.Error("no branch sites shared between scan and aggregation")
	}
}

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Module("NoSuchThing"); err == nil {
		t.Error("unknown module accepted")
	}
	m1 := c.MustModule("Sort")
	m2 := c.MustModule("Sort")
	if m1 != m2 {
		t.Error("Module not cached")
	}
	c.MustModule("Buffer")
	if c.LibBytes(LibRuntime) != libRuntimeBytes {
		t.Errorf("runtime lib = %d B, want %d", c.LibBytes(LibRuntime), libRuntimeBytes)
	}
	if len(c.Lib(LibExpr)) == 0 {
		t.Error("expr lib empty")
	}
	if c.TextSegmentBytes() == 0 {
		t.Error("no text segment extent")
	}
	mods := c.Modules()
	if len(mods) < 2 {
		t.Errorf("Modules() = %d entries", len(mods))
	}
	// Distinct module IDs.
	ids := map[uint32]bool{}
	for _, m := range mods {
		if ids[m.ID] {
			t.Errorf("duplicate module ID %d", m.ID)
		}
		ids[m.ID] = true
	}
}

func TestDeterministicLayout(t *testing.T) {
	a, b := NewCatalog(), NewCatalog()
	ma, mb := a.MustModule("SeqScanPred"), b.MustModule("SeqScanPred")
	la, lb := ma.Lines(), mb.Lines()
	if len(la) != len(lb) {
		t.Fatalf("layout not deterministic: %d vs %d lines", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("layout diverges at line %d: %#x vs %#x", i, la[i], lb[i])
		}
	}
}

func TestITLBPageSpread(t *testing.T) {
	// The working set of the Query 1 pipeline must span more pages than a
	// single module's, so that interleaving pressures the ITLB.
	c := NewCatalog()
	scan := c.MustModule("SeqScanPred")
	agg, _ := c.AggModule([]string{"sum", "avg", "count"})
	pages := func(mods ...*Module) int {
		seen := map[uint64]bool{}
		for _, m := range mods {
			for _, l := range m.Lines() {
				seen[l>>12] = true
			}
		}
		return len(seen)
	}
	p1, p2, both := pages(scan), pages(agg), pages(scan, agg)
	if both <= p1 || both <= p2 {
		t.Errorf("page working sets: scan %d, agg %d, combined %d", p1, p2, both)
	}
	// Scattered layout: the pipeline spans at least ~50 pages.
	if both < 50 {
		t.Errorf("combined page working set %d too small for ITLB pressure", both)
	}
}
