// Package obsv is a small, dependency-free metrics registry: monotonic
// counters, gauges and fixed-bucket histograms, safe for concurrent use,
// exportable in Prometheus text exposition format and publishable through
// the standard library's expvar. Metric names follow the Prometheus
// convention and may carry inline labels, e.g.
// `queries_total{engine="volcano"}` — the registry treats the full string
// as the identity, which keeps lookup a single map read.
package obsv

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta (negative to decrease), atomically with
// respect to concurrent Add and Set calls.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets, tracking
// the running sum and count like a Prometheus histogram. Observations are
// lock-free; readers see a consistent-enough view for monitoring.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// newHistogram builds a histogram over ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	return h
}

// DefLatencyBounds are the default latency buckets in seconds.
var DefLatencyBounds = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Registry holds named metrics. The zero value is unusable; use
// NewRegistry or the package-level Default.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the database feeds.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use. The name
// may carry inline labels: `queries_total{engine="vec"}`.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// splitName separates `base{labels}` into base and the label block
// (including braces), for exposition formats that need them apart.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// labeledName merges extra label pairs into a possibly-labeled name:
// labeledName(`x_bucket`, `{engine="vec"}`, `le="0.5"`) →
// `x_bucket{engine="vec",le="0.5"}`.
func labeledName(base, labels, extra string) string {
	if labels == "" {
		return base + "{" + extra + "}"
	}
	return base + strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, sorted by name for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, counters[name].Value()); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %g\n", name, gauges[name].Value()); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := histograms[name]
		base, labels := splitName(name)
		cum := uint64(0)
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			le := fmt.Sprintf("le=%q", fmt.Sprintf("%g", bound))
			if _, err := fmt.Fprintf(w, "%s %d\n", labeledName(base+"_bucket", labels, le), cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", labeledName(base+"_bucket", labels, `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %g\n", base+"_sum", labels, h.Sum()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", base+"_count", labels, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// expvarOnce guards the one-time expvar publication (expvar panics on
// duplicate names).
var expvarOnce sync.Once

// PublishExpvar publishes the registry under the expvar name "bufferdb",
// rendering the Prometheus text exposition as the variable's value. Safe to
// call more than once; only the first call registers.
func (r *Registry) PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("bufferdb", expvar.Func(func() any {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			return b.String()
		}))
	})
}
