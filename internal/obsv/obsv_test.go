package obsv

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("requests_total") != c {
		t.Fatal("same name returned a different counter")
	}

	g := r.Gauge("temp")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %g, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %g, want -1", got)
	}
	g.Add(3)
	g.Add(-0.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge after Add = %g, want 1.5", got)
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("load")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
			g.Add(1)
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8 {
		t.Fatalf("gauge = %g after 8 net increments, want 8", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`lat_bucket{le="0.1"} 1`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestPrometheusLabeledNames(t *testing.T) {
	r := NewRegistry()
	r.Counter(`q_total{engine="vec"}`).Add(7)
	r.Counter(`q_total{engine="volcano"}`).Add(3)
	r.Histogram(`q_seconds{engine="vec"}`, []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`q_total{engine="vec"} 7`,
		`q_total{engine="volcano"} 3`,
		`q_seconds_bucket{engine="vec",le="1"} 1`,
		`q_seconds_bucket{engine="vec",le="+Inf"} 1`,
		`q_seconds_sum{engine="vec"} 0.5`,
		`q_seconds_count{engine="vec"} 1`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	// Output sorted and deterministic.
	var b2 strings.Builder
	_ = r.WritePrometheus(&b2)
	if out != b2.String() {
		t.Error("exposition output is not deterministic")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(j))
				r.Histogram("h", []float64{10, 100}).Observe(float64(j % 150))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	h := r.Histogram("h", nil)
	if got := h.Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
