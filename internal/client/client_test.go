package client_test

import (
	"context"
	"net"
	"strings"
	"testing"

	"bufferdb/internal/client"
	"bufferdb/internal/wire"
)

// serveOnce accepts one connection, answers the handshake, waits for the
// first request frame and hands the connection to respond. It lets tests
// play a malicious or broken server without a real daemon.
func serveOnce(t *testing.T, l net.Listener, respond func(conn net.Conn)) {
	t.Helper()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if ft, _, err := wire.ReadFrame(conn); err != nil || ft != wire.THello {
			return
		}
		var hello wire.Builder
		hello.U8(wire.Version)
		hello.String("fake")
		if err := wire.WriteFrame(conn, wire.THelloOK, hello.Bytes()); err != nil {
			return
		}
		if _, _, err := wire.ReadFrame(conn); err != nil {
			return
		}
		respond(conn)
		// Hold the connection open until the client tears it down.
		_, _, _ = wire.ReadFrame(conn)
	}()
}

// TestMalformedCountsRejected asserts the client bounds peer-declared
// element counts against the payload size instead of trusting them: a
// 5-byte frame claiming four billion rows must fail fast, not allocate.
func TestMalformedCountsRejected(t *testing.T) {
	t.Run("row batch", func(t *testing.T) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		serveOnce(t, l, func(conn net.Conn) {
			var cols wire.Builder
			cols.U32(2)
			cols.String("a")
			cols.String("b")
			_ = wire.WriteFrame(conn, wire.TColumns, cols.Bytes())
			var batch wire.Builder
			batch.U32(0xFFFF_FFFF) // declared rows
			batch.U8(0)            // one byte of actual payload
			_ = wire.WriteFrame(conn, wire.TRowBatch, batch.Bytes())
		})
		c, err := client.Dial(l.Addr().String(), client.Config{MaxConns: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rows, err := c.Query(context.Background(), "SELECT 1")
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		if rows.Next() {
			t.Fatal("Next produced a row from a malformed batch")
		}
		if err := rows.Err(); err == nil || !strings.Contains(err.Error(), "malformed row batch") {
			t.Fatalf("err = %v, want malformed row batch", err)
		}
	})

	t.Run("columns", func(t *testing.T) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		serveOnce(t, l, func(conn net.Conn) {
			var cols wire.Builder
			cols.U32(0xFFFF_FFFF)
			_ = wire.WriteFrame(conn, wire.TColumns, cols.Bytes())
		})
		c, err := client.Dial(l.Addr().String(), client.Config{MaxConns: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Query(context.Background(), "SELECT 1"); err == nil || !strings.Contains(err.Error(), "malformed Columns") {
			t.Fatalf("err = %v, want malformed Columns frame", err)
		}
	})
}
