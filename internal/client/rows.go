package client

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"bufferdb/internal/wire"
)

// drainTimeout bounds how long Close waits for the server's terminal frame
// after sending a Cancel before declaring the connection unusable.
const drainTimeout = 5 * time.Second

// Rows is a streaming result cursor over a pooled connection:
//
//	rows, err := c.Query(ctx, sql)
//	defer rows.Close()
//	for rows.Next() {
//	    use(rows.Row())
//	}
//	if err := rows.Err(); err != nil { ... }
//
// The cursor owns its connection until the stream terminates (Done, a
// server error, or Close), then returns it to the pool. Not safe for
// concurrent use. Canceling the query's context mid-stream sends a Cancel
// frame; the server frees the query's admission slot and tracked memory
// and terminates the stream.
type Rows struct {
	c   *Client
	cn  *conn
	ctx context.Context

	cols  []string
	batch [][]any
	next  int
	cur   []any

	total    uint64
	err      error
	finished bool // terminal frame consumed, conn released
	closed   bool

	watchStop chan struct{}
	watchDone chan struct{}
}

// watchCancel propagates context cancellation as a Cancel frame while the
// stream is live.
func (r *Rows) watchCancel() {
	defer close(r.watchDone)
	select {
	case <-r.ctx.Done():
		_ = r.cn.write(wire.TCancel, nil)
	case <-r.watchStop:
	}
}

// stopWatch tears the cancel watcher down exactly once.
func (r *Rows) stopWatch() {
	select {
	case <-r.watchStop:
	default:
		close(r.watchStop)
	}
	<-r.watchDone
}

// Columns names the result attributes. The slice is shared; treat it as
// read-only.
func (r *Rows) Columns() []string { return r.cols }

// Row returns the current row's native Go values (int64, float64, string,
// bool, time.Time, nil). The slice is reused by Next; copy it to retain.
func (r *Rows) Row() []any { return r.cur }

// Err reports the error that terminated iteration, if any.
func (r *Rows) Err() error { return r.err }

// Scan copies the current row into dest, one pointer per column, mirroring
// the local bufferdb.Rows.Scan contract so remote and local cursors are
// drop-in interchangeable. Supported destinations: *int64, *float64,
// *string, *bool, *time.Time, and *any (which receives the native decoded
// value, including nil for SQL NULL). The typed pointers reject NULL, and
// errors name the column by 0-based index and name.
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		if r.closed {
			return fmt.Errorf("client: Scan: rows are closed")
		}
		return fmt.Errorf("client: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("client: Scan got %d destinations for %d columns", len(dest), len(r.cur))
	}
	for i, d := range dest {
		if err := scanValue(d, r.cur[i], i, r.cols[i]); err != nil {
			return err
		}
	}
	return nil
}

// ScanValue assigns one decoded native value to one destination pointer.
// Exported so the dist coordinator's cursor applies the exact conversion
// and error contract of the direct client cursor.
func ScanValue(dest any, v any, idx int, col string) error {
	return scanValue(dest, v, idx, col)
}

// scanValue assigns one decoded wire value to one destination pointer.
func scanValue(dest any, v any, idx int, col string) error {
	if p, ok := dest.(*any); ok {
		*p = v
		return nil
	}
	if v == nil {
		return fmt.Errorf("client: Scan: column %d (%s) is NULL; use *any to receive NULLs", idx, col)
	}
	switch p := dest.(type) {
	case *int64:
		x, ok := v.(int64)
		if !ok {
			return scanMismatch(idx, col, v, "int64")
		}
		*p = x
	case *float64:
		switch x := v.(type) {
		case float64:
			*p = x
		case int64:
			*p = float64(x)
		default:
			return scanMismatch(idx, col, v, "float64")
		}
	case *string:
		switch x := v.(type) {
		case string:
			*p = x
		case int64:
			*p = strconv.FormatInt(x, 10)
		case float64:
			*p = strconv.FormatFloat(x, 'f', -1, 64)
		case bool:
			*p = strconv.FormatBool(x)
		case time.Time:
			// Dates cross the wire as midnight-UTC instants; render them the
			// way the local engine renders TypeDate.
			*p = x.UTC().Format("2006-01-02")
		default:
			return scanMismatch(idx, col, v, "string")
		}
	case *bool:
		x, ok := v.(bool)
		if !ok {
			return scanMismatch(idx, col, v, "bool")
		}
		*p = x
	case *time.Time:
		x, ok := v.(time.Time)
		if !ok {
			return scanMismatch(idx, col, v, "time.Time")
		}
		*p = x
	default:
		return fmt.Errorf("client: Scan: unsupported destination type %T for column %d (%s)", dest, idx, col)
	}
	return nil
}

func scanMismatch(idx int, col string, v any, want string) error {
	return fmt.Errorf("client: Scan: column %d (%s) has type %T, destination wants %s", idx, col, v, want)
}

// Total returns the server-reported row count after a complete drain.
func (r *Rows) Total() uint64 { return r.total }

// Next advances the cursor. It returns false at end of stream, on error,
// or after Close; consult Err to tell completion from failure.
func (r *Rows) Next() bool {
	if r.closed || r.finished || r.err != nil {
		return false
	}
	for {
		if r.next < len(r.batch) {
			r.cur = r.batch[r.next]
			r.next++
			return true
		}
		ft, p, err := r.cn.read()
		if err != nil {
			r.fail(fmt.Errorf("client: read row stream: %w", err), true)
			return false
		}
		switch ft {
		case wire.TRowBatch:
			if !r.decodeBatch(p) {
				return false
			}
		case wire.TDone:
			rd := wire.NewReader(p)
			r.total = rd.U64()
			r.settle(nil)
			return false
		case wire.TError:
			serr := decodeError(p)
			// If our own context died, report that; the server's Canceled
			// code is just its echo.
			if r.ctx.Err() != nil && serr.Code == wire.CodeCanceled {
				r.settle(fmt.Errorf("client: query canceled: %w", r.ctx.Err()))
			} else {
				r.settle(serr)
			}
			return false
		default:
			r.fail(fmt.Errorf("client: unexpected %s frame in row stream", ft), true)
			return false
		}
	}
}

// decodeBatch unpacks a RowBatch frame into the cursor's buffer. The
// declared row count is bounded against the payload before any per-row
// allocation — every row costs at least one kind-tag byte per column — so
// a malformed frame claiming billions of rows is rejected for the price of
// a division, and the loop stops at the first sticky decode error.
func (r *Rows) decodeBatch(p []byte) bool {
	rd := wire.NewReader(p)
	n := int(rd.U32())
	minRow := len(r.cols)
	if minRow < 1 {
		minRow = 1
	}
	if n > rd.Remaining()/minRow {
		r.fail(fmt.Errorf("client: malformed row batch: %d rows declared in %d payload bytes", n, len(p)), true)
		return false
	}
	r.batch = r.batch[:0]
	r.next = 0
	for i := 0; i < n && rd.Err() == nil; i++ {
		row := make([]any, len(r.cols))
		for j := range row {
			row[j] = rd.Value()
		}
		r.batch = append(r.batch, row)
	}
	if err := rd.Err(); err != nil {
		r.fail(fmt.Errorf("client: malformed row batch: %w", err), true)
		return false
	}
	return true
}

// settle ends the stream cleanly: the terminal frame was consumed, so the
// connection is in a known state and returns to the pool.
func (r *Rows) settle(err error) {
	r.err = err
	r.cur = nil
	r.finished = true
	r.stopWatch()
	r.c.release(r.cn)
}

// fail ends the stream on a transport error; the connection is poisoned.
func (r *Rows) fail(err error, broken bool) {
	r.err = err
	r.cur = nil
	r.finished = true
	r.stopWatch()
	r.cn.broken = broken
	r.c.release(r.cn)
}

// Close releases the cursor. Mid-stream it cancels the query server-side
// and drains to the terminal frame so the connection can be pooled again;
// a drain that stalls past drainTimeout closes the connection instead.
// Close is idempotent and does not disturb Err.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	// Drop the current row so Scan after Close reports closure instead of
	// reading stale data — mirroring the local cursor.
	r.cur = nil
	if r.finished {
		return nil
	}
	r.stopWatch()
	if err := r.cn.write(wire.TCancel, nil); err != nil {
		r.fail2(err)
		return nil
	}
	_ = r.cn.c.SetReadDeadline(time.Now().Add(drainTimeout))
	for {
		ft, _, err := r.cn.read()
		if err != nil {
			r.fail2(err)
			return nil
		}
		if ft == wire.TDone || ft == wire.TError {
			break
		}
	}
	_ = r.cn.c.SetReadDeadline(time.Time{})
	r.finished = true
	r.c.release(r.cn)
	return nil
}

// fail2 is Close's teardown for an unusable connection: no error surfacing
// (the consumer abandoned the stream), just poison and release.
func (r *Rows) fail2(error) {
	r.finished = true
	r.cn.broken = true
	r.c.release(r.cn)
}
