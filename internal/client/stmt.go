package client

import (
	"context"
	"fmt"

	"bufferdb/internal/wire"
)

// Stmt is a client-side prepared statement. Preparation is lazy and
// per-connection: the first execution on each pooled connection sends a
// Prepare frame and remembers the server's statement id; later executions
// on that connection send only Execute. Server-side, sessions preparing
// the same SQL share one plan through the daemon's statement LRU, so the
// statement is planned once per server, not once per connection.
//
// A Stmt is safe for concurrent use.
type Stmt struct {
	c   *Client
	sql string
	o   wire.QueryOpts
	key string
}

// Prepare builds a prepared-statement handle. No network traffic happens
// until the first Query; a statement that cannot be planned surfaces its
// error there.
func (c *Client) Prepare(sql string, opts ...Option) *Stmt {
	o := BuildOpts(opts...)
	return &Stmt{c: c, sql: sql, o: o, key: o.CacheKey(sql)}
}

// Text returns the statement's SQL.
func (s *Stmt) Text() string { return s.sql }

// Query executes the prepared statement and returns a streaming cursor,
// with the same busy-retry behavior as Client.Query.
func (s *Stmt) Query(ctx context.Context) (*Rows, error) {
	return s.c.withBusyRetry(ctx, func() (*Rows, error) {
		cn, err := s.c.acquire(ctx)
		if err != nil {
			return nil, err
		}
		id, ok := cn.stmts[s.key]
		if !ok {
			id, err = s.prepareOn(cn)
			if err != nil {
				// Prepare failures leave the connection in a clean state
				// unless the transport itself failed (prepareOn marks it).
				s.c.release(cn)
				return nil, err
			}
			cn.stmts[s.key] = id
		}
		var b wire.Builder
		b.U64(id)
		return s.c.startStream(ctx, cn, wire.TExecute, b.Bytes())
	})
}

// QueryAll executes the statement and materializes the whole result.
func (s *Stmt) QueryAll(ctx context.Context) (*Result, error) {
	rows, err := s.Query(ctx)
	if err != nil {
		return nil, err
	}
	return collect(rows)
}

// prepareOn sends Prepare on cn and returns the server's statement id.
func (s *Stmt) prepareOn(cn *conn) (uint64, error) {
	var b wire.Builder
	b.Opts(s.o)
	b.String(s.sql)
	if err := cn.write(wire.TPrepare, b.Bytes()); err != nil {
		cn.broken = true
		return 0, fmt.Errorf("client: send Prepare: %w", err)
	}
	ft, p, err := cn.read()
	if err != nil {
		cn.broken = true
		return 0, fmt.Errorf("client: read Prepare response: %w", err)
	}
	switch ft {
	case wire.TPrepared:
		r := wire.NewReader(p)
		id := r.U64()
		if err := r.Err(); err != nil {
			cn.broken = true
			return 0, err
		}
		return id, nil
	case wire.TError:
		return 0, decodeError(p)
	default:
		cn.broken = true
		return 0, fmt.Errorf("client: unexpected %s frame as Prepare response", ft)
	}
}

// Close forgets the statement on every idle pooled connection. The idle
// conns are taken out of the pool while their stmts maps are touched and
// CloseStmt frames sent — a conn is only ever mutated by its owner, so a
// concurrent acquire can never share one with an in-flight query — then
// returned. Statements on checked-out connections are forgotten
// server-side when those sessions end; the handle itself needs no
// teardown.
func (s *Stmt) Close() error {
	s.c.mu.Lock()
	idle := s.c.idle
	s.c.idle = nil
	s.c.mu.Unlock()
	for _, cn := range idle {
		if id, ok := cn.stmts[s.key]; ok {
			delete(cn.stmts, s.key)
			var b wire.Builder
			b.U64(id)
			if err := cn.write(wire.TCloseStmt, b.Bytes()); err != nil {
				cn.broken = true
			}
		}
		s.c.mu.Lock()
		if cn.broken || s.c.closed {
			s.c.mu.Unlock()
			cn.close()
		} else {
			s.c.idle = append(s.c.idle, cn)
			s.c.mu.Unlock()
		}
	}
	return nil
}
