// Package client is the Go client for bufferdbd: a connection pool over
// the internal/wire protocol with streaming results, per-query context
// cancellation propagated as Cancel frames, prepared statements, and
// retry-with-backoff when admission control sheds a query.
//
// Server-side sentinel errors cross the wire as stable codes and surface
// here wrapping the same sentinels the embedded engine returns —
// errors.Is(err, bufferdb.ErrServerBusy) works identically against a
// remote daemon and an in-process DB.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bufferdb"
	"bufferdb/internal/wire"
)

// Config tunes a Client. The zero value is usable.
type Config struct {
	// MaxConns caps the pooled connections (and therefore the queries this
	// client runs concurrently). 0 = 4.
	MaxConns int
	// DialTimeout bounds each TCP dial + handshake. 0 = 5s.
	DialTimeout time.Duration
	// BusyRetries is how many times a query shed with ErrServerBusy is
	// retried before the error surfaces. 0 = 3; negative disables retry.
	BusyRetries int
	// RetryBackoff is the initial backoff before the first busy retry; it
	// doubles per attempt up to MaxBackoff. 0 = 10ms.
	RetryBackoff time.Duration
	// MaxBackoff caps the doubling retry backoff so a generous retry count
	// cannot grow the sleep without bound. 0 = 2s; negative disables the
	// cap (legacy unbounded doubling).
	MaxBackoff time.Duration
	// MaxRetries is an absolute ceiling on retry attempts per query,
	// whatever BusyRetries asks for, bounding the worst-case time a caller
	// can spend inside the retry loop. 0 = 8; negative disables retries
	// entirely.
	MaxRetries int
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.BusyRetries == 0 {
		c.BusyRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	return c
}

// ErrClosed is returned for operations on a closed Client.
var ErrClosed = errors.New("client: closed")

// ServerError is a terminal error frame from the daemon. Its Unwrap chain
// carries the engine sentinel matching the wire code, so errors.Is against
// bufferdb.ErrServerBusy, ErrDeadlineExceeded, ErrMemoryBudgetExceeded,
// ErrQueryPanic and context.Canceled behaves as it does in-process.
type ServerError struct {
	Code wire.Code
	Msg  string
}

// Error renders the code and the server's message.
func (e *ServerError) Error() string {
	return fmt.Sprintf("client: server error (%s): %s", e.Code, e.Msg)
}

// Unwrap maps the stable code back to engine sentinels.
func (e *ServerError) Unwrap() []error {
	switch e.Code {
	case wire.CodeBusy:
		return []error{bufferdb.ErrServerBusy}
	case wire.CodeDeadline:
		return []error{bufferdb.ErrDeadlineExceeded, context.DeadlineExceeded}
	case wire.CodeOOM:
		return []error{bufferdb.ErrMemoryBudgetExceeded}
	case wire.CodePanic:
		return []error{bufferdb.ErrQueryPanic}
	case wire.CodeCanceled:
		return []error{context.Canceled}
	case wire.CodeUnavailable:
		return []error{bufferdb.ErrShardUnavailable}
	}
	return nil
}

// Option tunes one statement.
type Option func(*wire.QueryOpts)

// WithEngine selects the execution engine by name — "volcano", "vec" or
// "push". The daemon validates the name against bufferdb.ParseEngine's
// canonical set and rejects unknown names at the protocol boundary.
func WithEngine(name string) Option {
	return func(o *wire.QueryOpts) { o.Engine = name }
}

// WithParallelism overrides the scan fan-out server-side.
func WithParallelism(workers int) Option {
	return func(o *wire.QueryOpts) { o.Parallelism = int32(workers) }
}

// WithTimeout bounds the query's wall clock server-side; expiry surfaces
// an error wrapping bufferdb.ErrDeadlineExceeded.
func WithTimeout(d time.Duration) Option {
	return func(o *wire.QueryOpts) { o.TimeoutMS = d.Milliseconds() }
}

// WithoutRefinement runs the conventional (unbuffered) plan.
func WithoutRefinement() Option {
	return func(o *wire.QueryOpts) { o.DisableRefinement = true }
}

// WithoutResultCache opts this statement out of the server's result-reuse
// cache.
func WithoutResultCache() Option {
	return func(o *wire.QueryOpts) { o.NoResultCache = true }
}

// WithMemoryBudget caps the query's tracked allocations server-side at n
// bytes; exceeding it surfaces an error wrapping
// bufferdb.ErrMemoryBudgetExceeded.
func WithMemoryBudget(n int64) Option {
	return func(o *wire.QueryOpts) { o.MemoryBudget = n }
}

// WithAdmissionWait overrides how long the query may queue for an execution
// slot server-side before being shed with bufferdb.ErrServerBusy.
func WithAdmissionWait(d time.Duration) Option {
	return func(o *wire.QueryOpts) { o.AdmissionWaitMS = d.Milliseconds() }
}

// WithForceJoin forces the join algorithm server-side: "hash", "nestloop",
// "merge". The daemon validates the name at the protocol boundary and
// rejects unknown methods with an error wrapping bufferdb.ErrBadJoinMethod.
func WithForceJoin(method string) Option {
	return func(o *wire.QueryOpts) { o.ForceJoin = method }
}

// WithBufferSize overrides the capacity of buffer operators the refinement
// pass inserts server-side.
func WithBufferSize(n int) Option {
	return func(o *wire.QueryOpts) { o.BufferSize = int32(n) }
}

// WithSlice addresses hash slice idx on a daemon hosting several replica
// slices; without it a query runs against the node's default (primary)
// slice. The daemon rejects slices it does not host.
func WithSlice(idx int) Option {
	return func(o *wire.QueryOpts) { o.Slice = int32(idx) + 1 }
}

// WithQueryOpts replaces the whole option set with an already-built
// wire.QueryOpts. It exists for forwarding tiers — the distributed
// coordinator re-ships the exact options its own client sent — and composes
// left to right like every other Option, so later options still override
// individual fields.
func WithQueryOpts(o wire.QueryOpts) Option {
	return func(dst *wire.QueryOpts) { *dst = o }
}

// BuildOpts folds options into the wire form they are sent as. Forwarding
// tiers use it to inspect or re-ship one statement's option set.
func BuildOpts(opts ...Option) wire.QueryOpts {
	var o wire.QueryOpts
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Client is a pooled connection to one bufferdbd. Safe for concurrent use;
// each in-flight query occupies one pooled connection.
type Client struct {
	addr string
	cfg  Config

	// sem bounds total live connections: acquire a token, then reuse an
	// idle connection or dial.
	sem chan struct{}

	mu     sync.Mutex
	idle   []*conn
	closed bool

	// ServerInfo is the daemon's HelloOK identification string, from the
	// first successful handshake.
	serverInfo string
}

// Dial connects to a bufferdbd at addr, performing one handshake eagerly
// so misconfiguration fails fast.
func Dial(addr string, cfg Config) (*Client, error) {
	c := &Client{addr: addr, cfg: cfg.withDefaults()}
	c.sem = make(chan struct{}, c.cfg.MaxConns)
	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.idle = append(c.idle, cn)
	c.mu.Unlock()
	return c, nil
}

// ServerInfo returns the daemon's handshake identification string.
func (c *Client) ServerInfo() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serverInfo
}

// Close closes the client and its idle connections. Connections checked
// out by in-flight queries close as those queries finish.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, cn := range idle {
		cn.close()
	}
	return nil
}

// dial opens and handshakes one connection.
func (c *Client) dial() (*conn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	cn := &conn{c: nc, br: bufio.NewReaderSize(nc, 64<<10), bw: bufio.NewWriterSize(nc, 32<<10), stmts: map[string]uint64{}}
	_ = nc.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	info, err := cn.handshake()
	_ = nc.SetDeadline(time.Time{})
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake with %s: %w", c.addr, err)
	}
	c.mu.Lock()
	c.serverInfo = info
	c.mu.Unlock()
	return cn, nil
}

// acquire checks a connection out of the pool, dialing if no idle one
// exists.
func (c *Client) acquire(ctx context.Context) (*conn, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("client: waiting for a connection: %w", ctx.Err())
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.sem
		return nil, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		cn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()
	cn, err := c.dial()
	if err != nil {
		<-c.sem
		return nil, err
	}
	return cn, nil
}

// release returns a connection to the pool; a broken connection (or a
// closed client) closes it instead.
func (c *Client) release(cn *conn) {
	c.mu.Lock()
	if cn.broken || c.closed {
		c.mu.Unlock()
		cn.close()
	} else {
		c.idle = append(c.idle, cn)
		c.mu.Unlock()
	}
	<-c.sem
}

// Query sends a statement and returns a streaming cursor. The context
// cancels the query server-side (a Cancel frame) as well as client-side.
// Queries shed by admission control retry with exponential backoff up to
// Config.BusyRetries times before the busy error surfaces.
func (c *Client) Query(ctx context.Context, sql string, opts ...Option) (*Rows, error) {
	o := BuildOpts(opts...)
	return c.withBusyRetry(ctx, func() (*Rows, error) {
		cn, err := c.acquire(ctx)
		if err != nil {
			return nil, err
		}
		var b wire.Builder
		b.Opts(o)
		b.String(sql)
		return c.startStream(ctx, cn, wire.TQuery, b.Bytes())
	})
}

// QueryAll runs a statement and materializes the whole result.
func (c *Client) QueryAll(ctx context.Context, sql string, opts ...Option) (*Result, error) {
	rows, err := c.Query(ctx, sql, opts...)
	if err != nil {
		return nil, err
	}
	return collect(rows)
}

// Result is a fully materialized result set.
type Result struct {
	Columns []string
	Rows    [][]any
}

func collect(rows *Rows) (*Result, error) {
	defer rows.Close()
	res := &Result{Columns: rows.Columns()}
	for rows.Next() {
		row := rows.Row()
		res.Rows = append(res.Rows, append([]any(nil), row...))
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return res, rows.Close()
}

// withBusyRetry runs attempt, retrying (with doubling backoff, capped at
// MaxBackoff) while the error wraps ErrServerBusy and the retry budget —
// the smaller of BusyRetries and MaxRetries — lasts.
func (c *Client) withBusyRetry(ctx context.Context, attempt func() (*Rows, error)) (*Rows, error) {
	budget := c.cfg.BusyRetries
	if c.cfg.MaxRetries < budget {
		budget = c.cfg.MaxRetries
	}
	backoff := c.cfg.RetryBackoff
	for try := 0; ; try++ {
		rows, err := attempt()
		if err == nil || try >= budget || !errors.Is(err, bufferdb.ErrServerBusy) {
			return rows, err
		}
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("client: canceled during busy backoff: %w", ctx.Err())
		}
		if backoff *= 2; c.cfg.MaxBackoff > 0 && backoff > c.cfg.MaxBackoff {
			backoff = c.cfg.MaxBackoff
		}
	}
}

// startStream writes a request frame on cn and consumes the response head:
// either an immediate error (connection back to the pool, typed error out)
// or a Columns frame opening a row stream. The head read honors ctx — a
// server that accepts the request but never answers (wedged mid-execution)
// releases the connection when the caller gives up instead of pinning it
// and its pool slot indefinitely.
func (c *Client) startStream(ctx context.Context, cn *conn, t wire.Type, payload []byte) (*Rows, error) {
	if err := cn.write(t, payload); err != nil {
		cn.broken = true
		c.release(cn)
		return nil, fmt.Errorf("client: send %s: %w", t, err)
	}
	ft, p, err := cn.readCtx(ctx)
	if err != nil {
		cn.broken = true
		c.release(cn)
		if ctx.Err() != nil {
			return nil, fmt.Errorf("client: awaiting response head: %w", ctx.Err())
		}
		return nil, fmt.Errorf("client: read response: %w", err)
	}
	switch ft {
	case wire.TError:
		serr := decodeError(p)
		c.release(cn)
		return nil, serr
	case wire.TColumns:
		r := wire.NewReader(p)
		n := int(r.U32())
		// Each column name costs at least its 4-byte length prefix; bound
		// the declared count before allocating for it.
		if n > r.Remaining()/4 {
			cn.broken = true
			c.release(cn)
			return nil, fmt.Errorf("client: malformed Columns frame: %d columns declared in %d payload bytes", n, len(p))
		}
		cols := make([]string, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			cols = append(cols, r.String())
		}
		if err := r.Err(); err != nil {
			cn.broken = true
			c.release(cn)
			return nil, err
		}
		rows := &Rows{c: c, cn: cn, ctx: ctx, cols: cols, watchStop: make(chan struct{}), watchDone: make(chan struct{})}
		go rows.watchCancel()
		return rows, nil
	default:
		cn.broken = true
		c.release(cn)
		return nil, fmt.Errorf("client: unexpected %s frame as response head", ft)
	}
}

// decodeError parses a TError payload.
func decodeError(p []byte) *ServerError {
	r := wire.NewReader(p)
	code := wire.Code(r.U16())
	msg := r.String()
	if err := r.Err(); err != nil {
		return &ServerError{Code: wire.CodeProtocol, Msg: "malformed error frame"}
	}
	return &ServerError{Code: code, Msg: msg}
}

// IsTransport classifies an error from this package for failover: true
// means the peer may be dead or unreachable — a dial failure, a broken or
// truncated stream, a malformed frame — and retrying elsewhere is
// warranted. A *ServerError proves the server is alive and answering, so
// it is not a transport failure, with one deliberate exception:
// CodeShutdown means the node is draining and the work should move to a
// replica. The caller's own context expiry and a closed client are local
// conditions, never transport failures. ServerError is tested first
// because CodeCanceled/CodeDeadline unwrap to the context sentinels.
func IsTransport(err error) bool {
	if err == nil {
		return false
	}
	var se *ServerError
	if errors.As(err, &se) {
		return se.Code == wire.CodeShutdown
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrClosed) {
		return false
	}
	return true
}

// TableInfo is one catalog table, as reported by the daemon.
type TableInfo struct {
	Name string
	Rows uint64
}

// Tables lists the daemon's default catalog.
func (c *Client) Tables(ctx context.Context) ([]TableInfo, error) {
	return c.tables(ctx, nil)
}

// TablesOf lists the catalog of one hosted slice on a replicated daemon.
func (c *Client) TablesOf(ctx context.Context, slice int) ([]TableInfo, error) {
	var b wire.Builder
	b.U32(uint32(slice + 1))
	return c.tables(ctx, b.Bytes())
}

func (c *Client) tables(ctx context.Context, payload []byte) ([]TableInfo, error) {
	cn, err := c.acquire(ctx)
	if err != nil {
		return nil, err
	}
	if err := cn.write(wire.TTables, payload); err != nil {
		cn.broken = true
		c.release(cn)
		return nil, err
	}
	ft, p, err := cn.read()
	if err != nil || ft != wire.TTablesOK {
		cn.broken = true
		c.release(cn)
		if err == nil {
			if ft == wire.TError {
				return nil, decodeError(p)
			}
			err = fmt.Errorf("client: unexpected %s frame", ft)
		}
		return nil, err
	}
	r := wire.NewReader(p)
	n := int(r.U32())
	// Each entry costs at least a 4-byte name prefix plus an 8-byte count.
	if n > r.Remaining()/12 {
		c.release(cn)
		return nil, fmt.Errorf("client: malformed TablesOK frame: %d tables declared in %d payload bytes", n, len(p))
	}
	out := make([]TableInfo, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, TableInfo{Name: r.String(), Rows: r.U64()})
	}
	c.release(cn)
	return out, r.Err()
}

// conn is one pooled protocol connection. At most one request/response
// exchange is in flight on a conn at a time; the write mutex exists only
// for the Cancel frame, which a watcher goroutine sends while the main
// flow is reading the stream.
type conn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	wmu sync.Mutex

	// stmts maps plan cache keys to this connection's server-side
	// statement ids.
	stmts map[string]uint64

	broken bool
}

func (cn *conn) close() { cn.c.Close() }

func (cn *conn) handshake() (info string, err error) {
	var b wire.Builder
	b.U32(wire.Magic)
	b.U8(wire.Version)
	if err := cn.write(wire.THello, b.Bytes()); err != nil {
		return "", err
	}
	ft, p, err := cn.read()
	if err != nil {
		return "", err
	}
	switch ft {
	case wire.THelloOK:
		r := wire.NewReader(p)
		_ = r.U8() // version
		info = r.String()
		return info, r.Err()
	case wire.TError:
		return "", decodeError(p)
	default:
		return "", fmt.Errorf("unexpected %s frame", ft)
	}
}

func (cn *conn) write(t wire.Type, payload []byte) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if err := wire.WriteFrame(cn.bw, t, payload); err != nil {
		return err
	}
	return cn.bw.Flush()
}

func (cn *conn) read() (wire.Type, []byte, error) {
	return wire.ReadFrame(cn.br)
}

// readCtx reads one frame, aborting the blocked read if ctx is canceled
// first: a watcher goroutine forces the connection's read deadline into the
// past, which fails the pending Read with a timeout. The deadline is
// cleared after the watcher is joined, so a read that won the race leaves
// the connection clean; an aborted read leaves it mid-frame and the caller
// must mark it broken.
func (cn *conn) readCtx(ctx context.Context) (wire.Type, []byte, error) {
	if ctx.Done() == nil {
		return cn.read()
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			_ = cn.c.SetReadDeadline(time.Unix(1, 0))
		case <-stop:
		}
	}()
	ft, p, err := cn.read()
	close(stop)
	<-done
	_ = cn.c.SetReadDeadline(time.Time{})
	return ft, p, err
}
