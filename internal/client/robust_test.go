package client_test

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"bufferdb"
	"bufferdb/internal/client"
	"bufferdb/internal/wire"
)

// fakeDaemon accepts connections, answers each handshake, and hands the
// connection (with its zero-based accept index) to handle on its own
// goroutine. It lets tests play pathological servers — persistently busy,
// wedged mid-request — without a real daemon.
func fakeDaemon(t *testing.T, handle func(i int, c net.Conn)) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for i := 0; ; i++ {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(i int, conn net.Conn) {
				defer conn.Close()
				if ft, _, err := wire.ReadFrame(conn); err != nil || ft != wire.THello {
					return
				}
				var hello wire.Builder
				hello.U8(wire.Version)
				hello.String("fake")
				if wire.WriteFrame(conn, wire.THelloOK, hello.Bytes()) != nil {
					return
				}
				handle(i, conn)
			}(i, conn)
		}
	}()
	return l.Addr().String()
}

// writeErrorFrame replies one TError frame with the given code.
func writeErrorFrame(c net.Conn, code wire.Code, msg string) error {
	var b wire.Builder
	b.U16(uint16(code))
	b.String(msg)
	return wire.WriteFrame(c, wire.TError, b.Bytes())
}

// TestBusyRetryBounded pins the retry loop's worst case: against a server
// that sheds every attempt, MaxRetries caps the attempt count however
// generous BusyRetries is, and MaxBackoff caps each sleep, so the query
// fails in bounded time instead of backing off without limit.
func TestBusyRetryBounded(t *testing.T) {
	var attempts atomic.Int64
	addr := fakeDaemon(t, func(_ int, c net.Conn) {
		for {
			ft, _, err := wire.ReadFrame(c)
			if err != nil || ft != wire.TQuery {
				return
			}
			attempts.Add(1)
			if writeErrorFrame(c, wire.CodeBusy, "shed") != nil {
				return
			}
		}
	})

	cl, err := client.Dial(addr, client.Config{
		BusyRetries:  1_000_000, // absurdly generous; MaxRetries must win
		MaxRetries:   3,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   4 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	start := time.Now()
	_, err = cl.Query(context.Background(), `SELECT 1`)
	elapsed := time.Since(start)
	if !errors.Is(err, bufferdb.ErrServerBusy) {
		t.Fatalf("persistently busy server: %v, want ErrServerBusy", err)
	}
	if got := attempts.Load(); got != 4 { // initial try + MaxRetries
		t.Fatalf("attempts = %d, want 4", got)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("bounded retry took %v", elapsed)
	}
}

// TestBusyRetryDisabled checks a negative MaxRetries turns retries off
// entirely: one attempt, immediate error.
func TestBusyRetryDisabled(t *testing.T) {
	var attempts atomic.Int64
	addr := fakeDaemon(t, func(_ int, c net.Conn) {
		for {
			ft, _, err := wire.ReadFrame(c)
			if err != nil || ft != wire.TQuery {
				return
			}
			attempts.Add(1)
			if writeErrorFrame(c, wire.CodeBusy, "shed") != nil {
				return
			}
		}
	})
	cl, err := client.Dial(addr, client.Config{MaxRetries: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Query(context.Background(), `SELECT 1`); !errors.Is(err, bufferdb.ErrServerBusy) {
		t.Fatalf("busy with retries disabled: %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

// TestWedgedHeadReleasesConn is the regression test for the pinned-pool
// bug: a server that accepts a query and never answers used to hold the
// pooled connection (and its pool slot) until the process exited, because
// the response-head read ignored the caller's context. With MaxConns=1 the
// whole client wedged. Now the abandoned read must release the slot so the
// next query can dial fresh.
func TestWedgedHeadReleasesConn(t *testing.T) {
	addr := fakeDaemon(t, func(i int, c net.Conn) {
		if i == 0 {
			// First connection (the one Dial pools): swallow every request,
			// answer nothing — a server wedged mid-execution.
			for {
				if _, _, err := wire.ReadFrame(c); err != nil {
					return
				}
			}
		}
		// Replacement connections behave: empty result for every query.
		for {
			ft, _, err := wire.ReadFrame(c)
			if err != nil {
				return
			}
			if ft != wire.TQuery {
				continue
			}
			var cols wire.Builder
			cols.U32(0)
			if wire.WriteFrame(c, wire.TColumns, cols.Bytes()) != nil {
				return
			}
			var done wire.Builder
			done.U64(0)
			if wire.WriteFrame(c, wire.TDone, done.Bytes()) != nil {
				return
			}
		}
	})

	cl, err := client.Dial(addr, client.Config{MaxConns: 1, MaxRetries: -1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := cl.Query(ctx, `SELECT 1`); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wedged-head query: %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("giving up on a wedged head took %v", elapsed)
	}
	if client.IsTransport(context.DeadlineExceeded) {
		t.Fatal("local deadline expiry misclassified as a transport failure")
	}

	// The single pool slot must be free again: this query has to dial a
	// fresh connection and complete. Before the fix it blocked forever on
	// the slot the wedged connection still held.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	rows, err := cl.Query(ctx2, `SELECT 1`)
	if err != nil {
		t.Fatalf("query after wedged head: %v", err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows after wedged head: %v", err)
	}
	rows.Close()
}

// TestTransportClassification pins IsTransport's contract, which failover
// and the circuit breakers depend on: server-typed errors prove liveness
// (except an explicit shutdown), local give-ups are not node failures, and
// everything else is.
func TestTransportClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"busy", &client.ServerError{Code: wire.CodeBusy}, false},
		{"query", &client.ServerError{Code: wire.CodeQuery}, false},
		{"shutdown", &client.ServerError{Code: wire.CodeShutdown}, true},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"closed", client.ErrClosed, false},
		{"io", errors.New("read tcp: connection reset by peer"), true},
	}
	for _, tc := range cases {
		if got := client.IsTransport(tc.err); got != tc.want {
			t.Errorf("IsTransport(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
