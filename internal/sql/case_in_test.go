package sql

import (
	"math"
	"strings"
	"testing"

	"bufferdb/internal/storage"
)

func TestCaseEndToEnd(t *testing.T) {
	rows := runSQL(t, `
		SELECT SUM(CASE WHEN l_quantity < 25 THEN 1 ELSE 0 END) AS small,
		       SUM(CASE WHEN l_quantity < 25 THEN 0 ELSE 1 END) AS big
		FROM lineitem`, Options{})
	li, _ := testDB.Table("lineitem")
	qty, _ := li.Schema().ColumnIndex("", "l_quantity")
	var small, big int64
	for _, r := range li.Rows() {
		if r[qty].F < 25 {
			small++
		} else {
			big++
		}
	}
	if rows[0][0].I != small || rows[0][1].I != big {
		t.Errorf("CASE counts = %v, want %d/%d", rows[0], small, big)
	}
}

func TestInEndToEnd(t *testing.T) {
	rows := runSQL(t, `
		SELECT COUNT(*) FROM lineitem WHERE l_shipmode IN ('MAIL', 'SHIP')`, Options{})
	li, _ := testDB.Table("lineitem")
	mode, _ := li.Schema().ColumnIndex("", "l_shipmode")
	want := int64(0)
	for _, r := range li.Rows() {
		if r[mode].S == "MAIL" || r[mode].S == "SHIP" {
			want++
		}
	}
	if rows[0][0].I != want {
		t.Errorf("IN count = %d, want %d", rows[0][0].I, want)
	}
	notIn := runSQL(t, `
		SELECT COUNT(*) FROM lineitem WHERE l_shipmode NOT IN ('MAIL', 'SHIP')`, Options{})
	if notIn[0][0].I != int64(li.NumRows())-want {
		t.Errorf("NOT IN count = %d, want %d", notIn[0][0].I, int64(li.NumRows())-want)
	}
}

func TestCaseParserErrors(t *testing.T) {
	bad := []string{
		"SELECT CASE END FROM t",
		"SELECT CASE WHEN a THEN 1 FROM t", // missing END
		"SELECT CASE WHEN a 1 END FROM t",  // missing THEN
		"SELECT a FROM t WHERE b IN ()",
		"SELECT a FROM t WHERE b IN (1, 2",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) accepted", q)
		}
	}
}

// TestTPCHQ12Reference verifies the full Q12 against brute force.
func TestTPCHQ12Reference(t *testing.T) {
	const q12 = `
		SELECT l_shipmode,
		       SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
		                THEN 1 ELSE 0 END) AS high_line_count,
		       SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
		                THEN 0 ELSE 1 END) AS low_line_count
		FROM orders, lineitem
		WHERE o_orderkey = l_orderkey
		  AND l_shipmode IN ('MAIL', 'SHIP')
		  AND l_commitdate < l_receiptdate
		  AND l_shipdate < l_commitdate
		  AND l_receiptdate >= DATE '1994-01-01'
		  AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
		GROUP BY l_shipmode
		ORDER BY l_shipmode`
	rows := runSQL(t, q12, Options{})

	orders, _ := testDB.Table("orders")
	li, _ := testDB.Table("lineitem")
	sch := li.Schema()
	mode, _ := sch.ColumnIndex("", "l_shipmode")
	ship, _ := sch.ColumnIndex("", "l_shipdate")
	commit, _ := sch.ColumnIndex("", "l_commitdate")
	receipt, _ := sch.ColumnIndex("", "l_receiptdate")
	lo := storage.DateFromYMD(1994, 1, 1).I
	hi := lo + 365
	type counts struct{ high, low int64 }
	want := map[string]*counts{}
	for _, r := range li.Rows() {
		m := r[mode].S
		if m != "MAIL" && m != "SHIP" {
			continue
		}
		if !(r[commit].I < r[receipt].I && r[ship].I < r[commit].I) {
			continue
		}
		if r[receipt].I < lo || r[receipt].I >= hi {
			continue
		}
		prio := orders.Row(int(r[0].I) - 1)[5].S
		c := want[m]
		if c == nil {
			c = &counts{}
			want[m] = c
		}
		if prio == "1-URGENT" || prio == "2-HIGH" {
			c.high++
		} else {
			c.low++
		}
	}
	if len(rows) != len(want) {
		t.Fatalf("Q12 groups = %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		c := want[r[0].S]
		if c == nil {
			t.Fatalf("unexpected shipmode %q", r[0].S)
		}
		if r[1].I != c.high || r[2].I != c.low {
			t.Errorf("%s: %d/%d, want %d/%d", r[0].S, r[1].I, r[2].I, c.high, c.low)
		}
	}
}

// TestTPCHQ14Reference verifies the full Q14 promo-revenue percentage.
func TestTPCHQ14Reference(t *testing.T) {
	const q14 = `
		SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%'
		                         THEN l_extendedprice * (1 - l_discount)
		                         ELSE 0 END)
		             / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
		FROM lineitem, part
		WHERE l_partkey = p_partkey
		  AND l_shipdate >= DATE '1995-09-01'
		  AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH`
	rows := runSQL(t, q14, Options{})
	if len(rows) != 1 {
		t.Fatalf("Q14 rows = %d", len(rows))
	}
	li, _ := testDB.Table("lineitem")
	part, _ := testDB.Table("part")
	ship, _ := li.Schema().ColumnIndex("", "l_shipdate")
	ptype, _ := part.Schema().ColumnIndex("", "p_type")
	lo := storage.DateFromYMD(1995, 9, 1).I
	hi := lo + 30
	var promo, total float64
	for _, r := range li.Rows() {
		if r[ship].I < lo || r[ship].I >= hi {
			continue
		}
		rev := r[5].F * (1 - r[6].F)
		total += rev
		if strings.HasPrefix(part.Row(int(r[1].I) - 1)[ptype].S, "PROMO") {
			promo += rev
		}
	}
	want := 100 * promo / total
	if got := rows[0][0].F; math.Abs(got-want) > 1e-9 {
		t.Errorf("promo_revenue = %v, want %v", got, want)
	}
	// Percentage should be a plausible share.
	if rows[0][0].F <= 0 || rows[0][0].F >= 100 {
		t.Errorf("promo share = %v%%", rows[0][0].F)
	}
}
