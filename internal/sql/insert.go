package sql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"bufferdb/internal/storage"
)

// InsertStmt is the parsed form of the supported INSERT subset:
//
//	INSERT INTO table VALUES (lit, …) [, (lit, …)]…
//
// Values are literals only (numbers, strings, DATE '…', TRUE/FALSE, NULL,
// unary minus) — INSERT exists to feed the persistent storage tier, not to
// evaluate expressions, and stays deliberately small.
type InsertStmt struct {
	Table string
	// Rows holds one literal list per VALUES tuple.
	Rows [][]Node
}

// IsInsert reports whether the statement's first token is the INSERT
// keyword, which is how the facade routes between the SELECT pipeline and
// the write path without parsing twice. It skips the same leading trivia
// the lexer does — whitespace and "--" line comments — and requires a token
// boundary after the keyword, so "-- note\nINSERT …" routes to the write
// path while an identifier like "inserted" does not.
func IsInsert(input string) bool {
	i, n := 0, len(input)
	for i < n {
		switch c := input[i]; {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		default:
			rest := input[i:]
			if len(rest) < 6 || !strings.EqualFold(rest[:6], "INSERT") {
				return false
			}
			if len(rest) > 6 {
				if r := rune(rest[6]); unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
					return false
				}
			}
			return true
		}
	}
	return false
}

// ParseInsert parses a single INSERT statement.
func ParseInsert(input string) (*InsertStmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseInsert()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, p.errorf("trailing input after statement")
	}
	return stmt, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Node
		for {
			lit, err := p.parseInsertLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, lit)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return stmt, nil
}

// parseInsertLiteral accepts exactly the literal forms VALUES supports.
func (p *parser) parseInsertLiteral() (Node, error) {
	if p.acceptSymbol("-") {
		inner, err := p.parseInsertLiteral()
		if err != nil {
			return nil, err
		}
		if _, ok := inner.(*NumberLit); !ok {
			return nil, p.errorf("unary minus needs a numeric literal")
		}
		return &UnaryExpr{Op: "-", E: inner}, nil
	}
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		return &NumberLit{Text: t.text, IsInt: !strings.Contains(t.text, ".")}, nil
	case t.kind == tokString:
		p.pos++
		return &StringLit{Val: t.text}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.pos++
		return &NullLit{}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.pos++
		return &BoolLit{Val: true}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.pos++
		return &BoolLit{Val: false}, nil
	case t.kind == tokKeyword && t.text == "DATE":
		p.pos++
		s := p.cur()
		if s.kind != tokString {
			return nil, p.errorf("DATE needs a 'yyyy-mm-dd' literal")
		}
		p.pos++
		return &DateLit{Val: s.text}, nil
	}
	return nil, p.errorf("expected a literal value, found %q", t.text)
}

// AnalyzeInsert resolves an InsertStmt against the catalog: the table must
// exist, every tuple must match the schema arity, and each literal must
// coerce to its column's type (integers widen to DOUBLE, strings parse into
// DATE columns, NULL fits anywhere). It returns the canonical table name
// and the typed rows ready for the storage tier.
func AnalyzeInsert(cat *storage.Catalog, stmt *InsertStmt) (string, []storage.Row, error) {
	t, err := cat.Table(stmt.Table)
	if err != nil {
		return "", nil, err
	}
	schema := t.Schema()
	rows := make([]storage.Row, 0, len(stmt.Rows))
	for ri, lits := range stmt.Rows {
		if len(lits) != len(schema) {
			return "", nil, fmt.Errorf("sql: INSERT INTO %s: tuple %d has %d values, table has %d columns",
				t.Name(), ri+1, len(lits), len(schema))
		}
		row := make(storage.Row, len(lits))
		for ci, lit := range lits {
			v, err := literalValue(lit)
			if err != nil {
				return "", nil, fmt.Errorf("sql: INSERT INTO %s: tuple %d column %s: %w",
					t.Name(), ri+1, schema[ci].Name, err)
			}
			v, err = coerceTo(v, schema[ci].Type)
			if err != nil {
				return "", nil, fmt.Errorf("sql: INSERT INTO %s: tuple %d column %s: %w",
					t.Name(), ri+1, schema[ci].Name, err)
			}
			row[ci] = v
		}
		rows = append(rows, row)
	}
	return t.Name(), rows, nil
}

// literalValue evaluates one VALUES literal to a storage value.
func literalValue(n Node) (storage.Value, error) {
	switch e := n.(type) {
	case *NumberLit:
		if e.IsInt {
			v, err := strconv.ParseInt(e.Text, 10, 64)
			if err != nil {
				return storage.Null, fmt.Errorf("bad integer literal %q", e.Text)
			}
			return storage.NewInt(v), nil
		}
		v, err := strconv.ParseFloat(e.Text, 64)
		if err != nil {
			return storage.Null, fmt.Errorf("bad numeric literal %q", e.Text)
		}
		return storage.NewFloat(v), nil
	case *StringLit:
		return storage.NewString(e.Val), nil
	case *DateLit:
		return storage.ParseDate(e.Val)
	case *NullLit:
		return storage.Null, nil
	case *BoolLit:
		return storage.NewBool(e.Val), nil
	case *UnaryExpr:
		v, err := literalValue(e.E)
		if err != nil {
			return storage.Null, err
		}
		switch v.Kind {
		case storage.TypeInt64:
			return storage.NewInt(-v.I), nil
		case storage.TypeFloat64:
			return storage.NewFloat(-v.F), nil
		}
		return storage.Null, fmt.Errorf("unary minus on non-numeric literal")
	}
	return storage.Null, fmt.Errorf("unsupported VALUES expression")
}

// coerceTo converts v to the column type t where the conversion is lossless
// and conventional; anything else is a type error.
func coerceTo(v storage.Value, t storage.Type) (storage.Value, error) {
	if v.IsNull() || v.Kind == t {
		return v, nil
	}
	switch {
	case t == storage.TypeFloat64 && v.Kind == storage.TypeInt64:
		return storage.NewFloat(float64(v.I)), nil
	case t == storage.TypeDate && v.Kind == storage.TypeString:
		d, err := storage.ParseDate(v.S)
		if err != nil {
			return storage.Null, err
		}
		return d, nil
	}
	return storage.Null, fmt.Errorf("cannot store %v into %v column", v.Kind, t)
}
