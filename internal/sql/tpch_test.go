package sql

import (
	"math"
	"strings"
	"testing"

	"bufferdb/internal/storage"
)

// TPC-H Q5 and Q10 exercise 4–6-way joins with residual predicates; verify
// them against brute-force computation over the generated data.

const q5 = `
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY n_name
ORDER BY revenue DESC`

func TestTPCHQ5Reference(t *testing.T) {
	rows := runSQL(t, q5, Options{})

	// Brute force.
	get := func(name string) *storage.Table {
		tb, err := testDB.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	region, nation := get("region"), get("nation")
	customer, orders := get("customer"), get("orders")
	lineitem, supplier := get("lineitem"), get("supplier")

	asiaRegion := int64(-1)
	for _, r := range region.Rows() {
		if r[1].S == "ASIA" {
			asiaRegion = r[0].I
		}
	}
	nationName := map[int64]string{}
	asiaNation := map[int64]bool{}
	for _, r := range nation.Rows() {
		nationName[r[0].I] = r[1].S
		if r[2].I == asiaRegion {
			asiaNation[r[0].I] = true
		}
	}
	custNation := map[int64]int64{}
	for _, r := range customer.Rows() {
		custNation[r[0].I] = r[3].I
	}
	suppNation := map[int64]int64{}
	for _, r := range supplier.Rows() {
		suppNation[r[0].I] = r[3].I
	}
	lo := storage.DateFromYMD(1994, 1, 1).I
	hi := lo + 365
	orderCust := map[int64]int64{}
	for _, r := range orders.Rows() {
		if r[4].I >= lo && r[4].I < hi {
			orderCust[r[0].I] = r[1].I
		}
	}
	want := map[string]float64{}
	for _, r := range lineitem.Rows() {
		custkey, ok := orderCust[r[0].I]
		if !ok {
			continue
		}
		sn := suppNation[r[2].I]
		if !asiaNation[sn] || custNation[custkey] != sn {
			continue
		}
		want[nationName[sn]] += r[5].F * (1 - r[6].F)
	}

	if len(rows) != len(want) {
		t.Fatalf("Q5 returned %d nations, want %d", len(rows), len(want))
	}
	prev := math.Inf(1)
	for _, row := range rows {
		name, rev := row[0].S, row[1].F
		ref, ok := want[name]
		if !ok {
			t.Fatalf("unexpected nation %q", name)
		}
		if diff := rev - ref; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%s revenue = %v, want %v", name, rev, ref)
		}
		if rev > prev {
			t.Errorf("ORDER BY revenue DESC violated at %s", name)
		}
		prev = rev
	}
}

const q10 = `
SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue, n_name
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, n_name
ORDER BY revenue DESC
LIMIT 20`

func TestTPCHQ10Reference(t *testing.T) {
	rows := runSQL(t, q10, Options{})
	if len(rows) == 0 || len(rows) > 20 {
		t.Fatalf("Q10 returned %d rows", len(rows))
	}
	// Brute-force top revenue.
	get := func(name string) *storage.Table {
		tb, err := testDB.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	orders, lineitem := get("orders"), get("lineitem")
	lo := storage.DateFromYMD(1993, 10, 1).I
	hi := lo + 90
	orderCust := map[int64]int64{}
	for _, r := range orders.Rows() {
		if r[4].I >= lo && r[4].I < hi {
			orderCust[r[0].I] = r[1].I
		}
	}
	revenue := map[int64]float64{}
	for _, r := range lineitem.Rows() {
		cust, ok := orderCust[r[0].I]
		if !ok || r[8].S != "R" {
			continue
		}
		revenue[cust] += r[5].F * (1 - r[6].F)
	}
	var best float64
	for _, v := range revenue {
		if v > best {
			best = v
		}
	}
	if got := rows[0][2].F; math.Abs(got-best) > 1e-6 {
		t.Errorf("top revenue = %v, want %v", got, best)
	}
	// Descending order and name formatting.
	for i := 1; i < len(rows); i++ {
		if rows[i-1][2].F < rows[i][2].F {
			t.Errorf("ORDER BY violated at %d", i)
		}
	}
	if !strings.HasPrefix(rows[0][1].S, "Customer#") {
		t.Errorf("c_name = %q", rows[0][1].S)
	}
}
