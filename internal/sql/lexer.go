// Package sql is the SQL front end: a lexer, a recursive-descent parser and
// an analyzer that turns the supported SELECT subset into physical plans
// (internal/plan). The subset covers the paper's workload: single-table
// aggregation queries (TPC-H Q1/Q6 style), multi-table equi-joins with
// forced join methods (the paper's Query 3 variants), GROUP BY, ORDER BY
// and LIMIT.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

// token is one lexical unit.
type token struct {
	kind tokenKind
	text string // keywords upper-cased; symbols canonical
	pos  int    // byte offset, for error messages
}

// keywords recognized by the lexer. Identifiers matching these (case-
// insensitively) become tokKeyword with upper-case text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "ASC": true, "DESC": true, "LIMIT": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "BETWEEN": true, "LIKE": true,
	"IS": true, "NULL": true, "JOIN": true, "ON": true, "INNER": true,
	"DATE": true, "INTERVAL": true, "DAY": true, "MONTH": true, "YEAR": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"TRUE": true, "FALSE": true, "HAVING": true, "DISTINCT": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"IN": true, "INSERT": true, "INTO": true, "VALUES": true,
}

// lex tokenizes the input. Errors carry byte positions.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++

		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}

		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}

		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			for i < n {
				d := input[i]
				if unicode.IsDigit(rune(d)) {
					i++
					continue
				}
				if d == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				break
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})

		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})

		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				canon := two
				if two == "!=" {
					canon = "<>"
				}
				toks = append(toks, token{kind: tokSymbol, text: canon, pos: start})
				i += 2
			default:
				switch c {
				case '(', ')', ',', '.', ';', '*', '+', '-', '/', '=', '<', '>':
					toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
					i++
				default:
					return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
				}
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, text: "", pos: n})
	return toks, nil
}
