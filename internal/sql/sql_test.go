package sql

import (
	"strings"
	"testing"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/plan"
	"bufferdb/internal/storage"
	"bufferdb/internal/tpch"
)

var testDB = func() *storage.Catalog {
	cat, err := tpch.Generate(tpch.Config{ScaleFactor: 0.002})
	if err != nil {
		panic(err)
	}
	return cat
}()

// runSQL plans and executes a query, uninstrumented.
func runSQL(t *testing.T, query string, opt Options) []storage.Row {
	t.Helper()
	p, err := PlanQuery(query, testDB, opt)
	if err != nil {
		t.Fatalf("plan %q: %v", query, err)
	}
	op, err := plan.Build(p, nil)
	if err != nil {
		t.Fatalf("build %q: %v", query, err)
	}
	rows, err := exec.Run(&exec.Context{Catalog: testDB}, op)
	if err != nil {
		t.Fatalf("run %q: %v", query, err)
	}
	return rows
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a1, 'it''s' FROM t -- comment\nWHERE x <= 1.5 AND y != 2;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	joined := strings.Join(texts, " ")
	for _, want := range []string{"SELECT", "a1", "it's", "<=", "1.5", "<>", ";"} {
		if !strings.Contains(joined, want) {
			t.Errorf("token stream %q missing %q", joined, want)
		}
	}
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("SELECT a ? b"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestParserBasics(t *testing.T) {
	stmt, err := Parse(`SELECT COUNT(*) AS n, SUM(l_quantity)
		FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' LIMIT 10;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 2 || stmt.Items[0].Alias != "n" {
		t.Errorf("items = %+v", stmt.Items)
	}
	if len(stmt.From) != 1 || stmt.From[0].Name != "lineitem" {
		t.Errorf("from = %+v", stmt.From)
	}
	if stmt.Where == nil || stmt.Limit != 10 {
		t.Errorf("where/limit: %v %d", stmt.Where, stmt.Limit)
	}
}

func TestParserPrecedence(t *testing.T) {
	stmt, err := Parse("SELECT a + b * c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	got := astString(stmt.Items[0].Expr)
	if got != "(a + (b * c))" {
		t.Errorf("precedence render = %q", got)
	}
	stmt, err = Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	if got := astString(stmt.Where); got != "((a = 1) OR ((b = 2) AND (c = 3)))" {
		t.Errorf("logic precedence = %q", got)
	}
}

func TestParserConstructs(t *testing.T) {
	cases := []string{
		"SELECT * FROM t WHERE a BETWEEN 1 AND 2",
		"SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2",
		"SELECT * FROM t WHERE s LIKE 'PROMO%'",
		"SELECT * FROM t WHERE s NOT LIKE 'PROMO%'",
		"SELECT * FROM t WHERE s IS NULL",
		"SELECT * FROM t WHERE s IS NOT NULL",
		"SELECT * FROM t WHERE NOT (a = 1)",
		"SELECT * FROM t WHERE d < DATE '1995-01-01' - INTERVAL '90' DAY",
		"SELECT * FROM t WHERE d < DATE '1995-01-01' + INTERVAL '3' MONTH",
		"SELECT -a FROM t",
		"SELECT MIN(a), MAX(b), AVG(c) FROM t",
		"SELECT a FROM t ORDER BY a DESC, 1 ASC",
		"SELECT o.a, l.b FROM orders o, lineitem l WHERE o.k = l.k",
		"SELECT a FROM t1 JOIN t2 ON t1.x = t2.y",
		"SELECT a FROM t WHERE b = TRUE OR b = FALSE OR c = NULL",
	}
	for _, q := range cases {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t HAVING a > 1",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t extra garbage following (",
		"SELECT COUNT(* FROM t",
		"SELECT a FROM t WHERE d < DATE 42",
		"SELECT a FROM t WHERE d < INTERVAL '3' FORTNIGHT",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) accepted", q)
		}
	}
}

func TestQuery1EndToEnd(t *testing.T) {
	// The paper's Query 1.
	rows := runSQL(t, `
		SELECT SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
		       AVG(l_quantity) AS avg_qty,
		       COUNT(*) AS count_order
		FROM lineitem
		WHERE l_shipdate <= DATE '1998-09-02'`, Options{})
	if len(rows) != 1 {
		t.Fatalf("Q1 returned %d rows", len(rows))
	}
	// Brute-force reference.
	li, _ := testDB.Table("lineitem")
	sch := li.Schema()
	ship, _ := sch.ColumnIndex("", "l_shipdate")
	price, _ := sch.ColumnIndex("", "l_extendedprice")
	disc, _ := sch.ColumnIndex("", "l_discount")
	tax, _ := sch.ColumnIndex("", "l_tax")
	qty, _ := sch.ColumnIndex("", "l_quantity")
	cutoff := storage.DateFromYMD(1998, 9, 2).I
	var sum, qsum float64
	var n int64
	for _, r := range li.Rows() {
		if r[ship].I > cutoff {
			continue
		}
		sum += r[price].F * (1 - r[disc].F) * (1 + r[tax].F)
		qsum += r[qty].F
		n++
	}
	got := rows[0]
	if got[2].I != n {
		t.Errorf("count_order = %d, want %d", got[2].I, n)
	}
	if diff := got[0].F - sum; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("sum_charge = %v, want %v", got[0].F, sum)
	}
	wantAvg := qsum / float64(n)
	if diff := got[1].F - wantAvg; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("avg_qty = %v, want %v", got[1].F, wantAvg)
	}
}

func TestGroupByOrderBy(t *testing.T) {
	rows := runSQL(t, `
		SELECT l_returnflag, l_linestatus, COUNT(*) AS n, SUM(l_quantity) AS q
		FROM lineitem
		GROUP BY l_returnflag, l_linestatus
		ORDER BY l_returnflag, l_linestatus`, Options{})
	if len(rows) < 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	li, _ := testDB.Table("lineitem")
	total := int64(0)
	for i, r := range rows {
		total += r[2].I
		if i > 0 {
			prev := rows[i-1]
			if prev[0].S > r[0].S || (prev[0].S == r[0].S && prev[1].S >= r[1].S) {
				t.Errorf("output not ordered at %d", i)
			}
		}
	}
	if total != int64(li.NumRows()) {
		t.Errorf("counts sum to %d, want %d", total, li.NumRows())
	}
}

func TestJoinMethodsAgreeViaSQL(t *testing.T) {
	const q = `
		SELECT SUM(o_totalprice), COUNT(*), AVG(l_discount)
		FROM lineitem, orders
		WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1995-06-17'`
	// External reference, so that all three methods being equally wrong
	// cannot pass.
	li, _ := testDB.Table("lineitem")
	orders, _ := testDB.Table("orders")
	ship, _ := li.Schema().ColumnIndex("", "l_shipdate")
	cutoff := storage.DateFromYMD(1995, 6, 17).I
	var wantSum float64
	var wantN int64
	for _, r := range li.Rows() {
		if r[ship].I <= cutoff {
			wantSum += orders.Row(int(r[0].I) - 1)[3].F
			wantN++
		}
	}
	for _, method := range []JoinMethod{JoinHash, JoinNestLoop, JoinMerge} {
		rows := runSQL(t, q, Options{ForceJoin: method})
		if len(rows) != 1 {
			t.Fatalf("%s: %d rows", method, len(rows))
		}
		if got := rows[0][1].I; got != wantN {
			t.Errorf("%s count = %d, want %d", method, got, wantN)
		}
		if got := rows[0][0].F; got < wantSum*(1-1e-9) || got > wantSum*(1+1e-9) {
			t.Errorf("%s sum(o_totalprice) = %v, want %v", method, got, wantSum)
		}
	}
}

func TestForcedJoinPlansHaveExpectedShape(t *testing.T) {
	const q = `
		SELECT COUNT(*)
		FROM lineitem, orders
		WHERE l_orderkey = o_orderkey`
	shapes := map[JoinMethod]plan.Kind{
		JoinHash:     plan.KindHashJoin,
		JoinNestLoop: plan.KindNestLoopJoin,
		JoinMerge:    plan.KindMergeJoin,
	}
	for method, kind := range shapes {
		p, err := PlanQuery(q, testDB, Options{ForceJoin: method})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if plan.CountKind(p, kind) != 1 {
			t.Errorf("%s: no %v node:\n%s", method, kind, plan.Explain(p))
		}
	}
	// The merge plan uses the ordered index scan of orders.
	p, _ := PlanQuery(q, testDB, Options{ForceJoin: JoinMerge})
	if plan.CountKind(p, plan.KindIndexFullScan) != 1 {
		t.Errorf("merge plan lacks IndexFullScan:\n%s", plan.Explain(p))
	}
}

func TestThreeWayJoin(t *testing.T) {
	rows := runSQL(t, `
		SELECT COUNT(*)
		FROM customer, orders, lineitem
		WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
		  AND c_mktsegment = 'BUILDING'`, Options{})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Reference: count lineitems of orders of BUILDING customers.
	cust, _ := testDB.Table("customer")
	orders, _ := testDB.Table("orders")
	li, _ := testDB.Table("lineitem")
	seg, _ := cust.Schema().ColumnIndex("", "c_mktsegment")
	building := map[int64]bool{}
	for _, r := range cust.Rows() {
		if r[seg].S == "BUILDING" {
			building[r[0].I] = true
		}
	}
	orderOK := map[int64]bool{}
	for _, r := range orders.Rows() {
		if building[r[1].I] {
			orderOK[r[0].I] = true
		}
	}
	want := int64(0)
	for _, r := range li.Rows() {
		if orderOK[r[0].I] {
			want++
		}
	}
	if rows[0][0].I != want {
		t.Errorf("3-way join count = %d, want %d", rows[0][0].I, want)
	}
}

func TestProjectionAndScalars(t *testing.T) {
	rows := runSQL(t, `
		SELECT l_orderkey, l_extendedprice * (1 - l_discount) AS net
		FROM lineitem
		WHERE l_quantity < 2
		ORDER BY net DESC
		LIMIT 5`, Options{})
	if len(rows) > 5 {
		t.Fatalf("LIMIT ignored: %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][1].F < rows[i][1].F {
			t.Errorf("ORDER BY DESC violated at %d", i)
		}
	}
}

func TestStringDateCoercion(t *testing.T) {
	a := runSQL(t, "SELECT COUNT(*) FROM lineitem WHERE l_shipdate <= DATE '1995-06-17'", Options{})
	b := runSQL(t, "SELECT COUNT(*) FROM lineitem WHERE l_shipdate <= '1995-06-17'", Options{})
	if a[0][0].I != b[0][0].I {
		t.Errorf("coerced date literal differs: %d vs %d", a[0][0].I, b[0][0].I)
	}
}

func TestLikeAndBetweenEndToEnd(t *testing.T) {
	rows := runSQL(t, `
		SELECT COUNT(*) FROM part
		WHERE p_type LIKE 'PROMO%' AND p_size BETWEEN 1 AND 15`, Options{})
	part, _ := testDB.Table("part")
	sch := part.Schema()
	ty, _ := sch.ColumnIndex("", "p_type")
	size, _ := sch.ColumnIndex("", "p_size")
	want := int64(0)
	for _, r := range part.Rows() {
		if strings.HasPrefix(r[ty].S, "PROMO") && r[size].I >= 1 && r[size].I <= 15 {
			want++
		}
	}
	if rows[0][0].I != want {
		t.Errorf("LIKE+BETWEEN count = %d, want %d", rows[0][0].I, want)
	}
}

func TestAnalyzerErrors(t *testing.T) {
	bad := []struct {
		q   string
		opt Options
	}{
		{"SELECT * FROM nosuchtable", Options{}},
		{"SELECT nosuchcol FROM lineitem", Options{}},
		{"SELECT l_orderkey FROM lineitem, orders", Options{}}, // cross join
		{"SELECT * FROM lineitem l, lineitem l", Options{}},    // dup binding
		{"SELECT COUNT(*), l_orderkey FROM lineitem", Options{}},
		{"SELECT * FROM lineitem GROUP BY l_orderkey", Options{}},
		{"SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_comment = o_comment AND l_partkey = 3 OR 1 = 1", Options{}},
		{"SELECT COUNT(*) FROM orders, customer WHERE o_custkey = c_custkey", Options{ForceJoin: "bogus"}},
	}
	for _, c := range bad {
		if _, err := PlanQuery(c.q, testDB, c.opt); err == nil {
			t.Errorf("PlanQuery(%q) accepted", c.q)
		}
	}
}

func TestRefinedSQLPlanRuns(t *testing.T) {
	// End-to-end: SQL → plan → refinement → execution, instrumented off.
	p, err := PlanQuery(`
		SELECT SUM(l_extendedprice), AVG(l_quantity), COUNT(*)
		FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'`, testDB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cmCat := newTestCodeModel()
	refined, _, err := plan.Refine(p, cmCat, plan.RefineOptions{CardinalityThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if plan.CountKind(refined, plan.KindBuffer) == 0 {
		t.Fatalf("refinement added no buffer:\n%s", plan.Explain(refined))
	}
	a, err := plan.Build(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plan.Build(refined, nil)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := exec.Run(&exec.Context{Catalog: testDB}, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := exec.Run(&exec.Context{Catalog: testDB}, b)
	if err != nil {
		t.Fatal(err)
	}
	if ra[0].String() != rb[0].String() {
		t.Errorf("refined plan changed result: %s vs %s", rb[0], ra[0])
	}
}

// newTestCodeModel builds a fresh code model for refinement tests.
func newTestCodeModel() *codemodel.Catalog { return codemodel.NewCatalog() }

// TestIsInsert pins the routing predicate: it must skip the same leading
// trivia the lexer does (whitespace, -- line comments) and match INSERT
// only as a whole token.
func TestIsInsert(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"INSERT INTO t VALUES (1)", true},
		{"  \t\n insert into t values (1)", true},
		{"-- note\nINSERT INTO t VALUES (1)", true},
		{"-- one\n  -- two\r\n\tInSeRt INTO t VALUES (1)", true},
		{"INSERT", true},
		{"SELECT 1", false},
		{"-- INSERT INTO t VALUES (1)", false},
		{"-- comment only", false},
		{"inserted_rows FROM t", false},
		{"INSERTX", false},
		{"", false},
		{"   ", false},
	}
	for _, c := range cases {
		if got := IsInsert(c.in); got != c.want {
			t.Errorf("IsInsert(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
