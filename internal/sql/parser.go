package sql

import (
	"fmt"
	"strconv"
)

// Parse parses a single SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, p.errorf("trailing input after statement")
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.cur(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if t := p.cur(); t.kind == tokSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errorf("expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if t := p.cur(); t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	return "", p.errorf("expected identifier, found %q", p.cur().text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}

	// Target list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.acceptSymbol(",") {
			break
		}
	}
	for p.acceptKeyword("INNER") || p.cur().text == "JOIN" {
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: ref, On: on})
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		return nil, p.errorf("HAVING is not supported")
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		p.pos++
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		name, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = name
	} else if p.cur().kind == tokIdent {
		// Bare alias.
		item.Alias = p.cur().text
		p.pos++
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.cur().kind == tokIdent {
		ref.Alias = p.cur().text
		p.pos++
	}
	return ref, nil
}

// Expression grammar, lowest precedence first:
//
//	expr     := and (OR and)*
//	and      := not (AND not)*
//	not      := NOT not | predicate
//	predicate:= additive ((=|<>|<|<=|>|>=) additive
//	           | [NOT] BETWEEN additive AND additive
//	           | [NOT] LIKE 'pattern'
//	           | IS [NOT] NULL)?
//	additive := multiplicative ((+|-) multiplicative)*
//	multiplicative := unary ((*|/) unary)*
//	unary    := - unary | primary
//	primary  := literal | ident[.ident] | agg(...) | ( expr )
func (p *parser) parseExpr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Node, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	negate := false
	if p.cur().kind == tokKeyword && p.cur().text == "NOT" {
		// lookahead: NOT BETWEEN / NOT LIKE / NOT IN
		next := p.toks[p.pos+1]
		if next.kind == tokKeyword && (next.text == "BETWEEN" || next.text == "LIKE" || next.text == "IN") {
			p.pos++
			negate = true
		}
	}
	switch {
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Negate: negate}, nil

	case p.acceptKeyword("LIKE"):
		t := p.cur()
		if t.kind != tokString {
			return nil, p.errorf("LIKE needs a string pattern")
		}
		p.pos++
		return &LikeExpr{E: l, Pattern: t.text, Negate: negate}, nil

	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Node
		for {
			item, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Negate: negate}, nil

	case p.acceptKeyword("IS"):
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Negate: neg}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "=", "<", ">"} {
		if p.acceptSymbol(op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Node, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "+", L: l, R: r}
		case p.acceptSymbol("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "*", L: l, R: r}
		case p.acceptSymbol("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Node, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		isInt := true
		for _, c := range t.text {
			if c == '.' {
				isInt = false
			}
		}
		return &NumberLit{Text: t.text, IsInt: isInt}, nil

	case tokString:
		p.pos++
		return &StringLit{Val: t.text}, nil

	case tokKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return &NullLit{}, nil
		case "TRUE":
			p.pos++
			return &BoolLit{Val: true}, nil
		case "FALSE":
			p.pos++
			return &BoolLit{Val: false}, nil
		case "DATE":
			p.pos++
			s := p.cur()
			if s.kind != tokString {
				return nil, p.errorf("DATE needs a 'yyyy-mm-dd' literal")
			}
			p.pos++
			return &DateLit{Val: s.text}, nil
		case "INTERVAL":
			p.pos++
			s := p.cur()
			if s.kind != tokString {
				return nil, p.errorf("INTERVAL needs a quoted count")
			}
			n, err := strconv.ParseInt(s.text, 10, 64)
			if err != nil {
				return nil, p.errorf("bad INTERVAL count %q", s.text)
			}
			p.pos++
			unitDays := int64(0)
			switch {
			case p.acceptKeyword("DAY"):
				unitDays = 1
			case p.acceptKeyword("MONTH"):
				unitDays = 30 // calendar-approximate, documented in DESIGN.md
			case p.acceptKeyword("YEAR"):
				unitDays = 365
			default:
				return nil, p.errorf("INTERVAL unit must be DAY, MONTH or YEAR")
			}
			return &IntervalLit{Days: n * unitDays}, nil
		case "CASE":
			p.pos++
			var whens []WhenClause
			for p.acceptKeyword("WHEN") {
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("THEN"); err != nil {
					return nil, err
				}
				then, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				whens = append(whens, WhenClause{Cond: cond, Then: then})
			}
			if len(whens) == 0 {
				return nil, p.errorf("CASE needs at least one WHEN arm")
			}
			var elseExpr Node
			if p.acceptKeyword("ELSE") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				elseExpr = e
			}
			if err := p.expectKeyword("END"); err != nil {
				return nil, err
			}
			return &CaseExpr{Whens: whens, Else: elseExpr}, nil

		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.pos++
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			if t.text == "COUNT" && p.acceptSymbol("*") {
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &FuncCall{Name: "COUNT", Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &FuncCall{Name: t.text, Arg: arg}, nil
		default:
			return nil, p.errorf("unexpected keyword %s", t.text)
		}

	case tokIdent:
		p.pos++
		if p.acceptSymbol(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &Ident{Table: t.text, Name: col}, nil
		}
		return &Ident{Name: t.text}, nil

	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q", t.text)
}
