package sql

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// offsetRE extracts the byte offset a parse or lex error reports.
var offsetRE = regexp.MustCompile(`offset (\d+)`)

// TestParseErrorCases pins down the parser's error surface for the inputs
// most likely to come off a network connection half-typed: trailing input
// after a complete statement and unterminated string literals. Every error
// must carry a byte offset inside the input, and the message must name the
// failure so a remote client's error frame is actionable on its own.
func TestParseErrorCases(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		wantMsg string // substring of the error text
	}{
		{
			// Not "FROM t garbage" — that parses as a table alias.
			name:    "trailing literal",
			input:   "SELECT a FROM t WHERE a = 1 2",
			wantMsg: "trailing input",
		},
		{
			name:    "second statement after semicolon",
			input:   "SELECT a FROM t; SELECT b FROM u",
			wantMsg: "trailing input",
		},
		{
			name:    "trailing closing paren",
			input:   "SELECT a FROM t)",
			wantMsg: "trailing input",
		},
		{
			name:    "trailing number",
			input:   "SELECT COUNT(*) FROM t LIMIT 1 2",
			wantMsg: "trailing input",
		},
		{
			name:    "unterminated string",
			input:   "SELECT 'abc FROM t",
			wantMsg: "unterminated string",
		},
		{
			name:    "unterminated string with escaped quote",
			input:   "SELECT 'it''s",
			wantMsg: "unterminated string",
		},
		{
			name:    "unterminated empty string at end",
			input:   "SELECT a FROM t WHERE s = '",
			wantMsg: "unterminated string",
		},
		{
			name:    "bare quote",
			input:   "'",
			wantMsg: "unterminated string",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stmt, err := Parse(tc.input)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded: %+v", tc.input, stmt)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("Parse(%q) error %q does not mention %q", tc.input, err, tc.wantMsg)
			}
			m := offsetRE.FindStringSubmatch(err.Error())
			if m == nil {
				t.Fatalf("Parse(%q) error carries no offset: %v", tc.input, err)
			}
			off, convErr := strconv.Atoi(m[1])
			if convErr != nil || off < 0 || off > len(tc.input) {
				t.Fatalf("Parse(%q) reports offset %s outside the input (len %d)",
					tc.input, m[1], len(tc.input))
			}
		})
	}
}

// TestParseTrailingSemicolonOK pins the one legal trailer: a single
// terminating semicolon parses cleanly.
func TestParseTrailingSemicolonOK(t *testing.T) {
	for _, q := range []string{"SELECT a FROM t;", "SELECT a FROM t ; "} {
		if _, err := Parse(q); err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
	}
}
