package sql

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/plan"
	"bufferdb/internal/storage"
)

// JoinMethod selects the physical join algorithm, mirroring the paper's
// §7.5 methodology of forcing the optimizer into each of the three plans.
type JoinMethod string

// Supported join methods. Empty defaults to hash join.
const (
	JoinDefault  JoinMethod = ""
	JoinHash     JoinMethod = "hash"
	JoinNestLoop JoinMethod = "nestloop"
	JoinMerge    JoinMethod = "merge"
)

// ErrBadJoinMethod is wrapped by planning errors for an unrecognized
// Options.ForceJoin value.
var ErrBadJoinMethod = errors.New("unknown join method")

// Options configures planning.
type Options struct {
	// ForceJoin selects the join algorithm for every join in the query.
	ForceJoin JoinMethod
}

// validate rejects malformed options up front, before any parsing work.
func (o Options) validate() error {
	switch o.ForceJoin {
	case JoinDefault, JoinHash, JoinNestLoop, JoinMerge:
		return nil
	default:
		return fmt.Errorf("sql: %w %q", ErrBadJoinMethod, o.ForceJoin)
	}
}

// PlanQuery parses and plans a SQL statement into a physical plan.
func PlanQuery(query string, cat *storage.Catalog, opt Options) (*plan.Node, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Analyze(stmt, cat, opt)
}

// Analyze turns a parsed statement into a physical plan.
func Analyze(stmt *SelectStmt, cat *storage.Catalog, opt Options) (*plan.Node, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	a := &analyzer{cat: cat, opt: opt}
	return a.plan(stmt)
}

// scopeCol is one visible column during analysis.
type scopeCol struct {
	binding string // table alias or name
	name    string
	typ     storage.Type
	pos     int
}

// scope is the set of columns visible to expression resolution.
type scope struct {
	cols []scopeCol
}

func scopeOf(binding string, sch storage.Schema, offset int) *scope {
	s := &scope{}
	for i, c := range sch {
		s.cols = append(s.cols, scopeCol{binding: binding, name: c.Name, typ: c.Type, pos: offset + i})
	}
	return s
}

func (s *scope) concat(other *scope) *scope {
	out := &scope{cols: append([]scopeCol{}, s.cols...)}
	// Positions are absolute within the joined row: shift the right side
	// past the left side's width.
	off := len(s.cols)
	for _, c := range other.cols {
		c.pos += off
		out.cols = append(out.cols, c)
	}
	return out
}

// resolve finds a column by (optional) binding and name.
func (s *scope) resolve(binding, name string) (*scopeCol, error) {
	var found *scopeCol
	for i := range s.cols {
		c := &s.cols[i]
		if !strings.EqualFold(c.name, name) {
			continue
		}
		if binding != "" && !strings.EqualFold(c.binding, binding) {
			continue
		}
		if found != nil {
			return nil, fmt.Errorf("sql: ambiguous column %q", name)
		}
		found = c
	}
	if found == nil {
		if binding != "" {
			return nil, fmt.Errorf("sql: no column %s.%s in scope", binding, name)
		}
		return nil, fmt.Errorf("sql: no column %q in scope", name)
	}
	return found, nil
}

type boundTable struct {
	ref   TableRef
	table *storage.Table
	scope *scope // table-local scope (offsets 0..)
}

type analyzer struct {
	cat *storage.Catalog
	opt Options
}

func (a *analyzer) plan(stmt *SelectStmt) (*plan.Node, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sql: FROM clause required")
	}

	// Bind tables.
	var tables []boundTable
	refs := append([]TableRef{}, stmt.From...)
	for _, j := range stmt.Joins {
		refs = append(refs, j.Table)
	}
	seen := map[string]bool{}
	for _, ref := range refs {
		t, err := a.cat.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		b := strings.ToLower(ref.Binding())
		if seen[b] {
			return nil, fmt.Errorf("sql: duplicate table binding %q", ref.Binding())
		}
		seen[b] = true
		tables = append(tables, boundTable{ref: ref, table: t, scope: scopeOf(ref.Binding(), t.Schema(), 0)})
	}

	// Collect conjuncts from WHERE and JOIN … ON.
	var conjuncts []Node
	if stmt.Where != nil {
		conjuncts = splitConjuncts(stmt.Where)
	}
	for _, j := range stmt.Joins {
		conjuncts = append(conjuncts, splitConjuncts(j.On)...)
	}

	// Classify each conjunct by the bindings it references.
	type joinCond struct {
		l, r *Ident // l = r
	}
	pushdown := map[string][]Node{}
	var joinConds []joinCond
	var residual []Node
	for _, c := range conjuncts {
		bs, err := a.bindingsOf(c, tables)
		if err != nil {
			return nil, err
		}
		switch len(bs) {
		case 0, 1:
			b := ""
			if len(bs) == 1 {
				b = bs[0]
			} else {
				b = strings.ToLower(tables[0].ref.Binding())
			}
			pushdown[b] = append(pushdown[b], c)
		case 2:
			if l, r, ok := asEquiJoin(c); ok {
				joinConds = append(joinConds, joinCond{l: l, r: r})
			} else {
				residual = append(residual, c)
			}
		default:
			residual = append(residual, c)
		}
	}

	// Base access paths with pushed-down predicates.
	baseFor := func(bt boundTable) (*plan.Node, error) {
		var filter expr.Expr
		for _, c := range pushdown[strings.ToLower(bt.ref.Binding())] {
			e, err := a.toExpr(c, bt.scope)
			if err != nil {
				return nil, err
			}
			if filter == nil {
				filter = e
			} else {
				filter = expr.MustBinary(expr.OpAnd, filter, e)
			}
		}
		return plan.SeqScan(bt.table, filter), nil
	}

	// Left-deep join in FROM order.
	cur, err := baseFor(tables[0])
	if err != nil {
		return nil, err
	}
	curScope := tables[0].scope
	joined := map[string]bool{strings.ToLower(tables[0].ref.Binding()): true}

	consumed := make([]bool, len(joinConds))
	for _, bt := range tables[1:] {
		b := strings.ToLower(bt.ref.Binding())
		// Find a join condition connecting the accumulated side to bt.
		var accIdent, newIdent *Ident
		for i, jc := range joinConds {
			if consumed[i] {
				continue
			}
			lb, _ := a.bindingOfIdent(jc.l, tables)
			rb, _ := a.bindingOfIdent(jc.r, tables)
			switch {
			case joined[lb] && rb == b:
				accIdent, newIdent = jc.l, jc.r
			case joined[rb] && lb == b:
				accIdent, newIdent = jc.r, jc.l
			}
			if accIdent != nil {
				consumed[i] = true
				break
			}
		}
		if accIdent == nil {
			return nil, fmt.Errorf("sql: no equi-join condition connects table %q (cross joins unsupported)", bt.ref.Binding())
		}
		accCol, err := curScope.resolve(accIdent.Table, accIdent.Name)
		if err != nil {
			return nil, err
		}
		newCol, err := bt.scope.resolve(newIdent.Table, newIdent.Name)
		if err != nil {
			return nil, err
		}
		accKey := expr.NewColRef(accCol.pos, accCol.binding+"."+accCol.name, accCol.typ)
		newKey := expr.NewColRef(newCol.pos, newCol.binding+"."+newCol.name, newCol.typ)

		cur, err = a.join(cur, bt, accKey, newKey, baseFor)
		if err != nil {
			return nil, err
		}
		curScope = curScope.concat(bt.scope)
		joined[b] = true
	}

	// Unconsumed equi-join conditions (a table connected by more than one
	// equality, e.g. TPC-H Q5's c_nationkey = s_nationkey) apply as
	// residual filters over the joined rows.
	for i, jc := range joinConds {
		if consumed[i] {
			continue
		}
		l, err := curScope.resolve(jc.l.Table, jc.l.Name)
		if err != nil {
			return nil, err
		}
		r, err := curScope.resolve(jc.r.Table, jc.r.Name)
		if err != nil {
			return nil, err
		}
		eq, err := a.binary("=",
			expr.NewColRef(l.pos, l.binding+"."+l.name, l.typ),
			expr.NewColRef(r.pos, r.binding+"."+r.name, r.typ))
		if err != nil {
			return nil, err
		}
		cur = plan.Filter(cur, eq)
	}

	// Residual predicates.
	for _, c := range residual {
		e, err := a.toExpr(c, curScope)
		if err != nil {
			return nil, err
		}
		cur = plan.Filter(cur, e)
	}

	// Aggregation / projection.
	hasAgg := len(stmt.GroupBy) > 0
	for _, item := range stmt.Items {
		if !item.Star && containsAggregate(item.Expr) {
			hasAgg = true
		}
	}
	var finalNode *plan.Node
	if hasAgg {
		finalNode, err = a.planAggregate(stmt, cur, curScope)
	} else {
		finalNode, err = a.planProjection(stmt, cur, curScope)
	}
	if err != nil {
		return nil, err
	}

	// ORDER BY over the final schema.
	if len(stmt.OrderBy) > 0 {
		keys, err := a.orderKeys(stmt.OrderBy, finalNode)
		if err != nil {
			return nil, err
		}
		finalNode = plan.Sort(finalNode, keys)
	}
	if stmt.Limit >= 0 {
		finalNode = plan.Limit(finalNode, stmt.Limit)
	}
	return finalNode, nil
}

// join builds one join step with the configured method.
func (a *analyzer) join(outer *plan.Node, bt boundTable, outerKey, innerKey *expr.ColRef,
	baseFor func(boundTable) (*plan.Node, error)) (*plan.Node, error) {

	method := a.opt.ForceJoin
	if method == JoinDefault {
		method = JoinHash
	}
	switch method {
	case JoinHash:
		inner, err := baseFor(bt)
		if err != nil {
			return nil, err
		}
		return plan.HashJoin(outer, inner, outerKey, innerKey), nil

	case JoinNestLoop:
		idx := bt.table.IndexOn(bt.scope.cols[innerKey.Idx].name)
		if idx == nil {
			return nil, fmt.Errorf("sql: nestloop join needs an index on %s.%s",
				bt.table.Name(), bt.scope.cols[innerKey.Idx].name)
		}
		if len(a.pushdownFor(bt)) > 0 {
			return nil, fmt.Errorf("sql: nestloop inner with pushed-down predicates unsupported")
		}
		lookup, err := plan.IndexLookup(bt.table, idx)
		if err != nil {
			return nil, err
		}
		return plan.NestLoopJoin(outer, lookup, outerKey, nil)

	case JoinMerge:
		sortedOuter := plan.Sort(outer, []exec.SortKey{{Expr: outerKey}})
		var right *plan.Node
		if idx := bt.table.IndexOn(bt.scope.cols[innerKey.Idx].name); idx != nil && len(a.pushdownFor(bt)) == 0 {
			var err error
			right, err = plan.IndexFullScan(bt.table, idx, nil)
			if err != nil {
				return nil, err
			}
		} else {
			base, err := baseFor(bt)
			if err != nil {
				return nil, err
			}
			right = plan.Sort(base, []exec.SortKey{{Expr: innerKey}})
		}
		return plan.MergeJoin(sortedOuter, right, outerKey, innerKey), nil

	default:
		return nil, fmt.Errorf("sql: %w %q", ErrBadJoinMethod, method)
	}
}

// pushdownFor is a placeholder hook: the current planner refuses nest-loop
// inners with pushed-down predicates rather than losing them silently.
func (a *analyzer) pushdownFor(boundTable) []Node { return nil }

// planAggregate builds Aggregate (+ Project for the select-list shape).
func (a *analyzer) planAggregate(stmt *SelectStmt, child *plan.Node, sc *scope) (*plan.Node, error) {
	// Group-by expressions.
	var groupBy []expr.Expr
	groupKey := map[string]int{} // astString → output position
	for i, g := range stmt.GroupBy {
		e, err := a.toExpr(g, sc)
		if err != nil {
			return nil, err
		}
		groupBy = append(groupBy, e)
		groupKey[astString(g)] = i
	}

	// Aggregate calls, in discovery order across the select list.
	var aggs []expr.AggSpec
	aggKey := map[string]int{} // astString → index into aggs
	var collect func(n Node) error
	collect = func(n Node) error {
		switch e := n.(type) {
		case *FuncCall:
			key := astString(e)
			if _, ok := aggKey[key]; ok {
				return nil
			}
			spec := expr.AggSpec{}
			switch e.Name {
			case "COUNT":
				if e.Star {
					spec.Func = expr.AggCountStar
				} else {
					spec.Func = expr.AggCount
				}
			case "SUM":
				spec.Func = expr.AggSum
			case "AVG":
				spec.Func = expr.AggAvg
			case "MIN":
				spec.Func = expr.AggMin
			case "MAX":
				spec.Func = expr.AggMax
			default:
				return fmt.Errorf("sql: unknown aggregate %s", e.Name)
			}
			if !e.Star {
				arg, err := a.toExpr(e.Arg, sc)
				if err != nil {
					return err
				}
				spec.Arg = arg
			}
			aggKey[key] = len(aggs)
			aggs = append(aggs, spec)
			return nil
		case *BinaryExpr:
			if err := collect(e.L); err != nil {
				return err
			}
			return collect(e.R)
		case *UnaryExpr:
			return collect(e.E)
		default:
			return nil
		}
	}
	for _, item := range stmt.Items {
		if item.Star {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
		}
		if err := collect(item.Expr); err != nil {
			return nil, err
		}
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("sql: GROUP BY without aggregates is unsupported")
	}

	aggNode, err := plan.Aggregate(child, groupBy, aggs)
	if err != nil {
		return nil, err
	}

	// Post-aggregation projection: rewrite each select item over the
	// aggregate's output schema (group keys first, then agg results).
	aggSchema := aggNode.Schema()
	outScope := &scope{}
	for i, c := range aggSchema {
		outScope.cols = append(outScope.cols, scopeCol{name: c.Name, typ: c.Type, pos: i})
	}
	var exprs []expr.Expr
	var names []string
	for _, item := range stmt.Items {
		e, err := a.toPostAggExpr(item.Expr, groupKey, aggKey, len(groupBy), aggSchema, sc)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		name := item.Alias
		if name == "" {
			name = astString(item.Expr)
		}
		names = append(names, name)
	}
	return plan.Project(aggNode, exprs, names)
}

// toPostAggExpr rewrites a select-list expression over the aggregate
// output: aggregate calls and group-by expressions become column refs.
func (a *analyzer) toPostAggExpr(n Node, groupKey, aggKey map[string]int, nGroups int,
	aggSchema storage.Schema, inScope *scope) (expr.Expr, error) {

	key := astString(n)
	if i, ok := groupKey[key]; ok {
		return expr.NewColRef(i, aggSchema[i].Name, aggSchema[i].Type), nil
	}
	if i, ok := aggKey[key]; ok {
		pos := nGroups + i
		return expr.NewColRef(pos, aggSchema[pos].Name, aggSchema[pos].Type), nil
	}
	switch e := n.(type) {
	case *BinaryExpr:
		l, err := a.toPostAggExpr(e.L, groupKey, aggKey, nGroups, aggSchema, inScope)
		if err != nil {
			return nil, err
		}
		r, err := a.toPostAggExpr(e.R, groupKey, aggKey, nGroups, aggSchema, inScope)
		if err != nil {
			return nil, err
		}
		return a.binary(e.Op, l, r)
	case *UnaryExpr:
		inner, err := a.toPostAggExpr(e.E, groupKey, aggKey, nGroups, aggSchema, inScope)
		if err != nil {
			return nil, err
		}
		if e.Op == "-" {
			return expr.NewNeg(inner)
		}
		return expr.NewNot(inner)
	case *NumberLit, *StringLit, *DateLit, *IntervalLit, *NullLit, *BoolLit:
		return a.toExpr(n, inScope)
	case *Ident:
		return nil, fmt.Errorf("sql: column %s must appear in GROUP BY or inside an aggregate", astString(n))
	default:
		return nil, fmt.Errorf("sql: unsupported select-list expression %s over aggregation", key)
	}
}

// planProjection builds the non-aggregate select list.
func (a *analyzer) planProjection(stmt *SelectStmt, child *plan.Node, sc *scope) (*plan.Node, error) {
	if len(stmt.Items) == 1 && stmt.Items[0].Star {
		return child, nil
	}
	var exprs []expr.Expr
	var names []string
	for _, item := range stmt.Items {
		if item.Star {
			return nil, fmt.Errorf("sql: mixed * and expressions in SELECT list")
		}
		e, err := a.toExpr(item.Expr, sc)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		name := item.Alias
		if name == "" {
			name = astString(item.Expr)
		}
		names = append(names, name)
	}
	return plan.Project(child, exprs, names)
}

// orderKeys resolves ORDER BY items over the final output schema: by output
// name, by 1-based ordinal, or by rendering match.
func (a *analyzer) orderKeys(items []OrderItem, final *plan.Node) ([]exec.SortKey, error) {
	sch := final.Schema()
	var keys []exec.SortKey
	for _, item := range items {
		var ref *expr.ColRef
		switch e := item.Expr.(type) {
		case *NumberLit:
			n, err := strconv.Atoi(e.Text)
			if err != nil || n < 1 || n > len(sch) {
				return nil, fmt.Errorf("sql: ORDER BY ordinal %s out of range", e.Text)
			}
			ref = expr.NewColRef(n-1, sch[n-1].Name, sch[n-1].Type)
		default:
			name := astString(item.Expr)
			if id, ok := item.Expr.(*Ident); ok && id.Table == "" {
				name = id.Name
			}
			for i, c := range sch {
				if strings.EqualFold(c.Name, name) {
					ref = expr.NewColRef(i, c.Name, c.Type)
					break
				}
			}
			if ref == nil {
				return nil, fmt.Errorf("sql: ORDER BY item %q not in select list", name)
			}
		}
		keys = append(keys, exec.SortKey{Expr: ref, Desc: item.Desc})
	}
	return keys, nil
}

// bindingsOf returns the distinct table bindings an expression references.
func (a *analyzer) bindingsOf(n Node, tables []boundTable) ([]string, error) {
	set := map[string]bool{}
	var walk func(n Node) error
	walk = func(n Node) error {
		switch e := n.(type) {
		case *Ident:
			b, err := a.bindingOfIdent(e, tables)
			if err != nil {
				return err
			}
			set[b] = true
		case *BinaryExpr:
			if err := walk(e.L); err != nil {
				return err
			}
			return walk(e.R)
		case *UnaryExpr:
			return walk(e.E)
		case *BetweenExpr:
			for _, s := range []Node{e.E, e.Lo, e.Hi} {
				if err := walk(s); err != nil {
					return err
				}
			}
		case *LikeExpr:
			return walk(e.E)
		case *IsNullExpr:
			return walk(e.E)
		case *FuncCall:
			if e.Arg != nil {
				return walk(e.Arg)
			}
		case *CaseExpr:
			for _, w := range e.Whens {
				if err := walk(w.Cond); err != nil {
					return err
				}
				if err := walk(w.Then); err != nil {
					return err
				}
			}
			if e.Else != nil {
				return walk(e.Else)
			}
		case *InExpr:
			if err := walk(e.E); err != nil {
				return err
			}
			for _, item := range e.List {
				if err := walk(item); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(n); err != nil {
		return nil, err
	}
	var out []string
	for b := range set {
		out = append(out, b)
	}
	return out, nil
}

// bindingOfIdent resolves which table binding an identifier belongs to.
func (a *analyzer) bindingOfIdent(id *Ident, tables []boundTable) (string, error) {
	if id.Table != "" {
		for _, bt := range tables {
			if strings.EqualFold(bt.ref.Binding(), id.Table) {
				return strings.ToLower(bt.ref.Binding()), nil
			}
		}
		return "", fmt.Errorf("sql: unknown table reference %q", id.Table)
	}
	found := ""
	for _, bt := range tables {
		if i, _ := bt.table.Schema().ColumnIndex("", id.Name); i >= 0 {
			if found != "" {
				return "", fmt.Errorf("sql: ambiguous column %q", id.Name)
			}
			found = strings.ToLower(bt.ref.Binding())
		}
	}
	if found == "" {
		return "", fmt.Errorf("sql: unknown column %q", id.Name)
	}
	return found, nil
}

// asEquiJoin matches conjuncts of the form ident = ident.
func asEquiJoin(n Node) (*Ident, *Ident, bool) {
	b, ok := n.(*BinaryExpr)
	if !ok || b.Op != "=" {
		return nil, nil, false
	}
	l, lok := b.L.(*Ident)
	r, rok := b.R.(*Ident)
	if !lok || !rok {
		return nil, nil, false
	}
	return l, r, true
}

// splitConjuncts flattens a conjunction into its AND-ed parts.
func splitConjuncts(n Node) []Node {
	if b, ok := n.(*BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Node{n}
}
