package sql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"bufferdb/internal/exec"
	"bufferdb/internal/plan"
	"bufferdb/internal/reuse"
	"bufferdb/internal/storage"
)

// fpQuery plans a query and fingerprints the root of its physical plan.
func fpQuery(t *testing.T, query string, ep *reuse.Epochs) (string, []string) {
	t.Helper()
	p, err := PlanQuery(query, testDB, Options{})
	if err != nil {
		t.Fatalf("plan %q: %v", query, err)
	}
	key, tables, ok := plan.Fingerprint(p, ep)
	if !ok {
		t.Fatalf("fingerprint refused %q:\n%s", query, plan.Explain(p))
	}
	return key, tables
}

// canonRows renders an executed result set order-insensitively.
func canonRows(rows []storage.Row) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}

// TestFingerprintAlphaEquivalence: queries that differ only in whitespace,
// alias names, predicate order, or comparison spelling must produce the
// same fingerprint — and, as ground truth, the same execution results.
func TestFingerprintAlphaEquivalence(t *testing.T) {
	pairs := []struct{ name, a, b string }{
		{"whitespace",
			"SELECT COUNT(*) FROM lineitem WHERE l_shipdate <= DATE '1995-06-17'",
			"select   count(*)\n  from LINEITEM\n where l_shipdate <= DATE '1995-06-17'"},
		{"alias names",
			"SELECT SUM(l_quantity) AS total, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag",
			"SELECT SUM(l_quantity) AS s, COUNT(*) AS cnt FROM lineitem GROUP BY l_returnflag"},
		{"predicate order",
			"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25 AND l_discount < 0.05",
			"SELECT COUNT(*) FROM lineitem WHERE l_discount < 0.05 AND l_quantity < 25"},
		{"comparison flip",
			"SELECT COUNT(*) FROM lineitem WHERE l_quantity > 25",
			"SELECT COUNT(*) FROM lineitem WHERE 25 < l_quantity"},
		{"equality commutes",
			"SELECT COUNT(*) FROM orders o, lineitem l WHERE o_orderkey = l_orderkey",
			"SELECT COUNT(*) FROM orders o, lineitem l WHERE l_orderkey = o_orderkey"},
		{"table alias rename",
			"SELECT COUNT(*) FROM orders x, lineitem y WHERE x.o_orderkey = y.l_orderkey",
			"SELECT COUNT(*) FROM orders a, lineitem b WHERE a.o_orderkey = b.l_orderkey"},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			ka, _ := fpQuery(t, p.a, nil)
			kb, _ := fpQuery(t, p.b, nil)
			if ka != kb {
				t.Errorf("fingerprints differ:\n  %s\n  %s", ka, kb)
			}
			ra := canonRows(runSQL(t, p.a, Options{}))
			rb := canonRows(runSQL(t, p.b, Options{}))
			if ra != rb {
				t.Errorf("execution results differ:\n%s\n-- vs --\n%s", ra, rb)
			}
		})
	}
}

// TestFingerprintDistinguishes: structurally different queries must not
// collide — a collision here would serve one query's rows for another's.
func TestFingerprintDistinguishes(t *testing.T) {
	queries := []string{
		"SELECT COUNT(*) FROM lineitem",
		"SELECT COUNT(*) FROM orders",
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25",
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 26",
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity <= 25",
		"SELECT SUM(l_quantity) FROM lineitem",
		"SELECT SUM(l_quantity) FROM lineitem GROUP BY l_returnflag",
		"SELECT SUM(l_quantity) FROM lineitem GROUP BY l_linestatus",
		"SELECT AVG(l_quantity) FROM lineitem",
		"SELECT COUNT(*) FROM orders o, lineitem l WHERE o_orderkey = l_orderkey",
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25 OR l_discount < 0.05",
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25 AND l_discount < 0.05",
	}
	seen := map[string]string{}
	for _, q := range queries {
		key, _ := fpQuery(t, q, nil)
		if prev, dup := seen[key]; dup {
			t.Errorf("collision between %q and %q: %s", prev, q, key)
		}
		seen[key] = q
	}
}

// TestFingerprintEpochs: bumping a table's write epoch must change the keys
// of exactly its dependents.
func TestFingerprintEpochs(t *testing.T) {
	ep := reuse.NewEpochs()
	li := "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25"
	ord := "SELECT COUNT(*) FROM orders WHERE o_totalprice < 1000"

	liBefore, liTables := fpQuery(t, li, ep)
	ordBefore, _ := fpQuery(t, ord, ep)
	if len(liTables) != 1 || liTables[0] != "lineitem" {
		t.Fatalf("table set %v, want [lineitem]", liTables)
	}

	ep.Bump("lineitem")
	liAfter, _ := fpQuery(t, li, ep)
	ordAfter, _ := fpQuery(t, ord, ep)
	if liAfter == liBefore {
		t.Error("lineitem write did not change the dependent key")
	}
	if ordAfter != ordBefore {
		t.Error("lineitem write changed an orders-only key")
	}
}

// TestFingerprintRefinementTransparent: buffer insertion by plan refinement
// must not change fingerprints — the refined and unrefined plan of the same
// query share cache entries.
func TestFingerprintRefinementTransparent(t *testing.T) {
	q := `SELECT l_returnflag, COUNT(*) FROM lineitem
	      WHERE l_shipdate <= DATE '1995-06-17' GROUP BY l_returnflag`
	p, err := PlanQuery(q, testDB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, _, ok := plan.Fingerprint(p, nil)
	if !ok {
		t.Fatal("fingerprint refused raw plan")
	}
	refined, _, err := plan.Refine(plan.Clone(p), newTestCodeModel(),
		plan.RefineOptions{CardinalityThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if plan.CountKind(refined, plan.KindBuffer) == 0 {
		t.Skip("refinement added no buffers at this scale")
	}
	ref, _, ok := plan.Fingerprint(refined, nil)
	if !ok {
		t.Fatal("fingerprint refused refined plan")
	}
	if raw != ref {
		t.Errorf("refinement changed the key:\n  %s\n  %s", raw, ref)
	}
}

// TestFingerprintPropertyShuffledConjuncts: randomized property test — a
// conjunction fingerprints identically under every permutation and
// comparison flip, and the permuted queries execute identically.
func TestFingerprintPropertyShuffledConjuncts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type pred struct{ canonical, flipped string }
	pool := []pred{
		{"l_quantity < 30", "30 > l_quantity"},
		{"l_discount <= 0.07", "0.07 >= l_discount"},
		{"l_extendedprice < 50000", "50000 > l_extendedprice"},
		{"l_linenumber <= 4", "4 >= l_linenumber"},
		{"l_tax < 0.05", "0.05 > l_tax"},
	}
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(len(pool)-1)
		idx := rng.Perm(len(pool))[:n]
		base := make([]string, n)
		shuf := make([]string, n)
		for i, j := range idx {
			base[i] = pool[j].canonical
			if rng.Intn(2) == 0 {
				shuf[i] = pool[j].flipped
			} else {
				shuf[i] = pool[j].canonical
			}
		}
		rng.Shuffle(n, func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		qa := "SELECT COUNT(*), SUM(l_quantity) FROM lineitem WHERE " + strings.Join(base, " AND ")
		qb := "SELECT COUNT(*), SUM(l_quantity) FROM lineitem WHERE " + strings.Join(shuf, " AND ")
		ka, _ := fpQuery(t, qa, nil)
		kb, _ := fpQuery(t, qb, nil)
		if ka != kb {
			t.Fatalf("trial %d: permuted conjunction changed the key\n  %q\n  %q\n  %s\n  %s",
				trial, qa, qb, ka, kb)
		}
		if ra, rb := canonRows(runSQL(t, qa, Options{})), canonRows(runSQL(t, qb, Options{})); ra != rb {
			t.Fatalf("trial %d: permuted conjunction changed the result", trial)
		}
	}
}

// FuzzFingerprintNormalization drives the canonicalizer with generated
// predicate sets: any two orderings of the same conjunct set (with random
// comparison flips) must collide, and never collide with a strictly larger
// set.
func FuzzFingerprintNormalization(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(99), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, mask uint8) {
		rng := rand.New(rand.NewSource(seed))
		cols := []string{"l_quantity", "l_linenumber", "l_discount", "l_tax", "l_extendedprice"}
		var preds []string
		for i, c := range cols {
			if mask&(1<<uint(i)) != 0 {
				preds = append(preds, fmt.Sprintf("%s < %d", c, 1+rng.Intn(50)))
			}
		}
		if len(preds) == 0 {
			t.Skip()
		}
		mk := func(ps []string) string {
			return "SELECT COUNT(*) FROM lineitem WHERE " + strings.Join(ps, " AND ")
		}
		shuf := append([]string(nil), preds...)
		rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		ka, _ := fpQuery(t, mk(preds), nil)
		kb, _ := fpQuery(t, mk(shuf), nil)
		if ka != kb {
			t.Fatalf("permutation changed key:\n%s\n%s", ka, kb)
		}
		wider := append(append([]string(nil), preds...), "l_shipmode IS NOT NULL")
		kc, _ := fpQuery(t, mk(wider), nil)
		if kc == ka {
			t.Fatalf("adding a conjunct did not change the key: %s", ka)
		}
	})
}

// TestFingerprintEndToEndReuse is the property test's ground truth at the
// engine level: two alias-renamed spellings of the same aggregation, run
// through a live reuse cache, must yield one miss then one hit with
// identical rows.
func TestFingerprintEndToEndReuse(t *testing.T) {
	cache := reuse.New(1<<20, reuse.NewEpochs(), nil)
	defer cache.Close()

	run := func(q string) []storage.Row {
		t.Helper()
		p, err := PlanQuery(q, testDB, Options{})
		if err != nil {
			t.Fatal(err)
		}
		p, releases := plan.ApplyReuse(p, cache)
		op, err := plan.Build(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := exec.Run(&exec.Context{Catalog: testDB}, op)
		if err != nil {
			t.Fatal(err)
		}
		for _, rel := range releases {
			rel()
		}
		return rows
	}

	a := run("SELECT l_returnflag, SUM(l_quantity) AS q FROM lineitem GROUP BY l_returnflag")
	b := run("SELECT l_returnflag AS flag, SUM(l_quantity) AS total FROM lineitem GROUP BY l_returnflag")
	if canonRows(a) != canonRows(b) {
		t.Fatalf("reused aggregate changed the result:\n%s\n-- vs --\n%s", canonRows(a), canonRows(b))
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}
