package sql

import (
	"fmt"
	"strconv"

	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
)

// toExpr converts an AST expression to a typed executable expression over
// the given scope.
func (a *analyzer) toExpr(n Node, sc *scope) (expr.Expr, error) {
	switch e := n.(type) {
	case *Ident:
		c, err := sc.resolve(e.Table, e.Name)
		if err != nil {
			return nil, err
		}
		display := c.name
		if c.binding != "" {
			display = c.binding + "." + c.name
		}
		return expr.NewColRef(c.pos, display, c.typ), nil

	case *NumberLit:
		if e.IsInt {
			v, err := strconv.ParseInt(e.Text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad integer literal %q", e.Text)
			}
			return expr.NewConst(storage.NewInt(v)), nil
		}
		v, err := strconv.ParseFloat(e.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad numeric literal %q", e.Text)
		}
		return expr.NewConst(storage.NewFloat(v)), nil

	case *StringLit:
		return expr.NewConst(storage.NewString(e.Val)), nil

	case *DateLit:
		d, err := storage.ParseDate(e.Val)
		if err != nil {
			return nil, err
		}
		return expr.NewConst(d), nil

	case *IntervalLit:
		// Intervals surface as day counts; DATE ± BIGINT is native.
		return expr.NewConst(storage.NewInt(e.Days)), nil

	case *NullLit:
		return expr.NewConst(storage.Null), nil

	case *BoolLit:
		return expr.NewConst(storage.NewBool(e.Val)), nil

	case *BinaryExpr:
		l, err := a.toExpr(e.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := a.toExpr(e.R, sc)
		if err != nil {
			return nil, err
		}
		return a.binary(e.Op, l, r)

	case *UnaryExpr:
		inner, err := a.toExpr(e.E, sc)
		if err != nil {
			return nil, err
		}
		if e.Op == "-" {
			return expr.NewNeg(inner)
		}
		return expr.NewNot(inner)

	case *BetweenExpr:
		// Desugar: e >= lo AND e <= hi (negated: NOT (...)).
		v, err := a.toExpr(e.E, sc)
		if err != nil {
			return nil, err
		}
		lo, err := a.toExpr(e.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := a.toExpr(e.Hi, sc)
		if err != nil {
			return nil, err
		}
		ge, err := a.binary(">=", v, lo)
		if err != nil {
			return nil, err
		}
		le, err := a.binary("<=", v, hi)
		if err != nil {
			return nil, err
		}
		both, err := expr.NewBinary(expr.OpAnd, ge, le)
		if err != nil {
			return nil, err
		}
		if e.Negate {
			return expr.NewNot(both)
		}
		return both, nil

	case *LikeExpr:
		v, err := a.toExpr(e.E, sc)
		if err != nil {
			return nil, err
		}
		return expr.NewLike(v, e.Pattern, e.Negate)

	case *IsNullExpr:
		v, err := a.toExpr(e.E, sc)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{E: v, Negate: e.Negate}, nil

	case *CaseExpr:
		whens := make([]expr.When, 0, len(e.Whens))
		for _, w := range e.Whens {
			cond, err := a.toExpr(w.Cond, sc)
			if err != nil {
				return nil, err
			}
			then, err := a.toExpr(w.Then, sc)
			if err != nil {
				return nil, err
			}
			whens = append(whens, expr.When{Cond: cond, Then: then})
		}
		var elseExpr expr.Expr
		if e.Else != nil {
			var err error
			elseExpr, err = a.toExpr(e.Else, sc)
			if err != nil {
				return nil, err
			}
		}
		return expr.NewCase(whens, elseExpr)

	case *InExpr:
		// Desugar to an OR chain of equalities (NOT IN → NOT (…)).
		v, err := a.toExpr(e.E, sc)
		if err != nil {
			return nil, err
		}
		var out expr.Expr
		for _, item := range e.List {
			iv, err := a.toExpr(item, sc)
			if err != nil {
				return nil, err
			}
			eq, err := a.binary("=", v, iv)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = eq
			} else {
				out, err = expr.NewBinary(expr.OpOr, out, eq)
				if err != nil {
					return nil, err
				}
			}
		}
		if out == nil {
			return nil, fmt.Errorf("sql: empty IN list")
		}
		if e.Negate {
			return expr.NewNot(out)
		}
		return out, nil

	case *FuncCall:
		return nil, fmt.Errorf("sql: aggregate %s not allowed here", e.Name)

	default:
		return nil, fmt.Errorf("sql: unsupported expression")
	}
}

// binary builds a type-checked binary expression, coercing string literals
// to dates when the other side is a date (so `l_shipdate <= '1998-09-02'`
// works without the DATE keyword).
func (a *analyzer) binary(op string, l, r expr.Expr) (expr.Expr, error) {
	l, r = coerceDate(l, r)
	var bop expr.BinOp
	switch op {
	case "+":
		bop = expr.OpAdd
	case "-":
		bop = expr.OpSub
	case "*":
		bop = expr.OpMul
	case "/":
		bop = expr.OpDiv
	case "=":
		bop = expr.OpEq
	case "<>":
		bop = expr.OpNe
	case "<":
		bop = expr.OpLt
	case "<=":
		bop = expr.OpLe
	case ">":
		bop = expr.OpGt
	case ">=":
		bop = expr.OpGe
	case "AND":
		bop = expr.OpAnd
	case "OR":
		bop = expr.OpOr
	default:
		return nil, fmt.Errorf("sql: unknown operator %q", op)
	}
	return expr.NewBinary(bop, l, r)
}

// coerceDate rewrites a string constant opposite a date expression into a
// date constant, when it parses as one.
func coerceDate(l, r expr.Expr) (expr.Expr, expr.Expr) {
	try := func(side expr.Expr, other expr.Expr) expr.Expr {
		c, ok := side.(*expr.Const)
		if !ok || c.Val.Kind != storage.TypeString || other.Type() != storage.TypeDate {
			return side
		}
		if d, err := storage.ParseDate(c.Val.S); err == nil {
			return expr.NewConst(d)
		}
		return side
	}
	return try(l, r), try(r, l)
}
