package sql

import "strings"

// SelectStmt is the parsed form of a SELECT statement.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Joins   []JoinClause
	Where   Node
	GroupBy []Node
	OrderBy []OrderItem
	// Limit is -1 when absent.
	Limit int
}

// SelectItem is one target-list entry.
type SelectItem struct {
	// Star marks SELECT *.
	Star bool
	Expr Node
	// Alias is the AS name ("" when absent).
	Alias string
}

// TableRef names a FROM relation with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name the relation is referenced by.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is an explicit JOIN … ON ….
type JoinClause struct {
	Table TableRef
	On    Node
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Node
	Desc bool
}

// Node is an AST expression node.
type Node interface {
	astNode()
}

// Ident is a possibly-qualified column reference.
type Ident struct {
	Table string // "" when unqualified
	Name  string
}

// NumberLit is an integer or decimal literal.
type NumberLit struct {
	Text  string
	IsInt bool
}

// StringLit is a quoted string literal.
type StringLit struct {
	Val string
}

// DateLit is DATE 'yyyy-mm-dd'.
type DateLit struct {
	Val string
}

// IntervalLit is INTERVAL 'n' DAY|MONTH|YEAR, normalized to days.
type IntervalLit struct {
	Days int64
}

// NullLit is the NULL keyword.
type NullLit struct{}

// BoolLit is TRUE or FALSE.
type BoolLit struct {
	Val bool
}

// BinaryExpr applies a binary operator (arithmetic, comparison, AND, OR).
type BinaryExpr struct {
	Op   string // "+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"
	L, R Node
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT", "-"
	E  Node
}

// BetweenExpr is X [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	E      Node
	Lo, Hi Node
	Negate bool
}

// LikeExpr is X [NOT] LIKE 'pattern'.
type LikeExpr struct {
	E       Node
	Pattern string
	Negate  bool
}

// IsNullExpr is X IS [NOT] NULL.
type IsNullExpr struct {
	E      Node
	Negate bool
}

// FuncCall is an aggregate call: COUNT/SUM/AVG/MIN/MAX.
type FuncCall struct {
	Name string // upper-case
	Star bool   // COUNT(*)
	Arg  Node   // nil for COUNT(*)
}

// CaseExpr is a searched CASE.
type CaseExpr struct {
	Whens []WhenClause
	Else  Node // nil when absent
}

// WhenClause is one WHEN … THEN … arm.
type WhenClause struct {
	Cond Node
	Then Node
}

// InExpr is X [NOT] IN (v1, v2, …).
type InExpr struct {
	E      Node
	List   []Node
	Negate bool
}

func (*Ident) astNode()       {}
func (*NumberLit) astNode()   {}
func (*StringLit) astNode()   {}
func (*DateLit) astNode()     {}
func (*IntervalLit) astNode() {}
func (*NullLit) astNode()     {}
func (*BoolLit) astNode()     {}
func (*BinaryExpr) astNode()  {}
func (*UnaryExpr) astNode()   {}
func (*BetweenExpr) astNode() {}
func (*LikeExpr) astNode()    {}
func (*IsNullExpr) astNode()  {}
func (*FuncCall) astNode()    {}
func (*CaseExpr) astNode()    {}
func (*InExpr) astNode()      {}

// NodeString renders an AST expression exactly as the analyzer does for
// display names and deduplication keys. The distributed planner mirrors the
// analyzer's aggregate rewrite and must produce identical output column
// names, so the rendering is exported rather than duplicated.
func NodeString(n Node) string { return astString(n) }

// ContainsAggregate reports whether an aggregate call appears anywhere in
// the expression (exported for the distributed planner's scatter analysis).
func ContainsAggregate(n Node) bool { return containsAggregate(n) }

// containsAggregate reports whether an aggregate call appears anywhere in
// the expression.
func containsAggregate(n Node) bool {
	switch e := n.(type) {
	case *FuncCall:
		return true
	case *BinaryExpr:
		return containsAggregate(e.L) || containsAggregate(e.R)
	case *UnaryExpr:
		return containsAggregate(e.E)
	case *BetweenExpr:
		return containsAggregate(e.E) || containsAggregate(e.Lo) || containsAggregate(e.Hi)
	case *LikeExpr:
		return containsAggregate(e.E)
	case *IsNullExpr:
		return containsAggregate(e.E)
	case *CaseExpr:
		for _, w := range e.Whens {
			if containsAggregate(w.Cond) || containsAggregate(w.Then) {
				return true
			}
		}
		return e.Else != nil && containsAggregate(e.Else)
	case *InExpr:
		if containsAggregate(e.E) {
			return true
		}
		for _, item := range e.List {
			if containsAggregate(item) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// astString renders an AST expression for display names.
func astString(n Node) string {
	switch e := n.(type) {
	case *Ident:
		if e.Table != "" {
			return e.Table + "." + e.Name
		}
		return e.Name
	case *NumberLit:
		return e.Text
	case *StringLit:
		return "'" + e.Val + "'"
	case *DateLit:
		return "date '" + e.Val + "'"
	case *IntervalLit:
		return "interval"
	case *NullLit:
		return "NULL"
	case *BoolLit:
		if e.Val {
			return "true"
		}
		return "false"
	case *BinaryExpr:
		return "(" + astString(e.L) + " " + e.Op + " " + astString(e.R) + ")"
	case *UnaryExpr:
		return e.Op + " " + astString(e.E)
	case *BetweenExpr:
		return astString(e.E) + " BETWEEN " + astString(e.Lo) + " AND " + astString(e.Hi)
	case *LikeExpr:
		return astString(e.E) + " LIKE '" + e.Pattern + "'"
	case *IsNullExpr:
		return astString(e.E) + " IS NULL"
	case *FuncCall:
		if e.Star {
			return "count(*)"
		}
		return strings.ToLower(e.Name) + "(" + astString(e.Arg) + ")"
	case *CaseExpr:
		var b strings.Builder
		b.WriteString("CASE")
		for _, w := range e.Whens {
			b.WriteString(" WHEN " + astString(w.Cond) + " THEN " + astString(w.Then))
		}
		if e.Else != nil {
			b.WriteString(" ELSE " + astString(e.Else))
		}
		b.WriteString(" END")
		return b.String()
	case *InExpr:
		parts := make([]string, len(e.List))
		for i, item := range e.List {
			parts[i] = astString(item)
		}
		op := " IN ("
		if e.Negate {
			op = " NOT IN ("
		}
		return astString(e.E) + op + strings.Join(parts, ", ") + ")"
	default:
		return "?"
	}
}
