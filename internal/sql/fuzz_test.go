package sql

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics: any input either parses or
// returns an error. Run with `go test -fuzz FuzzParse ./internal/sql` to
// explore; as a plain test it exercises the seed corpus.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT COUNT(*), SUM(a * (1 - b)) FROM t WHERE c <= DATE '1998-09-02' GROUP BY d ORDER BY 1 DESC LIMIT 5",
		"SELECT CASE WHEN a IN (1, 2) THEN 'x' ELSE 'y' END FROM t, u WHERE t.k = u.k",
		"SELECT a FROM t WHERE s LIKE 'PROMO%' AND b NOT BETWEEN 1 AND 2 OR c IS NOT NULL",
		"SELECT -a + b * (c / d) FROM t JOIN u ON t.x = u.y",
		"SELECT 'it''s' FROM t -- comment",
		"SELECT",
		"((((",
		"SELECT CASE",
		"SELECT a FROM t WHERE d < DATE",
		"'",
		"SELECT é FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Must not panic; errors are fine, but every error must locate
		// itself with a byte offset so clients can point at the input.
		stmt, err := Parse(input)
		if err == nil && stmt == nil {
			t.Error("nil statement without error")
		}
		if err != nil && !strings.Contains(err.Error(), "offset") {
			t.Errorf("parse error carries no offset: %v", err)
		}
		if err == nil {
			// A parsed statement must render without panicking either.
			for _, item := range stmt.Items {
				if !item.Star {
					_ = astString(item.Expr)
				}
			}
			if stmt.Where != nil {
				_ = astString(stmt.Where)
			}
		}
	})
}

// FuzzPlanQuery additionally pushes parsed statements through the analyzer
// against the test catalog: planning must never panic.
func FuzzPlanQuery(f *testing.F) {
	seeds := []string{
		"SELECT COUNT(*) FROM lineitem",
		"SELECT l_orderkey FROM lineitem WHERE l_quantity < 10 ORDER BY l_orderkey LIMIT 3",
		"SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey",
		"SELECT l_returnflag, SUM(l_quantity) FROM lineitem GROUP BY l_returnflag",
		"SELECT nosuch FROM lineitem",
		"SELECT * FROM nosuchtable",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = PlanQuery(input, testDB, Options{})
	})
}
