package sql

import "sort"

// Tables returns the sorted distinct base tables a SELECT statement reads
// (FROM list plus explicit JOINs). ok is false when the statement does not
// parse — callers treating the table set as an invalidation tag should then
// fall back to depending on everything.
func Tables(query string) (tables []string, ok bool) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, false
	}
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			tables = append(tables, name)
		}
	}
	for _, ref := range stmt.From {
		add(ref.Name)
	}
	for _, j := range stmt.Joins {
		add(j.Table.Name)
	}
	sort.Strings(tables)
	return tables, true
}

// InsertTarget returns the table an INSERT statement writes to. ok is false
// when the statement does not parse as an INSERT — callers invalidating by
// table should then invalidate everything.
func InsertTarget(query string) (string, bool) {
	stmt, err := ParseInsert(query)
	if err != nil {
		return "", false
	}
	return stmt.Table, true
}
