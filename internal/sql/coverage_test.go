package sql

import (
	"strings"
	"testing"

	"bufferdb/internal/storage"
)

// TestPostAggregateArithmetic covers select-list expressions computed over
// aggregate results (SUM(a)/SUM(b), constants, negation).
func TestPostAggregateArithmetic(t *testing.T) {
	rows := runSQL(t, `
		SELECT SUM(l_extendedprice * l_discount) / SUM(l_extendedprice) AS eff_discount,
		       100 * COUNT(*) AS hundredfold,
		       -MIN(l_quantity) AS neg_min,
		       MAX(l_quantity) - MIN(l_quantity) AS spread
		FROM lineitem`, Options{})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r[0].F <= 0 || r[0].F >= 0.2 {
		t.Errorf("effective discount = %v", r[0].F)
	}
	li, _ := testDB.Table("lineitem")
	if r[1].I != int64(100*li.NumRows()) {
		t.Errorf("hundredfold = %v", r[1])
	}
	if r[2].F != -1 { // min quantity is 1
		t.Errorf("neg_min = %v", r[2])
	}
	if r[3].F != 49 { // quantities span 1..50
		t.Errorf("spread = %v", r[3])
	}
}

func TestGroupKeyInArithmetic(t *testing.T) {
	// A group-by column used inside a select-list expression.
	rows := runSQL(t, `
		SELECT l_linenumber * 10 AS tens, COUNT(*) AS n
		FROM lineitem
		GROUP BY l_linenumber
		ORDER BY tens`, Options{})
	if len(rows) != 7 {
		t.Fatalf("groups = %d, want 7 line numbers", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64((i+1)*10) {
			t.Errorf("tens[%d] = %v", i, r[0])
		}
	}
}

func TestPostAggregateErrors(t *testing.T) {
	bad := []string{
		// Raw column inside an aggregate query, not grouped.
		"SELECT SUM(l_quantity) + l_tax FROM lineitem",
		// LIKE over aggregation output is unsupported.
		"SELECT COUNT(*) FROM lineitem GROUP BY l_returnflag ORDER BY missing_col",
	}
	for _, q := range bad {
		if _, err := PlanQuery(q, testDB, Options{}); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

func TestWhereConstructsEndToEnd(t *testing.T) {
	li, _ := testDB.Table("lineitem")
	sch := li.Schema()
	qtyIdx, _ := sch.ColumnIndex("", "l_quantity")
	modeIdx, _ := sch.ColumnIndex("", "l_shipmode")

	count := func(pred func(storage.Row) bool) int64 {
		n := int64(0)
		for _, r := range li.Rows() {
			if pred(r) {
				n++
			}
		}
		return n
	}

	cases := []struct {
		query string
		want  int64
	}{
		{
			"SELECT COUNT(*) FROM lineitem WHERE l_quantity NOT BETWEEN 10 AND 40",
			count(func(r storage.Row) bool { return r[qtyIdx].F < 10 || r[qtyIdx].F > 40 }),
		},
		{
			"SELECT COUNT(*) FROM lineitem WHERE NOT (l_quantity < 25)",
			count(func(r storage.Row) bool { return r[qtyIdx].F >= 25 }),
		},
		{
			"SELECT COUNT(*) FROM lineitem WHERE l_shipmode = 'AIR' OR l_shipmode = 'RAIL'",
			count(func(r storage.Row) bool { return r[modeIdx].S == "AIR" || r[modeIdx].S == "RAIL" }),
		},
		{
			"SELECT COUNT(*) FROM lineitem WHERE l_comment IS NOT NULL",
			int64(li.NumRows()),
		},
		{
			"SELECT COUNT(*) FROM lineitem WHERE l_comment IS NULL",
			0,
		},
		{
			"SELECT COUNT(*) FROM lineitem WHERE l_shipmode NOT LIKE '%AIR%'",
			count(func(r storage.Row) bool { return !strings.Contains(r[modeIdx].S, "AIR") }),
		},
		{
			"SELECT COUNT(*) FROM lineitem WHERE -l_quantity < -49",
			count(func(r storage.Row) bool { return r[qtyIdx].F > 49 }),
		},
		{
			"SELECT COUNT(*) FROM lineitem WHERE l_quantity <> 1",
			count(func(r storage.Row) bool { return r[qtyIdx].F != 1 }),
		},
		{
			"SELECT COUNT(*) FROM lineitem WHERE TRUE",
			int64(li.NumRows()),
		},
		{
			"SELECT COUNT(*) FROM lineitem WHERE FALSE",
			0,
		},
	}
	for _, c := range cases {
		rows := runSQL(t, c.query, Options{})
		if rows[0][0].I != c.want {
			t.Errorf("%q = %d, want %d", c.query, rows[0][0].I, c.want)
		}
	}
}

func TestAstStringCoverage(t *testing.T) {
	// Render every AST node kind through a parsed statement.
	stmt, err := Parse(`SELECT -SUM(a), COUNT(*) FROM t
		WHERE a BETWEEN 1 AND 2 AND s LIKE 'x%' AND s IS NULL
		  AND d < DATE '1995-01-01' - INTERVAL '7' DAY
		  AND b = TRUE AND c = NULL AND q.z <> 1.5 AND NOT (a = 1)`)
	if err != nil {
		t.Fatal(err)
	}
	full := astString(stmt.Where) + astString(stmt.Items[0].Expr) + astString(stmt.Items[1].Expr)
	for _, want := range []string{
		"BETWEEN", "LIKE", "IS NULL", "date '1995-01-01'", "interval",
		"true", "NULL", "q.z", "1.5", "NOT", "sum(a)", "count(*)", "-",
	} {
		if !strings.Contains(full, want) {
			t.Errorf("astString output missing %q in %q", want, full)
		}
	}
}

func TestOrderByOrdinalAndAlias(t *testing.T) {
	byOrdinal := runSQL(t, `
		SELECT l_returnflag, COUNT(*) AS n FROM lineitem
		GROUP BY l_returnflag ORDER BY 2 DESC`, Options{})
	for i := 1; i < len(byOrdinal); i++ {
		if byOrdinal[i-1][1].I < byOrdinal[i][1].I {
			t.Fatal("ORDER BY ordinal DESC violated")
		}
	}
	// Bad ordinal.
	if _, err := PlanQuery("SELECT COUNT(*) FROM lineitem ORDER BY 5", testDB, Options{}); err == nil {
		t.Error("out-of-range ordinal accepted")
	}
}

func TestSelectStarWithJoinSchema(t *testing.T) {
	rows := runSQL(t, `SELECT * FROM nation, region WHERE n_regionkey = r_regionkey`, Options{})
	nation, _ := testDB.Table("nation")
	region, _ := testDB.Table("region")
	if len(rows) != nation.NumRows() {
		t.Fatalf("rows = %d", len(rows))
	}
	if len(rows[0]) != len(nation.Schema())+len(region.Schema()) {
		t.Errorf("star join width = %d", len(rows[0]))
	}
}

func TestQualifiedAliases(t *testing.T) {
	rows := runSQL(t, `
		SELECT o.o_orderkey, COUNT(*) AS n
		FROM orders AS o, lineitem l
		WHERE o.o_orderkey = l.l_orderkey AND o.o_orderkey < 10
		GROUP BY o.o_orderkey
		ORDER BY o.o_orderkey`, Options{})
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i+1) {
			t.Errorf("orderkey[%d] = %v", i, r[0])
		}
	}
}

func TestMixedStarAndExprRejected(t *testing.T) {
	if _, err := PlanQuery("SELECT *, l_orderkey FROM lineitem", testDB, Options{}); err == nil {
		t.Error("mixed star accepted")
	}
}
