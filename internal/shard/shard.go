// Package shard defines bufferdb's hash-sharding vocabulary: which tables
// are partitioned across nodes, on which column, and how a row's shard is
// chosen. The same Map drives both sides of a distributed deployment — a
// shard node filters its catalog down to its slice at load time, and the
// coordinator consults the identical Map to decide whether a query's joins
// are co-located and therefore scatterable.
//
// Sharding is by hash of one column per partitioned table; every table
// without a Placement is replicated in full on every shard. The default
// TPC-H map shards the two big tables on the order key — lineitem rows and
// their orders rows land on the same shard, so order-key equi-joins run
// entirely shard-local.
package shard

import (
	"fmt"
	"sort"

	"bufferdb/internal/btree"
	"bufferdb/internal/storage"
)

// Placement says how one table is distributed. The zero value (Column "")
// means the table is replicated on every shard.
type Placement struct {
	// Column is the hash-sharding column; "" replicates the table.
	Column string
}

// Map assigns a Placement to each table name. Tables absent from the map
// are replicated.
type Map map[string]Placement

// DefaultTPCH is the standard placement for the TPC-H schema: lineitem and
// orders hash-shard on the order key (co-located for the join), everything
// else — the small dimension tables — replicates.
func DefaultTPCH() Map {
	return Map{
		"lineitem": {Column: "l_orderkey"},
		"orders":   {Column: "o_orderkey"},
	}
}

// ClampRF bounds a replication factor to [1, nodes]: a factor below 1
// means one copy per slice, and a fleet of n nodes cannot hold more than n
// distinct copies of a slice.
func ClampRF(rf, nodes int) int {
	if rf < 1 {
		return 1
	}
	if rf > nodes {
		return nodes
	}
	return rf
}

// Replicas returns the node indices hosting slice s in an n-node fleet at
// replication factor rf, in priority order: replica r of slice s lives on
// node (s+r) mod n, so node s is the slice's primary and the copies rotate
// onto the following nodes. With rf == 1 this degenerates to the classic
// slice-i-lives-on-node-i layout.
func Replicas(slice, nodes, rf int) []int {
	rf = ClampRF(rf, nodes)
	out := make([]int, rf)
	for r := 0; r < rf; r++ {
		out[r] = (slice + r) % nodes
	}
	return out
}

// Slices returns the slice indices node j hosts under the rotated layout,
// primary slice first: node j holds slice j as primary plus the rf-1
// preceding slices as replicas.
func Slices(node, nodes, rf int) []int {
	rf = ClampRF(rf, nodes)
	out := make([]int, rf)
	for r := 0; r < rf; r++ {
		out[r] = ((node-r)%nodes + nodes) % nodes
	}
	return out
}

// ShardColumn returns the sharding column for a table, or "" if the table
// is replicated.
func (m Map) ShardColumn(table string) string { return m[table].Column }

// Sharded reports whether the table is hash-partitioned.
func (m Map) Sharded(table string) bool { return m[table].Column != "" }

// Tables returns the sharded table names in sorted order.
func (m Map) Tables() []string {
	var out []string
	for t, p := range m {
		if p.Column != "" {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// HashValue hashes one column value with FNV-1a over its canonical byte
// rendering. Both tiers must agree on this function exactly — it decides
// which rows a shard owns.
func HashValue(v storage.Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	step := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	step(byte(v.Kind))
	switch v.Kind {
	case storage.TypeString:
		for i := 0; i < len(v.S); i++ {
			step(v.S[i])
		}
	case storage.TypeFloat64:
		// Floats hash via their string rendering so that integral floats
		// and the same value re-parsed hash alike.
		s := v.String()
		for i := 0; i < len(s); i++ {
			step(s[i])
		}
	default:
		u := uint64(v.I)
		for i := 0; i < 8; i++ {
			step(byte(u >> (8 * i)))
		}
	}
	return h
}

// ShardOf maps a sharding-column value to its owning shard among n.
func ShardOf(v storage.Value, n int) int {
	if n <= 1 {
		return 0
	}
	return int(HashValue(v) % uint64(n))
}

// Filter reduces a full catalog to shard idx-of-n under the map: replicated
// tables are shared by reference (their heaps and indexes are immutable),
// sharded tables are rebuilt holding only the rows ShardOf assigns to idx,
// with their indexes reconstructed over the surviving rows. Row order
// within a shard preserves the source order, so a fixed seed yields the
// same shard slices on every node.
func Filter(cat *storage.Catalog, m Map, idx, n int) (*storage.Catalog, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", n)
	}
	if idx < 0 || idx >= n {
		return nil, fmt.Errorf("shard: shard index %d outside [0,%d)", idx, n)
	}
	out := storage.NewCatalog()
	for _, t := range cat.Tables() {
		col := m.ShardColumn(t.Name())
		if col == "" {
			out.MustAdd(t)
			continue
		}
		pos, err := t.Schema().ColumnIndex("", col)
		if err != nil || pos < 0 {
			return nil, fmt.Errorf("shard: table %s has no shard column %s: %v", t.Name(), col, err)
		}
		st := storage.NewTable(t.Name(), t.Schema())
		for _, row := range t.Rows() {
			if ShardOf(row[pos], n) == idx {
				st.MustAppend(row)
			}
		}
		for _, im := range t.Indexes() {
			cpos, err := t.Schema().ColumnIndex("", im.Column)
			if err != nil || cpos < 0 {
				return nil, fmt.Errorf("shard: cannot rebuild index %s: %v", im.Name, err)
			}
			tree := btree.New()
			for rid, row := range st.Rows() {
				tree.Insert(row[cpos].I, rid)
			}
			if err := st.AddIndex(&storage.IndexMeta{
				Name:   im.Name,
				Column: im.Column,
				Unique: im.Unique,
				Search: tree,
			}); err != nil {
				return nil, err
			}
		}
		out.MustAdd(st)
	}
	return out, nil
}
