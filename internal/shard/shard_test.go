package shard

import (
	"sort"
	"testing"
)

func TestClampRF(t *testing.T) {
	cases := []struct{ rf, nodes, want int }{
		{0, 3, 1}, {-5, 3, 1}, {1, 3, 1}, {2, 3, 2}, {3, 3, 3}, {4, 3, 3}, {2, 1, 1},
	}
	for _, c := range cases {
		if got := ClampRF(c.rf, c.nodes); got != c.want {
			t.Errorf("ClampRF(%d,%d) = %d, want %d", c.rf, c.nodes, got, c.want)
		}
	}
}

func TestReplicaPlacement(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 5, 8} {
		for rf := 1; rf <= nodes+1; rf++ {
			eff := ClampRF(rf, nodes)
			// Every slice must have exactly eff distinct replicas, with the
			// primary on node == slice.
			hosted := make(map[int][]int) // node -> slices
			for s := 0; s < nodes; s++ {
				reps := Replicas(s, nodes, rf)
				if len(reps) != eff {
					t.Fatalf("nodes=%d rf=%d: slice %d has %d replicas, want %d", nodes, rf, s, len(reps), eff)
				}
				if reps[0] != s {
					t.Fatalf("nodes=%d rf=%d: slice %d primary on node %d, want %d", nodes, rf, s, reps[0], s)
				}
				seen := make(map[int]bool)
				for _, n := range reps {
					if n < 0 || n >= nodes {
						t.Fatalf("nodes=%d rf=%d: slice %d replica node %d out of range", nodes, rf, s, n)
					}
					if seen[n] {
						t.Fatalf("nodes=%d rf=%d: slice %d lists node %d twice", nodes, rf, s, n)
					}
					seen[n] = true
					hosted[n] = append(hosted[n], s)
				}
			}
			// Every node must host exactly eff slices (balanced layout).
			for n := 0; n < nodes; n++ {
				if len(hosted[n]) != eff {
					t.Fatalf("nodes=%d rf=%d: node %d hosts %d slices, want %d", nodes, rf, n, len(hosted[n]), eff)
				}
			}
			// Slices() must agree with the transpose of Replicas().
			for n := 0; n < nodes; n++ {
				got := Slices(n, nodes, rf)
				if got[0] != n {
					t.Fatalf("nodes=%d rf=%d: node %d primary slice %d, want %d", nodes, rf, n, got[0], n)
				}
				want := append([]int(nil), hosted[n]...)
				gs := append([]int(nil), got...)
				sort.Ints(want)
				sort.Ints(gs)
				for i := range want {
					if gs[i] != want[i] {
						t.Fatalf("nodes=%d rf=%d: node %d Slices=%v, transpose=%v", nodes, rf, n, got, hosted[n])
					}
				}
			}
		}
	}
}
