package plan

import (
	"fmt"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/vec"
)

// Engine selects the execution model a plan compiles to.
type Engine uint8

const (
	// EngineVolcano compiles to the tuple-at-a-time iterators of
	// internal/exec (plus any Buffer nodes the refinement pass inserted) —
	// the paper's side of the §2 trade-off.
	EngineVolcano Engine = iota
	// EngineVec compiles to the block-oriented operators of internal/vec
	// where batch variants exist, falling back to Volcano operators behind
	// FromVolcano/ToVolcano adapters everywhere else — the alternative the
	// paper's §2 positions buffering against.
	EngineVec
)

// String returns the engine's display name.
func (e Engine) String() string {
	switch e {
	case EngineVolcano:
		return "volcano"
	case EngineVec:
		return "vec"
	default:
		return fmt.Sprintf("Engine(%d)", uint8(e))
	}
}

// Compile compiles a plan into an executable (Volcano-rooted) operator tree
// for the selected engine. cm may be nil for uninstrumented execution.
// With EngineVec the root is a ToVolcano adapter whenever the top of the
// plan has a batch variant, so callers drive every compiled plan through
// the same exec.Run loop.
func Compile(n *Node, cm *codemodel.Catalog, engine Engine) (exec.Operator, error) {
	switch engine {
	case EngineVolcano:
		return Build(n, cm)
	case EngineVec:
		return compileMixed(n, cm)
	default:
		return nil, fmt.Errorf("plan: unknown engine %v", engine)
	}
}

// vecCapable reports whether a node has a block-oriented variant. A Buffer
// node is transparent: batching is the vec engine's native mode, so the
// refinement pass's buffers dissolve into the batch operator below them.
func vecCapable(n *Node) bool {
	switch n.Kind {
	case KindSeqScan, KindProject, KindAggregate, KindLimit:
		return true
	case KindHashJoin:
		return len(n.Children) == 2 && n.Children[1].Kind == KindHashBuild
	case KindBuffer, KindExchange:
		return vecCapable(n.Children[0])
	default:
		return false
	}
}

// compileVec compiles a vec-capable node into its batch operator, adapting
// non-capable children behind FromVolcano.
func compileVec(n *Node, cm *codemodel.Catalog) (vec.Operator, error) {
	mod, err := moduleFor(n, cm)
	if err != nil {
		return nil, err
	}
	switch n.Kind {
	case KindBuffer:
		return compileVec(n.Children[0], cm)

	case KindSeqScan:
		return vec.NewSeqScanSpan(n.Table, n.Filter, mod, 0, n.ScanSpan), nil

	case KindProject:
		child, err := vecChild(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		return vec.NewProject(child, n.Projections, n.ProjNames, mod)

	case KindAggregate:
		child, err := vecChild(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		return vec.NewHashAggregate(child, n.GroupBy, n.Aggs, mod, 0)

	case KindLimit:
		child, err := vecChild(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		return vec.NewLimit(child, n.LimitN), nil

	case KindHashJoin:
		build := n.Children[1]
		if build.Kind != KindHashBuild {
			return nil, fmt.Errorf("plan: hash join inner must be a HashBuild node, got %v", build.Kind)
		}
		buildMod, err := moduleFor(build, cm)
		if err != nil {
			return nil, err
		}
		outer, err := vecChild(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		inner, err := vecChild(build.Children[0], cm)
		if err != nil {
			return nil, err
		}
		return vec.NewHashJoin(outer, inner, n.OuterKey, build.InnerKey, buildMod, mod, 0), nil

	case KindExchange:
		subtrees := PartitionSubtrees(n)
		parts := make([]vec.Operator, len(subtrees))
		for i, p := range subtrees {
			op, err := compileVec(p, cm)
			if err != nil {
				return nil, err
			}
			parts[i] = op
		}
		return vec.NewExchange(parts)

	default:
		return nil, fmt.Errorf("plan: %v has no batch variant", n.Kind)
	}
}

// vecChild compiles a child for a batch operator: natively when capable,
// otherwise the Volcano subtree behind a FromVolcano adapter (modeled with
// the buffer module — the adapter is a buffer refill loop).
func vecChild(n *Node, cm *codemodel.Catalog) (vec.Operator, error) {
	if vecCapable(n) {
		return compileVec(n, cm)
	}
	op, err := compileMixed(n, cm)
	if err != nil {
		return nil, err
	}
	bufMod, err := moduleFor(&Node{Kind: KindBuffer}, cm)
	if err != nil {
		return nil, err
	}
	return vec.NewFromVolcano(op, 0, bufMod), nil
}

// compileMixed compiles a node for the vec engine from the Volcano side:
// capable subtrees become batch operators behind a ToVolcano adapter,
// everything else builds its Volcano operator with children compiled the
// same way.
func compileMixed(n *Node, cm *codemodel.Catalog) (exec.Operator, error) {
	if vecCapable(n) {
		op, err := compileVec(n, cm)
		if err != nil {
			return nil, err
		}
		return vec.NewToVolcano(op), nil
	}
	return buildNode(n, cm, func(c *Node) (exec.Operator, error) {
		return compileMixed(c, cm)
	})
}
