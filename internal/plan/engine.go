package plan

import (
	"fmt"
	"strings"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/vec"
)

// Engine selects the execution model a plan compiles to.
type Engine uint8

const (
	// EngineVolcano compiles to the tuple-at-a-time iterators of
	// internal/exec (plus any Buffer nodes the refinement pass inserted) —
	// the paper's side of the §2 trade-off.
	EngineVolcano Engine = iota
	// EngineVec compiles to the block-oriented operators of internal/vec
	// where batch variants exist, falling back to Volcano operators behind
	// FromVolcano/ToVolcano adapters everywhere else — the alternative the
	// paper's §2 positions buffering against.
	EngineVec
	// EnginePush compiles each execution group into a single push-fused
	// loop (internal/push): producer-driven consumer callbacks with no
	// per-tuple virtual Next, materializing only at pipeline breakers and
	// falling back to Volcano operators behind adapter sources — the
	// data-centric-compilation point of the same trade-off.
	EnginePush
)

// String returns the engine's display name. It is one half of the
// canonical name round-trip; ParseEngine is the other. No other code may
// compare engine-name strings.
func (e Engine) String() string {
	switch e {
	case EngineVolcano:
		return "volcano"
	case EngineVec:
		return "vec"
	case EnginePush:
		return "push"
	default:
		return fmt.Sprintf("Engine(%d)", uint8(e))
	}
}

// Engines enumerates every selectable engine in display order. Adding an
// engine here (plus its String case) is all a new engine needs for every
// name-parsing consumer — CLI flags, daemon config, the wire protocol and
// the facade — to accept it.
func Engines() []Engine {
	return []Engine{EngineVolcano, EngineVec, EnginePush}
}

// EngineNames returns the display names of every selectable engine.
func EngineNames() []string {
	es := Engines()
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.String()
	}
	return names
}

// ParseEngine resolves an engine display name. It is the single
// engine-name parser in the tree: every consumer (CLI flags, daemon
// config, wire options, the facade) routes through it, so the valid set
// has exactly one definition. Matching goes through String so no string
// literal is ever compared twice.
func ParseEngine(name string) (Engine, error) {
	for _, e := range Engines() {
		if name == e.String() {
			return e, nil
		}
	}
	return 0, fmt.Errorf("plan: unknown engine %q (valid: %s)", name, strings.Join(EngineNames(), ", "))
}

// Compile compiles a plan into an executable (Volcano-rooted) operator tree
// for the selected engine. cm may be nil for uninstrumented execution.
// With EngineVec the root is a ToVolcano adapter whenever the top of the
// plan has a batch variant, so callers drive every compiled plan through
// the same exec.Run loop.
func Compile(n *Node, cm *codemodel.Catalog, engine Engine) (exec.Operator, error) {
	switch engine {
	case EngineVolcano:
		return Build(n, cm)
	case EngineVec:
		return (&vecCompiler{cm: cm}).mixed(n)
	case EnginePush:
		return (&pushCompiler{cm: cm}).mixed(n)
	default:
		return nil, fmt.Errorf("plan: unknown engine %v", engine)
	}
}

// CompiledPlan couples an executable operator tree with the mapping from
// each compiled operator instance back to the plan node it implements —
// the bridge EXPLAIN ANALYZE uses to join runtime stats with plan shape
// (execution group, buffer size, estimates).
type CompiledPlan struct {
	Root exec.Operator
	// Nodes maps operator instances (exec.Operator, vec.Operator or an
	// adapter) to their plan node. Exchange partitions map to the cloned
	// partition subtree nodes, which carry the same kinds and groups.
	Nodes map[any]*Node
}

// CompileAnalyzed compiles like Compile while recording the operator→node
// mapping needed to annotate runtime stats onto the plan tree.
func CompileAnalyzed(n *Node, cm *codemodel.Catalog, engine Engine) (*CompiledPlan, error) {
	cp := &CompiledPlan{Nodes: make(map[any]*Node)}
	record := func(op any, node *Node) { cp.Nodes[op] = node }
	var err error
	switch engine {
	case EngineVolcano:
		cp.Root, err = buildRecorded(n, cm, record)
	case EngineVec:
		cp.Root, err = (&vecCompiler{cm: cm, record: record}).mixed(n)
	case EnginePush:
		cp.Root, err = (&pushCompiler{cm: cm, record: record}).mixed(n)
	default:
		return nil, fmt.Errorf("plan: unknown engine %v", engine)
	}
	if err != nil {
		return nil, err
	}
	return cp, nil
}

// vecCapable reports whether a node has a block-oriented variant. A Buffer
// node is transparent: batching is the vec engine's native mode, so the
// refinement pass's buffers dissolve into the batch operator below them.
func vecCapable(n *Node) bool {
	switch n.Kind {
	case KindSeqScan, KindProject, KindAggregate, KindLimit:
		return true
	case KindHashJoin:
		return len(n.Children) == 2 && n.Children[1].Kind == KindHashBuild
	case KindBuffer, KindExchange:
		return vecCapable(n.Children[0])
	default:
		return false
	}
}

// vecCompiler compiles plans for the vec engine. The optional record hook
// reports every compiled operator (batch, Volcano and adapter alike) with
// the plan node it implements — see CompileAnalyzed.
type vecCompiler struct {
	cm     *codemodel.Catalog
	record func(op any, n *Node)
}

// rec reports one compiled operator when recording is enabled.
func (vc *vecCompiler) rec(op any, n *Node) {
	if vc.record != nil {
		vc.record(op, n)
	}
}

// vec compiles a vec-capable node into its batch operator, adapting
// non-capable children behind FromVolcano.
func (vc *vecCompiler) vec(n *Node) (vec.Operator, error) {
	mod, err := moduleFor(n, vc.cm)
	if err != nil {
		return nil, err
	}
	switch n.Kind {
	case KindBuffer:
		return vc.vec(n.Children[0])

	case KindSeqScan:
		op := vec.NewSeqScanSpan(n.Table, n.Filter, mod, 0, n.ScanSpan)
		vc.rec(op, n)
		return op, nil

	case KindProject:
		child, err := vc.child(n.Children[0])
		if err != nil {
			return nil, err
		}
		op, err := vec.NewProject(child, n.Projections, n.ProjNames, mod)
		if err != nil {
			return nil, err
		}
		vc.rec(op, n)
		return op, nil

	case KindAggregate:
		child, err := vc.child(n.Children[0])
		if err != nil {
			return nil, err
		}
		op, err := vec.NewHashAggregate(child, n.GroupBy, n.Aggs, mod, 0)
		if err != nil {
			return nil, err
		}
		if n.SharedAgg != nil {
			op.SetShared(n.SharedAgg)
		}
		vc.rec(op, n)
		return op, nil

	case KindLimit:
		child, err := vc.child(n.Children[0])
		if err != nil {
			return nil, err
		}
		op := vec.NewLimit(child, n.LimitN)
		vc.rec(op, n)
		return op, nil

	case KindHashJoin:
		build := n.Children[1]
		if build.Kind != KindHashBuild {
			return nil, fmt.Errorf("plan: hash join inner must be a HashBuild node, got %v", build.Kind)
		}
		buildMod, err := moduleFor(build, vc.cm)
		if err != nil {
			return nil, err
		}
		outer, err := vc.child(n.Children[0])
		if err != nil {
			return nil, err
		}
		inner, err := vc.child(build.Children[0])
		if err != nil {
			return nil, err
		}
		op := vec.NewHashJoin(outer, inner, n.OuterKey, build.InnerKey, buildMod, mod, 0)
		if build.Shared != nil {
			op.SetShared(build.Shared)
		}
		vc.rec(op, n)
		return op, nil

	case KindExchange:
		subtrees := PartitionSubtrees(n)
		parts := make([]vec.Operator, len(subtrees))
		for i, p := range subtrees {
			op, err := vc.vec(p)
			if err != nil {
				return nil, err
			}
			parts[i] = op
		}
		op, err := vec.NewExchange(parts)
		if err != nil {
			return nil, err
		}
		vc.rec(op, n)
		return op, nil

	default:
		return nil, fmt.Errorf("plan: %v has no batch variant", n.Kind)
	}
}

// child compiles a child for a batch operator: natively when capable,
// otherwise the Volcano subtree behind a FromVolcano adapter (modeled with
// the buffer module — the adapter is a buffer refill loop).
func (vc *vecCompiler) child(n *Node) (vec.Operator, error) {
	if vecCapable(n) {
		return vc.vec(n)
	}
	op, err := vc.mixed(n)
	if err != nil {
		return nil, err
	}
	bufMod, err := moduleFor(&Node{Kind: KindBuffer}, vc.cm)
	if err != nil {
		return nil, err
	}
	adapter := vec.NewFromVolcano(op, 0, bufMod)
	vc.rec(adapter, n)
	return adapter, nil
}

// mixed compiles a node for the vec engine from the Volcano side: capable
// subtrees become batch operators behind a ToVolcano adapter, everything
// else builds its Volcano operator with children compiled the same way.
func (vc *vecCompiler) mixed(n *Node) (exec.Operator, error) {
	if vecCapable(n) {
		op, err := vc.vec(n)
		if err != nil {
			return nil, err
		}
		adapter := vec.NewToVolcano(op)
		vc.rec(adapter, n)
		return adapter, nil
	}
	op, err := buildNode(n, vc.cm, func(c *Node) (exec.Operator, error) {
		return vc.mixed(c)
	})
	if err != nil {
		return nil, err
	}
	vc.rec(op, n)
	return op, nil
}
