package plan

import (
	"fmt"

	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
)

// Constructors build physical nodes with derived schemas and cardinality
// estimates. Estimation uses sampling-based selectivity (see estimate.go).

// SeqScan constructs a heap scan, estimating selectivity by sampling.
func SeqScan(table *storage.Table, filter expr.Expr) *Node {
	n := &Node{
		Kind:   KindSeqScan,
		Table:  table,
		Filter: filter,
		schema: table.Schema(),
	}
	n.EstRows = float64(table.NumRows()) * selectivity(table, filter)
	return n
}

// IndexLookup constructs the rescannable inner of an index nested-loop
// join. Its estimate is rows *per rescan* — 1 for a unique index — which is
// what the refinement cardinality rule keys on (paper §6).
func IndexLookup(table *storage.Table, index *storage.IndexMeta) (*Node, error) {
	if index == nil {
		return nil, fmt.Errorf("plan: IndexLookup needs an index")
	}
	n := &Node{
		Kind:   KindIndexLookup,
		Table:  table,
		Index:  index,
		schema: table.Schema(),
	}
	if index.Unique {
		n.EstRows = 1
	} else {
		n.EstRows = rowsPerKey(table, index)
	}
	return n, nil
}

// IndexFullScan constructs an ordered full-index scan.
func IndexFullScan(table *storage.Table, index *storage.IndexMeta, filter expr.Expr) (*Node, error) {
	if index == nil {
		return nil, fmt.Errorf("plan: IndexFullScan needs an index")
	}
	n := &Node{
		Kind:   KindIndexFullScan,
		Table:  table,
		Index:  index,
		Filter: filter,
		schema: table.Schema(),
	}
	n.EstRows = float64(table.NumRows()) * selectivity(table, filter)
	return n, nil
}

// NestLoopJoin constructs an index nested-loop join; inner must be an
// IndexLookup node.
func NestLoopJoin(outer, inner *Node, outerKey expr.Expr, residual expr.Expr) (*Node, error) {
	if inner.Kind != KindIndexLookup {
		return nil, fmt.Errorf("plan: nest-loop inner must be an IndexLookup, got %v", inner.Kind)
	}
	n := &Node{
		Kind:     KindNestLoopJoin,
		Children: []*Node{outer, inner},
		OuterKey: outerKey,
		Residual: residual,
		schema:   outer.schema.Concat(inner.schema),
	}
	n.EstRows = outer.EstRows * inner.EstRows
	return n, nil
}

// HashJoin constructs a hash join: probe on outer, blocking build over
// inner. The build appears as its own node so refinement sees the paper's
// module structure.
func HashJoin(outer, inner *Node, outerKey, innerKey expr.Expr) *Node {
	build := &Node{
		Kind:     KindHashBuild,
		Children: []*Node{inner},
		InnerKey: innerKey,
		schema:   inner.schema,
		EstRows:  inner.EstRows,
	}
	n := &Node{
		Kind:     KindHashJoin,
		Children: []*Node{outer, build},
		OuterKey: outerKey,
		InnerKey: innerKey,
		schema:   outer.schema.Concat(inner.schema),
	}
	// Key-foreign-key equi-join estimate: every outer row matches the
	// average number of inner rows per key.
	n.EstRows = outer.EstRows * matchesPerKey(inner)
	return n
}

// MergeJoin constructs a merge join over inputs sorted on their keys.
func MergeJoin(left, right *Node, leftKey, rightKey expr.Expr) *Node {
	n := &Node{
		Kind:     KindMergeJoin,
		Children: []*Node{left, right},
		OuterKey: leftKey,
		InnerKey: rightKey,
		schema:   left.schema.Concat(right.schema),
	}
	n.EstRows = left.EstRows * matchesPerKey(right)
	return n
}

// Sort constructs a blocking sort.
func Sort(child *Node, keys []exec.SortKey) *Node {
	return &Node{
		Kind:     KindSort,
		Children: []*Node{child},
		SortKeys: keys,
		schema:   child.schema,
		EstRows:  child.EstRows,
	}
}

// Aggregate constructs grouped or ungrouped aggregation.
func Aggregate(child *Node, groupBy []expr.Expr, aggs []expr.AggSpec) (*Node, error) {
	n := &Node{
		Kind:     KindAggregate,
		Children: []*Node{child},
		GroupBy:  groupBy,
		Aggs:     aggs,
	}
	for i, g := range groupBy {
		name := fmt.Sprintf("group%d", i)
		if cr, ok := g.(*expr.ColRef); ok {
			name = cr.Name
		}
		n.schema = append(n.schema, storage.Column{Name: name, Type: g.Type()})
	}
	for _, spec := range aggs {
		ty, err := spec.ResultType()
		if err != nil {
			return nil, err
		}
		n.schema = append(n.schema, storage.Column{Name: spec.OutputName(), Type: ty})
	}
	if len(groupBy) == 0 {
		n.EstRows = 1
	} else {
		// Crude group-count estimate: min(child, a few hundred) — the
		// TPC-H grouping columns are all low-cardinality.
		n.EstRows = minf(child.EstRows, 400)
	}
	return n, nil
}

// Material constructs a blocking materialization.
func Material(child *Node) *Node {
	return &Node{
		Kind:     KindMaterial,
		Children: []*Node{child},
		schema:   child.schema,
		EstRows:  child.EstRows,
	}
}

// Limit constructs a row-count limit.
func Limit(child *Node, n int) *Node {
	return &Node{
		Kind:     KindLimit,
		Children: []*Node{child},
		LimitN:   n,
		schema:   child.schema,
		EstRows:  minf(child.EstRows, float64(n)),
	}
}

// Buffer wraps child in an explicit buffer node (size 0 = default). The
// refinement pass inserts these automatically; the constructor exists for
// hand-built plans and for the buffer-size sweep experiments.
func Buffer(child *Node, size int) *Node {
	return &Node{
		Kind:       KindBuffer,
		Children:   []*Node{child},
		BufferSize: size,
		schema:     child.schema,
		EstRows:    child.EstRows,
	}
}

// Filter constructs a residual-predicate node. Selectivity of residual
// predicates over joined rows defaults to 1/3, the classic guess.
func Filter(child *Node, pred expr.Expr) *Node {
	return &Node{
		Kind:     KindFilter,
		Children: []*Node{child},
		Filter:   pred,
		schema:   child.schema,
		EstRows:  child.EstRows / 3,
	}
}

// Project constructs a target-list evaluation node.
func Project(child *Node, exprs []expr.Expr, names []string) (*Node, error) {
	if len(exprs) == 0 || len(exprs) != len(names) {
		return nil, fmt.Errorf("plan: Project needs matching exprs and names")
	}
	n := &Node{
		Kind:        KindProject,
		Children:    []*Node{child},
		Projections: exprs,
		ProjNames:   names,
		EstRows:     child.EstRows,
	}
	for i, e := range exprs {
		n.schema = append(n.schema, storage.Column{Name: names[i], Type: e.Type()})
	}
	return n, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Col resolves a named column of a node's output schema to a ColRef.
func Col(n *Node, name string) (*expr.ColRef, error) {
	sch := n.Schema()
	i, err := sch.ColumnIndex("", name)
	if err != nil {
		return nil, err
	}
	if i < 0 {
		return nil, fmt.Errorf("plan: no column %q in %s", name, sch)
	}
	return expr.NewColRef(i, sch[i].QualifiedName(), sch[i].Type), nil
}

// MustCol is Col for statically known columns.
func MustCol(n *Node, name string) *expr.ColRef {
	c, err := Col(n, name)
	if err != nil {
		panic(err)
	}
	return c
}
