package plan

import (
	"strings"
	"testing"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
	"bufferdb/internal/tpch"
)

var testDB = func() *storage.Catalog {
	cat, err := tpch.Generate(tpch.Config{ScaleFactor: 0.002})
	if err != nil {
		panic(err)
	}
	return cat
}()

func tbl(t *testing.T, name string) *storage.Table {
	t.Helper()
	tb, err := testDB.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func shipdateBefore(t *testing.T, table *storage.Table, date string) expr.Expr {
	t.Helper()
	d, err := storage.ParseDate(date)
	if err != nil {
		t.Fatal(err)
	}
	i, _ := table.Schema().ColumnIndex("", "l_shipdate")
	return expr.MustBinary(expr.OpLe,
		expr.NewColRef(i, "l_shipdate", storage.TypeDate), expr.NewConst(d))
}

// q1Plan builds the paper's Query 1 shape.
func q1Plan(t *testing.T) *Node {
	t.Helper()
	li := tbl(t, "lineitem")
	scan := SeqScan(li, shipdateBefore(t, li, "1998-09-02"))
	price := MustCol(scan, "l_extendedprice")
	qty := MustCol(scan, "l_quantity")
	agg, err := Aggregate(scan, nil, []expr.AggSpec{
		{Func: expr.AggSum, Arg: price, As: "sum_charge"},
		{Func: expr.AggAvg, Arg: qty, As: "avg_qty"},
		{Func: expr.AggCountStar, As: "count_order"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

func TestEstimates(t *testing.T) {
	li := tbl(t, "lineitem")
	all := SeqScan(li, nil)
	if all.EstRows != float64(li.NumRows()) {
		t.Errorf("unfiltered scan estimate %v, want %d", all.EstRows, li.NumRows())
	}
	half := SeqScan(li, shipdateBefore(t, li, "1995-06-17"))
	frac := half.EstRows / float64(li.NumRows())
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("mid-cutoff selectivity estimate %v", frac)
	}
	none := SeqScan(li, shipdateBefore(t, li, "1970-01-01"))
	if none.EstRows <= 0 || none.EstRows > 50 {
		t.Errorf("empty-range estimate %v, want small positive", none.EstRows)
	}

	orders := tbl(t, "orders")
	pk, err := IndexLookup(orders, orders.IndexOn("o_orderkey"))
	if err != nil {
		t.Fatal(err)
	}
	if pk.EstRows != 1 {
		t.Errorf("unique index lookup estimate %v, want 1", pk.EstRows)
	}
	fk, err := IndexLookup(li, li.IndexOn("l_orderkey"))
	if err != nil {
		t.Fatal(err)
	}
	if fk.EstRows < 1.5 || fk.EstRows > 7 {
		t.Errorf("fk rows-per-key estimate %v, want ≈ 4", fk.EstRows)
	}
	if _, err := IndexLookup(li, nil); err == nil {
		t.Error("IndexLookup without index accepted")
	}
}

func TestAggregateNodeSchema(t *testing.T) {
	agg := q1Plan(t)
	sch := agg.Schema()
	if len(sch) != 3 || sch[0].Name != "sum_charge" || sch[2].Name != "count_order" {
		t.Errorf("agg schema = %v", sch)
	}
	if agg.EstRows != 1 {
		t.Errorf("ungrouped agg estimate %v", agg.EstRows)
	}
	li := tbl(t, "lineitem")
	scan := SeqScan(li, nil)
	g, err := Aggregate(scan, []expr.Expr{MustCol(scan, "l_returnflag")},
		[]expr.AggSpec{{Func: expr.AggCountStar}})
	if err != nil {
		t.Fatal(err)
	}
	if g.EstRows <= 1 || len(g.Schema()) != 2 {
		t.Errorf("grouped agg: est %v schema %v", g.EstRows, g.Schema())
	}
}

func TestExplain(t *testing.T) {
	out := Explain(q1Plan(t))
	if !strings.Contains(out, "Aggregate") || !strings.Contains(out, "SeqScan(lineitem") {
		t.Errorf("Explain = %q", out)
	}
	if !strings.Contains(out, "rows≈") {
		t.Error("Explain missing estimates")
	}
}

func TestBuildAndRunQ1(t *testing.T) {
	op, err := Build(q1Plan(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Run(&exec.Context{Catalog: testDB}, op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][2].I == 0 {
		t.Errorf("Q1 = %v", rows)
	}
}

// buildJoinPlans constructs the paper's three Query 3 join variants.
func buildJoinPlans(t *testing.T) map[string]*Node {
	t.Helper()
	li := tbl(t, "lineitem")
	orders := tbl(t, "orders")
	filter := shipdateBefore(t, li, "1995-06-17")

	aggOver := func(join *Node) *Node {
		total := MustCol(join, "o_totalprice")
		disc := MustCol(join, "l_discount")
		agg, err := Aggregate(join, nil, []expr.AggSpec{
			{Func: expr.AggSum, Arg: total},
			{Func: expr.AggCountStar},
			{Func: expr.AggAvg, Arg: disc},
		})
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}

	// Nested loop.
	scan1 := SeqScan(li, filter)
	inner, err := IndexLookup(orders, orders.IndexOn("o_orderkey"))
	if err != nil {
		t.Fatal(err)
	}
	nl, err := NestLoopJoin(scan1, inner, MustCol(scan1, "l_orderkey"), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Hash join.
	scan2 := SeqScan(li, filter)
	oscan := SeqScan(orders, nil)
	hj := HashJoin(scan2, oscan, MustCol(scan2, "l_orderkey"), MustCol(oscan, "o_orderkey"))

	// Merge join.
	scan3 := SeqScan(li, filter)
	sorted := Sort(scan3, []exec.SortKey{{Expr: MustCol(scan3, "l_orderkey")}})
	oidx, err := IndexFullScan(orders, orders.IndexOn("o_orderkey"), nil)
	if err != nil {
		t.Fatal(err)
	}
	mj := MergeJoin(sorted, oidx, MustCol(sorted, "l_orderkey"), MustCol(oidx, "o_orderkey"))

	return map[string]*Node{
		"nestloop": aggOver(nl),
		"hash":     aggOver(hj),
		"merge":    aggOver(mj),
	}
}

func TestJoinPlansAgree(t *testing.T) {
	plans := buildJoinPlans(t)
	var want string
	for name, p := range plans {
		op, err := Build(p, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows, err := exec.Run(&exec.Context{Catalog: testDB}, op)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) != 1 {
			t.Fatalf("%s returned %d rows", name, len(rows))
		}
		got := rows[0].String()
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("%s result %q differs from %q", name, got, want)
		}
	}
}

func TestRefineQ1InsertsBuffer(t *testing.T) {
	cm := codemodel.NewCatalog()
	refined, res, err := Refine(q1Plan(t), cm, RefineOptions{CardinalityThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if CountKind(refined, KindBuffer) != 1 {
		t.Fatalf("refined Q1 has %d buffers, want 1:\n%s", CountKind(refined, KindBuffer), Explain(refined))
	}
	// The buffer sits between the aggregate and the scan.
	if refined.Kind != KindAggregate || refined.Children[0].Kind != KindBuffer ||
		refined.Children[0].Children[0].Kind != KindSeqScan {
		t.Errorf("refined shape wrong:\n%s", Explain(refined))
	}
	if len(res.Groups) != 2 {
		t.Errorf("groups = %d, want 2\n%s", len(res.Groups), res)
	}
	// The original plan is untouched.
	if CountKind(q1Plan(t), KindBuffer) != 0 {
		t.Error("Refine mutated its input")
	}
}

func TestRefineQ2NoBuffer(t *testing.T) {
	cm := codemodel.NewCatalog()
	li := tbl(t, "lineitem")
	scan := SeqScan(li, shipdateBefore(t, li, "1998-09-02"))
	agg, err := Aggregate(scan, nil, []expr.AggSpec{{Func: expr.AggCountStar}})
	if err != nil {
		t.Fatal(err)
	}
	refined, _, err := Refine(agg, cm, RefineOptions{CardinalityThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if CountKind(refined, KindBuffer) != 0 {
		t.Errorf("refined Q2 has buffers:\n%s", Explain(refined))
	}
}

func TestRefineJoinPlans(t *testing.T) {
	cm := codemodel.NewCatalog()
	plans := buildJoinPlans(t)

	// Nested loop: exactly one buffer (above the join), none above the
	// inner index lookup.
	nl, _, err := Refine(plans["nestloop"], cm, RefineOptions{CardinalityThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if CountKind(nl, KindBuffer) != 1 {
		t.Errorf("nestloop buffers = %d, want 1:\n%s", CountKind(nl, KindBuffer), Explain(nl))
	}
	// Hash join: buffers above both scans and above the probe.
	hj, _, err := Refine(plans["hash"], cm, RefineOptions{CardinalityThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if CountKind(hj, KindBuffer) != 3 {
		t.Errorf("hash buffers = %d, want 3:\n%s", CountKind(hj, KindBuffer), Explain(hj))
	}
	// Merge join: buffers above lineitem scan (below sort), the index
	// scan, and the join; never above the sort itself.
	mj, _, err := Refine(plans["merge"], cm, RefineOptions{CardinalityThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if CountKind(mj, KindBuffer) != 3 {
		t.Errorf("merge buffers = %d, want 3:\n%s", CountKind(mj, KindBuffer), Explain(mj))
	}
	Walk(mj, func(n *Node) {
		if n.Kind == KindBuffer && n.Children[0].Kind == KindSort {
			t.Error("buffer above blocking sort")
		}
	})

	// Refined plans still compute the same answers.
	for name, p := range map[string]*Node{"nl": nl, "hj": hj, "mj": mj} {
		op, err := Build(p, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows, err := exec.Run(&exec.Context{Catalog: testDB}, op)
		if err != nil || len(rows) != 1 {
			t.Fatalf("%s: %v %v", name, rows, err)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	li := tbl(t, "lineitem")
	orders := tbl(t, "orders")
	// Nest-loop inner must be an IndexLookup node.
	scan := SeqScan(li, nil)
	if _, err := NestLoopJoin(scan, SeqScan(orders, nil), MustCol(scan, "l_orderkey"), nil); err == nil {
		t.Error("nest-loop over seq-scan inner accepted")
	}
	// A bare HashBuild cannot compile.
	hb := &Node{Kind: KindHashBuild, Children: []*Node{SeqScan(orders, nil)}}
	if _, err := Build(hb, nil); err == nil {
		t.Error("bare HashBuild compiled")
	}
	// Refine requires a code model.
	if _, _, err := Refine(SeqScan(li, nil), nil, RefineOptions{}); err == nil {
		t.Error("Refine without code model accepted")
	}
}

func TestBufferAndLimitNodes(t *testing.T) {
	li := tbl(t, "lineitem")
	b := Buffer(SeqScan(li, nil), 64)
	op, err := Build(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Run(&exec.Context{Catalog: testDB}, op)
	if err != nil || len(rows) != li.NumRows() {
		t.Fatalf("buffer node run: %d rows, %v", len(rows), err)
	}
	l := Limit(SeqScan(li, nil), 5)
	op, err = Build(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err = exec.Run(&exec.Context{Catalog: testDB}, op)
	if err != nil || len(rows) != 5 {
		t.Fatalf("limit node run: %d rows, %v", len(rows), err)
	}
	if l.EstRows != 5 {
		t.Errorf("limit estimate %v", l.EstRows)
	}
	m := Material(SeqScan(li, nil))
	if !m.Blocking() {
		t.Error("material not blocking")
	}
	if CountKind(m, KindSeqScan) != 1 {
		t.Error("CountKind miscounts")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindSeqScan; k <= KindBuffer; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}
