package plan

import (
	"fmt"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/push"
)

// pushCapable reports whether a node has a fused (push) variant. Buffer
// nodes are transparent: a fused pipe already batches instruction work, so
// the refinement pass's buffers dissolve into the loop, exactly as they
// dissolve into the vec engine's batches. Exchange is capable when its
// partition shape is — partitions compile to independent fused pipelines
// under the gather (the exchange is a breaker either way).
func pushCapable(n *Node) bool {
	switch n.Kind {
	case KindSeqScan, KindFilter, KindProject, KindAggregate, KindLimit:
		return true
	case KindHashJoin:
		return len(n.Children) == 2 && n.Children[1].Kind == KindHashBuild
	case KindBuffer, KindExchange:
		return pushCapable(n.Children[0])
	default:
		return false
	}
}

// pushCompiler compiles plans for the push engine: maximal capable
// subtrees fuse into push.Pipelines, everything else builds its Volcano
// operator with children compiled the same way (the vecCompiler's mixed
// strategy, with pipelines instead of batch subtrees).
type pushCompiler struct {
	cm     *codemodel.Catalog
	record func(op any, n *Node)
}

// rec reports one compiled operator or pipeline element when recording is
// enabled.
func (pc *pushCompiler) rec(op any, n *Node) {
	if pc.record != nil && op != nil {
		pc.record(op, n)
	}
}

// mixed compiles a node from the Volcano side: capable subtrees fuse,
// everything else builds its Volcano operator around recursively compiled
// children.
func (pc *pushCompiler) mixed(n *Node) (exec.Operator, error) {
	if pushCapable(n) {
		return pc.fuse(n)
	}
	op, err := buildNode(n, pc.cm, func(c *Node) (exec.Operator, error) {
		return pc.mixed(c)
	})
	if err != nil {
		return nil, err
	}
	pc.rec(op, n)
	return op, nil
}

// fuse compiles a capable subtree. An Exchange fuses each partition
// subtree separately under the gather; anything else becomes one Pipeline.
func (pc *pushCompiler) fuse(n *Node) (exec.Operator, error) {
	if n.Kind == KindExchange {
		subtrees := PartitionSubtrees(n)
		parts := make([]exec.Operator, len(subtrees))
		for i, p := range subtrees {
			op, err := pc.mixed(p)
			if err != nil {
				return nil, err
			}
			parts[i] = op
		}
		op, err := exec.NewExchange(parts)
		if err != nil {
			return nil, err
		}
		pc.rec(op, n)
		return op, nil
	}
	b := push.NewBuilder()
	if err := pc.chain(b, n); err != nil {
		return nil, err
	}
	pl, err := b.Build()
	if err != nil {
		return nil, err
	}
	pc.rec(pl, n)
	return pl, nil
}

// chain appends node n (and its fusable descendants) to builder b,
// bottom-up: sources first, then the stage stack.
func (pc *pushCompiler) chain(b *push.Builder, n *Node) error {
	mod, err := moduleFor(n, pc.cm)
	if err != nil {
		return err
	}
	switch n.Kind {
	case KindBuffer:
		// The fused loop subsumes buffering: dissolve.
		return pc.chain(b, n.Children[0])

	case KindSeqScan:
		pc.rec(b.Scan(n.Table, n.Filter, n.ScanSpan, mod), n)

	case KindFilter:
		if err := pc.chainChild(b, n.Children[0]); err != nil {
			return err
		}
		pc.rec(b.Filter(n.Filter, mod), n)

	case KindProject:
		if err := pc.chainChild(b, n.Children[0]); err != nil {
			return err
		}
		pc.rec(b.Project(n.Projections, n.ProjNames, mod), n)

	case KindLimit:
		if err := pc.chainChild(b, n.Children[0]); err != nil {
			return err
		}
		pc.rec(b.Limit(n.LimitN), n)

	case KindAggregate:
		if err := pc.chainChild(b, n.Children[0]); err != nil {
			return err
		}
		aggH := b.Aggregate(n.GroupBy, n.Aggs, mod)
		if n.SharedAgg != nil {
			push.SetSharedAgg(aggH, n.SharedAgg)
		}
		pc.rec(aggH, n)

	case KindHashJoin:
		build := n.Children[1]
		if build.Kind != KindHashBuild {
			return fmt.Errorf("plan: hash join inner must be a HashBuild node, got %v", build.Kind)
		}
		buildMod, err := moduleFor(build, pc.cm)
		if err != nil {
			return err
		}
		if err := pc.chainChild(b, n.Children[0]); err != nil {
			return err
		}
		inner := push.NewBuilder()
		if err := pc.chainChild(inner, build.Children[0]); err != nil {
			return err
		}
		probeH, buildH := b.Probe(inner, n.OuterKey, build.InnerKey, buildMod, mod)
		if build.Shared != nil {
			push.SetSharedBuild(buildH, build.Shared)
		}
		pc.rec(probeH, n)
		pc.rec(buildH, build)

	default:
		return pc.source(b, n)
	}
	return nil
}

// chainChild extends b with a child node: fused inline when possible,
// otherwise through an adapter source. An Exchange never extends a pipe —
// it is compiled natively (fused partitions under the gather) and feeds
// the pipe as a source.
func (pc *pushCompiler) chainChild(b *push.Builder, n *Node) error {
	if pushCapable(n) && n.Kind != KindExchange {
		return pc.chain(b, n)
	}
	return pc.source(b, n)
}

// source compiles n for the host engines and feeds the pipe through a
// pull-adapter source modeled with the buffer module (the adapter is a
// refill loop, like vec.FromVolcano).
func (pc *pushCompiler) source(b *push.Builder, n *Node) error {
	op, err := pc.mixed(n)
	if err != nil {
		return err
	}
	bufMod, err := moduleFor(&Node{Kind: KindBuffer}, pc.cm)
	if err != nil {
		return err
	}
	pc.rec(b.Source(op, bufMod), n)
	return nil
}
