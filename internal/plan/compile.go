package plan

import (
	"fmt"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/core"
	"bufferdb/internal/exec"
)

// moduleFor resolves a plan node to its instruction-footprint module in the
// code model. Limit is too small to model.
func moduleFor(n *Node, cm *codemodel.Catalog) (*codemodel.Module, error) {
	if cm == nil {
		return nil, nil
	}
	switch n.Kind {
	case KindSeqScan:
		if n.Filter != nil {
			return cm.Module("SeqScanPred")
		}
		return cm.Module("SeqScan")
	case KindIndexLookup, KindIndexFullScan:
		return cm.Module("IndexScan")
	case KindNestLoopJoin:
		return cm.Module("NestLoop")
	case KindHashBuild:
		return cm.Module("HashBuild")
	case KindHashJoin:
		return cm.Module("HashProbe")
	case KindMergeJoin:
		return cm.Module("MergeJoin")
	case KindSort:
		return cm.Module("Sort")
	case KindAggregate:
		return cm.AggModule(exec.AggFuncNames(n.Aggs))
	case KindMaterial:
		return cm.Module("Material")
	case KindBuffer:
		return cm.Module("Buffer")
	case KindFilter:
		return cm.Module("Filter")
	case KindProject:
		return cm.Module("Project")
	case KindLimit:
		return nil, nil
	default:
		return nil, fmt.Errorf("plan: no module mapping for %v", n.Kind)
	}
}

// Build compiles a plan into an executable operator tree. cm may be nil for
// uninstrumented execution.
func Build(n *Node, cm *codemodel.Catalog) (exec.Operator, error) {
	mod, err := moduleFor(n, cm)
	if err != nil {
		return nil, err
	}
	switch n.Kind {
	case KindSeqScan:
		return exec.NewSeqScan(n.Table, n.Filter, mod), nil

	case KindIndexLookup:
		return exec.NewIndexLookup(n.Table, n.Index, mod)

	case KindIndexFullScan:
		return exec.NewIndexFullScan(n.Table, n.Index, n.Filter, mod)

	case KindNestLoopJoin:
		outer, err := Build(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		innerOp, err := Build(n.Children[1], cm)
		if err != nil {
			return nil, err
		}
		inner, ok := innerOp.(exec.Rescannable)
		if !ok {
			return nil, fmt.Errorf("plan: nest-loop inner %s is not rescannable", innerOp.Name())
		}
		return exec.NewNestLoopJoin(outer, inner, n.OuterKey, n.Residual, mod), nil

	case KindHashJoin:
		outer, err := Build(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		build := n.Children[1]
		if build.Kind != KindHashBuild {
			return nil, fmt.Errorf("plan: hash join inner must be a HashBuild node, got %v", build.Kind)
		}
		buildMod, err := moduleFor(build, cm)
		if err != nil {
			return nil, err
		}
		inner, err := Build(build.Children[0], cm)
		if err != nil {
			return nil, err
		}
		return exec.NewHashJoin(outer, inner, n.OuterKey, build.InnerKey, buildMod, mod), nil

	case KindHashBuild:
		return nil, fmt.Errorf("plan: HashBuild must be the inner child of a HashJoin")

	case KindMergeJoin:
		left, err := Build(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		right, err := Build(n.Children[1], cm)
		if err != nil {
			return nil, err
		}
		return exec.NewMergeJoin(left, right, n.OuterKey, n.InnerKey, mod), nil

	case KindSort:
		child, err := Build(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		return exec.NewSort(child, n.SortKeys, mod), nil

	case KindAggregate:
		child, err := Build(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		return exec.NewAggregate(child, n.GroupBy, n.Aggs, mod)

	case KindMaterial:
		child, err := Build(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		return exec.NewMaterial(child, mod), nil

	case KindLimit:
		child, err := Build(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		return exec.NewLimit(child, n.LimitN), nil

	case KindBuffer:
		child, err := Build(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		return core.NewBuffer(child, n.BufferSize, mod), nil

	case KindFilter:
		child, err := Build(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		return exec.NewFilter(child, n.Filter, mod), nil

	case KindProject:
		child, err := Build(n.Children[0], cm)
		if err != nil {
			return nil, err
		}
		return exec.NewProject(child, n.Projections, n.ProjNames, mod)

	default:
		return nil, fmt.Errorf("plan: cannot compile %v", n.Kind)
	}
}
