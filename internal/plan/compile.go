package plan

import (
	"fmt"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/core"
	"bufferdb/internal/exec"
)

// moduleFor resolves a plan node to its instruction-footprint module in the
// code model. Limit is too small to model.
func moduleFor(n *Node, cm *codemodel.Catalog) (*codemodel.Module, error) {
	if cm == nil {
		return nil, nil
	}
	switch n.Kind {
	case KindSeqScan:
		if n.Filter != nil {
			return cm.Module("SeqScanPred")
		}
		return cm.Module("SeqScan")
	case KindIndexLookup, KindIndexFullScan:
		return cm.Module("IndexScan")
	case KindNestLoopJoin:
		return cm.Module("NestLoop")
	case KindHashBuild:
		return cm.Module("HashBuild")
	case KindHashJoin:
		return cm.Module("HashProbe")
	case KindMergeJoin:
		return cm.Module("MergeJoin")
	case KindSort:
		return cm.Module("Sort")
	case KindAggregate:
		return cm.AggModule(exec.AggFuncNames(n.Aggs))
	case KindMaterial:
		return cm.Module("Material")
	case KindBuffer:
		return cm.Module("Buffer")
	case KindFilter:
		return cm.Module("Filter")
	case KindProject:
		return cm.Module("Project")
	case KindLimit, KindExchange, KindCachedSource:
		// Limit is too small to model; the gather's serve path is charged
		// directly by the operator; replaying cached rows executes almost
		// no code, which is the point of the reuse cache.
		return nil, nil
	default:
		return nil, fmt.Errorf("plan: no module mapping for %v", n.Kind)
	}
}

// Build compiles a plan into a pure-Volcano operator tree. cm may be nil
// for uninstrumented execution.
func Build(n *Node, cm *codemodel.Catalog) (exec.Operator, error) {
	return buildRecorded(n, cm, nil)
}

// buildRecorded compiles like Build, additionally reporting every compiled
// operator and the plan node it came from through record (nil disables).
func buildRecorded(n *Node, cm *codemodel.Catalog, record func(op any, n *Node)) (exec.Operator, error) {
	var rec func(*Node) (exec.Operator, error)
	rec = func(c *Node) (exec.Operator, error) {
		op, err := buildNode(c, cm, rec)
		if err != nil {
			return nil, err
		}
		if record != nil {
			record(op, c)
		}
		return op, nil
	}
	return rec(n)
}

// buildNode compiles a single node into its Volcano operator, resolving
// operand children through child — the hook the engine switch (Compile)
// uses to splice batch subtrees in behind adapters.
func buildNode(n *Node, cm *codemodel.Catalog, child func(*Node) (exec.Operator, error)) (exec.Operator, error) {
	mod, err := moduleFor(n, cm)
	if err != nil {
		return nil, err
	}
	switch n.Kind {
	case KindSeqScan:
		return exec.NewSeqScanSpan(n.Table, n.Filter, mod, n.ScanSpan), nil

	case KindIndexLookup:
		return exec.NewIndexLookup(n.Table, n.Index, mod)

	case KindIndexFullScan:
		return exec.NewIndexFullScan(n.Table, n.Index, n.Filter, mod)

	case KindNestLoopJoin:
		outer, err := child(n.Children[0])
		if err != nil {
			return nil, err
		}
		innerOp, err := child(n.Children[1])
		if err != nil {
			return nil, err
		}
		inner, ok := innerOp.(exec.Rescannable)
		if !ok {
			return nil, fmt.Errorf("plan: nest-loop inner %s is not rescannable", innerOp.Name())
		}
		return exec.NewNestLoopJoin(outer, inner, n.OuterKey, n.Residual, mod), nil

	case KindHashJoin:
		outer, err := child(n.Children[0])
		if err != nil {
			return nil, err
		}
		build := n.Children[1]
		if build.Kind != KindHashBuild {
			return nil, fmt.Errorf("plan: hash join inner must be a HashBuild node, got %v", build.Kind)
		}
		buildMod, err := moduleFor(build, cm)
		if err != nil {
			return nil, err
		}
		inner, err := child(build.Children[0])
		if err != nil {
			return nil, err
		}
		hj := exec.NewHashJoin(outer, inner, n.OuterKey, build.InnerKey, buildMod, mod)
		if build.Shared != nil {
			hj.SetShared(build.Shared)
		}
		return hj, nil

	case KindHashBuild:
		return nil, fmt.Errorf("plan: HashBuild must be the inner child of a HashJoin")

	case KindMergeJoin:
		left, err := child(n.Children[0])
		if err != nil {
			return nil, err
		}
		right, err := child(n.Children[1])
		if err != nil {
			return nil, err
		}
		return exec.NewMergeJoin(left, right, n.OuterKey, n.InnerKey, mod), nil

	case KindSort:
		c, err := child(n.Children[0])
		if err != nil {
			return nil, err
		}
		return exec.NewSort(c, n.SortKeys, mod), nil

	case KindAggregate:
		c, err := child(n.Children[0])
		if err != nil {
			return nil, err
		}
		agg, err := exec.NewAggregate(c, n.GroupBy, n.Aggs, mod)
		if err != nil {
			return nil, err
		}
		if n.SharedAgg != nil {
			agg.SetShared(n.SharedAgg)
		}
		return agg, nil

	case KindMaterial:
		c, err := child(n.Children[0])
		if err != nil {
			return nil, err
		}
		return exec.NewMaterial(c, mod), nil

	case KindLimit:
		c, err := child(n.Children[0])
		if err != nil {
			return nil, err
		}
		return exec.NewLimit(c, n.LimitN), nil

	case KindBuffer:
		c, err := child(n.Children[0])
		if err != nil {
			return nil, err
		}
		return core.NewBuffer(c, n.BufferSize, mod), nil

	case KindFilter:
		c, err := child(n.Children[0])
		if err != nil {
			return nil, err
		}
		return exec.NewFilter(c, n.Filter, mod), nil

	case KindProject:
		c, err := child(n.Children[0])
		if err != nil {
			return nil, err
		}
		return exec.NewProject(c, n.Projections, n.ProjNames, mod)

	case KindExchange:
		subtrees := PartitionSubtrees(n)
		parts := make([]exec.Operator, len(subtrees))
		for i, p := range subtrees {
			op, err := child(p)
			if err != nil {
				return nil, err
			}
			parts[i] = op
		}
		return exec.NewExchange(parts)

	case KindCachedSource:
		return exec.NewCachedRows(n.Schema(), n.CachedRows), nil

	default:
		return nil, fmt.Errorf("plan: cannot compile %v", n.Kind)
	}
}
