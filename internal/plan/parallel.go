package plan

// Parallelize is the post-refinement parallelization pass: it wraps every
// eligible scan pipeline in an Exchange (gather) node with the given worker
// fan-out. The input plan is not modified; with workers < 2 the plan is
// returned unchanged.
//
// An eligible pipeline is a chain of per-tuple operators — Filter, Project,
// Buffer — ending in a full-table SeqScan: exactly the subtrees that can be
// split into contiguous heap partitions with each partition producing its
// slice of the sequential output. Joins, sorts and aggregates stay above
// the gather and consume the merged stream. Buffers deliberately stay
// *below* the gather: the refinement pass sized them so each pipeline's
// execution groups fit the L1 instruction cache, and that reasoning holds
// per worker — every worker keeps its own instruction-cache-friendly run,
// while a buffer above the gather would batch an already-merged stream.
//
// Parallelize runs after Refine: refinement reasons about instruction
// footprints of the sequential pipeline, and the pipeline below the gather
// is exactly that pipeline (per partition), so refinement decisions carry
// over unchanged.
func Parallelize(root *Node, workers int) *Node {
	if workers < 2 {
		return root
	}
	cloned := clone(root)
	return parallelize(cloned, workers)
}

// parallelize rewrites n in place, wrapping maximal eligible subtrees.
func parallelize(n *Node, workers int) *Node {
	if eligible(n) {
		return exchange(n, workers)
	}
	for i, c := range n.Children {
		n.Children[i] = parallelize(c, workers)
	}
	return n
}

// eligible reports whether n roots a partitionable scan pipeline.
func eligible(n *Node) bool {
	switch n.Kind {
	case KindSeqScan:
		return n.ScanSpan == nil
	case KindFilter, KindProject, KindBuffer:
		return eligible(n.Children[0])
	default:
		return false
	}
}

// exchange wraps an eligible pipeline in a gather node.
func exchange(chain *Node, workers int) *Node {
	return &Node{
		Kind:     KindExchange,
		Children: []*Node{chain},
		Workers:  workers,
		schema:   chain.schema,
		EstRows:  chain.EstRows,
	}
}

// PartitionSubtrees expands an Exchange node into its per-partition
// pipelines: one clone of the child chain per contiguous heap span of the
// scanned table, with the clone's SeqScan bounded to that span. Compile and
// Build call this; the partition count is min(Workers, table rows).
func PartitionSubtrees(n *Node) []*Node {
	workers := n.Workers
	if workers < 1 {
		workers = 1
	}
	chain := n.Children[0]
	table := leafScan(chain).Table
	spans := table.Partitions(workers)
	parts := make([]*Node, len(spans))
	for i := range spans {
		part := clone(chain)
		leafScan(part).ScanSpan = &spans[i]
		parts[i] = part
	}
	return parts
}

// leafScan walks a single-child pipeline down to its SeqScan leaf.
func leafScan(n *Node) *Node {
	for n.Kind != KindSeqScan {
		n = n.Children[0]
	}
	return n
}
