package plan

import (
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
)

// estimateSampleSize bounds the rows examined per estimate. Sampling the
// actual data instead of keeping histograms is a simplification the
// refinement algorithm tolerates well: it only needs cardinalities accurate
// to the order of magnitude of the calibration threshold.
const estimateSampleSize = 1024

// selectivity estimates the fraction of table rows satisfying filter by
// evaluating it over an evenly spaced sample. A nil filter selects all; an
// erroring filter pessimistically selects all.
func selectivity(table *storage.Table, filter expr.Expr) float64 {
	if filter == nil {
		return 1
	}
	n := table.NumRows()
	if n == 0 {
		return 1
	}
	step := n / estimateSampleSize
	if step < 1 {
		step = 1
	}
	sampled, matched := 0, 0
	for i := 0; i < n; i += step {
		sampled++
		row, err := table.FetchRow(i)
		if err != nil {
			// A paged table that cannot be read is the executor's error to
			// surface; the estimator just stays pessimistic.
			return 1
		}
		ok, err := expr.EvalBool(filter, row)
		if err != nil {
			return 1
		}
		if ok {
			matched++
		}
	}
	if sampled == 0 {
		return 1
	}
	// Clamp away from exactly zero: the optimizer never assumes emptiness.
	sel := float64(matched) / float64(sampled)
	if sel == 0 {
		sel = 0.5 / float64(sampled)
	}
	return sel
}

// rowsPerKey estimates the average number of rows per distinct key of a
// non-unique index, by sampling key values.
func rowsPerKey(table *storage.Table, index *storage.IndexMeta) float64 {
	n := table.NumRows()
	if n == 0 {
		return 1
	}
	// Duplicate keys cluster (a foreign key groups consecutive rows), so
	// sample contiguous windows rather than spaced points — spaced samples
	// would land on distinct keys and report 1 row per key.
	const windows, windowRows = 8, 128
	distinct := make(map[int64]struct{})
	sampled := 0
	for w := 0; w < windows; w++ {
		start := w * n / windows
		for i := start; i < start+windowRows && i < n; i++ {
			row, err := table.FetchRow(i)
			if err != nil {
				continue
			}
			v := row[index.Col]
			if v.Kind == storage.TypeInt64 {
				distinct[v.I] = struct{}{}
			}
			sampled++
		}
	}
	if len(distinct) == 0 {
		return 1
	}
	per := float64(sampled) / float64(len(distinct))
	if per < 1 {
		per = 1
	}
	return per
}

// matchesPerKey estimates how many rows of the build/right input share one
// join key — 1 when the input is (or descends from) a unique-keyed scan,
// otherwise a small constant. Precise join estimation is out of scope; the
// refinement rule only needs "big or small".
func matchesPerKey(n *Node) float64 {
	switch n.Kind {
	case KindIndexLookup:
		return n.EstRows
	case KindSeqScan, KindIndexFullScan:
		if n.Index != nil && n.Index.Unique {
			return 1
		}
		// A base-table equi-join on a key column: assume key-foreign-key.
		return 1
	case KindHashBuild, KindSort, KindMaterial, KindBuffer:
		return matchesPerKey(n.Children[0])
	default:
		return 1
	}
}
