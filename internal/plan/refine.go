package plan

import (
	"fmt"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/core"
)

// RefineOptions parameterizes the post-optimization buffer-insertion pass.
type RefineOptions struct {
	// L1IBytes is the instruction-cache budget per execution group
	// (0 = the paper's 16 KB trace-cache upper estimate).
	L1IBytes int
	// CardinalityThreshold is the calibrated minimum output cardinality
	// for buffering to pay (paper §6, §7.3).
	CardinalityThreshold float64
	// BufferSize is the capacity of inserted buffers (0 = default).
	BufferSize int
	// UseHotFootprints switches the group-budget check from the paper's
	// conservative binary-size estimate to measured hot bytes — an oracle
	// used by the ablation study (a real system cannot know hot bytes
	// statically).
	UseHotFootprints bool
}

// DefaultL1IBytes matches the simulated machine and the paper's estimate.
const DefaultL1IBytes = 16 * 1024

// Refine runs the paper's plan refinement algorithm over a physical plan
// and returns an equivalent plan with buffer operators inserted where they
// pay off, plus the grouping decisions for EXPLAIN-style reporting.
// The input plan is not modified.
func Refine(root *Node, cm *codemodel.Catalog, opt RefineOptions) (*Node, *core.Result, error) {
	if cm == nil {
		return nil, nil, fmt.Errorf("plan: Refine needs a code model")
	}
	if opt.L1IBytes == 0 {
		opt.L1IBytes = DefaultL1IBytes
	}

	cloned := clone(root)
	info, err := toNodeInfo(cloned, cm)
	if err != nil {
		return nil, nil, err
	}
	bufMod, err := cm.Module("Buffer")
	if err != nil {
		return nil, nil, err
	}
	cfg := core.RefineConfig{
		L1IBytes:             opt.L1IBytes,
		BufferModule:         bufMod,
		CardinalityThreshold: opt.CardinalityThreshold,
		BufferSize:           opt.BufferSize,
	}
	if opt.UseHotFootprints {
		cfg.FootprintEstimator = core.HotFootprintEstimator
	}
	res, err := core.Refine(info, cfg)
	if err != nil {
		return nil, nil, err
	}

	// Annotate execution-group membership (1-based) so EXPLAIN ANALYZE can
	// report which group each operator landed in.
	for gi, g := range res.Groups {
		for _, m := range g.Members {
			m.Tag.(*Node).Group = gi + 1
		}
	}

	// Wrap every flagged node in a Buffer; the buffer carries the group of
	// the subtree it batches.
	flagged := make(map[*Node]bool, len(res.BufferAbove))
	for _, ni := range res.BufferAbove {
		flagged[ni.Tag.(*Node)] = true
	}
	var wrap func(n *Node)
	wrap = func(n *Node) {
		for i, c := range n.Children {
			wrap(c)
			if flagged[c] {
				b := Buffer(c, opt.BufferSize)
				b.Group = c.Group
				n.Children[i] = b
			}
		}
	}
	wrap(cloned)
	if flagged[cloned] {
		// Cannot happen (the root group is never buffered), but guard it.
		b := Buffer(cloned, opt.BufferSize)
		b.Group = cloned.Group
		cloned = b
	}
	return cloned, res, nil
}

// Clone deep-copies a plan tree. Prepared statements use it to hand each
// execution a private tree while caching the refined original.
func Clone(n *Node) *Node { return clone(n) }

// clone deep-copies the node tree (expressions and tables are shared —
// they are immutable during planning).
func clone(n *Node) *Node {
	cp := *n
	cp.Children = make([]*Node, len(n.Children))
	for i, c := range n.Children {
		cp.Children[i] = clone(c)
	}
	return &cp
}

// toNodeInfo mirrors the plan as the refinement algorithm's NodeInfo tree.
func toNodeInfo(n *Node, cm *codemodel.Catalog) (*core.NodeInfo, error) {
	mod, err := moduleFor(n, cm)
	if err != nil {
		return nil, err
	}
	info := &core.NodeInfo{
		Name:     n.Label(),
		Blocking: n.Blocking(),
		EstRows:  n.EstRows,
		Tag:      n,
	}
	if mod != nil {
		info.Modules = []*codemodel.Module{mod}
	}
	for _, c := range n.Children {
		ci, err := toNodeInfo(c, cm)
		if err != nil {
			return nil, err
		}
		info.Children = append(info.Children, ci)
	}
	return info, nil
}
