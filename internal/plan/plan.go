// Package plan provides physical query plans: a node tree with cardinality
// estimates, construction helpers, the bridge to the paper's plan
// refinement algorithm (internal/core), and compilation of plans into
// executable operator trees (internal/exec).
//
// The planner mirrors the paper's setting: the optimizer produces a
// conventional plan; a post-optimization refinement pass (§6.2) decides
// where buffer operators pay off and inserts them; nothing about the
// original operators changes.
package plan

import (
	"fmt"
	"strings"

	"bufferdb/internal/core"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
)

// Kind enumerates physical operator kinds.
type Kind uint8

// Physical node kinds. HashBuild exists as its own (blocking) node so the
// refinement algorithm sees the paper's module structure — build and probe
// are separate modules in Table 2.
const (
	KindSeqScan Kind = iota
	KindIndexLookup
	KindIndexFullScan
	KindNestLoopJoin
	KindHashBuild
	KindHashJoin // probe side
	KindMergeJoin
	KindSort
	KindAggregate
	KindMaterial
	KindLimit
	KindBuffer
	KindFilter
	KindProject
	KindExchange
	KindCachedSource
)

// String returns the node kind's display name.
func (k Kind) String() string {
	switch k {
	case KindSeqScan:
		return "SeqScan"
	case KindIndexLookup:
		return "IndexLookup"
	case KindIndexFullScan:
		return "IndexFullScan"
	case KindNestLoopJoin:
		return "NestLoopJoin"
	case KindHashBuild:
		return "HashBuild"
	case KindHashJoin:
		return "HashJoin"
	case KindMergeJoin:
		return "MergeJoin"
	case KindSort:
		return "Sort"
	case KindAggregate:
		return "Aggregate"
	case KindMaterial:
		return "Material"
	case KindLimit:
		return "Limit"
	case KindBuffer:
		return "Buffer"
	case KindFilter:
		return "Filter"
	case KindProject:
		return "Project"
	case KindExchange:
		return "Exchange"
	case KindCachedSource:
		return "CachedSource"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node is one physical plan operator.
type Node struct {
	Kind     Kind
	Children []*Node

	// Table/Index identify the relation for scan kinds.
	Table *storage.Table
	Index *storage.IndexMeta

	// Filter is a scan predicate (SeqScan, IndexFullScan).
	Filter expr.Expr

	// Join fields: OuterKey/InnerKey are the equi-join key expressions
	// over the respective child schemas; Residual applies to the joined
	// row (nest-loop only).
	OuterKey expr.Expr
	InnerKey expr.Expr
	Residual expr.Expr

	// SortKeys order a Sort node's output.
	SortKeys []exec.SortKey

	// GroupBy/Aggs configure an Aggregate node.
	GroupBy []expr.Expr
	Aggs    []expr.AggSpec

	// LimitN bounds a Limit node.
	LimitN int

	// BufferSize sets a Buffer node's capacity (0 = default).
	BufferSize int

	// Workers is an Exchange node's partition fan-out.
	Workers int

	// ScanSpan restricts a SeqScan to one heap partition (nil = whole
	// table). Set by PartitionSubtrees when compiling an Exchange.
	ScanSpan *storage.Span

	// Projections/ProjNames configure a Project node.
	Projections []expr.Expr
	ProjNames   []string

	// EstRows is the optimizer's output-cardinality estimate: rows per
	// execution (per rescan for an IndexLookup).
	EstRows float64

	// Group is the 1-based execution-group id the refinement pass assigned
	// (0 = not refined or not a group member). Inserted Buffer nodes carry
	// the group of the subtree they batch. Clone-based passes (Parallelize,
	// PartitionSubtrees) propagate it into partition subtrees.
	Group int

	// Semantic reuse-cache splice state (see ApplyReuse). Shared on a
	// HashBuild node carries the adopted build table or the publish hook;
	// SharedAgg on an Aggregate node carries the publish hook. CachedRows
	// backs a CachedSource node; Reused marks spliced nodes for EXPLAIN.
	Shared     *exec.SharedBuild
	SharedAgg  *exec.SharedAgg
	CachedRows []storage.Row
	Reused     bool

	schema storage.Schema
}

// Schema returns the node's output row shape.
func (n *Node) Schema() storage.Schema { return n.schema }

// Blocking reports whether the node breaks the pipeline (paper §6: sort
// and hash-table building; Material behaves like them).
func (n *Node) Blocking() bool {
	switch n.Kind {
	case KindSort, KindHashBuild, KindMaterial:
		return true
	default:
		return false
	}
}

// Label renders a short description for EXPLAIN output. Nodes spliced or
// adopted by the semantic reuse cache carry a "[reused]" marker.
func (n *Node) Label() string {
	l := n.label()
	if n.Reused {
		l += " [reused]"
	}
	return l
}

func (n *Node) label() string {
	switch n.Kind {
	case KindSeqScan:
		if n.Filter != nil {
			return fmt.Sprintf("SeqScan(%s, filter=%s)", n.Table.Name(), n.Filter)
		}
		return fmt.Sprintf("SeqScan(%s)", n.Table.Name())
	case KindIndexLookup:
		return fmt.Sprintf("IndexLookup(%s.%s)", n.Table.Name(), n.Index.Column)
	case KindIndexFullScan:
		if n.Filter != nil {
			return fmt.Sprintf("IndexFullScan(%s.%s, filter=%s)", n.Table.Name(), n.Index.Column, n.Filter)
		}
		return fmt.Sprintf("IndexFullScan(%s.%s)", n.Table.Name(), n.Index.Column)
	case KindNestLoopJoin:
		return fmt.Sprintf("NestLoopJoin(key=%s)", n.OuterKey)
	case KindHashBuild:
		return fmt.Sprintf("HashBuild(key=%s)", n.InnerKey)
	case KindHashJoin:
		return fmt.Sprintf("HashJoin(%s = %s)", n.OuterKey, n.InnerKey)
	case KindMergeJoin:
		return fmt.Sprintf("MergeJoin(%s = %s)", n.OuterKey, n.InnerKey)
	case KindSort:
		keys := make([]string, len(n.SortKeys))
		for i, k := range n.SortKeys {
			keys[i] = k.Expr.String()
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		return fmt.Sprintf("Sort(%s)", strings.Join(keys, ", "))
	case KindAggregate:
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			aggs[i] = a.String()
		}
		if len(n.GroupBy) == 0 {
			return fmt.Sprintf("Aggregate(%s)", strings.Join(aggs, ", "))
		}
		return fmt.Sprintf("Aggregate(%s) by %d keys", strings.Join(aggs, ", "), len(n.GroupBy))
	case KindLimit:
		return fmt.Sprintf("Limit(%d)", n.LimitN)
	case KindBuffer:
		size := n.BufferSize
		if size == 0 {
			size = core.DefaultBufferSize
		}
		return fmt.Sprintf("Buffer(size=%d)", size)
	case KindFilter:
		return fmt.Sprintf("Filter(%s)", n.Filter)
	case KindProject:
		names := strings.Join(n.ProjNames, ", ")
		return fmt.Sprintf("Project(%s)", names)
	case KindExchange:
		return fmt.Sprintf("Gather(workers=%d)", n.Workers)
	case KindCachedSource:
		return fmt.Sprintf("CachedSource(%d rows)", len(n.CachedRows))
	default:
		return n.Kind.String()
	}
}

// Explain renders the plan tree with cardinality estimates.
func Explain(root *Node) string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%s  (rows≈%.0f)\n", strings.Repeat("  ", depth), n.Label(), n.EstRows)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(root, 0)
	return b.String()
}

// Walk visits nodes depth-first, pre-order.
func Walk(n *Node, visit func(*Node)) {
	visit(n)
	for _, c := range n.Children {
		Walk(c, visit)
	}
}

// CountKind returns the number of nodes of the given kind in the plan.
func CountKind(root *Node, k Kind) int {
	n := 0
	Walk(root, func(node *Node) {
		if node.Kind == k {
			n++
		}
	})
	return n
}
