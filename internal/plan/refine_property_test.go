package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/core"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
)

// randPlanGen builds random (but well-typed) physical plans over synthetic
// tables, for the refinement-transparency property test.
type randPlanGen struct {
	rng *rand.Rand
	cat *storage.Catalog
}

func newRandPlanGen(seed int64) *randPlanGen {
	g := &randPlanGen{rng: rand.New(rand.NewSource(seed)), cat: storage.NewCatalog()}
	// A few base tables with an int key (clustered duplicates, so joins
	// and groupings have structure) and an int value.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("t%d", i)
		tbl := storage.NewTable(name, storage.Schema{
			{Table: name, Name: "k", Type: storage.TypeInt64},
			{Table: name, Name: "v", Type: storage.TypeInt64},
		})
		n := 200 + g.rng.Intn(400)
		for r := 0; r < n; r++ {
			tbl.MustAppend(storage.Row{
				storage.NewInt(int64(r / (1 + g.rng.Intn(3)))),
				storage.NewInt(int64(g.rng.Intn(1000))),
			})
		}
		g.cat.MustAdd(tbl)
	}
	return g
}

// scan builds a leaf over a random table, with an optional predicate.
func (g *randPlanGen) scan() *Node {
	tbl, _ := g.cat.Table(fmt.Sprintf("t%d", g.rng.Intn(3)))
	var filter expr.Expr
	if g.rng.Intn(2) == 0 {
		cutoff := int64(g.rng.Intn(1200))
		filter = expr.MustBinary(expr.OpLt,
			expr.NewColRef(1, "v", storage.TypeInt64),
			expr.NewConst(storage.NewInt(cutoff)))
	}
	return SeqScan(tbl, filter)
}

// col builds a positional int column reference (both synthetic tables and
// their joins keep k at even and v at odd positions).
func col(pos int) *expr.ColRef {
	return expr.NewColRef(pos, fmt.Sprintf("c%d", pos), storage.TypeInt64)
}

// tree builds a random plan of bounded depth. The root is always an
// aggregate so results are small and comparable.
func (g *randPlanGen) tree() (*Node, error) {
	node := g.pipeline(g.scan(), 3)
	if g.rng.Intn(2) == 0 {
		// Join with another pipeline on the key columns (positions 0).
		right := g.pipeline(g.scan(), 2)
		node = HashJoin(node, right, col(0), col(0))
	}
	v := col(1)
	return Aggregate(node, nil, []expr.AggSpec{
		{Func: expr.AggCountStar},
		{Func: expr.AggSum, Arg: v},
		{Func: expr.AggMin, Arg: v},
		{Func: expr.AggMax, Arg: v},
	})
}

// pipeline stacks random unary operators on top of a node.
func (g *randPlanGen) pipeline(node *Node, maxOps int) *Node {
	for i := 0; i < g.rng.Intn(maxOps+1); i++ {
		switch g.rng.Intn(4) {
		case 0:
			node = Sort(node, []exec.SortKey{{Expr: col(0)}})
		case 1:
			node = Material(node)
		case 2:
			node = Filter(node, expr.MustBinary(expr.OpGe,
				col(1), expr.NewConst(storage.NewInt(int64(g.rng.Intn(500))))))
		case 3:
			// no-op level
		}
	}
	return node
}

// TestRefinementTransparencyProperty: for many random plans, refinement
// (with random thresholds and budgets) never changes the query result, and
// its structural invariants hold.
func TestRefinementTransparencyProperty(t *testing.T) {
	cm := codemodel.NewCatalog()
	for seed := int64(0); seed < 40; seed++ {
		g := newRandPlanGen(seed)
		p, err := g.tree()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opts := RefineOptions{
			CardinalityThreshold: float64(g.rng.Intn(200)),
			BufferSize:           1 << g.rng.Intn(12),
			UseHotFootprints:     g.rng.Intn(2) == 0,
		}
		refined, res, err := Refine(p, cm, opts)
		if err != nil {
			t.Fatalf("seed %d refine: %v\n%s", seed, err, Explain(p))
		}

		// Structural invariants.
		Walk(refined, func(n *Node) {
			if n.Kind == KindBuffer {
				child := n.Children[0]
				if child.Blocking() {
					t.Errorf("seed %d: buffer above blocking %v", seed, child.Kind)
				}
				if child.EstRows < opts.CardinalityThreshold {
					t.Errorf("seed %d: buffer above %v with est %.0f < threshold %.0f",
						seed, child.Kind, child.EstRows, opts.CardinalityThreshold)
				}
			}
		})
		for _, grp := range res.Groups {
			for _, m := range grp.Members {
				if m.Blocking {
					t.Errorf("seed %d: blocking node inside group", seed)
				}
			}
		}

		// Transparency: identical results.
		origOp, err := Build(p, nil)
		if err != nil {
			t.Fatalf("seed %d build: %v", seed, err)
		}
		refOp, err := Build(refined, nil)
		if err != nil {
			t.Fatalf("seed %d build refined: %v", seed, err)
		}
		ctx := &exec.Context{Catalog: g.cat}
		a, err := exec.Run(ctx, origOp)
		if err != nil {
			t.Fatalf("seed %d run: %v", seed, err)
		}
		b, err := exec.Run(&exec.Context{Catalog: g.cat}, refOp)
		if err != nil {
			t.Fatalf("seed %d run refined: %v", seed, err)
		}
		if len(a) != len(b) {
			t.Fatalf("seed %d: row counts differ (%d vs %d)", seed, len(a), len(b))
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Fatalf("seed %d: row %d differs: %s vs %s\noriginal:\n%s\nrefined:\n%s",
					seed, i, a[i], b[i], Explain(p), Explain(refined))
			}
		}
	}
}

// TestRefineHotEstimatorSkipsMarginalGroups: the oracle estimator must
// never buffer MORE than the conservative one (hot ≤ reported footprints).
func TestRefineHotEstimatorSkipsMarginalGroups(t *testing.T) {
	cm := codemodel.NewCatalog()
	for seed := int64(100); seed < 120; seed++ {
		g := newRandPlanGen(seed)
		p, err := g.tree()
		if err != nil {
			t.Fatal(err)
		}
		cons, _, err := Refine(p, cm, RefineOptions{CardinalityThreshold: 10})
		if err != nil {
			t.Fatal(err)
		}
		hot, _, err := Refine(p, cm, RefineOptions{CardinalityThreshold: 10, UseHotFootprints: true})
		if err != nil {
			t.Fatal(err)
		}
		if CountKind(hot, KindBuffer) > CountKind(cons, KindBuffer) {
			t.Errorf("seed %d: hot estimator buffered more (%d) than conservative (%d)",
				seed, CountKind(hot, KindBuffer), CountKind(cons, KindBuffer))
		}
	}
}

// Guard: core.HotFootprintEstimator is a true lower bound on the paper's
// estimator for any module combination in the catalog.
func TestHotEstimatorLowerBound(t *testing.T) {
	cm := codemodel.NewCatalog()
	mods := []*codemodel.Module{
		cm.MustModule("SeqScanPred"),
		cm.MustModule("Sort"),
		cm.MustModule("HashProbe"),
	}
	agg, err := cm.AggModule([]string{"sum", "avg", "count"})
	if err != nil {
		t.Fatal(err)
	}
	mods = append(mods, agg)
	for i := range mods {
		for j := i; j < len(mods); j++ {
			pair := []*codemodel.Module{mods[i], mods[j]}
			if core.HotFootprintEstimator(pair...) > codemodel.CombinedFootprint(pair...) {
				t.Errorf("hot estimate exceeds reported footprint for %s+%s",
					mods[i].Name, mods[j].Name)
			}
		}
	}
}
