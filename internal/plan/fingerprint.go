package plan

import (
	"fmt"
	"sort"
	"strings"

	"bufferdb/internal/expr"
	"bufferdb/internal/reuse"
)

// Fingerprint derives the semantic reuse-cache key of the subtree rooted at
// n: a canonical rendering in which alpha-equivalent subtrees — same
// semantics under different aliases, whitespace, predicate order or
// comparison spelling — hash equal, while structurally different plans do
// not. Column references render by resolved position and type (never by
// display name), commutative operators sort their operands, conjunction
// chains flatten, and cascaded filters collapse. Every referenced table
// renders with its current write epoch from ep, so an INSERT into a table
// changes the keys of exactly its dependents.
//
// tables is the sorted set of base tables the subtree reads. ok is false
// when the subtree contains a node the canonicalizer does not understand
// (Exchange partitions, already-spliced sources, …) — such subtrees are
// simply not cached.
func Fingerprint(n *Node, ep *reuse.Epochs) (key string, tables []string, ok bool) {
	c := &canonicalizer{ep: ep, tables: map[string]bool{}}
	s, ok := c.node(n)
	if !ok {
		return "", nil, false
	}
	for t := range c.tables {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	return s, tables, true
}

// canonicalizer renders plan subtrees into canonical strings, collecting
// the base tables they read.
type canonicalizer struct {
	ep     *reuse.Epochs
	tables map[string]bool
}

// table records a base-table reference and renders its identity: name plus
// current write epoch, the invalidation hook.
func (c *canonicalizer) table(name string) string {
	c.tables[name] = true
	return fmt.Sprintf("tbl:%s@%d", name, c.ep.Of(name))
}

func (c *canonicalizer) node(n *Node) (string, bool) {
	switch n.Kind {
	case KindBuffer:
		// Buffering never changes results: transparent, so refined and
		// unrefined plans of the same query share cache entries.
		return c.node(n.Children[0])

	case KindSeqScan:
		if n.ScanSpan != nil {
			// Partition-restricted scans live inside Exchange subtrees;
			// their results are not whole-relation results.
			return "", false
		}
		t := c.table(n.Table.Name())
		if n.Filter == nil {
			return "scan(" + t + ")", true
		}
		f, ok := c.expr(n.Filter)
		if !ok {
			return "", false
		}
		return "scan(" + t + ",f=" + f + ")", true

	case KindIndexLookup:
		// The lookup key arrives per rescan from the enclosing nest-loop;
		// the node itself is just the table+index identity.
		return "idxlookup(" + c.table(n.Table.Name()) + "," + n.Index.Column + ")", true

	case KindIndexFullScan:
		t := c.table(n.Table.Name())
		if n.Filter == nil {
			return "idxscan(" + t + "," + n.Index.Column + ")", true
		}
		f, ok := c.expr(n.Filter)
		if !ok {
			return "", false
		}
		return "idxscan(" + t + "," + n.Index.Column + ",f=" + f + ")", true

	case KindFilter:
		// Collapse cascaded filters and the AND-chains inside them into one
		// sorted predicate set: WHERE a AND b ≡ WHERE b AND a ≡ two stacked
		// filters.
		var preds []string
		cur := n
		for cur.Kind == KindFilter || cur.Kind == KindBuffer {
			if cur.Kind == KindFilter {
				ps, ok := c.conjuncts(cur.Filter)
				if !ok {
					return "", false
				}
				preds = append(preds, ps...)
			}
			cur = cur.Children[0]
		}
		child, ok := c.node(cur)
		if !ok {
			return "", false
		}
		sort.Strings(preds)
		return "filter([" + strings.Join(preds, ";") + "]," + child + ")", true

	case KindProject:
		child, ok := c.node(n.Children[0])
		if !ok {
			return "", false
		}
		// Output names are aliases: excluded, so SELECT x AS a ≡ AS b.
		// Expression order is preserved — it is the output column order.
		exprs := make([]string, len(n.Projections))
		for i, e := range n.Projections {
			s, ok := c.expr(e)
			if !ok {
				return "", false
			}
			exprs[i] = s
		}
		return "project([" + strings.Join(exprs, ";") + "]," + child + ")", true

	case KindAggregate:
		child, ok := c.node(n.Children[0])
		if !ok {
			return "", false
		}
		groups := make([]string, len(n.GroupBy))
		for i, g := range n.GroupBy {
			s, ok := c.expr(g)
			if !ok {
				return "", false
			}
			groups[i] = s
		}
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			s, ok := c.agg(a)
			if !ok {
				return "", false
			}
			aggs[i] = s
		}
		return "agg(g=[" + strings.Join(groups, ";") + "],a=[" + strings.Join(aggs, ";") + "]," + child + ")", true

	case KindHashBuild:
		child, ok := c.node(n.Children[0])
		if !ok {
			return "", false
		}
		k, ok := c.expr(n.InnerKey)
		if !ok {
			return "", false
		}
		return "build(k=" + k + "," + child + ")", true

	case KindHashJoin:
		outer, ok := c.node(n.Children[0])
		if !ok {
			return "", false
		}
		build, ok := c.node(n.Children[1])
		if !ok {
			return "", false
		}
		k, ok := c.expr(n.OuterKey)
		if !ok {
			return "", false
		}
		return "hj(ok=" + k + "," + outer + "," + build + ")", true

	case KindMergeJoin:
		left, ok := c.node(n.Children[0])
		if !ok {
			return "", false
		}
		right, ok := c.node(n.Children[1])
		if !ok {
			return "", false
		}
		lk, ok := c.expr(n.OuterKey)
		if !ok {
			return "", false
		}
		rk, ok := c.expr(n.InnerKey)
		if !ok {
			return "", false
		}
		return "mj(" + lk + "," + rk + "," + left + "," + right + ")", true

	case KindNestLoopJoin:
		outer, ok := c.node(n.Children[0])
		if !ok {
			return "", false
		}
		inner, ok := c.node(n.Children[1])
		if !ok {
			return "", false
		}
		k, ok := c.expr(n.OuterKey)
		if !ok {
			return "", false
		}
		res := ""
		if n.Residual != nil {
			r, ok := c.expr(n.Residual)
			if !ok {
				return "", false
			}
			res = r
		}
		return "nl(k=" + k + ",r=" + res + "," + outer + "," + inner + ")", true

	case KindSort:
		child, ok := c.node(n.Children[0])
		if !ok {
			return "", false
		}
		keys := make([]string, len(n.SortKeys))
		for i, k := range n.SortKeys {
			s, ok := c.expr(k.Expr)
			if !ok {
				return "", false
			}
			if k.Desc {
				s += ":desc"
			}
			keys[i] = s
		}
		return "sort([" + strings.Join(keys, ";") + "]," + child + ")", true

	case KindLimit:
		child, ok := c.node(n.Children[0])
		if !ok {
			return "", false
		}
		return fmt.Sprintf("limit(%d,%s)", n.LimitN, child), true

	case KindMaterial:
		// Materialization never changes results: transparent.
		return c.node(n.Children[0])

	default:
		// Exchange (partitioned clones), CachedSource (already spliced) and
		// anything unknown: refuse rather than risk a wrong equality.
		return "", false
	}
}

// conjuncts flattens an AND-chain into its canonicalized operand set.
func (c *canonicalizer) conjuncts(e expr.Expr) ([]string, bool) {
	if b, isBin := e.(*expr.Binary); isBin && b.Op == expr.OpAnd {
		l, ok := c.conjuncts(b.L)
		if !ok {
			return nil, false
		}
		r, ok := c.conjuncts(b.R)
		if !ok {
			return nil, false
		}
		return append(l, r...), true
	}
	s, ok := c.expr(e)
	if !ok {
		return nil, false
	}
	return []string{s}, true
}

// expr canonicalizes a scalar expression. Column references render by
// resolved position and type — never display name — which is what makes
// alias-renamed queries collide.
func (c *canonicalizer) expr(e expr.Expr) (string, bool) {
	switch v := e.(type) {
	case *expr.ColRef:
		return fmt.Sprintf("$%d:%d", v.Idx, uint8(v.Typ)), true

	case *expr.Const:
		return fmt.Sprintf("lit:%d:%s", uint8(v.Val.Kind), v.Val.String()), true

	case *expr.Binary:
		return c.binary(v)

	case *expr.Not:
		s, ok := c.expr(v.E)
		if !ok {
			return "", false
		}
		return "not(" + s + ")", true

	case *expr.Neg:
		s, ok := c.expr(v.E)
		if !ok {
			return "", false
		}
		return "neg(" + s + ")", true

	case *expr.IsNull:
		s, ok := c.expr(v.E)
		if !ok {
			return "", false
		}
		if v.Negate {
			return "isnotnull(" + s + ")", true
		}
		return "isnull(" + s + ")", true

	case *expr.Like:
		s, ok := c.expr(v.E)
		if !ok {
			return "", false
		}
		neg := ""
		if v.Negate {
			neg = "!"
		}
		return "like" + neg + "(" + s + "," + v.Pattern + ")", true

	case *expr.Case:
		var parts []string
		for _, w := range v.Whens {
			cond, ok := c.expr(w.Cond)
			if !ok {
				return "", false
			}
			then, ok := c.expr(w.Then)
			if !ok {
				return "", false
			}
			parts = append(parts, "when("+cond+","+then+")")
		}
		if v.Else != nil {
			s, ok := c.expr(v.Else)
			if !ok {
				return "", false
			}
			parts = append(parts, "else("+s+")")
		}
		return "case(" + strings.Join(parts, ",") + ")", true

	default:
		return "", false
	}
}

// binary canonicalizes operators: AND/OR chains flatten and sort their
// operands, commutative =, <>, + and * sort their two sides, and >/>= flip
// into </<= so "a > b" and "b < a" collide.
func (c *canonicalizer) binary(b *expr.Binary) (string, bool) {
	switch b.Op {
	case expr.OpAnd, expr.OpOr:
		ops, ok := c.flatten(b, b.Op)
		if !ok {
			return "", false
		}
		sort.Strings(ops)
		name := "and"
		if b.Op == expr.OpOr {
			name = "or"
		}
		return name + "(" + strings.Join(ops, ",") + ")", true

	case expr.OpEq, expr.OpNe, expr.OpAdd, expr.OpMul:
		l, ok := c.expr(b.L)
		if !ok {
			return "", false
		}
		r, ok := c.expr(b.R)
		if !ok {
			return "", false
		}
		if l > r {
			l, r = r, l
		}
		return canonOpName(b.Op) + "(" + l + "," + r + ")", true

	case expr.OpGt, expr.OpGe:
		// a > b ≡ b < a; a >= b ≡ b <= a.
		l, ok := c.expr(b.L)
		if !ok {
			return "", false
		}
		r, ok := c.expr(b.R)
		if !ok {
			return "", false
		}
		flipped := expr.OpLt
		if b.Op == expr.OpGe {
			flipped = expr.OpLe
		}
		return canonOpName(flipped) + "(" + r + "," + l + ")", true

	default: // OpSub, OpDiv, OpLt, OpLe: order matters
		l, ok := c.expr(b.L)
		if !ok {
			return "", false
		}
		r, ok := c.expr(b.R)
		if !ok {
			return "", false
		}
		return canonOpName(b.Op) + "(" + l + "," + r + ")", true
	}
}

// flatten collects the canonicalized operands of a same-op logic chain.
func (c *canonicalizer) flatten(e expr.Expr, op expr.BinOp) ([]string, bool) {
	if b, isBin := e.(*expr.Binary); isBin && b.Op == op {
		l, ok := c.flatten(b.L, op)
		if !ok {
			return nil, false
		}
		r, ok := c.flatten(b.R, op)
		if !ok {
			return nil, false
		}
		return append(l, r...), true
	}
	s, ok := c.expr(e)
	if !ok {
		return nil, false
	}
	return []string{s}, true
}

// canonOpName names a binary operator in canonical output (symbol-free,
// stable).
func canonOpName(op expr.BinOp) string {
	switch op {
	case expr.OpAdd:
		return "add"
	case expr.OpSub:
		return "sub"
	case expr.OpMul:
		return "mul"
	case expr.OpDiv:
		return "div"
	case expr.OpEq:
		return "eq"
	case expr.OpNe:
		return "ne"
	case expr.OpLt:
		return "lt"
	case expr.OpLe:
		return "le"
	default:
		return fmt.Sprintf("op%d", uint8(op))
	}
}

// agg canonicalizes one aggregate call. The output alias (As) is excluded:
// SUM(x) AS total ≡ SUM(x) AS t.
func (c *canonicalizer) agg(a expr.AggSpec) (string, bool) {
	if a.Func == expr.AggCountStar {
		return "count*", true
	}
	s, ok := c.expr(a.Arg)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("f%d(%s)", uint8(a.Func), s), true
}
