package plan

import (
	"time"

	"bufferdb/internal/exec"
	"bufferdb/internal/reuse"
	"bufferdb/internal/storage"
)

// ApplyReuse consults the semantic reuse cache and rewrites the plan in
// place: an Aggregate whose fingerprint matches a published aggregate table
// is replaced by a CachedSource streaming the cached rows; a hash-join
// build side whose fingerprint matches a published build adopts the cached
// table (its drained input replaced by an empty CachedSource). On a miss,
// the matching operator gets a publish hook so the state it builds anyway
// becomes available to later queries.
//
// Returned releases unpin the adopted cache entries; the caller must run
// every one when the cursor closes (or fails to open) — until then the
// entries' memory reservations survive eviction and invalidation, so a
// probe never walks un-accounted memory. The returned node is the plan
// root, which itself may have been replaced.
//
// Exchange subtrees are left untouched: partitioned clones build per-worker
// partial state that must not be published as whole-relation results.
func ApplyReuse(root *Node, cache *reuse.Cache) (*Node, []func()) {
	if cache == nil || root == nil {
		return root, nil
	}
	r := &reuser{cache: cache, ep: cache.Epochs()}
	return r.visit(root), r.releases
}

type reuser struct {
	cache    *reuse.Cache
	ep       *reuse.Epochs
	releases []func()
}

// visit rewrites one node pre-order: fingerprints are taken before any
// descendant is spliced, so keys always describe the original subtree.
func (r *reuser) visit(n *Node) *Node {
	switch n.Kind {
	case KindExchange:
		return n
	case KindAggregate:
		if rep := r.aggregate(n); rep != nil {
			return rep
		}
	case KindHashJoin:
		if len(n.Children) == 2 && n.Children[1].Kind == KindHashBuild {
			r.build(n.Children[1])
		}
	}
	for i, c := range n.Children {
		n.Children[i] = r.visit(c)
	}
	return n
}

// aggregate tries to reuse a published aggregate table for n, returning the
// replacement CachedSource on a hit. On a miss it attaches the publish hook
// and returns nil. The replacement keeps the node's own schema: output
// aliases are per-query display names the fingerprint deliberately ignores,
// and the cached rows are positional.
func (r *reuser) aggregate(n *Node) *Node {
	key, tables, ok := Fingerprint(n, r.ep)
	if !ok {
		return nil
	}
	if payload, release, hit := r.cache.Lookup(key); hit {
		if at, isAgg := payload.(*reuse.AggTable); isAgg {
			r.releases = append(r.releases, release)
			return r.cachedNode(n.Schema(), at.Rows, n.EstRows, n.Group)
		}
		release()
	}
	snap := r.ep.Snapshot(tables)
	cache := r.cache
	n.SharedAgg = &exec.SharedAgg{Publish: func(rows []storage.Row, bytes int64, cost time.Duration) {
		cache.Publish(key, tables, snap, &reuse.AggTable{Rows: rows}, bytes, cost)
	}}
	return nil
}

// build tries to reuse a published hash-join build side for the HashBuild
// node b. On a hit the executing join adopts the cached table and the build
// input — which would otherwise be drained just to rebuild it — is replaced
// by an empty CachedSource. On a miss the build gets the publish hook.
func (r *reuser) build(b *Node) {
	key, tables, ok := Fingerprint(b, r.ep)
	if !ok {
		return
	}
	if payload, release, hit := r.cache.Lookup(key); hit {
		if jb, isBuild := payload.(*reuse.JoinBuild); isBuild {
			r.releases = append(r.releases, release)
			b.Shared = &exec.SharedBuild{Table: jb.Table}
			b.Reused = true
			inner := b.Children[0]
			b.Children[0] = r.cachedNode(inner.Schema(), nil, 0, inner.Group)
			return
		}
		release()
	}
	snap := r.ep.Snapshot(tables)
	cache := r.cache
	b.Shared = &exec.SharedBuild{Publish: func(table map[int64][]storage.Row, bytes int64, cost time.Duration) {
		cache.Publish(key, tables, snap, &reuse.JoinBuild{Table: table}, bytes, cost)
	}}
}

// cachedNode builds a spliced CachedSource node.
func (r *reuser) cachedNode(sch storage.Schema, rows []storage.Row, est float64, group int) *Node {
	return &Node{
		Kind:       KindCachedSource,
		CachedRows: rows,
		EstRows:    est,
		Group:      group,
		Reused:     true,
		schema:     sch,
	}
}
