package plan

import (
	"strings"
	"testing"

	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
)

// scanProjectPlan builds a Project over a filtered lineitem scan — a fully
// partitionable pipeline.
func scanProjectPlan(t *testing.T) *Node {
	t.Helper()
	li := tbl(t, "lineitem")
	scan := SeqScan(li, shipdateBefore(t, li, "1995-06-17"))
	proj, err := Project(scan,
		[]expr.Expr{MustCol(scan, "l_orderkey"), MustCol(scan, "l_extendedprice")},
		[]string{"l_orderkey", "l_extendedprice"})
	if err != nil {
		t.Fatal(err)
	}
	return proj
}

func TestParallelizeWrapsEligibleChain(t *testing.T) {
	p := Parallelize(scanProjectPlan(t), 4)
	if p.Kind != KindExchange {
		t.Fatalf("root = %v, want Exchange", p.Kind)
	}
	if p.Workers != 4 {
		t.Errorf("workers = %d", p.Workers)
	}
	if got := Explain(p); !strings.Contains(got, "Gather(workers=4)") {
		t.Errorf("Explain missing gather:\n%s", got)
	}
}

func TestParallelizeNoopBelowTwoWorkers(t *testing.T) {
	orig := scanProjectPlan(t)
	if p := Parallelize(orig, 1); p != orig {
		t.Error("Parallelize(1) rewrote the plan")
	}
	if p := Parallelize(orig, 0); p != orig {
		t.Error("Parallelize(0) rewrote the plan")
	}
}

func TestParallelizeDoesNotMutateInput(t *testing.T) {
	orig := scanProjectPlan(t)
	_ = Parallelize(orig, 4)
	if CountKind(orig, KindExchange) != 0 {
		t.Error("input plan gained an Exchange node")
	}
}

// TestParallelizeKeepsBuffersBelowGather is the refinement-aware placement
// check: a buffered pipeline parallelizes with the buffer inside each
// partition's subtree, not above the gather.
func TestParallelizeKeepsBuffersBelowGather(t *testing.T) {
	li := tbl(t, "lineitem")
	buf := Buffer(SeqScan(li, shipdateBefore(t, li, "1995-06-17")), 0)
	agg, err := Aggregate(buf, nil, []expr.AggSpec{{Func: expr.AggCountStar, As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	p := Parallelize(agg, 4)
	ex := p.Children[0]
	if ex.Kind != KindExchange {
		t.Fatalf("aggregate child = %v, want Exchange", ex.Kind)
	}
	if ex.Children[0].Kind != KindBuffer {
		t.Fatalf("gather child = %v, want Buffer below the gather", ex.Children[0].Kind)
	}
}

func TestParallelizeSkipsIndexPipelines(t *testing.T) {
	orders := tbl(t, "orders")
	li := tbl(t, "lineitem")
	scan := SeqScan(li, nil)
	lookup, err := IndexLookup(orders, orders.IndexOn("o_orderkey"))
	if err != nil {
		t.Fatal(err)
	}
	join, err := NestLoopJoin(scan, lookup, MustCol(scan, "l_orderkey"), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := Parallelize(join, 4)
	if p.Kind != KindNestLoopJoin {
		t.Fatalf("root = %v, want the join untouched at the root", p.Kind)
	}
	// The outer scan is eligible and gains a gather; the index lookup must
	// stay sequential.
	if p.Children[0].Kind != KindExchange {
		t.Errorf("outer = %v, want Exchange", p.Children[0].Kind)
	}
	if p.Children[1].Kind != KindIndexLookup {
		t.Errorf("inner = %v, want IndexLookup untouched", p.Children[1].Kind)
	}
}

func TestPartitionSubtreesCoverTable(t *testing.T) {
	li := tbl(t, "lineitem")
	p := Parallelize(scanProjectPlan(t), 3)
	parts := PartitionSubtrees(p)
	if len(parts) != 3 {
		t.Fatalf("got %d partitions, want 3", len(parts))
	}
	covered := 0
	prevEnd := 0
	for i, part := range parts {
		leaf := part
		for leaf.Kind != KindSeqScan {
			leaf = leaf.Children[0]
		}
		if leaf.ScanSpan == nil {
			t.Fatalf("partition %d has no span", i)
		}
		if leaf.ScanSpan.Start != prevEnd {
			t.Errorf("partition %d starts at %d, want %d", i, leaf.ScanSpan.Start, prevEnd)
		}
		prevEnd = leaf.ScanSpan.End
		covered += leaf.ScanSpan.Len()
	}
	if covered != li.NumRows() {
		t.Errorf("spans cover %d rows, want %d", covered, li.NumRows())
	}
}

// TestParallelCompiledEquivalence compiles the same parallelized plan at
// several fan-outs on both engines and requires byte-identical results.
func TestParallelCompiledEquivalence(t *testing.T) {
	base := scanProjectPlan(t)
	seq, err := Build(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Run(&exec.Context{Catalog: testDB}, seq)
	if err != nil {
		t.Fatal(err)
	}
	wantHash := exec.HashRows(want)
	for _, engine := range []Engine{EngineVolcano, EngineVec} {
		for _, workers := range []int{1, 2, 3, 4, 8} {
			op, err := Compile(Parallelize(base, workers), nil, engine)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", engine, workers, err)
			}
			rows, err := exec.Run(&exec.Context{Catalog: testDB}, op)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", engine, workers, err)
			}
			if exec.HashRows(rows) != wantHash {
				t.Errorf("%v workers=%d: result differs from sequential", engine, workers)
			}
		}
	}
}

// TestParallelFilterChainVecEngine covers the mixed path: a Filter chain has
// no batch variant, so the vec engine compiles the gather on the Volcano
// side with adapted partitions.
func TestParallelFilterChainVecEngine(t *testing.T) {
	li := tbl(t, "lineitem")
	scan := SeqScan(li, nil)
	filt := Filter(scan, shipdateBefore(t, li, "1995-06-17"))
	seq, err := Build(filt, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Run(&exec.Context{Catalog: testDB}, seq)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Compile(Parallelize(filt, 4), nil, EngineVec)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Run(&exec.Context{Catalog: testDB}, op)
	if err != nil {
		t.Fatal(err)
	}
	if exec.HashRows(rows) != exec.HashRows(want) {
		t.Error("vec-engine filter chain differs from sequential")
	}
}
