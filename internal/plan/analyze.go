package plan

import (
	"fmt"
	"strings"

	"bufferdb/internal/core"
	"bufferdb/internal/exec"
	"bufferdb/internal/push"
	"bufferdb/internal/vec"
)

// OpReport is one operator's node in an EXPLAIN ANALYZE tree: the plan-side
// identity (kind, execution group, buffer size, estimate) joined with the
// runtime counters its operator collected during one execution.
type OpReport struct {
	// Name is the operator's display name.
	Name string
	// Engine is "volcano", "vec" or "push", or "adapter" for the
	// engine-bridge nodes.
	Engine string
	// Group is the refinement pass's 1-based execution-group id (0 = none).
	Group int
	// Buffer marks buffer/adapter nodes whose Drains/FillTuples describe
	// refill behavior.
	Buffer bool
	// BufferSize is the configured capacity for buffer nodes (0 elsewhere).
	BufferSize int
	// EstRows is the optimizer's cardinality estimate, when the operator
	// maps back to a plan node.
	EstRows float64

	// Stats are the operator's collected counters. The simulated-CPU fields
	// are inclusive (operator plus subtree).
	Stats exec.OpStats

	// SelfCycles/SelfUops/SelfL1I are the exclusive simulated-CPU
	// attribution: inclusive minus the children's inclusive, clamped at
	// zero (interleavings like a nest-loop rescan can make the raw
	// difference marginally negative).
	SelfCycles float64
	SelfUops   uint64
	SelfL1I    uint64

	Children []*OpReport
}

// BufferAmortized reports whether a buffer node achieved refills long
// enough to amortize instruction reloads: the mean fill is at least half
// the configured capacity, or the whole input fit in a single drain.
func (r *OpReport) BufferAmortized() bool {
	if !r.Buffer || r.Stats.Drains == 0 {
		return false
	}
	if r.Stats.Drains == 1 {
		return true
	}
	return r.BufferSize > 0 && r.Stats.AvgFill() >= float64(r.BufferSize)/2
}

// reportChildren returns an operator's structural children across both
// engines, descending through the adapter boundaries that hide their
// subtree from the host engine's Children().
func reportChildren(op any) []any {
	switch o := op.(type) {
	// push.Reportable must precede exec.Operator: a push.Pipeline is both,
	// and its structural children are its fused elements, not the Volcano
	// fallback subtrees Children() exposes.
	case push.Reportable:
		return o.ReportChildren()
	case *vec.ToVolcano:
		return []any{o.Vec()}
	case *vec.FromVolcano:
		return []any{o.Volcano()}
	case exec.Operator:
		cs := o.Children()
		out := make([]any, len(cs))
		for i, c := range cs {
			out[i] = c
		}
		return out
	case vec.Operator:
		cs := o.Children()
		out := make([]any, len(cs))
		for i, c := range cs {
			out[i] = c
		}
		return out
	default:
		return nil
	}
}

// opEngine classifies an operator for the report's Engine column.
func opEngine(op any) string {
	switch op.(type) {
	case push.Reportable:
		return EnginePush.String()
	case *vec.ToVolcano, *vec.FromVolcano:
		return "adapter"
	case exec.Operator:
		return EngineVolcano.String()
	case vec.Operator:
		return EngineVec.String()
	default:
		return "?"
	}
}

// opName returns an operator's display name across both engines.
func opName(op any) string {
	switch o := op.(type) {
	case push.Reportable:
		return o.Name()
	case exec.Operator:
		return o.Name()
	case vec.Operator:
		return o.Name()
	default:
		return fmt.Sprintf("%T", op)
	}
}

// BuildReport joins a compiled plan's operator tree with the counters a
// StatsCollector gathered while executing it. Operators that never
// registered (never opened — e.g. pruned exchange partitions) appear with
// zero stats.
func BuildReport(cp *CompiledPlan, coll *exec.StatsCollector) *OpReport {
	var rec func(op any) *OpReport
	rec = func(op any) *OpReport {
		r := &OpReport{
			Name:   opName(op),
			Engine: opEngine(op),
		}
		if n := cp.Nodes[op]; n != nil {
			r.Group = n.Group
			r.EstRows = n.EstRows
			if n.Kind == KindBuffer {
				r.BufferSize = n.BufferSize
			}
		}
		if s := coll.Lookup(op); s != nil {
			r.Stats = *s
			if r.Name == "" {
				r.Name = s.Name
			}
		}
		switch op.(type) {
		case *vec.FromVolcano:
			r.Buffer = true
			r.BufferSize = vec.DefaultBatchSize
		default:
			if r.Stats.Drains > 0 || r.BufferSize > 0 {
				r.Buffer = true
			}
		}
		if r.Buffer && r.BufferSize == 0 {
			// A KindBuffer node with the default capacity.
			if n := cp.Nodes[op]; n != nil && n.Kind == KindBuffer {
				r.BufferSize = core.DefaultBufferSize
			}
		}
		r.SelfCycles, r.SelfUops, r.SelfL1I = r.Stats.Cycles, r.Stats.Uops, r.Stats.L1IMisses
		for _, c := range reportChildren(op) {
			cr := rec(c)
			r.Children = append(r.Children, cr)
			r.SelfCycles -= cr.Stats.Cycles
			if cr.Stats.Uops <= r.SelfUops {
				r.SelfUops -= cr.Stats.Uops
			} else {
				r.SelfUops = 0
			}
			if cr.Stats.L1IMisses <= r.SelfL1I {
				r.SelfL1I -= cr.Stats.L1IMisses
			} else {
				r.SelfL1I = 0
			}
		}
		if r.SelfCycles < 0 {
			r.SelfCycles = 0
		}
		return r
	}
	return rec(cp.Root)
}

// Walk visits a report tree depth-first, pre-order.
func (r *OpReport) Walk(visit func(*OpReport)) {
	visit(r)
	for _, c := range r.Children {
		c.Walk(visit)
	}
}

// FormatReport renders a report tree as an EXPLAIN ANALYZE table. With
// sim=true it appends the simulated-CPU attribution columns (self cycles,
// self L1I misses); without, it prints only the deterministic counters,
// which is what the golden-file tests pin down.
func FormatReport(root *OpReport, sim bool) string {
	type line struct {
		label string
		r     *OpReport
	}
	var lines []line
	var flatten func(r *OpReport, depth int)
	flatten = func(r *OpReport, depth int) {
		label := strings.Repeat("  ", depth) + r.Name
		lines = append(lines, line{label, r})
		for _, c := range r.Children {
			flatten(c, depth+1)
		}
	}
	flatten(root, 0)

	labelW := len("operator")
	for _, l := range lines {
		if len(l.label) > labelW {
			labelW = len(l.label)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %-7s  %5s  %8s  %10s  %7s  %8s  %7s", labelW, "operator", "engine", "group", "calls", "rows", "drains", "avgfill", "fanout")
	if sim {
		fmt.Fprintf(&b, "  %14s  %12s", "self cycles", "self L1I")
	}
	b.WriteByte('\n')
	for _, l := range lines {
		r := l.r
		group := "-"
		if r.Group > 0 {
			group = fmt.Sprintf("%d", r.Group)
		}
		drains, avgfill := "-", "-"
		if r.Buffer {
			drains = fmt.Sprintf("%d", r.Stats.Drains)
			avgfill = fmt.Sprintf("%.1f", r.Stats.AvgFill())
		}
		fanout := "-"
		if r.Stats.Partitions > 0 {
			fanout = fmt.Sprintf("%d", r.Stats.Partitions)
		}
		fmt.Fprintf(&b, "%-*s  %-7s  %5s  %8d  %10d  %7s  %8s  %7s",
			labelW, l.label, r.Engine, group, r.Stats.Calls, r.Stats.Rows, drains, avgfill, fanout)
		if sim {
			fmt.Fprintf(&b, "  %14.0f  %12d", r.SelfCycles, r.SelfL1I)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
