package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrUnknownTable is the sentinel wrapped by catalog lookups of names that
// do not exist; callers test it with errors.Is through any number of
// wrapping layers (SQL analysis, the bufferdb facade).
var ErrUnknownTable = errors.New("unknown table")

// Table is a memory-resident heap relation: a schema plus a slice of rows.
// Row identifiers are positions in the heap; indexes map key values to row
// identifiers.
//
// A table is built once by a loader (Append) and is immutable afterwards;
// all read accessors are safe for concurrent use. Simulated memory
// placement is per-execution state and lives in exec.Context, not here, so
// concurrent instrumented runs cannot interfere with each other.
type Table struct {
	name   string
	schema Schema
	rows   []Row

	// heap, when non-nil, backs the table with an external (disk-resident)
	// heap instead of the rows slice; see NewPagedTable. Row access then
	// goes through FetchRow/Iterate, which can surface I/O errors.
	heap Heap

	// rowOnce guards the lazily computed average row width so concurrent
	// readers (planner cost model, placement) agree on one value.
	rowOnce  sync.Once
	rowBytes int

	indexes map[string]*IndexMeta
}

// IndexMeta records a secondary access path registered on a table. The
// actual search structure lives in the btree package; the catalog only needs
// enough metadata to answer "is there an index on column X" during planning.
type IndexMeta struct {
	Name   string
	Column string // indexed column name
	Col    int    // indexed column position
	Unique bool
	// Search is the opaque handle to the index structure. It is declared as
	// an interface here to keep storage free of a dependency on btree.
	Search any
}

// NewTable creates an empty heap relation with the given schema.
func NewTable(name string, schema Schema) *Table {
	return &Table{
		name:    name,
		schema:  schema,
		indexes: make(map[string]*IndexMeta),
	}
}

// Name returns the relation name.
func (t *Table) Name() string { return t.name }

// Schema returns the relation schema. Callers must not mutate it.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the heap cardinality.
func (t *Table) NumRows() int {
	if t.heap != nil {
		return t.heap.NumRows()
	}
	return len(t.rows)
}

// Append adds a row to the heap and returns its row identifier.
// The row must match the schema arity; type agreement is the loader's
// responsibility (the TPC-H generator and the test fixtures are both typed
// at the source).
func (t *Table) Append(r Row) (int, error) {
	if t.heap != nil {
		return 0, fmt.Errorf("storage: table %s is disk-backed; write through the pager store", t.name)
	}
	if len(r) != len(t.schema) {
		return 0, fmt.Errorf("storage: table %s: row arity %d does not match schema arity %d",
			t.name, len(r), len(t.schema))
	}
	t.rows = append(t.rows, r)
	return len(t.rows) - 1, nil
}

// MustAppend is Append for generated data, where arity is correct by
// construction.
func (t *Table) MustAppend(r Row) int {
	id, err := t.Append(r)
	if err != nil {
		panic(err)
	}
	return id
}

// Row returns the row with the given identifier. For disk-backed tables it
// panics on I/O errors — the executor and planner use the error-propagating
// FetchRow instead; Row remains the zero-overhead accessor for the
// memory-resident hot path.
func (t *Table) Row(id int) Row {
	if t.heap != nil {
		r, err := t.heap.FetchRow(id)
		if err != nil {
			panic(fmt.Sprintf("storage: table %s: Row(%d) on disk-backed heap: %v (use FetchRow)", t.name, id, err))
		}
		return r
	}
	return t.rows[id]
}

// Rows returns the backing row slice for sequential scans.
// Callers must treat it as read-only. It panics for disk-backed tables,
// whose rows may not fit in memory — stream them with Iterate.
func (t *Table) Rows() []Row {
	if t.heap != nil {
		panic(fmt.Sprintf("storage: table %s is disk-backed; stream rows with Iterate", t.name))
	}
	return t.rows
}

// AvgRowBytes returns the mean in-memory row width, computed once over a
// sample of the heap. It is used both for simulated placement and by the
// planner's cost model, and is safe for concurrent callers.
func (t *Table) AvgRowBytes() int {
	t.rowOnce.Do(func() {
		if t.heap != nil {
			t.rowBytes = t.heap.AvgRowBytes()
			if t.rowBytes <= 0 {
				t.rowBytes = 64
			}
			return
		}
		if len(t.rows) == 0 {
			t.rowBytes = 64
			return
		}
		sample := len(t.rows)
		if sample > 1024 {
			sample = 1024
		}
		total := 0
		for i := 0; i < sample; i++ {
			total += t.rows[i].ByteSize()
		}
		t.rowBytes = total / sample
		if t.rowBytes == 0 {
			t.rowBytes = 16
		}
	})
	return t.rowBytes
}

// Span is a half-open row-identifier range [Start, End) of a table's heap:
// the unit of work one parallel scan worker owns.
type Span struct {
	Start, End int
}

// Len returns the number of rows the span covers.
func (s Span) Len() int { return s.End - s.Start }

// Partitions divides the heap into at most n contiguous, non-overlapping
// spans that cover every row in order. Concatenating the spans' rows
// reproduces the heap exactly, which is what makes a partition-ordered
// gather byte-identical to a single sequential scan. Fewer than n spans are
// returned when the table has fewer than n rows; an empty table yields one
// empty span.
func (t *Table) Partitions(n int) []Span {
	total := t.NumRows()
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	if n <= 1 {
		return []Span{{0, total}}
	}
	spans := make([]Span, 0, n)
	start := 0
	for i := 0; i < n; i++ {
		// Distribute the remainder one row at a time so sizes differ by
		// at most one.
		size := total / n
		if i < total%n {
			size++
		}
		spans = append(spans, Span{start, start + size})
		start += size
	}
	return spans
}

// AddIndex registers an index access path on the table.
func (t *Table) AddIndex(meta *IndexMeta) error {
	if meta.Name == "" {
		return fmt.Errorf("storage: index on %s needs a name", t.name)
	}
	if _, dup := t.indexes[meta.Name]; dup {
		return fmt.Errorf("storage: duplicate index %s on %s", meta.Name, t.name)
	}
	col, err := t.schema.ColumnIndex("", meta.Column)
	if err != nil {
		return err
	}
	if col < 0 {
		return fmt.Errorf("storage: index %s: no column %s in %s", meta.Name, meta.Column, t.name)
	}
	meta.Col = col
	t.indexes[meta.Name] = meta
	return nil
}

// IndexOn returns index metadata for an index keyed on the named column,
// or nil when no such index exists. Unique indexes are preferred.
func (t *Table) IndexOn(column string) *IndexMeta {
	var best *IndexMeta
	for _, m := range t.indexes {
		if strings.EqualFold(m.Column, column) {
			if m.Unique {
				return m
			}
			if best == nil {
				best = m
			}
		}
	}
	return best
}

// Indexes returns all registered indexes in name order.
func (t *Table) Indexes() []*IndexMeta {
	names := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*IndexMeta, len(names))
	for i, n := range names {
		out[i] = t.indexes[n]
	}
	return out
}

// Catalog is a named collection of tables: the database. A catalog is
// populated at load time (Add) and treated as read-only afterwards; the
// lookup methods are then safe for concurrent use from any number of
// queries.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add registers a table. Re-registering a name is an error: the benchmark
// harness builds each database exactly once and shares it across runs.
func (c *Catalog) Add(t *Table) error {
	key := strings.ToLower(t.Name())
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("storage: table %s already exists", t.Name())
	}
	c.tables[key] = t
	return nil
}

// MustAdd is Add that panics on duplicates, for fixtures.
func (c *Catalog) MustAdd(t *Table) {
	if err := c.Add(t); err != nil {
		panic(err)
	}
}

// Table looks up a table by case-insensitive name. The returned error wraps
// ErrUnknownTable when no such table exists.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: no table named %q: %w", name, ErrUnknownTable)
	}
	return t, nil
}

// Tables returns all tables in name order.
func (c *Catalog) Tables() []*Table {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Table, len(names))
	for i, n := range names {
		out[i] = c.tables[n]
	}
	return out
}
