package storage

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation or of an intermediate result.
type Column struct {
	// Table is the (possibly aliased) relation name qualifying the column.
	// It is empty for computed columns such as aggregate outputs.
	Table string
	// Name is the attribute name.
	Name string
	// Type is the attribute type.
	Type Type
}

// QualifiedName returns "table.name", or just "name" when unqualified.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns describing a row shape.
type Schema []Column

// ColumnIndex resolves a column reference against the schema.
// A qualified reference (table != "") must match both parts; an unqualified
// reference matches by name and must be unambiguous.
// It returns -1 if the column is not found, and an error when an unqualified
// name matches more than one column.
func (s Schema) ColumnIndex(table, name string) (int, error) {
	found := -1
	for i, c := range s {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("storage: ambiguous column reference %q", name)
		}
		found = i
	}
	return found, nil
}

// Concat returns the schema of the concatenation of two row shapes, as
// produced by a join operator.
func (s Schema) Concat(other Schema) Schema {
	out := make(Schema, 0, len(s)+len(other))
	out = append(out, s...)
	out = append(out, other...)
	return out
}

// String renders the schema for EXPLAIN output and error messages.
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.QualifiedName() + " " + c.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Row is one tuple: a flat slice of values positionally aligned with a
// Schema. Operators hand rows to their parents by reference (the slice
// header), never by copying the values — this is exactly the property the
// paper's buffer operator exploits: it stores an array of tuple references
// and requires only that the referenced tuples stay alive until consumed.
type Row []Value

// Clone returns a deep copy of the row. The engine itself never clones on
// the hot path; Clone exists for operators that must retain input rows past
// their producer's lifetime guarantees (e.g. the copy-buffer ablation).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// ByteSize returns the approximate in-memory size of the row, used by the
// CPU simulator to model data-cache traffic.
func (r Row) ByteSize() int {
	n := 0
	for i := range r {
		n += r[i].ByteSize()
	}
	return n
}

// Concat returns the concatenation of two rows into a freshly allocated row.
func (r Row) Concat(other Row) Row {
	out := make(Row, 0, len(r)+len(other))
	out = append(out, r...)
	out = append(out, other...)
	return out
}

// String renders the row as a pipe-separated line, used in tests and by the
// CLI result printer.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i := range r {
		parts[i] = r[i].String()
	}
	return strings.Join(parts, "|")
}
