// Package storage provides the in-memory storage substrate for bufferdb:
// typed values, row tuples, schemas, heap-resident relations and a catalog.
//
// The engine is memory-resident by design, mirroring the experimental setup
// of Zhou & Ross (SIGMOD 2004), where the buffer pool is sized so that all
// tables fit in RAM and I/O never interferes with the CPU-cache study.
package storage

import (
	"fmt"
	"strconv"
	"time"
)

// Type identifies the runtime type of a Value.
type Type uint8

// Supported column types. Dates are stored as days since the Unix epoch so
// that date comparison and arithmetic are plain integer operations, as in
// most main-memory engines.
const (
	TypeNull Type = iota
	TypeBool
	TypeInt64
	TypeFloat64
	TypeString
	TypeDate
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeBool:
		return "BOOLEAN"
	case TypeInt64:
		return "BIGINT"
	case TypeFloat64:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	case TypeDate:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Numeric reports whether values of this type participate in arithmetic.
func (t Type) Numeric() bool {
	return t == TypeInt64 || t == TypeFloat64
}

// Comparable reports whether values of this type can be ordered.
func (t Type) Comparable() bool {
	return t != TypeNull
}

// Value is a single typed datum. It is a tagged union kept deliberately
// unboxed (no interface{}) so that tuples are flat []Value slices with no
// per-datum heap allocation on the query hot path.
type Value struct {
	// Kind is the runtime type tag.
	Kind Type
	// I holds TypeInt64 values, TypeDate values (days since epoch) and
	// TypeBool values (0 or 1).
	I int64
	// F holds TypeFloat64 values.
	F float64
	// S holds TypeString values.
	S string
}

// Null is the SQL NULL value.
var Null = Value{Kind: TypeNull}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{Kind: TypeInt64, I: v} }

// NewFloat returns a double-precision value.
func NewFloat(v float64) Value { return Value{Kind: TypeFloat64, F: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{Kind: TypeString, S: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	if v {
		return Value{Kind: TypeBool, I: 1}
	}
	return Value{Kind: TypeBool, I: 0}
}

// NewDate returns a date value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{Kind: TypeDate, I: days} }

// epochDay converts a civil date to days since 1970-01-01.
func epochDay(year, month, day int) int64 {
	t := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return t.Unix() / 86400
}

// DateFromYMD returns a date value for the given civil date.
func DateFromYMD(year, month, day int) Value {
	return NewDate(epochDay(year, month, day))
}

// ParseDate parses a 'YYYY-MM-DD' literal into a date value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("storage: invalid date literal %q: %w", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == TypeNull }

// Bool returns the boolean content; callers must check Kind first.
func (v Value) Bool() bool { return v.I != 0 }

// AsFloat returns the numeric content widened to float64.
// It is only meaningful for numeric kinds.
func (v Value) AsFloat() float64 {
	if v.Kind == TypeFloat64 {
		return v.F
	}
	return float64(v.I)
}

// String renders the value for display and for deterministic test output.
func (v Value) String() string {
	switch v.Kind {
	case TypeNull:
		return "NULL"
	case TypeBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case TypeInt64:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat64:
		return strconv.FormatFloat(v.F, 'f', -1, 64)
	case TypeString:
		return v.S
	case TypeDate:
		t := time.Unix(v.I*86400, 0).UTC()
		return t.Format("2006-01-02")
	default:
		return fmt.Sprintf("<bad value kind %d>", v.Kind)
	}
}

// Compare orders two values of compatible types.
// It returns -1, 0 or +1. NULL sorts before every non-NULL value, which
// matches the engine's internal sort convention.
//
// Int64 and Float64 compare with each other by widening to float64; Date
// compares with Date; Bool with Bool (false < true); String with String.
// Comparing incompatible kinds panics: the analyzer guarantees well-typed
// plans, so an incompatible comparison here is an engine bug, not user error.
func Compare(a, b Value) int {
	if a.Kind == TypeNull || b.Kind == TypeNull {
		switch {
		case a.Kind == b.Kind:
			return 0
		case a.Kind == TypeNull:
			return -1
		default:
			return 1
		}
	}
	switch {
	case a.Kind == TypeInt64 && b.Kind == TypeInt64,
		a.Kind == TypeDate && b.Kind == TypeDate,
		a.Kind == TypeBool && b.Kind == TypeBool:
		return cmpInt64(a.I, b.I)
	case a.Kind.Numeric() && b.Kind.Numeric():
		return cmpFloat64(a.AsFloat(), b.AsFloat())
	case a.Kind == TypeString && b.Kind == TypeString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	default:
		panic(fmt.Sprintf("storage: cannot compare %v with %v", a.Kind, b.Kind))
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare semantics,
// with NULL equal only to NULL (this is the grouping/join-key notion of
// equality, not three-valued SQL equality).
func Equal(a, b Value) bool {
	if a.Kind == TypeNull || b.Kind == TypeNull {
		return a.Kind == b.Kind
	}
	return Compare(a, b) == 0
}

// ByteSize returns the approximate in-memory size of the value in bytes.
// The CPU simulator uses it to model data-cache traffic per tuple.
func (v Value) ByteSize() int {
	const header = 16 // tag + one machine word, rounded
	if v.Kind == TypeString {
		return header + len(v.S)
	}
	return header
}
