package storage

import (
	"errors"
	"strings"
	"testing"
)

func testSchema() Schema {
	return Schema{
		{Table: "t", Name: "a", Type: TypeInt64},
		{Table: "t", Name: "b", Type: TypeString},
		{Table: "t", Name: "c", Type: TypeFloat64},
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s := testSchema()
	if i, err := s.ColumnIndex("", "b"); err != nil || i != 1 {
		t.Errorf("ColumnIndex(b) = %d, %v", i, err)
	}
	if i, err := s.ColumnIndex("t", "c"); err != nil || i != 2 {
		t.Errorf("ColumnIndex(t.c) = %d, %v", i, err)
	}
	if i, err := s.ColumnIndex("u", "c"); err != nil || i != -1 {
		t.Errorf("ColumnIndex(u.c) = %d, %v, want -1", i, err)
	}
	if i, err := s.ColumnIndex("", "missing"); err != nil || i != -1 {
		t.Errorf("ColumnIndex(missing) = %d, %v, want -1", i, err)
	}
	// Case-insensitive resolution.
	if i, err := s.ColumnIndex("T", "B"); err != nil || i != 1 {
		t.Errorf("ColumnIndex(T.B) = %d, %v", i, err)
	}
	// Ambiguity.
	dup := append(Schema{}, s...)
	dup = append(dup, Column{Table: "u", Name: "a", Type: TypeInt64})
	if _, err := dup.ColumnIndex("", "a"); err == nil {
		t.Error("ambiguous reference not reported")
	}
	if i, err := dup.ColumnIndex("u", "a"); err != nil || i != 3 {
		t.Errorf("qualified reference in ambiguous schema = %d, %v", i, err)
	}
}

func TestSchemaConcatAndString(t *testing.T) {
	s := testSchema()
	u := Schema{{Table: "u", Name: "x", Type: TypeDate}}
	cat := s.Concat(u)
	if len(cat) != 4 || cat[3].Name != "x" {
		t.Errorf("Concat = %v", cat)
	}
	if !strings.Contains(s.String(), "t.b VARCHAR") {
		t.Errorf("Schema.String() = %q", s.String())
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(99)
	if r[0].I != 1 {
		t.Error("Clone did not deep-copy")
	}
	j := r.Concat(Row{NewFloat(2.5)})
	if len(j) != 3 || j[2].F != 2.5 {
		t.Errorf("Concat = %v", j)
	}
	if got := r.String(); got != "1|x" {
		t.Errorf("Row.String() = %q", got)
	}
}

func TestTableAppendAndRead(t *testing.T) {
	tbl := NewTable("t", testSchema())
	if tbl.NumRows() != 0 {
		t.Fatal("new table not empty")
	}
	id, err := tbl.Append(Row{NewInt(1), NewString("a"), NewFloat(0.5)})
	if err != nil || id != 0 {
		t.Fatalf("Append: %d, %v", id, err)
	}
	tbl.MustAppend(Row{NewInt(2), NewString("b"), NewFloat(1.5)})
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	if got := tbl.Row(1)[1].S; got != "b" {
		t.Errorf("Row(1) col b = %q", got)
	}
	if len(tbl.Rows()) != 2 {
		t.Errorf("Rows() len = %d", len(tbl.Rows()))
	}
	if _, err := tbl.Append(Row{NewInt(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestPartitions(t *testing.T) {
	tbl := NewTable("t", testSchema())
	for i := 0; i < 10; i++ {
		tbl.MustAppend(Row{NewInt(int64(i)), NewString("a"), NewFloat(0.5)})
	}
	for _, n := range []int{1, 2, 3, 4, 7, 10, 25} {
		spans := tbl.Partitions(n)
		if len(spans) > n || len(spans) > tbl.NumRows() {
			t.Fatalf("Partitions(%d) = %d spans", n, len(spans))
		}
		pos := 0
		for _, s := range spans {
			if s.Start != pos || s.End < s.Start {
				t.Fatalf("Partitions(%d): span %+v does not continue at %d", n, s, pos)
			}
			pos = s.End
		}
		if pos != tbl.NumRows() {
			t.Fatalf("Partitions(%d) covers %d rows, want %d", n, pos, tbl.NumRows())
		}
		// Balanced: sizes differ by at most one.
		min, max := tbl.NumRows(), 0
		for _, s := range spans {
			if s.Len() < min {
				min = s.Len()
			}
			if s.Len() > max {
				max = s.Len()
			}
		}
		if max-min > 1 {
			t.Errorf("Partitions(%d): unbalanced spans %v", n, spans)
		}
	}
	empty := NewTable("e", testSchema())
	spans := empty.Partitions(4)
	if len(spans) != 1 || spans[0].Len() != 0 {
		t.Errorf("empty Partitions = %v", spans)
	}
}

func TestUnknownTableSentinel(t *testing.T) {
	cat := NewCatalog()
	_, err := cat.Table("nope")
	if !errors.Is(err, ErrUnknownTable) {
		t.Errorf("Table(nope) error %v does not wrap ErrUnknownTable", err)
	}
}

func TestAvgRowBytes(t *testing.T) {
	tbl := NewTable("t", testSchema())
	if tbl.AvgRowBytes() <= 0 {
		t.Error("empty table must report a positive default width")
	}
	tbl2 := NewTable("t2", testSchema())
	for i := 0; i < 10; i++ {
		tbl2.MustAppend(Row{NewInt(1), NewString("abcd"), NewFloat(0.5)})
	}
	want := Row{NewInt(1), NewString("abcd"), NewFloat(0.5)}.ByteSize()
	if got := tbl2.AvgRowBytes(); got != want {
		t.Errorf("AvgRowBytes = %d, want %d", got, want)
	}
}

func TestIndexes(t *testing.T) {
	tbl := NewTable("t", testSchema())
	if err := tbl.AddIndex(&IndexMeta{Name: "t_a", Column: "a", Unique: true}); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	if err := tbl.AddIndex(&IndexMeta{Name: "t_a", Column: "a"}); err == nil {
		t.Error("duplicate index name accepted")
	}
	if err := tbl.AddIndex(&IndexMeta{Name: "t_z", Column: "z"}); err == nil {
		t.Error("index on missing column accepted")
	}
	if err := tbl.AddIndex(&IndexMeta{Column: "a"}); err == nil {
		t.Error("unnamed index accepted")
	}
	m := tbl.IndexOn("a")
	if m == nil || !m.Unique || m.Col != 0 {
		t.Errorf("IndexOn(a) = %+v", m)
	}
	if tbl.IndexOn("b") != nil {
		t.Error("IndexOn(b) found a ghost index")
	}
	if err := tbl.AddIndex(&IndexMeta{Name: "t_b", Column: "b"}); err != nil {
		t.Fatalf("AddIndex b: %v", err)
	}
	all := tbl.Indexes()
	if len(all) != 2 || all[0].Name != "t_a" || all[1].Name != "t_b" {
		t.Errorf("Indexes() = %v", all)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	c.MustAdd(NewTable("orders", testSchema()))
	if err := c.Add(NewTable("ORDERS", testSchema())); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	tbl, err := c.Table("Orders")
	if err != nil || tbl.Name() != "orders" {
		t.Errorf("Table lookup: %v, %v", tbl, err)
	}
	if _, err := c.Table("nope"); err == nil {
		t.Error("missing table lookup succeeded")
	}
	c.MustAdd(NewTable("lineitem", testSchema()))
	tables := c.Tables()
	if len(tables) != 2 || tables[0].Name() != "lineitem" {
		t.Errorf("Tables() order: %v", tables)
	}
}
