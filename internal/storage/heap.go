package storage

import "fmt"

// Heap abstracts where a table's rows physically live. The default backing
// is the in-memory row slice the engine was built around; internal/pager
// provides a disk-backed implementation (slotted pages behind a buffer
// pool), which is how a table larger than RAM still serves sequential scans
// and point fetches. The interface is deliberately tiny: the executor only
// ever streams a span or fetches one row by identifier.
//
// All methods must be safe for concurrent use; FetchRow and Iterate may
// perform I/O and therefore can fail, unlike the in-memory accessors.
type Heap interface {
	// NumRows returns the heap cardinality.
	NumRows() int
	// AvgRowBytes returns the mean in-memory row width (for the planner's
	// cost model and simulated placement).
	AvgRowBytes() int
	// FetchRow returns the row with the given identifier.
	FetchRow(rid int) (Row, error)
	// Iterate returns an iterator over the span's rows in rid order.
	Iterate(span Span) (RowIterator, error)
}

// RowIterator streams rows from a Heap. Iterators are single-use and not
// safe for concurrent use; each scan operator owns its own.
type RowIterator interface {
	// Next returns the next row and its identifier. ok=false signals the
	// end of the stream (rid and row are then meaningless). An I/O or
	// corruption error ends the stream with err != nil.
	Next() (rid int, row Row, ok bool, err error)
	// Close releases the iterator's resources (pinned pages). It is
	// idempotent.
	Close() error
}

// sliceIterator adapts the in-memory row slice to RowIterator so memory-
// backed and disk-backed tables stream through one code path when callers
// prefer uniformity (the engines keep their direct slice fast path).
type sliceIterator struct {
	rows []Row
	pos  int
	end  int
}

// Next implements RowIterator.
func (it *sliceIterator) Next() (int, Row, bool, error) {
	if it.pos >= it.end {
		return 0, nil, false, nil
	}
	rid := it.pos
	it.pos++
	return rid, it.rows[rid], true, nil
}

// Close implements RowIterator.
func (it *sliceIterator) Close() error { return nil }

// NewPagedTable creates a table whose rows live in the given heap instead
// of the in-memory slice. Paged tables are read-only through the Table API
// (writes go through the owning pager store, which keeps the write-ahead
// log and the page images consistent); Append and Rows panic or error to
// catch misuse early.
func NewPagedTable(name string, schema Schema, heap Heap) *Table {
	return &Table{
		name:    name,
		schema:  schema,
		heap:    heap,
		indexes: make(map[string]*IndexMeta),
	}
}

// Paged reports whether the table's rows live behind a Heap (disk-backed)
// rather than in the in-memory row slice.
func (t *Table) Paged() bool { return t.heap != nil }

// FetchRow returns the row with the given identifier, surfacing I/O errors
// from disk-backed heaps. It is the error-propagating form of Row and the
// accessor the executor uses wherever a paged table may appear.
func (t *Table) FetchRow(rid int) (Row, error) {
	if t.heap != nil {
		return t.heap.FetchRow(rid)
	}
	if rid < 0 || rid >= len(t.rows) {
		return nil, fmt.Errorf("storage: table %s: row %d out of range [0,%d)", t.name, rid, len(t.rows))
	}
	return t.rows[rid], nil
}

// Iterate returns a rid-ordered iterator over the span. For memory-backed
// tables it is a zero-I/O view of the row slice; for paged tables it
// streams pages through the owning buffer pool, so a pool smaller than the
// table still scans correctly (pages are pinned one at a time).
func (t *Table) Iterate(span Span) (RowIterator, error) {
	if t.heap != nil {
		return t.heap.Iterate(span)
	}
	if span.Start < 0 || span.End > len(t.rows) || span.Start > span.End {
		return nil, fmt.Errorf("storage: table %s: span [%d,%d) out of range [0,%d)", t.name, span.Start, span.End, len(t.rows))
	}
	return &sliceIterator{rows: t.rows, pos: span.Start, end: span.End}, nil
}
