package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeNull:    "NULL",
		TypeBool:    "BOOLEAN",
		TypeInt64:   "BIGINT",
		TypeFloat64: "DOUBLE",
		TypeString:  "VARCHAR",
		TypeDate:    "DATE",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", ty, got, want)
		}
	}
	if got := Type(99).String(); got != "Type(99)" {
		t.Errorf("unknown type rendered %q", got)
	}
}

func TestTypePredicates(t *testing.T) {
	if !TypeInt64.Numeric() || !TypeFloat64.Numeric() {
		t.Error("int64/float64 must be numeric")
	}
	if TypeString.Numeric() || TypeDate.Numeric() || TypeBool.Numeric() {
		t.Error("string/date/bool must not be numeric")
	}
	if TypeNull.Comparable() {
		t.Error("NULL is not comparable")
	}
	if !TypeDate.Comparable() {
		t.Error("DATE must be comparable")
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.Kind != TypeInt64 || v.I != 42 {
		t.Errorf("NewInt: %+v", v)
	}
	if v := NewFloat(2.5); v.Kind != TypeFloat64 || v.F != 2.5 {
		t.Errorf("NewFloat: %+v", v)
	}
	if v := NewString("x"); v.Kind != TypeString || v.S != "x" {
		t.Errorf("NewString: %+v", v)
	}
	if v := NewBool(true); v.Kind != TypeBool || !v.Bool() {
		t.Errorf("NewBool(true): %+v", v)
	}
	if v := NewBool(false); v.Bool() {
		t.Errorf("NewBool(false): %+v", v)
	}
	if !Null.IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
	if got := NewInt(7).AsFloat(); got != 7.0 {
		t.Errorf("AsFloat(int 7) = %v", got)
	}
	if got := NewFloat(1.25).AsFloat(); got != 1.25 {
		t.Errorf("AsFloat(float 1.25) = %v", got)
	}
}

func TestDates(t *testing.T) {
	d, err := ParseDate("1998-09-02")
	if err != nil {
		t.Fatalf("ParseDate: %v", err)
	}
	if d.Kind != TypeDate {
		t.Fatalf("ParseDate kind = %v", d.Kind)
	}
	if got := d.String(); got != "1998-09-02" {
		t.Errorf("date round trip = %q", got)
	}
	if got := DateFromYMD(1998, 9, 2); got != d {
		t.Errorf("DateFromYMD = %v, ParseDate = %v", got, d)
	}
	if epoch := DateFromYMD(1970, 1, 1); epoch.I != 0 {
		t.Errorf("epoch day = %d, want 0", epoch.I)
	}
	if next := DateFromYMD(1970, 1, 2); next.I != 1 {
		t.Errorf("1970-01-02 day = %d, want 1", next.I)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("ParseDate accepted garbage")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt(-3), "-3"},
		{NewFloat(1.5), "1.5"},
		{NewString("hi"), "hi"},
		{DateFromYMD(1995, 12, 31), "1995-12-31"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(1), 1},
		{NewInt(2), NewInt(2), 0},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(1.5), 1},
		{NewFloat(2), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("a"), 1},
		{NewString("a"), NewString("a"), 0},
		{DateFromYMD(1995, 1, 1), DateFromYMD(1996, 1, 1), -1},
		{NewBool(false), NewBool(true), -1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestComparePanicsOnIncompatible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Compare(string, int) did not panic")
		}
	}()
	Compare(NewString("x"), NewInt(1))
}

func TestEqual(t *testing.T) {
	if !Equal(Null, Null) {
		t.Error("NULL must group-equal NULL")
	}
	if Equal(Null, NewInt(0)) {
		t.Error("NULL must not equal 0")
	}
	if !Equal(NewInt(3), NewFloat(3)) {
		t.Error("3 must equal 3.0")
	}
	if Equal(NewInt(3), NewFloat(3.5)) {
		t.Error("3 must not equal 3.5")
	}
}

// Property: Compare is a total order on int values — antisymmetric and
// transitive with respect to the underlying integers.
func TestCompareIntProperty(t *testing.T) {
	f := func(a, b int64) bool {
		got := Compare(NewInt(a), NewInt(b))
		switch {
		case a < b:
			return got == -1
		case a > b:
			return got == 1
		default:
			return got == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare(a, b) == -Compare(b, a) for floats (excluding NaN, which
// the engine never produces).
func TestCompareFloatAntisymmetry(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return Compare(NewFloat(a), NewFloat(b)) == -Compare(NewFloat(b), NewFloat(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteSize(t *testing.T) {
	if NewInt(1).ByteSize() != 16 {
		t.Errorf("int size = %d", NewInt(1).ByteSize())
	}
	if got := NewString("abcd").ByteSize(); got != 20 {
		t.Errorf("string size = %d, want 20", got)
	}
	r := Row{NewInt(1), NewString("ab")}
	if got := r.ByteSize(); got != 16+18 {
		t.Errorf("row size = %d", got)
	}
}
