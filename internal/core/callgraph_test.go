package core

import (
	"testing"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/cpusim"
)

// TestMeasuredFootprintsMatchModel is the §7.1 loop closed: footprints
// derived by *observing* the calibration queries must equal the dynamic
// call sets the code model declares — and must exclude the cold error-path
// code that inflates the naive static estimate.
func TestMeasuredFootprintsMatchModel(t *testing.T) {
	cm := codemodel.NewCatalog()
	measured, err := MeasureFootprints(cm, cpusim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantModules := []string{
		"SeqScan", "SeqScanPred", "IndexScan", "Sort",
		"NestLoop", "MergeJoin", "HashBuild", "HashProbe", "Buffer",
	}
	for _, name := range wantModules {
		m := cm.MustModule(name)
		got, ok := measured[name]
		if !ok {
			t.Errorf("calibration never exercised %s", name)
			continue
		}
		if got != m.FootprintBytes() {
			t.Errorf("%s measured %d B, model says %d B", name, got, m.FootprintBytes())
		}
		// Modules with error-path (cold) code must measure strictly below
		// the static estimate; the Buffer module has none.
		if name != "Buffer" && got >= m.StaticFootprintBytes() {
			t.Errorf("%s measured %d B not below static %d B — cold code leaked into the dynamic call graph",
				name, got, m.StaticFootprintBytes())
		}
	}
	// The full-aggregate module was exercised too.
	agg, err := cm.AggModule([]string{"count", "min", "max", "sum", "avg"})
	if err != nil {
		t.Fatal(err)
	}
	if got := measured[agg.Name]; got != agg.FootprintBytes() {
		t.Errorf("aggregation measured %d B, model says %d B", got, agg.FootprintBytes())
	}
}

func TestCallGraphRecorderBasics(t *testing.T) {
	cm := codemodel.NewCatalog()
	rec := NewCallGraphRecorder(cm)
	if _, ok := rec.MeasuredFootprint(cm.MustModule("Sort")); ok {
		t.Error("unexecuted module has a measurement")
	}
	hook := rec.Hook()
	m := cm.MustModule("Buffer")
	for _, line := range m.Lines() {
		hook(m, line)
	}
	got, ok := rec.MeasuredFootprint(m)
	if !ok || got != m.FootprintBytes() {
		t.Errorf("recorded footprint = %d, %v; want %d", got, ok, m.FootprintBytes())
	}
	if len(rec.Modules()) != 1 {
		t.Errorf("modules = %d", len(rec.Modules()))
	}
	// A fetch into padding is ignored.
	hook(m, 1) // below any function
	if got2, _ := rec.MeasuredFootprint(m); got2 != got {
		t.Error("padding fetch changed the measurement")
	}
}

func TestFunctionAt(t *testing.T) {
	cm := codemodel.NewCatalog()
	m := cm.MustModule("SeqScan")
	f := m.Funcs[0]
	if got := cm.FunctionAt(f.Addr); got != f {
		t.Errorf("FunctionAt(start) = %v", got)
	}
	if got := cm.FunctionAt(f.Addr + uint64(f.Size) - 1); got != f {
		t.Errorf("FunctionAt(end) = %v", got)
	}
	if got := cm.FunctionAt(f.Addr + uint64(f.Size)); got == f {
		t.Error("FunctionAt(one past end) returned the same function")
	}
	if cm.FunctionAt(0) != nil {
		t.Error("FunctionAt(0) found a function below the text segment")
	}
}
