// Package core implements the paper's contribution: the light-weight buffer
// operator (§5), instruction-footprint-based execution-group formation and
// the plan refinement algorithm (§6), and the cardinality-threshold
// calibration experiment the refinement rule depends on.
package core

import (
	"fmt"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// DefaultBufferSize is the tuple capacity of a buffer operator. The paper's
// §7.4 sweep finds that a moderate size captures nearly all of the benefit
// (reduced misses ∝ 1/buffersize) while keeping data-cache pressure low;
// it settles on a few hundred to a thousand entries. We default to 1024.
const DefaultBufferSize = 1024

// Buffer is the paper's buffer operator (Figure 6): a plain open-next-close
// iterator that, when asked for a tuple, first fills an array with
// references to tuples pulled from its child, then serves subsequent
// requests from the array without executing any child code. The child
// therefore runs in batches of Size invocations — turning the interleaved
// execution sequence PCPCPC… into PCCCC…CPPPP…P (Figure 1) and keeping each
// operator's instructions and branch-predictor state resident while it runs.
//
// The buffer stores tuple *references*, never copies — tuples stay in the
// child operator's memory until the parent consumes them (§5). Its own
// instruction footprint is under 1 KB (Table 2).
type Buffer struct {
	Child exec.Operator
	// Size is the array capacity in tuples.
	Size int

	module *codemodel.Module
	label  byte
	stats  *exec.OpStats
	fault  *faultinject.Point

	buf     []storage.Row
	memUsed int64
	pos     int
	eof     bool

	// arrayRegion is the simulated address of the pointer array.
	arrayRegion uint64
	opened      bool
}

// NewBuffer wraps child with a buffer of the given size (0 selects
// DefaultBufferSize). module is the buffer's own instruction footprint
// (codemodel "Buffer"); nil runs unmodeled.
func NewBuffer(child exec.Operator, size int, module *codemodel.Module) *Buffer {
	if size <= 0 {
		size = DefaultBufferSize
	}
	return &Buffer{Child: child, Size: size, module: module, label: 'B'}
}

// SetTraceLabel sets the trace label.
func (b *Buffer) SetTraceLabel(l byte) { b.label = l }

// Open implements exec.Operator.
func (b *Buffer) Open(ctx *exec.Context) error {
	b.stats = ctx.StatsFor(b, b.Name())
	if b.stats != nil {
		defer b.stats.EndOpen(ctx, b.stats.Begin(ctx))
	}
	if err := b.Child.Open(ctx); err != nil {
		return err
	}
	b.fault = ctx.FaultPoint(b.Name() + ":next")
	ctx.ShrinkMem(b.memUsed) // reopen without Close: release stale charge
	b.memUsed = 0
	// The pointer array is the buffer's only retained allocation: Size
	// references at 8 bytes each, held until Close.
	if err := ctx.GrowMem(int64(b.Size) * 8); err != nil {
		return err
	}
	b.memUsed = int64(b.Size) * 8
	if b.buf == nil {
		b.buf = make([]storage.Row, 0, b.Size)
	} else {
		b.buf = b.buf[:0]
	}
	b.pos, b.eof = 0, false
	if ctx.CPU != nil {
		if b.arrayRegion == 0 {
			b.arrayRegion = ctx.CPU.AllocData(b.Size * 8)
		}
		// Fixed setup cost: operator-state initialization plus allocating
		// and zeroing the pointer array. This is the "extra initialization
		// and housekeeping" (paper §7.3) that makes buffering a net loss
		// below the cardinality threshold.
		ctx.CPU.AddUops(2000 + uint64(b.Size*8/16))
		for off := 0; off < b.Size*8; off += 64 {
			ctx.CPU.DataWrite(b.arrayRegion+uint64(off), 64)
		}
	}
	b.opened = true
	return nil
}

// refill drains the child into the array until full or end-of-tuples
// (paper Figure 6, lines 2–6).
func (b *Buffer) refill(ctx *exec.Context) error {
	b.buf = b.buf[:0]
	b.pos = 0
	for len(b.buf) < b.Size {
		row, err := b.Child.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			b.eof = true
			break
		}
		// Store the tuple pointer (8 bytes into the array).
		if b.arrayRegion != 0 {
			ctx.Write(b.arrayRegion+uint64(len(b.buf))*8, 8)
		}
		ctx.ExecModule(b.module, ctx.DataBits(true))
		b.buf = append(b.buf, row)
	}
	if b.stats != nil {
		b.stats.Drained(len(b.buf))
	}
	return nil
}

// Next implements exec.Operator (paper Figure 6).
func (b *Buffer) Next(ctx *exec.Context) (out storage.Row, err error) {
	if !b.opened {
		return nil, fmt.Errorf("exec: Buffer.Next called before Open")
	}
	if b.stats != nil {
		defer b.stats.EndNext(ctx, b.stats.Begin(ctx), &out)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(b.label, b.Name())
	}
	if err := b.fault.Fire(); err != nil {
		return nil, err
	}
	if b.pos >= len(b.buf) {
		if b.eof {
			return nil, nil
		}
		if err := b.refill(ctx); err != nil {
			return nil, err
		}
		if len(b.buf) == 0 {
			return nil, nil
		}
	}
	// The serve path is a handful of instructions — bounds check, array
	// load, pointer return — which is what makes the operator light-weight
	// (paper: both plans execute within 1 % the same instruction count).
	if ctx.CPU != nil {
		ctx.Read(b.arrayRegion+uint64(b.pos)*8, 8)
		ctx.CPU.AddUops(serveUops)
	}
	row := b.buf[b.pos]
	b.pos++
	return row, nil
}

// serveUops is the execution cost of serving one tuple from the array.
const serveUops = 12

// Close implements exec.Operator. The pointer array is released, not just
// truncated: a truncated slice keeps its backing array, and with it a
// reference to every tuple of the last batch — a large buffer would pin
// those tuples long after the query finished. Open re-makes the array.
func (b *Buffer) Close(ctx *exec.Context) error {
	b.opened = false
	b.buf = nil
	ctx.ShrinkMem(b.memUsed)
	b.memUsed = 0
	return b.Child.Close(ctx)
}

// Schema implements exec.Operator.
func (b *Buffer) Schema() storage.Schema { return b.Child.Schema() }

// Children implements exec.Operator.
func (b *Buffer) Children() []exec.Operator { return []exec.Operator{b.Child} }

// Name implements exec.Operator.
func (b *Buffer) Name() string { return fmt.Sprintf("Buffer(size=%d)", b.Size) }

// Module implements exec.Operator.
func (b *Buffer) Module() *codemodel.Module { return b.module }

// Blocking implements exec.Operator: a buffer batches but does not fully
// materialize; it is not a pipeline breaker.
func (b *Buffer) Blocking() bool { return false }

// CopyBuffer is the ablation variant the paper rejects in §5: it copies
// every tuple into buffer-owned memory instead of storing references. The
// ablation benchmark quantifies the overhead that design would add.
type CopyBuffer struct {
	Buffer
}

// NewCopyBuffer wraps child with a copying buffer.
func NewCopyBuffer(child exec.Operator, size int, module *codemodel.Module) *CopyBuffer {
	cb := &CopyBuffer{}
	cb.Child = child
	cb.Size = size
	if cb.Size <= 0 {
		cb.Size = DefaultBufferSize
	}
	cb.module = module
	cb.label = 'B'
	return cb
}

// Next implements exec.Operator, copying rows on buffering.
func (b *CopyBuffer) Next(ctx *exec.Context) (out storage.Row, err error) {
	if !b.opened {
		return nil, fmt.Errorf("exec: CopyBuffer.Next called before Open")
	}
	if b.stats != nil {
		defer b.stats.EndNext(ctx, b.stats.Begin(ctx), &out)
	}
	if ctx.Trace != nil {
		ctx.Trace.Record(b.label, b.Name())
	}
	if err := b.fault.Fire(); err != nil {
		return nil, err
	}
	if b.pos >= len(b.buf) {
		if b.eof {
			return nil, nil
		}
		if err := b.refillCopying(ctx); err != nil {
			return nil, err
		}
		if len(b.buf) == 0 {
			return nil, nil
		}
	}
	if ctx.CPU != nil {
		ctx.Read(b.arrayRegion+uint64(b.pos)*8, 8)
		ctx.CPU.AddUops(serveUops)
	}
	row := b.buf[b.pos]
	b.pos++
	return row, nil
}

func (b *CopyBuffer) refillCopying(ctx *exec.Context) error {
	b.buf = b.buf[:0]
	b.pos = 0
	copyArena := exec.NewArena(ctx.CPU)
	for len(b.buf) < b.Size {
		row, err := b.Child.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			b.eof = true
			break
		}
		clone := row.Clone()
		// The copy reads the source tuple and writes the clone.
		sz := clone.ByteSize()
		ctx.Write(copyArena.Alloc(sz), sz)
		if ctx.CPU != nil {
			ctx.CPU.AddUops(uint64(sz / 4))
		}
		if b.arrayRegion != 0 {
			ctx.Write(b.arrayRegion+uint64(len(b.buf))*8, 8)
		}
		ctx.ExecModule(b.module, ctx.DataBits(true))
		b.buf = append(b.buf, clone)
	}
	if b.stats != nil {
		b.stats.Drained(len(b.buf))
	}
	return nil
}

// Name implements exec.Operator.
func (b *CopyBuffer) Name() string { return fmt.Sprintf("CopyBuffer(size=%d)", b.Size) }
