package core

import (
	"strings"
	"testing"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/cpusim"
)

// refineFixture builds the NodeInfo trees of the paper's experimental plans
// from the shared code model.
type refineFixture struct {
	cm  *codemodel.Catalog
	cfg RefineConfig
	t   *testing.T
}

func newFixture(t *testing.T) *refineFixture {
	t.Helper()
	cm := codemodel.NewCatalog()
	return &refineFixture{
		cm: cm,
		t:  t,
		cfg: RefineConfig{
			L1IBytes:             16 * 1024,
			BufferModule:         cm.MustModule("Buffer"),
			CardinalityThreshold: 100,
		},
	}
}

func (f *refineFixture) mod(name string) *codemodel.Module {
	return f.cm.MustModule(name)
}

func (f *refineFixture) aggMod(funcs ...string) *codemodel.Module {
	m, err := f.cm.AggModule(funcs)
	if err != nil {
		f.t.Fatal(err)
	}
	return m
}

func (f *refineFixture) refine(root *NodeInfo) *Result {
	f.t.Helper()
	res, err := Refine(root, f.cfg)
	if err != nil {
		f.t.Fatal(err)
	}
	return res
}

// bufferedNames returns the names of nodes that get buffers.
func bufferedNames(res *Result) []string {
	var out []string
	for _, n := range res.BufferAbove {
		out = append(out, n.Name)
	}
	return out
}

func TestRefineQuery1AddsOneBuffer(t *testing.T) {
	// Paper Fig. 5: Agg(SUM,AVG,COUNT) over ScanPred — combined footprint
	// ≈ 21–23 KB > 16 KB ⇒ two groups, buffer between them.
	f := newFixture(t)
	scan := &NodeInfo{Name: "scan", Modules: []*codemodel.Module{f.mod("SeqScanPred")}, EstRows: 60_000}
	agg := &NodeInfo{Name: "agg", Modules: []*codemodel.Module{f.aggMod("sum", "avg", "count")},
		EstRows: 1, Children: []*NodeInfo{scan}}
	res := f.refine(agg)

	if got := bufferedNames(res); len(got) != 1 || got[0] != "scan" {
		t.Fatalf("buffers above %v, want [scan]\n%s", got, res)
	}
	if len(res.Groups) != 2 {
		t.Errorf("groups = %d, want 2\n%s", len(res.Groups), res)
	}
	// The top group is the unbuffered root.
	top := res.Groups[len(res.Groups)-1]
	if top.Buffered || top.SkipReason != "root" {
		t.Errorf("root group mishandled: %+v", top)
	}
}

func TestRefineQuery2NoBuffer(t *testing.T) {
	// Paper Fig. 9: COUNT-only aggregation — combined ≈ 15 KB fits ⇒ one
	// group, no buffers.
	f := newFixture(t)
	scan := &NodeInfo{Name: "scan", Modules: []*codemodel.Module{f.mod("SeqScanPred")}, EstRows: 60_000}
	agg := &NodeInfo{Name: "agg", Modules: []*codemodel.Module{f.aggMod("count")},
		EstRows: 1, Children: []*NodeInfo{scan}}
	res := f.refine(agg)

	if got := bufferedNames(res); len(got) != 0 {
		t.Fatalf("buffers above %v, want none\n%s", got, res)
	}
	if len(res.Groups) != 1 || len(res.Groups[0].Members) != 2 {
		t.Errorf("want one group of two members\n%s", res)
	}
}

func TestRefineNestLoopPlan(t *testing.T) {
	// Paper Fig. 15: Agg over NL(ScanPred(lineitem), IndexLookup(orders)).
	// The inner index lookup produces ≤ 1 row per rescan ⇒ below the
	// threshold ⇒ no buffer above it, despite its 14 KB footprint. Scan
	// and NL group together; one buffer between NL and Agg.
	f := newFixture(t)
	scan := &NodeInfo{Name: "scan", Modules: []*codemodel.Module{f.mod("SeqScanPred")}, EstRows: 60_000}
	inner := &NodeInfo{Name: "idxlookup", Modules: []*codemodel.Module{f.mod("IndexScan")}, EstRows: 1}
	nl := &NodeInfo{Name: "nestloop", Modules: []*codemodel.Module{f.mod("NestLoop")},
		EstRows: 60_000, Children: []*NodeInfo{scan, inner}}
	agg := &NodeInfo{Name: "agg", Modules: []*codemodel.Module{f.aggMod("sum", "avg", "count")},
		EstRows: 1, Children: []*NodeInfo{nl}}
	res := f.refine(agg)

	if got := bufferedNames(res); len(got) != 1 || got[0] != "nestloop" {
		t.Fatalf("buffers above %v, want [nestloop]\n%s", got, res)
	}
	// scan+nestloop must share a group ("two execution groups" with agg).
	var scanGroup *Group
	for _, g := range res.Groups {
		for _, m := range g.Members {
			if m.Name == "scan" {
				scanGroup = g
			}
		}
	}
	if scanGroup == nil || len(scanGroup.Members) != 2 {
		t.Errorf("scan not grouped with nestloop\n%s", res)
	}
	// The inner group exists but is unbuffered for cardinality reasons.
	for _, g := range res.Groups {
		if g.Top().Name == "idxlookup" {
			if g.Buffered || g.SkipReason != "cardinality" {
				t.Errorf("inner index lookup mishandled: %+v", g)
			}
		}
	}
}

func TestRefineHashJoinPlan(t *testing.T) {
	// Paper Fig. 16: both scans get buffers (scan + either hash phase
	// exceeds L1I); the blocking build is outside every group.
	f := newFixture(t)
	scanLI := &NodeInfo{Name: "scan(lineitem)", Modules: []*codemodel.Module{f.mod("SeqScanPred")}, EstRows: 60_000}
	scanO := &NodeInfo{Name: "scan(orders)", Modules: []*codemodel.Module{f.mod("SeqScan")}, EstRows: 30_000}
	build := &NodeInfo{Name: "hashbuild", Modules: []*codemodel.Module{f.mod("HashBuild")},
		Blocking: true, EstRows: 30_000, Children: []*NodeInfo{scanO}}
	probe := &NodeInfo{Name: "hashprobe", Modules: []*codemodel.Module{f.mod("HashProbe")},
		EstRows: 60_000, Children: []*NodeInfo{scanLI, build}}
	agg := &NodeInfo{Name: "agg", Modules: []*codemodel.Module{f.aggMod("sum", "avg", "count")},
		EstRows: 1, Children: []*NodeInfo{probe}}
	res := f.refine(agg)

	got := strings.Join(bufferedNames(res), ",")
	for _, want := range []string{"scan(lineitem)", "scan(orders)", "hashprobe"} {
		if !strings.Contains(got, want) {
			t.Errorf("no buffer above %s (got %s)\n%s", want, got, res)
		}
	}
	// The build node must not be a member of any group.
	for _, g := range res.Groups {
		for _, m := range g.Members {
			if m.Name == "hashbuild" {
				t.Errorf("blocking build inside a group\n%s", res)
			}
		}
	}
}

func TestRefineMergeJoinPlan(t *testing.T) {
	// Paper Fig. 17: Sort is blocking — no buffer above it; the ordered
	// IndexScan of orders does get a buffer (unlike the NL plan, its
	// full-scan cardinality is large).
	f := newFixture(t)
	scanLI := &NodeInfo{Name: "scan(lineitem)", Modules: []*codemodel.Module{f.mod("SeqScanPred")}, EstRows: 60_000}
	sortN := &NodeInfo{Name: "sort", Modules: []*codemodel.Module{f.mod("Sort")},
		Blocking: true, EstRows: 60_000, Children: []*NodeInfo{scanLI}}
	idx := &NodeInfo{Name: "idxscan(orders)", Modules: []*codemodel.Module{f.mod("IndexScan")}, EstRows: 30_000}
	mj := &NodeInfo{Name: "mergejoin", Modules: []*codemodel.Module{f.mod("MergeJoin")},
		EstRows: 60_000, Children: []*NodeInfo{sortN, idx}}
	agg := &NodeInfo{Name: "agg", Modules: []*codemodel.Module{f.aggMod("sum", "avg", "count")},
		EstRows: 1, Children: []*NodeInfo{mj}}
	res := f.refine(agg)

	got := strings.Join(bufferedNames(res), ",")
	for _, want := range []string{"idxscan(orders)", "scan(lineitem)", "mergejoin"} {
		if !strings.Contains(got, want) {
			t.Errorf("no buffer above %s (got %s)\n%s", want, got, res)
		}
	}
	for _, n := range res.BufferAbove {
		if n.Name == "sort" {
			t.Error("buffer above the blocking sort")
		}
	}
}

func TestRefineSmallOperatorsShareGroup(t *testing.T) {
	// Two tiny adjacent operators always fit one group.
	f := newFixture(t)
	a := &NodeInfo{Name: "a", Modules: []*codemodel.Module{f.mod("SeqScan")}, EstRows: 10_000}
	b := &NodeInfo{Name: "b", Modules: []*codemodel.Module{f.mod("Material")},
		EstRows: 10_000, Children: []*NodeInfo{a}}
	res := f.refine(b)
	if len(res.Groups) != 1 || len(res.BufferAbove) != 0 {
		t.Errorf("tiny pipeline split: %s", res)
	}
}

func TestRefineCardinalitySkip(t *testing.T) {
	// A group whose top yields few rows is never buffered, no matter the
	// footprint.
	f := newFixture(t)
	scan := &NodeInfo{Name: "scan", Modules: []*codemodel.Module{f.mod("SeqScanPred")}, EstRows: 5}
	agg := &NodeInfo{Name: "agg", Modules: []*codemodel.Module{f.aggMod("sum", "avg", "count")},
		EstRows: 1, Children: []*NodeInfo{scan}}
	res := f.refine(agg)
	if len(res.BufferAbove) != 0 {
		t.Errorf("buffered a 5-row group: %s", res)
	}
}

func TestRefineErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := Refine(nil, f.cfg); err == nil {
		t.Error("nil plan accepted")
	}
	bad := f.cfg
	bad.L1IBytes = 0
	if _, err := Refine(&NodeInfo{Name: "x"}, bad); err == nil {
		t.Error("zero L1I accepted")
	}
}

func TestRefineReportString(t *testing.T) {
	f := newFixture(t)
	scan := &NodeInfo{Name: "scan", Modules: []*codemodel.Module{f.mod("SeqScanPred")}, EstRows: 60_000}
	agg := &NodeInfo{Name: "agg", Modules: []*codemodel.Module{f.aggMod("sum", "avg", "count")},
		EstRows: 1, Children: []*NodeInfo{scan}}
	res := f.refine(agg)
	s := res.String()
	if !strings.Contains(s, "+buffer") || !strings.Contains(s, "no buffer: root") {
		t.Errorf("report = %q", s)
	}
}

func TestCalibrateThreshold(t *testing.T) {
	cm := codemodel.NewCatalog()
	cfg := cpusim.DefaultConfig()
	res, err := CalibrateThreshold(cm, cfg, 20_000, []int{0, 10, 100, 1_000, 5_000, 20_000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// At zero output cardinality buffering is pure overhead.
	p0 := res.Points[0]
	if p0.BufferedSec < p0.OriginalSec {
		t.Errorf("buffered faster at cardinality 0: %v < %v", p0.BufferedSec, p0.OriginalSec)
	}
	// At full cardinality it must win decisively.
	pN := res.Points[len(res.Points)-1]
	if pN.BufferedSec >= pN.OriginalSec {
		t.Errorf("buffered not faster at cardinality 20000: %v vs %v", pN.BufferedSec, pN.OriginalSec)
	}
	// Threshold must be finite and in range.
	if res.Threshold <= 0 || res.Threshold > 20_000 {
		t.Errorf("threshold = %v", res.Threshold)
	}
	// Errors.
	if _, err := CalibrateThreshold(cm, cfg, 0, []int{1}, 0); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := CalibrateThreshold(cm, cfg, 100, []int{200}, 0); err == nil {
		t.Error("out-of-range cardinality accepted")
	}
}
