package core

import (
	"fmt"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/cpusim"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
)

// CalPoint is one cardinality sample of the calibration experiment: the
// simulated elapsed time of the original and the buffered plan.
type CalPoint struct {
	Cardinality int
	OriginalSec float64
	BufferedSec float64
}

// CalibrationResult is the outcome of the §7.3 experiment: the per-
// cardinality curve (the paper's Figure 11) and the derived threshold.
type CalibrationResult struct {
	Points []CalPoint
	// Threshold is the output cardinality above which buffered plans beat
	// original plans — the refinement algorithm's cardinality cutoff.
	Threshold float64
}

// CalibrateThreshold runs the paper's calibration experiment (§6, §7.3):
// a Query 1 template — an aggregation whose combined footprint with the
// scan exceeds the L1 instruction cache — executed at a sweep of child
// output cardinalities, once as the original plan and once with a buffer
// operator between scan and aggregation. The threshold is the cardinality
// at which the buffered plan starts winning. The paper notes the threshold
// is not very sensitive to the choice of operator, so calibrating once on
// this template serves the whole system.
//
// tableRows is the calibration table size (the scan always reads all of
// it; the predicate selects the first `cardinality` rows). bufferSize 0
// selects the default.
func CalibrateThreshold(cm *codemodel.Catalog, cfg cpusim.Config, tableRows int, cards []int, bufferSize int) (*CalibrationResult, error) {
	if tableRows <= 0 {
		return nil, fmt.Errorf("core: calibration table must be non-empty")
	}
	table := calibrationTable(tableRows)
	cat := storage.NewCatalog()
	cat.MustAdd(table)

	scanMod := cm.MustModule("SeqScanPred")
	aggMod, err := cm.AggModule([]string{"sum", "avg", "count"})
	if err != nil {
		return nil, err
	}
	bufMod := cm.MustModule("Buffer")

	res := &CalibrationResult{}
	for _, card := range cards {
		if card < 0 || card > tableRows {
			return nil, fmt.Errorf("core: cardinality %d outside [0, %d]", card, tableRows)
		}
		point := CalPoint{Cardinality: card}
		for _, buffered := range []bool{false, true} {
			cpu, err := cpusim.New(cfg, cm.TextSegmentBytes())
			if err != nil {
				return nil, err
			}
			placements := exec.PlaceCatalog(cpu, cat)
			plan, err := calibrationPlan(table, card, buffered, bufferSize, scanMod, aggMod, bufMod)
			if err != nil {
				return nil, err
			}
			ctx := &exec.Context{Catalog: cat, CPU: cpu, Placements: placements}
			rows, err := exec.Run(ctx, plan)
			if err != nil {
				return nil, err
			}
			if len(rows) != 1 || rows[0][2].I != int64(card) {
				return nil, fmt.Errorf("core: calibration plan returned %v, want count %d", rows, card)
			}
			if buffered {
				point.BufferedSec = cpu.ElapsedSeconds()
			} else {
				point.OriginalSec = cpu.ElapsedSeconds()
			}
		}
		res.Points = append(res.Points, point)
	}

	// The threshold is the cardinality of the last crossing: beyond it the
	// buffered plan stays ahead.
	res.Threshold = float64(tableRows + 1) // pessimistic default: never buffer
	for i := len(res.Points) - 1; i >= 0; i-- {
		p := res.Points[i]
		if p.BufferedSec >= p.OriginalSec {
			break
		}
		res.Threshold = float64(p.Cardinality)
	}
	return res, nil
}

// calibrationTable builds a table whose predicate "k < c" selects exactly c
// rows, giving the sweep precise control of output cardinality.
func calibrationTable(rows int) *storage.Table {
	t := storage.NewTable("calibration", storage.Schema{
		{Table: "calibration", Name: "k", Type: storage.TypeInt64},
		{Table: "calibration", Name: "v", Type: storage.TypeFloat64},
	})
	for i := 0; i < rows; i++ {
		t.MustAppend(storage.Row{
			storage.NewInt(int64(i)),
			storage.NewFloat(float64(i%97) / 7),
		})
	}
	return t
}

// calibrationPlan builds Agg(SUM, AVG, COUNT) over ScanPred(k < card),
// optionally with a buffer between them — the paper's Query 1 shape.
func calibrationPlan(table *storage.Table, card int, buffered bool, bufferSize int,
	scanMod, aggMod, bufMod *codemodel.Module) (exec.Operator, error) {

	k := expr.NewColRef(0, "k", storage.TypeInt64)
	v := expr.NewColRef(1, "v", storage.TypeFloat64)
	filter := expr.MustBinary(expr.OpLt, k, expr.NewConst(storage.NewInt(int64(card))))
	var child exec.Operator = exec.NewSeqScan(table, filter, scanMod)
	if buffered {
		child = NewBuffer(child, bufferSize, bufMod)
	}
	return exec.NewAggregate(child, nil, []expr.AggSpec{
		{Func: expr.AggSum, Arg: v},
		{Func: expr.AggAvg, Arg: v},
		{Func: expr.AggCountStar},
	}, aggMod)
}
