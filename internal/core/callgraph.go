package core

import (
	"fmt"
	"sort"

	"bufferdb/internal/btree"
	"bufferdb/internal/codemodel"
	"bufferdb/internal/cpusim"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
)

// CallGraphRecorder reproduces the paper's §7.1 footprint-measurement
// methodology: instead of reading footprints off the code model, it runs a
// small calibration query set on the simulated CPU, observes every
// instruction fetch (via the CPU's FetchHook), maps fetched lines back to
// functions, and sums the binary sizes of the functions each module
// actually invoked — the dynamic call graph. Rare-case (cold) code that the
// static call graph reaches but execution never touches is thereby
// excluded, which is the paper's argument for dynamic analysis.
type CallGraphRecorder struct {
	cm *codemodel.Catalog
	// touched maps module → set of functions observed executing.
	touched map[*codemodel.Module]map[*codemodel.Function]struct{}
}

// NewCallGraphRecorder creates a recorder over the given code model.
func NewCallGraphRecorder(cm *codemodel.Catalog) *CallGraphRecorder {
	return &CallGraphRecorder{
		cm:      cm,
		touched: make(map[*codemodel.Module]map[*codemodel.Function]struct{}),
	}
}

// Hook returns the fetch callback to install on a CPU.
func (r *CallGraphRecorder) Hook() func(*codemodel.Module, uint64) {
	return func(m *codemodel.Module, line uint64) {
		f := r.cm.FunctionAt(line)
		if f == nil {
			return
		}
		set := r.touched[m]
		if set == nil {
			set = make(map[*codemodel.Function]struct{})
			r.touched[m] = set
		}
		set[f] = struct{}{}
	}
}

// MeasuredFootprint returns the observed dynamic-call-graph footprint of a
// module: the summed binary sizes of the functions it was seen executing.
// ok is false when the module never ran under this recorder.
func (r *CallGraphRecorder) MeasuredFootprint(m *codemodel.Module) (bytes int, ok bool) {
	set, ok := r.touched[m]
	if !ok {
		return 0, false
	}
	for f := range set {
		bytes += f.Size
	}
	return bytes, true
}

// Modules lists the modules observed, in name order.
func (r *CallGraphRecorder) Modules() []*codemodel.Module {
	out := make([]*codemodel.Module, 0, len(r.touched))
	for m := range r.touched {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MeasureFootprints runs the paper's calibration query set — simple queries
// that "scan tables, select aggregate values, perform index lookups or join
// two tables" (§7.1) — over a small synthetic database, recording dynamic
// call graphs, and returns the measured footprint per module name.
func MeasureFootprints(cm *codemodel.Catalog, cfg cpusim.Config) (map[string]int, error) {
	cat, table, idx := calibrationDB()
	rec := NewCallGraphRecorder(cm)

	run := func(build func() (exec.Operator, error)) error {
		cpu, err := cpusim.New(cfg, cm.TextSegmentBytes())
		if err != nil {
			return err
		}
		cpu.FetchHook = rec.Hook()
		placements := exec.PlaceCatalog(cpu, cat)
		op, err := build()
		if err != nil {
			return err
		}
		_, err = exec.Run(&exec.Context{Catalog: cat, CPU: cpu, Placements: placements}, op)
		return err
	}

	k := expr.NewColRef(0, "k", storage.TypeInt64)
	v := expr.NewColRef(1, "v", storage.TypeFloat64)
	pred := expr.MustBinary(expr.OpLt, k, expr.NewConst(storage.NewInt(512)))

	queries := []func() (exec.Operator, error){
		// Plain scan.
		func() (exec.Operator, error) {
			return exec.NewSeqScan(table, nil, cm.MustModule("SeqScan")), nil
		},
		// Predicated scan under every aggregate (covers the agg modules).
		func() (exec.Operator, error) {
			agg, err := cm.AggModule([]string{"count", "min", "max", "sum", "avg"})
			if err != nil {
				return nil, err
			}
			return exec.NewAggregate(
				exec.NewSeqScan(table, pred, cm.MustModule("SeqScanPred")),
				nil,
				[]expr.AggSpec{
					{Func: expr.AggCountStar},
					{Func: expr.AggMin, Arg: v},
					{Func: expr.AggMax, Arg: v},
					{Func: expr.AggSum, Arg: v},
					{Func: expr.AggAvg, Arg: v},
				}, agg)
		},
		// Sort.
		func() (exec.Operator, error) {
			return exec.NewSort(exec.NewSeqScan(table, nil, cm.MustModule("SeqScan")),
				[]exec.SortKey{{Expr: k}}, cm.MustModule("Sort")), nil
		},
		// Index nested-loop self-join.
		func() (exec.Operator, error) {
			lookup, err := exec.NewIndexLookup(table, idx, cm.MustModule("IndexScan"))
			if err != nil {
				return nil, err
			}
			return exec.NewNestLoopJoin(
				exec.NewSeqScan(table, nil, cm.MustModule("SeqScan")),
				lookup, k, nil, cm.MustModule("NestLoop")), nil
		},
		// Hash self-join (build + probe modules).
		func() (exec.Operator, error) {
			return exec.NewHashJoin(
				exec.NewSeqScan(table, nil, cm.MustModule("SeqScan")),
				exec.NewSeqScan(table, nil, cm.MustModule("SeqScan")),
				k, k,
				cm.MustModule("HashBuild"), cm.MustModule("HashProbe")), nil
		},
		// Merge self-join over ordered index scans.
		func() (exec.Operator, error) {
			left, err := exec.NewIndexFullScan(table, idx, nil, cm.MustModule("IndexScan"))
			if err != nil {
				return nil, err
			}
			right, err := exec.NewIndexFullScan(table, idx, nil, cm.MustModule("IndexScan"))
			if err != nil {
				return nil, err
			}
			return exec.NewMergeJoin(left, right, k, k, cm.MustModule("MergeJoin")), nil
		},
		// Buffered scan (the buffer module itself).
		func() (exec.Operator, error) {
			return NewBuffer(exec.NewSeqScan(table, nil, cm.MustModule("SeqScan")),
				64, cm.MustModule("Buffer")), nil
		},
	}
	for i, q := range queries {
		if err := run(q); err != nil {
			return nil, fmt.Errorf("core: calibration query %d: %w", i, err)
		}
	}

	out := make(map[string]int)
	for _, m := range rec.Modules() {
		if bytes, ok := rec.MeasuredFootprint(m); ok {
			out[m.Name] = bytes
		}
	}
	return out, nil
}

// newCalibrationIndex builds a unique B+-tree over the calibration table's
// key column.
func newCalibrationIndex(table *storage.Table) *btree.Tree {
	tree := btree.New()
	for rid, row := range table.Rows() {
		tree.Insert(row[0].I, rid)
	}
	return tree
}

// calibrationDB builds the tiny single-table database the calibration
// queries run over, with a unique index for the index-scan modules.
func calibrationDB() (*storage.Catalog, *storage.Table, *storage.IndexMeta) {
	cat := storage.NewCatalog()
	table := calibrationTable(2048)
	cat.MustAdd(table)
	tree := newCalibrationIndex(table)
	meta := &storage.IndexMeta{Name: "calibration_k_idx", Column: "k", Unique: true, Search: tree}
	if err := table.AddIndex(meta); err != nil {
		panic(err)
	}
	return cat, table, meta
}
