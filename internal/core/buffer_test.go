package core

import (
	"strings"
	"testing"
	"testing/quick"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/cpusim"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
	"bufferdb/internal/tpch"
)

var testDB = func() *storage.Catalog {
	cat, err := tpch.Generate(tpch.Config{ScaleFactor: 0.002})
	if err != nil {
		panic(err)
	}
	return cat
}()

func lineitem(t *testing.T) *storage.Table {
	t.Helper()
	tb, err := testDB.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func runOp(t *testing.T, op exec.Operator) []storage.Row {
	t.Helper()
	rows, err := exec.Run(&exec.Context{Catalog: testDB}, op)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rows
}

func rowsEqual(a, b []storage.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

func TestBufferTransparency(t *testing.T) {
	li := lineitem(t)
	want := runOp(t, exec.NewSeqScan(li, nil, nil))
	for _, size := range []int{1, 2, 7, 100, li.NumRows(), li.NumRows() * 2} {
		got := runOp(t, NewBuffer(exec.NewSeqScan(li, nil, nil), size, nil))
		if !rowsEqual(want, got) {
			t.Errorf("buffer size %d changed the result: %d vs %d rows", size, len(got), len(want))
		}
	}
}

func TestBufferDefaultSize(t *testing.T) {
	b := NewBuffer(exec.NewValues(nil, nil), 0, nil)
	if b.Size != DefaultBufferSize {
		t.Errorf("default size = %d", b.Size)
	}
}

func TestBufferEmptyChild(t *testing.T) {
	sch := storage.Schema{{Name: "v", Type: storage.TypeInt64}}
	got := runOp(t, NewBuffer(exec.NewValues(sch, nil), 16, nil))
	if len(got) != 0 {
		t.Errorf("buffer over empty child returned %d rows", len(got))
	}
}

func TestBufferSchemaAndMeta(t *testing.T) {
	li := lineitem(t)
	scan := exec.NewSeqScan(li, nil, nil)
	b := NewBuffer(scan, 8, nil)
	if b.Schema().String() != scan.Schema().String() {
		t.Error("buffer schema differs from child")
	}
	if len(b.Children()) != 1 || b.Children()[0] != exec.Operator(scan) {
		t.Error("buffer children wrong")
	}
	if b.Blocking() {
		t.Error("buffer must not be blocking")
	}
	if !strings.Contains(b.Name(), "Buffer(size=8)") {
		t.Errorf("name = %q", b.Name())
	}
	if _, err := b.Next(&exec.Context{Catalog: testDB}); err == nil {
		t.Error("Next before Open succeeded")
	}
}

// TestBufferExecutionSequence reproduces the paper's Figure 1: with a
// buffer of size 5, the child runs in batches of 5 and the parent drains in
// batches of 5, instead of strict alternation.
func TestBufferExecutionSequence(t *testing.T) {
	sch := storage.Schema{{Name: "v", Type: storage.TypeInt64}}
	var rows []storage.Row
	for i := 0; i < 10; i++ {
		rows = append(rows, storage.Row{storage.NewInt(int64(i))})
	}

	// Original: parent pulls child directly — PCPCPC…
	vals := exec.NewValues(sch, rows)
	vals.SetTraceLabel('C')
	tr := exec.NewTracer(256)
	parentDrain(t, tr, vals)
	if got := stripLabels(tr.String(), "AB"); !strings.HasPrefix(got, "PCPCPCPC") {
		t.Errorf("original sequence = %q, want alternation", got)
	}

	// Buffered with size 5: PBCCCCC…, then P-served-from-buffer runs.
	vals2 := exec.NewValues(sch, rows)
	vals2.SetTraceLabel('C')
	buf := NewBuffer(vals2, 5, nil)
	buf.SetTraceLabel('B')
	tr2 := exec.NewTracer(256)
	parentDrain(t, tr2, buf)
	seq := tr2.String()
	// Strip the buffer's and aggregate root's own marks to compare
	// parent/child batching.
	pc := stripLabels(seq, "AB")
	if !strings.HasPrefix(pc, "PCCCCCPPPPP") {
		t.Errorf("buffered sequence = %q (parent/child view %q), want PCCCCCPPPPP…", seq, pc)
	}
}

// stripLabels removes the given label characters from a trace string.
func stripLabels(s, labels string) string {
	return strings.Map(func(r rune) rune {
		if strings.ContainsRune(labels, r) {
			return -1
		}
		return r
	}, s)
}

// parentDrain pulls all rows through a traced parent labeled 'P'.
func parentDrain(t *testing.T, tr *exec.Tracer, child exec.Operator) {
	t.Helper()
	v := expr.NewColRef(0, "v", storage.TypeInt64)
	agg, err := exec.NewAggregate(&tracedPuller{child: child}, nil,
		[]expr.AggSpec{{Func: expr.AggSum, Arg: v}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Run(&exec.Context{Catalog: testDB, Trace: tr}, agg); err != nil {
		t.Fatal(err)
	}
}

// tracedPuller marks each pull with 'P' before delegating, making the
// parent's per-tuple demand visible in the trace.
type tracedPuller struct {
	child exec.Operator
}

func (p *tracedPuller) Open(ctx *exec.Context) error  { return p.child.Open(ctx) }
func (p *tracedPuller) Close(ctx *exec.Context) error { return p.child.Close(ctx) }
func (p *tracedPuller) Next(ctx *exec.Context) (storage.Row, error) {
	if ctx.Trace != nil {
		ctx.Trace.Record('P', "Parent")
	}
	return p.child.Next(ctx)
}
func (p *tracedPuller) Schema() storage.Schema    { return p.child.Schema() }
func (p *tracedPuller) Children() []exec.Operator { return []exec.Operator{p.child} }
func (p *tracedPuller) Name() string              { return "Parent" }
func (p *tracedPuller) Module() *codemodel.Module { return nil }
func (p *tracedPuller) Blocking() bool            { return false }

func TestCopyBufferTransparency(t *testing.T) {
	li := lineitem(t)
	want := runOp(t, exec.NewSeqScan(li, nil, nil))
	got := runOp(t, NewCopyBuffer(exec.NewSeqScan(li, nil, nil), 64, nil))
	if !rowsEqual(want, got) {
		t.Error("copy buffer changed the result")
	}
	cb := NewCopyBuffer(exec.NewValues(nil, nil), 0, nil)
	if cb.Size != DefaultBufferSize {
		t.Errorf("copy buffer default size = %d", cb.Size)
	}
	if _, err := cb.Next(&exec.Context{Catalog: testDB}); err == nil {
		t.Error("CopyBuffer.Next before Open succeeded")
	}
	if !strings.Contains(cb.Name(), "CopyBuffer") {
		t.Errorf("name = %q", cb.Name())
	}
}

// Property: buffering never changes a scan's result, for any buffer size
// and row count.
func TestBufferTransparencyProperty(t *testing.T) {
	sch := storage.Schema{{Name: "v", Type: storage.TypeInt64}}
	f := func(vals []int16, size uint8) bool {
		rows := make([]storage.Row, len(vals))
		for i, v := range vals {
			rows[i] = storage.Row{storage.NewInt(int64(v))}
		}
		direct, err := exec.Run(&exec.Context{}, exec.NewValues(sch, rows))
		if err != nil {
			return false
		}
		buffered, err := exec.Run(&exec.Context{},
			NewBuffer(exec.NewValues(sch, rows), int(size%64)+1, nil))
		if err != nil {
			return false
		}
		return rowsEqual(direct, buffered)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBufferedQuery1EndToEnd is the headline result (paper Fig. 10) at test
// scale: on the simulated CPU, adding one buffer between scan and
// aggregation must cut L1I misses dramatically and improve simulated time.
func TestBufferedQuery1EndToEnd(t *testing.T) {
	cm := codemodel.NewCatalog()
	li := lineitem(t)
	sch := li.Schema()
	shipIdx, _ := sch.ColumnIndex("", "l_shipdate")
	price, _ := sch.ColumnIndex("", "l_extendedprice")

	build := func(buffered bool) (exec.Operator, error) {
		filter := expr.MustBinary(expr.OpLe,
			expr.NewColRef(shipIdx, "l_shipdate", storage.TypeDate),
			expr.NewConst(storage.DateFromYMD(1998, 9, 2)))
		var child exec.Operator = exec.NewSeqScan(li, filter, cm.MustModule("SeqScanPred"))
		if buffered {
			child = NewBuffer(child, 0, cm.MustModule("Buffer"))
		}
		aggMod, err := cm.AggModule([]string{"sum", "avg", "count"})
		if err != nil {
			return nil, err
		}
		p := expr.NewColRef(price, "l_extendedprice", storage.TypeFloat64)
		return exec.NewAggregate(child, nil, []expr.AggSpec{
			{Func: expr.AggSum, Arg: p},
			{Func: expr.AggAvg, Arg: p},
			{Func: expr.AggCountStar},
		}, aggMod)
	}

	var misses [2]uint64
	var seconds [2]float64
	var results [2]string
	for i, buffered := range []bool{false, true} {
		cpu := cpusim.MustNew(cpusim.DefaultConfig(), cm.TextSegmentBytes())
		placements := exec.PlaceCatalog(cpu, testDB)
		plan, err := build(buffered)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := exec.Run(&exec.Context{Catalog: testDB, CPU: cpu, Placements: placements}, plan)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatalf("Q1 returned %d rows", len(rows))
		}
		results[i] = rows[0].String()
		misses[i] = cpu.Counters().L1IMisses
		seconds[i] = cpu.ElapsedSeconds()
	}
	if results[0] != results[1] {
		t.Fatalf("buffering changed the answer: %s vs %s", results[0], results[1])
	}
	red := 1 - float64(misses[1])/float64(misses[0])
	if red < 0.6 {
		t.Errorf("buffer reduced L1I misses by %.0f%% (%d → %d), want ≥ 60%%",
			red*100, misses[0], misses[1])
	}
	if seconds[1] >= seconds[0] {
		t.Errorf("buffered plan slower: %.4fs vs %.4fs", seconds[1], seconds[0])
	}
}

// TestBufferCloseReleasesArray asserts Close drops the pointer array so a
// large buffer does not pin the last batch's tuples after the query ends,
// and that the buffer still works when reopened.
func TestBufferCloseReleasesArray(t *testing.T) {
	li := lineitem(t)
	for _, b := range []*Buffer{
		NewBuffer(exec.NewSeqScan(li, nil, nil), 64, nil),
		&NewCopyBuffer(exec.NewSeqScan(li, nil, nil), 64, nil).Buffer,
	} {
		ctx := &exec.Context{Catalog: testDB}
		if err := b.Open(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Next(ctx); err != nil {
			t.Fatal(err)
		}
		if len(b.buf) == 0 {
			t.Fatalf("%s: no tuples buffered after Next", b.Name())
		}
		if err := b.Close(ctx); err != nil {
			t.Fatal(err)
		}
		if b.buf != nil {
			t.Errorf("%s: Close kept the pointer array (len %d, cap %d)", b.Name(), len(b.buf), cap(b.buf))
		}
		// Reopen must re-make the array and serve the full result.
		want := li.NumRows()
		got := len(runOp(t, b))
		if got != want {
			t.Errorf("%s: reopen after Close returned %d rows, want %d", b.Name(), got, want)
		}
	}
}

// TestBufferConformance runs the shared operator lifecycle harness over
// both buffer variants.
func TestBufferConformance(t *testing.T) {
	li := lineitem(t)
	exec.Conformance(t, "Buffer", func() exec.Operator {
		return NewBuffer(exec.NewSeqScan(li, nil, nil), 64, nil)
	})
	exec.Conformance(t, "CopyBuffer", func() exec.Operator {
		return NewCopyBuffer(exec.NewSeqScan(li, nil, nil), 64, nil)
	})
}
