package core

import (
	"fmt"
	"strings"

	"bufferdb/internal/codemodel"
)

// NodeInfo is the refinement algorithm's view of one plan operator. The
// planner builds a NodeInfo tree mirroring its physical plan and applies
// the returned decisions; the algorithm itself never touches executable
// operators, which keeps it testable against hand-built trees.
type NodeInfo struct {
	// Name is a display name for decisions and EXPLAIN output.
	Name string
	// Modules are the instruction-footprint modules this operator executes
	// per invocation (usually one; a hash join's probe node lists the
	// probe module — its build side is a separate blocking child node).
	Modules []*codemodel.Module
	// Blocking marks pipeline breakers (sort, hash build, materialize),
	// which already batch execution below them and are never placed inside
	// an execution group (paper §6).
	Blocking bool
	// EstRows is the optimizer's estimate of the rows this operator
	// produces per execution — per rescan for a nested-loop inner, which
	// is what makes a foreign-key inner index scan fall below the
	// threshold no matter how often it runs.
	EstRows float64
	// Children are the input operators, outer first.
	Children []*NodeInfo
	// Tag is an opaque caller handle (the planner stores its own node).
	Tag any
}

// RefineConfig parameterizes the plan refinement algorithm.
type RefineConfig struct {
	// L1IBytes is the instruction cache capacity the footprint budget is
	// checked against (paper: the 16 KB upper estimate of the trace cache).
	L1IBytes int
	// BufferModule is the buffer operator's own module, recorded for
	// reporting and for the planner's buffer construction. Its sub-kilobyte
	// footprint (§6.1 counts it against the group budget) is already
	// absorbed by the deliberate conservatism of the footprint estimates —
	// they overestimate real fetched bytes by ~30 % (§7.1) — so the merge
	// check below compares the combined estimate strictly against the L1I
	// capacity, which is what makes the paper's own Query 2 arithmetic
	// (15 KB + buffer vs a 16 KB cache ⇒ one group) come out.
	BufferModule *codemodel.Module
	// CardinalityThreshold is the minimum estimated output cardinality for
	// a buffer to pay for its own overhead, determined by calibration
	// (§6, §7.3).
	CardinalityThreshold float64
	// BufferSize is the tuple capacity for inserted buffers (0 = default).
	BufferSize int
	// FootprintEstimator overrides how a candidate group's combined
	// footprint is computed. Nil selects the paper's estimator
	// (codemodel.CombinedFootprint: dynamic call graph, full binary sizes,
	// shared functions deduplicated). The hot-bytes estimator
	// (HotFootprintEstimator) is an oracle variant for ablation studies:
	// it measures the bytes actually fetched, which removes the
	// conservative overestimate and with it the occasional useless buffer
	// — at the cost of information a real system would not have statically.
	FootprintEstimator func(mods ...*codemodel.Module) int
}

// HotFootprintEstimator estimates a group's footprint as the cache lines it
// actually fetches per invocation round — the oracle the paper's
// conservative analysis approximates from above.
func HotFootprintEstimator(mods ...*codemodel.Module) int {
	return codemodel.CombinedHotLines(mods...) * codemodel.CacheLineBytes
}

// Group is one execution group discovered by refinement.
type Group struct {
	// Members are the operators in the group, in discovery order.
	Members []*NodeInfo
	// FootprintBytes is the group's combined (deduplicated) footprint.
	FootprintBytes int
	// Buffered reports whether a buffer operator is inserted above the
	// group's top member.
	Buffered bool
	// SkipReason explains why an unbuffered group got no buffer
	// ("root", "cardinality"). Empty for buffered groups.
	SkipReason string
}

// Top returns the group's top (first-discovered ancestor) member.
func (g *Group) Top() *NodeInfo { return g.Members[len(g.Members)-1] }

// Result is the refinement outcome.
type Result struct {
	// Groups lists every execution group, bottom-up.
	Groups []*Group
	// BufferAbove lists the nodes above which a buffer operator must be
	// inserted — the actionable output the planner applies.
	BufferAbove []*NodeInfo
}

// String renders a compact report of the decisions.
func (r *Result) String() string {
	var b strings.Builder
	for _, g := range r.Groups {
		names := make([]string, len(g.Members))
		for i, m := range g.Members {
			names[i] = m.Name
		}
		fmt.Fprintf(&b, "group {%s} footprint=%dB", strings.Join(names, ", "), g.FootprintBytes)
		if g.Buffered {
			b.WriteString(" +buffer")
		} else if g.SkipReason != "" {
			fmt.Fprintf(&b, " (no buffer: %s)", g.SkipReason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Refine runs the paper's plan refinement algorithm (§6.2) over a plan:
//
//  1. A bottom-up pass over the plan tree. Each non-blocking leaf starts an
//     execution group; a parent joins its children's groups as long as the
//     combined instruction footprint — shared functions counted once — plus
//     the buffer operator's own footprint stays within the L1 instruction
//     cache. When it cannot, the child group is closed and the parent
//     starts a new group.
//  2. A closed group gets a buffer operator above its top member, unless
//     the group's output cardinality estimate falls below the calibration
//     threshold (the buffer would cost more than it saves, §7.3).
//  3. The root group is never buffered — its output goes to the client.
//
// Blocking operators (sort, hash build) are never group members: they
// already buffer execution below them (§6).
func Refine(root *NodeInfo, cfg RefineConfig) (*Result, error) {
	if root == nil {
		return nil, fmt.Errorf("core: Refine over nil plan")
	}
	if cfg.L1IBytes <= 0 {
		return nil, fmt.Errorf("core: RefineConfig.L1IBytes must be positive")
	}
	res := &Result{}
	estimate := cfg.FootprintEstimator
	if estimate == nil {
		estimate = codemodel.CombinedFootprint
	}

	var visit func(n *NodeInfo) *openGroup
	closeGroup := func(g *openGroup) {
		grp := &Group{Members: g.members, FootprintBytes: g.footprint(estimate)}
		if g.top().EstRows >= cfg.CardinalityThreshold {
			grp.Buffered = true
			res.BufferAbove = append(res.BufferAbove, g.top())
		} else {
			grp.SkipReason = "cardinality"
		}
		res.Groups = append(res.Groups, grp)
	}

	visit = func(n *NodeInfo) *openGroup {
		var childGroups []*openGroup
		for _, c := range n.Children {
			if g := visit(c); g != nil {
				childGroups = append(childGroups, g)
			}
		}
		if n.Blocking {
			// A pipeline breaker: close every child group beneath it; it
			// cannot belong to a group itself.
			for _, g := range childGroups {
				closeGroup(g)
			}
			return nil
		}
		// Start this node's group and greedily absorb child groups while
		// the combined footprint plus a buffer still fits.
		g := &openGroup{members: []*NodeInfo{}, modules: nil}
		g.add(n)
		for _, cg := range childGroups {
			if g.fitsWith(cg, cfg.L1IBytes, estimate) {
				g.absorb(cg)
			} else {
				closeGroup(cg)
			}
		}
		return g
	}

	if g := visit(root); g != nil {
		// The root group is never buffered (paper §5: no buffer above the
		// top operator — output goes straight to the client).
		grp := &Group{Members: g.members, FootprintBytes: g.footprint(estimate), SkipReason: "root"}
		res.Groups = append(res.Groups, grp)
	}
	return res, nil
}

// openGroup is a group under construction during the bottom-up pass.
type openGroup struct {
	members []*NodeInfo
	modules []*codemodel.Module
}

func (g *openGroup) add(n *NodeInfo) {
	g.members = append(g.members, n)
	g.modules = append(g.modules, n.Modules...)
}

func (g *openGroup) top() *NodeInfo { return g.members[len(g.members)-1] }

func (g *openGroup) footprint(estimate func(...*codemodel.Module) int) int {
	return estimate(g.modules...)
}

// fitsWith reports whether absorbing other keeps the combined footprint
// strictly within the cache budget.
func (g *openGroup) fitsWith(other *openGroup, budget int, estimate func(...*codemodel.Module) int) bool {
	all := make([]*codemodel.Module, 0, len(g.modules)+len(other.modules))
	all = append(all, g.modules...)
	all = append(all, other.modules...)
	return estimate(all...) < budget
}

// absorb merges other into g. The current top (the absorbing parent) stays
// the group's top member.
func (g *openGroup) absorb(other *openGroup) {
	top := g.members[len(g.members)-1]
	g.members = append(g.members[:len(g.members)-1], other.members...)
	g.members = append(g.members, top)
	g.modules = append(g.modules, other.modules...)
}
