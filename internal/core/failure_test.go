package core

import (
	"errors"
	"strings"
	"testing"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
)

// failingOp is an operator that errors after emitting a set number of rows,
// for failure-injection tests.
type failingOp struct {
	sch    storage.Schema
	emitN  int
	failAt int
	pos    int
	opened bool
	// closed counts Close calls so tests can assert cleanup.
	closed int
}

var errInjected = errors.New("injected failure")

func (f *failingOp) Open(*exec.Context) error {
	f.pos = 0
	f.opened = true
	return nil
}

func (f *failingOp) Next(*exec.Context) (storage.Row, error) {
	if !f.opened {
		return nil, errors.New("not open")
	}
	if f.pos == f.failAt {
		return nil, errInjected
	}
	if f.pos >= f.emitN {
		return nil, nil
	}
	f.pos++
	return storage.Row{storage.NewInt(int64(f.pos))}, nil
}

func (f *failingOp) Close(*exec.Context) error {
	f.opened = false
	f.closed++
	return nil
}

func (f *failingOp) Schema() storage.Schema    { return f.sch }
func (f *failingOp) Children() []exec.Operator { return nil }
func (f *failingOp) Name() string              { return "failing" }
func (f *failingOp) Module() *codemodel.Module { return nil }
func (f *failingOp) Blocking() bool            { return false }

func intSchema() storage.Schema {
	return storage.Schema{{Name: "v", Type: storage.TypeInt64}}
}

func TestBufferPropagatesChildError(t *testing.T) {
	// Failure during the refill loop (mid-batch).
	child := &failingOp{sch: intSchema(), emitN: 100, failAt: 7}
	buf := NewBuffer(child, 16, nil)
	_, err := exec.Run(&exec.Context{}, buf)
	if !errors.Is(err, errInjected) {
		t.Errorf("buffer swallowed the child error: %v", err)
	}
	if child.closed != 1 {
		t.Errorf("child closed %d times", child.closed)
	}
}

func TestBufferErrorAfterServedBatch(t *testing.T) {
	// First batch succeeds; failure strikes in the second refill.
	child := &failingOp{sch: intSchema(), emitN: 100, failAt: 20}
	buf := NewBuffer(child, 16, nil)
	ctx := &exec.Context{}
	if err := buf.Open(ctx); err != nil {
		t.Fatal(err)
	}
	served := 0
	var err error
	for {
		var row storage.Row
		row, err = buf.Next(ctx)
		if err != nil || row == nil {
			break
		}
		served++
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("expected injected error after %d rows, got %v", served, err)
	}
	if served != 16 {
		t.Errorf("served %d rows before the failing refill, want the full first batch (16)", served)
	}
	_ = buf.Close(ctx)
}

func TestEvalErrorsSurfaceThroughPipelines(t *testing.T) {
	// Division by zero on some rows must abort the query with an error,
	// whether or not a buffer sits in between.
	sch := storage.Schema{
		{Name: "a", Type: storage.TypeInt64},
		{Name: "b", Type: storage.TypeInt64},
	}
	rows := []storage.Row{
		{storage.NewInt(10), storage.NewInt(2)},
		{storage.NewInt(10), storage.NewInt(0)}, // divide by zero
	}
	div := expr.MustBinary(expr.OpDiv,
		expr.NewColRef(0, "a", storage.TypeInt64),
		expr.NewColRef(1, "b", storage.TypeInt64))

	for _, buffered := range []bool{false, true} {
		var child exec.Operator = exec.NewValues(sch, rows)
		if buffered {
			child = NewBuffer(child, 8, nil)
		}
		agg, err := exec.NewAggregate(child, nil,
			[]expr.AggSpec{{Func: expr.AggSum, Arg: div}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, err = exec.Run(&exec.Context{}, agg)
		if err == nil || !strings.Contains(err.Error(), "division by zero") {
			t.Errorf("buffered=%v: division error lost: %v", buffered, err)
		}
	}
}

func TestJoinPropagatesSideErrors(t *testing.T) {
	sch := intSchema()
	key := expr.NewColRef(0, "v", storage.TypeInt64)
	good := func() exec.Operator {
		return exec.NewValues(sch, []storage.Row{{storage.NewInt(1)}})
	}
	// Build-side (inner) failure shows at Open.
	hj := exec.NewHashJoin(good(), &failingOp{sch: sch, emitN: 10, failAt: 3}, key, key, nil, nil)
	if err := hj.Open(&exec.Context{}); !errors.Is(err, errInjected) {
		t.Errorf("hash join build error lost: %v", err)
	}
	// Probe-side (outer) failure shows during Next.
	hj2 := exec.NewHashJoin(&failingOp{sch: sch, emitN: 10, failAt: 3}, good(), key, key, nil, nil)
	_, err := exec.Run(&exec.Context{}, hj2)
	if !errors.Is(err, errInjected) {
		t.Errorf("hash join probe error lost: %v", err)
	}
	// Merge join: left failure.
	mj := exec.NewMergeJoin(&failingOp{sch: sch, emitN: 10, failAt: 0}, good(), key, key, nil)
	_, err = exec.Run(&exec.Context{}, mj)
	if !errors.Is(err, errInjected) {
		t.Errorf("merge join error lost: %v", err)
	}
}

func TestSortPropagatesChildError(t *testing.T) {
	child := &failingOp{sch: intSchema(), emitN: 100, failAt: 5}
	s := exec.NewSort(child, []exec.SortKey{{Expr: expr.NewColRef(0, "v", storage.TypeInt64)}}, nil)
	_, err := exec.Run(&exec.Context{}, s)
	if !errors.Is(err, errInjected) {
		t.Errorf("sort error lost: %v", err)
	}
}

func TestRunClosesOnError(t *testing.T) {
	child := &failingOp{sch: intSchema(), emitN: 100, failAt: 2}
	buf := NewBuffer(child, 4, nil)
	_, err := exec.Run(&exec.Context{}, buf)
	if err == nil {
		t.Fatal("error lost")
	}
	if child.closed == 0 {
		t.Error("Run did not close the plan after the error")
	}
}
