// Package push implements the push-fused compiled execution engine: the
// third point in the design space the paper's §2 opens. Where the Volcano
// engine pays an instruction-cache reload per operator per tuple and the
// buffering refinement amortizes reloads by batching tuples *between*
// operators, the push engine removes the boundary crossings altogether —
// each execution group that plan.Refine computes compiles into a single
// producer-driven loop in which a source drives its rows through a chain of
// consumer callbacks (filter, project, probe, …) with no per-tuple virtual
// Next dispatch, the shape of Neumann-style data-centric compilation
// ("Push vs. Pull-Based Loop Fusion in Query Engines").
//
// Pipelines materialize only at pipeline breakers: a hash-join build, an
// aggregation, and the root result. Plan nodes without a fused variant
// (sort, merge join, nested loops, index scans) stay on their Volcano
// operators and feed a pipe through an adapter source, exactly as the vec
// engine falls back behind FromVolcano.
//
// Instrumentation follows the vec engine's amortized model: every fused
// element batches its per-tuple branch-outcome bits and replays its
// instruction-footprint module through exec.Context.ExecModuleBatch — one
// instruction-fetch replay per ~flushTuples tuples — so a fused group's
// simulated L1-I miss count is the amortized one its single tight loop
// would earn on real hardware. Data-cache traffic, memory-tracker charges,
// cancellation polls and fault-injection sites mirror the Volcano operators
// one-for-one, which is what keeps the chaos suite's containment contract
// engine-independent.
package push

import (
	"errors"
	"fmt"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/storage"
)

// flushTuples is the module-bit batch length: how many tuples' branch
// outcomes a fused element accumulates before replaying its instruction
// footprint once. Matches the vec engine's default batch size so the two
// amortized engines are comparable.
const flushTuples = 1024

// errStop is the early-exit sentinel a Limit stage returns once it has
// forwarded its N rows. Sources treat it as a clean end of input; it never
// escapes the pipeline.
var errStop = errors.New("push: pipeline stop")

// emitFn is the consumer callback a source drives: one call per row.
type emitFn func(ctx *exec.Context, row storage.Row) error

// source produces a pipe's input rows and drives the emit chain.
type source interface {
	open(ctx *exec.Context) error
	run(ctx *exec.Context, emit emitFn) error
	close(ctx *exec.Context) error
	name() string
}

// stage transforms rows mid-pipe, forwarding zero or more rows per input.
type stage interface {
	open(ctx *exec.Context) error
	process(ctx *exec.Context, row storage.Row, next emitFn) error
	name() string
}

// sink terminates a pipe at a breaker (hash build, aggregation) or at the
// root result. finish runs after the source is exhausted; close releases
// retained memory.
type sink interface {
	open(ctx *exec.Context) error
	consume(ctx *exec.Context, row storage.Row) error
	finish(ctx *exec.Context) error
	close(ctx *exec.Context)
	name() string
}

// flusher is implemented by elements that batch module bits.
type flusher interface {
	flushBits(ctx *exec.Context)
}

// Reportable lets EXPLAIN ANALYZE descend into a fused pipeline: elements
// expose their display name and structural children (mirroring the plan
// subtree they fused) without being Volcano or vec operators themselves.
type Reportable interface {
	Name() string
	ReportChildren() []any
}

// modbuf batches one element's per-tuple branch-outcome bits and replays
// the module once per batch — the fused loop's amortized instruction fetch.
type modbuf struct {
	mod  *codemodel.Module
	bits []uint64
}

func (b *modbuf) add(ctx *exec.Context, outcome bool) {
	if b.mod == nil {
		return
	}
	b.bits = append(b.bits, ctx.DataBits(outcome))
	if len(b.bits) >= flushTuples {
		b.flushBits(ctx)
	}
}

func (b *modbuf) flushBits(ctx *exec.Context) {
	if len(b.bits) > 0 {
		ctx.ExecModuleBatch(b.mod, b.bits)
		b.bits = b.bits[:0]
	}
}

// pipe is one fused loop: a source, a stage chain, and a terminal sink.
type pipe struct {
	src    source
	stages []stage
	snk    sink
}

// elems enumerates the pipe's elements, source first.
func (p *pipe) elems() []any {
	out := []any{p.src}
	for _, s := range p.stages {
		out = append(out, s)
	}
	return append(out, p.snk)
}

// run drives the pipe to completion: it folds the stage chain into one
// emit callback, streams the source through it, flushes every element's
// batched module bits, and finishes the sink.
func (p *pipe) run(ctx *exec.Context) error {
	emit := p.snk.consume
	for i := len(p.stages) - 1; i >= 0; i-- {
		st, next := p.stages[i], emit
		emit = func(ctx *exec.Context, row storage.Row) error {
			return st.process(ctx, row, next)
		}
	}
	err := p.src.run(ctx, emit)
	for _, e := range p.elems() {
		if f, ok := e.(flusher); ok {
			f.flushBits(ctx)
		}
	}
	if err != nil && !errors.Is(err, errStop) {
		return err
	}
	return p.snk.finish(ctx)
}

// Pipeline is the compiled form of one or more fused execution groups,
// exposed to the host engine as a single (blocking) Volcano operator: the
// first Next runs every pipe in dependency order — upstream hash builds
// first, the result-producing pipe last — and later Nexts stream the
// materialized result, modeling one data-cache read per served row exactly
// like exec.Material.
type Pipeline struct {
	pipes []*pipe
	out   *collectSink
	sch   storage.Schema
	// fallbacks are the Volcano subtrees feeding adapter sources, exposed
	// through Children so generic tree walks still see them.
	fallbacks []exec.Operator
	// repRoot is the report-tree top element (the fused plan root).
	repRoot any

	stats  *exec.OpStats
	pos    int
	ran    bool
	opened bool
}

// Open implements exec.Operator: it registers stats handles, opens every
// element, and resets the pipeline for a fresh run. Reopen without Close
// releases any stale memory charges, like the Volcano breakers.
func (pl *Pipeline) Open(ctx *exec.Context) error {
	pl.stats = ctx.StatsFor(pl, pl.Name())
	if pl.stats != nil {
		defer pl.stats.EndOpen(ctx, pl.stats.Begin(ctx))
	}
	for _, p := range pl.pipes {
		if err := p.src.open(ctx); err != nil {
			return err
		}
		for _, st := range p.stages {
			if err := st.open(ctx); err != nil {
				return err
			}
		}
		if err := p.snk.open(ctx); err != nil {
			return err
		}
	}
	pl.pos, pl.ran = 0, false
	pl.opened = true
	return nil
}

// Next implements exec.Operator: the first call executes every fused pipe,
// then the materialized result streams out row by row.
func (pl *Pipeline) Next(ctx *exec.Context) (out storage.Row, err error) {
	if !pl.opened {
		return nil, fmt.Errorf("push: %s.Next called before Open", pl.Name())
	}
	if pl.stats != nil {
		defer pl.stats.EndNext(ctx, pl.stats.Begin(ctx), &out)
	}
	if !pl.ran {
		for _, p := range pl.pipes {
			if err := p.run(ctx); err != nil {
				return nil, err
			}
		}
		pl.ran = true
		if pl.stats != nil {
			pl.stats.Drained(len(pl.out.rows))
		}
	}
	if pl.pos >= len(pl.out.rows) {
		return nil, nil
	}
	row := pl.out.rows[pl.pos]
	ctx.Read(pl.out.addrs[pl.pos], row.ByteSize())
	pl.pos++
	return row, nil
}

// Close implements exec.Operator: it tears down sources (closing any
// Volcano fallback subtrees) and releases every sink's retained memory.
// Idempotent, like the Volcano operators.
func (pl *Pipeline) Close(ctx *exec.Context) error {
	pl.opened = false
	var first error
	for _, p := range pl.pipes {
		if err := p.src.close(ctx); err != nil && first == nil {
			first = err
		}
		p.snk.close(ctx)
	}
	return first
}

// Schema implements exec.Operator.
func (pl *Pipeline) Schema() storage.Schema { return pl.sch }

// Children implements exec.Operator: the Volcano fallback subtrees feeding
// adapter sources (empty for fully fused plans).
func (pl *Pipeline) Children() []exec.Operator { return pl.fallbacks }

// Name implements exec.Operator.
func (pl *Pipeline) Name() string {
	if len(pl.pipes) == 1 {
		return "Push"
	}
	return fmt.Sprintf("Push(%d pipes)", len(pl.pipes))
}

// Module implements exec.Operator: the pipeline's instruction work is
// attributed by its elements' batched module replays.
func (pl *Pipeline) Module() *codemodel.Module { return nil }

// Blocking implements exec.Operator: the pipeline materializes its result
// on the first Next, so the refinement pass never buffers above it.
func (pl *Pipeline) Blocking() bool { return true }

// ReportChildren implements Reportable: the fused plan root element.
func (pl *Pipeline) ReportChildren() []any {
	if pl.repRoot == nil {
		return nil
	}
	return []any{pl.repRoot}
}
