package push

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// hashEntryOverhead matches exec's per-row hash-table bookkeeping charge,
// keeping the push engine's memory accounting comparable to Volcano's.
const hashEntryOverhead = 48

// collectSink materializes the final pipe's output — the root breaker.
// Rows are charged to the memory tracker and written to a simulated arena;
// the Pipeline reads them back per served row, like exec.Material.
type collectSink struct {
	rows    []storage.Row
	addrs   []uint64
	arena   *exec.Arena
	memUsed int64
}

func (c *collectSink) open(ctx *exec.Context) error {
	c.rows, c.addrs = nil, nil
	ctx.ShrinkMem(c.memUsed) // reopen without Close: release stale charges
	c.memUsed = 0
	c.arena = exec.NewArena(ctx.CPU)
	return nil
}

func (c *collectSink) consume(ctx *exec.Context, row storage.Row) error {
	if err := ctx.GrowMem(int64(row.ByteSize())); err != nil {
		return err
	}
	c.memUsed += int64(row.ByteSize())
	addr := c.arena.Alloc(row.ByteSize())
	ctx.Write(addr, row.ByteSize())
	c.rows = append(c.rows, row)
	c.addrs = append(c.addrs, addr)
	return nil
}

func (c *collectSink) finish(*exec.Context) error { return nil }

func (c *collectSink) close(ctx *exec.Context) {
	c.rows, c.addrs = nil, nil
	ctx.ShrinkMem(c.memUsed)
	c.memUsed = 0
}

func (c *collectSink) name() string { return "Collect" }

// buildSink is the hash-join build breaker: it drains the build side into
// an insertion-ordered hash table the probe stage reads. Charges, bucket
// modeling and the "<join>:build" fault site mirror exec.HashJoin's Open.
type buildSink struct {
	innerKey expr.Expr
	joinName string
	modbuf

	stats        *exec.OpStats
	fault        *faultinject.Point
	publishFault *faultinject.Point
	shared       *exec.SharedBuild
	arena        *exec.Arena

	table        map[int64][]storage.Row
	memUsed      int64
	adopted      bool
	buildStart   time.Time
	bucketRegion uint64
	bucketCount  uint64

	repChildren []any
}

func (b *buildSink) open(ctx *exec.Context) error {
	b.stats = ctx.StatsFor(b, b.name())
	b.fault = ctx.FaultPoint(b.joinName + ":build")
	b.publishFault = ctx.FaultPoint(b.joinName + ":publish")
	b.table = make(map[int64][]storage.Row)
	ctx.ShrinkMem(b.memUsed) // reopen without Close: release stale charges
	b.memUsed = 0
	b.adopted = false
	if ctx.CPU != nil {
		b.bucketCount = 1 << 16
		b.bucketRegion = ctx.CPU.AllocData(int(b.bucketCount) * 16)
	}
	b.arena = exec.NewArena(ctx.CPU)
	if b.shared != nil && b.shared.Table != nil {
		// Reuse-cache hit: adopt the published build side; its bytes live
		// under the cache's reservation, nothing charged here. The build
		// pipe still runs, but over the empty spliced source.
		b.table = b.shared.Table
		b.adopted = true
	}
	b.buildStart = time.Now()
	return nil
}

// bucketAddr maps a key to its simulated bucket address, identically to
// exec.HashJoin so both engines model the same random-access pattern.
func (b *buildSink) bucketAddr(key int64) uint64 {
	if b.bucketRegion == 0 {
		return 0
	}
	x := uint64(key) * 0x9e3779b97f4a7c15
	x ^= x >> 32
	return b.bucketRegion + (x%b.bucketCount)*16
}

func (b *buildSink) consume(ctx *exec.Context, row storage.Row) error {
	if err := ctx.Canceled(); err != nil {
		return err
	}
	if err := b.fault.Fire(); err != nil {
		return err
	}
	if b.stats != nil {
		b.stats.Calls++
	}
	key, ok, err := keyEval(b.innerKey, row)
	if err != nil {
		return err
	}
	b.add(ctx, ok)
	if !ok {
		return nil
	}
	charge := int64(row.ByteSize()) + hashEntryOverhead
	if err := ctx.GrowMem(charge); err != nil {
		return err
	}
	b.memUsed += charge
	b.table[key] = append(b.table[key], row)
	if b.stats != nil {
		b.stats.Rows++
	}
	// Copy the tuple into hash-table memory and link the bucket.
	ctx.Write(b.arena.Alloc(row.ByteSize()), row.ByteSize())
	ctx.Write(b.bucketAddr(key), 16)
	return nil
}

func (b *buildSink) finish(ctx *exec.Context) error {
	if b.shared != nil && b.shared.Publish != nil && !b.adopted {
		// Reuse-cache miss: hand the finished build to the cache. The
		// publish fault fires first, so a poisoned build is never inserted.
		if err := b.publishFault.Fire(); err != nil {
			return err
		}
		b.shared.Publish(b.table, b.memUsed, time.Since(b.buildStart))
	}
	return nil
}

func (b *buildSink) close(ctx *exec.Context) {
	b.table = nil
	ctx.ShrinkMem(b.memUsed)
	b.memUsed = 0
}

func (b *buildSink) name() string { return fmt.Sprintf("HashBuild(%s)", b.innerKey.String()) }

// Name implements Reportable.
func (b *buildSink) Name() string { return b.name() }

// ReportChildren implements Reportable.
func (b *buildSink) ReportChildren() []any { return b.repChildren }

// aggSink is the aggregation breaker: hashed grouping with deterministic
// key-ordered output, replicating exec.Aggregate bit for bit — group-key
// strings, charge formula, accumulator behavior, the one-row ungrouped
// zero-input result, and the per-row group-table read/write modeling.
type aggSink struct {
	groupBy []expr.Expr
	aggs    []expr.AggSpec
	modbuf

	stats        *exec.OpStats
	fault        *faultinject.Point
	publishFault *faultinject.Point
	shared       *exec.SharedAgg

	groups       map[string]*aggGroup
	order        []string
	memUsed      int64
	consumed     bool
	start        time.Time
	tableRegion  uint64
	tableBuckets uint64

	repChildren []any
}

type aggGroup struct {
	keyVals storage.Row
	accs    []expr.Accumulator
}

func (a *aggSink) open(ctx *exec.Context) error {
	a.stats = ctx.StatsFor(a, a.name())
	a.fault = ctx.FaultPoint(a.name() + ":next")
	a.publishFault = ctx.FaultPoint(a.name() + ":publish")
	a.start = time.Now()
	a.groups = make(map[string]*aggGroup)
	a.order = nil
	ctx.ShrinkMem(a.memUsed) // reopen without Close: release stale charges
	a.memUsed = 0
	a.consumed = false
	if ctx.CPU != nil && a.tableRegion == 0 {
		a.tableBuckets = 1 << 12
		a.tableRegion = ctx.CPU.AllocData(int(a.tableBuckets) * 64)
	}
	return nil
}

// groupAddr maps a group key to its simulated accumulator address,
// identically to exec.Aggregate.
func (a *aggSink) groupAddr(key string) uint64 {
	if a.tableRegion == 0 {
		return 0
	}
	var h uint64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return a.tableRegion + (h%a.tableBuckets)*64
}

func (a *aggSink) consume(ctx *exec.Context, row storage.Row) error {
	if err := ctx.Canceled(); err != nil {
		return err
	}
	if err := a.fault.Fire(); err != nil {
		return err
	}
	if a.stats != nil {
		a.stats.Calls++
	}
	keyVals := make(storage.Row, len(a.groupBy))
	for i, g := range a.groupBy {
		v, err := g.Eval(row)
		if err != nil {
			return err
		}
		keyVals[i] = v
	}
	key := keyVals.String()
	grp, ok := a.groups[key]
	if !ok {
		charge := int64(len(key)) + int64(keyVals.ByteSize()) +
			int64(len(a.aggs))*hashEntryOverhead
		if err := ctx.GrowMem(charge); err != nil {
			return err
		}
		a.memUsed += charge
		grp = &aggGroup{keyVals: keyVals, accs: make([]expr.Accumulator, len(a.aggs))}
		for i, spec := range a.aggs {
			acc, err := expr.NewAccumulator(spec)
			if err != nil {
				return err
			}
			grp.accs[i] = acc
		}
		a.groups[key] = grp
		a.order = append(a.order, key)
	}
	for _, acc := range grp.accs {
		if err := acc.Add(row); err != nil {
			return err
		}
	}
	addr := a.groupAddr(key)
	ctx.Read(addr, 64)
	ctx.Write(addr, 64)
	a.add(ctx, !ok)
	return nil
}

// finish sorts groups by key values for deterministic output order.
func (a *aggSink) finish(ctx *exec.Context) error {
	sort.Slice(a.order, func(i, j int) bool {
		gi, gj := a.groups[a.order[i]], a.groups[a.order[j]]
		for k := range gi.keyVals {
			if c := storage.Compare(gi.keyVals[k], gj.keyVals[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	a.consumed = true
	if a.shared != nil && a.shared.Publish != nil {
		// Reuse-cache miss: materialize the complete, sorted output — the
		// same rows produce will emit — and hand it to the cache. The
		// publish fault fires first, so a poisoned table is never inserted.
		if err := a.publishFault.Fire(); err != nil {
			return err
		}
		rows, bytes, err := a.materializeRows()
		if err != nil {
			return err
		}
		a.shared.Publish(rows, bytes, time.Since(a.start))
	}
	return nil
}

// materializeRows builds the breaker's full output — mirroring produce's
// emission exactly, including the one synthetic row of an ungrouped
// aggregate over zero input rows — plus the retained-bytes estimate the
// cache charges for it.
func (a *aggSink) materializeRows() ([]storage.Row, int64, error) {
	var bytes int64
	if len(a.groupBy) == 0 && len(a.order) == 0 {
		out := make(storage.Row, 0, len(a.aggs))
		for _, spec := range a.aggs {
			acc, err := expr.NewAccumulator(spec)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, acc.Result())
		}
		return []storage.Row{out}, int64(out.ByteSize()) + hashEntryOverhead, nil
	}
	rows := make([]storage.Row, 0, len(a.order))
	for _, key := range a.order {
		grp := a.groups[key]
		out := make(storage.Row, 0, len(a.groupBy)+len(a.aggs))
		out = append(out, grp.keyVals...)
		for _, acc := range grp.accs {
			out = append(out, acc.Result())
		}
		rows = append(rows, out)
		bytes += int64(out.ByteSize()) + hashEntryOverhead
	}
	return rows, bytes, nil
}

// produce implements producer: it streams the grouped results into the
// downstream pipe.
func (a *aggSink) produce(ctx *exec.Context, emit emitFn) error {
	// Ungrouped aggregation over zero rows still yields one row
	// (COUNT(*) = 0, SUM = NULL, …).
	if len(a.groupBy) == 0 && len(a.order) == 0 {
		out := make(storage.Row, 0, len(a.aggs))
		for _, spec := range a.aggs {
			acc, err := expr.NewAccumulator(spec)
			if err != nil {
				return err
			}
			out = append(out, acc.Result())
		}
		a.add(ctx, true)
		if a.stats != nil {
			a.stats.Rows++
		}
		return emit(ctx, out)
	}
	for _, key := range a.order {
		if err := ctx.Canceled(); err != nil {
			return err
		}
		grp := a.groups[key]
		out := make(storage.Row, 0, len(a.groupBy)+len(a.aggs))
		out = append(out, grp.keyVals...)
		for _, acc := range grp.accs {
			out = append(out, acc.Result())
		}
		a.add(ctx, true)
		if a.stats != nil {
			a.stats.Rows++
		}
		if err := emit(ctx, out); err != nil {
			return err
		}
	}
	return nil
}

func (a *aggSink) close(ctx *exec.Context) {
	a.groups = nil
	a.order = nil
	ctx.ShrinkMem(a.memUsed)
	a.memUsed = 0
}

func (a *aggSink) name() string {
	aggs := make([]string, len(a.aggs))
	for i, s := range a.aggs {
		aggs[i] = s.String()
	}
	if len(a.groupBy) == 0 {
		return fmt.Sprintf("Aggregate(%s)", strings.Join(aggs, ", "))
	}
	groups := make([]string, len(a.groupBy))
	for i, g := range a.groupBy {
		groups[i] = g.String()
	}
	return fmt.Sprintf("Aggregate(%s GROUP BY %s)", strings.Join(aggs, ", "), strings.Join(groups, ", "))
}

// Name implements Reportable.
func (a *aggSink) Name() string { return a.name() }

// ReportChildren implements Reportable.
func (a *aggSink) ReportChildren() []any { return a.repChildren }

// aggSchema derives an aggregation's output schema exactly like
// exec.NewAggregate.
func aggSchema(groupBy []expr.Expr, aggs []expr.AggSpec) (storage.Schema, error) {
	if len(aggs) == 0 {
		return nil, fmt.Errorf("push: Aggregate needs at least one aggregate")
	}
	var sch storage.Schema
	for i, g := range groupBy {
		name := fmt.Sprintf("group%d", i)
		if cr, ok := g.(*expr.ColRef); ok {
			name = cr.Name
		}
		sch = append(sch, storage.Column{Name: name, Type: g.Type()})
	}
	for _, spec := range aggs {
		ty, err := spec.ResultType()
		if err != nil {
			return nil, err
		}
		sch = append(sch, storage.Column{Name: spec.OutputName(), Type: ty})
	}
	return sch, nil
}
