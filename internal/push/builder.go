package push

import (
	"fmt"

	"bufferdb/internal/codemodel"
	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/storage"
)

// Builder assembles a Pipeline bottom-up, mirroring how a plan compiler
// walks a fused subtree: start a pipe with Scan or Source, stack stages
// with Filter/Project/Limit/Probe, break it with Aggregate, and seal the
// whole thing with Build. Each method returns the element it created so an
// analyzing compiler can map elements back to plan nodes; the first error
// sticks and surfaces from Build.
type Builder struct {
	pipes     []*pipe
	fallbacks []exec.Operator
	cur       *pipe
	top       any
	sch       storage.Schema
	err       error
}

// NewBuilder returns an empty pipeline builder.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// start opens the current pipe with src.
func (b *Builder) start(src source, sch storage.Schema) {
	if b.cur != nil {
		b.fail("push: pipe already has a source")
		return
	}
	b.cur = &pipe{src: src}
	b.sch = sch
}

// stage appends a stage to the current pipe and makes it the report top.
func (b *Builder) stage(st stage, repChildren func([]any)) {
	if b.err != nil {
		return
	}
	if b.cur == nil {
		b.fail("push: stage before source")
		return
	}
	b.cur.stages = append(b.cur.stages, st)
	if b.top != nil {
		repChildren([]any{b.top})
	}
	b.top = st
}

// Scan starts the current pipe with a fused heap scan. filter, span and
// mod may be nil.
func (b *Builder) Scan(table *storage.Table, filter expr.Expr, span *storage.Span, mod *codemodel.Module) any {
	if b.err != nil {
		return nil
	}
	s := &scanSource{table: table, filter: filter, span: span}
	s.mod = mod
	b.start(s, table.Schema())
	b.top = s
	return s
}

// Source starts the current pipe from a Volcano operator subtree — the
// adapter fallback for plan nodes without a fused variant. mod is the
// buffer module (the adapter is a refill loop); it may be nil.
func (b *Builder) Source(op exec.Operator, mod *codemodel.Module) any {
	if b.err != nil {
		return nil
	}
	s := &opSource{op: op}
	s.mod = mod
	b.start(s, op.Schema())
	b.top = s
	b.fallbacks = append(b.fallbacks, op)
	return s
}

// Filter appends a residual-predicate stage.
func (b *Builder) Filter(pred expr.Expr, mod *codemodel.Module) any {
	f := &filterStage{pred: pred}
	f.mod = mod
	b.stage(f, func(c []any) { f.repChildren = c })
	return f
}

// Project appends a target-list stage.
func (b *Builder) Project(exprs []expr.Expr, names []string, mod *codemodel.Module) any {
	if b.err != nil {
		return nil
	}
	if len(exprs) == 0 {
		b.fail("push: Project needs a target list")
		return nil
	}
	if len(names) != len(exprs) {
		b.fail("push: Project names/exprs mismatch: %d vs %d", len(names), len(exprs))
		return nil
	}
	p := &projectStage{exprs: exprs, names: names}
	p.mod = mod
	b.stage(p, func(c []any) { p.repChildren = c })
	if b.err == nil {
		var sch storage.Schema
		for i, e := range exprs {
			sch = append(sch, storage.Column{Name: names[i], Type: e.Type()})
		}
		b.sch = sch
	}
	return p
}

// Limit appends a first-n stage that stops the pipe once satisfied.
func (b *Builder) Limit(n int) any {
	l := &limitStage{n: n}
	b.stage(l, func(c []any) { l.repChildren = c })
	return l
}

// Probe joins the current pipe against a build side assembled in inner:
// inner's pipe is sealed with a hash-build breaker (scheduled before this
// pipe runs) and a probe stage is appended here. Returns the probe and
// build elements.
func (b *Builder) Probe(inner *Builder, outerKey, innerKey expr.Expr, buildMod, probeMod *codemodel.Module) (probe, build any) {
	if b.err == nil && inner.err != nil {
		b.err = inner.err
	}
	if b.err != nil {
		return nil, nil
	}
	if b.cur == nil || inner.cur == nil {
		b.fail("push: probe needs both an outer and a build pipe")
		return nil, nil
	}
	bs := &buildSink{
		innerKey: innerKey,
		joinName: fmt.Sprintf("HashJoin(%s = %s)", outerKey.String(), innerKey.String()),
	}
	bs.mod = buildMod
	bs.repChildren = []any{inner.top}
	inner.cur.snk = bs
	// Build pipes run before this (probe) pipe: upstream breakers first.
	b.pipes = append(b.pipes, inner.pipes...)
	b.pipes = append(b.pipes, inner.cur)
	b.fallbacks = append(b.fallbacks, inner.fallbacks...)

	ps := &probeStage{build: bs, outerKey: outerKey}
	ps.mod = probeMod
	outerTop := b.top
	b.stage(ps, func([]any) {})
	ps.repChildren = []any{outerTop, bs}
	b.sch = b.sch.Concat(inner.sch)
	return ps, bs
}

// Aggregate seals the current pipe with a hashed-grouping breaker and
// starts a new pipe streaming the grouped results.
func (b *Builder) Aggregate(groupBy []expr.Expr, aggs []expr.AggSpec, mod *codemodel.Module) any {
	if b.err != nil {
		return nil
	}
	if b.cur == nil {
		b.fail("push: aggregate before source")
		return nil
	}
	sch, err := aggSchema(groupBy, aggs)
	if err != nil {
		b.err = err
		return nil
	}
	a := &aggSink{groupBy: groupBy, aggs: aggs}
	a.mod = mod
	a.repChildren = []any{b.top}
	b.cur.snk = a
	b.pipes = append(b.pipes, b.cur)
	b.cur = &pipe{src: &pipeSource{up: a}}
	b.top = a
	b.sch = sch
	return a
}

// SetSharedBuild wires a hash-build breaker to the semantic reuse cache.
// h must be the build handle Probe returned; reports whether it was.
func SetSharedBuild(h any, sb *exec.SharedBuild) bool {
	bs, ok := h.(*buildSink)
	if !ok {
		return false
	}
	bs.shared = sb
	return true
}

// SetSharedAgg wires an aggregation breaker to the semantic reuse cache.
// h must be the handle Aggregate returned; reports whether it was.
func SetSharedAgg(h any, sa *exec.SharedAgg) bool {
	as, ok := h.(*aggSink)
	if !ok {
		return false
	}
	as.shared = sa
	return true
}

// Build seals the final pipe with the root collector and returns the
// finished Pipeline.
func (b *Builder) Build() (*Pipeline, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.cur == nil {
		return nil, fmt.Errorf("push: empty pipeline")
	}
	out := &collectSink{}
	b.cur.snk = out
	pl := &Pipeline{
		pipes:     append(b.pipes, b.cur),
		out:       out,
		sch:       b.sch,
		fallbacks: b.fallbacks,
		repRoot:   b.top,
	}
	b.cur = nil
	return pl, nil
}
