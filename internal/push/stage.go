package push

import (
	"fmt"
	"strings"

	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// filterStage drops rows failing a residual predicate, like exec.Filter.
type filterStage struct {
	pred expr.Expr
	modbuf

	stats *exec.OpStats

	repChildren []any
}

func (f *filterStage) open(ctx *exec.Context) error {
	f.stats = ctx.StatsFor(f, f.name())
	return nil
}

func (f *filterStage) process(ctx *exec.Context, row storage.Row, next emitFn) error {
	if f.stats != nil {
		f.stats.Calls++
	}
	ok, err := expr.EvalBool(f.pred, row)
	if err != nil {
		return err
	}
	f.add(ctx, ok)
	if !ok {
		return nil
	}
	if f.stats != nil {
		f.stats.Rows++
	}
	return next(ctx, row)
}

func (f *filterStage) name() string { return fmt.Sprintf("Filter(%s)", f.pred.String()) }

// Name implements Reportable.
func (f *filterStage) Name() string { return f.name() }

// ReportChildren implements Reportable.
func (f *filterStage) ReportChildren() []any { return f.repChildren }

// projectStage evaluates the target list per row, like exec.Project: one
// fresh output row, one arena write per tuple.
type projectStage struct {
	exprs []expr.Expr
	names []string
	modbuf

	stats *exec.OpStats
	arena *exec.Arena

	repChildren []any
}

func (p *projectStage) open(ctx *exec.Context) error {
	p.stats = ctx.StatsFor(p, p.name())
	p.arena = exec.NewArena(ctx.CPU)
	return nil
}

func (p *projectStage) process(ctx *exec.Context, row storage.Row, next emitFn) error {
	if p.stats != nil {
		p.stats.Calls++
	}
	out := make(storage.Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := e.Eval(row)
		if err != nil {
			return err
		}
		out[i] = v
	}
	p.add(ctx, true)
	ctx.Write(p.arena.Alloc(out.ByteSize()), out.ByteSize())
	if p.stats != nil {
		p.stats.Rows++
	}
	return next(ctx, out)
}

func (p *projectStage) name() string {
	parts := make([]string, len(p.exprs))
	for i, e := range p.exprs {
		parts[i] = e.String()
	}
	return fmt.Sprintf("Project(%s)", strings.Join(parts, ", "))
}

// Name implements Reportable.
func (p *projectStage) Name() string { return p.name() }

// ReportChildren implements Reportable.
func (p *projectStage) ReportChildren() []any { return p.repChildren }

// limitStage forwards the first n rows, then stops the whole pipe with
// errStop — the push-model equivalent of a Limit ceasing to pull.
type limitStage struct {
	n int

	stats   *exec.OpStats
	emitted int

	repChildren []any
}

func (l *limitStage) open(ctx *exec.Context) error {
	l.stats = ctx.StatsFor(l, l.name())
	l.emitted = 0
	return nil
}

func (l *limitStage) process(ctx *exec.Context, row storage.Row, next emitFn) error {
	if l.emitted >= l.n {
		return errStop
	}
	l.emitted++
	if l.stats != nil {
		l.stats.Calls++
		l.stats.Rows++
	}
	if err := next(ctx, row); err != nil {
		return err
	}
	if l.emitted >= l.n {
		return errStop
	}
	return nil
}

func (l *limitStage) name() string { return fmt.Sprintf("Limit(%d)", l.n) }

// Name implements Reportable.
func (l *limitStage) Name() string { return l.name() }

// ReportChildren implements Reportable.
func (l *limitStage) ReportChildren() []any { return l.repChildren }

// probeStage probes an upstream buildSink's hash table with each outer
// row, emitting outer⨝inner concatenations in build-insertion order —
// bit-identical to exec.HashJoin's probe phase, including the NULL-key,
// bucket-read and arena-write modeling and the "<name>:next" fault site.
type probeStage struct {
	build    *buildSink
	outerKey expr.Expr
	modbuf

	stats *exec.OpStats
	fault *faultinject.Point
	arena *exec.Arena

	repChildren []any
}

func (j *probeStage) open(ctx *exec.Context) error {
	j.stats = ctx.StatsFor(j, j.name())
	j.fault = ctx.FaultPoint(j.name() + ":next")
	j.arena = exec.NewArena(ctx.CPU)
	return nil
}

func (j *probeStage) process(ctx *exec.Context, row storage.Row, next emitFn) error {
	if j.stats != nil {
		j.stats.Calls++
	}
	if err := j.fault.Fire(); err != nil {
		return err
	}
	key, ok, err := keyEval(j.outerKey, row)
	if err != nil {
		return err
	}
	if !ok {
		// NULL key joins nothing.
		j.add(ctx, false)
		return nil
	}
	ctx.Read(j.build.bucketAddr(key), 16)
	matches := j.build.table[key]
	j.add(ctx, len(matches) > 0)
	for _, inner := range matches {
		out := row.Concat(inner)
		j.add(ctx, true)
		ctx.Read(j.build.bucketAddr(0), 16) // bucket chain advance
		ctx.Write(j.arena.Alloc(out.ByteSize()), out.ByteSize())
		if j.stats != nil {
			j.stats.Rows++
		}
		if err := next(ctx, out); err != nil {
			return err
		}
	}
	return nil
}

func (j *probeStage) name() string {
	return fmt.Sprintf("HashJoin(%s = %s)", j.outerKey.String(), j.build.innerKey.String())
}

// Name implements Reportable.
func (j *probeStage) Name() string { return j.name() }

// ReportChildren implements Reportable: the outer chain below the probe,
// plus the build sink's subtree.
func (j *probeStage) ReportChildren() []any { return j.repChildren }

// keyEval mirrors exec's join-key evaluation: BIGINT keys only, NULL keys
// join nothing.
func keyEval(e expr.Expr, row storage.Row) (int64, bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return 0, false, err
	}
	if v.IsNull() {
		return 0, false, nil
	}
	if v.Kind != storage.TypeInt64 {
		return 0, false, fmt.Errorf("push: join key must be BIGINT, got %v", v.Kind)
	}
	return v.I, true, nil
}
