package push

import (
	"fmt"

	"bufferdb/internal/exec"
	"bufferdb/internal/expr"
	"bufferdb/internal/faultinject"
	"bufferdb/internal/storage"
)

// scanSource is the fused heap scan: one loop over the table (or one heap
// partition) with the filter folded in, mirroring exec.SeqScan's per-row
// behavior — data-cache read per placed tuple, cancellation poll per input
// row, fault site "<name>:next" — with the instruction footprint amortized
// through the module-bit batch instead of replayed per tuple.
type scanSource struct {
	table  *storage.Table
	filter expr.Expr
	span   *storage.Span
	modbuf

	stats  *exec.OpStats
	fault  *faultinject.Point
	place  exec.TablePlacement
	placed bool

	repChildren []any
}

func (s *scanSource) open(ctx *exec.Context) error {
	s.stats = ctx.StatsFor(s, s.name())
	s.fault = ctx.FaultPoint(s.name() + ":next")
	s.place, s.placed = ctx.Placements[s.table]
	return nil
}

func (s *scanSource) run(ctx *exec.Context, emit emitFn) error {
	pos, end := 0, s.table.NumRows()
	if s.span != nil {
		pos, end = s.span.Start, s.span.End
	}
	var it storage.RowIterator
	if s.table.Paged() {
		var err error
		it, err = s.table.Iterate(storage.Span{Start: pos, End: end})
		if err != nil {
			return err
		}
		defer it.Close()
	}
	for pos < end {
		if err := ctx.Canceled(); err != nil {
			return err
		}
		if err := s.fault.Fire(); err != nil {
			return err
		}
		var (
			rid int
			row storage.Row
			err error
		)
		if it != nil {
			var ok bool
			rid, row, ok, err = it.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			pos = rid + 1
		} else {
			rid = pos
			pos++
			row = s.table.Row(rid)
		}
		if s.placed {
			ctx.Read(s.place.Base+uint64(rid)*uint64(s.place.RowBytes), s.place.RowBytes)
		}
		match := true
		if s.filter != nil {
			match, err = expr.EvalBool(s.filter, row)
			if err != nil {
				return err
			}
		}
		s.add(ctx, match)
		if !match {
			continue
		}
		if s.stats != nil {
			s.stats.Calls++
			s.stats.Rows++
		}
		if err := emit(ctx, row); err != nil {
			return err
		}
	}
	return nil
}

func (s *scanSource) close(*exec.Context) error { return nil }

func (s *scanSource) name() string {
	if s.filter != nil {
		return fmt.Sprintf("SeqScan(%s, filter=%s)", s.table.Name(), s.filter.String())
	}
	return fmt.Sprintf("SeqScan(%s)", s.table.Name())
}

// Name implements Reportable.
func (s *scanSource) Name() string { return s.name() }

// ReportChildren implements Reportable.
func (s *scanSource) ReportChildren() []any { return s.repChildren }

// opSource adapts a Volcano subtree into a pipe: the push engine's
// equivalent of vec.FromVolcano. The subtree keeps its own per-tuple
// instrumentation; the adapter itself replays the buffer module per
// forwarded row (batched), because semantically it is a buffer refill loop.
type opSource struct {
	op exec.Operator
	modbuf

	stats *exec.OpStats

	repChildren []any
}

func (s *opSource) open(ctx *exec.Context) error {
	s.stats = ctx.StatsFor(s, s.name())
	return s.op.Open(ctx)
}

func (s *opSource) run(ctx *exec.Context, emit emitFn) error {
	for {
		if err := ctx.Canceled(); err != nil {
			return err
		}
		row, err := s.op.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			return nil
		}
		s.add(ctx, true)
		if s.stats != nil {
			s.stats.Calls++
			s.stats.Rows++
		}
		if err := emit(ctx, row); err != nil {
			return err
		}
	}
}

func (s *opSource) close(ctx *exec.Context) error { return s.op.Close(ctx) }

func (s *opSource) name() string { return "Pull(" + s.op.Name() + ")" }

// Name implements Reportable.
func (s *opSource) Name() string { return s.name() }

// ReportChildren implements Reportable: the wrapped Volcano operator, so
// EXPLAIN ANALYZE descends across the engine boundary like it does for the
// vec adapters.
func (s *opSource) ReportChildren() []any { return []any{s.op} }

// producer is a breaker sink whose materialized output feeds a downstream
// pipe (the aggregation sink).
type producer interface {
	sink
	produce(ctx *exec.Context, emit emitFn) error
}

// pipeSource replays an upstream breaker's materialized output into the
// next pipe. It is transparent in reports: the breaker element itself is
// the structural child.
type pipeSource struct {
	up producer
}

func (s *pipeSource) open(*exec.Context) error { return nil }

func (s *pipeSource) run(ctx *exec.Context, emit emitFn) error {
	return s.up.produce(ctx, emit)
}

func (s *pipeSource) close(*exec.Context) error { return nil }

func (s *pipeSource) name() string { return "PipeSource(" + s.up.name() + ")" }
